open Sim_types
module Candidate = Cocheck_core.Candidate
module Least_waste = Cocheck_core.Least_waste

(* The list-based Least-Waste arbiter, kept as the differential-testing
   oracle for the aggregate-backed production path in {!Arbiter} — the
   same reference-implementation pattern as {!Io_reference}. Every grant
   materializes the candidate list in arrival order and calls the
   O(pending²) {!Cocheck_core.Least_waste.select}; the pool itself is the
   retired [pool @ [req]] / [List.filter] representation, so the oracle
   shares no data structure with the implementation under test. Linked
   into tests and benches only — the simulator never constructs it. *)

let to_candidate ~bandwidth_gbs ~now (r : request) =
  match r.r_kind with
  | Req_io _ ->
      Candidate.Io
        {
          Candidate.key = r.r_id;
          nodes = r.r_inst.spec.nodes;
          service_s = r.r_volume /. bandwidth_gbs;
          waited_s = now -. r.r_at;
        }
  | Req_ckpt ->
      Candidate.Ckpt
        {
          Candidate.key = r.r_id;
          nodes = r.r_inst.spec.nodes;
          ckpt_s = r.r_inst.ckpt_nominal;
          exposed_s = now -. r.r_inst.last_commit_end;
          recovery_s = r.r_inst.ckpt_nominal;
        }

let arbiter ~node_mtbf_s ~bandwidth_gbs () : arbiter =
  (module struct
    let policy = "least-waste-reference"
    let pool : request list ref = ref []
    let enq = ref 0
    let granted = ref 0
    let cancelled = ref 0

    let enqueue r =
      incr enq;
      pool := !pool @ [ r ]

    let cancel_of_inst inst =
      let stale, live =
        List.partition (fun (r : request) -> r.r_inst.idx = inst.idx) !pool
      in
      List.iter
        (fun (r : request) ->
          r.r_cancelled <- true;
          incr cancelled)
        stale;
      pool := live

    let select ~now =
      match !pool with
      | [] -> None
      | reqs ->
          let cands = List.map (to_candidate ~bandwidth_gbs ~now) reqs in
          Option.bind (Least_waste.select ~node_mtbf_s cands) (fun c ->
              let key = Candidate.key c in
              let r = List.find (fun (r : request) -> r.r_id = key) reqs in
              pool := List.filter (fun (q : request) -> q.r_id <> key) reqs;
              incr granted;
              Some r)

    let pending () = List.length !pool

    let stats () =
      {
        arb_policy = policy;
        arb_pending = pending ();
        arb_enqueued = !enq;
        arb_granted = !granted;
        arb_cancelled = !cancelled;
      }
  end)
