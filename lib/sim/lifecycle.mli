(** The job lifecycle: first-fit starts from the submission queue, the
    blocking input/recovery/output transfers bracketing the work phase,
    the compute clock, and completion. *)

val try_start : Sim_types.w -> unit
(** Greedy first-fit pass over the priority-ordered submission queue:
    start every entry that fits in the currently free nodes. *)

val start_compute : Sim_types.w -> Sim_types.inst -> unit
(** (Re)enter the computing state and arm the work-completion event for
    the remaining work. *)

val grant_io : Sim_types.w -> Sim_types.request -> unit
(** Token-grant continuation for a blocking transfer request: account the
    wait and start the flow. *)
