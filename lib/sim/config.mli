(** Scenario configuration for one simulation run. *)

type t = {
  platform : Cocheck_model.Platform.t;
  classes : Cocheck_model.App_class.t list;
  strategy : Cocheck_core.Strategy.t;
  seed : int;  (** root seed; jobs and failures draw from substreams *)
  min_duration_s : float;  (** workload span to generate (Section 5: 60 days + margins) *)
  seg_start : float;  (** measurement segment start (paper: after day 1) *)
  seg_end : float;  (** measurement segment end *)
  horizon : float;  (** hard simulation stop *)
  fill_factor : float;  (** workload node-second oversubscription, see {!Cocheck_model.Jobgen} *)
  with_failures : bool;
  failure_dist : Failure_trace.distribution;
      (** inter-arrival law for failures; the paper uses {!Failure_trace.Exponential} *)
  interference_alpha : float;
      (** 0 gives the paper's linear interference; larger values erode the
          aggregate bandwidth under contention (footnote 2's adversarial
          model), see {!Io_subsystem} *)
  burst_buffer : Burst_buffer.spec option;
      (** when set, checkpoints that fit commit to a burst buffer and drain
          to the PFS in the background (the Section 8 extension) *)
  multilevel : multilevel option;
      (** when set, jobs checkpoint through an L-level hierarchy
          ({!Ckpt_hierarchy}): cheap node-local snapshot levels that
          survive only {e soft} failures (SCR/FTI-style, references
          [9][15]) and/or buffer levels whose copies flush toward the PFS
          in the background (VELOC-style); see {!Cocheck_core.Multilevel}
          for the analytic model *)
}

and multilevel = { levels : level list }
(** Levels shallow → deep; the PFS is the implicit deepest level and is
    not listed. {!Snapshot} levels must precede {!Buffer} levels, and
    [buffer_level]s are exclusive with the legacy [burst_buffer] field
    (which they generalize). *)

and level = Snapshot of snapshot_level | Buffer of buffer_level

and snapshot_level = {
  sl_period_s : float;  (** time between snapshots at this level *)
  sl_cost_s : float;  (** compute pause per snapshot, no PFS traffic *)
  sl_recovery_s : float;  (** restart delay when recovering from this level *)
  sl_survival : float;
      (** probability a failure leaves this level's data intact (the
          legacy [soft_fraction]); the remainder must recover deeper *)
}

and buffer_level = {
  bl_capacity_gb : float;  (** shared capacity of this storage tier *)
  bl_bandwidth_gbs : float;  (** absorb bandwidth jobs write at *)
  bl_flush_gbs : float option;
      (** background flush edge toward the next tier: [None] serializes
          drains one at a time through the next tier's I/O subsystem (the
          legacy burst-buffer behavior, kept as the differential oracle);
          [Some b] gives the edge its own [b] GB/s virtual-time scheduler
          where concurrent flushes contend as ordinary weighted flows *)
  bl_survival : float;  (** probability a failure leaves this tier intact *)
}

val make :
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  strategy:Cocheck_core.Strategy.t ->
  ?seed:int ->
  ?days:float ->
  ?fill_factor:float ->
  ?with_failures:bool ->
  ?failure_dist:Failure_trace.distribution ->
  ?interference_alpha:float ->
  ?burst_buffer:Burst_buffer.spec ->
  ?multilevel:multilevel ->
  unit ->
  t
(** Build a paper-style configuration: a [days]-long measurement segment
    (default 60) preceded and followed by one excluded day, so
    [min_duration_s = days + 2] days, [seg_start = 1] day,
    [seg_end = days + 1] days, [horizon = days + 2] days. [classes]
    defaults to the APEX LANL workload scaled to the platform.
    The Baseline strategy forces [with_failures = false]. *)

val local_level :
  period_s:float ->
  cost_s:float ->
  recovery_s:float ->
  soft_fraction:float ->
  multilevel
(** The legacy two-level configuration: one node-local {!Snapshot} level
    above the PFS ([sl_survival = soft_fraction]). *)

val baseline_of : t -> t
(** The same scenario under the Baseline strategy (no failures, no
    checkpoints, no interference) — the waste-ratio denominator run. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent segments/horizons. *)
