(** The failure path: node strikes mapped to their victim instance, the
    kill/rollback accounting (hard to the last global commit, soft to the
    newest node-local snapshot), and resubmission for restart. *)

val kill_inst : Sim_types.w -> Sim_types.inst -> unit
(** Kill an instance: abort its transfer, roll back uncommitted work,
    release its nodes and token, withdraw its arbiter requests, and
    requeue it at the head of the submission queue. *)

val handle_failure : Sim_types.w -> Failure_trace.event -> unit
(** Process one platform failure event (a no-op beyond counting when it
    strikes an idle node). *)

val schedule_failures : Sim_types.w -> Failure_trace.t -> unit
(** Lazily walk the failure trace onto the engine calendar up to the
    horizon. *)
