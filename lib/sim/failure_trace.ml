open Cocheck_util

type distribution =
  | Exponential
  | Weibull of { shape : float }
  | Lognormal of { sigma : float }

let distribution_name = function
  | Exponential -> "exponential"
  | Weibull { shape } -> Printf.sprintf "weibull(%g)" shape
  | Lognormal { sigma } -> Printf.sprintf "lognormal(%g)" sigma

type event = { time : float; node : int }

type t = {
  rng : Rng.t;
  nodes : int;
  node_mtbf_s : float;
  draw_gap : Rng.t -> float;
  mutable clock : float;
  mutable lookahead : event option;
  mutable count : int;
}

(* Mean-matched inter-arrival samplers: each has expectation
   [node_mtbf_s / nodes]. *)
let gap_sampler ~nodes ~node_mtbf_s = function
  | Exponential ->
      let mean = node_mtbf_s /. float_of_int nodes in
      fun rng -> Dist.exponential rng ~mean
  | Weibull { shape } ->
      if shape <= 0.0 then invalid_arg "Failure_trace: Weibull shape must be positive";
      let mean = node_mtbf_s /. float_of_int nodes in
      (* E[Weibull(scale, k)] = scale * Gamma(1 + 1/k). *)
      let scale = mean /. Numerics.gamma (1.0 +. (1.0 /. shape)) in
      fun rng -> Dist.weibull rng ~scale ~shape
  | Lognormal { sigma } ->
      if sigma < 0.0 then invalid_arg "Failure_trace: Lognormal sigma must be non-negative";
      let mean = node_mtbf_s /. float_of_int nodes in
      (* E[LogN(mu, sigma)] = exp(mu + sigma^2/2). *)
      let mu = log mean -. (sigma *. sigma /. 2.0) in
      fun rng -> Dist.lognormal rng ~mu ~sigma

let create ~rng ~nodes ~node_mtbf_s ?(distribution = Exponential) () =
  if nodes <= 0 then invalid_arg "Failure_trace.create: nodes must be positive";
  if node_mtbf_s <= 0.0 then invalid_arg "Failure_trace.create: MTBF must be positive";
  {
    rng;
    nodes;
    node_mtbf_s;
    draw_gap = gap_sampler ~nodes ~node_mtbf_s distribution;
    clock = 0.0;
    lookahead = None;
    count = 0;
  }

(* Clamp only against negative gaps (a sampler bug), not against small
   ones: at extreme scales (say 50k nodes with sub-second node MTBF) the
   mean gap can sit below 1e-9 s, and a 1e-9 floor would silently inflate
   the realized failure rate's mean by 2× or more. Coincident failure
   times are fine — the calendar orders equal-time events by insertion. *)
let draw t =
  let dt = t.draw_gap t.rng in
  let time = t.clock +. Float.max dt 0.0 in
  t.clock <- time;
  { time; node = Rng.int t.rng t.nodes }

let next t =
  match t.lookahead with
  | Some e ->
      t.lookahead <- None;
      t.count <- t.count + 1;
      e
  | None ->
      t.count <- t.count + 1;
      draw t

let peek_time t =
  match t.lookahead with
  | Some e -> e.time
  | None ->
      let e = draw t in
      t.lookahead <- Some e;
      e.time

let generated t = t.count
let system_mtbf t = t.node_mtbf_s /. float_of_int t.nodes
