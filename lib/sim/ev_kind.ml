(* The simulator's event-kind vocabulary for Engine per-kind counters.
   Plain ints (not a variant) so the engine stays generic and the hot
   path passes an immediate; [names] indexes them for display. This
   module sits below every other sim module — Io_subsystem cannot see
   Sim_types, but both can see this. *)

let other = 0
let job = 1
let io = 2
let ckpt = 3
let failure = 4
let probe = 5
let names = [| "other"; "job"; "io"; "ckpt"; "failure"; "probe" |]
