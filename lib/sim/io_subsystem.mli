(** The time-shared parallel file system.

    Flows (input, output, checkpoint, recovery transfers) draw from one
    aggregate bandwidth pool. Three sharing disciplines cover the paper's
    needs:
    {ul
    {- [`Linear]: the paper's linear interference model — concurrent flows
       split the aggregate bandwidth proportionally to the node count of
       their jobs. Used by the Oblivious strategies; token strategies also
       run on it, trivially, since they keep at most one flow active.}
    {- [`Degraded alpha]: the "more adversarial interference model" of the
       paper's footnote 2 — with [k] concurrent flows the aggregate
       throughput itself drops to [beta / (1 + alpha (k - 1))] before being
       split proportionally, modelling the super-linear slowdowns Luu et
       al. observed on production PFSes. [alpha = 0] degenerates to
       [`Linear].}
    {- [`Unshared]: every flow gets the full aggregate bandwidth regardless
       of concurrency — the "no interference" baseline runs.}}

    On every membership change the subsystem {e settles} all active flows
    (accrues transferred volume at the old rates, emitting metrics), then
    recomputes rates and completion events. Regular transfers are credited
    to {!Metrics.Regular_io} at their nominal-rate share and to
    {!Metrics.Io_dilation} for the remainder; checkpoint and recovery flows
    are pure waste. *)

type sharing = [ `Linear | `Degraded of float | `Unshared ]

type io_kind = Input | Output | Ckpt | Recovery | Drain

val io_kind_name : io_kind -> string
(** [Drain] marks background burst-buffer drains: they consume PFS
    bandwidth (and so interfere) but occupy no compute nodes, hence record
    no node-seconds. *)

type t
type flow

val create :
  engine:Cocheck_des.Engine.t ->
  metrics:Metrics.t ->
  bandwidth_gbs:float ->
  sharing:sharing ->
  t

val start_flow :
  t ->
  job:int ->
  nodes:int ->
  kind:io_kind ->
  volume_gb:float ->
  on_complete:(unit -> unit) ->
  flow
(** Begin a transfer at the current simulation time. [on_complete] fires
    from an engine event when the last byte lands; a zero-volume transfer
    completes via an immediate event (still asynchronously, preserving
    event ordering). *)

val abort_flow : t -> flow -> unit
(** Settle and drop a flow without firing its completion (job killed).
    Idempotent; aborting a completed flow is a no-op. *)

val active_count : t -> int
val active_rate : t -> flow -> float option
(** Current GB/s of a live flow (after the last settle). *)

val current_rate_gbs : t -> float
(** Aggregate granted rate across all live flows right now — the
    instantaneous device utilization numerator for time-series probes.
    Equals the configured bandwidth whenever flows are active under
    [`Linear], less under [`Degraded]. *)

val bandwidth_gbs : t -> float
(** The configured aggregate bandwidth. *)

val remaining_gb : t -> flow -> float option
val flow_job : flow -> int
val flow_kind : flow -> io_kind

val transferred_gb : t -> float
(** Aggregate volume actually moved so far, for conservation tests. *)
