(** The time-shared parallel file system.

    Flows (input, output, checkpoint, recovery transfers) draw from one
    aggregate bandwidth pool. Three sharing disciplines cover the paper's
    needs:
    {ul
    {- [`Linear]: the paper's linear interference model — concurrent flows
       split the aggregate bandwidth proportionally to the node count of
       their jobs. Used by the Oblivious strategies; token strategies also
       run on it, trivially, since they keep at most one flow active.}
    {- [`Degraded alpha]: the "more adversarial interference model" of the
       paper's footnote 2 — with [k] concurrent flows the aggregate
       throughput itself drops to [beta / (1 + alpha (k - 1))] before being
       split proportionally, modelling the super-linear slowdowns Luu et
       al. observed on production PFSes. [alpha = 0] degenerates to
       [`Linear].}
    {- [`Unshared]: every flow gets the full aggregate bandwidth regardless
       of concurrency — the "no interference" baseline runs.}}

    Regular transfers are credited to {!Metrics.Regular_io} at their
    nominal-rate share and to {!Metrics.Io_dilation} for the remainder;
    checkpoint and recovery flows are pure waste.

    The implementation is incremental: flow progress is tracked in virtual
    service time (under proportional sharing every rate factors as
    [weight x slope(t)] with a slope common to all flows), so a membership
    change costs O(log n) — advance the virtual clock, adjust the weight
    total, touch a min-heap of virtual completion deadlines and retime the
    {e single} calendar event that tracks the heap minimum. Ledger entries
    settle lazily, at flow completion/abort or an explicit {!sync}; ledger
    totals match the eager full-rescan reference ({!Io_reference}) within
    float tolerance, enforced by a differential test.

    Flow state lives in a pooled struct-of-arrays layout: a {!flow} is a
    generation-tagged immediate handle (like {!Cocheck_util.Pqueue}
    handles), so the start/complete/abort cycle reuses slots and allocates
    nothing, and a handle held past its flow's end is detected rather than
    aliasing the slot's next tenant. *)

type sharing = [ `Linear | `Degraded of float | `Unshared ]

type io_kind = Input | Output | Ckpt | Recovery | Drain

val io_kind_name : io_kind -> string
(** [Drain] marks background burst-buffer drains: they consume PFS
    bandwidth (and so interfere) but occupy no compute nodes, hence record
    no node-seconds. *)

type t
type flow

val create :
  engine:Cocheck_des.Engine.t ->
  metrics:Metrics.t ->
  bandwidth_gbs:float ->
  sharing:sharing ->
  t

val start_flow :
  t ->
  job:int ->
  nodes:int ->
  kind:io_kind ->
  volume_gb:float ->
  on_complete:(unit -> unit) ->
  flow
(** Begin a transfer at the current simulation time. [on_complete] fires
    from an engine event when the last byte lands; a zero-volume transfer
    completes via an immediate event (still asynchronously, preserving
    event ordering). *)

val abort_flow : t -> flow -> unit
(** Settle and drop a flow without firing its completion (job killed).
    Idempotent; aborting a completed flow is a no-op. *)

val active_count : t -> int
val active_rate : t -> flow -> float option
(** Current GB/s of a live flow (after the last settle). *)

val current_rate_gbs : t -> float
(** Aggregate granted rate across all live flows right now — the
    instantaneous device utilization numerator for time-series probes.
    Equals the configured bandwidth whenever flows are active under
    [`Linear], less under [`Degraded]. *)

val bandwidth_gbs : t -> float
(** The configured aggregate bandwidth. *)

val remaining_gb : t -> flow -> float option
(** Volume left on a live flow as of the current simulation time. *)

val flow_job : t -> flow -> int
(** Owning job of a live flow; raises [Invalid_argument] on a stale
    handle. *)

val flow_kind : t -> flow -> io_kind
(** Kind of a live flow; raises [Invalid_argument] on a stale handle. *)

val flow_id : flow -> int
(** The handle as an integer key: unique among live flows and never reused
    for a slot's next tenant (the generation tag differs). Stable key for
    external per-flow tables (e.g. the burst buffer's in-flight index). *)

val sync : t -> unit
(** Force pending ledger entries out to {!Metrics} for every live flow, up
    to the current simulation time. Metrics settle lazily (at completion or
    abort); call this before reading the ledger mid-run — time-series
    probes do. Idempotent at a fixed time; does not perturb flow
    schedules. *)

val transferred_gb : t -> float
(** Aggregate volume actually moved so far (committed plus in-flight), for
    conservation tests and device-utilization summaries. *)
