(** A burst-buffer tier in front of the parallel file system — the paper's
    Section 8 extension ("As burst-buffers and other NVRAM storage
    mechanisms become more common, a natural extension of this work would
    consider their impact on I/O contention/interference").

    Model: a fast absorbing tier of limited capacity. Checkpoints whose
    size fits in the free capacity commit at burst-buffer speed (its own
    bandwidth pool, linear sharing among concurrent writers) and then
    {e drain} to the PFS in the background, one at a time, as
    {!Io_subsystem.Drain} flows that contend with foreground PFS traffic
    but hold no compute nodes. Capacity is reserved when a write starts
    and released when its drain completes. A job whose newest committed
    checkpoint is still in the buffer recovers at burst-buffer speed;
    otherwise it recovers from the PFS.

    The simulator consults {!fits} when a checkpoint starts: full buffers
    spill the commit to the regular PFS path of the active strategy. *)

type spec = { capacity_gb : float; bandwidth_gbs : float }

val spec_validate : spec -> unit

type t

val create :
  engine:Cocheck_des.Engine.t ->
  metrics:Metrics.t ->
  pfs:Io_subsystem.t ->
  spec ->
  t

val fits : t -> volume_gb:float -> bool
(** Whether a write of this size can be absorbed right now. *)

val write :
  t ->
  owner:int ->
  job:int ->
  nodes:int ->
  volume_gb:float ->
  on_complete:(unit -> unit) ->
  Io_subsystem.flow option
(** Start a checkpoint write into the buffer. [owner] is the stable job
    identity (survives restarts — the spec id), [job] the running instance.
    Reserves capacity immediately. [None] when the volume does not fit
    ({!fits}): the spill is counted here ({!writes_spilled}) and the caller
    falls back to its PFS path. On completion the checkpoint becomes the
    owner's newest resident copy and a background drain is queued. *)

val abort_write : t -> Io_subsystem.flow -> unit
(** Cancel an in-flight write (job killed): the transfer stops, the
    reservation is released, nothing becomes resident. No-op on flows this
    buffer does not know. *)

val resident_for : t -> owner:int -> bool
(** Whether the owner's newest committed checkpoint is still in the buffer
    (resident or draining), i.e. recovery can read at buffer speed. *)

val read :
  t ->
  owner:int ->
  job:int ->
  nodes:int ->
  volume_gb:float ->
  on_complete:(unit -> unit) ->
  Io_subsystem.flow
(** Recovery read at buffer speed. Requires {!resident_for}. *)

val io : t -> Io_subsystem.t
(** The buffer's internal bandwidth pool (for aborting its flows). *)

val used_gb : t -> float
val free_gb : t -> float
val drains_pending : t -> int
val writes_absorbed : t -> int

val writes_spilled : t -> int
(** Writes that bypassed the buffer because they did not fit (counted by
    {!write} returning [None]). *)
