(** List-based Least-Waste arbitration — the differential-testing oracle.

    The straightforward formulation of the Section 3.4 policy: an
    arrival-ordered request list, a candidate list materialized per grant,
    selection by the O(pending²) {!Cocheck_core.Least_waste.select}. The
    production {!Arbiter.least_waste} answers the same grants from O(1)-
    maintained affine aggregates (see {!Cocheck_core.Least_waste.Aggregate});
    [test/test_arbiter_differential.ml] replays randomized request schedules
    through both and demands identical selections (equal inflicted wastes on
    floating-point near-ties). Test/bench-only — the simulator never
    constructs this policy. *)

val to_candidate :
  bandwidth_gbs:float -> now:float -> Sim_types.request -> Cocheck_core.Candidate.t
(** The Eq. (1)/(2) candidate a pending request denotes at time [now]:
    blocking transfers compete on waiting time and exclusive-bandwidth
    service time, checkpoint requests on exposure since their last commit. *)

val arbiter :
  node_mtbf_s:float -> bandwidth_gbs:float -> unit -> Sim_types.arbiter
(** A fresh oracle arbiter. Satisfies the {!Sim_types.ARBITER} contract
    (eager cancellation, arrival-order ties) with the retired list pool. *)
