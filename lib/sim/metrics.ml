type kind =
  | Work
  | Regular_io
  | Io_dilation
  | Ckpt_io
  | Local_ckpt
  | Wait
  | Recovery_io
  | Lost_work

let all_kinds =
  [ Work; Regular_io; Io_dilation; Ckpt_io; Local_ckpt; Wait; Recovery_io; Lost_work ]

let kind_name = function
  | Work -> "work"
  | Regular_io -> "regular-io"
  | Io_dilation -> "io-dilation"
  | Ckpt_io -> "ckpt-io"
  | Local_ckpt -> "local-ckpt"
  | Wait -> "wait"
  | Recovery_io -> "recovery-io"
  | Lost_work -> "lost-work"

let is_progress = function
  | Work | Regular_io -> true
  | Io_dilation | Ckpt_io | Local_ckpt | Wait | Recovery_io | Lost_work -> false

let kind_index = function
  | Work -> 0
  | Regular_io -> 1
  | Io_dilation -> 2
  | Ckpt_io -> 3
  | Local_ckpt -> 4
  | Wait -> 5
  | Recovery_io -> 6
  | Lost_work -> 7

type t = {
  seg_start : float;
  seg_end : float;
  totals : float array;
  mutable enrolled : float;
}

let create ~seg_start ~seg_end =
  if seg_start > seg_end then invalid_arg "Metrics.create: empty segment";
  { seg_start; seg_end; totals = Array.make 8 0.0; enrolled = 0.0 }

let segment t = (t.seg_start, t.seg_end)

let clipped_span t ~t0 ~t1 =
  if t0 > t1 then invalid_arg "Metrics.record: reversed interval";
  let a = Float.max t0 t.seg_start and b = Float.min t1 t.seg_end in
  if b > a then b -. a else 0.0

let record t ~t0 ~t1 ~nodes kind =
  if nodes < 0 then invalid_arg "Metrics.record: negative node count";
  let span = clipped_span t ~t0 ~t1 in
  if span > 0.0 && nodes > 0 then begin
    let i = kind_index kind in
    t.totals.(i) <- t.totals.(i) +. (span *. float_of_int nodes)
  end

let record_weighted t ~t0 ~t1 ~nodes ~fraction ~progress ~waste =
  if fraction < -1e-9 || fraction > 1.0 +. 1e-9 then
    invalid_arg "Metrics.record_weighted: fraction outside [0,1]";
  let fraction = Float.min 1.0 (Float.max 0.0 fraction) in
  let span = clipped_span t ~t0 ~t1 in
  if span > 0.0 && nodes > 0 then begin
    let ns = span *. float_of_int nodes in
    let pi = kind_index progress and wi = kind_index waste in
    t.totals.(pi) <- t.totals.(pi) +. (ns *. fraction);
    t.totals.(wi) <- t.totals.(wi) +. (ns *. (1.0 -. fraction))
  end

let record_enrolled t ~t0 ~t1 ~nodes =
  if nodes < 0 then invalid_arg "Metrics.record_enrolled: negative node count";
  let span = clipped_span t ~t0 ~t1 in
  t.enrolled <- t.enrolled +. (span *. float_of_int nodes)

let total t kind = t.totals.(kind_index kind)

(* Unrolled over the fixed kind indices so results are a pure O(1) read
   with no fold (and no closure) per call. Bit-identical to the retired
   [List.fold_left] over [all_kinds]: the fold seeded with 0.0 and
   0.0 +. x = x for the non-negative totals, so the left-associated sums
   below are the exact same float expressions. *)
let progress_ns t = t.totals.(0) +. t.totals.(1)

let waste_ns t =
  t.totals.(2) +. t.totals.(3) +. t.totals.(4) +. t.totals.(5) +. t.totals.(6)
  +. t.totals.(7)

let enrolled_ns t = t.enrolled
let by_kind t = List.map (fun k -> (k, total t k)) all_kinds

let pp ppf t =
  Format.fprintf ppf "@[<v>segment [%g, %g]: progress=%.4g waste=%.4g enrolled=%.4g"
    t.seg_start t.seg_end (progress_ns t) (waste_ns t) (enrolled_ns t);
  List.iter
    (fun (k, v) -> if v > 0.0 then Format.fprintf ppf "@,  %-12s %.4g" (kind_name k) v)
    (by_kind t);
  Format.fprintf ppf "@]"
