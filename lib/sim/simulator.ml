open Cocheck_util
module Engine = Cocheck_des.Engine
module Strategy = Cocheck_core.Strategy
module Candidate = Cocheck_core.Candidate
module Least_waste = Cocheck_core.Least_waste
module Daly = Cocheck_core.Daly
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Jobgen = Cocheck_model.Jobgen
module Io = Io_subsystem

type result = {
  progress_ns : float;
  waste_ns : float;
  enrolled_ns : float;
  by_kind : (Metrics.kind * float) list;
  failures_seen : int;
  failures_hitting_jobs : int;
  ckpts_committed : int;
  ckpts_aborted : int;
  restarts : int;
  jobs_started : int;
  jobs_completed : int;
  events : int;
  mean_ckpt_interval : (string * float) list;
  specs_total : int;
  bb_absorbed : int;
  bb_spilled : int;
  mean_ckpt_wait : (string * float) list;
  utilization : float;
  io_busy_fraction : float;
  restarts_by_class : (string * int) list;
  lost_work_by_class : (string * float) list;
      (* raw node-seconds rolled back per class, not segment-clipped *)
}

type snapshot = {
  snap_time : float;
  free_nodes : int;
  used_nodes : int;
  queued_jobs : int;
  running_insts : int;
  computing : int;
  in_io : int;
  waiting : int;
  token_queue : int;
  token_busy : bool;
  io_flows : int;
  io_rate_gbs : float;
  bandwidth_gbs : float;
  progress_ns : float;
  waste_ns : float;
  waste_by_kind : (Metrics.kind * float) list;
}

type hooks = {
  on_token_wait : float -> unit;
  on_ckpt_duration : float -> unit;
  on_io_dilation : float -> unit;
  on_lost_work : float -> unit;
}

let no_hooks =
  {
    on_token_wait = ignore;
    on_ckpt_duration = ignore;
    on_io_dilation = ignore;
    on_lost_work = ignore;
  }

(* A queued (re)submission. [remaining] is the work left after the last
   committed checkpoint; [recovery] marks a restart whose input read is
   failure-induced. *)
type restart_kind = Fresh | Soft | Hard

type entry = {
  e_spec : Jobgen.spec;
  e_remaining : float;
  e_restart : restart_kind;
  e_has_ckpt : bool;  (* some instance of this job ever committed globally *)
  e_restarts : int;
}

type activity =
  | Doing_io of Io.t * Io.flow * Io.io_kind
  | Computing
  | Computing_pending  (* non-blocking: computing with a checkpoint request out *)
  | Waiting_io of Io.io_kind
  | Waiting_ckpt  (* blocking FCFS: idle until the token grants the commit *)
  | Local_ckpt  (* two-level: paused for a node-local snapshot *)
  | Local_recovery  (* two-level: restarting from node-local state *)

type inst = {
  idx : int;
  spec : Jobgen.spec;
  total_work : float;
  entry_has_ckpt : bool;
  restarts : int;
  nodes : Node_pool.allocation;
  start_time : float;
  period : float;  (* P_i under the strategy's period rule *)
  ckpt_nominal : float;  (* C_i at full bandwidth *)
  mutable activity : activity;
  mutable work_done : float;
  mutable committed : float;
  mutable has_ckpt : bool;  (* committed during this instance *)
  mutable compute_start : float;
  mutable uncommitted : (float * float) list;  (* work intervals since last commit *)
  mutable last_commit_end : float;
  mutable ckpt_request_ev : Engine.handle option;
  mutable work_done_ev : Engine.handle option;
  mutable wait_start : float;
  mutable ckpt_content : float;  (* work level a commit in flight captures *)
  mutable holds_token : bool;
  (* two-level checkpointing state *)
  mutable committed_local : float;  (* work level of the newest local snapshot *)
  mutable local_safe_time : float;  (* wall time of that capture point *)
  mutable local_pause_start : float;
  mutable local_tick_ev : Engine.handle option;
  mutable local_done_ev : Engine.handle option;
  mutable delay_ev : Engine.handle option;  (* local-recovery delay *)
}

type rkind = Req_ckpt | Req_io of Io.io_kind

type request = {
  r_id : int;
  r_inst : inst;
  r_kind : rkind;
  r_volume : float;
  r_at : float;
  mutable r_cancelled : bool;
}

type w = {
  cfg : Config.t;
  classes : App_class.t array;
  engine : Engine.t;
  metrics : Metrics.t;
  io : Io.t;
  pool : Node_pool.t;
  periods : float array;  (* per class index *)
  ckpt_nominals : float array;
  uses_token : bool;
  ckpt_enabled : bool;
  lw : bool;
  mutable queue : entry list;  (* priority order: restarts first *)
  fifo : request Queue.t;
  mutable lw_pool : request list;  (* arrival order *)
  insts : (int, inst) Hashtbl.t;
  bb : Burst_buffer.t option;
  trace : Trace.t option;
  hooks : hooks option;  (* None keeps the hot path allocation-free *)
  soft_rng : Rng.t;  (* classifies failures soft/hard under two-level CR *)
  mutable token_busy : bool;
  mutable next_inst : int;
  mutable next_req : int;
  interval_stats : Stats.running array;
  ckpt_wait_stats : Stats.running array;
  restarts_by_class : int array;
  lost_ns_by_class : float array;
  mutable failures_seen : int;
  mutable failures_hitting_jobs : int;
  mutable ckpts_committed : int;
  mutable ckpts_aborted : int;
  mutable restarts : int;
  mutable jobs_started : int;
  mutable jobs_completed : int;
}

let eps_work = 1e-6

let generate_specs (cfg : Config.t) =
  let rng = Rng.substream (Rng.create ~seed:cfg.seed) "jobs" in
  Jobgen.generate ~rng ~platform:cfg.platform ~classes:cfg.classes
    ~min_duration_s:cfg.min_duration_s ~fill_factor:cfg.fill_factor ()

let now w = Engine.now w.engine

let cancel_ckpt_request_ev w inst =
  match inst.ckpt_request_ev with
  | Some h ->
      ignore (Engine.cancel w.engine h);
      inst.ckpt_request_ev <- None
  | None -> ()

let cancel_work_done_ev w inst =
  match inst.work_done_ev with
  | Some h ->
      ignore (Engine.cancel w.engine h);
      inst.work_done_ev <- None
  | None -> ()

let cancel_requests_of w inst =
  Queue.iter (fun r -> if r.r_inst.idx = inst.idx then r.r_cancelled <- true) w.fifo;
  w.lw_pool <- List.filter (fun r -> r.r_inst.idx <> inst.idx) w.lw_pool

(* Close the open compute interval: bank the work and remember the interval
   as uncommitted until the next checkpoint commits (or a failure loses it). *)
let pause_compute w inst =
  (match inst.activity with
  | Computing | Computing_pending -> ()
  | _ -> invalid_arg "Simulator.pause_compute: not computing");
  cancel_work_done_ev w inst;
  let t = now w in
  if t > inst.compute_start then begin
    inst.work_done <- inst.work_done +. (t -. inst.compute_start);
    inst.uncommitted <- (inst.compute_start, t) :: inst.uncommitted
  end

let flush_uncommitted w inst kind =
  List.iter
    (fun (t0, t1) -> Metrics.record w.metrics ~t0 ~t1 ~nodes:inst.spec.nodes kind)
    inst.uncommitted;
  inst.uncommitted <- []

let record_wait w inst ~from =
  Metrics.record w.metrics ~t0:from ~t1:(now w) ~nodes:inst.spec.nodes Metrics.Wait

let emit w ~job ~inst kind =
  match w.trace with
  | Some t -> Trace.record t { Trace.time = now w; job; inst; kind }
  | None -> ()

let emit_inst w (inst : inst) kind = emit w ~job:inst.spec.Jobgen.id ~inst:inst.idx kind

let bandwidth w = w.cfg.platform.Platform.bandwidth_gbs

let cancel_local_events w inst =
  List.iter
    (fun h_opt -> match h_opt with Some h -> ignore (Engine.cancel w.engine h) | None -> ())
    [ inst.local_tick_ev; inst.local_done_ev; inst.delay_ev ];
  inst.local_tick_ev <- None;
  inst.local_done_ev <- None;
  inst.delay_ev <- None

(* ------------------------------------------------------------------ *)
(* Mutually recursive event handlers.                                   *)
(* ------------------------------------------------------------------ *)

let rec try_start w =
  (* Greedy first-fit over the priority-ordered queue: start every entry
     that fits in the currently free nodes. Explicit recursion fixes the
     left-to-right evaluation the allocation side effects rely on. *)
  let rec go acc = function
    | [] -> List.rev acc
    | entry :: rest -> (
        match
          Node_pool.alloc w.pool ~job:w.next_inst ~count:entry.e_spec.Jobgen.nodes
        with
        | None -> go (entry :: acc) rest
        | Some nodes ->
            start_instance w entry nodes;
            go acc rest)
  in
  w.queue <- go [] w.queue

and start_instance w entry nodes =
  let ci = entry.e_spec.Jobgen.class_index in
  let inst =
    {
      idx = w.next_inst;
      spec = entry.e_spec;
      total_work = entry.e_remaining;
      entry_has_ckpt = entry.e_has_ckpt;
      restarts = entry.e_restarts;
      nodes;
      start_time = now w;
      period = w.periods.(ci);
      ckpt_nominal = w.ckpt_nominals.(ci);
      activity = Computing;
      work_done = 0.0;
      committed = 0.0;
      has_ckpt = false;
      compute_start = now w;
      uncommitted = [];
      last_commit_end = now w;
      ckpt_request_ev = None;
      work_done_ev = None;
      wait_start = now w;
      ckpt_content = 0.0;
      holds_token = false;
      committed_local = 0.0;
      local_safe_time = now w;
      local_pause_start = now w;
      local_tick_ev = None;
      local_done_ev = None;
      delay_ev = None;
    }
  in
  w.next_inst <- w.next_inst + 1;
  w.jobs_started <- w.jobs_started + 1;
  Hashtbl.replace w.insts inst.idx inst;
  emit_inst w inst
    (Trace.Job_started { restarts = inst.restarts; nodes = inst.spec.Jobgen.nodes });
  match (entry.e_restart, w.cfg.multilevel) with
  | Soft, Some m ->
      (* Restart from node-local state: a fixed delay, no PFS traffic. *)
      inst.activity <- Local_recovery;
      inst.wait_start <- now w;
      inst.delay_ev <-
        Some
          (Engine.schedule_after w.engine ~delay:m.Config.local_recovery_s (fun _ ->
               inst.delay_ev <- None;
               Metrics.record w.metrics ~t0:inst.wait_start ~t1:(now w)
                 ~nodes:inst.spec.Jobgen.nodes Metrics.Recovery_io;
               on_blocking_io_done w inst Io.Recovery))
  | (Fresh | Soft | Hard), _ ->
      let volume =
        if entry.e_restart <> Fresh then
          if entry.e_has_ckpt then inst.spec.Jobgen.ckpt_gb else inst.spec.Jobgen.input_gb
        else inst.spec.Jobgen.input_gb
      in
      let kind = if entry.e_restart <> Fresh then Io.Recovery else Io.Input in
      begin_blocking_io w inst kind volume

(* Initial input, recovery reads and final outputs are blocking in every
   strategy; under a token discipline they queue, otherwise they start at
   once. *)
and begin_blocking_io w inst kind volume =
  match (kind, w.bb) with
  | Io.Recovery, Some bb when Burst_buffer.resident_for bb ~owner:inst.spec.Jobgen.id ->
      (* Fast restart: the newest checkpoint is still in the burst buffer. *)
      let flow =
        Burst_buffer.read bb ~owner:inst.spec.Jobgen.id ~job:inst.idx
          ~nodes:inst.spec.Jobgen.nodes ~volume_gb:volume ~on_complete:(fun () ->
            on_blocking_io_done w inst kind)
      in
      inst.activity <- Doing_io (Burst_buffer.io bb, flow, kind)
  | _ ->
  if volume <= 0.0 then begin
    (* No bytes to move: complete through the flow engine's zero-volume
       path (an immediate event a kill can still abort), without taking the
       token. *)
    let flow =
      Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind ~volume_gb:0.0
        ~on_complete:(fun () -> on_blocking_io_done w inst kind)
    in
    inst.activity <- Doing_io (w.io, flow, kind)
  end
  else if w.uses_token then begin
    inst.activity <- Waiting_io kind;
    inst.wait_start <- now w;
    enqueue_request w inst (Req_io kind) volume;
    try_grant w
  end
  else begin
    let flow =
      Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind ~volume_gb:volume
        ~on_complete:(blocking_complete w inst kind ~volume)
    in
    inst.activity <- Doing_io (w.io, flow, kind)
  end

(* Completion continuation for a blocking transfer; when instrumentation is
   on, regular input/output transfers additionally report their dilation
   factor (actual over nominal full-bandwidth duration). *)
and blocking_complete w inst kind ~volume =
  match w.hooks with
  | Some h when (kind = Io.Input || kind = Io.Output) && volume > 0.0 ->
      let t0 = now w in
      let nominal = volume /. bandwidth w in
      fun () ->
        h.on_io_dilation ((now w -. t0) /. nominal);
        on_blocking_io_done w inst kind
  | _ -> fun () -> on_blocking_io_done w inst kind

and release_token w inst =
  if inst.holds_token then begin
    inst.holds_token <- false;
    w.token_busy <- false
  end

and on_blocking_io_done w inst kind =
  release_token w inst;
  (match kind with
  | Io.Input | Io.Recovery ->
      (* Work phase begins: exposure clock starts, the first checkpoint
         request lands one (P − C) from now (subsequent requests measure
         from each commit's end, Section 2). *)
      emit_inst w inst Trace.Input_done;
      inst.last_commit_end <- now w;
      inst.local_safe_time <- now w;
      schedule_ckpt_request w inst;
      schedule_local_tick w inst;
      start_compute w inst
  | Io.Output -> finish_job w inst
  | Io.Ckpt | Io.Drain -> assert false);
  if w.uses_token then try_grant w

and start_compute w inst =
  let left = inst.total_work -. inst.work_done in
  inst.activity <- Computing;
  inst.compute_start <- now w;
  inst.work_done_ev <-
    Some
      (Engine.schedule_after w.engine ~delay:(Float.max left 0.0) (fun _ ->
           inst.work_done_ev <- None;
           on_work_complete w inst))

and schedule_local_tick w inst =
  match w.cfg.multilevel with
  | Some m when w.ckpt_enabled && inst.total_work -. inst.work_done > eps_work ->
      inst.local_tick_ev <-
        Some
          (Engine.schedule_after w.engine ~delay:m.Config.local_period_s (fun _ ->
               inst.local_tick_ev <- None;
               on_local_tick w m inst))
  | _ -> ()

and on_local_tick w m inst =
  match inst.activity with
  | Computing ->
      let left = inst.total_work -. inst.work_done -. (now w -. inst.compute_start) in
      if left <= eps_work then ()
      else begin
        pause_compute w inst;
        inst.activity <- Local_ckpt;
        inst.local_pause_start <- now w;
        inst.local_done_ev <-
          Some
            (Engine.schedule_after w.engine ~delay:m.Config.local_cost_s (fun _ ->
                 inst.local_done_ev <- None;
                 on_local_done w inst))
      end
  | Doing_io _ | Computing_pending | Waiting_io _ | Waiting_ckpt ->
      (* Busy with I/O-level activity: try again one local period later. *)
      schedule_local_tick w inst
  | Local_ckpt | Local_recovery -> assert false

and on_local_done w inst =
  Metrics.record w.metrics ~t0:inst.local_pause_start ~t1:(now w)
    ~nodes:inst.spec.Jobgen.nodes Metrics.Local_ckpt;
  (* The snapshot captures the state at the pause. Work banked before this
     point survives soft failures; it is counted as progress at the next
     soft rollback, an optimistic first-order treatment (a later hard
     failure hitting the successor before its first global commit would in
     reality re-lose it). *)
  inst.committed_local <- inst.work_done;
  inst.local_safe_time <- inst.local_pause_start;
  schedule_local_tick w inst;
  start_compute w inst

and schedule_ckpt_request w inst =
  if w.ckpt_enabled && inst.total_work -. inst.work_done > eps_work then begin
    let delay = Float.max 0.0 (inst.period -. inst.ckpt_nominal) in
    inst.ckpt_request_ev <-
      Some
        (Engine.schedule_after w.engine ~delay (fun _ ->
             inst.ckpt_request_ev <- None;
             on_ckpt_request w inst))
  end

and on_ckpt_request w inst =
  emit_inst w inst Trace.Ckpt_requested;
  match inst.activity with
  | Computing ->
      let left = inst.total_work -. inst.work_done -. (now w -. inst.compute_start) in
      if left <= eps_work then ()
        (* the work-completion event fires at this same instant; skip *)
      else begin
        match w.bb with
        | Some bb when Burst_buffer.fits bb ~volume_gb:inst.spec.Jobgen.ckpt_gb ->
            (* The buffer absorbs the commit at its own speed, bypassing
               the strategy's PFS arbitration entirely. *)
            pause_compute w inst;
            start_bb_ckpt_flow w bb inst
        | bb_opt ->
        Option.iter (fun bb -> Burst_buffer.note_spill bb) bb_opt;
        match w.cfg.strategy with
        | Strategy.Oblivious _ ->
            Stats.running_add w.ckpt_wait_stats.(inst.spec.Jobgen.class_index) 0.0;
            pause_compute w inst;
            start_ckpt_flow w inst
        | Strategy.Ordered _ ->
            pause_compute w inst;
            inst.activity <- Waiting_ckpt;
            inst.wait_start <- now w;
            enqueue_request w inst Req_ckpt inst.spec.Jobgen.ckpt_gb;
            try_grant w
        | Strategy.Ordered_nb _ | Strategy.Least_waste ->
            inst.activity <- Computing_pending;
            enqueue_request w inst Req_ckpt inst.spec.Jobgen.ckpt_gb;
            try_grant w
        | Strategy.Baseline -> assert false
      end
  | Local_ckpt ->
      (* A local snapshot is in flight: retry just after it finishes. *)
      let retry =
        match w.cfg.multilevel with
        | Some m -> Float.max m.Config.local_cost_s 1.0
        | None -> 1.0
      in
      inst.ckpt_request_ev <-
        Some
          (Engine.schedule_after w.engine ~delay:retry (fun _ ->
               inst.ckpt_request_ev <- None;
               on_ckpt_request w inst))
  | Doing_io _ | Computing_pending | Waiting_io _ | Waiting_ckpt | Local_recovery ->
      (* Requests are cancelled whenever the job leaves the computing state,
         so a firing request always finds it computing (or locally
         snapshotting). *)
      assert false

and ckpt_complete w inst =
  match w.hooks with
  | Some h ->
      let t0 = now w in
      fun () ->
        h.on_ckpt_duration (now w -. t0);
        on_ckpt_done w inst
  | None -> fun () -> on_ckpt_done w inst

and start_ckpt_flow w inst =
  emit_inst w inst Trace.Ckpt_started;
  inst.ckpt_content <- inst.work_done;
  let flow =
    Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind:Io.Ckpt
      ~volume_gb:inst.spec.Jobgen.ckpt_gb ~on_complete:(ckpt_complete w inst)
  in
  inst.activity <- Doing_io (w.io, flow, Io.Ckpt)

and start_bb_ckpt_flow w bb inst =
  emit_inst w inst Trace.Ckpt_started;
  inst.ckpt_content <- inst.work_done;
  let flow =
    Burst_buffer.write bb ~owner:inst.spec.Jobgen.id ~job:inst.idx
      ~nodes:inst.spec.Jobgen.nodes ~volume_gb:inst.spec.Jobgen.ckpt_gb
      ~on_complete:(ckpt_complete w inst)
  in
  inst.activity <- Doing_io (Burst_buffer.io bb, flow, Io.Ckpt)

and on_ckpt_done w inst =
  release_token w inst;
  inst.committed <- inst.ckpt_content;
  emit_inst w inst (Trace.Ckpt_committed { work = inst.ckpt_content });
  if inst.ckpt_content > inst.committed_local then inst.committed_local <- inst.ckpt_content;
  inst.local_safe_time <- now w;
  flush_uncommitted w inst Metrics.Work;
  if inst.has_ckpt then
    Stats.running_add
      w.interval_stats.(inst.spec.Jobgen.class_index)
      (now w -. inst.last_commit_end);
  inst.has_ckpt <- true;
  inst.last_commit_end <- now w;
  w.ckpts_committed <- w.ckpts_committed + 1;
  schedule_ckpt_request w inst;
  start_compute w inst;
  if w.uses_token then try_grant w

and on_work_complete w inst =
  emit_inst w inst Trace.Work_completed;
  pause_compute w inst;
  cancel_local_events w inst;
  cancel_ckpt_request_ev w inst;
  cancel_requests_of w inst;
  begin_blocking_io w inst Io.Output inst.spec.Jobgen.output_gb

and finish_job w inst =
  emit_inst w inst Trace.Job_completed;
  flush_uncommitted w inst Metrics.Work;
  Metrics.record_enrolled w.metrics ~t0:inst.start_time ~t1:(now w)
    ~nodes:inst.spec.Jobgen.nodes;
  Node_pool.release w.pool inst.nodes;
  Hashtbl.remove w.insts inst.idx;
  w.jobs_completed <- w.jobs_completed + 1;
  try_start w

and enqueue_request w inst kind volume =
  let req =
    {
      r_id = w.next_req;
      r_inst = inst;
      r_kind = kind;
      r_volume = volume;
      r_at = now w;
      r_cancelled = false;
    }
  in
  w.next_req <- w.next_req + 1;
  if w.lw then w.lw_pool <- w.lw_pool @ [ req ] else Queue.add req w.fifo

and next_request w =
  if w.lw then begin
    match w.lw_pool with
    | [] -> None
    | pool ->
        let to_candidate r =
          match r.r_kind with
          | Req_io _ ->
              Candidate.Io
                {
                  Candidate.key = r.r_id;
                  nodes = r.r_inst.spec.Jobgen.nodes;
                  service_s = r.r_volume /. bandwidth w;
                  waited_s = now w -. r.r_at;
                }
          | Req_ckpt ->
              Candidate.Ckpt
                {
                  Candidate.key = r.r_id;
                  nodes = r.r_inst.spec.Jobgen.nodes;
                  ckpt_s = r.r_inst.ckpt_nominal;
                  exposed_s = now w -. r.r_inst.last_commit_end;
                  recovery_s = r.r_inst.ckpt_nominal;
                }
        in
        let cands = List.map to_candidate pool in
        let chosen =
          Least_waste.select ~node_mtbf_s:w.cfg.platform.Platform.node_mtbf_s cands
        in
        Option.map
          (fun c ->
            let key = Candidate.key c in
            let req = List.find (fun r -> r.r_id = key) pool in
            w.lw_pool <- List.filter (fun r -> r.r_id <> key) pool;
            req)
          chosen
  end
  else begin
    let rec pop () =
      match Queue.take_opt w.fifo with
      | None -> None
      | Some r when r.r_cancelled -> pop ()
      | Some r -> Some r
    in
    pop ()
  end

and try_grant w =
  if w.uses_token && not w.token_busy then begin
    match next_request w with
    | None -> ()
    | Some req ->
        w.token_busy <- true;
        let inst = req.r_inst in
        inst.holds_token <- true;
        emit_inst w inst Trace.Token_granted;
        (match w.hooks with
        | Some h -> h.on_token_wait (now w -. req.r_at)
        | None -> ());
        (match req.r_kind with
        | Req_io kind ->
            record_wait w inst ~from:inst.wait_start;
            let flow =
              Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind
                ~volume_gb:req.r_volume
                ~on_complete:(blocking_complete w inst kind ~volume:req.r_volume)
            in
            inst.activity <- Doing_io (w.io, flow, kind)
        | Req_ckpt ->
            Stats.running_add
              w.ckpt_wait_stats.(inst.spec.Jobgen.class_index)
              (now w -. req.r_at);
            (match inst.activity with
            | Waiting_ckpt -> record_wait w inst ~from:inst.wait_start
            | Computing_pending -> pause_compute w inst
            | Doing_io _ | Computing | Waiting_io _ | Local_ckpt | Local_recovery ->
                assert false);
            start_ckpt_flow w inst)
  end

(* A flow may live on the PFS or inside the burst buffer; burst-buffer
   writes additionally hold a capacity reservation to release. *)
let abort_inst_flow w sub flow =
  match w.bb with
  | Some bb when sub == Burst_buffer.io bb ->
      Burst_buffer.abort_write bb flow;
      (* Reads have no reservation; abort_write ignores them. *)
      Io.abort_flow sub flow
  | _ -> Io.abort_flow sub flow

(* ------------------------------------------------------------------ *)
(* Failures.                                                            *)
(* ------------------------------------------------------------------ *)

let kill_inst w inst =
  let t = now w in
  (match inst.activity with
  | Doing_io (sub, flow, kind) ->
      abort_inst_flow w sub flow;
      if kind = Io.Ckpt then begin
        w.ckpts_aborted <- w.ckpts_aborted + 1;
        emit_inst w inst Trace.Ckpt_aborted
      end
  | Computing | Computing_pending -> pause_compute w inst
  | Waiting_io _ | Waiting_ckpt -> record_wait w inst ~from:inst.wait_start
  | Local_ckpt ->
      Metrics.record w.metrics ~t0:inst.local_pause_start ~t1:t
        ~nodes:inst.spec.Jobgen.nodes Metrics.Local_ckpt
  | Local_recovery ->
      Metrics.record w.metrics ~t0:inst.wait_start ~t1:t ~nodes:inst.spec.Jobgen.nodes
        Metrics.Recovery_io);
  release_token w inst;
  cancel_local_events w inst;
  cancel_ckpt_request_ev w inst;
  cancel_work_done_ev w inst;
  cancel_requests_of w inst;
  let soft =
    match w.cfg.multilevel with
    | Some m -> Rng.unit_float w.soft_rng < m.Config.soft_fraction
    | None -> false
  in
  let lost, kept =
    if soft then
      (* Work captured by the newest local snapshot survives the failure. *)
      List.partition (fun (_, t1) -> t1 > inst.local_safe_time) inst.uncommitted
    else (inst.uncommitted, [])
  in
  let ci = inst.spec.Jobgen.class_index in
  let lost_s = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 lost in
  w.restarts_by_class.(ci) <- w.restarts_by_class.(ci) + 1;
  w.lost_ns_by_class.(ci) <-
    w.lost_ns_by_class.(ci) +. (float_of_int inst.spec.Jobgen.nodes *. lost_s);
  (match w.hooks with Some h -> h.on_lost_work lost_s | None -> ());
  emit_inst w inst (Trace.Job_killed { lost_work = lost_s });
  inst.uncommitted <- lost;
  flush_uncommitted w inst Metrics.Lost_work;
  inst.uncommitted <- kept;
  flush_uncommitted w inst Metrics.Work;
  Metrics.record_enrolled w.metrics ~t0:inst.start_time ~t1:t ~nodes:inst.spec.Jobgen.nodes;
  Node_pool.release w.pool inst.nodes;
  Hashtbl.remove w.insts inst.idx;
  let base = if soft then Float.max inst.committed inst.committed_local else inst.committed in
  let remaining = Float.max 0.0 (inst.total_work -. base) in
  w.restarts <- w.restarts + 1;
  w.queue <-
    {
      e_spec = inst.spec;
      e_remaining = remaining;
      e_restart = (if soft then Soft else Hard);
      e_has_ckpt = inst.has_ckpt || inst.entry_has_ckpt;
      e_restarts = inst.restarts + 1;
    }
    :: w.queue;
  try_start w;
  if w.uses_token then try_grant w

let handle_failure w (e : Failure_trace.event) =
  w.failures_seen <- w.failures_seen + 1;
  let victim =
    Option.bind (Node_pool.owner w.pool e.node) (fun idx -> Hashtbl.find_opt w.insts idx)
  in
  (* Record the victim with the failure itself so traces can correlate a
     kill with its cause; -1/-1 marks a failure striking an idle node. *)
  (match victim with
  | Some inst ->
      emit w ~job:inst.spec.Jobgen.id ~inst:inst.idx (Trace.Node_failure { node = e.node })
  | None -> emit w ~job:(-1) ~inst:(-1) (Trace.Node_failure { node = e.node }));
  match victim with
  | None -> ()
  | Some inst ->
      w.failures_hitting_jobs <- w.failures_hitting_jobs + 1;
      kill_inst w inst

let rec schedule_failures w trace =
  let t = Failure_trace.peek_time trace in
  if t <= w.cfg.horizon then
    ignore
      (Engine.schedule_at w.engine ~time:t (fun _ ->
           let e = Failure_trace.next trace in
           handle_failure w e;
           schedule_failures w trace))

(* ------------------------------------------------------------------ *)
(* Time-series probes.                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_of w =
  (* Ledger entries settle lazily in the flow scheduler; flush both
     subsystems so the probe reads current totals. *)
  Io.sync w.io;
  (match w.bb with Some bb -> Io.sync (Burst_buffer.io bb) | None -> ());
  let computing = ref 0 and in_io = ref 0 and waiting = ref 0 in
  Hashtbl.iter
    (fun _ inst ->
      match inst.activity with
      | Computing | Computing_pending -> incr computing
      | Doing_io _ -> incr in_io
      | Waiting_io _ | Waiting_ckpt | Local_ckpt | Local_recovery -> incr waiting)
    w.insts;
  let token_queue =
    Queue.fold (fun acc r -> if r.r_cancelled then acc else acc + 1) 0 w.fifo
    + List.length w.lw_pool
  in
  {
    snap_time = now w;
    free_nodes = Node_pool.free_count w.pool;
    used_nodes = Node_pool.used_count w.pool;
    queued_jobs = List.length w.queue;
    running_insts = Hashtbl.length w.insts;
    computing = !computing;
    in_io = !in_io;
    waiting = !waiting;
    token_queue;
    token_busy = w.token_busy;
    io_flows = Io.active_count w.io;
    io_rate_gbs = Io.current_rate_gbs w.io;
    bandwidth_gbs = bandwidth w;
    progress_ns = Metrics.progress_ns w.metrics;
    waste_ns = Metrics.waste_ns w.metrics;
    waste_by_kind = Metrics.by_kind w.metrics;
  }

(* Probes ride the engine calendar at t = dt, 2dt, ...; read-only, so they
   cannot perturb the schedule (FIFO ordering at equal times aside, the
   probe closures touch no simulation state). *)
let schedule_probes w ~dt observe =
  if not (Float.is_finite dt && dt > 0.0) then
    invalid_arg "Simulator.run: sample interval must be positive";
  let rec tick _ =
    observe (snapshot_of w);
    if now w +. dt <= w.cfg.horizon then
      ignore (Engine.schedule_after w.engine ~delay:dt tick)
  in
  ignore (Engine.schedule_after w.engine ~delay:dt tick)

(* ------------------------------------------------------------------ *)
(* Top level.                                                           *)
(* ------------------------------------------------------------------ *)

let finalize w =
  (* The horizon cut: settle transfers, close compute intervals, and count
     still-uncommitted work as progress — it would commit eventually, and
     the exclusion of the final day keeps the bias marginal. *)
  let t = w.cfg.horizon in
  let running = Hashtbl.fold (fun _ inst acc -> inst :: acc) w.insts [] in
  List.iter
    (fun inst ->
      (match inst.activity with
      | Doing_io (sub, flow, _) -> abort_inst_flow w sub flow
      | Computing | Computing_pending -> pause_compute w inst
      | Waiting_io _ | Waiting_ckpt -> record_wait w inst ~from:inst.wait_start
      | Local_ckpt ->
          Metrics.record w.metrics ~t0:inst.local_pause_start ~t1:t
            ~nodes:inst.spec.Jobgen.nodes Metrics.Local_ckpt
      | Local_recovery ->
          Metrics.record w.metrics ~t0:inst.wait_start ~t1:t ~nodes:inst.spec.Jobgen.nodes
            Metrics.Recovery_io);
      flush_uncommitted w inst Metrics.Work;
      Metrics.record_enrolled w.metrics ~t0:inst.start_time ~t1:t
        ~nodes:inst.spec.Jobgen.nodes)
    running

(* Theorem 1 periods for the configured class mix: one lambda solve per
   run, shared lazily across classes. *)
let optimal_periods (cfg : Config.t) =
  let counts =
    Cocheck_core.Waste.steady_state_counts ~classes:cfg.classes ~platform:cfg.platform
  in
  let r =
    Cocheck_core.Lower_bound.solve_model ~classes:counts ~platform:cfg.platform ()
  in
  List.map2
    (fun (_, c) p -> (c.App_class.name, p))
    counts r.Cocheck_core.Lower_bound.periods

let period_of w_cfg ~optimal (c : App_class.t) =
  let platform = w_cfg.Config.platform in
  match w_cfg.Config.strategy with
  | Strategy.Baseline -> infinity
  | Strategy.Oblivious r | Strategy.Ordered r | Strategy.Ordered_nb r -> (
      match r with
      | Strategy.Fixed p -> p
      | Strategy.Daly -> Daly.period_for c ~platform
      | Strategy.Optimal -> List.assoc c.App_class.name (Lazy.force optimal))
  | Strategy.Least_waste -> Daly.period_for c ~platform

let run ?specs ?trace ?hooks ?sample (cfg : Config.t) =
  Config.validate cfg;
  let specs = match specs with Some s -> s | None -> generate_specs cfg in
  let classes = Array.of_list cfg.classes in
  let engine = Engine.create () in
  let metrics = Metrics.create ~seg_start:cfg.seg_start ~seg_end:cfg.seg_end in
  let sharing =
    match cfg.strategy with
    | Strategy.Baseline -> `Unshared
    | _ when cfg.interference_alpha > 0.0 -> `Degraded cfg.interference_alpha
    | _ -> `Linear
  in
  let io =
    Io.create ~engine ~metrics ~bandwidth_gbs:cfg.platform.Platform.bandwidth_gbs ~sharing
  in
  let w =
    {
      cfg;
      classes;
      engine;
      metrics;
      io;
      pool = Node_pool.create ~nodes:cfg.platform.Platform.nodes;
      periods =
        (let optimal = lazy (optimal_periods cfg) in
         Array.map (fun c -> period_of cfg ~optimal c) classes);
      ckpt_nominals =
        Array.map (fun c -> App_class.ckpt_time c ~platform:cfg.platform) classes;
      uses_token = Strategy.uses_token cfg.strategy;
      ckpt_enabled = cfg.strategy <> Strategy.Baseline;
      lw = cfg.strategy = Strategy.Least_waste;
      queue =
        Array.to_list
          (Array.map
             (fun s ->
               {
                 e_spec = s;
                 e_remaining = s.Jobgen.work_s;
                 e_restart = Fresh;
                 e_has_ckpt = false;
                 e_restarts = 0;
               })
             specs);
      fifo = Queue.create ();
      lw_pool = [];
      insts = Hashtbl.create 64;
      trace;
      hooks;
      soft_rng = Rng.substream (Rng.create ~seed:cfg.seed) "failure-type";
      bb =
        (match cfg.strategy with
        | Strategy.Baseline -> None
        | _ ->
            Option.map
              (fun spec -> Burst_buffer.create ~engine ~metrics ~pfs:io spec)
              cfg.burst_buffer);
      token_busy = false;
      next_inst = 0;
      next_req = 0;
      interval_stats = Array.map (fun _ -> Stats.running_create ()) classes;
      ckpt_wait_stats = Array.map (fun _ -> Stats.running_create ()) classes;
      restarts_by_class = Array.make (Array.length classes) 0;
      lost_ns_by_class = Array.make (Array.length classes) 0.0;
      failures_seen = 0;
      failures_hitting_jobs = 0;
      ckpts_committed = 0;
      ckpts_aborted = 0;
      restarts = 0;
      jobs_started = 0;
      jobs_completed = 0;
    }
  in
  if cfg.with_failures then begin
    let rng = Rng.substream (Rng.create ~seed:cfg.seed) "failures" in
    let trace =
      Failure_trace.create ~rng ~nodes:cfg.platform.Platform.nodes
        ~node_mtbf_s:cfg.platform.Platform.node_mtbf_s
        ~distribution:cfg.failure_dist ()
    in
    schedule_failures w trace
  end;
  (match sample with
  | Some (dt, observe) -> schedule_probes w ~dt observe
  | None -> ());
  try_start w;
  Engine.run ~until:cfg.horizon engine;
  finalize w;
  {
    progress_ns = Metrics.progress_ns metrics;
    waste_ns = Metrics.waste_ns metrics;
    enrolled_ns = Metrics.enrolled_ns metrics;
    by_kind = Metrics.by_kind metrics;
    failures_seen = w.failures_seen;
    failures_hitting_jobs = w.failures_hitting_jobs;
    ckpts_committed = w.ckpts_committed;
    ckpts_aborted = w.ckpts_aborted;
    restarts = w.restarts;
    jobs_started = w.jobs_started;
    jobs_completed = w.jobs_completed;
    events = Engine.events_processed engine;
    mean_ckpt_interval =
      Array.to_list
        (Array.mapi
           (fun i c ->
             (c.App_class.name, Stats.running_mean w.interval_stats.(i)))
           classes);
    specs_total = Array.length specs;
    bb_absorbed = (match w.bb with Some bb -> Burst_buffer.writes_absorbed bb | None -> 0);
    bb_spilled = (match w.bb with Some bb -> Burst_buffer.writes_spilled bb | None -> 0);
    mean_ckpt_wait =
      Array.to_list
        (Array.mapi
           (fun i c -> (c.App_class.name, Stats.running_mean w.ckpt_wait_stats.(i)))
           classes);
    utilization =
      Metrics.enrolled_ns metrics
      /. (float_of_int cfg.platform.Platform.nodes *. (cfg.seg_end -. cfg.seg_start));
    io_busy_fraction =
      Io.transferred_gb io /. (cfg.platform.Platform.bandwidth_gbs *. cfg.horizon);
    restarts_by_class =
      Array.to_list
        (Array.mapi (fun i c -> (c.App_class.name, w.restarts_by_class.(i))) classes);
    lost_work_by_class =
      Array.to_list
        (Array.mapi (fun i c -> (c.App_class.name, w.lost_ns_by_class.(i))) classes);
  }

let waste_ratio ~(strategy : result) ~(baseline : result) =
  if baseline.progress_ns <= 0.0 then nan else strategy.waste_ns /. baseline.progress_ns

let efficiency ~strategy ~baseline = 1.0 -. waste_ratio ~strategy ~baseline
