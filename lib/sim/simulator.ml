(* The facade: configuration → periods → world construction → event loop →
   result extraction. The event web itself lives in the layered modules —
   Sim_types (state), Arbiter (token arbitration), Ckpt_path (request →
   commit/abort), Lifecycle (start/compute/finish), Failure_path
   (kill/restart). *)

open Cocheck_util
open Sim_types
module Engine = Cocheck_des.Engine
module Strategy = Cocheck_core.Strategy
module Daly = Cocheck_core.Daly
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Jobgen = Cocheck_model.Jobgen
module Io = Io_subsystem

type result = {
  progress_ns : float;
  waste_ns : float;
  enrolled_ns : float;
  by_kind : (Metrics.kind * float) list;
  failures_seen : int;
  failures_hitting_jobs : int;
  ckpts_committed : int;
  ckpts_aborted : int;
  restarts : int;
  jobs_started : int;
  jobs_completed : int;
  events : int;
  mean_ckpt_interval : (string * float) list;
  specs_total : int;
  bb_absorbed : int;
  bb_spilled : int;
  mean_ckpt_wait : (string * float) list;
  utilization : float;
  io_busy_fraction : float;
  restarts_by_class : (string * int) list;
  lost_work_by_class : (string * float) list;
      (* raw node-seconds rolled back per class, not segment-clipped *)
}

type snapshot = {
  snap_time : float;
  free_nodes : int;
  used_nodes : int;
  queued_jobs : int;
  running_insts : int;
  computing : int;
  in_io : int;
  waiting : int;
  token_queue : int;
  token_busy : bool;
  io_flows : int;
  io_rate_gbs : float;
  bandwidth_gbs : float;
  progress_ns : float;
  waste_ns : float;
  waste_by_kind : (Metrics.kind * float) list;
}

type hooks = Sim_types.hooks = {
  on_token_wait : float -> unit;
  on_ckpt_duration : float -> unit;
  on_io_dilation : float -> unit;
  on_lost_work : float -> unit;
}

let no_hooks =
  {
    on_token_wait = ignore;
    on_ckpt_duration = ignore;
    on_io_dilation = ignore;
    on_lost_work = ignore;
  }

let generate_specs (cfg : Config.t) =
  let rng = Rng.substream (Rng.create ~seed:cfg.seed) "jobs" in
  Jobgen.generate ~rng ~platform:cfg.platform ~classes:cfg.classes
    ~min_duration_s:cfg.min_duration_s ~fill_factor:cfg.fill_factor ()

(* ------------------------------------------------------------------ *)
(* Time-series probes.                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_of w =
  (* Ledger entries settle lazily in the flow scheduler; flush both
     subsystems so the probe reads current totals. *)
  Io.sync w.io;
  (match w.bb with Some bb -> Io.sync (Burst_buffer.io bb) | None -> ());
  (match w.hier with Some h -> Ckpt_hierarchy.iter_pools h Io.sync | None -> ());
  let computing = ref 0 and in_io = ref 0 and waiting = ref 0 in
  Hashtbl.iter
    (fun _ inst ->
      match inst.activity with
      | Computing | Computing_pending -> incr computing
      | Doing_io _ -> incr in_io
      | Waiting_io _ | Waiting_ckpt | Local_ckpt | Local_recovery -> incr waiting)
    w.insts;
  {
    snap_time = now w;
    free_nodes = Node_pool.free_count w.pool;
    used_nodes = Node_pool.used_count w.pool;
    queued_jobs = List.length w.queue;
    running_insts = Hashtbl.length w.insts;
    computing = !computing;
    in_io = !in_io;
    waiting = !waiting;
    token_queue = Arbiter.pending w;
    token_busy = w.token_busy;
    io_flows = Io.active_count w.io;
    io_rate_gbs = Io.current_rate_gbs w.io;
    bandwidth_gbs = bandwidth w;
    progress_ns = Metrics.progress_ns w.metrics;
    waste_ns = Metrics.waste_ns w.metrics;
    waste_by_kind = Metrics.by_kind w.metrics;
  }

(* Probes ride the engine calendar at t = dt, 2dt, ...; read-only, so they
   cannot perturb the schedule (FIFO ordering at equal times aside, the
   probe closures touch no simulation state). *)
let schedule_probes w ~dt observe =
  if not (Float.is_finite dt && dt > 0.0) then
    invalid_arg "Simulator.run: sample interval must be positive";
  let rec tick _ =
    observe (snapshot_of w);
    if now w +. dt <= w.cfg.horizon then
      ignore (Engine.schedule_after w.engine ~kind:Ev_kind.probe ~delay:dt tick)
  in
  ignore (Engine.schedule_after w.engine ~kind:Ev_kind.probe ~delay:dt tick)

(* ------------------------------------------------------------------ *)
(* Top level.                                                           *)
(* ------------------------------------------------------------------ *)

let finalize w =
  (* The horizon cut: settle transfers, close compute intervals, and count
     still-uncommitted work as progress — it would commit eventually, and
     the exclusion of the final day keeps the bias marginal. *)
  let t = w.cfg.horizon in
  let running = Hashtbl.fold (fun _ inst acc -> inst :: acc) w.insts [] in
  List.iter
    (fun inst ->
      (match inst.activity with
      | Doing_io (sub, flow, _) -> abort_inst_flow w sub flow
      | Computing | Computing_pending -> pause_compute w inst
      | Waiting_io _ | Waiting_ckpt -> record_wait w inst ~from:inst.wait_start
      | Local_ckpt ->
          Metrics.record w.metrics ~t0:inst.local_pause_start ~t1:t
            ~nodes:inst.spec.Jobgen.nodes Metrics.Local_ckpt
      | Local_recovery ->
          Metrics.record w.metrics ~t0:inst.wait_start ~t1:t ~nodes:inst.spec.Jobgen.nodes
            Metrics.Recovery_io);
      flush_uncommitted w inst Metrics.Work;
      Metrics.record_enrolled w.metrics ~t0:inst.start_time ~t1:t
        ~nodes:inst.spec.Jobgen.nodes)
    running

(* Theorem 1 periods for the configured class mix: one lambda solve per
   run, shared lazily across classes. *)
let optimal_periods (cfg : Config.t) =
  let counts =
    Cocheck_core.Waste.steady_state_counts ~classes:cfg.classes ~platform:cfg.platform
  in
  let r =
    Cocheck_core.Lower_bound.solve_model ~classes:counts ~platform:cfg.platform ()
  in
  List.map2
    (fun (_, c) p -> (c.App_class.name, p))
    counts r.Cocheck_core.Lower_bound.periods

let period_of w_cfg ~optimal (c : App_class.t) =
  let platform = w_cfg.Config.platform in
  match w_cfg.Config.strategy with
  | Strategy.Baseline -> infinity
  | Strategy.Oblivious r | Strategy.Ordered r | Strategy.Ordered_nb r -> (
      match r with
      | Strategy.Fixed p -> p
      | Strategy.Daly -> Daly.period_for c ~platform
      | Strategy.Optimal -> List.assoc c.App_class.name (Lazy.force optimal))
  | Strategy.Least_waste | Strategy.Greedy_exposure -> Daly.period_for c ~platform

let run ?specs ?trace ?hooks ?sample ?on_engine (cfg : Config.t) =
  Config.validate cfg;
  let specs = match specs with Some s -> s | None -> generate_specs cfg in
  let classes = Array.of_list cfg.classes in
  let engine = Engine.create () in
  (* Observability wiring point: the caller sees the engine before the
     first event is scheduled (attach_stats, tracing tick hooks). The
     callback must not schedule or pop events. *)
  (match on_engine with Some f -> f engine | None -> ());
  let metrics = Metrics.create ~seg_start:cfg.seg_start ~seg_end:cfg.seg_end in
  let sharing =
    match cfg.strategy with
    | Strategy.Baseline -> `Unshared
    | _ when cfg.interference_alpha > 0.0 -> `Degraded cfg.interference_alpha
    | _ -> `Linear
  in
  let io =
    Io.create ~engine ~metrics ~bandwidth_gbs:cfg.platform.Platform.bandwidth_gbs ~sharing
  in
  (* Split the multilevel spec into its two storage kinds: snapshot levels
     drive the local-tick machinery, buffer levels build the checkpoint
     storage hierarchy (like the burst buffer, inert under Baseline). *)
  let snap =
    match cfg.multilevel with
    | None -> [||]
    | Some m ->
        Array.of_list
          (List.filter_map
             (function Config.Snapshot s -> Some s | Config.Buffer _ -> None)
             m.Config.levels)
  in
  let hier =
    match (cfg.strategy, cfg.multilevel) with
    | Strategy.Baseline, _ | _, None -> None
    | _, Some m -> (
        match
          List.filter_map
            (function Config.Buffer b -> Some b | Config.Snapshot _ -> None)
            m.Config.levels
        with
        | [] -> None
        | bufs -> Some (Ckpt_hierarchy.create ~engine ~metrics ~pfs:io bufs))
  in
  (* Created before the [w] literal so the arbiter (built inside it) and
     the submit/grant driver recycle through the same stack. *)
  let req_free = req_free_create () in
  let w =
    {
      cfg;
      classes;
      engine;
      metrics;
      io;
      pool = Node_pool.create ~nodes:cfg.platform.Platform.nodes;
      periods =
        (let optimal = lazy (optimal_periods cfg) in
         Array.map (fun c -> period_of cfg ~optimal c) classes);
      ckpt_nominals =
        Array.map (fun c -> App_class.ckpt_time c ~platform:cfg.platform) classes;
      uses_token = Strategy.uses_token cfg.strategy;
      ckpt_enabled = cfg.strategy <> Strategy.Baseline;
      arbiter =
        Arbiter.of_strategy cfg.strategy
          ~node_mtbf_s:cfg.platform.Platform.node_mtbf_s
          ~bandwidth_gbs:cfg.platform.Platform.bandwidth_gbs
          ~levels:(1 + match hier with Some h -> Ckpt_hierarchy.levels_count h | None -> 0)
          ~free:req_free ();
      req_free;
      inst_free = inst_free_create ();
      live = live_slots_create ();
      queue =
        Array.to_list
          (Array.map
             (fun s ->
               {
                 e_spec = s;
                 e_remaining = s.Jobgen.work_s;
                 e_restart = Fresh;
                 e_has_ckpt = false;
                 e_restarts = 0;
               })
             specs);
      insts = Hashtbl.create 64;
      trace;
      hooks;
      soft_rng = Rng.substream (Rng.create ~seed:cfg.seed) "failure-type";
      bb =
        (match cfg.strategy with
        | Strategy.Baseline -> None
        | _ ->
            Option.map
              (fun spec -> Burst_buffer.create ~engine ~metrics ~pfs:io spec)
              cfg.burst_buffer);
      hier;
      snap;
      token_busy = false;
      next_inst = 0;
      next_req = 0;
      h_grant_io = unwired;
      h_grant_ckpt = unwired;
      h_start_compute = unwired;
      interval_stats = Array.map (fun _ -> Stats.running_create ()) classes;
      ckpt_wait_stats = Array.map (fun _ -> Stats.running_create ()) classes;
      restarts_by_class = Array.make (Array.length classes) 0;
      lost_ns_by_class = Array.make (Array.length classes) 0.0;
      failures_seen = 0;
      failures_hitting_jobs = 0;
      ckpts_committed = 0;
      ckpts_aborted = 0;
      restarts = 0;
      jobs_started = 0;
      jobs_completed = 0;
    }
  in
  (* Wire the late-bound continuations before the first event fires. *)
  w.h_grant_io <- Lifecycle.grant_io w;
  w.h_grant_ckpt <- Ckpt_path.grant_ckpt w;
  w.h_start_compute <- Lifecycle.start_compute w;
  if cfg.with_failures then begin
    let rng = Rng.substream (Rng.create ~seed:cfg.seed) "failures" in
    let trace =
      Failure_trace.create ~rng ~nodes:cfg.platform.Platform.nodes
        ~node_mtbf_s:cfg.platform.Platform.node_mtbf_s
        ~distribution:cfg.failure_dist ()
    in
    Failure_path.schedule_failures w trace
  end;
  (match sample with
  | Some (dt, observe) -> schedule_probes w ~dt observe
  | None -> ());
  Lifecycle.try_start w;
  Engine.run ~until:cfg.horizon engine;
  finalize w;
  {
    progress_ns = Metrics.progress_ns metrics;
    waste_ns = Metrics.waste_ns metrics;
    enrolled_ns = Metrics.enrolled_ns metrics;
    by_kind = Metrics.by_kind metrics;
    failures_seen = w.failures_seen;
    failures_hitting_jobs = w.failures_hitting_jobs;
    ckpts_committed = w.ckpts_committed;
    ckpts_aborted = w.ckpts_aborted;
    restarts = w.restarts;
    jobs_started = w.jobs_started;
    jobs_completed = w.jobs_completed;
    events = Engine.events_processed engine;
    mean_ckpt_interval =
      Array.to_list
        (Array.mapi
           (fun i c ->
             (c.App_class.name, Stats.running_mean w.interval_stats.(i)))
           classes);
    specs_total = Array.length specs;
    bb_absorbed =
      (match (w.bb, w.hier) with
      | Some bb, _ -> Burst_buffer.writes_absorbed bb
      | None, Some h -> Ckpt_hierarchy.writes_absorbed h
      | None, None -> 0);
    bb_spilled =
      (match (w.bb, w.hier) with
      | Some bb, _ -> Burst_buffer.writes_spilled bb
      | None, Some h -> Ckpt_hierarchy.writes_spilled h
      | None, None -> 0);
    mean_ckpt_wait =
      Array.to_list
        (Array.mapi
           (fun i c -> (c.App_class.name, Stats.running_mean w.ckpt_wait_stats.(i)))
           classes);
    utilization =
      Metrics.enrolled_ns metrics
      /. (float_of_int cfg.platform.Platform.nodes *. (cfg.seg_end -. cfg.seg_start));
    io_busy_fraction =
      Io.transferred_gb io /. (cfg.platform.Platform.bandwidth_gbs *. cfg.horizon);
    restarts_by_class =
      Array.to_list
        (Array.mapi (fun i c -> (c.App_class.name, w.restarts_by_class.(i))) classes);
    lost_work_by_class =
      Array.to_list
        (Array.mapi (fun i c -> (c.App_class.name, w.lost_ns_by_class.(i))) classes);
  }

let waste_ratio ~(strategy : result) ~(baseline : result) =
  if baseline.progress_ns <= 0.0 then nan else strategy.waste_ns /. baseline.progress_ns

let efficiency ~strategy ~baseline = 1.0 -. waste_ratio ~strategy ~baseline
