(** Structured event tracing for simulations.

    A bounded in-memory event log the simulator can emit into (pass
    [?trace] to {!Simulator.run}). Used for debugging, for the
    protocol-invariant tests (a commit must follow a start, a job holds at
    most one activity, ...), and by the [simctl trace] command for
    eyeballing a schedule. *)

type kind =
  | Job_started of { restarts : int; nodes : int }
      (** instance allocated and beginning input *)
  | Input_done  (** initial input or recovery read finished; work begins *)
  | Ckpt_requested
  | Ckpt_started  (** commit transfer begins (PFS or burst buffer) *)
  | Ckpt_committed of { work : float }  (** committed progress level *)
  | Ckpt_aborted  (** a failure destroyed the commit in flight *)
  | Token_granted
  | Work_completed
  | Job_completed
  | Job_killed of { lost_work : float }
  | Node_failure of { node : int }
      (** platform event; [job]/[inst] carry the victim instance running on
          the struck node, or -1/-1 when the node was idle — so
          {!for_job} correlates kills with their cause *)

type event = {
  time : float;
  job : int;  (** stable job identity (spec id); -1 when no job is involved *)
  inst : int;  (** running instance; -1 when no job is involved *)
  kind : kind;
}

type t

val create : ?capacity:int -> unit -> t
(** A ring buffer keeping the most recent [capacity] events (default
    100 000). *)

val record : t -> event -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int
(** Retained event count. *)

val dropped : t -> int
(** Events evicted by the capacity bound. *)

val for_job : t -> job:int -> event list
val of_kind : t -> f:(kind -> bool) -> event list

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit

val dump : ?limit:int -> t -> string
(** Text rendering of (up to [limit]) retained events. *)
