(* Incremental flow scheduler over virtual service time.

   The naive design (kept as Io_reference) rescans every flow on every
   membership change: settle all n flows, refold the weight total per flow
   (O(n^2)) and rebuild every completion event (O(n log n) heap churn).
   This engine exploits the structure of proportional sharing instead.

   Under every discipline the instantaneous rate of a flow factors as
   [rate_f = weight_f * slope(t)] where [slope] depends only on the *set*
   of active flows — [B / W] for linear sharing over total weight
   [W = sum nodes], [B / ((1 + alpha (k - 1)) W)] for the degraded model
   with [k] flows, and [B] (with weight 1) for the unshared baseline. So
   define the virtual clock [V(t) = integral of slope]: a piecewise-linear
   function whose slope changes only when membership changes. The volume a
   flow moves over any wall interval is [weight * (V(t1) - V(t0))], hence a
   flow admitted at virtual time [v0] completes exactly when [V] reaches
   [v0 + volume / weight] — a constant computed once at admission.

   Bookkeeping per membership change is therefore O(log n): advance [V] by
   [(now - t_last) * slope] (O(1)), add or subtract the flow's weight
   (O(1)), insert into / remove from a min-heap keyed on the virtual
   completion deadline (O(log n)), and retime the single calendar event
   that tracks the heap minimum (O(log n) via Engine.reschedule). The DES
   calendar holds exactly one completion event for the whole subsystem,
   however many flows are in flight.

   Metrics settle lazily: each flow remembers the wall/virtual time pair up
   to which its ledger entries were emitted and emits the missing span at
   completion, abort or an explicit [sync]. Ledger equivalence with the
   eager reference holds because interval clipping is additive over
   adjacent subintervals and, for regular transfers, the progress share of
   a span is [nodes * moved / (B * span)] — recoverable from the virtual
   clock alone. The only wrinkle is the measurement segment: a lazy span
   crossing a segment edge needs [V] at the edge, so the subsystem records
   the virtual clock when wall time first crosses each edge.

   Flow state lives in a slot pool of parallel arrays behind a freelist
   (the Pqueue layout): a flow is a generation-tagged immediate handle,
   float fields sit in flat [float array]s so stores stay unboxed, and the
   start/complete/abort cycle reuses slots instead of allocating a record
   and a hashtable entry per transfer. Mutable float scalars of the
   subsystem itself live in one flat array ([s]) for the same reason —
   without flambda a [mutable float] store on a mixed record boxes. *)

module Engine = Cocheck_des.Engine
module Pqueue = Cocheck_util.Pqueue

type sharing = [ `Linear | `Degraded of float | `Unshared ]
type io_kind = Input | Output | Ckpt | Recovery | Drain

let io_kind_name = function
  | Input -> "input"
  | Output -> "output"
  | Ckpt -> "ckpt"
  | Recovery -> "recovery"
  | Drain -> "drain"

type flow = int
(* slot in the low bits, the slot's generation above: a handle outlives its
   flow harmlessly (stale generation -> no-op), and storing one allocates
   nothing. *)

let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1

(* Slot states. *)
let st_free = 0
let st_zero = 1 (* live zero-volume flow, immediate completion pending *)
let st_pool = 2 (* live member of the shared pool *)

(* Indices into [t.s]. *)
let s_vclock = 0 (* V at t_last *)
let s_t_last = 1
let s_weight = 2 (* total weight of pool members *)
let s_committed = 3 (* volume credited to the transferred total *)
let s_v_seg_lo = 4 (* V when wall time crossed seg_lo (if crossed) *)
let s_v_seg_hi = 5

type t = {
  engine : Engine.t;
  metrics : Metrics.t;
  bandwidth : float;
  sharing : sharing;
  heap : int Pqueue.t;  (* pool slots keyed by virtual completion deadline *)
  s : float array;  (* mutable float scalars, unboxed; s_* indices *)
  mutable nflows : int;
  mutable next_ev : Engine.handle;  (* THE completion event; Engine.none when absent *)
  mutable cb_completion : Engine.t -> unit;  (* recycled completion callback *)
  seg_lo : float;  (* measurement segment, cached from the ledger *)
  seg_hi : float;
  mutable seg_lo_crossed : bool;  (* whether s_v_seg_lo holds a value *)
  mutable seg_hi_crossed : bool;
  (* Per-slot flow state. *)
  mutable cap : int;
  mutable f_gen : int array;
  mutable f_state : int array;
  mutable f_job : int array;
  mutable f_nodes : int array;
  mutable f_kind : io_kind array;
  mutable f_heap_h : int Pqueue.handle array;  (* null_handle when absent *)
  mutable f_zv_ev : Engine.handle array;  (* zero-volume event; none when absent *)
  mutable f_on_complete : (unit -> unit) array;
  mutable f_zv_cb : (Engine.t -> unit) array;  (* recycled per-slot zero-volume callback *)
  mutable f_volume : float array;
  mutable f_weight : float array;  (* virtual-progress multiplier: nodes, or 1 unshared *)
  mutable f_v_start : float array;  (* virtual clock at admission *)
  mutable f_v_done : float array;  (* v_start + volume/weight *)
  mutable f_t_emit : float array;  (* wall time up to which metrics are emitted *)
  mutable f_v_emit : float array;  (* virtual clock at t_emit *)
  mutable f_committed : float array;  (* volume already credited to the total *)
  mutable free_slots : int array;  (* freelist stack *)
  mutable free_n : int;
}

let nop () = ()

let[@inline] slot_of t h =
  let i = h land slot_mask in
  if i < t.cap && t.f_gen.(i) = h asr slot_bits then i else -1

let free_slot t i =
  t.f_state.(i) <- st_free;
  t.f_gen.(i) <- t.f_gen.(i) + 1;
  t.f_on_complete.(i) <- nop;
  t.f_heap_h.(i) <- Pqueue.null_handle;
  t.f_zv_ev.(i) <- Engine.none;
  t.free_slots.(t.free_n) <- i;
  t.free_n <- t.free_n + 1

(* The recycled zero-volume completion: completes through the calendar so
   observers see a consistent order; built once per slot, not per flow. *)
let zv_fire t i _engine =
  t.f_zv_ev.(i) <- Engine.none;
  if t.f_state.(i) = st_zero then begin
    let k = t.f_on_complete.(i) in
    free_slot t i;
    k ()
  end

let grow_array a cap fill =
  let b = Array.make cap fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let init_slots t ~from =
  for i = t.cap - 1 downto from do
    t.f_zv_cb.(i) <- zv_fire t i;
    t.free_slots.(t.free_n) <- i;
    t.free_n <- t.free_n + 1
  done

let grow t =
  let old = t.cap in
  let cap = 2 * old in
  if cap > slot_mask + 1 then invalid_arg "Io_subsystem: too many concurrent flows";
  t.f_gen <- grow_array t.f_gen cap 0;
  t.f_state <- grow_array t.f_state cap st_free;
  t.f_job <- grow_array t.f_job cap 0;
  t.f_nodes <- grow_array t.f_nodes cap 0;
  t.f_kind <- grow_array t.f_kind cap Input;
  t.f_heap_h <- grow_array t.f_heap_h cap Pqueue.null_handle;
  t.f_zv_ev <- grow_array t.f_zv_ev cap Engine.none;
  t.f_on_complete <- grow_array t.f_on_complete cap nop;
  t.f_zv_cb <- grow_array t.f_zv_cb cap ignore;
  t.f_volume <- grow_array t.f_volume cap 0.0;
  t.f_weight <- grow_array t.f_weight cap 0.0;
  t.f_v_start <- grow_array t.f_v_start cap 0.0;
  t.f_v_done <- grow_array t.f_v_done cap 0.0;
  t.f_t_emit <- grow_array t.f_t_emit cap 0.0;
  t.f_v_emit <- grow_array t.f_v_emit cap 0.0;
  t.f_committed <- grow_array t.f_committed cap 0.0;
  t.free_slots <- grow_array t.free_slots cap 0;
  t.cap <- cap;
  init_slots t ~from:old

let alloc_slot t =
  if t.free_n = 0 then grow t;
  t.free_n <- t.free_n - 1;
  t.free_slots.(t.free_n)

let slope t =
  match t.sharing with
  | `Unshared -> t.bandwidth
  | `Linear -> if t.s.(s_weight) > 0.0 then t.bandwidth /. t.s.(s_weight) else 0.0
  | `Degraded alpha ->
      if t.s.(s_weight) > 0.0 then
        let k = float_of_int t.nflows in
        t.bandwidth /. ((1.0 +. (alpha *. Float.max 0.0 (k -. 1.0))) *. t.s.(s_weight))
      else 0.0

(* Bring the virtual clock to the engine's current time. Must run before
   any membership change, while the old slope is still in force. *)
let advance t =
  let now = Engine.now t.engine in
  if now > t.s.(s_t_last) then begin
    let sl = slope t in
    if (not t.seg_lo_crossed) && now >= t.seg_lo then begin
      t.seg_lo_crossed <- true;
      t.s.(s_v_seg_lo) <- t.s.(s_vclock) +. ((t.seg_lo -. t.s.(s_t_last)) *. sl)
    end;
    if (not t.seg_hi_crossed) && now >= t.seg_hi then begin
      t.seg_hi_crossed <- true;
      t.s.(s_v_seg_hi) <- t.s.(s_vclock) +. ((t.seg_hi -. t.s.(s_t_last)) *. sl)
    end;
    t.s.(s_vclock) <- t.s.(s_vclock) +. ((now -. t.s.(s_t_last)) *. sl);
    t.s.(s_t_last) <- now
  end

(* Ledger entry for a regular transfer over the unemitted span, clipped to
   the segment. The progress fraction is the flow's mean achieved rate over
   the clipped span relative to nominal bandwidth, read off the virtual
   clock; the clamp absorbs float residue on very short spans. *)
let emit_weighted t i ~now =
  let a = Float.max t.f_t_emit.(i) t.seg_lo and b = Float.min now t.seg_hi in
  if b > a then begin
    let va =
      if t.f_t_emit.(i) >= t.seg_lo then t.f_v_emit.(i)
      else if t.seg_lo_crossed then t.s.(s_v_seg_lo)
      else t.f_v_emit.(i)
    in
    let vb =
      if now <= t.seg_hi then t.s.(s_vclock)
      else if t.seg_hi_crossed then t.s.(s_v_seg_hi)
      else t.s.(s_vclock)
    in
    let fraction = t.f_weight.(i) *. (vb -. va) /. (t.bandwidth *. (b -. a)) in
    let fraction = Float.min 1.0 (Float.max 0.0 fraction) in
    Metrics.record_weighted t.metrics ~t0:a ~t1:b ~nodes:t.f_nodes.(i) ~fraction
      ~progress:Metrics.Regular_io ~waste:Metrics.Io_dilation
  end

(* Emit the pending ledger span and credit moved volume; requires [advance]
   to have run, so the clock pair (t_last, vclock) is current. *)
let settle_flow t i =
  let now = t.s.(s_t_last) in
  if now > t.f_t_emit.(i) then begin
    (match t.f_kind.(i) with
    | Input | Output -> emit_weighted t i ~now
    | Ckpt ->
        Metrics.record t.metrics ~t0:t.f_t_emit.(i) ~t1:now ~nodes:t.f_nodes.(i)
          Metrics.Ckpt_io
    | Recovery ->
        Metrics.record t.metrics ~t0:t.f_t_emit.(i) ~t1:now ~nodes:t.f_nodes.(i)
          Metrics.Recovery_io
    | Drain -> () (* background traffic: no compute nodes are held *));
    t.f_t_emit.(i) <- now;
    t.f_v_emit.(i) <- t.s.(s_vclock)
  end;
  let moved =
    Float.min t.f_volume.(i) (t.f_weight.(i) *. (t.s.(s_vclock) -. t.f_v_start.(i)))
  in
  if moved > t.f_committed.(i) then begin
    t.s.(s_committed) <- t.s.(s_committed) +. (moved -. t.f_committed.(i));
    t.f_committed.(i) <- moved
  end

let commit_full t i =
  if t.f_volume.(i) > t.f_committed.(i) then begin
    t.s.(s_committed) <- t.s.(s_committed) +. (t.f_volume.(i) -. t.f_committed.(i));
    t.f_committed.(i) <- t.f_volume.(i)
  end

let drop t i =
  if not (Pqueue.is_null t.f_heap_h.(i)) then begin
    ignore (Pqueue.remove t.heap t.f_heap_h.(i));
    t.f_heap_h.(i) <- Pqueue.null_handle
  end;
  t.s.(s_weight) <- t.s.(s_weight) -. t.f_weight.(i);
  t.nflows <- t.nflows - 1;
  if t.nflows = 0 then t.s.(s_weight) <- 0.0

(* Retime the single completion event to the heap minimum. Simultaneous
   completions resolve as a cascade of zero-delay events, preserving the
   one-event invariant. The heap root is read piecewise and the calendar
   event re-armed through the recycled [cb_completion], so per-completion
   bookkeeping allocates nothing. *)
let rec reschedule_next t =
  if Pqueue.is_empty t.heap then begin
    if not (Engine.is_none t.next_ev) then begin
      ignore (Engine.cancel t.engine t.next_ev);
      t.next_ev <- Engine.none
    end
  end
  else begin
    let v_min = Pqueue.min_priority t.heap in
    let time = t.s.(s_t_last) +. (Float.max 0.0 (v_min -. t.s.(s_vclock)) /. slope t) in
    let retimed =
      (not (Engine.is_none t.next_ev))
      && (Engine.time_is t.engine t.next_ev ~time
         || Engine.reschedule t.engine t.next_ev ~time)
    in
    if not retimed then
      t.next_ev <- Engine.schedule_at t.engine ~kind:Ev_kind.io ~time t.cb_completion
  end

and on_next_completion t _engine =
  t.next_ev <- Engine.none;
  advance t;
  if not (Pqueue.is_empty t.heap) then begin
    let i = Pqueue.min_value t.heap in
    Pqueue.drop_min t.heap;
    t.f_heap_h.(i) <- Pqueue.null_handle;
    settle_flow t i;
    commit_full t i;
    drop t i;
    reschedule_next t;
    let k = t.f_on_complete.(i) in
    free_slot t i;
    k ()
  end

let create ~engine ~metrics ~bandwidth_gbs ~sharing =
  if bandwidth_gbs <= 0.0 then invalid_arg "Io_subsystem.create: bandwidth must be positive";
  let seg_lo, seg_hi = Metrics.segment metrics in
  let now = Engine.now engine in
  let cap = 16 in
  let s = Array.make 6 0.0 in
  s.(s_t_last) <- now;
  let t =
    {
      engine;
      metrics;
      bandwidth = bandwidth_gbs;
      sharing;
      heap = Pqueue.create ();
      s;
      nflows = 0;
      next_ev = Engine.none;
      cb_completion = ignore;
      seg_lo;
      seg_hi;
      seg_lo_crossed = now >= seg_lo;
      seg_hi_crossed = now >= seg_hi;
      cap;
      f_gen = Array.make cap 0;
      f_state = Array.make cap st_free;
      f_job = Array.make cap 0;
      f_nodes = Array.make cap 0;
      f_kind = Array.make cap Input;
      f_heap_h = Array.make cap Pqueue.null_handle;
      f_zv_ev = Array.make cap Engine.none;
      f_on_complete = Array.make cap nop;
      f_zv_cb = Array.make cap ignore;
      f_volume = Array.make cap 0.0;
      f_weight = Array.make cap 0.0;
      f_v_start = Array.make cap 0.0;
      f_v_done = Array.make cap 0.0;
      f_t_emit = Array.make cap 0.0;
      f_v_emit = Array.make cap 0.0;
      f_committed = Array.make cap 0.0;
      free_slots = Array.make cap 0;
      free_n = 0;
    }
  in
  t.cb_completion <- on_next_completion t;
  init_slots t ~from:0;
  t

let start_flow t ~job ~nodes ~kind ~volume_gb ~on_complete =
  if nodes <= 0 then invalid_arg "Io_subsystem.start_flow: non-positive node count";
  if volume_gb < 0.0 then invalid_arg "Io_subsystem.start_flow: negative volume";
  let now = Engine.now t.engine in
  let i = alloc_slot t in
  let h = i lor (t.f_gen.(i) lsl slot_bits) in
  t.f_job.(i) <- job;
  t.f_nodes.(i) <- nodes;
  t.f_kind.(i) <- kind;
  t.f_on_complete.(i) <- on_complete;
  t.f_volume.(i) <- volume_gb;
  t.f_committed.(i) <- 0.0;
  t.f_t_emit.(i) <- now;
  if volume_gb = 0.0 then begin
    (* The flow never joins the shared pool; it completes through the
       recycled per-slot immediate event (which a kill can still abort). *)
    t.f_state.(i) <- st_zero;
    t.f_weight.(i) <- 0.0;
    t.f_v_start.(i) <- 0.0;
    t.f_v_done.(i) <- 0.0;
    t.f_v_emit.(i) <- 0.0;
    t.f_zv_ev.(i) <-
      Engine.schedule_after t.engine ~kind:Ev_kind.io ~delay:0.0 t.f_zv_cb.(i);
    h
  end
  else begin
    advance t;
    let weight =
      match t.sharing with
      | `Unshared -> 1.0
      | `Linear | `Degraded _ -> float_of_int nodes
    in
    t.f_state.(i) <- st_pool;
    t.f_weight.(i) <- weight;
    let v = t.s.(s_vclock) in
    t.f_v_start.(i) <- v;
    t.f_v_done.(i) <- v +. (volume_gb /. weight);
    t.f_v_emit.(i) <- v;
    t.s.(s_weight) <- t.s.(s_weight) +. weight;
    t.nflows <- t.nflows + 1;
    t.f_heap_h.(i) <- Pqueue.add t.heap ~priority:t.f_v_done.(i) i;
    reschedule_next t;
    h
  end

let abort_flow t h =
  let i = slot_of t h in
  if i >= 0 then
    if t.f_state.(i) = st_pool then begin
      advance t;
      settle_flow t i;
      drop t i;
      reschedule_next t;
      free_slot t i
    end
    else if t.f_state.(i) = st_zero then begin
      ignore (Engine.cancel t.engine t.f_zv_ev.(i));
      free_slot t i
    end

let sync t =
  advance t;
  for i = 0 to t.cap - 1 do
    if t.f_state.(i) = st_pool then settle_flow t i
  done

let active_count t = t.nflows

let current_rate_gbs t =
  if t.nflows = 0 then 0.0
  else
    match t.sharing with
    | `Linear -> t.bandwidth
    | `Degraded alpha ->
        t.bandwidth /. (1.0 +. (alpha *. Float.max 0.0 (float_of_int t.nflows -. 1.0)))
    | `Unshared -> t.bandwidth *. float_of_int t.nflows

let bandwidth_gbs t = t.bandwidth

let active_rate t h =
  let i = slot_of t h in
  if i >= 0 && t.f_state.(i) = st_pool then Some (t.f_weight.(i) *. slope t) else None

(* Virtual clock extrapolated to the present without mutating state: the
   slope is constant since the last membership change. *)
let vnow t = t.s.(s_vclock) +. ((Engine.now t.engine -. t.s.(s_t_last)) *. slope t)

let remaining_gb t h =
  let i = slot_of t h in
  if i < 0 then None
  else if t.f_state.(i) <> st_pool then Some 0.0
  else Some (Float.max 0.0 (t.f_volume.(i) -. (t.f_weight.(i) *. (vnow t -. t.f_v_start.(i)))))

let live_slot name t h =
  let i = slot_of t h in
  if i < 0 then invalid_arg ("Io_subsystem." ^ name ^ ": flow is gone") else i

let flow_job t h = t.f_job.(live_slot "flow_job" t h)
let flow_kind t h = t.f_kind.(live_slot "flow_kind" t h)
let flow_id (h : flow) = h

let transferred_gb t =
  let v = vnow t in
  let acc = ref t.s.(s_committed) in
  for i = 0 to t.cap - 1 do
    if t.f_state.(i) = st_pool then begin
      let moved = Float.min t.f_volume.(i) (t.f_weight.(i) *. (v -. t.f_v_start.(i))) in
      acc := !acc +. Float.max 0.0 (moved -. t.f_committed.(i))
    end
  done;
  !acc
