(* Incremental flow scheduler over virtual service time.

   The naive design (kept as Io_reference) rescans every flow on every
   membership change: settle all n flows, refold the weight total per flow
   (O(n^2)) and rebuild every completion event (O(n log n) heap churn).
   This engine exploits the structure of proportional sharing instead.

   Under every discipline the instantaneous rate of a flow factors as
   [rate_f = weight_f * slope(t)] where [slope] depends only on the *set*
   of active flows — [B / W] for linear sharing over total weight
   [W = sum nodes], [B / ((1 + alpha (k - 1)) W)] for the degraded model
   with [k] flows, and [B] (with weight 1) for the unshared baseline. So
   define the virtual clock [V(t) = integral of slope]: a piecewise-linear
   function whose slope changes only when membership changes. The volume a
   flow moves over any wall interval is [weight * (V(t1) - V(t0))], hence a
   flow admitted at virtual time [v0] completes exactly when [V] reaches
   [v0 + volume / weight] — a constant computed once at admission.

   Bookkeeping per membership change is therefore O(log n): advance [V] by
   [(now - t_last) * slope] (O(1)), add or subtract the flow's weight
   (O(1)), insert into / remove from a min-heap keyed on the virtual
   completion deadline (O(log n)), and retime the single calendar event
   that tracks the heap minimum (O(log n) via Engine.reschedule). The DES
   calendar holds exactly one completion event for the whole subsystem,
   however many flows are in flight.

   Metrics settle lazily: each flow remembers the wall/virtual time pair up
   to which its ledger entries were emitted and emits the missing span at
   completion, abort or an explicit [sync]. Ledger equivalence with the
   eager reference holds because interval clipping is additive over
   adjacent subintervals and, for regular transfers, the progress share of
   a span is [nodes * moved / (B * span)] — recoverable from the virtual
   clock alone. The only wrinkle is the measurement segment: a lazy span
   crossing a segment edge needs [V] at the edge, so the subsystem records
   the virtual clock when wall time first crosses each edge. *)

module Engine = Cocheck_des.Engine
module Pqueue = Cocheck_util.Pqueue

type sharing = [ `Linear | `Degraded of float | `Unshared ]
type io_kind = Input | Output | Ckpt | Recovery | Drain

let io_kind_name = function
  | Input -> "input"
  | Output -> "output"
  | Ckpt -> "ckpt"
  | Recovery -> "recovery"
  | Drain -> "drain"

type flow = {
  id : int;
  job : int;
  nodes : int;
  kind : io_kind;
  volume_gb : float;
  weight : float;  (* virtual-progress multiplier: nodes, or 1 unshared *)
  v_start : float;  (* virtual clock at admission *)
  v_done : float;  (* virtual completion deadline: v_start + volume/weight *)
  mutable t_emit : float;  (* wall time up to which metrics are emitted *)
  mutable v_emit : float;  (* virtual clock at t_emit *)
  mutable committed_gb : float;  (* volume already credited to the total *)
  mutable live : bool;
  mutable in_set : bool;  (* member of the shared pool (zero-volume: no) *)
  mutable heap_h : flow Pqueue.handle;  (* Pqueue.null_handle when absent *)
  mutable zv_ev : Engine.handle;  (* zero-volume immediate event; Engine.none when absent *)
  on_complete : unit -> unit;
}

type t = {
  engine : Engine.t;
  metrics : Metrics.t;
  bandwidth : float;
  sharing : sharing;
  flows : (int, flow) Hashtbl.t;  (* live pool members by id *)
  heap : flow Pqueue.t;  (* min virtual completion deadline *)
  mutable next_id : int;
  mutable transferred_committed : float;
  mutable vclock : float;  (* V at t_last *)
  mutable t_last : float;
  mutable total_weight : float;
  mutable nflows : int;
  mutable next_ev : Engine.handle;  (* THE completion event; Engine.none when absent *)
  mutable cb_completion : Engine.t -> unit;  (* recycled completion callback *)
  seg_lo : float;  (* measurement segment, cached from the ledger *)
  seg_hi : float;
  mutable v_seg_lo : float option;  (* V when wall time crossed seg_lo *)
  mutable v_seg_hi : float option;
}

let slope t =
  match t.sharing with
  | `Unshared -> t.bandwidth
  | `Linear -> if t.total_weight > 0.0 then t.bandwidth /. t.total_weight else 0.0
  | `Degraded alpha ->
      if t.total_weight > 0.0 then
        let k = float_of_int t.nflows in
        t.bandwidth /. ((1.0 +. (alpha *. Float.max 0.0 (k -. 1.0))) *. t.total_weight)
      else 0.0

(* Bring the virtual clock to the engine's current time. Must run before
   any membership change, while the old slope is still in force. *)
let advance t =
  let now = Engine.now t.engine in
  if now > t.t_last then begin
    let s = slope t in
    if t.v_seg_lo = None && now >= t.seg_lo then
      t.v_seg_lo <- Some (t.vclock +. ((t.seg_lo -. t.t_last) *. s));
    if t.v_seg_hi = None && now >= t.seg_hi then
      t.v_seg_hi <- Some (t.vclock +. ((t.seg_hi -. t.t_last) *. s));
    t.vclock <- t.vclock +. ((now -. t.t_last) *. s);
    t.t_last <- now
  end

(* Ledger entry for a regular transfer over the unemitted span, clipped to
   the segment. The progress fraction is the flow's mean achieved rate over
   the clipped span relative to nominal bandwidth, read off the virtual
   clock; the clamp absorbs float residue on very short spans. *)
let emit_weighted t f ~now =
  let a = Float.max f.t_emit t.seg_lo and b = Float.min now t.seg_hi in
  if b > a then begin
    let va =
      if f.t_emit >= t.seg_lo then f.v_emit
      else Option.value t.v_seg_lo ~default:f.v_emit
    in
    let vb =
      if now <= t.seg_hi then t.vclock else Option.value t.v_seg_hi ~default:t.vclock
    in
    let fraction = f.weight *. (vb -. va) /. (t.bandwidth *. (b -. a)) in
    let fraction = Float.min 1.0 (Float.max 0.0 fraction) in
    Metrics.record_weighted t.metrics ~t0:a ~t1:b ~nodes:f.nodes ~fraction
      ~progress:Metrics.Regular_io ~waste:Metrics.Io_dilation
  end

(* Emit the pending ledger span and credit moved volume; requires [advance]
   to have run, so the clock pair (t_last, vclock) is current. *)
let settle_flow t f =
  let now = t.t_last in
  if now > f.t_emit then begin
    (match f.kind with
    | Input | Output -> emit_weighted t f ~now
    | Ckpt -> Metrics.record t.metrics ~t0:f.t_emit ~t1:now ~nodes:f.nodes Metrics.Ckpt_io
    | Recovery ->
        Metrics.record t.metrics ~t0:f.t_emit ~t1:now ~nodes:f.nodes Metrics.Recovery_io
    | Drain -> () (* background traffic: no compute nodes are held *));
    f.t_emit <- now;
    f.v_emit <- t.vclock
  end;
  let moved = Float.min f.volume_gb (f.weight *. (t.vclock -. f.v_start)) in
  if moved > f.committed_gb then begin
    t.transferred_committed <- t.transferred_committed +. (moved -. f.committed_gb);
    f.committed_gb <- moved
  end

let commit_full t f =
  if f.volume_gb > f.committed_gb then begin
    t.transferred_committed <- t.transferred_committed +. (f.volume_gb -. f.committed_gb);
    f.committed_gb <- f.volume_gb
  end

let drop t f =
  f.live <- false;
  f.in_set <- false;
  if not (Pqueue.is_null f.heap_h) then begin
    ignore (Pqueue.remove t.heap f.heap_h);
    f.heap_h <- Pqueue.null_handle
  end;
  Hashtbl.remove t.flows f.id;
  t.total_weight <- t.total_weight -. f.weight;
  t.nflows <- t.nflows - 1;
  if t.nflows = 0 then t.total_weight <- 0.0

(* Retime the single completion event to the heap minimum. Simultaneous
   completions resolve as a cascade of zero-delay events, preserving the
   one-event invariant. The heap root is read piecewise and the calendar
   event re-armed through the recycled [cb_completion], so per-completion
   bookkeeping allocates nothing. *)
let rec reschedule_next t =
  if Pqueue.is_empty t.heap then begin
    if not (Engine.is_none t.next_ev) then begin
      ignore (Engine.cancel t.engine t.next_ev);
      t.next_ev <- Engine.none
    end
  end
  else begin
    let v_min = Pqueue.min_priority t.heap in
    let time = t.t_last +. (Float.max 0.0 (v_min -. t.vclock) /. slope t) in
    let retimed =
      (not (Engine.is_none t.next_ev))
      &&
      match Engine.time_of t.engine t.next_ev with
      | Some tm when tm = time -> true
      | Some _ | None -> Engine.reschedule t.engine t.next_ev ~time
    in
    if not retimed then
      t.next_ev <- Engine.schedule_at t.engine ~kind:Ev_kind.io ~time t.cb_completion
  end

and on_next_completion t _engine =
  t.next_ev <- Engine.none;
  advance t;
  if not (Pqueue.is_empty t.heap) then begin
    let f = Pqueue.min_value t.heap in
    Pqueue.drop_min t.heap;
    f.heap_h <- Pqueue.null_handle;
    settle_flow t f;
    commit_full t f;
    drop t f;
    reschedule_next t;
    f.on_complete ()
  end

let create ~engine ~metrics ~bandwidth_gbs ~sharing =
  if bandwidth_gbs <= 0.0 then invalid_arg "Io_subsystem.create: bandwidth must be positive";
  let seg_lo, seg_hi = Metrics.segment metrics in
  let now = Engine.now engine in
  let t =
    {
      engine;
      metrics;
      bandwidth = bandwidth_gbs;
      sharing;
      flows = Hashtbl.create 64;
      heap = Pqueue.create ();
      next_id = 0;
      transferred_committed = 0.0;
      vclock = 0.0;
      t_last = now;
      total_weight = 0.0;
      nflows = 0;
      next_ev = Engine.none;
      cb_completion = ignore;
      seg_lo;
      seg_hi;
      v_seg_lo = (if now >= seg_lo then Some 0.0 else None);
      v_seg_hi = (if now >= seg_hi then Some 0.0 else None);
    }
  in
  t.cb_completion <- on_next_completion t;
  t

let start_flow t ~job ~nodes ~kind ~volume_gb ~on_complete =
  if nodes <= 0 then invalid_arg "Io_subsystem.start_flow: non-positive node count";
  if volume_gb < 0.0 then invalid_arg "Io_subsystem.start_flow: negative volume";
  let now = Engine.now t.engine in
  let id = t.next_id in
  t.next_id <- id + 1;
  if volume_gb = 0.0 then begin
    (* Complete through the calendar so observers see a consistent order;
       the flow never joins the shared pool. *)
    let f =
      {
        id;
        job;
        nodes;
        kind;
        volume_gb;
        weight = 0.0;
        v_start = 0.0;
        v_done = 0.0;
        t_emit = now;
        v_emit = 0.0;
        committed_gb = 0.0;
        live = true;
        in_set = false;
        heap_h = Pqueue.null_handle;
        zv_ev = Engine.none;
        on_complete;
      }
    in
    f.zv_ev <-
      Engine.schedule_after t.engine ~kind:Ev_kind.io ~delay:0.0 (fun _ ->
          f.zv_ev <- Engine.none;
          if f.live then begin
            f.live <- false;
            f.on_complete ()
          end);
    f
  end
  else begin
    advance t;
    let weight =
      match t.sharing with
      | `Unshared -> 1.0
      | `Linear | `Degraded _ -> float_of_int nodes
    in
    let f =
      {
        id;
        job;
        nodes;
        kind;
        volume_gb;
        weight;
        v_start = t.vclock;
        v_done = t.vclock +. (volume_gb /. weight);
        t_emit = now;
        v_emit = t.vclock;
        committed_gb = 0.0;
        live = true;
        in_set = true;
        heap_h = Pqueue.null_handle;
        zv_ev = Engine.none;
        on_complete;
      }
    in
    Hashtbl.replace t.flows id f;
    t.total_weight <- t.total_weight +. weight;
    t.nflows <- t.nflows + 1;
    f.heap_h <- Pqueue.add t.heap ~priority:f.v_done f;
    reschedule_next t;
    f
  end

let abort_flow t f =
  if f.live then
    if f.in_set then begin
      advance t;
      settle_flow t f;
      drop t f;
      reschedule_next t
    end
    else begin
      if not (Engine.is_none f.zv_ev) then begin
        ignore (Engine.cancel t.engine f.zv_ev);
        f.zv_ev <- Engine.none
      end;
      f.live <- false
    end

let sync t =
  advance t;
  Hashtbl.iter (fun _ f -> settle_flow t f) t.flows

let active_count t = t.nflows

let current_rate_gbs t =
  if t.nflows = 0 then 0.0
  else
    match t.sharing with
    | `Linear -> t.bandwidth
    | `Degraded alpha ->
        t.bandwidth /. (1.0 +. (alpha *. Float.max 0.0 (float_of_int t.nflows -. 1.0)))
    | `Unshared -> t.bandwidth *. float_of_int t.nflows

let bandwidth_gbs t = t.bandwidth
let active_rate t f = if f.live && f.in_set then Some (f.weight *. slope t) else None

(* Virtual clock extrapolated to the present without mutating state: the
   slope is constant since the last membership change. *)
let vnow t = t.vclock +. ((Engine.now t.engine -. t.t_last) *. slope t)

let remaining_gb t f =
  if not f.live then None
  else if not f.in_set then Some 0.0
  else Some (Float.max 0.0 (f.volume_gb -. (f.weight *. (vnow t -. f.v_start))))

let flow_job f = f.job
let flow_kind f = f.kind
let flow_id f = f.id

let transferred_gb t =
  let v = vnow t in
  Hashtbl.fold
    (fun _ f acc ->
      let moved = Float.min f.volume_gb (f.weight *. (v -. f.v_start)) in
      acc +. Float.max 0.0 (moved -. f.committed_gb))
    t.flows t.transferred_committed
