open Sim_types
module Engine = Cocheck_des.Engine
module Jobgen = Cocheck_model.Jobgen
module Io = Io_subsystem
module Interval_ledger = Cocheck_util.Interval_ledger

let rec try_start w =
  (* Greedy first-fit over the priority-ordered queue: start every entry
     that fits in the currently free nodes. Explicit recursion fixes the
     left-to-right evaluation the allocation side effects rely on.

     [alloc] succeeds exactly when the count fits the free total (grants
     need not be contiguous), which licenses two allocation-free fast
     paths: the startable head prefix is consumed by popping — the common
     shape after a kill, where the requeued head restarts on the nodes it
     just released — and the tail is rebuilt cons by cons only when a
     side-effect-free scan finds a deeper entry that fits. *)
  match w.queue with
  | entry :: rest when entry.e_spec.Jobgen.nodes <= Node_pool.free_count w.pool -> (
      match Node_pool.alloc w.pool ~job:(live_peek w.live) ~count:entry.e_spec.Jobgen.nodes with
      | None -> assert false
      | Some nodes ->
          w.queue <- rest;
          start_instance w entry nodes;
          try_start w)
  | [] | _ :: _ ->
      let rec fits free = function
        | [] -> false
        | entry :: rest -> entry.e_spec.Jobgen.nodes <= free || fits free rest
      in
      let backfill = match w.queue with [] -> false | _ :: rest -> fits (Node_pool.free_count w.pool) rest in
      if backfill then begin
        let rec go acc = function
          | [] -> List.rev acc
          | entry :: rest -> (
              match
                Node_pool.alloc w.pool ~job:(live_peek w.live) ~count:entry.e_spec.Jobgen.nodes
              with
              | None -> go (entry :: acc) rest
              | Some nodes ->
                  start_instance w entry nodes;
                  go acc rest)
        in
        w.queue <- go [] w.queue
      end

and start_instance w entry nodes =

  let ci = entry.e_spec.Jobgen.class_index in
  let nsnap = Array.length w.snap in
  let p = w.inst_free in
  let inst =
    if p.inf_n > 0 then begin
      (* Refill a retired record. Its recycled callbacks (installed when
         the record was first built) stay in place — they dereference the
         record at fire time, so they act on this, the current, tenant. *)
      p.inf_n <- p.inf_n - 1;
      let i = p.inf.(p.inf_n) in
      i.idx <- w.next_inst;
      i.spec <- entry.e_spec;
      i.total_work <- entry.e_remaining;
      i.entry_has_ckpt <- entry.e_has_ckpt;
      i.restarts <- entry.e_restarts;
      i.nodes <- nodes;
      i.start_time <- now w;
      i.period <- w.periods.(ci);
      i.ckpt_nominal <- w.ckpt_nominals.(ci);
      i.activity <- Computing;
      i.work_done <- 0.0;
      i.committed <- 0.0;
      i.has_ckpt <- false;
      i.compute_start <- now w;
      Interval_ledger.clear i.uncommitted;
      i.last_commit_end <- now w;
      i.ckpt_request_ev <- Engine.none;
      i.work_done_ev <- Engine.none;
      i.wait_start <- now w;
      i.ckpt_content <- 0.0;
      i.holds_token <- false;
      Array.fill i.committed_local 0 nsnap 0.0;
      Array.fill i.local_safe_time 0 nsnap (now w);
      i.local_level <- 0;
      i.local_pause_start <- now w;
      Array.fill i.local_tick_ev 0 nsnap Engine.none;
      i.local_done_ev <- Engine.none;
      i.delay_ev <- Engine.none;
      i
    end
    else begin
      let i =
        {
          idx = w.next_inst;
          spec = entry.e_spec;
          total_work = entry.e_remaining;
          entry_has_ckpt = entry.e_has_ckpt;
          restarts = entry.e_restarts;
          nodes;
          start_time = now w;
          period = w.periods.(ci);
          ckpt_nominal = w.ckpt_nominals.(ci);
          activity = Computing;
          work_done = 0.0;
          committed = 0.0;
          has_ckpt = false;
          compute_start = now w;
          uncommitted = Interval_ledger.create ();
          last_commit_end = now w;
          ckpt_request_ev = Engine.none;
          work_done_ev = Engine.none;
          wait_start = now w;
          ckpt_content = 0.0;
          holds_token = false;
          (* Zero-length arrays are shared atoms: legacy (snapshot-free)
             configs allocate nothing extra here. *)
          committed_local = Array.make nsnap 0.0;
          local_safe_time = Array.make nsnap (now w);
          local_level = 0;
          local_pause_start = now w;
          local_tick_ev = Array.make nsnap Engine.none;
          local_done_ev = Engine.none;
          delay_ev = Engine.none;
          cb_work_done = ignore;
          cb_ckpt_request = ignore;
          cb_local_tick = Array.make nsnap ignore;
          cb_local_done = ignore;
          live_slot = -1;
        }
      in
      (* The recycled callbacks: one closure each per record, re-armed by
         every periodic reschedule instead of a fresh closure per event,
         and surviving the record's reuse. *)
      i.cb_work_done <-
        (fun _ ->
          i.work_done_ev <- Engine.none;
          on_work_complete w i);
      Ckpt_path.install_callbacks w i;
      i
    end
  in


  w.next_inst <- w.next_inst + 1;
  w.jobs_started <- w.jobs_started + 1;
  (* Claims the slot the [Node_pool.alloc] grant above was tagged with:
     nothing allocates or frees between the peek and this commit. *)
  live_commit w.live inst;
  Hashtbl.replace w.insts inst.idx inst;
  if tracing w then
    emit_inst w inst
      (Trace.Job_started { restarts = inst.restarts; nodes = inst.spec.Jobgen.nodes });
  match entry.e_restart with
  | Soft k when nsnap > 0 ->
      (* Restart from the surviving snapshot level: a fixed per-level
         delay, no PFS traffic. *)
      let k = min k (nsnap - 1) in
      inst.activity <- Local_recovery;
      inst.local_level <- k;
      inst.wait_start <- now w;
      inst.delay_ev <-
        Engine.schedule_after w.engine ~kind:Ev_kind.job
          ~delay:w.snap.(k).Config.sl_recovery_s
          (fun _ ->
            inst.delay_ev <- Engine.none;
            Metrics.record w.metrics ~t0:inst.wait_start ~t1:(now w)
              ~nodes:inst.spec.Jobgen.nodes Metrics.Recovery_io;
            on_blocking_io_done w inst Io.Recovery)
  | Fresh | Soft _ | Hard ->
      let volume =
        if entry.e_restart <> Fresh then
          if entry.e_has_ckpt then inst.spec.Jobgen.ckpt_gb else inst.spec.Jobgen.input_gb
        else inst.spec.Jobgen.input_gb
      in
      let kind = if entry.e_restart <> Fresh then Io.Recovery else Io.Input in
      begin_blocking_io w inst kind volume

(* Initial input, recovery reads and final outputs are blocking in every
   strategy; under a token discipline they queue, otherwise they start at
   once. *)
and begin_blocking_io w inst kind volume =
  let fast =
    (* Fast restart: the newest surviving checkpoint is still in a buffer
       tier, so the recovery read goes at that tier's speed. *)
    kind = Io.Recovery
    &&
    match (w.bb, w.hier) with
    | Some bb, _ when Burst_buffer.resident_for bb ~owner:inst.spec.Jobgen.id ->
        let flow =
          Burst_buffer.read bb ~owner:inst.spec.Jobgen.id ~job:inst.idx
            ~nodes:inst.spec.Jobgen.nodes ~volume_gb:volume ~on_complete:(fun () ->
              on_blocking_io_done w inst kind)
        in
        inst.activity <- Doing_io (Burst_buffer.io bb, flow, kind);
        true
    | _, Some h -> (
        match Ckpt_hierarchy.recovery_source h ~owner:inst.spec.Jobgen.id with
        | Some level ->
            let pool, flow =
              Ckpt_hierarchy.read h ~owner:inst.spec.Jobgen.id ~job:inst.idx
                ~nodes:inst.spec.Jobgen.nodes ~volume_gb:volume ~level
                ~on_complete:(fun () -> on_blocking_io_done w inst kind)
            in
            inst.activity <- Doing_io (pool, flow, kind);
            true
        | None -> false)
    | _ -> false
  in
  if fast then ()
  else if volume <= 0.0 then begin
    (* No bytes to move: complete through the flow engine's zero-volume
       path (an immediate event a kill can still abort), without taking the
       token. *)
    let flow =
      Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind ~volume_gb:0.0
        ~on_complete:(fun () -> on_blocking_io_done w inst kind)
    in
    inst.activity <- Doing_io (w.io, flow, kind)
  end
  else if w.uses_token then begin
    inst.activity <- Waiting_io kind;
    inst.wait_start <- now w;

    Arbiter.submit w inst (rkind_io kind) volume;
    Arbiter.try_grant w
  end
  else begin
    let flow =
      Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind ~volume_gb:volume
        ~on_complete:(blocking_complete w inst kind ~volume)
    in
    inst.activity <- Doing_io (w.io, flow, kind)
  end

(* Completion continuation for a blocking transfer; when instrumentation is
   on, regular input/output transfers additionally report their dilation
   factor (actual over nominal full-bandwidth duration). *)
and blocking_complete w inst kind ~volume =
  match w.hooks with
  | Some h when (kind = Io.Input || kind = Io.Output) && volume > 0.0 ->
      let t0 = now w in
      let nominal = volume /. bandwidth w in
      fun () ->
        h.on_io_dilation ((now w -. t0) /. nominal);
        on_blocking_io_done w inst kind
  | _ -> fun () -> on_blocking_io_done w inst kind

and on_blocking_io_done w inst kind =
  release_token w inst;
  (match kind with
  | Io.Input | Io.Recovery ->
      (* Work phase begins: exposure clock starts, the first checkpoint
         request lands one (P − C) from now (subsequent requests measure
         from each commit's end, Section 2). *)
      emit_inst w inst Trace.Input_done;
      inst.last_commit_end <- now w;
      Array.fill inst.local_safe_time 0 (Array.length inst.local_safe_time) (now w);
      Ckpt_path.schedule_ckpt_request w inst;
      Ckpt_path.schedule_local_tick w inst;
      start_compute w inst
  | Io.Output -> finish_job w inst
  | Io.Ckpt | Io.Drain -> assert false);
  if w.uses_token then Arbiter.try_grant w

and start_compute w inst =
  let left = inst.total_work -. inst.work_done in
  inst.activity <- Computing;
  inst.compute_start <- now w;
  inst.work_done_ev <-
    Engine.schedule_after w.engine ~kind:Ev_kind.job ~delay:(Float.max left 0.0)
      inst.cb_work_done

and on_work_complete w inst =
  emit_inst w inst Trace.Work_completed;
  pause_compute w inst;
  cancel_local_events w inst;
  cancel_ckpt_request_ev w inst;
  Arbiter.cancel_requests_of w inst;
  begin_blocking_io w inst Io.Output inst.spec.Jobgen.output_gb

and finish_job w inst =
  emit_inst w inst Trace.Job_completed;
  flush_uncommitted w inst Metrics.Work;
  Metrics.record_enrolled w.metrics ~t0:inst.start_time ~t1:(now w)
    ~nodes:inst.spec.Jobgen.nodes;
  Node_pool.release w.pool inst.nodes;
  live_free w.live inst;
  Hashtbl.remove w.insts inst.idx;
  w.jobs_completed <- w.jobs_completed + 1;
  (* Every event handle is disarmed and the final flow completed: the
     record can host the next start ([try_start] may reuse it at once). *)
  release_inst w.inst_free inst;
  try_start w

(* The Req_io grant continuation ({!Arbiter.try_grant} dispatches here
   through [w.h_grant_io]). *)
let grant_io w (req : request) =
  let inst = req.r_inst in
  let kind = match req.r_kind with Req_io k -> k | Req_ckpt -> assert false in
  record_wait w inst ~from:inst.wait_start;
  let flow =
    Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind
      ~volume_gb:req.r_volume
      ~on_complete:(blocking_complete w inst kind ~volume:req.r_volume)
  in
  inst.activity <- Doing_io (w.io, flow, kind)
