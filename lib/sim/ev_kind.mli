(** Event-kind indices the simulator passes to
    {!Cocheck_des.Engine.schedule_at}'s [?kind], and the name table handed
    to [Engine.attach_stats] — one shared vocabulary so event-churn
    counters mean the same thing in every layer. *)

val other : int
(** Anything unclassified (also the fold-in slot for bad kinds). *)

val job : int
(** Job lifecycle: compute completions, local recovery. *)

val io : int
(** PFS flow completions and retimed completion events. *)

val ckpt : int
(** Checkpoint request timers, retries, local (two-level) ticks. *)

val failure : int
(** Node failure arrivals. *)

val probe : int
(** Read-only observability probes (time-series sampling). *)

val names : string array
(** Display names, indexed by the constants above. *)
