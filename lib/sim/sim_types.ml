(* The simulator's shared vocabulary: the world record [w], per-instance
   state, queued submissions, token requests, and the [ARBITER] contract
   every token-granting policy implements. This module holds state and
   state-only helpers; the event logic lives in {!Arbiter} (token
   arbitration), {!Ckpt_path} (request → commit/abort), {!Lifecycle}
   (start/compute/finish) and {!Failure_path} (kill/restart), with
   {!Simulator} as the unchanged facade.

   The handlers form one event web across those modules. The compilation
   order breaks the cycles with three late-bound continuations stored in
   [w] ([h_grant_io], [h_grant_ckpt], [h_start_compute]), wired once by
   {!Simulator.run} before the first event fires. *)

open Cocheck_util
module Engine = Cocheck_des.Engine
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Jobgen = Cocheck_model.Jobgen
module Io = Io_subsystem

(* A queued (re)submission. [e_remaining] is the work left after the last
   committed checkpoint; [e_restart] marks how the next instance recovers
   ([Soft k] restarts from the surviving snapshot level [k] under
   multilevel CR). *)
type restart_kind = Fresh | Soft of int | Hard

type entry = {
  e_spec : Jobgen.spec;
  e_remaining : float;
  e_restart : restart_kind;
  e_has_ckpt : bool;  (* some instance of this job ever committed globally *)
  e_restarts : int;
}

type activity =
  | Doing_io of Io.t * Io.flow * Io.io_kind
  | Computing
  | Computing_pending  (* non-blocking: computing with a checkpoint request out *)
  | Waiting_io of Io.io_kind
  | Waiting_ckpt  (* blocking FCFS: idle until the token grants the commit *)
  | Local_ckpt  (* two-level: paused for a node-local snapshot *)
  | Local_recovery  (* two-level: restarting from node-local state *)

(* Instance records are pooled ({!Lifecycle.start_instance} refills a
   retired record instead of allocating one per start, the restart-storm
   hot path), so every scalar field is mutable; the container fields
   (ledger, per-snapshot-level arrays, recycled callbacks) are reused in
   place — their sizes depend only on the run's config, never on the
   instance. A record must only be released once every armed event is
   cancelled and every flow aborted: the recycled callbacks stay installed
   across reuses and act on whichever instance currently owns the record. *)
type inst = {
  mutable idx : int;
  mutable spec : Jobgen.spec;
  mutable total_work : float;
  mutable entry_has_ckpt : bool;
  mutable restarts : int;
  mutable nodes : Node_pool.allocation;
  mutable start_time : float;
  mutable period : float;  (* P_i under the strategy's period rule *)
  mutable ckpt_nominal : float;  (* C_i at full bandwidth *)
  mutable activity : activity;
  mutable work_done : float;
  mutable committed : float;
  mutable has_ckpt : bool;  (* committed during this instance *)
  mutable compute_start : float;
  uncommitted : Interval_ledger.t;  (* work intervals since last commit *)
  mutable last_commit_end : float;
  (* Armed calendar events, [Engine.none] when absent: an [option] here
     would cost a [Some] allocation every time a periodic event re-arms. *)
  mutable ckpt_request_ev : Engine.handle;
  mutable work_done_ev : Engine.handle;
  mutable wait_start : float;
  mutable ckpt_content : float;  (* work level a commit in flight captures *)
  mutable holds_token : bool;
  (* Multilevel (snapshot-level) checkpointing state, one slot per
     {!Config.snapshot_level} (shallow → deep; all empty-array atoms when
     the config has none, so legacy runs allocate nothing here). *)
  committed_local : float array;  (* work level of each level's newest snapshot *)
  local_safe_time : float array;  (* wall time of that capture point *)
  mutable local_level : int;  (* level of the in-flight snapshot/recovery *)
  mutable local_pause_start : float;
  local_tick_ev : Engine.handle array;
  mutable local_done_ev : Engine.handle;
  mutable delay_ev : Engine.handle;  (* local-recovery delay *)
  (* Recycled event callbacks, built once per instance ({!Lifecycle} and
     {!Ckpt_path} install them at start): the periodic schedule sites
     (work-done, checkpoint request, local ticks) re-arm these instead of
     allocating a fresh closure per event. *)
  mutable cb_work_done : Engine.t -> unit;
  mutable cb_ckpt_request : Engine.t -> unit;
  cb_local_tick : (Engine.t -> unit) array;
  mutable cb_local_done : Engine.t -> unit;
  mutable live_slot : int;  (* slot in [w.live] while holding nodes; -1 otherwise *)
}

type rkind = Req_ckpt | Req_io of Io.io_kind

(* Preallocated [Req_io] atoms: the payload constructors are constant, so a
   submit site can reuse these instead of boxing a fresh [Req_io k] per
   request. *)
let req_io_input = Req_io Io.Input
let req_io_output = Req_io Io.Output
let req_io_ckpt = Req_io Io.Ckpt
let req_io_recovery = Req_io Io.Recovery
let req_io_drain = Req_io Io.Drain

let rkind_io : Io.io_kind -> rkind = function
  | Io.Input -> req_io_input
  | Io.Output -> req_io_output
  | Io.Ckpt -> req_io_ckpt
  | Io.Recovery -> req_io_recovery
  | Io.Drain -> req_io_drain

(* Requests are pooled: every field is mutable so {!Arbiter.submit} can
   refill a recycled record instead of allocating one per submission.
   [r_slot] is maintained by the arbiter's pool — the slot currently
   holding this record, or [-1] while the record is outside the pool; a
   pool slot is live exactly when its record's [r_slot] points back at it,
   which is what lets the pool drop its id → slot hash table. *)
type request = {
  mutable r_id : int;
  mutable r_inst : inst;
  mutable r_kind : rkind;
  mutable r_volume : float;
  mutable r_at : float;
  mutable r_cancelled : bool;
  mutable r_slot : int;
}

(* The recycling stack for retired request records. It lives outside [w]
   (created before the arbiter, which is built inside the [w] literal) so
   both the policies' cancellation path and the driver's post-grant release
   can push onto the same stack that {!Arbiter.submit} pops. A released
   record still references its last instance until reuse; the retention is
   bounded by the deepest backlog ever seen. *)
type req_free = { mutable rf : request array; mutable rf_n : int }

let req_free_create () = { rf = [||]; rf_n = 0 }

(* Retired instance records awaiting reuse, same shape as [req_free]. *)
type inst_free = { mutable inf : inst array; mutable inf_n : int }

let inst_free_create () = { inf = [||]; inf_n = 0 }

(* Stable slots for the instances currently holding nodes. Every
   {!Node_pool} grant carries its owner's slot id as the grant's [job], so
   the per-failure victim lookup ({!Failure_path.handle_failure}) is a
   direct array read instead of a [Hashtbl.find_opt] — failures fire
   millions of times in the year-scale runs, and the hash probe plus its
   [Some] box showed in the minor-words budget. A slot is freed exactly
   when its instance releases its nodes, so [Node_pool.owner_idx] can only
   ever name a live slot; a freed slot keeps its last (stale, never read)
   pointer so the registry allocates nothing in steady state, like the
   recycling stacks above. *)
type live_slots = {
  mutable lv : inst array;  (* slot -> occupying instance (stale once freed) *)
  mutable lv_free : int array;  (* retired slot ids awaiting reuse *)
  mutable lv_free_n : int;
  mutable lv_next : int;  (* high-water mark: slots ever handed out *)
}

let live_slots_create () = { lv = [||]; lv_free = [||]; lv_free_n = 0; lv_next = 0 }

(* The slot id the next [live_commit] will assign. Peek and commit are
   split because the id must be known at [Node_pool.alloc] time, yet the
   allocation can still fail (the backfill scan) — a failed alloc must not
   consume the slot. No allocate-or-free runs between the two. *)
let[@inline] live_peek p = if p.lv_free_n > 0 then p.lv_free.(p.lv_free_n - 1) else p.lv_next

let live_commit p (i : inst) =
  let slot =
    if p.lv_free_n > 0 then begin
      p.lv_free_n <- p.lv_free_n - 1;
      p.lv_free.(p.lv_free_n)
    end
    else begin
      let s = p.lv_next in
      p.lv_next <- s + 1;
      s
    end
  in
  let cap = Array.length p.lv in
  if slot >= cap then begin
    let bigger = Array.make (max 16 (2 * (slot + 1))) i in
    Array.blit p.lv 0 bigger 0 cap;
    p.lv <- bigger
  end;
  p.lv.(slot) <- i;
  i.live_slot <- slot

let live_free p (i : inst) =
  let cap = Array.length p.lv_free in
  if cap = 0 then p.lv_free <- Array.make 16 0
  else if p.lv_free_n = cap then begin
    let bigger = Array.make (2 * cap) 0 in
    Array.blit p.lv_free 0 bigger 0 cap;
    p.lv_free <- bigger
  end;
  p.lv_free.(p.lv_free_n) <- i.live_slot;
  p.lv_free_n <- p.lv_free_n + 1;
  i.live_slot <- -1

let release_inst p (i : inst) =
  let cap = Array.length p.inf in
  if cap = 0 then p.inf <- Array.make 16 i
  else if p.inf_n = cap then begin
    let bigger = Array.make (2 * cap) p.inf.(0) in
    Array.blit p.inf 0 bigger 0 cap;
    p.inf <- bigger
  end;
  p.inf.(p.inf_n) <- i;
  p.inf_n <- p.inf_n + 1

let release_request p (r : request) =
  r.r_slot <- -1;
  let cap = Array.length p.rf in
  if cap = 0 then p.rf <- Array.make 16 r
  else if p.rf_n = cap then begin
    let bigger = Array.make (2 * cap) p.rf.(0) in
    Array.blit p.rf 0 bigger 0 cap;
    p.rf <- bigger
  end;
  p.rf.(p.rf_n) <- r;
  p.rf_n <- p.rf_n + 1

(* Arbiter observability: cumulative counters plus the live backlog, cheap
   enough to read at every probe. *)
type arb_stats = {
  arb_policy : string;
  arb_pending : int;  (* live (non-cancelled) requests right now *)
  arb_enqueued : int;  (* requests ever submitted *)
  arb_granted : int;  (* requests ever selected *)
  arb_cancelled : int;  (* requests withdrawn by kills and completions *)
}

(* The pluggable token-arbitration policy. Implementations own their queue
   structure; the simulator core only submits, withdraws and selects.
   [select] removes and returns the granted request — it must never return
   a cancelled request — and [pending] counts the live backlog. *)
module type ARBITER = sig
  val policy : string
  (** Display name of the policy, for stats and dashboards. *)

  val enqueue : request -> unit
  (** Submit a request; arrival order is observable to every policy. *)

  val cancel_of_inst : inst -> unit
  (** Withdraw every request of a killed or finished instance, so a stale
      request is never granted (lazily marked or eagerly removed — the
      choice is private to the implementation). *)

  val select : now:float -> request option
  (** Pick, remove and return the next request to grant at time [now]. *)

  val pending : unit -> int
  (** Live requests awaiting the token. *)

  val stats : unit -> arb_stats
  (** Observability snapshot. *)
end

type arbiter = (module ARBITER)

type hooks = {
  on_token_wait : float -> unit;
  on_ckpt_duration : float -> unit;
  on_io_dilation : float -> unit;
  on_lost_work : float -> unit;
}

type w = {
  cfg : Config.t;
  classes : App_class.t array;
  engine : Engine.t;
  metrics : Metrics.t;
  io : Io.t;
  pool : Node_pool.t;
  periods : float array;  (* per class index *)
  ckpt_nominals : float array;
  uses_token : bool;
  ckpt_enabled : bool;
  arbiter : arbiter;
  req_free : req_free;  (* retired request records, shared with [arbiter] *)
  inst_free : inst_free;  (* retired instance records *)
  mutable queue : entry list;  (* priority order: restarts first *)
  insts : (int, inst) Hashtbl.t;
  live : live_slots;  (* node-holding instances by grant slot, for failure lookup *)
  bb : Burst_buffer.t option;
  hier : Ckpt_hierarchy.t option;  (* buffer levels of [cfg.multilevel] *)
  snap : Config.snapshot_level array;  (* snapshot levels, shallow → deep *)
  trace : Trace.t option;
  hooks : hooks option;  (* None keeps the hot path allocation-free *)
  soft_rng : Rng.t;  (* classifies failures soft/hard under two-level CR *)
  mutable token_busy : bool;
  mutable next_inst : int;
  mutable next_req : int;
  (* Late-bound continuations breaking the Arbiter/Ckpt_path → Lifecycle
     module cycle; Simulator.run wires them before the first event. *)
  mutable h_grant_io : request -> unit;
  mutable h_grant_ckpt : request -> unit;
  mutable h_start_compute : inst -> unit;
  interval_stats : Stats.running array;
  ckpt_wait_stats : Stats.running array;
  restarts_by_class : int array;
  lost_ns_by_class : float array;
  mutable failures_seen : int;
  mutable failures_hitting_jobs : int;
  mutable ckpts_committed : int;
  mutable ckpts_aborted : int;
  mutable restarts : int;
  mutable jobs_started : int;
  mutable jobs_completed : int;
}

let eps_work = 1e-6
let now w = Engine.now w.engine
let bandwidth w = w.cfg.Config.platform.Platform.bandwidth_gbs

let unwired : 'a. 'a -> unit =
 fun _ -> invalid_arg "Sim_types: continuation used before Simulator.run wired it"

let cancel_ckpt_request_ev w inst =
  if not (Engine.is_none inst.ckpt_request_ev) then begin
    ignore (Engine.cancel w.engine inst.ckpt_request_ev);
    inst.ckpt_request_ev <- Engine.none
  end

let cancel_work_done_ev w inst =
  if not (Engine.is_none inst.work_done_ev) then begin
    ignore (Engine.cancel w.engine inst.work_done_ev);
    inst.work_done_ev <- Engine.none
  end

let cancel_local_events w inst =
  let ticks = inst.local_tick_ev in
  for k = 0 to Array.length ticks - 1 do
    if not (Engine.is_none ticks.(k)) then begin
      ignore (Engine.cancel w.engine ticks.(k));
      ticks.(k) <- Engine.none
    end
  done;
  if not (Engine.is_none inst.local_done_ev) then ignore (Engine.cancel w.engine inst.local_done_ev);
  if not (Engine.is_none inst.delay_ev) then ignore (Engine.cancel w.engine inst.delay_ev);
  inst.local_done_ev <- Engine.none;
  inst.delay_ev <- Engine.none

(* Close the open compute interval: bank the work and remember the interval
   as uncommitted until the next checkpoint commits (or a failure loses it). *)
let pause_compute w inst =
  (match inst.activity with
  | Computing | Computing_pending -> ()
  | _ -> invalid_arg "Simulator.pause_compute: not computing");
  cancel_work_done_ev w inst;
  let t = now w in
  if t > inst.compute_start then begin
    inst.work_done <- inst.work_done +. (t -. inst.compute_start);
    Interval_ledger.push inst.uncommitted ~lo:inst.compute_start ~hi:t
  end

(* Flush order contract: the retired list ledger kept its head newest, so
   metrics saw intervals newest-first; the array ledger replays that order
   (length − 1 downto 0) to keep summation order — and the golden traces —
   bit-identical. *)
let flush_uncommitted w inst kind =
  let led = inst.uncommitted in
  for i = Interval_ledger.length led - 1 downto 0 do
    Metrics.record w.metrics ~t0:(Interval_ledger.lo_at led i)
      ~t1:(Interval_ledger.hi_at led i) ~nodes:inst.spec.nodes kind
  done;
  Interval_ledger.clear led

(* Failure partition: intervals ending after [safe] are lost, the rest
   survive as work (the multilevel soft-restart path); [safe = neg_infinity]
   loses everything. Lost intervals flush first, then kept ones, each subset
   newest-first — the exact record order of the old two-pass list flush. *)
let flush_partition w inst ~safe =
  let led = inst.uncommitted in
  let n = Interval_ledger.length led in
  for i = n - 1 downto 0 do
    if Interval_ledger.hi_at led i > safe then
      Metrics.record w.metrics ~t0:(Interval_ledger.lo_at led i)
        ~t1:(Interval_ledger.hi_at led i) ~nodes:inst.spec.nodes Metrics.Lost_work
  done;
  for i = n - 1 downto 0 do
    if not (Interval_ledger.hi_at led i > safe) then
      Metrics.record w.metrics ~t0:(Interval_ledger.lo_at led i)
        ~t1:(Interval_ledger.hi_at led i) ~nodes:inst.spec.nodes Metrics.Work
  done;
  Interval_ledger.clear led

let record_wait w inst ~from =
  Metrics.record w.metrics ~t0:from ~t1:(now w) ~nodes:inst.spec.nodes Metrics.Wait

let emit w ~job ~inst kind =
  match w.trace with
  | Some t -> Trace.record t { Trace.time = now w; job; inst; kind }
  | None -> ()

let emit_inst w (inst : inst) kind = emit w ~job:inst.spec.Jobgen.id ~inst:inst.idx kind

(* Payload-carrying trace constructors ([Job_started {…}], [Job_killed {…}],
   …) allocate at the call site even when tracing is off; emit sites guard
   them with this so the untraced hot path builds nothing. *)
let[@inline] tracing w = match w.trace with Some _ -> true | None -> false

let release_token w inst =
  if inst.holds_token then begin
    inst.holds_token <- false;
    w.token_busy <- false
  end

(* A flow may live on the PFS, inside the burst buffer, or on a hierarchy
   level's pool; buffered writes additionally hold a capacity reservation
   to release. *)
let abort_inst_flow w sub flow =
  match w.bb with
  | Some bb when sub == Burst_buffer.io bb ->
      Burst_buffer.abort_write bb flow;
      (* Reads have no reservation; abort_write ignores them. *)
      Io.abort_flow sub flow
  | _ -> (
      match w.hier with
      | Some h when Ckpt_hierarchy.owns_pool h sub ->
          Ckpt_hierarchy.abort_write h ~pool:sub flow;
          Io.abort_flow sub flow
      | _ -> Io.abort_flow sub flow)
