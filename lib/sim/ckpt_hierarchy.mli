(** An L-level checkpoint storage hierarchy (VELOC-style), generalizing
    {!Burst_buffer} to any chain of buffer tiers above the PFS.

    Each {!Config.buffer_level} owns an absorb {!Io_subsystem} (jobs write
    and recover at [bl_bandwidth_gbs], linear sharing) of limited capacity.
    A committed copy then {e flushes} one tier deeper in the background:
    {ul
    {- [bl_flush_gbs = None] — serialized drains, one per level at a time,
       as {!Io_subsystem.Drain} flows {e inside the destination tier's}
       subsystem (the PFS below the deepest level), contending with its
       foreground traffic. With a single level this reproduces
       {!Burst_buffer} event-for-event — the differential oracle.}
    {- [bl_flush_gbs = Some b] — the level gets a dedicated [b] GB/s flush
       edge; every queued copy with room downstream flushes immediately,
       concurrent flushes contending as ordinary weighted flows.}}

    Capacity is reserved at write (or flush-in) start and released when the
    copy flushes out, is destroyed, or its write aborts — [used_gb] can
    never exceed the tier capacity (property-tested). Failures destroy the
    owner's copies at every level whose [bl_survival] the failure's
    uniform draw exceeds; recovery reads from the level holding the newest
    surviving copy, the PFS when it holds something newer still. Writes
    that fit nowhere count as spills here (the caller falls back to the
    strategy's PFS path). *)

type t

val create :
  engine:Cocheck_des.Engine.t ->
  metrics:Metrics.t ->
  pfs:Io_subsystem.t ->
  Config.buffer_level list ->
  t
(** Levels shallow → deep. Raises [Invalid_argument] on an empty list. *)

val levels_count : t -> int

val fits : t -> volume_gb:float -> bool
(** Whether some level can absorb a write of this size right now. *)

val write :
  t ->
  owner:int ->
  job:int ->
  nodes:int ->
  volume_gb:float ->
  content:float ->
  at:float ->
  on_complete:(unit -> unit) ->
  (Io_subsystem.t * Io_subsystem.flow) option
(** Start a checkpoint write into the shallowest level with room; returns
    the level's subsystem and the write flow, or [None] (spill counted
    here) when nothing fits. [owner] is the stable job identity, [job] the
    running instance; [content]/[at] describe what the checkpoint captures,
    for post-failure recovery decisions. On completion the copy becomes a
    live recovery source and its background flush is queued. *)

val abort_write : t -> pool:Io_subsystem.t -> Io_subsystem.flow -> unit
(** Cancel an in-flight write (job killed): transfer stops, reservation
    released, nothing becomes resident. No-op on unknown flows. *)

val apply_failure : t -> owner:int -> u:float -> unit
(** Destroy the owner's live copies at every level with
    [u >= bl_survival] (in-flight flushes aborted, both reservations
    released). [u] is the failure's uniform severity draw — the same draw
    that picks the surviving snapshot level. *)

val recovery_source : t -> owner:int -> int option
(** The level holding the owner's newest live copy (ties resolve to the
    shallowest = fastest level), or [None] when the PFS holds something at
    least as new (or nothing survives) and recovery must go through the
    strategy's PFS path. *)

val has_any_copy : t -> owner:int -> bool
(** Whether any checkpoint of this owner survives anywhere — in a live
    hierarchy copy or already flushed to the PFS. *)

val surviving_content : t -> owner:int -> inst:int -> float
(** The most work any surviving copy captured {e for this instance}
    (copies of earlier instances count 0 in the current frame). *)

val note_pfs_commit : t -> owner:int -> inst:int -> content:float -> at:float -> unit
(** Record a checkpoint that committed directly to the PFS through the
    strategy path, so [recovery_source]/[surviving_content] weigh it
    against hierarchy copies. Flushes reaching the PFS record themselves. *)

val read :
  t ->
  owner:int ->
  job:int ->
  nodes:int ->
  volume_gb:float ->
  level:int ->
  on_complete:(unit -> unit) ->
  Io_subsystem.t * Io_subsystem.flow
(** Recovery read at [level]'s absorb speed ([level] from
    {!recovery_source}). *)

val owns_pool : t -> Io_subsystem.t -> bool
(** Whether this subsystem is one of the hierarchy's absorb pools (used to
    route flow aborts). *)

val iter_pools : t -> (Io_subsystem.t -> unit) -> unit
(** Visit every absorb pool and flush edge (ledger syncs, probes). *)

val used_gb : t -> level:int -> float
val capacity_gb : t -> level:int -> float
val drains_pending : t -> int
(** Copies queued for or undergoing a flush, across all levels. *)

val writes_absorbed : t -> int
val writes_spilled : t -> int
