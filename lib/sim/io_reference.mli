(** The naive O(n²)-per-event flow scheduler, retained as the executable
    specification for differential testing of {!Io_subsystem}.

    Semantics are those documented in {!Io_subsystem}: same sharing
    disciplines, same settlement and metrics rules, same zero-volume and
    abort behavior. The implementation is the original full-rescan design —
    every membership change settles every flow, refolds the weight total per
    flow and rebuilds every completion event. Test-only; production code
    must use {!Io_subsystem}. *)

type sharing = [ `Linear | `Degraded of float | `Unshared ]
type io_kind = Input | Output | Ckpt | Recovery | Drain

val io_kind_name : io_kind -> string

type t
type flow

val create :
  engine:Cocheck_des.Engine.t ->
  metrics:Metrics.t ->
  bandwidth_gbs:float ->
  sharing:sharing ->
  t

val start_flow :
  t ->
  job:int ->
  nodes:int ->
  kind:io_kind ->
  volume_gb:float ->
  on_complete:(unit -> unit) ->
  flow

val abort_flow : t -> flow -> unit
val active_count : t -> int
val active_rate : t -> flow -> float option
val current_rate_gbs : t -> float
val bandwidth_gbs : t -> float
val remaining_gb : t -> flow -> float option
val flow_job : flow -> int
val flow_kind : flow -> io_kind
val transferred_gb : t -> float
