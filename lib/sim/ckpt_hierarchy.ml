module Io = Io_subsystem

(* One committed checkpoint copy as it migrates down the hierarchy. A copy
   is born [Writing] in the shallowest level with room, becomes [Resident]
   when the absorb write commits, [Flushing] while a background drain moves
   it one tier deeper, and [Gone] once it reaches the PFS (recorded in
   [pfs_notes]), is destroyed by a failure, or its write is aborted.
   Capacity accounting mirrors {!Burst_buffer}: the source tier is reserved
   from write start to flush completion, the destination tier from flush
   start (so concurrent flushes cannot oversubscribe it). *)
type copy_state = Writing | Resident | Flushing | Gone

type copy = {
  c_owner : int;  (* stable job identity (spec id) *)
  c_inst : int;  (* instance that captured the checkpoint *)
  c_nodes : int;
  c_volume : float;
  c_content : float;  (* work captured, in the instance's frame *)
  c_captured_at : float;
  mutable c_level : int;
  mutable c_state : copy_state;
  mutable c_flow : Io.flow option;  (* live write or flush transfer *)
}

type level = {
  spec : Config.buffer_level;
  pool : Io.t;  (* absorb bandwidth: jobs write and recover here *)
  edge : Io.t option;  (* dedicated flush edge ([bl_flush_gbs = Some _]) *)
  mutable used : float;
  fqueue : copy Queue.t;  (* committed copies awaiting their flush *)
  mutable flushing : bool;  (* serialized mode: a flush is in progress *)
}

type pfs_note = { pn_inst : int; pn_content : float; pn_captured_at : float }

type t = {
  levels : level array;  (* shallow → deep; the PFS sits below the last *)
  pfs : Io.t;
  owners : (int, copy list ref) Hashtbl.t;  (* owner → live committed copies *)
  in_flight : (int * int, copy) Hashtbl.t;  (* (level, flow id) → write *)
  pfs_notes : (int, pfs_note) Hashtbl.t;  (* owner → newest PFS copy *)
  mutable absorbed : int;
  mutable spilled : int;
}

let create ~engine ~metrics ~pfs specs =
  if specs = [] then invalid_arg "Ckpt_hierarchy: no buffer levels";
  let mk (spec : Config.buffer_level) =
    {
      spec;
      pool =
        Io.create ~engine ~metrics ~bandwidth_gbs:spec.Config.bl_bandwidth_gbs
          ~sharing:`Linear;
      edge =
        Option.map
          (fun b -> Io.create ~engine ~metrics ~bandwidth_gbs:b ~sharing:`Linear)
          spec.Config.bl_flush_gbs;
      used = 0.0;
      fqueue = Queue.create ();
      flushing = false;
    }
  in
  {
    levels = Array.of_list (List.map mk specs);
    pfs;
    owners = Hashtbl.create 16;
    in_flight = Hashtbl.create 16;
    pfs_notes = Hashtbl.create 16;
    absorbed = 0;
    spilled = 0;
  }

let levels_count t = Array.length t.levels
let used_gb t ~level = t.levels.(level).used
let capacity_gb t ~level = t.levels.(level).spec.Config.bl_capacity_gb
let writes_absorbed t = t.absorbed
let writes_spilled t = t.spilled

let level_fits lv ~volume_gb =
  volume_gb > 0.0 && lv.used +. volume_gb <= lv.spec.Config.bl_capacity_gb

let fits t ~volume_gb =
  Array.exists (fun lv -> level_fits lv ~volume_gb) t.levels

let owns_pool t io = Array.exists (fun lv -> lv.pool == io) t.levels

let level_of_pool t io =
  let rec go k =
    if k >= Array.length t.levels then None
    else if t.levels.(k).pool == io then Some k
    else go (k + 1)
  in
  go 0

let iter_pools t f =
  Array.iter
    (fun lv ->
      f lv.pool;
      Option.iter f lv.edge)
    t.levels

let add_owner t c =
  match Hashtbl.find_opt t.owners c.c_owner with
  | Some l -> l := c :: !l
  | None -> Hashtbl.replace t.owners c.c_owner (ref [ c ])

let remove_owner t c =
  match Hashtbl.find_opt t.owners c.c_owner with
  | None -> ()
  | Some l ->
      l := List.filter (fun c' -> c' != c) !l;
      if !l = [] then Hashtbl.remove t.owners c.c_owner

let note_pfs_commit t ~owner ~inst ~content ~at =
  match Hashtbl.find_opt t.pfs_notes owner with
  | Some n when n.pn_captured_at > at -> ()
  | _ ->
      Hashtbl.replace t.pfs_notes owner
        { pn_inst = inst; pn_content = content; pn_captured_at = at }

(* Where a flush out of level [k] travels: its dedicated edge when
   configured; otherwise it contends inside the destination tier's own
   subsystem (the next buffer level, or the PFS below the deepest) — the
   legacy burst-buffer discipline. *)
let flush_pool t ~k =
  let lv = t.levels.(k) in
  match lv.edge with
  | Some e -> e
  | None -> if k = Array.length t.levels - 1 then t.pfs else t.levels.(k + 1).pool

let dest_fits t ~k ~volume_gb =
  k = Array.length t.levels - 1
  || t.levels.(k + 1).used +. volume_gb <= t.levels.(k + 1).spec.Config.bl_capacity_gb

let rec start_flush t ~k c =
  let lv = t.levels.(k) in
  let deepest = k = Array.length t.levels - 1 in
  if not deepest then begin
    let d = t.levels.(k + 1) in
    d.used <- d.used +. c.c_volume
  end;
  c.c_state <- Flushing;
  (match lv.edge with None -> lv.flushing <- true | Some _ -> ());
  let flow =
    Io.start_flow (flush_pool t ~k) ~job:c.c_owner ~nodes:c.c_nodes ~kind:Io.Drain
      ~volume_gb:c.c_volume
      ~on_complete:(fun () -> on_flush_done t ~k c)
  in
  c.c_flow <- Some flow

and on_flush_done t ~k c =
  let lv = t.levels.(k) in
  let deepest = k = Array.length t.levels - 1 in
  lv.used <- lv.used -. c.c_volume;
  c.c_flow <- None;
  (match lv.edge with None -> lv.flushing <- false | Some _ -> ());
  if deepest then begin
    c.c_state <- Gone;
    remove_owner t c;
    note_pfs_commit t ~owner:c.c_owner ~inst:c.c_inst ~content:c.c_content
      ~at:c.c_captured_at
  end
  else begin
    c.c_state <- Resident;
    c.c_level <- k + 1;
    Queue.add c t.levels.(k + 1).fqueue;
    maybe_flush t (k + 1)
  end;
  maybe_flush t k;
  if k > 0 then maybe_flush t (k - 1)

and maybe_flush t k =
  let lv = t.levels.(k) in
  (* Drop tombstones of copies destroyed or drained while queued. *)
  let rec head () =
    match Queue.peek_opt lv.fqueue with
    | Some c when c.c_state <> Resident ->
        ignore (Queue.take lv.fqueue);
        head ()
    | other -> other
  in
  match lv.edge with
  | None ->
      (* Serialized: at most one flush out of this level at a time, started
         only when the destination tier has room. *)
      if not lv.flushing then (
        match head () with
        | Some c when dest_fits t ~k ~volume_gb:c.c_volume ->
            ignore (Queue.take lv.fqueue);
            start_flush t ~k c
        | Some _ | None -> ())
  | Some _ ->
      (* Dedicated edge: every queued copy with room downstream flushes
         immediately; concurrent flushes share the edge as ordinary
         weighted flows. *)
      let rec pump () =
        match head () with
        | Some c when dest_fits t ~k ~volume_gb:c.c_volume ->
            ignore (Queue.take lv.fqueue);
            start_flush t ~k c;
            pump ()
        | Some _ | None -> ()
      in
      pump ()

let write t ~owner ~job ~nodes ~volume_gb ~content ~at ~on_complete =
  let rec find k =
    if k >= Array.length t.levels then None
    else if level_fits t.levels.(k) ~volume_gb then Some k
    else find (k + 1)
  in
  match find 0 with
  | None ->
      t.spilled <- t.spilled + 1;
      None
  | Some k ->
      let lv = t.levels.(k) in
      lv.used <- lv.used +. volume_gb;
      t.absorbed <- t.absorbed + 1;
      let c =
        {
          c_owner = owner;
          c_inst = job;
          c_nodes = nodes;
          c_volume = volume_gb;
          c_content = content;
          c_captured_at = at;
          c_level = k;
          c_state = Writing;
          c_flow = None;
        }
      in
      let flow =
        Io.start_flow lv.pool ~job ~nodes ~kind:Io.Ckpt ~volume_gb
          ~on_complete:(fun () ->
            c.c_state <- Resident;
            (match c.c_flow with
            | Some f -> Hashtbl.remove t.in_flight (k, Io.flow_id f)
            | None -> assert false);
            c.c_flow <- None;
            add_owner t c;
            Queue.add c lv.fqueue;
            maybe_flush t k;
            on_complete ())
      in
      c.c_flow <- Some flow;
      Hashtbl.replace t.in_flight (k, Io.flow_id flow) c;
      Some (lv.pool, flow)

let abort_write t ~pool flow =
  match level_of_pool t pool with
  | None -> ()
  | Some k -> (
      match Hashtbl.find_opt t.in_flight (k, Io.flow_id flow) with
      | None -> ()
      | Some c ->
          Hashtbl.remove t.in_flight (k, Io.flow_id flow);
          c.c_state <- Gone;
          c.c_flow <- None;
          t.levels.(k).used <- t.levels.(k).used -. c.c_volume;
          Io.abort_flow t.levels.(k).pool flow)

let destroy_copy t c =
  let k = c.c_level in
  let lv = t.levels.(k) in
  (match c.c_state with
  | Flushing ->
      (match c.c_flow with
      | Some f -> Io.abort_flow (flush_pool t ~k) f
      | None -> ());
      c.c_flow <- None;
      (match lv.edge with None -> lv.flushing <- false | Some _ -> ());
      (* The destination reservation made at flush start is returned too. *)
      if k < Array.length t.levels - 1 then begin
        let d = t.levels.(k + 1) in
        d.used <- d.used -. c.c_volume
      end
  | Resident | Writing | Gone -> ());
  lv.used <- lv.used -. c.c_volume;
  c.c_state <- Gone

let apply_failure t ~owner ~u =
  match Hashtbl.find_opt t.owners owner with
  | None -> ()
  | Some l ->
      let destroyed = ref false in
      let keep =
        List.filter
          (fun c ->
            if u >= t.levels.(c.c_level).spec.Config.bl_survival then begin
              destroy_copy t c;
              destroyed := true;
              false
            end
            else true)
          !l
      in
      if !destroyed then begin
        l := keep;
        if keep = [] then Hashtbl.remove t.owners owner;
        (* Freed capacity and serialized-flush slots may unblock drains. *)
        for k = Array.length t.levels - 1 downto 0 do
          maybe_flush t k
        done
      end

let live_copies t ~owner =
  match Hashtbl.find_opt t.owners owner with
  | None -> []
  | Some l ->
      List.filter (fun c -> c.c_state = Resident || c.c_state = Flushing) !l

let recovery_source t ~owner =
  let best =
    List.fold_left
      (fun acc c ->
        match acc with
        | Some b
          when b.c_captured_at > c.c_captured_at
               || (b.c_captured_at = c.c_captured_at && b.c_level <= c.c_level) ->
            acc
        | _ -> Some c)
      None (live_copies t ~owner)
  in
  match best with
  | None -> None
  | Some c -> (
      match Hashtbl.find_opt t.pfs_notes owner with
      | Some n when n.pn_captured_at > c.c_captured_at ->
          None (* the PFS already holds something newer: recover there *)
      | _ -> Some c.c_level)

let has_any_copy t ~owner =
  live_copies t ~owner <> [] || Hashtbl.mem t.pfs_notes owner

let surviving_content t ~owner ~inst =
  let from_pfs =
    match Hashtbl.find_opt t.pfs_notes owner with
    | Some n when n.pn_inst = inst -> n.pn_content
    | _ -> 0.0
  in
  List.fold_left
    (fun acc c -> if c.c_inst = inst then Float.max acc c.c_content else acc)
    from_pfs (live_copies t ~owner)

let read t ~owner:_ ~job ~nodes ~volume_gb ~level ~on_complete =
  let lv = t.levels.(level) in
  (lv.pool, Io.start_flow lv.pool ~job ~nodes ~kind:Io.Recovery ~volume_gb ~on_complete)

let drains_pending t =
  let queued =
    Array.fold_left
      (fun n lv ->
        Queue.fold (fun n c -> if c.c_state = Resident then n + 1 else n) n lv.fqueue)
      0 t.levels
  in
  Hashtbl.fold
    (fun _ l n ->
      List.fold_left (fun n c -> if c.c_state = Flushing then n + 1 else n) n !l)
    t.owners queued
