(** The discrete-event simulator of Section 5: space-shared jobs generated
    from application classes, first-fit online scheduling, exponential node
    failures with hot-spare replacement, and the configured I/O-and-
    checkpoint scheduling strategy mediating access to the shared parallel
    file system. *)

type result = {
  progress_ns : float;  (** useful node-seconds within the segment *)
  waste_ns : float;  (** wasted node-seconds within the segment *)
  enrolled_ns : float;  (** total enrolled node-seconds within the segment *)
  by_kind : (Metrics.kind * float) list;
  failures_seen : int;  (** failure events drawn (platform-wide) *)
  failures_hitting_jobs : int;
  ckpts_committed : int;
  ckpts_aborted : int;  (** commits destroyed by a failure mid-transfer *)
  restarts : int;
  jobs_started : int;
  jobs_completed : int;
  events : int;  (** engine events processed *)
  mean_ckpt_interval : (string * float) list;
      (** per class: mean time between committed checkpoints (commit end to
          commit end); [nan] for classes that never committed twice *)
  specs_total : int;  (** jobs in the generated list *)
  bb_absorbed : int;  (** checkpoints the burst buffer absorbed (0 without one) *)
  bb_spilled : int;  (** checkpoints that had to bypass a full burst buffer *)
  mean_ckpt_wait : (string * float) list;
      (** per class: mean latency from checkpoint request to transfer start
          — the postponement exposure of the non-blocking strategies
          (Section 3.3); 0 under Oblivious, [nan] when no checkpoint of the
          class was ever granted *)
  utilization : float;
      (** enrolled node-seconds over the segment's node-second capacity —
          the Section 2 requirement that ≥98 % of nodes stay enrolled is
          observable here (baseline runs approach it; drain effects at
          workload edges lower it slightly) *)
  io_busy_fraction : float;
      (** fraction of the PFS's volume capacity actually moved over the
          whole run — the measured counterpart of Equation (6)'s F. Token
          strategies cannot exceed 1 by construction; values near 1 mean
          the device is saturated and the Theorem 1 constraint binds *)
  restarts_by_class : (string * int) list;
      (** failure-induced restarts attributed to each application class *)
  lost_work_by_class : (string * float) list;
      (** rolled-back node-seconds per class (whole run, not
          segment-clipped) — which class bleeds the most under failures *)
}

type snapshot = {
  snap_time : float;
  free_nodes : int;
  used_nodes : int;
  queued_jobs : int;  (** submissions waiting for a node allocation *)
  running_insts : int;  (** allocated instances, whatever their activity *)
  computing : int;  (** instances making progress (pending request included) *)
  in_io : int;  (** instances with an active transfer (any kind) *)
  waiting : int;  (** instances blocked on the token or a local phase *)
  token_queue : int;  (** pending token requests (checkpoint and blocking I/O) *)
  token_busy : bool;
  io_flows : int;  (** concurrent PFS flows *)
  io_rate_gbs : float;  (** aggregate granted PFS rate right now *)
  bandwidth_gbs : float;  (** the platform's aggregate bandwidth, for utilization *)
  progress_ns : float;  (** cumulative, segment-clipped (see {!Metrics}) *)
  waste_ns : float;
  waste_by_kind : (Metrics.kind * float) list;  (** cumulative, all kinds *)
}
(** Platform state at a probe instant, for time-series sampling. *)

type hooks = {
  on_token_wait : float -> unit;
      (** request-to-grant latency of every token grant (checkpoint and
          blocking I/O), in seconds *)
  on_ckpt_duration : float -> unit;
      (** wall-clock duration of each committed checkpoint transfer *)
  on_io_dilation : float -> unit;
      (** actual over nominal (full-bandwidth) duration of each completed
          regular input/output transfer; 1.0 = no interference *)
  on_lost_work : float -> unit;  (** work seconds rolled back per kill *)
}
(** Instrumentation callbacks. All optional ({!no_hooks} is the default);
    when absent the simulator's hot path allocates nothing for them. *)

val no_hooks : hooks

val generate_specs : Config.t -> Cocheck_model.Jobgen.spec array
(** The job list a config's seed induces (substream ["jobs"]); exposed so
    experiments can share one list across strategies within a replication. *)

val run :
  ?specs:Cocheck_model.Jobgen.spec array ->
  ?trace:Trace.t ->
  ?hooks:hooks ->
  ?sample:float * (snapshot -> unit) ->
  ?on_engine:(Cocheck_des.Engine.t -> unit) ->
  Config.t ->
  result
(** Simulate. When [specs] is omitted they are generated from the config
    seed; failures always come from the seed's ["failures"] substream, so
    two runs of the same config are identical. Pass [trace] to collect a
    structured event log of the run, [hooks] to stream instrumentation
    samples, and [sample:(dt, f)] to have [f] observe a {!snapshot} every
    [dt] simulated seconds (requires [dt > 0]). [on_engine] runs once on
    the freshly created engine before any event is scheduled — the hook
    the tracing layer uses to attach per-kind event-churn counters
    ({!Cocheck_des.Engine.attach_stats} with {!Ev_kind.names}) and
    periodic GC sampling; it must not schedule events. Observability
    never perturbs the simulation: probes are read-only and scheduled on
    the same engine calendar. *)

val waste_ratio : strategy:result -> baseline:result -> float
(** Section 6's headline metric: strategy waste over baseline useful work,
    both within the measurement segment. *)

val efficiency : strategy:result -> baseline:result -> float
(** [1 − waste_ratio] (the 80 %-efficiency target of Figure 3 is in these
    terms). *)
