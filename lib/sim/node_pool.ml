(* Range-based space sharing: allocations and the free pool are sequences
   of disjoint [lo, lo+len) ranges, so alloc/release/owner cost scales with
   the handful of live fragments rather than the node count of the
   machine. This is hot: every failure kills and restarts a job spanning
   thousands of nodes, and per-node bookkeeping dominated whole-campaign
   profiles.

   The ranges live in flat int arrays (free pool sorted by [lo], grants in
   the first-fit take order, live grants in a dense swap-removable array),
   so the kill/restart cycle moves ints in place instead of rebuilding
   lists — release used to cons O(used-position + fragments) words per
   failure. The first-fit, merge and coalesce orders are unchanged, which
   keeps node→job ownership (and so failure victims and golden traces)
   identical to the list implementation. *)

type allocation = {
  job : int;
  a_lo : int array;  (* granted ranges, ascending [lo] (first-fit order) *)
  a_len : int array;
  size : int;
  mutable a_slot : int;  (* index in [t.used]; -1 once released *)
}

type t = {
  total : int;
  mutable f_lo : int array;  (* free ranges sorted by [lo], coalesced, disjoint *)
  mutable f_len : int array;
  mutable f_n : int;
  mutable free_n : int;
  mutable used : allocation array;  (* live grants, dense prefix *)
  mutable used_n : int;
}

let no_allocation = { job = -1; a_lo = [||]; a_len = [||]; size = 0; a_slot = -1 }

let create ~nodes =
  if nodes <= 0 then invalid_arg "Node_pool.create: nodes must be positive";
  let f_lo = Array.make 8 0 and f_len = Array.make 8 0 in
  f_len.(0) <- nodes;
  {
    total = nodes;
    f_lo;
    f_len;
    f_n = 1;
    free_n = nodes;
    used = Array.make 8 no_allocation;
    used_n = 0;
  }

let total t = t.total
let free_count t = t.free_n
let used_count t = t.total - t.free_n
let size a = a.size

let to_list a =
  let out = ref [] in
  for i = Array.length a.a_lo - 1 downto 0 do
    for n = a.a_lo.(i) + a.a_len.(i) - 1 downto a.a_lo.(i) do
      out := n :: !out
    done
  done;
  !out

let ensure_free_capacity t need =
  if need > Array.length t.f_lo then begin
    let cap = max need (2 * Array.length t.f_lo) in
    let lo = Array.make cap 0 and len = Array.make cap 0 in
    Array.blit t.f_lo 0 lo 0 t.f_n;
    Array.blit t.f_len 0 len 0 t.f_n;
    t.f_lo <- lo;
    t.f_len <- len
  end

let alloc t ~job ~count =
  if count <= 0 then invalid_arg "Node_pool.alloc: count must be positive";
  if job < 0 then invalid_arg "Node_pool.alloc: negative job id";
  if count > t.free_n then None
  else begin
    (* First fit: consume leading free ranges, splitting the last. The
       grant inherits the free pool's ascending order. *)
    let need = ref count and whole = ref 0 in
    while !need > 0 && t.f_len.(!whole) <= !need do
      need := !need - t.f_len.(!whole);
      incr whole
    done;
    let k = !whole + if !need > 0 then 1 else 0 in
    let a_lo = Array.make k 0 and a_len = Array.make k 0 in
    Array.blit t.f_lo 0 a_lo 0 !whole;
    Array.blit t.f_len 0 a_len 0 !whole;
    if !need > 0 then begin
      a_lo.(k - 1) <- t.f_lo.(!whole);
      a_len.(k - 1) <- !need;
      t.f_lo.(!whole) <- t.f_lo.(!whole) + !need;
      t.f_len.(!whole) <- t.f_len.(!whole) - !need
    end;
    (* Drop the fully-consumed leading ranges. *)
    if !whole > 0 then begin
      Array.blit t.f_lo !whole t.f_lo 0 (t.f_n - !whole);
      Array.blit t.f_len !whole t.f_len 0 (t.f_n - !whole);
      t.f_n <- t.f_n - !whole
    end;
    t.free_n <- t.free_n - count;
    let a = { job; a_lo; a_len; size = count; a_slot = t.used_n } in
    if t.used_n = Array.length t.used then begin
      let used = Array.make (2 * t.used_n) no_allocation in
      Array.blit t.used 0 used 0 t.used_n;
      t.used <- used
    end;
    t.used.(t.used_n) <- a;
    t.used_n <- t.used_n + 1;
    Some a
  end

let release t a =
  if a.a_slot < 0 || a.a_slot >= t.used_n || t.used.(a.a_slot) != a then
    invalid_arg "Node_pool.release: node already free";
  (* Swap-remove from the live set. *)
  let last = t.used_n - 1 in
  let moved = t.used.(last) in
  t.used.(a.a_slot) <- moved;
  moved.a_slot <- a.a_slot;
  t.used.(last) <- no_allocation;
  t.used_n <- last;
  a.a_slot <- -1;
  (* Merge the grant's sorted ranges back, from the tail so it runs in
     place, then coalesce forward — same order as the retired list merge. *)
  let k = Array.length a.a_lo in
  ensure_free_capacity t (t.f_n + k);
  let fi = ref (t.f_n - 1) and ai = ref (k - 1) in
  for w = t.f_n + k - 1 downto 0 do
    if !ai < 0 || (!fi >= 0 && t.f_lo.(!fi) > a.a_lo.(!ai)) then begin
      t.f_lo.(w) <- t.f_lo.(!fi);
      t.f_len.(w) <- t.f_len.(!fi);
      decr fi
    end
    else begin
      t.f_lo.(w) <- a.a_lo.(!ai);
      t.f_len.(w) <- a.a_len.(!ai);
      decr ai
    end
  done;
  let n = t.f_n + k in
  (* Coalesce adjacent ranges in place; overlap means a double free. *)
  let wp = ref 0 in
  for r = 1 to n - 1 do
    let wlo = t.f_lo.(!wp) and wlen = t.f_len.(!wp) in
    if wlo + wlen > t.f_lo.(r) then invalid_arg "Node_pool.release: node already free"
    else if wlo + wlen = t.f_lo.(r) then t.f_len.(!wp) <- wlen + t.f_len.(r)
    else begin
      incr wp;
      t.f_lo.(!wp) <- t.f_lo.(r);
      t.f_len.(!wp) <- t.f_len.(r)
    end
  done;
  t.f_n <- (if n = 0 then 0 else !wp + 1);
  t.free_n <- t.free_n + a.size

(* Top-level recursion (all state threaded as arguments): the nested local
   functions this replaces captured their environment, costing one closure
   per scanned grant on the failure hot path. *)
let rec covers_from a node r =
  if r >= Array.length a.a_lo then false
  else
    (node >= a.a_lo.(r) && node < a.a_lo.(r) + a.a_len.(r)) || covers_from a node (r + 1)

let rec scan_owner t node i =
  if i >= t.used_n then -1
  else
    let a = t.used.(i) in
    if covers_from a node 0 then a.job else scan_owner t node (i + 1)

let owner_idx t node =
  if node < 0 || node >= t.total then invalid_arg "Node_pool.owner: bad node id";
  scan_owner t node 0

let owner t node =
  let j = owner_idx t node in
  if j < 0 then None else Some j
