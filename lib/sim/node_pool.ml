(* Range-based space sharing: allocations and the free pool are lists of
   disjoint [lo, lo+len) ranges, so alloc/release/owner cost scales with
   the handful of live fragments rather than the node count of the
   machine. This is hot: every failure kills and restarts a job spanning
   thousands of nodes, and per-node bookkeeping dominated whole-campaign
   profiles. *)

type range = { lo : int; len : int }

type allocation = { job : int; ranges : range list; size : int }

type t = {
  total : int;
  mutable free : range list;  (* sorted by [lo], coalesced, disjoint *)
  mutable free_n : int;
  mutable used : allocation list;  (* live allocations, unordered *)
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Node_pool.create: nodes must be positive";
  { total = nodes; free = [ { lo = 0; len = nodes } ]; free_n = nodes; used = [] }

let total t = t.total
let free_count t = t.free_n
let used_count t = t.total - t.free_n
let size a = a.size

let to_list a =
  List.concat_map (fun r -> List.init r.len (fun i -> r.lo + i)) a.ranges

let alloc t ~job ~count =
  if count <= 0 then invalid_arg "Node_pool.alloc: count must be positive";
  if job < 0 then invalid_arg "Node_pool.alloc: negative job id";
  if count > t.free_n then None
  else begin
    (* First fit: consume leading free ranges, splitting the last. The
       taken list inherits the free list's ordering. *)
    let rec take need = function
      | [] -> assert false (* free_n said there was room *)
      | r :: rest ->
          if r.len > need then
            ([ { r with len = need } ], { lo = r.lo + need; len = r.len - need } :: rest)
          else if r.len = need then ([ r ], rest)
          else
            let got, rest' = take (need - r.len) rest in
            (r :: got, rest')
    in
    let got, free' = take count t.free in
    t.free <- free';
    t.free_n <- t.free_n - count;
    let a = { job; ranges = got; size = count } in
    t.used <- a :: t.used;
    Some a
  end

let release t a =
  let rec remove = function
    | [] -> invalid_arg "Node_pool.release: node already free"
    | x :: rest -> if x == a then rest else x :: remove rest
  in
  t.used <- remove t.used;
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (x :: xr as xs), (y :: yr as ys) ->
        if x.lo <= y.lo then x :: merge xr ys else y :: merge xs yr
  in
  let rec coalesce = function
    | a :: b :: rest ->
        if a.lo + a.len > b.lo then invalid_arg "Node_pool.release: node already free"
        else if a.lo + a.len = b.lo then coalesce ({ lo = a.lo; len = a.len + b.len } :: rest)
        else a :: coalesce (b :: rest)
    | l -> l
  in
  t.free <- coalesce (merge t.free a.ranges);
  t.free_n <- t.free_n + a.size

let owner t node =
  if node < 0 || node >= t.total then invalid_arg "Node_pool.owner: bad node id";
  let covers a = List.exists (fun r -> node >= r.lo && node < r.lo + r.len) a.ranges in
  match List.find_opt covers t.used with Some a -> Some a.job | None -> None
