open Sim_types
module Engine = Cocheck_des.Engine
module Jobgen = Cocheck_model.Jobgen
module Io = Io_subsystem
module Rng = Cocheck_util.Rng
module Interval_ledger = Cocheck_util.Interval_ledger

let kill_inst w inst =

  let t = now w in
  (match inst.activity with
  | Doing_io (sub, flow, kind) ->
      abort_inst_flow w sub flow;
      if kind = Io.Ckpt then begin
        w.ckpts_aborted <- w.ckpts_aborted + 1;
        emit_inst w inst Trace.Ckpt_aborted
      end
  | Computing | Computing_pending -> pause_compute w inst
  | Waiting_io _ | Waiting_ckpt -> record_wait w inst ~from:inst.wait_start
  | Local_ckpt ->
      Metrics.record w.metrics ~t0:inst.local_pause_start ~t1:t
        ~nodes:inst.spec.Jobgen.nodes Metrics.Local_ckpt
  | Local_recovery ->
      Metrics.record w.metrics ~t0:inst.wait_start ~t1:t ~nodes:inst.spec.Jobgen.nodes
        Metrics.Recovery_io);
  release_token w inst;
  cancel_local_events w inst;
  cancel_ckpt_request_ev w inst;
  cancel_work_done_ev w inst;

  Arbiter.cancel_requests_of w inst;

  let nsnap = Array.length w.snap in
  (* One uniform severity draw classifies the failure against every
     storage level at once: snapshot level k survives when
     [u < sl_survival], a hierarchy copy at level k when
     [u < bl_survival]. *)
  let has_ml = nsnap > 0 || Option.is_some w.hier in
  let u = if has_ml then Rng.unit_float w.soft_rng else 2.0 in
  (match w.hier with
  | Some h -> Ckpt_hierarchy.apply_failure h ~owner:inst.spec.Jobgen.id ~u
  | None -> ());
  let soft_level =
    let rec find k =
      if k >= nsnap then None
      else if u < w.snap.(k).Config.sl_survival then Some k
      else find (k + 1)
    in
    find 0
  in
  let soft = soft_level <> None in
  (* Work captured by the newest surviving snapshot survives the failure;
     everything ending after [safe] is lost. A hard failure keeps [safe] at
     −∞, losing the whole ledger. *)
  let safe =
    if soft then begin
      let safe = ref neg_infinity in
      for k = 0 to nsnap - 1 do
        if u < w.snap.(k).Config.sl_survival && inst.local_safe_time.(k) > !safe then
          safe := inst.local_safe_time.(k)
      done;
      !safe
    end
    else neg_infinity
  in
  let ci = inst.spec.Jobgen.class_index in
  let lost_s = Interval_ledger.lost_above inst.uncommitted ~safe in
  w.restarts_by_class.(ci) <- w.restarts_by_class.(ci) + 1;
  w.lost_ns_by_class.(ci) <-
    w.lost_ns_by_class.(ci) +. (float_of_int inst.spec.Jobgen.nodes *. lost_s);
  (match w.hooks with Some h -> h.on_lost_work lost_s | None -> ());
  if tracing w then emit_inst w inst (Trace.Job_killed { lost_work = lost_s });

  flush_partition w inst ~safe;
  Metrics.record_enrolled w.metrics ~t0:inst.start_time ~t1:t ~nodes:inst.spec.Jobgen.nodes;

  Node_pool.release w.pool inst.nodes;
  live_free w.live inst;
  Hashtbl.remove w.insts inst.idx;

  let local_best =
    (* The most work any surviving snapshot level captured. *)
    let best = ref 0.0 in
    for k = 0 to nsnap - 1 do
      if u < w.snap.(k).Config.sl_survival && inst.committed_local.(k) > !best then
        best := inst.committed_local.(k)
    done;
    !best
  in
  let base =
    match w.hier with
    | None -> if soft then Float.max inst.committed local_best else inst.committed
    | Some h ->
        (* With a hierarchy the failure may have destroyed the copies
           behind [committed]; only content with a surviving copy (in a
           tier or on the PFS) counts. *)
        let surv = Ckpt_hierarchy.surviving_content h ~owner:inst.spec.Jobgen.id ~inst:inst.idx in
        if soft then Float.max surv local_best else surv
  in
  let remaining = Float.max 0.0 (inst.total_work -. base) in
  w.restarts <- w.restarts + 1;
  w.queue <-
    {
      e_spec = inst.spec;
      e_remaining = remaining;
      e_restart = (match soft_level with Some k -> Soft k | None -> Hard);
      e_has_ckpt =
        (inst.has_ckpt || inst.entry_has_ckpt)
        && (match w.hier with
           | Some h -> Ckpt_hierarchy.has_any_copy h ~owner:inst.spec.Jobgen.id
           | None -> true);
      e_restarts = inst.restarts + 1;
    }
    :: w.queue;
  (* All events cancelled, flows aborted, requests withdrawn, and the
     requeue entry copied out: the record can host the next start — often
     the restart [try_start] is about to launch on the just-freed nodes. *)
  release_inst w.inst_free inst;

  Lifecycle.try_start w;
  if w.uses_token then Arbiter.try_grant w

let handle_failure w (e : Failure_trace.event) =
  w.failures_seen <- w.failures_seen + 1;
  (* [owner_idx] names the victim's live slot (grants are tagged with it at
     alloc time), so the lookup is one array read — no hash probe, no
     option box — on a path that fires once per failure, millions of times
     in the year-scale runs. *)
  let slot = Node_pool.owner_idx w.pool e.node in
  if slot < 0 then begin
    (* A failure striking an idle node; -1/-1 marks it in traces. *)
    if tracing w then emit w ~job:(-1) ~inst:(-1) (Trace.Node_failure { node = e.node })
  end
  else begin
    let inst = w.live.lv.(slot) in
    (* Record the victim with the failure itself so traces can correlate a
       kill with its cause. *)
    if tracing w then
      emit w ~job:inst.spec.Jobgen.id ~inst:inst.idx (Trace.Node_failure { node = e.node });
    w.failures_hitting_jobs <- w.failures_hitting_jobs + 1;
    kill_inst w inst
  end

(* One callback serves the whole failure stream: it consumes the next
   trace event and re-arms itself, so a multi-year trace costs a single
   closure allocation instead of one per failure. *)
let schedule_failures w trace =
  let rec fire _ =
    let e = Failure_trace.next trace in
    handle_failure w e;
    arm ()
  and arm () =
    let t = Failure_trace.peek_time trace in
    if t <= w.cfg.Config.horizon then
      ignore (Engine.schedule_at w.engine ~kind:Ev_kind.failure ~time:t fire)
  in
  arm ()
