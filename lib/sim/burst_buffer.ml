module Io = Io_subsystem

type spec = { capacity_gb : float; bandwidth_gbs : float }

let spec_validate spec =
  if spec.capacity_gb <= 0.0 then invalid_arg "Burst_buffer: capacity must be positive";
  if spec.bandwidth_gbs <= 0.0 then invalid_arg "Burst_buffer: bandwidth must be positive"

type state = Writing | Resident | Draining | Gone

type record = {
  owner : int;
  nodes : int;
  volume : float;
  flow : Io.flow;
  mutable state : state;
}

type t = {
  spec : spec;
  bb_io : Io.t;
  pfs : Io.t;
  mutable used : float;
  drain_queue : record Queue.t;
  mutable draining : bool;
  newest : (int, record) Hashtbl.t;  (* owner -> newest committed copy *)
  in_flight : (int, record) Hashtbl.t;  (* flow id -> write not yet completed *)
  mutable absorbed : int;
  mutable spilled : int;
}

let create ~engine ~metrics ~pfs spec =
  spec_validate spec;
  {
    spec;
    bb_io = Io.create ~engine ~metrics ~bandwidth_gbs:spec.bandwidth_gbs ~sharing:`Linear;
    pfs;
    used = 0.0;
    drain_queue = Queue.create ();
    draining = false;
    newest = Hashtbl.create 16;
    in_flight = Hashtbl.create 16;
    absorbed = 0;
    spilled = 0;
  }

let fits t ~volume_gb = volume_gb > 0.0 && t.used +. volume_gb <= t.spec.capacity_gb

let rec maybe_start_drain t =
  if not t.draining then
    match Queue.take_opt t.drain_queue with
    | None -> ()
    | Some record ->
        t.draining <- true;
        record.state <- Draining;
        ignore
          (Io.start_flow t.pfs ~job:record.owner ~nodes:record.nodes ~kind:Io.Drain
             ~volume_gb:record.volume ~on_complete:(fun () ->
               record.state <- Gone;
               t.used <- t.used -. record.volume;
               (* A drained copy is no longer the fast-recovery source. *)
               (match Hashtbl.find_opt t.newest record.owner with
               | Some r when r == record -> Hashtbl.remove t.newest record.owner
               | _ -> ());
               t.draining <- false;
               maybe_start_drain t))

let write t ~owner ~job ~nodes ~volume_gb ~on_complete =
  if not (fits t ~volume_gb) then begin
    t.spilled <- t.spilled + 1;
    None
  end
  else begin
    t.used <- t.used +. volume_gb;
    t.absorbed <- t.absorbed + 1;
    let record = ref None in
    let flow =
      Io.start_flow t.bb_io ~job ~nodes ~kind:Io.Ckpt ~volume_gb ~on_complete:(fun () ->
          (match !record with
          | Some r ->
              r.state <- Resident;
              Hashtbl.remove t.in_flight (Io.flow_id r.flow);
              Hashtbl.replace t.newest r.owner r;
              Queue.add r t.drain_queue;
              maybe_start_drain t
          | None -> assert false);
          on_complete ())
    in
    let r = { owner; nodes; volume = volume_gb; flow; state = Writing } in
    record := Some r;
    Hashtbl.replace t.in_flight (Io.flow_id flow) r;
    Some flow
  end

let abort_write t flow =
  match Hashtbl.find_opt t.in_flight (Io.flow_id flow) with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.in_flight (Io.flow_id flow);
      r.state <- Gone;
      t.used <- t.used -. r.volume;
      Io.abort_flow t.bb_io flow

let resident_for t ~owner =
  match Hashtbl.find_opt t.newest owner with
  | Some r -> r.state = Resident || r.state = Draining
  | None -> false

let read t ~owner ~job ~nodes ~volume_gb ~on_complete =
  if not (resident_for t ~owner) then
    invalid_arg "Burst_buffer.read: owner has no resident checkpoint";
  Io.start_flow t.bb_io ~job ~nodes ~kind:Io.Recovery ~volume_gb ~on_complete

let io t = t.bb_io
let used_gb t = t.used
let free_gb t = t.spec.capacity_gb -. t.used
let drains_pending t = Queue.length t.drain_queue + if t.draining then 1 else 0
let writes_absorbed t = t.absorbed
let writes_spilled t = t.spilled
