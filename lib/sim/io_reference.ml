(* The original quadratic flow scheduler, kept verbatim as the executable
   specification of the bandwidth-sharing semantics. Every membership change
   settles all n flows, recomputes each target rate with an O(n) fold
   (O(n^2) total) and cancels/re-inserts every completion event. The
   production engine (Io_subsystem) replaces this with virtual-time
   bookkeeping; the differential test in test/test_io_differential.ml runs
   both on randomized schedules and demands matching ledgers. Test-only:
   nothing under lib/ or bin/ may depend on this module. *)

module Engine = Cocheck_des.Engine

type sharing = [ `Linear | `Degraded of float | `Unshared ]
type io_kind = Input | Output | Ckpt | Recovery | Drain

let io_kind_name = function
  | Input -> "input"
  | Output -> "output"
  | Ckpt -> "ckpt"
  | Recovery -> "recovery"
  | Drain -> "drain"

type flow = {
  id : int;
  job : int;
  nodes : int;
  kind : io_kind;
  volume_gb : float;
  mutable remaining : float;
  mutable rate : float;  (* GB/s granted since the last settle *)
  mutable last_settle : float;
  mutable completion : Engine.handle option;
  mutable live : bool;
  on_complete : unit -> unit;
}

type t = {
  engine : Engine.t;
  metrics : Metrics.t;
  bandwidth : float;
  sharing : sharing;
  mutable flows : flow list;
  mutable next_id : int;
  mutable transferred_total : float;
}

let create ~engine ~metrics ~bandwidth_gbs ~sharing =
  if bandwidth_gbs <= 0.0 then invalid_arg "Io_subsystem.create: bandwidth must be positive";
  {
    engine;
    metrics;
    bandwidth = bandwidth_gbs;
    sharing;
    flows = [];
    next_id = 0;
    transferred_total = 0.0;
  }

(* Credit the elapsed slice of a flow to the metrics ledger. Regular
   transfers are progress for the fraction of the elapsed time they would
   have needed at full bandwidth; CR transfers are waste in full. *)
let emit_metrics t f ~t0 ~t1 =
  if t1 > t0 then
    match f.kind with
    | Input | Output ->
        Metrics.record_weighted t.metrics ~t0 ~t1 ~nodes:f.nodes
          ~fraction:(f.rate /. t.bandwidth) ~progress:Metrics.Regular_io
          ~waste:Metrics.Io_dilation
    | Ckpt -> Metrics.record t.metrics ~t0 ~t1 ~nodes:f.nodes Metrics.Ckpt_io
    | Recovery -> Metrics.record t.metrics ~t0 ~t1 ~nodes:f.nodes Metrics.Recovery_io
    | Drain -> () (* background traffic: no compute nodes are held *)

let settle_flow t f =
  let now = Engine.now t.engine in
  let elapsed = now -. f.last_settle in
  if elapsed > 0.0 then begin
    let moved = Float.min f.remaining (f.rate *. elapsed) in
    f.remaining <- f.remaining -. moved;
    t.transferred_total <- t.transferred_total +. moved;
    emit_metrics t f ~t0:f.last_settle ~t1:now;
    f.last_settle <- now
  end
  else f.last_settle <- now

let target_rate t f =
  match t.sharing with
  | `Unshared -> t.bandwidth
  | (`Linear | `Degraded _) as sharing ->
      let total_weight =
        List.fold_left (fun acc g -> acc +. float_of_int g.nodes) 0.0 t.flows
      in
      if total_weight <= 0.0 then t.bandwidth
      else begin
        let aggregate =
          match sharing with
          | `Linear -> t.bandwidth
          | `Degraded alpha ->
              (* Contention erodes the aggregate itself. *)
              let k = float_of_int (List.length t.flows) in
              t.bandwidth /. (1.0 +. (alpha *. Float.max 0.0 (k -. 1.0)))
        in
        aggregate *. float_of_int f.nodes /. total_weight
      end

let cancel_completion t f =
  match f.completion with
  | Some h ->
      ignore (Engine.cancel t.engine h);
      f.completion <- None
  | None -> ()

let rec complete t f =
  (* Settle below moved the last bytes; force the tail to zero against
     floating-point residue. *)
  f.remaining <- 0.0;
  remove_flow t f;
  f.on_complete ()

and schedule_completion t f =
  cancel_completion t f;
  let eta = if f.rate > 0.0 then f.remaining /. f.rate else infinity in
  if Float.is_finite eta then
    f.completion <-
      Some
        (Engine.schedule_after t.engine ~kind:Ev_kind.io ~delay:eta (fun _ ->
             f.completion <- None;
             settle_flow t f;
             complete t f))

and rebalance t =
  List.iter (settle_flow t) t.flows;
  List.iter
    (fun f ->
      f.rate <- target_rate t f;
      schedule_completion t f)
    t.flows

and remove_flow t f =
  f.live <- false;
  cancel_completion t f;
  t.flows <- List.filter (fun g -> g.id <> f.id) t.flows;
  rebalance t

let start_flow t ~job ~nodes ~kind ~volume_gb ~on_complete =
  if nodes <= 0 then invalid_arg "Io_subsystem.start_flow: non-positive node count";
  if volume_gb < 0.0 then invalid_arg "Io_subsystem.start_flow: negative volume";
  let f =
    {
      id = t.next_id;
      job;
      nodes;
      kind;
      volume_gb;
      remaining = volume_gb;
      rate = 0.0;
      last_settle = Engine.now t.engine;
      completion = None;
      live = true;
      on_complete;
    }
  in
  t.next_id <- t.next_id + 1;
  if volume_gb = 0.0 then begin
    (* Complete through the calendar so observers see a consistent order. *)
    f.completion <-
      Some
        (Engine.schedule_after t.engine ~kind:Ev_kind.io ~delay:0.0 (fun _ ->
             f.completion <- None;
             if f.live then begin
               f.live <- false;
               f.on_complete ()
             end));
    f
  end
  else begin
    t.flows <- f :: t.flows;
    rebalance t;
    f
  end

let abort_flow t f =
  if f.live then begin
    settle_flow t f;
    remove_flow t f
  end

let active_count t = List.length t.flows

let current_rate_gbs t =
  List.fold_left (fun acc f -> acc +. f.rate) 0.0 t.flows

let bandwidth_gbs t = t.bandwidth
let active_rate t f = if f.live && List.memq f t.flows then Some f.rate else None
let remaining_gb _t f = if f.live then Some f.remaining else None
let flow_job f = f.job
let flow_kind f = f.kind
let transferred_gb t = t.transferred_total
