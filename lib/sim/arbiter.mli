(** Pluggable token arbitration: who gets the exclusive I/O token next.

    A policy is a first-class module implementing {!Sim_types.ARBITER} —
    enqueue, withdrawal, selection and an observability snapshot — created
    per run by {!of_strategy} and stored in the world record. The
    simulator core never inspects the queue structure, so adding a
    scheduling policy means adding an implementation here (plus its
    {!Cocheck_core.Strategy} variant) and nothing else. *)

module type S = Sim_types.ARBITER
(** The arbitration contract; see {!Sim_types.ARBITER} for the field
    documentation. *)

val fifo : ?free:Sim_types.req_free -> unit -> Sim_types.arbiter
(** Arrival-order service with eager cancellation: kills tombstone the
    victim's slots in one sweep (the Ordered and Ordered-NB strategies of
    Section 3.2–3.3).

    [free] (on every policy constructor) is the request-record recycling
    stack cancellation releases into; {!of_strategy} threads the run's
    stack so {!submit} can refill retired records. The default is a
    private stack — callers driving a policy directly (tests, benches)
    keep sole ownership of their records. *)

val least_waste :
  node_mtbf_s:float ->
  bandwidth_gbs:float ->
  ?levels:int ->
  ?free:Sim_types.req_free ->
  unit ->
  Sim_types.arbiter
(** The Section 3.4 heuristic: grant to the candidate minimising the
    expected waste inflicted on all other pending candidates. Backed by an
    id-indexed arrival-ordered pool — O(1) enqueue and removal — plus the
    {!Cocheck_core.Least_waste.Levels} per-storage-level time-linear sums,
    making each grant a single allocation-free O(pending) scan (the
    pairwise Eq. (1)/(2) sum collapses to three incrementally-maintained
    scalars per level). [levels] (default 1) is the storage-hierarchy
    depth, PFS included; token requests all live at the deepest level, and
    [levels = 1] is bit-identical to the single-aggregate formulation.
    Differentially tested against the list-based oracle {!Lw_reference}. *)

val greedy_exposure : ?free:Sim_types.req_free -> unit -> Sim_types.arbiter
(** Grant to the request with the largest exposure × nodes product — the
    most node-seconds at risk of being lost to a failure. A cheap
    O(pending) contrast to {!least_waste}; not part of the paper's seven. *)

val of_strategy :
  Cocheck_core.Strategy.t ->
  node_mtbf_s:float ->
  bandwidth_gbs:float ->
  ?levels:int ->
  ?free:Sim_types.req_free ->
  unit ->
  Sim_types.arbiter
(** The policy a strategy mandates (token-less strategies get an inert
    {!fifo} they never enqueue into). [levels] is the storage-hierarchy
    depth for {!least_waste}, PFS included (default 1 = PFS only);
    [free] should be the run's [w.req_free] so retired records recycle
    through {!submit}. *)

val submit : Sim_types.w -> Sim_types.inst -> Sim_types.rkind -> float -> unit
(** Hand a request (fresh id, stamped with the current time) for [volume]
    gigabytes to the run's policy, refilling a recycled record from
    [w.req_free] when one is available — the steady state allocates no
    request records at all. *)

val cancel_requests_of : Sim_types.w -> Sim_types.inst -> unit
(** Withdraw every pending request of an instance (on kill or completion);
    after this the instance can never be granted the token. *)

val try_grant : Sim_types.w -> unit
(** Grant the token to the policy's choice if it is free and a live
    request is pending, then dispatch to the I/O or checkpoint grant
    continuation. No-op for token-less strategies. *)

val pending : Sim_types.w -> int
(** Live requests awaiting the token (probe helper). *)

val stats : Sim_types.w -> Sim_types.arb_stats
(** The run's arbitration counters so far. *)
