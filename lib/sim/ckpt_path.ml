open Cocheck_util
open Sim_types
module Engine = Cocheck_des.Engine
module Strategy = Cocheck_core.Strategy
module Io = Io_subsystem

(* The strategy's checkpoint discipline is fully captured by two predicates
   (token? blocking?) plus the arbiter's selection policy: adding a policy
   touches neither this module nor the lifecycle. *)

(* The work the checkpoint would capture if taken now — [work_done] plus
   the open compute interval, evaluated before pausing so storage tiers
   can decide on the capture before the pause mutates the instance. Equals
   [work_done] after {!pause_compute} bit-for-bit. *)
let capture_content w inst =
  let t = now w in
  if t > inst.compute_start then inst.work_done +. (t -. inst.compute_start)
  else inst.work_done

let rec schedule_ckpt_request w inst =
  if w.ckpt_enabled && inst.total_work -. inst.work_done > eps_work then begin
    let delay = Float.max 0.0 (inst.period -. inst.ckpt_nominal) in
    inst.ckpt_request_ev <-
      Engine.schedule_after w.engine ~kind:Ev_kind.ckpt ~delay inst.cb_ckpt_request
  end

and on_ckpt_request w inst =
  emit_inst w inst Trace.Ckpt_requested;
  match inst.activity with
  | Computing ->
      let left = inst.total_work -. inst.work_done -. (now w -. inst.compute_start) in
      if left <= eps_work then ()
        (* the work-completion event fires at this same instant; skip *)
      else begin
        (* A storage tier in front of the PFS absorbs the commit at its own
           speed, bypassing the strategy's PFS arbitration entirely; a full
           tier counts the spill itself and the commit falls back to the
           strategy's PFS path below. *)
        let absorbed =
          match (w.bb, w.hier) with
          | Some bb, _ -> try_bb_ckpt w bb inst
          | None, Some h -> try_hier_ckpt w h inst
          | None, None -> false
        in
        if not absorbed then begin
          if not w.uses_token then begin
            (* Oblivious: the transfer starts at once, wait is zero. *)
            Stats.running_add w.ckpt_wait_stats.(inst.spec.Jobgen.class_index) 0.0;
            pause_compute w inst;
            start_ckpt_flow w inst
          end
          else if Strategy.is_blocking w.cfg.Config.strategy then begin
            pause_compute w inst;
            inst.activity <- Waiting_ckpt;
            inst.wait_start <- now w;
            Arbiter.submit w inst Req_ckpt inst.spec.Jobgen.ckpt_gb;
            Arbiter.try_grant w
          end
          else begin
            inst.activity <- Computing_pending;
            Arbiter.submit w inst Req_ckpt inst.spec.Jobgen.ckpt_gb;
            Arbiter.try_grant w
          end
        end
      end
  | Local_ckpt ->
      (* A local snapshot is in flight: retry just after it finishes. *)
      let retry =
        if Array.length w.snap > 0 then
          Float.max w.snap.(inst.local_level).Config.sl_cost_s 1.0
        else 1.0
      in
      inst.ckpt_request_ev <-
        Engine.schedule_after w.engine ~kind:Ev_kind.ckpt ~delay:retry inst.cb_ckpt_request
  | Doing_io _ | Computing_pending | Waiting_io _ | Waiting_ckpt | Local_recovery ->
      (* Requests are cancelled whenever the job leaves the computing state,
         so a firing request always finds it computing (or locally
         snapshotting). *)
      assert false

and ckpt_complete w inst =
  match w.hooks with
  | Some h ->
      let t0 = now w in
      fun () ->
        h.on_ckpt_duration (now w -. t0);
        on_ckpt_done w inst
  | None -> fun () -> on_ckpt_done w inst

and start_ckpt_flow w inst =
  emit_inst w inst Trace.Ckpt_started;
  inst.ckpt_content <- inst.work_done;
  let flow =
    Io.start_flow w.io ~job:inst.idx ~nodes:inst.spec.Jobgen.nodes ~kind:Io.Ckpt
      ~volume_gb:inst.spec.Jobgen.ckpt_gb ~on_complete:(ckpt_complete w inst)
  in
  inst.activity <- Doing_io (w.io, flow, Io.Ckpt)

and try_bb_ckpt w bb inst =
  match
    Burst_buffer.write bb ~owner:inst.spec.Jobgen.id ~job:inst.idx
      ~nodes:inst.spec.Jobgen.nodes ~volume_gb:inst.spec.Jobgen.ckpt_gb
      ~on_complete:(ckpt_complete w inst)
  with
  | None -> false
  | Some flow ->
      pause_compute w inst;
      emit_inst w inst Trace.Ckpt_started;
      inst.ckpt_content <- inst.work_done;
      inst.activity <- Doing_io (Burst_buffer.io bb, flow, Io.Ckpt);
      true

and try_hier_ckpt w h inst =
  let content = capture_content w inst in
  match
    Ckpt_hierarchy.write h ~owner:inst.spec.Jobgen.id ~job:inst.idx
      ~nodes:inst.spec.Jobgen.nodes ~volume_gb:inst.spec.Jobgen.ckpt_gb
      ~content ~at:(now w) ~on_complete:(ckpt_complete w inst)
  with
  | None -> false
  | Some (pool, flow) ->
      pause_compute w inst;
      emit_inst w inst Trace.Ckpt_started;
      inst.ckpt_content <- inst.work_done;
      inst.activity <- Doing_io (pool, flow, Io.Ckpt);
      true

and on_ckpt_done w inst =
  release_token w inst;
  inst.committed <- inst.ckpt_content;
  if tracing w then emit_inst w inst (Trace.Ckpt_committed { work = inst.ckpt_content });
  (* A global commit also refreshes every snapshot level's capture point:
     anything a snapshot would roll back to is at least this safe. *)
  for k = 0 to Array.length w.snap - 1 do
    if inst.ckpt_content > inst.committed_local.(k) then
      inst.committed_local.(k) <- inst.ckpt_content;
    inst.local_safe_time.(k) <- now w
  done;
  (* Commits through the strategy's PFS path are durable below the
     hierarchy; record them so recovery weighs the PFS copy against
     shallower (possibly older) hierarchy copies. *)
  (match w.hier with
  | Some h -> (
      match inst.activity with
      | Doing_io (sub, _, _) when sub == w.io ->
          Ckpt_hierarchy.note_pfs_commit h ~owner:inst.spec.Jobgen.id ~inst:inst.idx
            ~content:inst.ckpt_content ~at:(now w)
      | _ -> ())
  | None -> ());
  flush_uncommitted w inst Metrics.Work;
  if inst.has_ckpt then
    Stats.running_add
      w.interval_stats.(inst.spec.Jobgen.class_index)
      (now w -. inst.last_commit_end);
  inst.has_ckpt <- true;
  inst.last_commit_end <- now w;
  w.ckpts_committed <- w.ckpts_committed + 1;
  schedule_ckpt_request w inst;
  w.h_start_compute inst;
  if w.uses_token then Arbiter.try_grant w

(* The Req_ckpt grant continuation ({!Arbiter.try_grant} dispatches here
   through [w.h_grant_ckpt]). *)
let grant_ckpt w (req : request) =
  let inst = req.r_inst in
  Stats.running_add w.ckpt_wait_stats.(inst.spec.Jobgen.class_index) (now w -. req.r_at);
  (match inst.activity with
  | Waiting_ckpt -> record_wait w inst ~from:inst.wait_start
  | Computing_pending -> pause_compute w inst
  | Doing_io _ | Computing | Waiting_io _ | Local_ckpt | Local_recovery -> assert false);
  start_ckpt_flow w inst

(* ------------------------------------------------------------------ *)
(* Multilevel (snapshot-level) checkpointing.                          *)
(* ------------------------------------------------------------------ *)

let rec schedule_local_tick_at w inst k =
  if w.ckpt_enabled && inst.total_work -. inst.work_done > eps_work then
    inst.local_tick_ev.(k) <-
      Engine.schedule_after w.engine ~kind:Ev_kind.ckpt
        ~delay:w.snap.(k).Config.sl_period_s inst.cb_local_tick.(k)

and schedule_local_tick w inst =
  for k = 0 to Array.length w.snap - 1 do
    schedule_local_tick_at w inst k
  done

and on_local_tick w k inst =
  match inst.activity with
  | Computing ->
      let left = inst.total_work -. inst.work_done -. (now w -. inst.compute_start) in
      if left <= eps_work then ()
      else begin
        pause_compute w inst;
        inst.activity <- Local_ckpt;
        inst.local_level <- k;
        inst.local_pause_start <- now w;
        inst.local_done_ev <-
          Engine.schedule_after w.engine ~kind:Ev_kind.ckpt
            ~delay:w.snap.(k).Config.sl_cost_s inst.cb_local_done
      end
  | Doing_io _ | Computing_pending | Waiting_io _ | Waiting_ckpt | Local_ckpt ->
      (* Busy with I/O-level activity (or another level's snapshot): try
         again one of this level's periods later. *)
      schedule_local_tick_at w inst k
  | Local_recovery -> assert false

and on_local_done w inst =
  let k = inst.local_level in
  Metrics.record w.metrics ~t0:inst.local_pause_start ~t1:(now w)
    ~nodes:inst.spec.Jobgen.nodes Metrics.Local_ckpt;
  (* The snapshot captures the state at the pause. Work banked before this
     point survives failures this level rides out; it is counted as
     progress at the next soft rollback, an optimistic first-order
     treatment (a later hard failure hitting the successor before its
     first global commit would in reality re-lose it). *)
  inst.committed_local.(k) <- inst.work_done;
  inst.local_safe_time.(k) <- inst.local_pause_start;
  schedule_local_tick_at w inst k;
  w.h_start_compute inst

(* ------------------------------------------------------------------ *)

(* Build the instance's recycled checkpoint-path callbacks once at start;
   every later re-arm threads these instead of allocating a closure. *)
let install_callbacks w inst =
  inst.cb_ckpt_request <-
    (fun _ ->
      inst.ckpt_request_ev <- Engine.none;
      on_ckpt_request w inst);
  let nsnap = Array.length w.snap in
  if nsnap > 0 then begin
    for k = 0 to nsnap - 1 do
      inst.cb_local_tick.(k) <-
        (fun _ ->
          inst.local_tick_ev.(k) <- Engine.none;
          on_local_tick w k inst)
    done;
    inst.cb_local_done <-
      (fun _ ->
        inst.local_done_ev <- Engine.none;
        on_local_done w inst)
  end
