(** Space-shared node allocation with per-node ownership, so failure events
    (which strike a uniformly random node) can be mapped to the job running
    there.

    Internally range-based: an allocation is a short list of contiguous
    node intervals, and alloc/release/owner cost O(live fragments) instead
    of O(nodes touched) — jobs span thousands of nodes and churn on every
    failure, so per-node bookkeeping was a whole-campaign hot spot. *)

type t

type allocation
(** A job's node grant. Opaque; pass it back to {!release}. *)

val create : nodes:int -> t
val total : t -> int
val free_count : t -> int
val used_count : t -> int

val alloc : t -> job:int -> count:int -> allocation option
(** Allocate [count] nodes to [job]; [None] when not enough are free.
    Requires [count > 0]. [job] is an opaque owner tag echoed back by
    {!owner}/{!owner_idx} — the simulator passes its live-slot index so a
    failure maps to its victim with one array read. *)

val release : t -> allocation -> unit
(** Free a previous grant. Raises [Invalid_argument] on double release. *)

val owner : t -> int -> int option
(** The job occupying a node, if any. *)

val owner_idx : t -> int -> int
(** Allocation-free {!owner}: the occupying job id, or [-1] when the node
    is free. *)

val size : allocation -> int
(** Number of nodes in the grant. *)

val to_list : allocation -> int list
(** The concrete node ids of a grant, ascending (test/debug aid; O(size)). *)
