open Sim_types
module Strategy = Cocheck_core.Strategy
module Least_waste = Cocheck_core.Least_waste

module type S = Sim_types.ARBITER

(* ------------------------------------------------------------------ *)
(* Arrival-ordered pool of pooled request records.                      *)
(*                                                                      *)
(* The policies below (Least-Waste, Greedy-Exposure) must scan every    *)
(* live request per grant anyway, but enqueue, withdrawal and the       *)
(* post-selection removal are all O(1) — replacing the retired          *)
(* [pool @ [req]] / [List.find] / [List.filter] pattern that made every *)
(* operation O(pending) and the whole backlog O(pending²). Slot         *)
(* liveness rides on the record's own [r_slot] back-pointer (a slot is  *)
(* live iff its record points back at it), so there is no id → slot     *)
(* hash table and the steady state allocates nothing: removal leaves a  *)
(* tombstone, compaction preserves arrival order.                       *)
(* ------------------------------------------------------------------ *)

module Ipool = struct
  type t = {
    mutable slots : request array;
    mutable head : int;  (* first possibly-live slot *)
    mutable tail : int;  (* next free slot *)
    mutable live : int;
  }

  let create () = { slots = [||]; head = 0; tail = 0; live = 0 }

  let compact t =
    let j = ref 0 in
    for i = t.head to t.tail - 1 do
      let r = t.slots.(i) in
      if r.r_slot = i then begin
        t.slots.(!j) <- r;
        r.r_slot <- !j;
        incr j
      end
    done;
    t.head <- 0;
    t.tail <- !j

  let add t r =
    let cap = Array.length t.slots in
    if cap = 0 then t.slots <- Array.make 16 r
    else if t.tail = cap then
      if t.live * 2 <= cap then compact t
      else begin
        (* Slot 0 doubles as the filler: dead slots retain stale records
           anyway, and the liveness test never consults them. *)
        let bigger = Array.make (2 * cap) t.slots.(0) in
        Array.blit t.slots 0 bigger 0 t.tail;
        t.slots <- bigger
      end;
    t.slots.(t.tail) <- r;
    r.r_slot <- t.tail;
    t.tail <- t.tail + 1;
    t.live <- t.live + 1

  let advance_head t =
    while t.head < t.tail && t.slots.(t.head).r_slot <> t.head do
      t.head <- t.head + 1
    done

  let remove t r =
    let i = r.r_slot in
    if i >= 0 && i < t.tail && t.slots.(i) == r then begin
      r.r_slot <- -1;
      t.live <- t.live - 1;
      advance_head t
    end

  (* Arrival-order iteration over live requests. *)
  let iter t f =
    for i = t.head to t.tail - 1 do
      let r = t.slots.(i) in
      if r.r_slot = i then f r
    done

  let first t =
    advance_head t;
    if t.head < t.tail then Some t.slots.(t.head) else None

  (* One in-place sweep: each matching slot is tombstoned as it is
     visited — no mark pass, no intermediate list. [pred] may carry the
     caller's side effects (cancellation marks, counters, aggregates). *)
  let remove_if t pred =
    for i = t.head to t.tail - 1 do
      let r = t.slots.(i) in
      if r.r_slot = i && pred r then begin
        r.r_slot <- -1;
        t.live <- t.live - 1
      end
    done;
    advance_head t

  let live t = t.live
end

(* Shared counters so every implementation reports uniform stats. *)
type counters = { mutable enq : int; mutable granted : int; mutable cancelled : int }

let counters () = { enq = 0; granted = 0; cancelled = 0 }

let stats_of ~policy ~pending (c : counters) =
  {
    arb_policy = policy;
    arb_pending = pending;
    arb_enqueued = c.enq;
    arb_granted = c.granted;
    arb_cancelled = c.cancelled;
  }

(* ------------------------------------------------------------------ *)
(* Policies.                                                            *)
(* ------------------------------------------------------------------ *)

(* Shared scaffolding of every policy: eager withdrawal in one in-place
   sweep, O(1) removal of the selection. [on_add]/[on_remove] let a policy
   maintain derived state (the Least-Waste aggregates) in lock-step with
   pool membership; every exit path — grant or cancellation — funnels
   through [on_remove] exactly once. Records withdrawn by cancellation are
   released to [free] here; a granted record is still in the driver's
   hands when [select] returns, so the driver releases it after the grant
   dispatch (see {!try_grant}). *)
let pool_policy ~policy ~free ?(on_add = fun _ -> ()) ?(on_remove = fun _ -> ())
    ~choose () : arbiter =
  (module struct
    let policy = policy
    let pool = Ipool.create ()
    let c = counters ()

    let enqueue r =
      c.enq <- c.enq + 1;
      Ipool.add pool r;
      on_add r

    let cancel_of_inst inst =
      Ipool.remove_if pool (fun r ->
          if r.r_inst.idx = inst.idx then begin
            r.r_cancelled <- true;
            c.cancelled <- c.cancelled + 1;
            on_remove r;
            release_request free r;
            true
          end
          else false)

    let select ~now =
      match choose pool ~now with
      | None -> None
      | Some r ->
          Ipool.remove pool r;
          on_remove r;
          c.granted <- c.granted + 1;
          Some r

    let pending () = Ipool.live pool
    let stats () = stats_of ~policy ~pending:(pending ()) c
  end)

(* FCFS: the earliest live request wins. Cancellation is eager (the sweep
   tombstones and releases the record at once) — lazy marking would leave
   released records inside the queue, where the recycler could refill them
   under the policy's feet. *)
let fifo ?(free = req_free_create ()) () : arbiter =
  pool_policy ~policy:"fifo" ~free ~choose:(fun pool ~now:_ -> Ipool.first pool) ()

(* Section 3.4: grant to the candidate minimising the expected waste its
   service inflicts on everyone else. Equations (1)–(2) are affine in the
   grant instant and in the candidate's service time, so the pool-wide
   sums live in three scalars the {!Least_waste.Aggregate} maintains in
   O(1) per add/remove, and a grant is one O(pending) arrival-order scan
   over the live slots — no candidate list, no per-pair re-summation, no
   allocation beyond the two accumulator refs. Ties break towards arrival
   order exactly as {!Least_waste.select} breaks them. The retired
   list-based formulation survives as the differential-testing oracle in
   {!Lw_reference}.

   With a checkpoint storage hierarchy the policy keeps one affine
   aggregate per storage level ({!Least_waste.Levels}); token-arbitrated
   requests all target the deepest level (the PFS — shallower tiers absorb
   without the token), so today only that term is populated, and with
   [levels = 1] the arithmetic is bit-identical to the single {!Aggregate}
   it generalizes. *)
let least_waste ~node_mtbf_s ~bandwidth_gbs ?(levels = 1)
    ?(free = req_free_create ()) () : arbiter =
  let lv = Least_waste.Levels.create ~node_mtbf_s ~levels in
  let pfs_level = levels - 1 in
  let on_add r =
    match r.r_kind with
    | Req_io _ ->
        Least_waste.Levels.add_io lv ~key:r.r_id ~level:pfs_level
          ~nodes:r.r_inst.spec.nodes
          ~service_s:(r.r_volume /. bandwidth_gbs)
          ~enqueued_at:r.r_at
    | Req_ckpt ->
        Least_waste.Levels.add_ckpt lv ~key:r.r_id ~level:pfs_level
          ~nodes:r.r_inst.spec.nodes ~ckpt_s:r.r_inst.ckpt_nominal
          ~recovery_s:r.r_inst.ckpt_nominal
          ~last_commit_end:r.r_inst.last_commit_end
  in
  let choose pool ~now =
    let best = ref None in
    let best_w = ref infinity in
    Ipool.iter pool (fun r ->
        let w = Least_waste.Levels.waste lv ~now ~key:r.r_id in
        match !best with
        | Some _ when w >= !best_w -> ()
        | _ ->
            best := Some r;
            best_w := w);
    !best
  in
  pool_policy ~policy:"least-waste" ~free ~on_add
    ~on_remove:(fun r -> Least_waste.Levels.remove lv ~key:r.r_id)
    ~choose ()

(* Grant to the request with the most node-seconds currently at risk:
   exposure (time since the last commit for checkpoints, waiting time for
   blocking transfers) weighted by the job's width. One O(pending) scan per
   grant; ties break towards arrival order. *)
let greedy_exposure ?(free = req_free_create ()) () : arbiter =
  let score ~now r =
    let exposure =
      match r.r_kind with
      | Req_ckpt -> now -. r.r_inst.last_commit_end
      | Req_io _ -> now -. r.r_at
    in
    exposure *. float_of_int r.r_inst.spec.nodes
  in
  let choose pool ~now =
    let best = ref None in
    let best_s = ref neg_infinity in
    Ipool.iter pool (fun r ->
        let s = score ~now r in
        match !best with
        | Some _ when s <= !best_s -> ()
        | _ ->
            best := Some r;
            best_s := s);
    !best
  in
  pool_policy ~policy:"greedy-exposure" ~free ~choose ()

let of_strategy strategy ~node_mtbf_s ~bandwidth_gbs ?(levels = 1)
    ?(free = req_free_create ()) () =
  match (strategy : Strategy.t) with
  | Least_waste -> least_waste ~node_mtbf_s ~bandwidth_gbs ~levels ~free ()
  | Greedy_exposure -> greedy_exposure ~free ()
  | Oblivious _ | Ordered _ | Ordered_nb _ | Baseline -> fifo ~free ()

(* ------------------------------------------------------------------ *)
(* The token driver.                                                    *)
(* ------------------------------------------------------------------ *)

let submit w inst kind volume =
  let p = w.req_free in
  let req =
    if p.rf_n > 0 then begin
      p.rf_n <- p.rf_n - 1;
      let r = p.rf.(p.rf_n) in
      r.r_id <- w.next_req;
      r.r_inst <- inst;
      r.r_kind <- kind;
      r.r_volume <- volume;
      r.r_at <- now w;
      r.r_cancelled <- false;
      r
    end
    else
      {
        r_id = w.next_req;
        r_inst = inst;
        r_kind = kind;
        r_volume = volume;
        r_at = now w;
        r_cancelled = false;
        r_slot = -1;
      }
  in
  w.next_req <- w.next_req + 1;
  let (module A) = w.arbiter in
  A.enqueue req

let cancel_requests_of w inst =
  let (module A) = w.arbiter in
  A.cancel_of_inst inst

let pending w =
  let (module A) = w.arbiter in
  A.pending ()

let stats w =
  let (module A) = w.arbiter in
  A.stats ()

let try_grant w =
  if w.uses_token && not w.token_busy then begin
    let (module A) = w.arbiter in
    match A.select ~now:(now w) with
    | None -> ()
    | Some req ->
        w.token_busy <- true;
        let inst = req.r_inst in
        inst.holds_token <- true;
        emit_inst w inst Trace.Token_granted;
        (match w.hooks with
        | Some h -> h.on_token_wait (now w -. req.r_at)
        | None -> ());
        (match req.r_kind with
        | Req_io _ -> w.h_grant_io req
        | Req_ckpt -> w.h_grant_ckpt req);
        (* The grant continuations read the request synchronously and
           retain nothing (grant_io closes over the volume float, not the
           record), so the record recycles the moment dispatch returns.
           Nested grants can't reach here first: [token_busy] is already
           set. *)
        release_request w.req_free req
  end
