open Sim_types
module Strategy = Cocheck_core.Strategy
module Least_waste = Cocheck_core.Least_waste

module type S = Sim_types.ARBITER

(* ------------------------------------------------------------------ *)
(* Arrival-ordered pool indexed by request id.                          *)
(*                                                                      *)
(* The policies below (Least-Waste, Greedy-Exposure) must scan every    *)
(* live request per grant anyway, but enqueue, withdrawal and the       *)
(* post-selection removal are all O(1) via the id index — replacing the *)
(* retired [pool @ [req]] / [List.find] / [List.filter] pattern that    *)
(* made every operation O(pending) and the whole backlog O(pending²).   *)
(* Removal leaves a tombstone; compaction preserves arrival order.      *)
(* ------------------------------------------------------------------ *)

module Ipool = struct
  type t = {
    mutable slots : request option array;
    mutable head : int;  (* first possibly-live slot *)
    mutable tail : int;  (* next free slot *)
    mutable live : int;
    index : (int, int) Hashtbl.t;  (* r_id -> slot *)
  }

  let create () = { slots = Array.make 16 None; head = 0; tail = 0; live = 0; index = Hashtbl.create 16 }

  let compact t =
    let j = ref 0 in
    for i = t.head to t.tail - 1 do
      match t.slots.(i) with
      | None -> ()
      | Some r as slot ->
          t.slots.(i) <- None;
          t.slots.(!j) <- slot;
          Hashtbl.replace t.index r.r_id !j;
          incr j
    done;
    t.head <- 0;
    t.tail <- !j

  let add t r =
    if t.tail = Array.length t.slots then
      if t.live * 2 <= Array.length t.slots then compact t
      else begin
        let bigger = Array.make (2 * Array.length t.slots) None in
        Array.blit t.slots 0 bigger 0 t.tail;
        t.slots <- bigger
      end;
    t.slots.(t.tail) <- Some r;
    Hashtbl.replace t.index r.r_id t.tail;
    t.tail <- t.tail + 1;
    t.live <- t.live + 1

  let advance_head t =
    while t.head < t.tail && t.slots.(t.head) = None do
      t.head <- t.head + 1
    done

  let remove t r =
    match Hashtbl.find_opt t.index r.r_id with
    | None -> ()
    | Some i ->
        t.slots.(i) <- None;
        Hashtbl.remove t.index r.r_id;
        t.live <- t.live - 1;
        advance_head t

  (* Arrival-order iteration over live requests. *)
  let iter t f =
    for i = t.head to t.tail - 1 do
      match t.slots.(i) with Some r -> f r | None -> ()
    done

  (* One in-place sweep: each matching slot is unindexed and cleared as it
     is visited — no mark pass, no intermediate list. [pred] may carry the
     caller's side effects (cancellation marks, counters, aggregates). *)
  let remove_if t pred =
    for i = t.head to t.tail - 1 do
      match t.slots.(i) with
      | Some r when pred r ->
          t.slots.(i) <- None;
          Hashtbl.remove t.index r.r_id;
          t.live <- t.live - 1
      | _ -> ()
    done;
    advance_head t

  let live t = t.live
end

(* Shared counters so every implementation reports uniform stats. *)
type counters = { mutable enq : int; mutable granted : int; mutable cancelled : int }

let counters () = { enq = 0; granted = 0; cancelled = 0 }

let stats_of ~policy ~pending (c : counters) =
  {
    arb_policy = policy;
    arb_pending = pending;
    arb_enqueued = c.enq;
    arb_granted = c.granted;
    arb_cancelled = c.cancelled;
  }

(* ------------------------------------------------------------------ *)
(* Policies.                                                            *)
(* ------------------------------------------------------------------ *)

(* FCFS with lazy cancellation: kills mark [r_cancelled] and the stale
   entries are discarded when they surface at the queue head. The live
   count is tracked alongside (marks decrement it immediately), so
   [pending] — read by every stats probe — is O(1) instead of a
   whole-queue fold. *)
let fifo () : arbiter =
  (module struct
    let policy = "fifo"
    let q : request Queue.t = Queue.create ()
    let c = counters ()
    let live = ref 0

    let enqueue r =
      c.enq <- c.enq + 1;
      incr live;
      Queue.add r q

    let cancel_of_inst inst =
      Queue.iter
        (fun r ->
          if r.r_inst.idx = inst.idx && not r.r_cancelled then begin
            r.r_cancelled <- true;
            decr live;
            c.cancelled <- c.cancelled + 1
          end)
        q

    let select ~now:_ =
      let rec pop () =
        match Queue.take_opt q with
        | None -> None
        | Some r when r.r_cancelled -> pop ()
        | Some r ->
            c.granted <- c.granted + 1;
            decr live;
            Some r
      in
      pop ()

    let pending () = !live
    let stats () = stats_of ~policy ~pending:(pending ()) c
  end)

(* Shared scaffolding of the pool-scanning policies: eager withdrawal in
   one in-place sweep, O(1) removal of the selection. [on_add]/[on_remove]
   let a policy maintain derived state (the Least-Waste aggregates) in
   lock-step with pool membership; every exit path — grant or
   cancellation — funnels through [on_remove] exactly once. *)
let pool_policy ~policy ?(on_add = fun _ -> ()) ?(on_remove = fun _ -> ()) ~choose () :
    arbiter =
  (module struct
    let policy = policy
    let pool = Ipool.create ()
    let c = counters ()

    let enqueue r =
      c.enq <- c.enq + 1;
      Ipool.add pool r;
      on_add r

    let cancel_of_inst inst =
      Ipool.remove_if pool (fun r ->
          if r.r_inst.idx = inst.idx then begin
            r.r_cancelled <- true;
            c.cancelled <- c.cancelled + 1;
            on_remove r;
            true
          end
          else false)

    let select ~now =
      match choose pool ~now with
      | None -> None
      | Some r ->
          Ipool.remove pool r;
          on_remove r;
          c.granted <- c.granted + 1;
          Some r

    let pending () = Ipool.live pool
    let stats () = stats_of ~policy ~pending:(pending ()) c
  end)

(* Section 3.4: grant to the candidate minimising the expected waste its
   service inflicts on everyone else. Equations (1)–(2) are affine in the
   grant instant and in the candidate's service time, so the pool-wide
   sums live in three scalars the {!Least_waste.Aggregate} maintains in
   O(1) per add/remove, and a grant is one O(pending) arrival-order scan
   over the live slots — no candidate list, no per-pair re-summation, no
   allocation beyond the two accumulator refs. Ties break towards arrival
   order exactly as {!Least_waste.select} breaks them. The retired
   list-based formulation survives as the differential-testing oracle in
   {!Lw_reference}.

   With a checkpoint storage hierarchy the policy keeps one affine
   aggregate per storage level ({!Least_waste.Levels}); token-arbitrated
   requests all target the deepest level (the PFS — shallower tiers absorb
   without the token), so today only that term is populated, and with
   [levels = 1] the arithmetic is bit-identical to the single {!Aggregate}
   it generalizes. *)
let least_waste ~node_mtbf_s ~bandwidth_gbs ?(levels = 1) () : arbiter =
  let module Agg = Least_waste.Aggregate in
  let lv = Least_waste.Levels.create ~node_mtbf_s ~levels in
  let pfs_level = levels - 1 in
  let entry_of r =
    match r.r_kind with
    | Req_io _ ->
        Agg.Io_entry
          {
            nodes = r.r_inst.spec.nodes;
            service_s = r.r_volume /. bandwidth_gbs;
            enqueued_at = r.r_at;
          }
    | Req_ckpt ->
        Agg.Ckpt_entry
          {
            nodes = r.r_inst.spec.nodes;
            ckpt_s = r.r_inst.ckpt_nominal;
            recovery_s = r.r_inst.ckpt_nominal;
            last_commit_end = r.r_inst.last_commit_end;
          }
  in
  let choose pool ~now =
    let best = ref None in
    let best_w = ref infinity in
    Ipool.iter pool (fun r ->
        let w = Least_waste.Levels.waste lv ~now ~key:r.r_id in
        match !best with
        | Some _ when w >= !best_w -> ()
        | _ ->
            best := Some r;
            best_w := w);
    !best
  in
  pool_policy ~policy:"least-waste"
    ~on_add:(fun r -> Least_waste.Levels.add lv ~key:r.r_id ~level:pfs_level (entry_of r))
    ~on_remove:(fun r -> Least_waste.Levels.remove lv ~key:r.r_id)
    ~choose ()

(* Grant to the request with the most node-seconds currently at risk:
   exposure (time since the last commit for checkpoints, waiting time for
   blocking transfers) weighted by the job's width. One O(pending) scan per
   grant; ties break towards arrival order. *)
let greedy_exposure () : arbiter =
  let score ~now r =
    let exposure =
      match r.r_kind with
      | Req_ckpt -> now -. r.r_inst.last_commit_end
      | Req_io _ -> now -. r.r_at
    in
    exposure *. float_of_int r.r_inst.spec.nodes
  in
  let choose pool ~now =
    let best = ref None in
    let best_s = ref neg_infinity in
    Ipool.iter pool (fun r ->
        let s = score ~now r in
        match !best with
        | Some _ when s <= !best_s -> ()
        | _ ->
            best := Some r;
            best_s := s);
    !best
  in
  pool_policy ~policy:"greedy-exposure" ~choose ()

let of_strategy strategy ~node_mtbf_s ~bandwidth_gbs ?(levels = 1) () =
  match (strategy : Strategy.t) with
  | Least_waste -> least_waste ~node_mtbf_s ~bandwidth_gbs ~levels ()
  | Greedy_exposure -> greedy_exposure ()
  | Oblivious _ | Ordered _ | Ordered_nb _ | Baseline -> fifo ()

(* ------------------------------------------------------------------ *)
(* The token driver.                                                    *)
(* ------------------------------------------------------------------ *)

let submit w inst kind volume =
  let req =
    {
      r_id = w.next_req;
      r_inst = inst;
      r_kind = kind;
      r_volume = volume;
      r_at = now w;
      r_cancelled = false;
    }
  in
  w.next_req <- w.next_req + 1;
  let (module A) = w.arbiter in
  A.enqueue req

let cancel_requests_of w inst =
  let (module A) = w.arbiter in
  A.cancel_of_inst inst

let pending w =
  let (module A) = w.arbiter in
  A.pending ()

let stats w =
  let (module A) = w.arbiter in
  A.stats ()

let try_grant w =
  if w.uses_token && not w.token_busy then begin
    let (module A) = w.arbiter in
    match A.select ~now:(now w) with
    | None -> ()
    | Some req ->
        w.token_busy <- true;
        let inst = req.r_inst in
        inst.holds_token <- true;
        emit_inst w inst Trace.Token_granted;
        (match w.hooks with
        | Some h -> h.on_token_wait (now w -. req.r_at)
        | None -> ());
        (match req.r_kind with
        | Req_io _ -> w.h_grant_io req
        | Req_ckpt -> w.h_grant_ckpt req)
  end
