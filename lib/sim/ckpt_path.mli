(** The checkpoint path: periodic request scheduling, the request →
    commit/abort state machine (Section 3's blocking, non-blocking and
    burst-buffer variants), and the two-level node-local snapshot cycle.

    The strategy's discipline enters only through
    {!Cocheck_core.Strategy.uses_token} / {!Cocheck_core.Strategy.is_blocking}
    and the run's {!Arbiter} policy — no per-strategy branches live here. *)

val install_callbacks : Sim_types.w -> Sim_types.inst -> unit
(** Build the instance's recycled checkpoint-path callbacks (request
    firing, local tick/done) once; called by {!Lifecycle} at instance
    start so the periodic re-arms allocate no closures. *)

val schedule_ckpt_request : Sim_types.w -> Sim_types.inst -> unit
(** Arm the next checkpoint request, one (P − C) after the current commit
    end; no-op once the remaining work is negligible or checkpointing is
    disabled. *)

val on_ckpt_done : Sim_types.w -> Sim_types.inst -> unit
(** Commit completion: release the token, bank the captured work level,
    restart the request clock and resume computing. *)

val grant_ckpt : Sim_types.w -> Sim_types.request -> unit
(** Token-grant continuation for a checkpoint request: account the wait
    and start the PFS transfer. *)

val schedule_local_tick : Sim_types.w -> Sim_types.inst -> unit
(** Arm the next node-local snapshot under two-level checkpointing; no-op
    without a [multilevel] configuration. *)
