open Cocheck_model

type t = {
  platform : Platform.t;
  classes : App_class.t list;
  strategy : Cocheck_core.Strategy.t;
  seed : int;
  min_duration_s : float;
  seg_start : float;
  seg_end : float;
  horizon : float;
  fill_factor : float;
  with_failures : bool;
  failure_dist : Failure_trace.distribution;
  interference_alpha : float;
  burst_buffer : Burst_buffer.spec option;
  multilevel : multilevel option;
}

and multilevel = { levels : level list }

and level = Snapshot of snapshot_level | Buffer of buffer_level

and snapshot_level = {
  sl_period_s : float;
  sl_cost_s : float;
  sl_recovery_s : float;
  sl_survival : float;
}

and buffer_level = {
  bl_capacity_gb : float;
  bl_bandwidth_gbs : float;
  bl_flush_gbs : float option;
  bl_survival : float;
}

let local_level ~period_s ~cost_s ~recovery_s ~soft_fraction =
  {
    levels =
      [
        Snapshot
          {
            sl_period_s = period_s;
            sl_cost_s = cost_s;
            sl_recovery_s = recovery_s;
            sl_survival = soft_fraction;
          };
      ];
  }

let validate_multilevel ~has_burst_buffer m =
  if m.levels = [] then invalid_arg "Config: multilevel with no levels";
  let seen_buffer = ref false in
  List.iter
    (function
      | Snapshot s ->
          if !seen_buffer then
            invalid_arg "Config: snapshot levels must precede buffer levels";
          if s.sl_period_s <= 0.0 then
            invalid_arg "Config: local period must be positive";
          Cocheck_core.Multilevel.validate_level ~what:"Config" ~cost_s:s.sl_cost_s
            ~recovery_s:s.sl_recovery_s ~fraction:s.sl_survival
      | Buffer b ->
          seen_buffer := true;
          if has_burst_buffer then
            invalid_arg "Config: burst_buffer and buffer levels are exclusive";
          if b.bl_capacity_gb <= 0.0 then
            invalid_arg "Config: buffer level capacity must be positive";
          if b.bl_bandwidth_gbs <= 0.0 then
            invalid_arg "Config: buffer level bandwidth must be positive";
          (match b.bl_flush_gbs with
          | Some f when f <= 0.0 ->
              invalid_arg "Config: flush bandwidth must be positive"
          | _ -> ());
          if b.bl_survival < 0.0 || b.bl_survival > 1.0 then
            invalid_arg "Config: buffer survival outside [0, 1]")
    m.levels

let validate t =
  if t.classes = [] then invalid_arg "Config: no application classes";
  if t.seg_start < 0.0 || t.seg_start > t.seg_end then invalid_arg "Config: bad segment";
  if t.horizon < t.seg_end then invalid_arg "Config: horizon before segment end";
  if t.min_duration_s <= 0.0 then invalid_arg "Config: non-positive duration";
  if t.fill_factor < 1.0 then invalid_arg "Config: fill factor below 1";
  if t.interference_alpha < 0.0 then invalid_arg "Config: negative interference alpha";
  Option.iter Burst_buffer.spec_validate t.burst_buffer;
  Option.iter
    (validate_multilevel ~has_burst_buffer:(Option.is_some t.burst_buffer))
    t.multilevel

let make ~platform ?classes ~strategy ?(seed = 42) ?(days = 60.0) ?(fill_factor = 1.15)
    ?(with_failures = true) ?(failure_dist = Failure_trace.Exponential)
    ?(interference_alpha = 0.0) ?burst_buffer ?multilevel () =
  let day = Cocheck_util.Units.day in
  let classes =
    match classes with
    | Some cs -> cs
    | None ->
        if platform.Platform.name = "Cielo" then Apex.lanl_workload
        else Apex.scaled_workload ~target:platform
  in
  let with_failures =
    match strategy with Cocheck_core.Strategy.Baseline -> false | _ -> with_failures
  in
  let t =
    {
      platform;
      classes;
      strategy;
      seed;
      min_duration_s = (days +. 2.0) *. day;
      seg_start = 1.0 *. day;
      seg_end = (days +. 1.0) *. day;
      horizon = (days +. 2.0) *. day;
      fill_factor;
      with_failures;
      failure_dist;
      interference_alpha;
      burst_buffer;
      multilevel;
    }
  in
  validate t;
  t

let baseline_of t =
  { t with strategy = Cocheck_core.Strategy.Baseline; with_failures = false }
