type params = {
  local_cost_s : float;
  local_recovery_s : float;
  global_cost_s : float;
  global_recovery_s : float;
  mtbf_s : float;
  soft_fraction : float;
}

let validate p =
  Multilevel.validate_level ~what:"Two_level" ~cost_s:p.local_cost_s
    ~recovery_s:p.local_recovery_s ~fraction:p.soft_fraction;
  if p.global_cost_s <= 0.0 then
    invalid_arg "Two_level: global cost must be positive";
  Multilevel.validate_level ~what:"Two_level" ~cost_s:p.global_cost_s
    ~recovery_s:p.global_recovery_s ~fraction:(1.0 -. p.soft_fraction);
  if p.mtbf_s <= 0.0 then invalid_arg "Two_level: MTBF must be positive"

let to_multilevel p =
  validate p;
  {
    Multilevel.levels =
      [
        {
          Multilevel.cost_s = p.local_cost_s;
          recovery_s = p.local_recovery_s;
          fraction = p.soft_fraction;
        };
        {
          Multilevel.cost_s = p.global_cost_s;
          recovery_s = p.global_recovery_s;
          fraction = 1.0 -. p.soft_fraction;
        };
      ];
    mtbf_s = p.mtbf_s;
  }

(* A term x/P vanishes (not NaNs) at P = infinity. *)
let over x p = if Float.is_finite p then x /. p else 0.0

let waste params ~local_period_s ~global_period_s =
  validate params;
  if local_period_s <= 0.0 || global_period_s <= 0.0 then
    invalid_arg "Two_level.waste: periods must be positive";
  let p = params.soft_fraction in
  over params.local_cost_s local_period_s
  +. over params.global_cost_s global_period_s
  +. (1.0 /. params.mtbf_s)
     *. ((p *. (params.local_recovery_s +. (Float.min local_period_s global_period_s /. 2.0)))
        +. ((1.0 -. p) *. (params.global_recovery_s +. (global_period_s /. 2.0))))

let optimal_periods params =
  validate params;
  let p = params.soft_fraction in
  let local =
    if p <= 0.0 || params.local_cost_s <= 0.0 then infinity
    else sqrt (2.0 *. params.mtbf_s *. params.local_cost_s /. p)
  in
  let global =
    if p >= 1.0 then infinity
    else sqrt (2.0 *. params.mtbf_s *. params.global_cost_s /. (1.0 -. p))
  in
  (local, global)

let optimal_waste params =
  let local_period_s, global_period_s = optimal_periods params in
  (* Evaluate with the vanishing convention of [over] for infinite periods:
     an infinite local period means soft failures roll back to the last
     global checkpoint instead. *)
  if Float.is_finite local_period_s && Float.is_finite global_period_s then
    waste params ~local_period_s ~global_period_s
  else if Float.is_finite global_period_s then
    (* No local level: everything recovers from global. *)
    over params.global_cost_s global_period_s
    +. (1.0 /. params.mtbf_s) *. (params.global_recovery_s +. (global_period_s /. 2.0))
  else
    (* p = 1: only the local level matters. *)
    over params.local_cost_s local_period_s
    +. (1.0 /. params.mtbf_s)
       *. (params.local_recovery_s +. (if Float.is_finite local_period_s then local_period_s /. 2.0 else 0.0))

let single_level_waste params =
  validate params;
  let period = Daly.period ~ckpt_s:params.global_cost_s ~mtbf_s:params.mtbf_s in
  Waste.job_waste ~ckpt_s:params.global_cost_s ~period_s:period
    ~recovery_s:params.global_recovery_s ~mtbf_s:params.mtbf_s

let worthwhile params = optimal_waste params < single_level_waste params -. 1e-12
