open Cocheck_util

type input = {
  classes : Waste.class_load list;
  total_nodes : int;
  node_mtbf_s : float;
}

type result = {
  lambda : float;
  periods : float list;
  daly_periods : float list;
  io_fraction : float;
  waste : float;
}

let period_at ~lambda ~total_nodes ~node_mtbf_s (c : Waste.class_load) =
  let n = float_of_int total_nodes and q = float_of_int c.q in
  sqrt (2.0 *. node_mtbf_s *. n *. c.ckpt_s *. ((q /. n) +. lambda) /. (q *. q))

let solve input =
  if input.classes = [] then invalid_arg "Lower_bound.solve: no classes";
  if input.total_nodes <= 0 then invalid_arg "Lower_bound.solve: total_nodes must be positive";
  if input.node_mtbf_s <= 0.0 then invalid_arg "Lower_bound.solve: MTBF must be positive";
  List.iter
    (fun (c : Waste.class_load) ->
      if c.n <= 0.0 || c.q <= 0 || c.ckpt_s <= 0.0 then
        invalid_arg "Lower_bound.solve: degenerate class load")
    input.classes;
  let periods_at lambda =
    List.map
      (period_at ~lambda ~total_nodes:input.total_nodes ~node_mtbf_s:input.node_mtbf_s)
      input.classes
  in
  let excess lambda =
    Waste.io_fraction ~classes:input.classes ~periods:(periods_at lambda) -. 1.0
  in
  (* F(λ) is strictly decreasing in λ, so the KKT multiplier is the smallest
     non-negative root of F(λ) = 1 (0 when F(0) <= 1 already). *)
  let lambda = Numerics.find_min_positive ~f:excess ~hi0:1.0 () in
  let periods = periods_at lambda in
  let daly_periods = periods_at 0.0 in
  {
    lambda;
    periods;
    daly_periods;
    io_fraction = Waste.io_fraction ~classes:input.classes ~periods;
    waste =
      Waste.platform_waste ~classes:input.classes ~periods ~total_nodes:input.total_nodes
        ~node_mtbf_s:input.node_mtbf_s;
  }

let steady_state_regular_io_gbs ~classes ~platform =
  Numerics.sum_by
    (fun (n, c) ->
      let open Cocheck_model in
      n
      *. (App_class.input_gb c ~platform +. App_class.output_gb c ~platform)
      /. c.App_class.walltime_s)
    classes

(* --- Hierarchical extension (L-level checkpoint stores) ----------------

   With an asynchronous hierarchy the checkpoint cost splits in two: the
   job blocks only for the *absorb* write into the shallowest level
   (cost [b.ckpt_s] below), while the sustained flush toward the PFS must
   fit through the narrowest edge of the hierarchy — that is where the
   Section 4 aggregate-I/O constraint now lives. Minimising Equation (7)
   built on the blocking costs under [Σ n_i E_i / P_i <= 1] on the edge
   service times E_i gives the KKT stationary point

   [P_i(λ) = sqrt (2 µ N (B_i q_i/N + λ E_i) / q_i²)]

   which reduces to Equation (8) when B_i = E_i. F(λ) is again strictly
   decreasing, so the same bisection applies. *)

type hierarchical_input = {
  h_blocking : Waste.class_load list;
      (** per-class loads with C_i, R_i at the absorb (shallowest) level *)
  h_edge_ckpt_s : float list;
      (** E_i: per-class service time of one flush through the narrowest
          hierarchy edge, order-aligned with [h_blocking] *)
  h_total_nodes : int;
  h_node_mtbf_s : float;
}

let hierarchical_period_at ~lambda ~total_nodes ~node_mtbf_s
    (b : Waste.class_load) ~edge_ckpt_s =
  let n = float_of_int total_nodes and q = float_of_int b.q in
  sqrt
    (2.0 *. node_mtbf_s *. n
    *. ((b.ckpt_s *. (q /. n)) +. (lambda *. edge_ckpt_s))
    /. (q *. q))

let solve_hierarchical input =
  if input.h_blocking = [] then invalid_arg "Lower_bound.solve_hierarchical: no classes";
  if List.length input.h_edge_ckpt_s <> List.length input.h_blocking then
    invalid_arg "Lower_bound.solve_hierarchical: classes/edges arity mismatch";
  if input.h_total_nodes <= 0 then
    invalid_arg "Lower_bound.solve_hierarchical: total_nodes must be positive";
  if input.h_node_mtbf_s <= 0.0 then
    invalid_arg "Lower_bound.solve_hierarchical: MTBF must be positive";
  List.iter2
    (fun (b : Waste.class_load) e ->
      if b.n <= 0.0 || b.q <= 0 || b.ckpt_s <= 0.0 || e <= 0.0 then
        invalid_arg "Lower_bound.solve_hierarchical: degenerate class load")
    input.h_blocking input.h_edge_ckpt_s;
  (* The constraint acts on the edge service times: reuse the class loads
     with C_i := E_i so [Waste.io_fraction] applies unchanged. *)
  let edge_loads =
    List.map2
      (fun (b : Waste.class_load) e -> { b with Waste.ckpt_s = e })
      input.h_blocking input.h_edge_ckpt_s
  in
  let periods_at lambda =
    List.map2
      (fun b e ->
        hierarchical_period_at ~lambda ~total_nodes:input.h_total_nodes
          ~node_mtbf_s:input.h_node_mtbf_s b ~edge_ckpt_s:e)
      input.h_blocking input.h_edge_ckpt_s
  in
  let excess lambda =
    Waste.io_fraction ~classes:edge_loads ~periods:(periods_at lambda) -. 1.0
  in
  let lambda = Numerics.find_min_positive ~f:excess ~hi0:1.0 () in
  let periods = periods_at lambda in
  {
    lambda;
    periods;
    daly_periods = periods_at 0.0;
    io_fraction = Waste.io_fraction ~classes:edge_loads ~periods;
    waste =
      Waste.platform_waste ~classes:input.h_blocking ~periods
        ~total_nodes:input.h_total_nodes ~node_mtbf_s:input.h_node_mtbf_s;
  }

let solve_model_hierarchical ~classes ~platform ~absorb_bandwidth_gbs
    ~edge_bandwidths_gbs () =
  if absorb_bandwidth_gbs <= 0.0 then
    invalid_arg "Lower_bound.solve_model_hierarchical: absorb bandwidth must be positive";
  if edge_bandwidths_gbs = [] then
    invalid_arg "Lower_bound.solve_model_hierarchical: no hierarchy edges";
  List.iter
    (fun b ->
      if b <= 0.0 then
        invalid_arg "Lower_bound.solve_model_hierarchical: edge bandwidth must be positive")
    edge_bandwidths_gbs;
  (* The last edge drains into the PFS and shares it with the steady-state
     regular I/O; inner edges are dedicated links. *)
  let regular = steady_state_regular_io_gbs ~classes ~platform in
  let rec bottleneck acc = function
    | [] -> acc
    | [ pfs ] -> Float.min acc (pfs -. regular)
    | e :: rest -> bottleneck (Float.min acc e) rest
  in
  let edge = bottleneck infinity edge_bandwidths_gbs in
  if edge <= 0.0 then
    invalid_arg
      "Lower_bound.solve_model_hierarchical: regular I/O saturates the flush path";
  let blocking = Waste.of_model ~classes ~platform ~avail_bandwidth_gbs:absorb_bandwidth_gbs in
  let edge_loads = Waste.of_model ~classes ~platform ~avail_bandwidth_gbs:edge in
  solve_hierarchical
    {
      h_blocking = blocking;
      h_edge_ckpt_s = List.map (fun (c : Waste.class_load) -> c.ckpt_s) edge_loads;
      h_total_nodes = platform.Cocheck_model.Platform.nodes;
      h_node_mtbf_s = platform.Cocheck_model.Platform.node_mtbf_s;
    }

let solve_model ~classes ~platform ?avail_bandwidth_gbs () =
  let avail =
    match avail_bandwidth_gbs with
    | Some b -> b
    | None ->
        platform.Cocheck_model.Platform.bandwidth_gbs
        -. steady_state_regular_io_gbs ~classes ~platform
  in
  if avail <= 0.0 then
    invalid_arg "Lower_bound.solve_model: regular I/O saturates the bandwidth";
  solve
    {
      classes = Waste.of_model ~classes ~platform ~avail_bandwidth_gbs:avail;
      total_nodes = platform.Cocheck_model.Platform.nodes;
      node_mtbf_s = platform.Cocheck_model.Platform.node_mtbf_s;
    }
