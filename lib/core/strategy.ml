type period_rule = Fixed of float | Daly | Optimal

type t =
  | Oblivious of period_rule
  | Ordered of period_rule
  | Ordered_nb of period_rule
  | Least_waste
  | Greedy_exposure
  | Baseline

let default_fixed_period_s = 3600.0

let paper_seven =
  [
    Oblivious (Fixed default_fixed_period_s);
    Oblivious Daly;
    Ordered (Fixed default_fixed_period_s);
    Ordered Daly;
    Ordered_nb (Fixed default_fixed_period_s);
    Ordered_nb Daly;
    Least_waste;
  ]

let rule_name = function
  | Daly -> "Daly"
  | Optimal -> "Optimal"
  | Fixed p when p = default_fixed_period_s -> "Fixed"
  | Fixed p ->
      if Float.rem p 3600.0 = 0.0 then Printf.sprintf "Fixed(%gh)" (p /. 3600.0)
      else if Float.rem p 60.0 = 0.0 then Printf.sprintf "Fixed(%gm)" (p /. 60.0)
      else Printf.sprintf "Fixed(%gs)" p

let name = function
  | Oblivious r -> "Oblivious-" ^ rule_name r
  | Ordered r -> "Ordered-" ^ rule_name r
  | Ordered_nb r -> "Ordered-NB-" ^ rule_name r
  | Least_waste -> "Least-Waste"
  | Greedy_exposure -> "Greedy-Exposure"
  | Baseline -> "Baseline"

let parse_rule s =
  let s = String.lowercase_ascii s in
  if s = "daly" then Ok Daly
  else if s = "optimal" || s = "opt" then Ok Optimal
  else if s = "fixed" then Ok (Fixed default_fixed_period_s)
  else
    (* fixed(2h) / fixed(30m) / fixed(900s) *)
    match String.index_opt s '(' with
    | Some i when String.length s > i + 2 && s.[String.length s - 1] = ')'
                  && String.sub s 0 i = "fixed" -> (
        let body = String.sub s (i + 1) (String.length s - i - 2) in
        let unit_char = body.[String.length body - 1] in
        let num = String.sub body 0 (String.length body - 1) in
        match (float_of_string_opt num, unit_char) with
        | Some x, 'h' -> Ok (Fixed (x *. 3600.0))
        | Some x, 'm' -> Ok (Fixed (x *. 60.0))
        | Some x, 's' -> Ok (Fixed x)
        | _ -> Error (Printf.sprintf "cannot parse fixed period %S" body))
    | _ -> Error (Printf.sprintf "unknown period rule %S" s)

let of_string s =
  let low = String.lowercase_ascii (String.trim s) in
  match low with
  | "least-waste" | "leastwaste" | "least_waste" | "lw" -> Ok Least_waste
  | "greedy-exposure" | "greedy_exposure" | "greedyexposure" | "ge" -> Ok Greedy_exposure
  | "baseline" -> Ok Baseline
  | _ -> (
      let try_prefix prefix mk =
        if String.length low > String.length prefix
           && String.sub low 0 (String.length prefix) = prefix
        then
          let rest =
            String.sub low (String.length prefix) (String.length low - String.length prefix)
          in
          Some (Result.map mk (parse_rule rest))
        else None
      in
      let candidates =
        [
          (* Ordered-NB must come before Ordered: it is the longer prefix. *)
          try_prefix "ordered-nb-" (fun r -> Ordered_nb r);
          try_prefix "ordered_nb_" (fun r -> Ordered_nb r);
          try_prefix "orderednb-" (fun r -> Ordered_nb r);
          try_prefix "ordered-" (fun r -> Ordered r);
          try_prefix "ordered_" (fun r -> Ordered r);
          try_prefix "oblivious-" (fun r -> Oblivious r);
          try_prefix "oblivious_" (fun r -> Oblivious r);
        ]
      in
      match List.find_map Fun.id candidates with
      | Some r -> r
      | None -> Error (Printf.sprintf "unknown strategy %S" s))

let is_blocking = function
  | Oblivious _ | Ordered _ | Baseline -> true
  | Ordered_nb _ | Least_waste | Greedy_exposure -> false

let uses_token = function
  | Ordered _ | Ordered_nb _ | Least_waste | Greedy_exposure -> true
  | Oblivious _ | Baseline -> false

let pp ppf t = Format.pp_print_string ppf (name t)
