(** L-level checkpointing waste model (VELOC-style hierarchies): level 0 is
    the cheapest/shallowest store, the last level the PFS. Each level [k]
    serves a [fraction] of the failures — the probability that the failure
    destroyed levels shallower than [k] but left [k] intact — and a failure
    served at level [k] rolls back to the most recent checkpoint on any
    level at or below [k]:

    [W(P_1..P_L) = Σ_k C_k/P_k
                   + (1/µ)·Σ_k f_k·(R_k + min_{j≥k} P_j / 2)]

    Differentiating the separable approximation gives per-level Young/Daly
    optima [P_k = sqrt (2 µ C_k / f_k)]. The L = 2 instance is bit-identical
    to {!Two_level} (kept as the test oracle); {!Two_level.to_multilevel}
    embeds the old parameter record. *)

type level = {
  cost_s : float;  (** C_k: time to write one checkpoint at this level *)
  recovery_s : float;  (** R_k *)
  fraction : float;  (** f_k: fraction of failures served at this level *)
}

type params = {
  levels : level list;  (** shallow → deep; the last level survives everything *)
  mtbf_s : float;  (** µ, per job *)
}

val validate_level :
  what:string -> cost_s:float -> recovery_s:float -> fraction:float -> unit
(** The shared range validator for one level spec (costs non-negative,
    fraction in [0, 1]); raises [Invalid_argument] prefixed with [what].
    {!Two_level.validate} and [Cocheck_sim.Config.validate] both delegate
    here instead of re-implementing the checks. *)

val validate : params -> unit
(** Per-level checks plus: at least one level, positive MTBF, positive
    deepest cost, fractions summing to 1 (within 1e-9). *)

val waste : params -> periods:float list -> float
(** The waste expression above. Periods must be positive ([infinity] is
    allowed: that level is never checkpointed and contributes no cost). *)

val optimal_periods : params -> float list
(** Per-level Young/Daly optima, [infinity] where [fraction] or [cost_s]
    is zero. *)

val optimal_waste : params -> float
(** Waste at the optima (infinite-period terms contribute only their
    surviving parts). *)

val single_level_waste : params -> float
(** Best achievable with only the deepest level (Daly period on its cost
    against all failures) — the baseline the hierarchy must beat. *)

val worthwhile : params -> bool
(** Whether the hierarchy beats {!single_level_waste}. *)
