(** Theorem 1: the lower bound on platform waste under the aggregate I/O
    constraint [F = Σ n_i C_i / P_i <= 1].

    The optimal periods come from the KKT conditions of minimising the
    platform waste (Equation (7)) under the constraint (Equation (6)):

    [P_i(λ) = sqrt (2 µ N C_i (q_i/N + λ) / q_i²)]           (Equation (8))

    where λ ≥ 0 is the Lagrange multiplier, 0 when the unconstrained Daly
    periods already fit in the available I/O bandwidth. λ has no closed
    form: [F(λ)] is strictly decreasing, so we bisect for the smallest λ
    with [F(λ) <= 1]. *)

type input = {
  classes : Waste.class_load list;
  total_nodes : int;  (** N *)
  node_mtbf_s : float;  (** µ_ind *)
}

type result = {
  lambda : float;  (** 0 when the I/O constraint is slack *)
  periods : float list;  (** per-class optimal periods, Equation (8) order-aligned *)
  daly_periods : float list;  (** unconstrained periods (λ = 0) for reference *)
  io_fraction : float;  (** F at the optimal periods; = 1 when constrained *)
  waste : float;  (** the lower bound, Equation (7) *)
}

val period_at : lambda:float -> total_nodes:int -> node_mtbf_s:float -> Waste.class_load -> float
(** Equation (8) for one class. *)

val solve : input -> result
(** Compute the bound. Raises [Invalid_argument] on empty class lists or
    non-positive dimensions. *)

val solve_model :
  classes:(float * Cocheck_model.App_class.t) list ->
  platform:Cocheck_model.Platform.t ->
  ?avail_bandwidth_gbs:float ->
  unit ->
  result
(** Convenience wrapper: build the steady-state loads from model classes.
    [avail_bandwidth_gbs] defaults to the platform bandwidth minus the
    steady-state regular-I/O demand [Σ n_i (input_i + output_i) / walltime_i]
    (the Section 4 assumption that initial/final I/O spans the execution). *)

type hierarchical_input = {
  h_blocking : Waste.class_load list;
      (** per-class loads with C_i, R_i at the absorb (shallowest) level *)
  h_edge_ckpt_s : float list;
      (** E_i: service time of one flush through the narrowest hierarchy
          edge, order-aligned with [h_blocking] *)
  h_total_nodes : int;
  h_node_mtbf_s : float;
}

val hierarchical_period_at :
  lambda:float ->
  total_nodes:int ->
  node_mtbf_s:float ->
  Waste.class_load ->
  edge_ckpt_s:float ->
  float
(** [P_i(λ) = sqrt (2 µ N (B_i q_i/N + λ E_i) / q_i²)] — the hierarchical
    generalization of Equation (8); equal to it (up to rounding) when the
    blocking and edge service times coincide. *)

val solve_hierarchical : hierarchical_input -> result
(** The lower bound when jobs block only for the absorb write while the
    aggregate-I/O constraint (Equation (6)) applies to the flush traffic
    through the narrowest hierarchy edge. Reduces to {!solve} when
    [h_edge_ckpt_s] equals the blocking costs; the bound decreases
    monotonically as the edge widens. *)

val solve_model_hierarchical :
  classes:(float * Cocheck_model.App_class.t) list ->
  platform:Cocheck_model.Platform.t ->
  absorb_bandwidth_gbs:float ->
  edge_bandwidths_gbs:float list ->
  unit ->
  result
(** Model-level wrapper: blocking costs at [absorb_bandwidth_gbs] (the
    shallowest store), constraint at the narrowest of
    [edge_bandwidths_gbs] — the last edge drains into the PFS and has the
    steady-state regular-I/O demand subtracted first, inner edges are
    dedicated links. *)

val steady_state_regular_io_gbs :
  classes:(float * Cocheck_model.App_class.t) list ->
  platform:Cocheck_model.Platform.t ->
  float
(** The regular-I/O bandwidth demand subtracted by {!solve_model}'s
    default. *)
