(* L-level generalization of the two-level waste model. Levels are listed
   shallow → deep; [fraction] is the probability that a failure's recovery
   is served {e at} that level (the deepest level absorbs whatever the
   shallower ones cannot). The float expressions mirror {!Two_level}
   exactly so the L = 2 instance bit-matches the old model, which is kept
   as the test oracle. *)

type level = { cost_s : float; recovery_s : float; fraction : float }
type params = { levels : level list; mtbf_s : float }

(* The one validator every level-shaped knob goes through: the analytic
   params here, {!Two_level.validate} and the simulator's
   [Config.multilevel] all call it instead of re-implementing the range
   checks inline. *)
let validate_level ~what ~cost_s ~recovery_s ~fraction =
  if cost_s < 0.0 then invalid_arg (what ^ ": negative checkpoint cost");
  if recovery_s < 0.0 then invalid_arg (what ^ ": negative recovery cost");
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg (what ^ ": fraction outside [0, 1]")

let validate p =
  if p.levels = [] then invalid_arg "Multilevel: no levels";
  if p.mtbf_s <= 0.0 then invalid_arg "Multilevel: MTBF must be positive";
  List.iter
    (fun l ->
      validate_level ~what:"Multilevel" ~cost_s:l.cost_s ~recovery_s:l.recovery_s
        ~fraction:l.fraction)
    p.levels;
  (match List.rev p.levels with
  | deepest :: _ when deepest.cost_s <= 0.0 ->
      invalid_arg "Multilevel: deepest level cost must be positive"
  | _ -> ());
  let total = List.fold_left (fun acc l -> acc +. l.fraction) 0.0 p.levels in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg "Multilevel: level fractions must sum to 1"

(* A term x/P vanishes (not NaNs) at P = infinity — same convention as
   {!Two_level.over}. *)
let over x p = if Float.is_finite p then x /. p else 0.0

(* The waste expression, allowing infinite periods (a level whose period is
   infinite is simply never checkpointed; its failures roll back further).
   A failure served at level k loses on average half the shortest period
   at or below k — the first checkpoint recoverable from level k is
   whichever of those levels checkpointed most recently. *)
let waste_at p ~periods =
  let ckpt_sum =
    List.fold_left2 (fun acc l per -> acc +. over l.cost_s per) 0.0 p.levels periods
  in
  let rec recovery_sum acc levels periods =
    match (levels, periods) with
    | [], [] -> acc
    | l :: ls, _ :: _ ->
        let half_min =
          let m = List.fold_left Float.min infinity periods in
          if Float.is_finite m then m /. 2.0 else 0.0
        in
        let acc =
          if l.fraction = 0.0 then acc else acc +. (l.fraction *. (l.recovery_s +. half_min))
        in
        recovery_sum acc ls (List.tl periods)
    | _ -> invalid_arg "Multilevel.waste: levels/periods arity mismatch"
  in
  ckpt_sum +. ((1.0 /. p.mtbf_s) *. recovery_sum 0.0 p.levels periods)

let waste p ~periods =
  validate p;
  if List.length periods <> List.length p.levels then
    invalid_arg "Multilevel.waste: levels/periods arity mismatch";
  if List.exists (fun per -> per <= 0.0) periods then
    invalid_arg "Multilevel.waste: periods must be positive";
  waste_at p ~periods

(* Separable Young/Daly-shaped optima, exactly as in {!Two_level}: a level
   that serves no failures (or costs nothing) is never checkpointed. *)
let optimal_periods p =
  validate p;
  List.map
    (fun l ->
      if l.fraction <= 0.0 || l.cost_s <= 0.0 then infinity
      else sqrt (2.0 *. p.mtbf_s *. l.cost_s /. l.fraction))
    p.levels

let optimal_waste p = waste_at p ~periods:(optimal_periods p)

let deepest p =
  match List.rev p.levels with
  | d :: _ -> d
  | [] -> invalid_arg "Multilevel: no levels"

let single_level_waste p =
  validate p;
  let d = deepest p in
  let period = Daly.period ~ckpt_s:d.cost_s ~mtbf_s:p.mtbf_s in
  Waste.job_waste ~ckpt_s:d.cost_s ~period_s:period ~recovery_s:d.recovery_s
    ~mtbf_s:p.mtbf_s

let worthwhile p = optimal_waste p < single_level_waste p -. 1e-12
