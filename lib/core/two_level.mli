(** Two-level checkpointing (SCR / FTI-style, the paper's references [9],
    [15]): frequent cheap {e local} checkpoints to node-local storage that
    survive only {e soft} failures (process crashes, transient faults), plus
    the usual global checkpoints to the shared PFS that survive everything.

    First-order waste model for a job with MTBF µ, a fraction [p] of whose
    failures are soft:

    [W(P_l, P_g) = C_l/P_l + C_g/P_g
                   + (1/µ)·(p·(R_l + P_l/2) + (1−p)·(R_g + P_g/2))]

    Differentiating gives independent Young/Daly-shaped optima:

    [Pl_opt = sqrt (2 µ C_l / p)],  [Pg_opt = sqrt (2 µ C_g / (1−p))].

    With [p = 0] the model collapses to single-level Daly (local
    checkpoints are pure overhead, Pl_opt → ∞); with [p → 1] global
    checkpoints become vanishingly rare. The simulator's runtime
    counterpart is configured through {!Cocheck_sim.Config}. *)

type params = {
  local_cost_s : float;  (** C_l: time to take a local snapshot (no PFS traffic) *)
  local_recovery_s : float;  (** R_l *)
  global_cost_s : float;  (** C_g *)
  global_recovery_s : float;  (** R_g *)
  mtbf_s : float;  (** µ, per job *)
  soft_fraction : float;  (** p in [0, 1] *)
}

val validate : params -> unit

val to_multilevel : params -> Multilevel.params
(** Embed as the L = 2 instance of {!Multilevel}: levels
    [[local; global]] with fractions [p] and [1 − p]. {!Multilevel.waste},
    [optimal_periods], [optimal_waste] and [worthwhile] on the image are
    bit-identical to the functions here (property-tested). *)

val waste : params -> local_period_s:float -> global_period_s:float -> float
(** The two-level waste expression above. Periods must be positive. *)

val optimal_periods : params -> float * float
(** [(local, global)] optima. The local one is [infinity] when
    [soft_fraction = 0]; the global one when [soft_fraction = 1]. *)

val optimal_waste : params -> float
(** Waste at the optima (terms with infinite periods contribute only their
    surviving parts). *)

val single_level_waste : params -> float
(** Best achievable without the local level (Daly period on C_g against
    all failures) — the baseline the two-level scheme must beat. *)

val worthwhile : params -> bool
(** Whether adding the local level lowers the optimal waste. True whenever
    [soft_fraction > 0] and C_l is genuinely cheaper than C_g; false at
    [soft_fraction = 0]. *)
