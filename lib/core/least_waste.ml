(* Equations (1) and (2) share one shape: W_i = v × Σ_{j ≠ i} term(j), where
   v is the service time of the selected candidate and term(j) depends on
   which pool j belongs to. *)

(* Grants sit on the simulator's hot path; well-formedness is the
   constructor's obligation, so [select] only re-checks it when this flag
   is raised (tests do). *)
let debug_validate = ref false

let inflicted_waste ~node_mtbf_s ~service_s ~self candidates =
  if node_mtbf_s <= 0.0 then invalid_arg "Least_waste: MTBF must be positive";
  let v = service_s in
  let term (c : Candidate.t) =
    if Candidate.key c = self then 0.0
    else
      match c with
      | Candidate.Io io -> float_of_int io.nodes *. (io.waited_s +. v)
      | Candidate.Ckpt ck ->
          let q = float_of_int ck.nodes in
          q *. q /. node_mtbf_s *. (ck.recovery_s +. ck.exposed_s +. (v /. 2.0))
  in
  v *. Cocheck_util.Numerics.sum_by term candidates

let select ~node_mtbf_s candidates =
  if node_mtbf_s <= 0.0 then invalid_arg "Least_waste.select: MTBF must be positive";
  if !debug_validate then List.iter Candidate.validate candidates;
  let best = ref None in
  List.iter
    (fun c ->
      let w =
        inflicted_waste ~node_mtbf_s ~service_s:(Candidate.service_time c)
          ~self:(Candidate.key c) candidates
      in
      match !best with
      | Some (_, w_best) when w >= w_best -> ()
      | _ -> best := Some (c, w))
    candidates;
  Option.map fst !best

(* ------------------------------------------------------------------ *)
(* Incremental aggregates                                               *)
(* ------------------------------------------------------------------ *)

(* Every candidate's term is affine both in the selected service time [v]
   and in the evaluation instant [now] once the time-dependent inputs are
   written against absolute clocks (w_j = now − at_j for IO waits,
   e_j = now − last_commit_end_j for checkpoint exposure):

     Io   j:  n_j·(now − at_j + v)               = n_j·now − n_j·at_j + n_j·v
     Ckpt j:  q_j²/M·(r_j + now − lce_j + v/2)   = k_j·now + k_j·(r_j − lce_j) + k_j/2·v

   with k_j = q_j²/M. So the pool-wide sum collapses to three scalars

     Σ_j term_j(now, v) = A·now + B + S1·v

   maintained in O(1) on every add/remove, and the Eq. (1)/(2) waste of
   candidate i is recovered by self-exclusion:

     W_i = v_i · (A·now + B + S1·v_i − term_i(now, v_i)).

   Each key's per-term evaluation keeps the exact float expression of
   {!inflicted_waste}; only the summation order differs, which is why the
   arbiter ships with a differential oracle (see lib/sim/lw_reference.ml). *)
module Aggregate = struct
  type entry =
    | Io_entry of { nodes : int; service_s : float; enqueued_at : float }
    | Ckpt_entry of {
        nodes : int;
        ckpt_s : float;
        recovery_s : float;
        last_commit_end : float;
      }

  (* Members live in a struct-of-arrays pool: float inputs and the scalars
     each member contributed at add time sit in flat [float array]s (reads
     and writes unbox), tags and node counts in [int array]s, and the
     key → slot index is the open-addressing {!Cocheck_util.Int_table} —
     so the simulator-facing [add_io]/[add_ckpt]/[remove]/[waste] cycle
     allocates nothing. The contribution scalars are stored, not
     recomputed, so [remove] subtracts exactly what was added; removal
     swaps the last slot into the hole, keeping slots dense.

     The variant [entry] API survives as the cold-path wrapper ([add]
     destructures into the typed adders, [find] rebuilds the variant): the
     property tests and the multi-level fold speak it. *)

  (* Each running sum is Kahan–Babuška compensated: adds and removals of
     large members would otherwise leave ulp-sized residue behind a
     now-small pool, and the drift (≈ ops × ulp(historical max)) can reach
     the magnitude of a small survivor's waste. Compensation pushes the
     drift to second order; the drain-point reset clears even that. The
     six scalars live in [acc] — (sum, compensation) pairs at (0,1) for A
     the coefficient of [now], (2,3) for B the constant part, (4,5) for S1
     the coefficient of [v] — as float-array stores, unlike mutable float
     fields on this mixed record, don't box. *)
  type t = {
    node_mtbf_s : float;
    index : Cocheck_util.Int_table.t;  (* key → slot *)
    mutable n : int;  (* live slots: 0..n-1 are dense *)
    mutable e_key : int array;
    mutable e_tag : int array;  (* tag_io | tag_ckpt *)
    mutable e_nodes : int array;
    mutable e_service : float array;  (* service_s (io) | ckpt_s (ckpt) *)
    mutable e_x1 : float array;  (* enqueued_at (io) | recovery_s (ckpt) *)
    mutable e_x2 : float array;  (* unused (io) | last_commit_end (ckpt) *)
    mutable e_da : float array;  (* contribution to A recorded at add *)
    mutable e_db : float array;  (* … to B *)
    mutable e_ds1 : float array;  (* … to S1 *)
    acc : float array;
  }

  let tag_io = 0
  let tag_ckpt = 1

  let create ~node_mtbf_s =
    if node_mtbf_s <= 0.0 then
      invalid_arg "Least_waste.Aggregate.create: MTBF must be positive";
    {
      node_mtbf_s;
      index = Cocheck_util.Int_table.create ~initial:64 ();
      n = 0;
      e_key = [||];
      e_tag = [||];
      e_nodes = [||];
      e_service = [||];
      e_x1 = [||];
      e_x2 = [||];
      e_da = [||];
      e_db = [||];
      e_ds1 = [||];
      acc = Array.make 6 0.0;
    }

  let size t = t.n

  let grow t =
    let cap = Array.length t.e_key in
    let cap' = if cap = 0 then 16 else 2 * cap in
    let gi a = Array.append a (Array.make (cap' - cap) 0) in
    let gf a = Array.append a (Array.make (cap' - cap) 0.0) in
    t.e_key <- gi t.e_key;
    t.e_tag <- gi t.e_tag;
    t.e_nodes <- gi t.e_nodes;
    t.e_service <- gf t.e_service;
    t.e_x1 <- gf t.e_x1;
    t.e_x2 <- gf t.e_x2;
    t.e_da <- gf t.e_da;
    t.e_db <- gf t.e_db;
    t.e_ds1 <- gf t.e_ds1

  (* One Kahan–Babuška (Neumaier) step on the (sum, compensation) pair at
     [acc.(i), acc.(i+1)] — the float expression of the retired
     tuple-returning step, verbatim. *)
  let[@inline] kstep acc i x =
    let sum = acc.(i) in
    let comp = acc.(i + 1) in
    let s = sum +. x in
    let comp =
      if Float.abs sum >= Float.abs x then comp +. (sum -. s +. x)
      else comp +. (x -. s +. sum)
    in
    acc.(i) <- s;
    acc.(i + 1) <- comp

  let alloc_slot t ~key =
    if Cocheck_util.Int_table.mem t.index key then
      invalid_arg "Least_waste.Aggregate.add: duplicate key";
    if t.n = Array.length t.e_key then grow t;
    let slot = t.n in
    t.n <- slot + 1;
    t.e_key.(slot) <- key;
    Cocheck_util.Int_table.set t.index key slot;
    slot

  let add_io t ~key ~nodes ~service_s ~enqueued_at =
    let slot = alloc_slot t ~key in
    t.e_tag.(slot) <- tag_io;
    t.e_nodes.(slot) <- nodes;
    t.e_service.(slot) <- service_s;
    t.e_x1.(slot) <- enqueued_at;
    t.e_x2.(slot) <- 0.0;
    let n = float_of_int nodes in
    let da = n and db = -.(n *. enqueued_at) and ds1 = n in
    t.e_da.(slot) <- da;
    t.e_db.(slot) <- db;
    t.e_ds1.(slot) <- ds1;
    kstep t.acc 0 da;
    kstep t.acc 2 db;
    kstep t.acc 4 ds1

  let add_ckpt t ~key ~nodes ~ckpt_s ~recovery_s ~last_commit_end =
    let slot = alloc_slot t ~key in
    t.e_tag.(slot) <- tag_ckpt;
    t.e_nodes.(slot) <- nodes;
    t.e_service.(slot) <- ckpt_s;
    t.e_x1.(slot) <- recovery_s;
    t.e_x2.(slot) <- last_commit_end;
    let q = float_of_int nodes in
    let k = q *. q /. t.node_mtbf_s in
    let da = k and db = k *. (recovery_s -. last_commit_end) and ds1 = 0.5 *. k in
    t.e_da.(slot) <- da;
    t.e_db.(slot) <- db;
    t.e_ds1.(slot) <- ds1;
    kstep t.acc 0 da;
    kstep t.acc 2 db;
    kstep t.acc 4 ds1

  let add t ~key entry =
    match entry with
    | Io_entry { nodes; service_s; enqueued_at } ->
        add_io t ~key ~nodes ~service_s ~enqueued_at
    | Ckpt_entry { nodes; ckpt_s; recovery_s; last_commit_end } ->
        add_ckpt t ~key ~nodes ~ckpt_s ~recovery_s ~last_commit_end

  let remove t ~key =
    let slot = Cocheck_util.Int_table.find t.index key in
    if slot <> Cocheck_util.Int_table.not_found then begin
      let da = t.e_da.(slot) in
      let db = t.e_db.(slot) in
      let ds1 = t.e_ds1.(slot) in
      ignore (Cocheck_util.Int_table.remove t.index key);
      let last = t.n - 1 in
      if slot < last then begin
        t.e_key.(slot) <- t.e_key.(last);
        t.e_tag.(slot) <- t.e_tag.(last);
        t.e_nodes.(slot) <- t.e_nodes.(last);
        t.e_service.(slot) <- t.e_service.(last);
        t.e_x1.(slot) <- t.e_x1.(last);
        t.e_x2.(slot) <- t.e_x2.(last);
        t.e_da.(slot) <- t.e_da.(last);
        t.e_db.(slot) <- t.e_db.(last);
        t.e_ds1.(slot) <- t.e_ds1.(last);
        Cocheck_util.Int_table.set t.index t.e_key.(slot) slot
      end;
      t.n <- last;
      if t.n = 0 then begin
        (* Drain point: reset exactly, so not even second-order drift
           from a long add/remove history outlives a busy period. *)
        t.acc.(0) <- 0.0;
        t.acc.(1) <- 0.0;
        t.acc.(2) <- 0.0;
        t.acc.(3) <- 0.0;
        t.acc.(4) <- 0.0;
        t.acc.(5) <- 0.0
      end
      else begin
        kstep t.acc 0 (-.da);
        kstep t.acc 2 (-.db);
        kstep t.acc 4 (-.ds1)
      end
    end

  let mem t ~key = Cocheck_util.Int_table.mem t.index key

  let service_time = function
    | Io_entry { service_s; _ } -> service_s
    | Ckpt_entry { ckpt_s; _ } -> ckpt_s

  (* The slot's own Eq. (1)/(2) term, with the same float expression the
     list oracle evaluates (waited/exposed materialized as now − clock). *)
  let term_at t ~now ~service_s slot =
    if t.e_tag.(slot) = tag_io then
      float_of_int t.e_nodes.(slot) *. (now -. t.e_x1.(slot) +. service_s)
    else
      let q = float_of_int t.e_nodes.(slot) in
      q *. q /. t.node_mtbf_s
      *. (t.e_x1.(slot) +. (now -. t.e_x2.(slot)) +. (service_s /. 2.0))

  let term t ~now ~service_s entry =
    match entry with
    | Io_entry { nodes; enqueued_at; _ } ->
        float_of_int nodes *. (now -. enqueued_at +. service_s)
    | Ckpt_entry { nodes; recovery_s; last_commit_end; _ } ->
        let q = float_of_int nodes in
        q *. q /. t.node_mtbf_s
        *. (recovery_s +. (now -. last_commit_end) +. (service_s /. 2.0))

  let total_term t ~now ~service_s =
    (((t.acc.(0) +. t.acc.(1)) *. now) +. (t.acc.(2) +. t.acc.(3)))
    +. ((t.acc.(4) +. t.acc.(5)) *. service_s)

  let entry_at t slot =
    if t.e_tag.(slot) = tag_io then
      Io_entry
        {
          nodes = t.e_nodes.(slot);
          service_s = t.e_service.(slot);
          enqueued_at = t.e_x1.(slot);
        }
    else
      Ckpt_entry
        {
          nodes = t.e_nodes.(slot);
          ckpt_s = t.e_service.(slot);
          recovery_s = t.e_x1.(slot);
          last_commit_end = t.e_x2.(slot);
        }

  let find t ~key =
    let slot = Cocheck_util.Int_table.find t.index key in
    if slot = Cocheck_util.Int_table.not_found then None else Some (entry_at t slot)

  let waste t ~now ~key =
    let slot = Cocheck_util.Int_table.find t.index key in
    if slot = Cocheck_util.Int_table.not_found then
      invalid_arg "Least_waste.Aggregate.waste: unknown key"
    else
      let v = t.e_service.(slot) in
      v *. (total_term t ~now ~service_s:v -. term_at t ~now ~service_s:v slot)
end

(* Level-aware pools: one {!Aggregate} (one affine A·now + B + S1·v triple)
   per hierarchy level. The inflicted waste of a member is its service time
   times the sum of every level's total term minus its own — at one level
   this degenerates to {!Aggregate.waste} (same floats; the fold seeds with
   0.0 and 0.0 +. x = x), which is what keeps the single-level golden
   traces bit-identical.

   A single-level pool delegates every operation straight to its one
   {!Aggregate}: the grant scan calls [waste] once per pending request, and
   the general path's level lookup, option-returning entry find and float
   fold would put ~5 extra minor words per candidate on the simulator's hot
   path (the bench [tracing] budget polices this). The [level_of] table is
   only maintained — and only consulted — with two or more levels. *)
module Levels = struct
  type t = {
    aggs : Aggregate.t array;
    level_of : (int, int) Hashtbl.t;  (* key → owning level; unused at L = 1 *)
  }

  let create ~node_mtbf_s ~levels =
    if levels <= 0 then
      invalid_arg "Least_waste.Levels.create: levels must be positive";
    {
      aggs = Array.init levels (fun _ -> Aggregate.create ~node_mtbf_s);
      level_of = Hashtbl.create 64;
    }

  let levels t = Array.length t.aggs

  let size t =
    if Array.length t.aggs = 1 then Aggregate.size t.aggs.(0)
    else Hashtbl.length t.level_of

  let mem t ~key =
    if Array.length t.aggs = 1 then Aggregate.mem t.aggs.(0) ~key
    else Hashtbl.mem t.level_of key

  let add t ~key ~level entry =
    if level < 0 || level >= Array.length t.aggs then
      invalid_arg "Least_waste.Levels.add: level out of range";
    if Array.length t.aggs = 1 then Aggregate.add t.aggs.(0) ~key entry
    else begin
      if Hashtbl.mem t.level_of key then
        invalid_arg "Least_waste.Levels.add: duplicate key";
      Aggregate.add t.aggs.(level) ~key entry;
      Hashtbl.replace t.level_of key level
    end

  (* Typed adders mirroring {!Aggregate.add_io}/{!Aggregate.add_ckpt}: the
     single-level fast path stays allocation-free (no variant to box), the
     multi-level path shares [add]'s bookkeeping. *)
  let add_io t ~key ~level ~nodes ~service_s ~enqueued_at =
    if Array.length t.aggs = 1 then begin
      if level <> 0 then invalid_arg "Least_waste.Levels.add: level out of range";
      Aggregate.add_io t.aggs.(0) ~key ~nodes ~service_s ~enqueued_at
    end
    else add t ~key ~level (Aggregate.Io_entry { nodes; service_s; enqueued_at })

  let add_ckpt t ~key ~level ~nodes ~ckpt_s ~recovery_s ~last_commit_end =
    if Array.length t.aggs = 1 then begin
      if level <> 0 then invalid_arg "Least_waste.Levels.add: level out of range";
      Aggregate.add_ckpt t.aggs.(0) ~key ~nodes ~ckpt_s ~recovery_s
        ~last_commit_end
    end
    else
      add t ~key ~level
        (Aggregate.Ckpt_entry { nodes; ckpt_s; recovery_s; last_commit_end })

  let remove t ~key =
    if Array.length t.aggs = 1 then Aggregate.remove t.aggs.(0) ~key
    else
      match Hashtbl.find_opt t.level_of key with
      | None -> ()
      | Some l ->
          Hashtbl.remove t.level_of key;
          Aggregate.remove t.aggs.(l) ~key

  let waste t ~now ~key =
    if Array.length t.aggs = 1 then Aggregate.waste t.aggs.(0) ~now ~key
    else
      match Hashtbl.find_opt t.level_of key with
      | None -> invalid_arg "Least_waste.Levels.waste: unknown key"
      | Some l -> (
          match Aggregate.find t.aggs.(l) ~key with
          | None -> assert false
          | Some entry ->
              let v = Aggregate.service_time entry in
              let total =
                Array.fold_left
                  (fun acc agg -> acc +. Aggregate.total_term agg ~now ~service_s:v)
                  0.0 t.aggs
              in
              v *. (total -. Aggregate.term t.aggs.(l) ~now ~service_s:v entry))
end
