(* Equations (1) and (2) share one shape: W_i = v × Σ_{j ≠ i} term(j), where
   v is the service time of the selected candidate and term(j) depends on
   which pool j belongs to. *)

(* Grants sit on the simulator's hot path; well-formedness is the
   constructor's obligation, so [select] only re-checks it when this flag
   is raised (tests do). *)
let debug_validate = ref false

let inflicted_waste ~node_mtbf_s ~service_s ~self candidates =
  if node_mtbf_s <= 0.0 then invalid_arg "Least_waste: MTBF must be positive";
  let v = service_s in
  let term (c : Candidate.t) =
    if Candidate.key c = self then 0.0
    else
      match c with
      | Candidate.Io io -> float_of_int io.nodes *. (io.waited_s +. v)
      | Candidate.Ckpt ck ->
          let q = float_of_int ck.nodes in
          q *. q /. node_mtbf_s *. (ck.recovery_s +. ck.exposed_s +. (v /. 2.0))
  in
  v *. Cocheck_util.Numerics.sum_by term candidates

let select ~node_mtbf_s candidates =
  if node_mtbf_s <= 0.0 then invalid_arg "Least_waste.select: MTBF must be positive";
  if !debug_validate then List.iter Candidate.validate candidates;
  let best = ref None in
  List.iter
    (fun c ->
      let w =
        inflicted_waste ~node_mtbf_s ~service_s:(Candidate.service_time c)
          ~self:(Candidate.key c) candidates
      in
      match !best with
      | Some (_, w_best) when w >= w_best -> ()
      | _ -> best := Some (c, w))
    candidates;
  Option.map fst !best

(* ------------------------------------------------------------------ *)
(* Incremental aggregates                                               *)
(* ------------------------------------------------------------------ *)

(* Every candidate's term is affine both in the selected service time [v]
   and in the evaluation instant [now] once the time-dependent inputs are
   written against absolute clocks (w_j = now − at_j for IO waits,
   e_j = now − last_commit_end_j for checkpoint exposure):

     Io   j:  n_j·(now − at_j + v)               = n_j·now − n_j·at_j + n_j·v
     Ckpt j:  q_j²/M·(r_j + now − lce_j + v/2)   = k_j·now + k_j·(r_j − lce_j) + k_j/2·v

   with k_j = q_j²/M. So the pool-wide sum collapses to three scalars

     Σ_j term_j(now, v) = A·now + B + S1·v

   maintained in O(1) on every add/remove, and the Eq. (1)/(2) waste of
   candidate i is recovered by self-exclusion:

     W_i = v_i · (A·now + B + S1·v_i − term_i(now, v_i)).

   Each key's per-term evaluation keeps the exact float expression of
   {!inflicted_waste}; only the summation order differs, which is why the
   arbiter ships with a differential oracle (see lib/sim/lw_reference.ml). *)
module Aggregate = struct
  type entry =
    | Io_entry of { nodes : int; service_s : float; enqueued_at : float }
    | Ckpt_entry of {
        nodes : int;
        ckpt_s : float;
        recovery_s : float;
        last_commit_end : float;
      }

  (* The scalars an entry contributed at [add] time, so [remove] subtracts
     exactly what was added even if the caller's state moved meanwhile. *)
  type contrib = { entry : entry; da : float; db : float; ds1 : float }

  (* Each running sum is Kahan–Babuška compensated: adds and removals of
     large members would otherwise leave ulp-sized residue behind a
     now-small pool, and the drift (≈ ops × ulp(historical max)) can reach
     the magnitude of a small survivor's waste. Compensation pushes the
     drift to second order; the drain-point reset clears even that. *)
  type t = {
    node_mtbf_s : float;
    entries : (int, contrib) Hashtbl.t;
    mutable a : float;  (* coefficient of [now] in Σ term_j *)
    mutable ca : float;
    mutable b : float;  (* constant part of Σ term_j *)
    mutable cb : float;
    mutable s1 : float;  (* coefficient of [v] in Σ term_j *)
    mutable cs1 : float;
  }

  let create ~node_mtbf_s =
    if node_mtbf_s <= 0.0 then
      invalid_arg "Least_waste.Aggregate.create: MTBF must be positive";
    {
      node_mtbf_s;
      entries = Hashtbl.create 64;
      a = 0.0;
      ca = 0.0;
      b = 0.0;
      cb = 0.0;
      s1 = 0.0;
      cs1 = 0.0;
    }

  let size t = Hashtbl.length t.entries

  let contrib_of t entry =
    match entry with
    | Io_entry { nodes; service_s = _; enqueued_at } ->
        let n = float_of_int nodes in
        { entry; da = n; db = -.(n *. enqueued_at); ds1 = n }
    | Ckpt_entry { nodes; ckpt_s = _; recovery_s; last_commit_end } ->
        let q = float_of_int nodes in
        let k = q *. q /. t.node_mtbf_s in
        { entry; da = k; db = k *. (recovery_s -. last_commit_end); ds1 = 0.5 *. k }

  (* One Kahan–Babuška (Neumaier) step on a (sum, compensation) pair. *)
  let[@inline] accumulate t ~sign (c : contrib) =
    let step sum comp x =
      let s = sum +. x in
      let comp =
        if Float.abs sum >= Float.abs x then comp +. (sum -. s +. x)
        else comp +. (x -. s +. sum)
      in
      (s, comp)
    in
    let a, ca = step t.a t.ca (sign *. c.da) in
    t.a <- a;
    t.ca <- ca;
    let b, cb = step t.b t.cb (sign *. c.db) in
    t.b <- b;
    t.cb <- cb;
    let s1, cs1 = step t.s1 t.cs1 (sign *. c.ds1) in
    t.s1 <- s1;
    t.cs1 <- cs1

  let add t ~key entry =
    if Hashtbl.mem t.entries key then
      invalid_arg "Least_waste.Aggregate.add: duplicate key";
    let c = contrib_of t entry in
    Hashtbl.replace t.entries key c;
    accumulate t ~sign:1.0 c

  let remove t ~key =
    match Hashtbl.find_opt t.entries key with
    | None -> ()
    | Some c ->
        Hashtbl.remove t.entries key;
        if Hashtbl.length t.entries = 0 then begin
          (* Drain point: reset exactly, so not even second-order drift
             from a long add/remove history outlives a busy period. *)
          t.a <- 0.0;
          t.ca <- 0.0;
          t.b <- 0.0;
          t.cb <- 0.0;
          t.s1 <- 0.0;
          t.cs1 <- 0.0
        end
        else accumulate t ~sign:(-1.0) c

  let mem t ~key = Hashtbl.mem t.entries key

  let service_time = function
    | Io_entry { service_s; _ } -> service_s
    | Ckpt_entry { ckpt_s; _ } -> ckpt_s

  (* The entry's own Eq. (1)/(2) term, with the same float expression the
     list oracle evaluates (waited/exposed materialized as now − clock). *)
  let term t ~now ~service_s entry =
    match entry with
    | Io_entry { nodes; enqueued_at; _ } ->
        float_of_int nodes *. (now -. enqueued_at +. service_s)
    | Ckpt_entry { nodes; recovery_s; last_commit_end; _ } ->
        let q = float_of_int nodes in
        q *. q /. t.node_mtbf_s
        *. (recovery_s +. (now -. last_commit_end) +. (service_s /. 2.0))

  let total_term t ~now ~service_s =
    (((t.a +. t.ca) *. now) +. (t.b +. t.cb)) +. ((t.s1 +. t.cs1) *. service_s)

  let find t ~key =
    match Hashtbl.find_opt t.entries key with
    | None -> None
    | Some c -> Some c.entry

  let waste t ~now ~key =
    match Hashtbl.find_opt t.entries key with
    | None -> invalid_arg "Least_waste.Aggregate.waste: unknown key"
    | Some c ->
        let v = service_time c.entry in
        v *. (total_term t ~now ~service_s:v -. term t ~now ~service_s:v c.entry)
end

(* Level-aware pools: one {!Aggregate} (one affine A·now + B + S1·v triple)
   per hierarchy level. The inflicted waste of a member is its service time
   times the sum of every level's total term minus its own — at one level
   this degenerates to {!Aggregate.waste} (same floats; the fold seeds with
   0.0 and 0.0 +. x = x), which is what keeps the single-level golden
   traces bit-identical.

   A single-level pool delegates every operation straight to its one
   {!Aggregate}: the grant scan calls [waste] once per pending request, and
   the general path's level lookup, option-returning entry find and float
   fold would put ~5 extra minor words per candidate on the simulator's hot
   path (the bench [tracing] budget polices this). The [level_of] table is
   only maintained — and only consulted — with two or more levels. *)
module Levels = struct
  type t = {
    aggs : Aggregate.t array;
    level_of : (int, int) Hashtbl.t;  (* key → owning level; unused at L = 1 *)
  }

  let create ~node_mtbf_s ~levels =
    if levels <= 0 then
      invalid_arg "Least_waste.Levels.create: levels must be positive";
    {
      aggs = Array.init levels (fun _ -> Aggregate.create ~node_mtbf_s);
      level_of = Hashtbl.create 64;
    }

  let levels t = Array.length t.aggs

  let size t =
    if Array.length t.aggs = 1 then Aggregate.size t.aggs.(0)
    else Hashtbl.length t.level_of

  let mem t ~key =
    if Array.length t.aggs = 1 then Aggregate.mem t.aggs.(0) ~key
    else Hashtbl.mem t.level_of key

  let add t ~key ~level entry =
    if level < 0 || level >= Array.length t.aggs then
      invalid_arg "Least_waste.Levels.add: level out of range";
    if Array.length t.aggs = 1 then Aggregate.add t.aggs.(0) ~key entry
    else begin
      if Hashtbl.mem t.level_of key then
        invalid_arg "Least_waste.Levels.add: duplicate key";
      Aggregate.add t.aggs.(level) ~key entry;
      Hashtbl.replace t.level_of key level
    end

  let remove t ~key =
    if Array.length t.aggs = 1 then Aggregate.remove t.aggs.(0) ~key
    else
      match Hashtbl.find_opt t.level_of key with
      | None -> ()
      | Some l ->
          Hashtbl.remove t.level_of key;
          Aggregate.remove t.aggs.(l) ~key

  let waste t ~now ~key =
    if Array.length t.aggs = 1 then Aggregate.waste t.aggs.(0) ~now ~key
    else
      match Hashtbl.find_opt t.level_of key with
      | None -> invalid_arg "Least_waste.Levels.waste: unknown key"
      | Some l -> (
          match Aggregate.find t.aggs.(l) ~key with
          | None -> assert false
          | Some entry ->
              let v = Aggregate.service_time entry in
              let total =
                Array.fold_left
                  (fun acc agg -> acc +. Aggregate.total_term agg ~now ~service_s:v)
                  0.0 t.aggs
              in
              v *. (total -. Aggregate.term t.aggs.(l) ~now ~service_s:v entry))
end
