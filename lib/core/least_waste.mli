(** The Least-Waste selection heuristic (Equations (1) and (2)).

    Serving candidate [i] for [v] seconds inflicts on every other candidate
    [j] an expected waste:
    {ul
    {- [j] an IO-candidate: [q_j · (d_j + v)] node-seconds of additional
       deterministic idling;}
    {- [j] a Ckpt-candidate: [v/µ_j · q_j · (R_j + d_j + v/2)] expected
       node-seconds — the probability [v/µ_j] that a failure strikes [j]
       during the service window times the recovery-and-rework it would then
       pay (with [µ_j = µ_ind / q_j], this is
       [v · q_j² / µ_ind · (R_j + d_j + v/2)]).}}

    The token goes to the candidate minimising the total waste inflicted on
    the others. *)

val debug_validate : bool ref
(** When set, {!select} runs {!Candidate.validate} on every candidate and
    raises [Invalid_argument] on a malformed one. Off by default: selection
    sits on the simulator's grant hot path and well-formedness is the
    candidate constructor's obligation. Tests flip it on. *)

val inflicted_waste : node_mtbf_s:float -> service_s:float -> self:int -> Candidate.t list -> float
(** [inflicted_waste ~node_mtbf_s ~service_s ~self candidates] is the waste
    [W_i] of Equations (1)/(2): serving for [service_s] seconds, summed over
    every candidate whose key differs from [self]. *)

val select : node_mtbf_s:float -> Candidate.t list -> Candidate.t option
(** The candidate with minimal inflicted waste; ties break towards the
    earliest in the list (FCFS among equals). [None] on an empty list.
    Raises [Invalid_argument] if [node_mtbf_s <= 0], or if any candidate
    fails {!Candidate.validate} while {!debug_validate} is set. O(n²) in
    the candidate count — kept as the differential-testing oracle for the
    O(n) {!Aggregate} path. *)

(** Incremental time-linear aggregates for Least-Waste arbitration.

    Written against absolute clocks (enqueue instant, last-commit instant),
    every candidate's Eq. (1)/(2) term is affine in the evaluation instant
    [now] {e and} in the service time [v] of the candidate under
    consideration, so the pool-wide sum collapses to three scalars

    {v Σ_j term_j(now, v) = A·now + B + S1·v v}

    maintained in O(1) on every {!Aggregate.add}/{!Aggregate.remove}. The
    inflicted waste of member [i] is then recovered by self-exclusion,

    {v W_i = v_i · (A·now + B + S1·v_i − term_i(now, v_i)) v}

    turning a full Least-Waste grant into one O(pool) scan with no
    intermediate candidate list. Per-member terms keep the exact float
    expressions of {!inflicted_waste}; only the summation order differs
    from the list oracle, so results agree to rounding (differentially
    tested, see [lib/sim/lw_reference.ml]). The running sums are reset to
    exact zeros whenever the pool drains, bounding float drift to one busy
    period. *)
module Aggregate : sig
  type t

  type entry =
    | Io_entry of { nodes : int; service_s : float; enqueued_at : float }
        (** A blocked transfer: [waited_s] at evaluation time is
            [now − enqueued_at]. *)
    | Ckpt_entry of {
        nodes : int;
        ckpt_s : float;
        recovery_s : float;
        last_commit_end : float;
      }
        (** A checkpoint request: [exposed_s] at evaluation time is
            [now − last_commit_end]. *)

  val create : node_mtbf_s:float -> t
  (** An empty pool. Raises [Invalid_argument] if [node_mtbf_s <= 0]. *)

  val add : t -> key:int -> entry -> unit
  (** O(1). Raises [Invalid_argument] on a duplicate key. *)

  val add_io : t -> key:int -> nodes:int -> service_s:float -> enqueued_at:float -> unit
  (** [add] of an [Io_entry] without boxing the variant: the fields land
      directly in the pool's flat arrays, so the simulator's per-request
      hot path allocates nothing here. Same duplicate-key contract. *)

  val add_ckpt :
    t ->
    key:int ->
    nodes:int ->
    ckpt_s:float ->
    recovery_s:float ->
    last_commit_end:float ->
    unit
  (** [add] of a [Ckpt_entry] without boxing the variant. *)

  val remove : t -> key:int -> unit
  (** O(1); subtracts exactly the contribution [add] recorded for [key]
      (no-op on unknown keys). *)

  val mem : t -> key:int -> bool
  val size : t -> int

  val service_time : entry -> float
  (** [v_i]: the exclusive service time the entry needs if selected. *)

  val term : t -> now:float -> service_s:float -> entry -> float
  (** The entry's own Eq. (1)/(2) term at [now] under a grant of
      [service_s] seconds — the quantity the aggregates sum. *)

  val total_term : t -> now:float -> service_s:float -> float
  (** [A·now + B + S1·service_s]: Σ term over every current member. *)

  val find : t -> key:int -> entry option
  (** The entry recorded for [key], if any. *)

  val waste : t -> now:float -> key:int -> float
  (** The inflicted waste [W_i] of member [key] at [now]: its service time
      times ({!total_term} minus its own {!term}). Raises
      [Invalid_argument] on an unknown key. *)
end

(** Level-aware Least-Waste pools for checkpoint hierarchies: one
    {!Aggregate} — one affine [A·now + B + S1·v] triple — per hierarchy
    level, so requests targeting different storage levels carry their own
    cost scales while a grant still weighs the waste inflicted on {e every}
    pending request. [waste] with a single level is float-for-float
    {!Aggregate.waste} (property-tested), which keeps single-level golden
    traces bit-identical. *)
module Levels : sig
  type t

  val create : node_mtbf_s:float -> levels:int -> t
  (** [levels] empty per-level pools. Raises [Invalid_argument] unless
      [levels > 0] and [node_mtbf_s > 0]. *)

  val levels : t -> int
  val size : t -> int
  (** Total members across all levels. *)

  val mem : t -> key:int -> bool

  val add : t -> key:int -> level:int -> Aggregate.entry -> unit
  (** O(1). Raises [Invalid_argument] on a duplicate key (across all
      levels) or a level out of range. *)

  val add_io :
    t -> key:int -> level:int -> nodes:int -> service_s:float -> enqueued_at:float -> unit
  (** {!add} of an [Io_entry] without boxing the variant (see
      {!Aggregate.add_io}); same key and level contracts. *)

  val add_ckpt :
    t ->
    key:int ->
    level:int ->
    nodes:int ->
    ckpt_s:float ->
    recovery_s:float ->
    last_commit_end:float ->
    unit
  (** {!add} of a [Ckpt_entry] without boxing the variant. *)

  val remove : t -> key:int -> unit
  (** O(1); no-op on unknown keys. *)

  val waste : t -> now:float -> key:int -> float
  (** [v_i · (Σ_levels total_term − term_i)]. Raises [Invalid_argument] on
      an unknown key. *)
end
