(** The seven I/O-and-checkpoint scheduling strategies of the paper's
    evaluation, plus the failure-free baseline used for normalisation. *)

type period_rule =
  | Fixed of float  (** application-defined fixed period, in seconds *)
  | Daly  (** per-job Young/Daly period *)
  | Optimal
      (** the constrained-optimal periods of Theorem 1 (Equation (8) with
          the numerically solved λ for the platform's steady-state
          workload, with C_i priced at the bandwidth left after regular
          I/O). Essentially [Daly] when the I/O constraint is slack; longer
          (per-class, weighted by q_i²) when bandwidth is scarce.
          This goes beyond the paper's evaluated variants: it tests whether
          feeding the lower bound's periods to the non-blocking scheduler
          closes the remaining gap to the bound. *)

type t =
  | Oblivious of period_rule
      (** uncoordinated I/O: every transfer starts immediately and shares
          bandwidth linearly, weighted by job size *)
  | Ordered of period_rule
      (** blocking FCFS: a single exclusive I/O token, requests served in
          arrival order, jobs idle while waiting *)
  | Ordered_nb of period_rule
      (** non-blocking FCFS: same token, but jobs keep computing while their
          checkpoint request waits; initial input and final output remain
          blocking *)
  | Least_waste
      (** non-blocking; the token goes to the candidate minimising the
          expected waste inflicted on the others (always Daly periods) *)
  | Greedy_exposure
      (** non-blocking; the token goes to the candidate with the largest
          exposure × nodes product — the most node-seconds currently at
          risk — a cheap O(pending) heuristic to contrast with
          [Least_waste]'s O(pending²) inflicted-waste minimisation
          (always Daly periods; beyond the paper's evaluated seven) *)
  | Baseline
      (** no failures, no checkpoints, no interference — the normalisation
          run of Section 6 *)

val default_fixed_period_s : float
(** One hour, the paper's fixed-period heuristic. *)

val paper_seven : t list
(** The seven strategies of Figures 1–3, in the paper's legend order:
    Oblivious-Fixed, Oblivious-Daly, Ordered-Fixed, Ordered-Daly,
    Ordered-NB-Fixed, Ordered-NB-Daly, Least-Waste. *)

val name : t -> string
(** Paper-style name, e.g. ["Ordered-NB-Daly"]. The fixed period is spelled
    out only when it differs from one hour (["Ordered-Fixed(30m)"]). *)

val of_string : string -> (t, string) Stdlib.result
(** Parse a paper-style name (case-insensitive; ["lw"] is accepted for
    Least-Waste). Fixed variants accept an optional [([<n>]h|m|s)] suffix. *)

val is_blocking : t -> bool
(** Whether checkpoint requests suspend computation while waiting
    (Oblivious and Ordered are blocking; the baseline vacuously so). *)

val uses_token : t -> bool
(** Whether I/O is serialised through an exclusive token. *)

val pp : Format.formatter -> t -> unit
