(** A generic discrete-event simulation engine.

    Events are closures scheduled at absolute simulation times; the engine
    pops them in time order, FIFO among equal times (deterministic replay).
    Handlers may schedule and cancel further events freely. *)

type t

type handle
(** An immediate (unboxed) event designator — storing one costs no
    allocation, unlike a [handle option]. *)

val none : handle
(** A handle that never designates a pending event: {!pending} is [false],
    {!cancel} and {!reschedule} are no-ops returning [false]. The "no
    event armed" sentinel for mutable fields that would otherwise pay one
    [Some] allocation per armed event. *)

val is_none : handle -> bool
(** Whether the handle is {!none} (a non-{!none} handle may still have
    fired or been cancelled; {!pending} is the liveness test). *)

val create : ?start:float -> unit -> t
(** A fresh engine with clock at [start] (default 0). *)

val now : t -> float
(** Current simulation time: the timestamp of the event being processed, or
    of the last processed one. Never decreases. *)

val schedule_at : t -> ?kind:int -> time:float -> (t -> unit) -> handle
(** Schedule a callback at absolute [time]. Scheduling in the past (before
    {!now}) raises [Invalid_argument]. [kind] (default 0) is a small
    integer the scheduler carries with the event; it only matters when
    {!attach_stats} has installed counters, which then attribute
    schedule/fire/cancel to the kind — the event loop itself ignores it. *)

val schedule_after : t -> ?kind:int -> delay:float -> (t -> unit) -> handle
(** [schedule_after t ~delay f] = [schedule_at t ~time:(now t +. delay) f].
    Negative delays raise [Invalid_argument]. *)

val cancel : t -> handle -> bool
(** Cancel a pending event. [false] when it already fired or was cancelled;
    idempotent. *)

val reschedule : t -> handle -> time:float -> bool
(** Move a still-pending event to a new absolute [time] in O(log n) without
    the cancel + insert churn (the handle stays valid, and the event keeps
    its FIFO rank among equal times). [false] when the event already fired
    or was cancelled. Rescheduling into the past raises
    [Invalid_argument]. *)

val pending : t -> handle -> bool
(** Whether the event behind the handle is still scheduled. *)

val time_of : t -> handle -> float option
(** Firing time of a still-pending event. *)

val time_is : t -> handle -> time:float -> bool
(** [time_is t h ~time] is [time_of t h = Some time] without the option and
    boxed-float allocation; [false] for fired or cancelled events. *)

val step : t -> bool
(** Process the next event; [false] when the calendar is empty. *)

val run : ?until:float -> t -> unit
(** Process events until the calendar empties, or until the next event lies
    strictly beyond [until] — the clock is then advanced to [until]. *)

val events_processed : t -> int
val queue_length : t -> int

(** {2 Event-churn counters}

    Opt-in telemetry for the exascale profiling work: which event kinds
    dominate scheduling, firing and cancellation. When no stats are
    attached (the default) the event loop pays exactly one [None] branch
    per operation and allocates nothing — the zero-cost-when-off pattern
    of the simulator hooks. *)

type stats

val attach_stats :
  t ->
  kinds:string array ->
  ?tick_every:int ->
  ?on_tick:(t -> unit) ->
  unit ->
  stats
(** Install counters on the engine. [kinds] names the kind indices used by
    the [?kind] argument of the schedule functions; out-of-range kinds
    fold into slot 0. [on_tick] fires inside {!step} after every
    [tick_every] processed events (default: never) — the tracing layer
    hangs periodic counter-track and GC sampling off it. Raises
    [Invalid_argument] on an empty [kinds] or non-positive [tick_every]. *)

val stats : t -> stats option
val stats_scheduled : stats -> int
val stats_fired : stats -> int
val stats_cancelled : stats -> int
val stats_rescheduled : stats -> int

val stats_by_kind : stats -> (string * int * int * int) list
(** Per kind, in [kinds] order: (name, scheduled, fired, cancelled). *)
