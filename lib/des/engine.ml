open Cocheck_util

type t = {
  calendar : (t -> unit) Pqueue.t;
  mutable clock : float;
  mutable processed : int;
  mutable stats : stats option;
}

and stats = {
  kind_names : string array;
  mutable scheduled : int;
  mutable fired : int;
  mutable cancelled : int;
  mutable rescheduled : int;
  by_kind_scheduled : int array;
  by_kind_fired : int array;
  by_kind_cancelled : int array;
  tick_every : int;
  mutable tick_budget : int;
  on_tick : t -> unit;
}

type handle = (t -> unit) Pqueue.handle

let none : handle = Pqueue.null_handle
let is_none = Pqueue.is_null

let create ?(start = 0.0) () =
  { calendar = Pqueue.create (); clock = start; processed = 0; stats = None }

let now t = t.clock

(* Kinds outside [0, Array.length kind_names) fold into slot 0 ("other"),
   so a caller-supplied kind can never crash the counters. *)
let kind_slot st k = if k > 0 && k < Array.length st.kind_names then k else 0

let count_scheduled t kind =
  match t.stats with
  | None -> ()
  | Some st ->
      st.scheduled <- st.scheduled + 1;
      let k = kind_slot st kind in
      st.by_kind_scheduled.(k) <- st.by_kind_scheduled.(k) + 1

let schedule_at t ?(kind = 0) ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g precedes the clock %g" time t.clock);
  count_scheduled t kind;
  Pqueue.add_tagged t.calendar ~priority:time ~tag:kind f

let schedule_after t ?kind ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ?kind ~time:(t.clock +. delay) f

let cancel t h =
  match t.stats with
  | None -> Pqueue.remove t.calendar h
  | Some st ->
      let kind = Pqueue.tag_of t.calendar h in
      let removed = Pqueue.remove t.calendar h in
      if removed then begin
        st.cancelled <- st.cancelled + 1;
        let k = kind_slot st (Option.value kind ~default:0) in
        st.by_kind_cancelled.(k) <- st.by_kind_cancelled.(k) + 1
      end;
      removed

let reschedule t h ~time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.reschedule: time %g precedes the clock %g" time t.clock);
  let moved = Pqueue.update_priority t.calendar h ~priority:time in
  (match t.stats with
  | Some st when moved -> st.rescheduled <- st.rescheduled + 1
  | _ -> ());
  moved

let pending t h = Pqueue.mem t.calendar h
let time_of t h = Pqueue.priority_of t.calendar h
let time_is t h ~time = Pqueue.priority_is t.calendar h time

(* The root is read piecewise and dropped rather than popped: no option,
   tuple or boxed-float allocation per event. *)
let step t =
  if Pqueue.is_empty t.calendar then false
  else begin
    let time = Pqueue.min_priority t.calendar in
    let tag = Pqueue.min_tag t.calendar in
    let f = Pqueue.min_value t.calendar in
    Pqueue.drop_min t.calendar;
    t.clock <- time;
    t.processed <- t.processed + 1;
    (match t.stats with
    | None -> ()
    | Some st ->
        st.fired <- st.fired + 1;
        let k = kind_slot st tag in
        st.by_kind_fired.(k) <- st.by_kind_fired.(k) + 1;
        st.tick_budget <- st.tick_budget - 1;
        if st.tick_budget <= 0 then begin
          st.tick_budget <- st.tick_every;
          st.on_tick t
        end);
    f t;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        if
          (not (Pqueue.is_empty t.calendar))
          && Pqueue.min_priority t.calendar <= horizon
        then ignore (step t)
        else begin
          if t.clock < horizon then t.clock <- horizon;
          continue := false
        end
      done

let events_processed t = t.processed
let queue_length t = Pqueue.length t.calendar

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let attach_stats t ~kinds ?(tick_every = max_int) ?(on_tick = fun _ -> ()) () =
  if Array.length kinds = 0 then invalid_arg "Engine.attach_stats: no kinds";
  if tick_every <= 0 then invalid_arg "Engine.attach_stats: tick_every must be positive";
  let n = Array.length kinds in
  let st =
    {
      kind_names = Array.copy kinds;
      scheduled = 0;
      fired = 0;
      cancelled = 0;
      rescheduled = 0;
      by_kind_scheduled = Array.make n 0;
      by_kind_fired = Array.make n 0;
      by_kind_cancelled = Array.make n 0;
      tick_every;
      tick_budget = tick_every;
      on_tick;
    }
  in
  t.stats <- Some st;
  st

let stats t = t.stats
let stats_scheduled st = st.scheduled
let stats_fired st = st.fired
let stats_cancelled st = st.cancelled
let stats_rescheduled st = st.rescheduled

let stats_by_kind st =
  Array.to_list
    (Array.mapi
       (fun i name ->
         (name, st.by_kind_scheduled.(i), st.by_kind_fired.(i), st.by_kind_cancelled.(i)))
       st.kind_names)
