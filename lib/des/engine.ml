open Cocheck_util

type t = {
  calendar : (t -> unit) Pqueue.t;
  mutable clock : float;
  mutable processed : int;
}

type handle = (t -> unit) Pqueue.handle

let create ?(start = 0.0) () = { calendar = Pqueue.create (); clock = start; processed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g precedes the clock %g" time t.clock);
  Pqueue.add t.calendar ~priority:time f

let schedule_after t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel t h = Pqueue.remove t.calendar h

let reschedule t h ~time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.reschedule: time %g precedes the clock %g" time t.clock);
  Pqueue.update_priority t.calendar h ~priority:time
let pending t h = Pqueue.mem t.calendar h
let time_of t h = Pqueue.priority_of t.calendar h

let step t =
  match Pqueue.pop t.calendar with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      f t;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue = ref true in
      while !continue do
        match Pqueue.peek t.calendar with
        | Some (time, _) when time <= horizon -> ignore (step t)
        | _ ->
            if t.clock < horizon then t.clock <- horizon;
            continue := false
      done

let events_processed t = t.processed
let queue_length t = Pqueue.length t.calendar
