(* Gc.quick_stat is cheap (no heap traversal), so delta probes can ride
   the engine's tick hook at event granularity without perturbing the
   run being measured. *)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (* absolute, not a delta *)
}

(* quick_stat's minor_words only advances at minor collections (OCaml 5),
   which would report 0 allocation for any interval shorter than a minor
   cycle; Gc.minor_words reads the live allocation pointer instead. *)
type gc_probe = { mutable last : Gc.stat; mutable last_minor : float }

let gc_probe () = { last = Gc.quick_stat (); last_minor = Gc.minor_words () }

let gc_sample p =
  let s = Gc.quick_stat () in
  let minor = Gc.minor_words () in
  let d =
    {
      minor_words = minor -. p.last_minor;
      promoted_words = s.Gc.promoted_words -. p.last.Gc.promoted_words;
      major_words = s.Gc.major_words -. p.last.Gc.major_words;
      minor_collections = s.Gc.minor_collections - p.last.Gc.minor_collections;
      major_collections = s.Gc.major_collections - p.last.Gc.major_collections;
      compactions = s.Gc.compactions - p.last.Gc.compactions;
      heap_words = s.Gc.heap_words;
    }
  in
  p.last <- s;
  p.last_minor <- minor;
  d

let gc_delta_values d =
  [
    ("minor_words", d.minor_words);
    ("promoted_words", d.promoted_words);
    ("major_words", d.major_words);
    ("minor_collections", float_of_int d.minor_collections);
    ("major_collections", float_of_int d.major_collections);
  ]

(* ------------------------------------------------------------------ *)
(* Process metrics registry                                             *)
(* ------------------------------------------------------------------ *)

type metric = { m_name : string; kind : [ `Counter | `Gauge ]; mutable value : float }
type registry = { mutex : Mutex.t; mutable metrics : metric list (* reversed *) }

type counter = metric
type gauge = metric

let registry () = { mutex = Mutex.create (); metrics = [] }

let find_or_add reg name kind =
  Mutex.lock reg.mutex;
  let m =
    match List.find_opt (fun m -> m.m_name = name) reg.metrics with
    | Some m ->
        if m.kind <> kind then begin
          Mutex.unlock reg.mutex;
          invalid_arg
            (Printf.sprintf "Runtime: metric %S already registered with another kind" name)
        end;
        m
    | None ->
        let m = { m_name = name; kind; value = 0.0 } in
        reg.metrics <- m :: reg.metrics;
        m
  in
  Mutex.unlock reg.mutex;
  m

let counter reg name = find_or_add reg name `Counter
let gauge reg name = find_or_add reg name `Gauge

(* Mutation races (two domains bumping one counter) are resolved by the
   registry mutex; reads during snapshot take it too. *)
let incr reg (c : counter) ?(by = 1.0) () =
  Mutex.lock reg.mutex;
  c.value <- c.value +. by;
  Mutex.unlock reg.mutex

let set reg (g : gauge) v =
  Mutex.lock reg.mutex;
  g.value <- v;
  Mutex.unlock reg.mutex

let value (m : metric) = m.value
let gauge_value = value
let metric_name (m : metric) = m.m_name

let snapshot reg =
  Mutex.lock reg.mutex;
  let r = List.rev_map (fun m -> (m.m_name, m.value)) reg.metrics in
  Mutex.unlock reg.mutex;
  r

let to_json reg =
  Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (snapshot reg))
