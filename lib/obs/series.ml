type t = {
  fields : string list;
  arity : int;
  capacity : int;
  t_min : float;
  t_max : float;
  buffer : (float * float array) option array;
  mutable next : int;
  mutable total : int;  (* rows ever accepted *)
  mutable clipped : int;
}

let create ?(capacity = 100_000) ?(t_min = neg_infinity) ?(t_max = infinity) ~fields () =
  if fields = [] then invalid_arg "Series.create: no fields";
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  if t_min > t_max then invalid_arg "Series.create: empty time window";
  {
    fields;
    arity = List.length fields;
    capacity;
    t_min;
    t_max;
    buffer = Array.make capacity None;
    next = 0;
    total = 0;
    clipped = 0;
  }

let fields t = t.fields

let push t ~time values =
  if Array.length values <> t.arity then
    invalid_arg "Series.push: row arity does not match fields";
  if time < t.t_min || time > t.t_max then t.clipped <- t.clipped + 1
  else begin
    t.buffer.(t.next) <- Some (time, Array.copy values);
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)
let clipped t = t.clipped

let rows t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some r -> r
      | None -> assert false)

let field_index t field =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Series: unknown field %S" field)
    | f :: _ when f = field -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.fields

let column t ~field =
  let i = field_index t field in
  List.map (fun (time, row) -> (time, row.(i))) (rows t)

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  List.iter
    (fun f ->
      Buffer.add_char buf ',';
      Buffer.add_string buf f)
    t.fields;
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, row) ->
      Buffer.add_string buf (Printf.sprintf "%.6g" time);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%.6g" v)) row;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let spark_glyphs = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline t ~field ~width =
  if width <= 0 then invalid_arg "Series.sparkline: width must be positive";
  let pts = List.filter (fun (_, v) -> Float.is_finite v) (column t ~field) in
  match pts with
  | [] -> String.concat "" (List.init width (fun _ -> " "))
  | pts ->
      let n = List.length pts in
      let arr = Array.of_list (List.map snd pts) in
      let vmin = Array.fold_left Float.min arr.(0) arr in
      let vmax = Array.fold_left Float.max arr.(0) arr in
      let span = if vmax > vmin then vmax -. vmin else 1.0 in
      let buf = Buffer.create (width * 3) in
      for c = 0 to width - 1 do
        (* Average the samples falling into this cell; carry the previous
           cell's value across gaps so the strip stays continuous. *)
        let i0 = c * n / width and i1 = max (c * n / width) (((c + 1) * n / width) - 1) in
        let acc = ref 0.0 and cnt = ref 0 in
        for i = i0 to min i1 (n - 1) do
          acc := !acc +. arr.(i);
          incr cnt
        done;
        let v = if !cnt > 0 then !acc /. float_of_int !cnt else arr.(min i0 (n - 1)) in
        let level = 1 + int_of_float ((v -. vmin) /. span *. 7.0) in
        Buffer.add_string buf spark_glyphs.(max 1 (min 8 level))
      done;
      Buffer.contents buf

let to_plot t ~field =
  { Cocheck_util.Ascii_plot.label = field; points = column t ~field }
