(** Log-bucketed histograms and a named registry.

    Contention effects live in tails — token waits, commit durations,
    dilation factors span orders of magnitude — so buckets grow
    geometrically: an underflow bucket for values below [lo] (zero and
    negative values land there too), [buckets] buckets with boundaries
    [lo·ratio^i], and an overflow bucket above the top boundary. Counts and
    the value sum are exact; quantiles interpolate within a bucket. *)

type t

val create : ?lo:float -> ?ratio:float -> ?buckets:int -> name:string -> unit_label:string -> unit -> t
(** Defaults: [lo = 1.0], [ratio = 2.0], [buckets = 32] (top boundary
    [lo·2^32 ≈ 4.3e9]). Requires [lo > 0], [ratio > 1], [buckets > 0]. *)

val name : t -> string
val unit_label : t -> string

val add : t -> float -> unit
(** Non-finite values are dropped (counted in {!dropped}). *)

val count : t -> int
(** Finite values observed (underflow and overflow included). *)

val dropped : t -> int
val underflow : t -> int
val overflow : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
val max_value : t -> float
(** Extremes of the finite values observed; [nan] when empty. *)

val bucket_bounds : t -> i:int -> float * float
(** Boundaries of regular bucket [i] in [0, buckets): [lo·ratio^i,
    lo·ratio^(i+1)). *)

val counts : t -> int array
(** Regular bucket counts (length [buckets]); excludes under/overflow. *)

val quantile : t -> float -> float
(** Approximate quantile for q in [0,1]: linear interpolation inside the
    bucket holding the target rank; underflow resolves to the observed
    minimum, overflow to the observed maximum. [nan] when empty. *)

val quantile_summary : t -> (float * float) list
(** The standard latency quantiles [(0.5, p50); (0.95, p95); (0.99, p99)]
    — what the dashboard's summary table and alerting thresholds read. *)

val render : ?max_rows:int -> t -> string
(** ASCII bar chart of the populated buckets (up to [max_rows], default 12,
    keeping the most populated), with count, mean, p50/p95/p99 header. *)

val to_json : t -> Json.t

(** {2 Registry} — named histograms and monotone counters, in creation
    order, so the simulator's instrumentation hooks and the dashboard can
    share one handle. *)

type registry

val registry : unit -> registry

val hist :
  registry -> ?lo:float -> ?ratio:float -> ?buckets:int -> name:string -> unit_label:string -> unit -> t
(** Find-or-create by name (creation parameters are ignored for an
    existing histogram). *)

val incr : registry -> string -> ?by:float -> unit -> unit
(** Bump a named counter (created at 0 on first use). *)

val counters : registry -> (string * float) list
val hists : registry -> t list
val registry_to_json : registry -> Json.t
