(** The standard simulator instrumentation: wires
    {!Cocheck_sim.Simulator.hooks} into a {!Histogram.registry}. *)

val standard : Histogram.registry -> Cocheck_sim.Simulator.hooks
(** Hooks feeding four histograms (created in the registry on first call):
    {ul
    {- [token_wait_s] — request-to-grant latency of token grants}
    {- [ckpt_io_s] — wall-clock duration of committed checkpoint transfers}
    {- [io_dilation_x] — actual over nominal duration of regular transfers
       (1.0 = no interference)}
    {- [lost_work_s] — work seconds rolled back per kill}}
    plus a [kills] counter. *)
