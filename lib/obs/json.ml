type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

(* Shortest decimal that round-trips; integers render without exponent. *)
let float_repr x =
  if Float.is_nan x then "\"nan\""
  else if x = infinity then "\"inf\""
  else if x = neg_infinity then "\"-inf\""
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> to_buffer buf v
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            go (depth + 1) v)
          items;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            add_escaped buf k;
            Buffer.add_string buf ": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 5;
                   (* Encode the code point as UTF-8 (BMP only: surrogate
                      pairs from escapes are passed through unpaired). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let body = String.sub s start (!pos - start) in
    match int_of_string_opt body with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt body with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" body))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, at) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "nan" -> Some Float.nan
  | String "inf" -> Some infinity
  | String "-inf" -> Some neg_infinity
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
