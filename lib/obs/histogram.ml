type t = {
  name : string;
  unit_label : string;
  lo : float;
  ratio : float;
  log_ratio : float;
  nbuckets : int;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable n : int;
  mutable dropped : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1.0) ?(ratio = 2.0) ?(buckets = 32) ~name ~unit_label () =
  if lo <= 0.0 then invalid_arg "Histogram.create: lo must be positive";
  if ratio <= 1.0 then invalid_arg "Histogram.create: ratio must exceed 1";
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  {
    name;
    unit_label;
    lo;
    ratio;
    log_ratio = log ratio;
    nbuckets = buckets;
    counts = Array.make buckets 0;
    under = 0;
    over = 0;
    n = 0;
    dropped = 0;
    sum = 0.0;
    vmin = nan;
    vmax = nan;
  }

let name t = t.name
let unit_label t = t.unit_label

let bucket_index t v =
  (* Bucket i covers [lo·ratio^i, lo·ratio^(i+1)). *)
  int_of_float (Float.floor (log (v /. t.lo) /. t.log_ratio))

let add t v =
  if not (Float.is_finite v) then t.dropped <- t.dropped + 1
  else begin
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if Float.is_nan t.vmin || v < t.vmin then t.vmin <- v;
    if Float.is_nan t.vmax || v > t.vmax then t.vmax <- v;
    if v < t.lo then t.under <- t.under + 1
    else
      let i = bucket_index t v in
      (* Float.floor of a boundary value can land one off under rounding;
         clamp into range. *)
      let i = max 0 i in
      if i >= t.nbuckets then t.over <- t.over + 1 else t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.n
let dropped t = t.dropped
let underflow t = t.under
let overflow t = t.over
let sum t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_value t = t.vmin
let max_value t = t.vmax

let bucket_bounds t ~i =
  if i < 0 || i >= t.nbuckets then invalid_arg "Histogram.bucket_bounds";
  (t.lo *. (t.ratio ** float_of_int i), t.lo *. (t.ratio ** float_of_int (i + 1)))

let counts t = Array.copy t.counts

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.n = 0 then nan
  else begin
    let target = q *. float_of_int t.n in
    let rank = ref 0.0 in
    let result = ref nan in
    if float_of_int t.under >= target && t.under > 0 then result := t.vmin
    else begin
      rank := float_of_int t.under;
      (try
         for i = 0 to t.nbuckets - 1 do
           let c = float_of_int t.counts.(i) in
           if c > 0.0 && !rank +. c >= target then begin
             let blo, bhi = bucket_bounds t ~i in
             let frac = (target -. !rank) /. c in
             result := blo +. (frac *. (bhi -. blo));
             raise Exit
           end;
           rank := !rank +. c
         done;
         (* Target falls in the overflow bucket (or rounding tail). *)
         result := t.vmax
       with Exit -> ())
    end;
    (* Never report beyond the observed extremes. *)
    Float.min t.vmax (Float.max t.vmin !result)
  end

let quantile_summary t =
  List.map (fun q -> (q, quantile t q)) [ 0.5; 0.95; 0.99 ]

let render ?(max_rows = 12) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s (%s): n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g\n"
       t.name t.unit_label t.n (mean t) (quantile t 0.5) (quantile t 0.95)
       (quantile t 0.99) t.vmax);
  if t.n > 0 then begin
    let rows = ref [] in
    if t.under > 0 then rows := (Printf.sprintf "< %.3g" t.lo, t.under) :: !rows;
    for i = 0 to t.nbuckets - 1 do
      if t.counts.(i) > 0 then begin
        let blo, bhi = bucket_bounds t ~i in
        rows := (Printf.sprintf "%.3g–%.3g" blo bhi, t.counts.(i)) :: !rows
      end
    done;
    if t.over > 0 then
      rows :=
        (Printf.sprintf ">= %.3g" (t.lo *. (t.ratio ** float_of_int t.nbuckets)), t.over)
        :: !rows;
    let rows = List.rev !rows in
    let rows =
      if List.length rows <= max_rows then rows
      else begin
        (* Keep the most populated buckets, preserving order. *)
        let sorted = List.sort (fun (_, a) (_, b) -> compare b a) rows in
        let keep = List.filteri (fun i _ -> i < max_rows) sorted in
        List.filter (fun r -> List.memq r keep) rows
      end
    in
    let peak = List.fold_left (fun acc (_, c) -> max acc c) 1 rows in
    let lwidth = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
    List.iter
      (fun (label, c) ->
        let bar = max 1 (c * 40 / peak) in
        Buffer.add_string buf
          (Printf.sprintf "  %-*s %8d %s\n" lwidth label c (String.make bar '#')))
      rows
  end;
  Buffer.contents buf

let to_json t =
  let buckets =
    List.filter_map
      (fun i ->
        if t.counts.(i) = 0 then None
        else
          let blo, bhi = bucket_bounds t ~i in
          Some (Json.Obj [ ("lo", Json.Float blo); ("hi", Json.Float bhi); ("count", Json.Int t.counts.(i)) ]))
      (List.init t.nbuckets Fun.id)
  in
  Json.Obj
    [
      ("name", Json.String t.name);
      ("unit", Json.String t.unit_label);
      ("count", Json.Int t.n);
      ("underflow", Json.Int t.under);
      ("overflow", Json.Int t.over);
      ("sum", Json.Float t.sum);
      ("mean", Json.Float (mean t));
      ("min", Json.Float t.vmin);
      ("max", Json.Float t.vmax);
      ("p50", Json.Float (quantile t 0.5));
      ("p90", Json.Float (quantile t 0.9));
      ("p95", Json.Float (quantile t 0.95));
      ("p99", Json.Float (quantile t 0.99));
      ("buckets", Json.List buckets);
    ]

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

type registry = {
  mutable hists : t list;  (* reversed creation order *)
  counters : (string, float ref) Hashtbl.t;
  mutable counter_order : string list;  (* reversed *)
}

let registry () = { hists = []; counters = Hashtbl.create 8; counter_order = [] }

let hist reg ?lo ?ratio ?buckets ~name ~unit_label () =
  match List.find_opt (fun h -> h.name = name) reg.hists with
  | Some h -> h
  | None ->
      let h = create ?lo ?ratio ?buckets ~name ~unit_label () in
      reg.hists <- h :: reg.hists;
      h

let incr reg name ?(by = 1.0) () =
  match Hashtbl.find_opt reg.counters name with
  | Some r -> r := !r +. by
  | None ->
      Hashtbl.add reg.counters name (ref by);
      reg.counter_order <- name :: reg.counter_order

let counters reg =
  List.rev_map (fun n -> (n, !(Hashtbl.find reg.counters n))) reg.counter_order

let hists reg = List.rev reg.hists

let registry_to_json reg =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (counters reg)));
      ("histograms", Json.List (List.map to_json (hists reg)));
    ]
