type arg = Str of string | Num of float

type event =
  | Slice of {
      name : string;
      cat : string;
      track : int;
      ts_us : float;
      dur_us : float;
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      track : int;
      ts_us : float;
      args : (string * arg) list;
    }
  | Counter of { name : string; ts_us : float; values : (string * float) list }
  | Track_name of { track : int; name : string }

let ts_us = function
  | Slice s -> s.ts_us
  | Instant i -> i.ts_us
  | Counter c -> c.ts_us
  | Track_name _ -> 0.0

let track = function
  | Slice s -> Some s.track
  | Instant i -> Some i.track
  | Counter _ -> None
  | Track_name t -> Some t.track

(* ------------------------------------------------------------------ *)
(* Chrome trace_event / Perfetto encoding                               *)
(* ------------------------------------------------------------------ *)

let arg_to_json = function Str s -> Json.String s | Num v -> Json.Float v

let args_to_json args = Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)

(* The JSON-array-of-objects flavour of the trace_event format: each event
   is one object with a "ph" phase letter. Perfetto and chrome://tracing
   both load it directly. Durations use the "X" complete-event phase (one
   object instead of a B/E pair), counters the "C" phase, track names the
   "M" thread_name metadata record. *)
let to_trace_event ~pid = function
  | Slice { name; cat; track; ts_us; dur_us; args } ->
      Json.Obj
        ([
           ("name", Json.String name);
           ("cat", Json.String cat);
           ("ph", Json.String "X");
           ("ts", Json.Float ts_us);
           ("dur", Json.Float dur_us);
           ("pid", Json.Int pid);
           ("tid", Json.Int track);
         ]
        @ if args = [] then [] else [ ("args", args_to_json args) ])
  | Instant { name; cat; track; ts_us; args } ->
      Json.Obj
        ([
           ("name", Json.String name);
           ("cat", Json.String cat);
           ("ph", Json.String "i");
           ("ts", Json.Float ts_us);
           ("s", Json.String "t");
           ("pid", Json.Int pid);
           ("tid", Json.Int track);
         ]
        @ if args = [] then [] else [ ("args", args_to_json args) ])
  | Counter { name; ts_us; values } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("ph", Json.String "C");
          ("ts", Json.Float ts_us);
          ("pid", Json.Int pid);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values));
        ]
  | Track_name { track; name } ->
      Json.Obj
        [
          ("name", Json.String "thread_name");
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int track);
          ("args", Json.Obj [ ("name", Json.String name) ]);
        ]

let args_of_json j =
  match j with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.String s -> Some (k, Str s)
          | Json.Int _ | Json.Float _ ->
              Option.map (fun f -> (k, Num f)) (Json.to_float_opt v)
          | _ -> None)
        kvs
  | _ -> []

let of_trace_event j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match str "ph" with
  | Some "X" -> (
      match (str "name", num "ts", num "dur", int "tid") with
      | Some name, Some ts_us, Some dur_us, Some track ->
          Some
            (Slice
               {
                 name;
                 cat = Option.value (str "cat") ~default:"";
                 track;
                 ts_us;
                 dur_us;
                 args = args_of_json (Json.member "args" j);
               })
      | _ -> None)
  | Some "i" -> (
      match (str "name", num "ts", int "tid") with
      | Some name, Some ts_us, Some track ->
          Some
            (Instant
               {
                 name;
                 cat = Option.value (str "cat") ~default:"";
                 track;
                 ts_us;
                 args = args_of_json (Json.member "args" j);
               })
      | _ -> None)
  | Some "C" -> (
      match (str "name", num "ts") with
      | Some name, Some ts_us ->
          let values =
            match Json.member "args" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v))
                  kvs
            | _ -> []
          in
          Some (Counter { name; ts_us; values })
      | _ -> None)
  | Some "M" -> (
      match (str "name", int "tid") with
      | Some "thread_name", Some track -> (
          match args_of_json (Json.member "args" j) with
          | [ ("name", Str name) ] -> Some (Track_name { track; name })
          | _ -> None)
      | _ -> None)
  | _ -> None

let export ?(pid = 1) ?process_name events =
  let meta =
    match process_name with
    | None -> []
    | Some name ->
        [
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("args", Json.Obj [ ("name", Json.String name) ]);
            ];
        ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map (to_trace_event ~pid) events));
      ("displayTimeUnit", Json.String "ms");
    ]

let of_export j =
  match Option.bind (Json.member "traceEvents" j) Json.to_list_opt with
  | None -> Error "missing traceEvents array"
  | Some evs -> Ok (List.filter_map of_trace_event evs)
