module Engine = Cocheck_des.Engine
module Pool = Cocheck_parallel.Pool

type t = {
  mutex : Mutex.t;
  capacity : int;
  mutable events : Span.event list;  (* reversed *)
  mutable length : int;
  mutable dropped : int;
  origin_us : float;
}

(* The sentinel: every recording entry point first checks physical
   equality against [disabled] and returns — the same
   zero-cost-when-off contract as [Simulator.no_hooks] and
   [Pool.no_telemetry]. The sentinel is never mutated. *)
let disabled =
  {
    mutex = Mutex.create ();
    capacity = 0;
    events = [];
    length = 0;
    dropped = 0;
    origin_us = 0.0;
  }

let create ?(capacity = 4_000_000) () =
  if capacity <= 0 then invalid_arg "Tracing.create: capacity must be positive";
  {
    mutex = Mutex.create ();
    capacity;
    events = [];
    length = 0;
    dropped = 0;
    origin_us = Unix.gettimeofday () *. 1e6;
  }

let is_enabled t = t != disabled

(* Wall clock relative to the tracer origin, clamped non-negative so a
   backwards NTP step cannot produce negative timestamps. Span durations
   are differences of two captures and are clamped in [end_span]. *)
let now_us t = Float.max 0.0 ((Unix.gettimeofday () *. 1e6) -. t.origin_us)

let domain_track () = (Domain.self () :> int)

let record t ev =
  if t != disabled then begin
    Mutex.lock t.mutex;
    if t.length < t.capacity then begin
      t.events <- ev :: t.events;
      t.length <- t.length + 1
    end
    else t.dropped <- t.dropped + 1;
    Mutex.unlock t.mutex
  end

type token = { tk_name : string; tk_cat : string; tk_track : int; tk_ts : float }

let null_token = { tk_name = ""; tk_cat = ""; tk_track = 0; tk_ts = nan }

let begin_span t ?(cat = "") ?track name =
  if t == disabled then null_token
  else
    let track = match track with Some tr -> tr | None -> domain_track () in
    { tk_name = name; tk_cat = cat; tk_track = track; tk_ts = now_us t }

let end_span t ?(args = []) tk =
  if t != disabled && not (Float.is_nan tk.tk_ts) then
    record t
      (Span.Slice
         {
           name = tk.tk_name;
           cat = tk.tk_cat;
           track = tk.tk_track;
           ts_us = tk.tk_ts;
           dur_us = Float.max 0.0 (now_us t -. tk.tk_ts);
           args;
         })

let span t ?cat ?track ?(args = []) name f =
  if t == disabled then f ()
  else begin
    let tk = begin_span t ?cat ?track name in
    match f () with
    | v ->
        end_span t ~args tk;
        v
    | exception e ->
        end_span t ~args:(("exception", Span.Str (Printexc.to_string e)) :: args) tk;
        raise e
  end

let instant t ?(cat = "") ?track ?(args = []) name =
  if t != disabled then
    let track = match track with Some tr -> tr | None -> domain_track () in
    record t (Span.Instant { name; cat; track; ts_us = now_us t; args })

let counter t name values =
  if t != disabled then record t (Span.Counter { name; ts_us = now_us t; values })

let name_track t ~track name =
  if t != disabled then record t (Span.Track_name { track; name })

(* ------------------------------------------------------------------ *)
(* Reading back                                                         *)
(* ------------------------------------------------------------------ *)

let events t =
  Mutex.lock t.mutex;
  let evs = List.rev t.events in
  Mutex.unlock t.mutex;
  evs

let length t = t.length
let dropped t = t.dropped

(* Stable sort by timestamp: recording order breaks ties, so one track's
   events keep their causal order even at equal clock readings. *)
let sorted_events t =
  List.stable_sort (fun a b -> Float.compare (Span.ts_us a) (Span.ts_us b)) (events t)

let to_json ?process_name t = Span.export ?process_name (sorted_events t)

let write ~path ?process_name t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ?process_name t));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Wiring: DES engine                                                   *)
(* ------------------------------------------------------------------ *)

let instrument_engine t ?(prefix = "engine") ?(every = 5_000) ?(gc = true)
    ~kinds engine =
  if t == disabled then fun () -> ()
  else begin
    let probe = if gc then Some (Runtime.gc_probe ()) else None in
    let emit eng =
      let st = Option.get (Engine.stats eng) in
      counter t (prefix ^ "/fired")
        (List.map (fun (k, _, fired, _) -> (k, float_of_int fired))
           (Engine.stats_by_kind st));
      counter t (prefix ^ "/cancelled")
        [ ("cancelled", float_of_int (Engine.stats_cancelled st)) ];
      counter t (prefix ^ "/queue")
        [ ("pending", float_of_int (Engine.queue_length eng)) ];
      match probe with
      | None -> ()
      | Some p ->
          counter t (prefix ^ "/gc") (Runtime.gc_delta_values (Runtime.gc_sample p))
    in
    let _st = Engine.attach_stats engine ~kinds ~tick_every:every ~on_tick:emit () in
    fun () -> emit engine
  end

(* ------------------------------------------------------------------ *)
(* Wiring: worker pool                                                  *)
(* ------------------------------------------------------------------ *)

let pool_telemetry t ?registry () =
  if t == disabled then Pool.no_telemetry
  else begin
    let hist_mutex = Mutex.create () in
    let wait_hist =
      Option.map
        (fun reg ->
          Histogram.hist reg ~lo:1e-6 ~ratio:4.0 ~buckets:16 ~name:"pool_queue_wait_s"
            ~unit_label:"s" ())
        registry
    in
    let tasks_done = Atomic.make 0 in
    let named = Hashtbl.create 8 in
    let named_mutex = Mutex.create () in
    let ensure_named worker =
      Mutex.lock named_mutex;
      if not (Hashtbl.mem named worker) then begin
        Hashtbl.add named worker ();
        name_track t ~track:worker (Printf.sprintf "worker-%d" worker)
      end;
      Mutex.unlock named_mutex
    in
    {
      Pool.on_task =
        (fun ~worker ~queued_s ~ran_s ->
          ensure_named worker;
          let t1 = now_us t in
          let n = 1 + Atomic.fetch_and_add tasks_done 1 in
          record t
            (Span.Slice
               {
                 name = "task";
                 cat = "pool";
                 track = worker;
                 ts_us = Float.max 0.0 (t1 -. (ran_s *. 1e6));
                 dur_us = ran_s *. 1e6;
                 args = [ ("queued_s", Span.Num queued_s) ];
               });
          counter t "pool/throughput" [ ("tasks_done", float_of_int n) ];
          Option.iter
            (fun h ->
              Mutex.lock hist_mutex;
              Histogram.add h queued_s;
              Mutex.unlock hist_mutex)
            wait_hist);
      on_idle =
        (fun ~worker ~idle_s ->
          (* Sub-100µs waits are queue-pop noise, not idleness; skipping
             them keeps lanes legible and the buffer small. *)
          if idle_s >= 1e-4 then begin
            ensure_named worker;
            let t1 = now_us t in
            record t
              (Span.Slice
                 {
                   name = "idle";
                   cat = "pool";
                   track = worker;
                   ts_us = Float.max 0.0 (t1 -. (idle_s *. 1e6));
                   dur_us = idle_s *. 1e6;
                   args = [];
                 })
          end);
    }
  end
