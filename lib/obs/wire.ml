type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  (* Progress frames stream from pool workers while the reply is written
     by the connection's own thread; one mutex per connection keeps every
     frame an intact line. *)
  wmutex : Mutex.t;
}

let of_fd fd =
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    wmutex = Mutex.create ();
  }

let send t json =
  Mutex.lock t.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.wmutex)
    (fun () ->
      output_string t.oc (Json.to_string json);
      output_char t.oc '\n';
      (* One flush per frame: a client must see progress while the
         campaign runs, not when the buffer happens to fill. *)
      flush t.oc)

let recv t =
  match input_line t.ic with
  | "" -> Some (Error "empty frame")
  | line -> Some (Json.of_string line)
  | exception End_of_file -> None

let shutdown t = try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close t =
  (* The two channels share one descriptor, and closing both would close
     it twice — under threads the second close can land on a reused
     descriptor number and kill a foreign connection. Flush, then close
     the descriptor exactly once; the channels are never touched again. *)
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
