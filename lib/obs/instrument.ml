let standard reg =
  let token = Histogram.hist reg ~lo:0.1 ~name:"token_wait_s" ~unit_label:"s" () in
  let ckpt = Histogram.hist reg ~lo:1.0 ~name:"ckpt_io_s" ~unit_label:"s" () in
  let dilation =
    Histogram.hist reg ~lo:1.0 ~ratio:1.25 ~name:"io_dilation_x" ~unit_label:"x" ()
  in
  let lost = Histogram.hist reg ~lo:1.0 ~name:"lost_work_s" ~unit_label:"s" () in
  {
    Cocheck_sim.Simulator.on_token_wait = Histogram.add token;
    on_ckpt_duration = Histogram.add ckpt;
    on_io_dilation = Histogram.add dilation;
    on_lost_work =
      (fun v ->
        Histogram.incr reg "kills" ();
        Histogram.add lost v);
  }
