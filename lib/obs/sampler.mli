(** The standard platform time series: adapts {!Cocheck_sim.Simulator}
    snapshots into a {!Series} with a fixed, documented column set.

    Columns (beyond [time], all floats):
    {ul
    {- [bw_util] — granted PFS rate over aggregate bandwidth, in [0,1]}
    {- [io_flows] — concurrent PFS transfers}
    {- [token_queue] — pending token requests (checkpoint + blocking I/O)}
    {- [free_nodes], [used_nodes]}
    {- [queued_jobs] — submissions waiting for an allocation}
    {- [running], [computing], [in_io], [waiting] — instances per
       lifecycle state}
    {- [progress_ns], [waste_ns] — cumulative segment-clipped node-seconds}
    {- [waste_<kind>] — cumulative node-seconds per waste
       {!Cocheck_sim.Metrics.kind} (progress kinds excluded)}} *)

val fields : string list
(** Column names in CSV order (without the leading [time]). *)

val create :
  ?capacity:int ->
  ?t_min:float ->
  ?t_max:float ->
  unit ->
  Series.t * (Cocheck_sim.Simulator.snapshot -> unit)
(** A fresh series and the observer to pass as {!Cocheck_sim.Simulator.run}'s
    [sample] callback. [t_min]/[t_max] clip samples to a measurement
    window (e.g. the config's segment). *)

val default_dt : Cocheck_sim.Config.t -> float
(** A probe interval giving a few hundred samples over the config's
    horizon (horizon / 400, at least 1 s). *)
