type phase = { name : string; mutable seconds : float; mutable calls : int }
type t = { mutable order : phase list (* reversed *) }

let create () = { order = [] }

let find_or_add t name =
  match List.find_opt (fun p -> p.name = name) t.order with
  | Some p -> p
  | None ->
      let p = { name; seconds = 0.0; calls = 0 } in
      t.order <- p :: t.order;
      p

let record t ~name ~seconds =
  if seconds < 0.0 then invalid_arg "Timer.record: negative duration";
  let p = find_or_add t name in
  p.seconds <- p.seconds +. seconds;
  p.calls <- p.calls + 1

let time t ~name f =
  let t0 = Unix.gettimeofday () in
  let finish () = record t ~name ~seconds:(Unix.gettimeofday () -. t0) in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

let phases t = List.rev_map (fun p -> (p.name, p.seconds, p.calls)) t.order
let total_s t = List.fold_left (fun acc p -> acc +. p.seconds) 0.0 t.order

let render t =
  let ps = phases t in
  let total = total_s t in
  let width =
    List.fold_left (fun acc (n, _, _) -> max acc (String.length n)) 5 ps
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %10s %6s %6s\n" width "phase" "seconds" "share" "calls");
  List.iter
    (fun (name, s, calls) ->
      let share = if total > 0.0 then 100.0 *. s /. total else 0.0 in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %10.2f %5.1f%% %6d\n" width name s share calls))
    ps;
  Buffer.add_string buf (Printf.sprintf "%-*s %10.2f\n" width "total" total);
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ( "phases",
        Json.List
          (List.map
             (fun (name, seconds, calls) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("seconds", Json.Float seconds);
                   ("calls", Json.Int calls);
                 ])
             (phases t)) );
      ("total_s", Json.Float (total_s t));
    ]
