(** JSONL framing over a socket (or any) file descriptor: one compact
    JSON value per [\n]-terminated line, the campaign service's wire
    format. {!Json.to_string} never emits newlines, so frames cannot
    split; reads use the runtime's buffered channel, so a partial line
    (writer mid-frame) simply blocks until its newline arrives. *)

type t

val of_fd : Unix.file_descr -> t
(** Wrap a connected descriptor. The wrapper owns the descriptor:
    {!close} closes it. *)

val send : t -> Json.t -> unit
(** Write one frame and flush. Thread-safe per connection — progress
    frames from worker domains interleave with replies line-atomically. *)

val recv : t -> (Json.t, string) result option
(** Read one frame. [None] at EOF (peer closed), [Some (Error _)] on a
    malformed line (the connection stays usable). Not thread-safe: one
    reader per connection. *)

val shutdown : t -> unit
(** Shut both directions down without closing the descriptor, waking a
    thread blocked in {!recv} with EOF (how the server unsticks idle
    client connections at shutdown). Safe to call from another thread. *)

val close : t -> unit
(** Flush and close the descriptor. *)
