module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Strategy = Cocheck_core.Strategy
module Platform = Cocheck_model.Platform

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let rule = String.make 64 '-'

let waste_bars ?(width = 40) by_kind =
  let wastes =
    List.filter (fun (k, v) -> (not (Metrics.is_progress k)) && v > 0.0) by_kind
  in
  let buf = Buffer.create 256 in
  (match wastes with
  | [] -> Buffer.add_string buf "  (no waste recorded)\n"
  | _ ->
      let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 wastes in
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 wastes in
      List.iter
        (fun (k, v) ->
          let n =
            if vmax > 0.0 then
              max 1 (int_of_float (Float.round (v /. vmax *. float_of_int width)))
            else 0
          in
          buf_addf buf "  %-12s %-*s %11.4g ns  %5.1f%%\n" (Metrics.kind_name k)
            width (String.make n '#') v
            (100.0 *. v /. total))
        wastes);
  Buffer.contents buf

let spark_row buf series field ~width =
  match Series.sparkline series ~field ~width with
  | exception Invalid_argument _ -> ()
  | line ->
      let col = List.map snd (Series.column series ~field) in
      let vmax = List.fold_left Float.max neg_infinity col in
      let last =
        match List.rev col with [] -> nan | v :: _ -> v
      in
      buf_addf buf "  %-12s %s  max %.4g  last %.4g\n" field line vmax last

let render ~(cfg : Config.t) ~(result : Simulator.result) ?series ?registry () =
  let buf = Buffer.create 4096 in
  let p = cfg.platform in
  buf_addf buf "== %s | %s | %d nodes | %.0f GB/s | horizon %.1f d ==\n"
    p.Platform.name
    (Strategy.name cfg.strategy)
    p.Platform.nodes p.Platform.bandwidth_gbs
    (cfg.horizon /. 86_400.0);
  buf_addf buf "seed %d  segment [%.1f d, %.1f d]  failures %b\n" cfg.seed
    (cfg.seg_start /. 86_400.0)
    (cfg.seg_end /. 86_400.0)
    cfg.with_failures;
  buf_addf buf "%s\n" rule;
  buf_addf buf "progress %.4g ns   waste %.4g ns   waste/progress %.4f\n"
    result.progress_ns result.waste_ns
    (if result.progress_ns > 0.0 then result.waste_ns /. result.progress_ns
     else nan);
  buf_addf buf "utilization %.3f   io busy fraction %.3f   events %d\n"
    result.utilization result.io_busy_fraction result.events;
  buf_addf buf
    "jobs %d/%d completed   restarts %d   ckpts %d committed / %d aborted\n"
    result.jobs_completed result.specs_total result.restarts
    result.ckpts_committed result.ckpts_aborted;
  buf_addf buf "failures %d seen / %d hitting jobs\n" result.failures_seen
    result.failures_hitting_jobs;
  buf_addf buf "%s\nWaste by kind (node-seconds)\n" rule;
  Buffer.add_string buf (waste_bars result.by_kind);
  (match series with
  | None -> ()
  | Some s when Series.length s = 0 -> ()
  | Some s ->
      buf_addf buf "%s\nPlatform series (%d samples%s)\n" rule (Series.length s)
        (let d = Series.dropped s and c = Series.clipped s in
         if d + c = 0 then ""
         else Printf.sprintf ", %d dropped, %d clipped" d c);
      List.iter
        (fun field -> spark_row buf s field ~width:48)
        [ "bw_util"; "io_flows"; "token_queue"; "used_nodes"; "queued_jobs" ]);
  (match registry with
  | None -> ()
  | Some reg ->
      (match Histogram.hists reg with
      | [] -> ()
      | hs ->
          buf_addf buf "%s\nLatency quantiles\n" rule;
          let name_w =
            List.fold_left
              (fun acc h -> max acc (String.length (Histogram.name h)))
              9 hs
          in
          buf_addf buf "  %-*s %8s %10s %10s %10s %10s\n" name_w "histogram" "n"
            "p50" "p95" "p99" "max";
          List.iter
            (fun h ->
              let q p =
                match List.assoc_opt p (Histogram.quantile_summary h) with
                | Some v -> v
                | None -> nan
              in
              buf_addf buf "  %-*s %8d %10.3g %10.3g %10.3g %10.3g\n" name_w
                (Histogram.name h) (Histogram.count h) (q 0.5) (q 0.95) (q 0.99)
                (Histogram.max_value h))
            hs;
          buf_addf buf "%s\nInstrumentation\n" rule;
          List.iter
            (fun h ->
              Buffer.add_string buf (Histogram.render ~max_rows:6 h);
              Buffer.add_char buf '\n')
            hs);
      match Histogram.counters reg with
      | [] -> ()
      | cs ->
          List.iter (fun (name, v) -> buf_addf buf "  %-28s %g\n" name v) cs);
  Buffer.contents buf
