(** Ring-buffered multi-column time series.

    The simulator's periodic probe pushes one row per Δt — bandwidth
    utilization, token-queue depth, jobs per state, cumulative waste — into
    a bounded ring; the ring renders as CSV (one column per field) or as
    sparklines / {!Cocheck_util.Ascii_plot} series. Samples timestamped
    outside the configured window are discarded on push (segment clipping),
    so campaign CSVs align with the metrics segment. *)

type t

val create : ?capacity:int -> ?t_min:float -> ?t_max:float -> fields:string list -> unit -> t
(** Defaults: [capacity = 100_000], window unbounded. Requires a non-empty
    field list, positive capacity and [t_min <= t_max] when both given. *)

val fields : t -> string list

val push : t -> time:float -> float array -> unit
(** Append a row. Raises [Invalid_argument] on arity mismatch; silently
    drops rows outside the [t_min, t_max] window (counted in {!clipped}).
    When full, the oldest retained row is evicted (counted in
    {!dropped}). *)

val length : t -> int
val dropped : t -> int
(** Rows evicted by the capacity bound. *)

val clipped : t -> int
(** Rows discarded by the time window. *)

val rows : t -> (float * float array) list
(** Retained rows, oldest first. *)

val column : t -> field:string -> (float * float) list
(** One field as (time, value) pairs. Raises on unknown field. *)

val to_csv : t -> string
(** Header [time,<field>...], one line per retained row. *)

val sparkline : t -> field:string -> width:int -> string
(** The field resampled to [width] cells of a Unicode block-glyph strip
    (min→max auto-scale); empty series yields a blank strip. *)

val to_plot : t -> field:string -> Cocheck_util.Ascii_plot.series
