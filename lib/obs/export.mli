(** Structured export of {!Cocheck_sim.Trace} event logs.

    JSONL: one JSON object per line. The first line is a header record
    [{"type":"header","schema":"cocheck.trace","version":1,"events":N,
    "dropped":D}]; every following line is an event record
    [{"type":"event","t":<s>,"job":<id>,"inst":<id>,"kind":"<kind-name>",
    ...}] where the extra fields depend on the kind ([nodes]/[restarts] for
    job-started, [work] for ckpt-committed, [lost_work] for job-killed,
    [node] for node-failure). [job]/[inst] are [-1] when no job is involved
    (a node failure striking an idle node).

    CSV: fixed columns [time,job,inst,kind,nodes,restarts,work,lost_work,
    node], blank where not applicable. *)

val schema : string
val version : int

val event_to_json : Cocheck_sim.Trace.event -> Json.t

val jsonl_of_trace : Cocheck_sim.Trace.t -> string
val write_jsonl : out_channel -> Cocheck_sim.Trace.t -> unit
(** Streams line by line without materializing the whole log. *)

val csv_of_trace : Cocheck_sim.Trace.t -> string
