(** The trace-event data model and its Chrome [trace_event] / Perfetto
    encoding.

    A trace is a list of timestamped events on integer {e tracks} (rendered
    as horizontal lanes — one per domain, by convention worker [i] of the
    pool is track [i] and the orchestrating domain a high track id).
    Timestamps are microseconds of wall-clock time relative to the owning
    tracer's origin. This module is pure data + encoding; the mutable
    recording side lives in {!Tracing}. *)

type arg = Str of string | Num of float
(** Span/instant annotation values (the ["args"] object). *)

type event =
  | Slice of {
      name : string;
      cat : string;
      track : int;
      ts_us : float;  (** start, µs since the tracer origin *)
      dur_us : float;
      args : (string * arg) list;
    }  (** A duration span — encoded as a ["ph":"X"] complete event. *)
  | Instant of {
      name : string;
      cat : string;
      track : int;
      ts_us : float;
      args : (string * arg) list;
    }  (** A point event (["ph":"i"], thread scope). *)
  | Counter of { name : string; ts_us : float; values : (string * float) list }
      (** A sample of one counter track's series (["ph":"C"]); multiple
          values stack in the same lane. *)
  | Track_name of { track : int; name : string }
      (** Lane label (["ph":"M"] [thread_name] metadata). *)

val ts_us : event -> float
(** The event's timestamp ([0] for {!Track_name}). *)

val track : event -> int option
(** The event's track; [None] for counters (process-scoped). *)

val to_trace_event : pid:int -> event -> Json.t
(** One trace_event object. *)

val of_trace_event : Json.t -> event option
(** Inverse of {!to_trace_event} for the four phases above; [None] on any
    other phase or malformed object. *)

val export : ?pid:int -> ?process_name:string -> event list -> Json.t
(** The loadable document: [{"traceEvents": [...], "displayTimeUnit":
    "ms"}], with an optional [process_name] metadata record first.
    [pid] defaults to 1. *)

val of_export : Json.t -> (event list, string) result
(** Decode a document written by {!export}, dropping events
    {!of_trace_event} does not recognise (such as the [process_name]
    record). *)
