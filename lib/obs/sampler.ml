module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics

let waste_kinds = List.filter (fun k -> not (Metrics.is_progress k)) Metrics.all_kinds

let fields =
  [
    "bw_util";
    "io_flows";
    "token_queue";
    "free_nodes";
    "used_nodes";
    "queued_jobs";
    "running";
    "computing";
    "in_io";
    "waiting";
    "progress_ns";
    "waste_ns";
  ]
  @ List.map (fun k -> "waste_" ^ Metrics.kind_name k) waste_kinds

let create ?capacity ?t_min ?t_max () =
  let series = Series.create ?capacity ?t_min ?t_max ~fields () in
  let observe (s : Simulator.snapshot) =
    let row =
      Array.of_list
        ([
           (if s.Simulator.bandwidth_gbs > 0.0 then s.io_rate_gbs /. s.bandwidth_gbs
            else 0.0);
           float_of_int s.io_flows;
           float_of_int s.token_queue;
           float_of_int s.free_nodes;
           float_of_int s.used_nodes;
           float_of_int s.queued_jobs;
           float_of_int s.running_insts;
           float_of_int s.computing;
           float_of_int s.in_io;
           float_of_int s.waiting;
           s.progress_ns;
           s.waste_ns;
         ]
        @ List.map
            (fun k ->
              match List.assoc_opt k s.waste_by_kind with Some v -> v | None -> 0.0)
            waste_kinds)
    in
    Series.push series ~time:s.Simulator.snap_time row
  in
  (series, observe)

let default_dt (cfg : Cocheck_sim.Config.t) =
  Float.max 1.0 (cfg.Cocheck_sim.Config.horizon /. 400.0)
