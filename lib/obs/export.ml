module Trace = Cocheck_sim.Trace

let schema = "cocheck.trace"
let version = 1

let payload_fields (kind : Trace.kind) =
  match kind with
  | Trace.Job_started { restarts; nodes } ->
      [ ("nodes", Json.Int nodes); ("restarts", Json.Int restarts) ]
  | Trace.Ckpt_committed { work } -> [ ("work", Json.Float work) ]
  | Trace.Job_killed { lost_work } -> [ ("lost_work", Json.Float lost_work) ]
  | Trace.Node_failure { node } -> [ ("node", Json.Int node) ]
  | Trace.Input_done | Trace.Ckpt_requested | Trace.Ckpt_started | Trace.Ckpt_aborted
  | Trace.Token_granted | Trace.Work_completed | Trace.Job_completed ->
      []

let event_to_json (e : Trace.event) =
  Json.Obj
    ([
       ("type", Json.String "event");
       ("t", Json.Float e.Trace.time);
       ("job", Json.Int e.job);
       ("inst", Json.Int e.inst);
       ("kind", Json.String (Trace.kind_name e.kind));
     ]
    @ payload_fields e.kind)

let header trace =
  Json.Obj
    [
      ("type", Json.String "header");
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ("events", Json.Int (Trace.length trace));
      ("dropped", Json.Int (Trace.dropped trace));
    ]

let jsonl_of_trace trace =
  let buf = Buffer.create 65536 in
  Json.to_buffer buf (header trace);
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Json.to_buffer buf (event_to_json e);
      Buffer.add_char buf '\n')
    (Trace.events trace);
  Buffer.contents buf

let write_jsonl oc trace =
  output_string oc (Json.to_string (header trace));
  output_char oc '\n';
  List.iter
    (fun e ->
      output_string oc (Json.to_string (event_to_json e));
      output_char oc '\n')
    (Trace.events trace)

let csv_of_trace trace =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "time,job,inst,kind,nodes,restarts,work,lost_work,node\n";
  List.iter
    (fun (e : Trace.event) ->
      let nodes, restarts, work, lost, node =
        match e.Trace.kind with
        | Trace.Job_started { restarts; nodes } ->
            (string_of_int nodes, string_of_int restarts, "", "", "")
        | Trace.Ckpt_committed { work } -> ("", "", Printf.sprintf "%.6g" work, "", "")
        | Trace.Job_killed { lost_work } ->
            ("", "", "", Printf.sprintf "%.6g" lost_work, "")
        | Trace.Node_failure { node } -> ("", "", "", "", string_of_int node)
        | _ -> ("", "", "", "", "")
      in
      Buffer.add_string buf
        (Printf.sprintf "%.6g,%d,%d,%s,%s,%s,%s,%s,%s\n" e.time e.job e.inst
           (Trace.kind_name e.kind) nodes restarts work lost node))
    (Trace.events trace);
  Buffer.contents buf
