module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Failure_trace = Cocheck_sim.Failure_trace
module Burst_buffer = Cocheck_sim.Burst_buffer
module Strategy = Cocheck_core.Strategy
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class

let schema = "cocheck.manifest"
let version = 1

let strategy_to_string = Strategy.name

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let platform_to_json (p : Platform.t) =
  Json.Obj
    [
      ("name", Json.String p.Platform.name);
      ("nodes", Json.Int p.nodes);
      ("mem_per_node_gb", Json.Float p.mem_per_node_gb);
      ("bandwidth_gbs", Json.Float p.bandwidth_gbs);
      ("node_mtbf_s", Json.Float p.node_mtbf_s);
    ]

let app_class_to_json (c : App_class.t) =
  Json.Obj
    [
      ("name", Json.String c.App_class.name);
      ("workload_pct", Json.Float c.workload_pct);
      ("walltime_s", Json.Float c.walltime_s);
      ("nodes", Json.Int c.nodes);
      ("input_pct", Json.Float c.input_pct);
      ("output_pct", Json.Float c.output_pct);
      ("ckpt_pct", Json.Float c.ckpt_pct);
      ("steady_io_gb", Json.Float c.steady_io_gb);
    ]

let failure_dist_to_json (d : Failure_trace.distribution) =
  match d with
  | Failure_trace.Exponential -> Json.Obj [ ("law", Json.String "exponential") ]
  | Failure_trace.Weibull { shape } ->
      Json.Obj [ ("law", Json.String "weibull"); ("shape", Json.Float shape) ]
  | Failure_trace.Lognormal { sigma } ->
      Json.Obj [ ("law", Json.String "lognormal"); ("sigma", Json.Float sigma) ]

let burst_buffer_to_json (bb : Burst_buffer.spec) =
  Json.Obj
    [
      ("capacity_gb", Json.Float bb.Burst_buffer.capacity_gb);
      ("bandwidth_gbs", Json.Float bb.bandwidth_gbs);
    ]

let level_to_json (l : Config.level) =
  match l with
  | Config.Snapshot s ->
      Json.Obj
        [
          ("kind", Json.String "snapshot");
          ("period_s", Json.Float s.Config.sl_period_s);
          ("cost_s", Json.Float s.sl_cost_s);
          ("recovery_s", Json.Float s.sl_recovery_s);
          ("survival", Json.Float s.sl_survival);
        ]
  | Config.Buffer b ->
      Json.Obj
        ([
           ("kind", Json.String "buffer");
           ("capacity_gb", Json.Float b.Config.bl_capacity_gb);
           ("bandwidth_gbs", Json.Float b.bl_bandwidth_gbs);
         ]
        @ (match b.bl_flush_gbs with
          | Some f -> [ ("flush_gbs", Json.Float f) ]
          | None -> [])
        @ [ ("survival", Json.Float b.bl_survival) ])

let multilevel_to_json (m : Config.multilevel) =
  match m.Config.levels with
  | [ Config.Snapshot s ] ->
      (* The legacy two-level shape, byte-identical so pre-hierarchy
         manifests and campaign digests are stable. *)
      Json.Obj
        [
          ("local_period_s", Json.Float s.Config.sl_period_s);
          ("local_cost_s", Json.Float s.sl_cost_s);
          ("local_recovery_s", Json.Float s.sl_recovery_s);
          ("soft_fraction", Json.Float s.sl_survival);
        ]
  | levels -> Json.Obj [ ("levels", Json.List (List.map level_to_json levels)) ]

let config_to_json (cfg : Config.t) =
  let optional name = function None -> [] | Some j -> [ (name, j) ] in
  Json.Obj
    ([
       ("platform", platform_to_json cfg.Config.platform);
       ("classes", Json.List (List.map app_class_to_json cfg.classes));
       ("strategy", Json.String (strategy_to_string cfg.strategy));
       ("seed", Json.Int cfg.seed);
       ("min_duration_s", Json.Float cfg.min_duration_s);
       ("seg_start", Json.Float cfg.seg_start);
       ("seg_end", Json.Float cfg.seg_end);
       ("horizon", Json.Float cfg.horizon);
       ("fill_factor", Json.Float cfg.fill_factor);
       ("with_failures", Json.Bool cfg.with_failures);
       ("failure_dist", failure_dist_to_json cfg.failure_dist);
       ("interference_alpha", Json.Float cfg.interference_alpha);
     ]
    @ optional "burst_buffer" (Option.map burst_buffer_to_json cfg.burst_buffer)
    @ optional "multilevel" (Option.map multilevel_to_json cfg.multilevel))

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

(* A tiny error monad keeps the field extraction flat. *)
let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "manifest: missing or invalid field %S" name)

let f_float name j = field name Json.to_float_opt j
let f_int name j = field name Json.to_int_opt j
let f_bool name j = field name Json.to_bool_opt j
let f_string name j = field name Json.to_string_opt j

let platform_of_json j =
  let* name = f_string "name" j in
  let* nodes = f_int "nodes" j in
  let* mem_per_node_gb = f_float "mem_per_node_gb" j in
  let* bandwidth_gbs = f_float "bandwidth_gbs" j in
  let* node_mtbf_s = f_float "node_mtbf_s" j in
  Ok { Platform.name; nodes; mem_per_node_gb; bandwidth_gbs; node_mtbf_s }

let app_class_of_json j =
  let* name = f_string "name" j in
  let* workload_pct = f_float "workload_pct" j in
  let* walltime_s = f_float "walltime_s" j in
  let* nodes = f_int "nodes" j in
  let* input_pct = f_float "input_pct" j in
  let* output_pct = f_float "output_pct" j in
  let* ckpt_pct = f_float "ckpt_pct" j in
  let* steady_io_gb = f_float "steady_io_gb" j in
  Ok
    {
      App_class.name;
      workload_pct;
      walltime_s;
      nodes;
      input_pct;
      output_pct;
      ckpt_pct;
      steady_io_gb;
    }

let failure_dist_of_json j =
  let* law = f_string "law" j in
  match law with
  | "exponential" -> Ok Failure_trace.Exponential
  | "weibull" ->
      let* shape = f_float "shape" j in
      Ok (Failure_trace.Weibull { shape })
  | "lognormal" ->
      let* sigma = f_float "sigma" j in
      Ok (Failure_trace.Lognormal { sigma })
  | other -> Error (Printf.sprintf "manifest: unknown failure law %S" other)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* v = f x in
      let* vs = collect f rest in
      Ok (v :: vs)

let optional_member name conv j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some sub ->
      let* v = conv sub in
      Ok (Some v)

let burst_buffer_of_json bb =
  let* capacity_gb = f_float "capacity_gb" bb in
  let* bandwidth_gbs = f_float "bandwidth_gbs" bb in
  Ok { Burst_buffer.capacity_gb; bandwidth_gbs }

let level_of_json l =
  let* kind = f_string "kind" l in
  match kind with
  | "snapshot" ->
      let* sl_period_s = f_float "period_s" l in
      let* sl_cost_s = f_float "cost_s" l in
      let* sl_recovery_s = f_float "recovery_s" l in
      let* sl_survival = f_float "survival" l in
      Ok (Config.Snapshot { Config.sl_period_s; sl_cost_s; sl_recovery_s; sl_survival })
  | "buffer" ->
      let* bl_capacity_gb = f_float "capacity_gb" l in
      let* bl_bandwidth_gbs = f_float "bandwidth_gbs" l in
      let bl_flush_gbs = Option.bind (Json.member "flush_gbs" l) Json.to_float_opt in
      let* bl_survival = f_float "survival" l in
      Ok (Config.Buffer { Config.bl_capacity_gb; bl_bandwidth_gbs; bl_flush_gbs; bl_survival })
  | other -> Error (Printf.sprintf "manifest: unknown level kind %S" other)

let multilevel_of_json m =
  match Json.member "levels" m with
  | Some _ ->
      let* level_list = field "levels" Json.to_list_opt m in
      let* levels = collect level_of_json level_list in
      Ok { Config.levels }
  | None ->
      (* Legacy two-level shape: a single node-local snapshot level. *)
      let* local_period_s = f_float "local_period_s" m in
      let* local_cost_s = f_float "local_cost_s" m in
      let* local_recovery_s = f_float "local_recovery_s" m in
      let* soft_fraction = f_float "soft_fraction" m in
      Ok
        (Config.local_level ~period_s:local_period_s ~cost_s:local_cost_s
           ~recovery_s:local_recovery_s ~soft_fraction)

let config_of_json j =
  let* platform = field "platform" (fun p -> Some p) j in
  let* platform = platform_of_json platform in
  let* class_list = field "classes" Json.to_list_opt j in
  let* classes = collect app_class_of_json class_list in
  let* strategy_s = f_string "strategy" j in
  let* strategy =
    match Strategy.of_string strategy_s with Ok s -> Ok s | Error e -> Error e
  in
  let* seed = f_int "seed" j in
  let* min_duration_s = f_float "min_duration_s" j in
  let* seg_start = f_float "seg_start" j in
  let* seg_end = f_float "seg_end" j in
  let* horizon = f_float "horizon" j in
  let* fill_factor = f_float "fill_factor" j in
  let* with_failures = f_bool "with_failures" j in
  let* dist = field "failure_dist" (fun d -> Some d) j in
  let* failure_dist = failure_dist_of_json dist in
  let* interference_alpha = f_float "interference_alpha" j in
  let* burst_buffer = optional_member "burst_buffer" burst_buffer_of_json j in
  let* multilevel = optional_member "multilevel" multilevel_of_json j in
  Ok
    {
      Config.platform;
      classes;
      strategy;
      seed;
      min_duration_s;
      seg_start;
      seg_end;
      horizon;
      fill_factor;
      with_failures;
      failure_dist;
      interference_alpha;
      burst_buffer;
      multilevel;
    }

(* ------------------------------------------------------------------ *)
(* Result summary and assembly                                          *)
(* ------------------------------------------------------------------ *)

let named_floats pairs = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) pairs)

let result_to_json (r : Simulator.result) =
  Json.Obj
    [
      ("progress_ns", Json.Float r.Simulator.progress_ns);
      ("waste_ns", Json.Float r.waste_ns);
      ("enrolled_ns", Json.Float r.enrolled_ns);
      ( "by_kind",
        Json.Obj
          (List.map (fun (k, v) -> (Metrics.kind_name k, Json.Float v)) r.by_kind) );
      ("failures_seen", Json.Int r.failures_seen);
      ("failures_hitting_jobs", Json.Int r.failures_hitting_jobs);
      ("ckpts_committed", Json.Int r.ckpts_committed);
      ("ckpts_aborted", Json.Int r.ckpts_aborted);
      ("restarts", Json.Int r.restarts);
      ("jobs_started", Json.Int r.jobs_started);
      ("jobs_completed", Json.Int r.jobs_completed);
      ("events", Json.Int r.events);
      ("specs_total", Json.Int r.specs_total);
      ("bb_absorbed", Json.Int r.bb_absorbed);
      ("bb_spilled", Json.Int r.bb_spilled);
      ("utilization", Json.Float r.utilization);
      ("io_busy_fraction", Json.Float r.io_busy_fraction);
      ("mean_ckpt_interval_s", named_floats r.mean_ckpt_interval);
      ("mean_ckpt_wait_s", named_floats r.mean_ckpt_wait);
      ( "restarts_by_class",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.restarts_by_class) );
      ("lost_work_by_class", named_floats r.lost_work_by_class);
    ]

let make ~cfg ?timer ?result ?registry ?(extra = []) () =
  let optional name = function None -> [] | Some j -> [ (name, j) ] in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("version", Json.Int version);
       ("config", config_to_json cfg);
     ]
    @ optional "timings" (Option.map Timer.to_json timer)
    @ optional "result" (Option.map result_to_json result)
    @ optional "instrumentation" (Option.map Histogram.registry_to_json registry)
    @ extra)

let config_of_manifest j =
  match Json.member "config" j with
  | Some c -> config_of_json c
  | None -> Error "manifest: no \"config\" section"

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty j))

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> Json.of_string s
  | exception Sys_error e -> Error e
