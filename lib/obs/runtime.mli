(** Runtime self-observation: GC delta probes and a process-level metrics
    registry.

    The exascale kernel work needs to attribute event-churn cost — how many
    minor words the engine allocates per million events, whether promotions
    grow with pending-queue depth — before optimizing it. {!gc_sample}
    reads [Gc.quick_stat] (O(1), no heap walk) and returns the delta since
    the previous sample; {!Tracing.instrument_engine} emits these as
    Perfetto counter tracks on the engine's tick hook. *)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** absolute major-heap size at the sample, in words *)
}
(** Differences since the previous sample of the same probe (except
    [heap_words]). *)

type gc_probe

val gc_probe : unit -> gc_probe
(** A probe whose baseline is the current [Gc.quick_stat]. Probes are
    per-domain state — sample a probe only from the domain that created
    it. *)

val gc_sample : gc_probe -> gc_delta
(** Delta since the last call (or creation), advancing the baseline. *)

val gc_delta_values : gc_delta -> (string * float) list
(** The delta as counter-track series (allocation and collection fields),
    ready for {!Span.Counter}. *)

(** {2 Metrics registry} — named monotone counters and gauges, mutex
    protected so pool workers can bump them concurrently. Distinct from
    {!Histogram}'s registry: these are single scalar process metrics
    (events fired, cells simulated, store hits), not distributions. *)

type registry
type counter
type gauge

val registry : unit -> registry

val counter : registry -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is already a
    gauge. *)

val gauge : registry -> string -> gauge
(** Find-or-create. Raises [Invalid_argument] if the name is already a
    counter. *)

val incr : registry -> counter -> ?by:float -> unit -> unit
val set : registry -> gauge -> float -> unit

val value : counter -> float
(** Unsynchronised read (exact once writers are quiescent). *)

val gauge_value : gauge -> float
val metric_name : counter -> string

val snapshot : registry -> (string * float) list
(** All metrics in creation order, read under the registry lock. *)

val to_json : registry -> Json.t
