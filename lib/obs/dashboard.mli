(** One-screen ASCII run dashboard: headline metrics, waste breakdown,
    sparklines over the sampled platform series, and the instrumentation
    histograms. Rendered by [simctl observe]. *)

val waste_bars :
  ?width:int -> (Cocheck_sim.Metrics.kind * float) list -> string
(** Horizontal bars of wasted node-seconds per kind (progress kinds are
    skipped), widest bar [width] characters (default 40). *)

val render :
  cfg:Cocheck_sim.Config.t ->
  result:Cocheck_sim.Simulator.result ->
  ?series:Series.t ->
  ?registry:Histogram.registry ->
  unit ->
  string
(** Compose the dashboard. [series] is expected to carry the
    {!Sampler.fields} columns; sections for missing inputs are omitted. *)
