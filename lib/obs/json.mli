(** Dependency-free JSON values, serialization and parsing.

    The observability layer emits JSONL event logs and run manifests and
    reads manifests back for reproducibility checks; the container carries
    no JSON library, so this implements the small subset the layer needs:
    the full value type, lossless float round-trips, string escaping, a
    recursive-descent parser, and accessor helpers. Numbers are kept as
    floats ([Int] is a printing convenience preserving integer rendering);
    non-finite floats serialize as the strings ["nan"], ["inf"], ["-inf"]
    (JSON has no literals for them) and parse back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** The JSON string literal (including surrounding quotes) encoding the
    argument. Escapes quotes, backslashes and control characters; other
    bytes pass through untouched (UTF-8 transparency). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact, single-line rendering (safe for JSONL). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for human-facing manifests. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (trailing whitespace allowed). Errors carry a
    character offset. *)

(** {2 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** Numbers, plus the non-finite encodings produced by {!to_string}. *)

val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
