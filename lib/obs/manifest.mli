(** Run manifests: one JSON document per simulation capturing the exact
    scenario ({!Cocheck_sim.Config.t} including platform, workload classes,
    strategy and seed), wall-clock phase timings, instrumentation counters
    and the final metrics summary — so every Monte Carlo data point is a
    reproducible artifact: [config_of_json] rebuilds the exact [Config.t]
    that produced it. *)

val schema : string
val version : int

val strategy_to_string : Cocheck_core.Strategy.t -> string
(** {!Cocheck_core.Strategy.name}; guaranteed to parse back via
    {!Cocheck_core.Strategy.of_string}. *)

val config_to_json : Cocheck_sim.Config.t -> Json.t
val config_of_json : Json.t -> (Cocheck_sim.Config.t, string) result
(** Exact inverse of {!config_to_json} (field-for-field, floats included). *)

(** {2 Piecewise encoders}

    The building blocks of [config_to_json], exposed so other declarative
    formats (campaign specs, results-store records) share one JSON shape
    per domain type and inherit the exact-round-trip guarantee. *)

val platform_to_json : Cocheck_model.Platform.t -> Json.t
val platform_of_json : Json.t -> (Cocheck_model.Platform.t, string) result
val app_class_to_json : Cocheck_model.App_class.t -> Json.t
val app_class_of_json : Json.t -> (Cocheck_model.App_class.t, string) result

val failure_dist_to_json : Cocheck_sim.Failure_trace.distribution -> Json.t

val failure_dist_of_json :
  Json.t -> (Cocheck_sim.Failure_trace.distribution, string) result

val burst_buffer_to_json : Cocheck_sim.Burst_buffer.spec -> Json.t
val burst_buffer_of_json : Json.t -> (Cocheck_sim.Burst_buffer.spec, string) result
val multilevel_to_json : Cocheck_sim.Config.multilevel -> Json.t
val multilevel_of_json : Json.t -> (Cocheck_sim.Config.multilevel, string) result

val result_to_json : Cocheck_sim.Simulator.result -> Json.t

val make :
  cfg:Cocheck_sim.Config.t ->
  ?timer:Timer.t ->
  ?result:Cocheck_sim.Simulator.result ->
  ?registry:Histogram.registry ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** The full manifest object: schema/version header, ["config"], and the
    optional ["timings"], ["result"], ["instrumentation"] and caller
    [extra] sections. *)

val config_of_manifest : Json.t -> (Cocheck_sim.Config.t, string) result
(** Extract and decode the ["config"] section of a manifest produced by
    {!make}. *)

val write : path:string -> Json.t -> unit
(** Pretty-printed to [path]. *)

val load : path:string -> (Json.t, string) result
