(** Wall-clock phase timing for simulator runs and bench campaigns.

    A timer accumulates named phases (a phase timed several times sums its
    durations and counts its calls) in insertion order, renders them as a
    table, and serializes into run manifests. Replaces ad-hoc
    [Unix.gettimeofday] bracketing. *)

type t

val create : unit -> t

val time : t -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk, crediting its wall-clock duration to phase [name].
    Re-raises any exception after recording the elapsed time. *)

val record : t -> name:string -> seconds:float -> unit
(** Credit an externally measured duration. *)

val phases : t -> (string * float * int) list
(** [(name, total_seconds, calls)] in first-recorded order. *)

val total_s : t -> float

val render : t -> string
(** Aligned per-phase table: seconds, share of total, calls. *)

val to_json : t -> Json.t
(** [{"phases": [{"name", "seconds", "calls"}...], "total_s"}] *)
