(** Nested span tracing with a Chrome [trace_event] / Perfetto exporter.

    A {!t} is a mutex-protected event buffer (safe to record into from any
    domain) with a wall-clock origin; {!Span.event}s carry microsecond
    timestamps relative to it. The {!disabled} sentinel makes tracing free
    when off: every entry point checks physical equality first, so
    instrumented code can call unconditionally — the same pattern as
    [Simulator.no_hooks] and [Pool.no_telemetry].

    Load an exported file in {{:https://ui.perfetto.dev}ui.perfetto.dev}
    or [chrome://tracing]. *)

type t

val disabled : t
(** The off sentinel: recording is a no-op, {!span} calls its thunk
    directly, wiring helpers return their own no-op sentinels. *)

val create : ?capacity:int -> unit -> t
(** A live tracer holding up to [capacity] events (default 4 million);
    further events are counted in {!dropped} rather than recorded. The
    origin timestamp is taken at creation. *)

val is_enabled : t -> bool
(** [t != disabled]. *)

val now_us : t -> float
(** Microseconds of wall clock since the tracer's origin, clamped
    non-negative (monotonic capture: spans can never extend before the
    origin, and durations are clamped at 0). *)

val domain_track : unit -> int
(** The calling domain's id — the default track for spans and instants, so
    concurrent work separates into one lane per domain. *)

(** {2 Recording} *)

val record : t -> Span.event -> unit
(** Append a pre-built event (drops when the buffer is full). *)

type token
(** An open span: name, category, track and start time. Immutable; closing
    twice records two slices — don't. *)

val null_token : token
(** What {!begin_span} returns when tracing is off; {!end_span} ignores
    it. *)

val begin_span : t -> ?cat:string -> ?track:int -> string -> token
(** Open a span at the current time on [track] (default: the calling
    domain's). Use the {!span} wrapper instead whenever the extent is a
    function call. *)

val end_span : t -> ?args:(string * Span.arg) list -> token -> unit
(** Close the span, recording a {!Span.Slice} of the elapsed time. *)

val span :
  t ->
  ?cat:string ->
  ?track:int ->
  ?args:(string * Span.arg) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] runs [f] inside a span. When [f] raises, the slice is
    still recorded — tagged with an ["exception"] arg — and the exception
    rethrown. Nested calls on one track yield properly nested slices
    (strictly contained intervals), which the renderer stacks. When [t] is
    {!disabled} this is exactly [f ()]. *)

val instant : t -> ?cat:string -> ?track:int -> ?args:(string * Span.arg) list -> string -> unit
(** A point event at the current time. *)

val counter : t -> string -> (string * float) list -> unit
(** One sample of a counter track: [counter t "gc" [("minor_words", v)]].
    Series with the same track name stack in one lane. *)

val name_track : t -> track:int -> string -> unit
(** Label a lane (e.g. worker index → ["worker-0"]). *)

(** {2 Reading back} *)

val events : t -> Span.event list
(** Recorded events in recording order. *)

val length : t -> int
val dropped : t -> int

val to_json : ?process_name:string -> t -> Json.t
(** The Perfetto-loadable document: events stably sorted by timestamp
    (recording order breaks ties) under a ["traceEvents"] array. *)

val write : path:string -> ?process_name:string -> t -> unit
(** {!to_json} to a file, compact encoding. *)

(** {2 Wiring} *)

val instrument_engine :
  t ->
  ?prefix:string ->
  ?every:int ->
  ?gc:bool ->
  kinds:string array ->
  Cocheck_des.Engine.t ->
  unit ->
  unit
(** Attach {!Cocheck_des.Engine.attach_stats} to the engine with the given
    kind names (pass [Cocheck_sim.Ev_kind.names]) and a tick hook that,
    every [every] processed events (default 5000), emits counter tracks:
    [prefix/fired] (per-kind cumulative fires), [prefix/cancelled],
    [prefix/queue] (calendar length), and — unless [~gc:false] —
    [prefix/gc] ({!Runtime.gc_sample} deltas). Returns a {e flush}: call
    it once after the run drains to emit one final sample (runs shorter
    than [every] events would otherwise leave no counter points at all).
    No-op (and no-op flush) on a disabled tracer, leaving the engine's
    hot path stat-free. Designed as a [Simulator.run ?on_engine]
    argument. *)

val pool_telemetry :
  t -> ?registry:Histogram.registry -> unit -> Cocheck_parallel.Pool.telemetry
(** Telemetry hooks rendering each worker as a lane of [task] / [idle]
    slices (track = worker index; idle gaps under 100 µs are elided), a
    [pool/throughput] counter of completed tasks, and — when [registry]
    is given — a [pool_queue_wait_s] histogram of submission-to-start
    latency. Returns [Pool.no_telemetry] when the tracer is disabled, so
    the pool keeps its unobserved fast path. *)
