(** The campaign service: a long-running daemon over one {!Store} and one
    {!Cocheck_parallel.Pool}, answering {!Protocol} requests over JSONL
    ({!Cocheck_obs.Wire}) on a Unix or TCP socket.

    {b Concurrency.} One systhread per client connection (systhreads and
    the pool's worker domains coexist; the threads only block on sockets
    and futures). Each connection is its own {!Cocheck_parallel.Pool}
    tenant, so concurrent campaigns round-robin the simulation domains —
    a one-cell query lands after at most one task per competing client,
    never behind a 256-cell sweep.

    {b Admission.} Campaign requests are admitted while the backlog of
    admitted-but-unfinished points stays within [max_inflight]; beyond
    it the service replies [Overload] immediately (explicit backpressure)
    instead of queueing unboundedly. An idle server always admits, so a
    campaign larger than the whole bound still runs.

    {b Warm queries} are answered entirely from the store — zero
    [Simulator.run] calls — and report [simulated = 0].

    {b Shutdown.} A [Shutdown] request (or {!stop}, e.g. from a signal
    handler) stops accepting, wakes idle connections, lets in-flight
    campaigns finish and reply, then {!run} returns. *)

type t

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path (removing a stale
    socket file first). Note the ~107-byte OS limit on socket paths. *)

val listen_tcp : ?host:string -> int -> Unix.file_descr
(** Bind and listen on a TCP port (default host 127.0.0.1). *)

val create :
  ?max_inflight:int -> pool:Cocheck_parallel.Pool.t -> store:Store.t -> Unix.file_descr -> t
(** A service over a listening descriptor (from {!listen_unix} /
    {!listen_tcp}). [max_inflight] (default 4096) bounds the admitted
    point backlog. *)

val run : t -> unit
(** Serve until stopped; owns and closes the listener. Call from the
    thread that should block (typically main — signal handlers can then
    {!stop} it). *)

val stop : t -> unit
(** Request shutdown; {!run} notices within its accept-poll tick (100 ms)
    and drains. Safe from any thread and from signal handlers. *)

(** A minimal blocking client for {!run}'s protocol — used by
    [simctl query], the serve benches and the smoke tests. One request in
    flight per connection. *)
module Client : sig
  type conn

  val connect_unix : string -> conn
  val connect_tcp : ?host:string -> int -> conn

  val request :
    ?on_progress:(Runner.progress_event -> unit) -> conn -> Protocol.request -> Protocol.response
  (** Send one request and block for its final reply, feeding streamed
      progress frames to [on_progress]. Transport failures surface as a
      {!Protocol.Error} response. *)

  val close : conn -> unit
end
