(** Declarative campaign descriptions: one typed, serializable value that
    fully determines a Monte Carlo experiment grid.

    A campaign is a platform, a strategy set, an optional swept axis, a
    replication protocol (reps, root seed, segment days) and the modelling
    knobs. Every figure/table frontend builds one of these and hands it to
    {!Runner}; the spec round-trips exactly through JSON (floats included,
    via {!Cocheck_obs.Json}'s lossless encoding), and each
    (cell, strategy, replication) result carries a canonical-form digest
    that keys it in the {!Runner} results store. *)

(** The swept parameter: each value produces one campaign cell by
    overriding the corresponding field of the base {!field:platform} (or,
    for [Flush_gbs], of the multilevel buffer levels). *)
type axis =
  | No_sweep  (** a single cell at the base platform *)
  | Mtbf_years of float list  (** sweep individual node MTBF (years) *)
  | Bandwidth_gbs of float list  (** sweep aggregate PFS bandwidth (GB/s) *)
  | Flush_gbs of float list
      (** sweep the dedicated background-flush bandwidth given to every
          {!Cocheck_sim.Config.Buffer} level of the multilevel hierarchy;
          requires such a level *)

type t = {
  name : string;  (** human label ("fig2", "ablation-bb", ...) *)
  platform : Cocheck_model.Platform.t;  (** base platform; the axis overrides one field per cell *)
  classes : Cocheck_model.App_class.t list option;
      (** [None] = the per-platform APEX default, resolved by {!Cocheck_sim.Config.make} *)
  strategies : Cocheck_core.Strategy.t list;
  axis : axis;
  reps : int;  (** Monte Carlo replications per (cell, strategy) *)
  seed : int;  (** root seed; replication [rep] runs at {!rep_seed} *)
  days : float;  (** measurement-segment length per run *)
  failure_dist : Cocheck_sim.Failure_trace.distribution option;
  interference_alpha : float option;
  burst_buffer : Cocheck_sim.Burst_buffer.spec option;
  multilevel : Cocheck_sim.Config.multilevel option;
}

val make :
  ?name:string ->
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  strategies:Cocheck_core.Strategy.t list ->
  ?axis:axis ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?failure_dist:Cocheck_sim.Failure_trace.distribution ->
  ?interference_alpha:float ->
  ?burst_buffer:Cocheck_sim.Burst_buffer.spec ->
  ?multilevel:Cocheck_sim.Config.multilevel ->
  unit ->
  t
(** Defaults: name ["campaign"], no sweep, 100 reps, seed 42, 60-day
    segment, knobs unset (inheriting {!Cocheck_sim.Config.make}'s
    defaults). Runs {!validate}. *)

val validate : t -> unit
(** Raises [Invalid_argument] on an empty strategy set, non-positive reps
    or days, an empty/non-positive axis, or a [Flush_gbs] axis without a
    multilevel buffer level to apply it to. *)

(** {2 Cell expansion} *)

type cell = {
  x : float option;  (** the swept value; [None] under {!No_sweep} *)
  platform : Cocheck_model.Platform.t;  (** base platform with the axis override applied *)
}

val cells : t -> cell list
(** One cell per axis value, in axis order ([No_sweep] gives one cell). *)

val axis_label : t -> string
(** The paper's axis caption: ["Node MTBF (years)"],
    ["System Aggregated Bandwidth (GB/s)"], or [""] for [No_sweep]. *)

val log_x : t -> bool
(** Whether figures over this axis conventionally use a log x scale
    (only the MTBF axis does). *)

val rep_seed : seed:int -> rep:int -> int
(** The derived per-replication seed. A large odd multiplier spreads
    replication seeds far apart in the SplitMix expansion space; this is
    {e the} one definition — every execution path (runner, legacy
    [Montecarlo] shim, tests) derives seeds here. *)

val config :
  t -> cell:cell -> strategy:Cocheck_core.Strategy.t -> rep:int -> Cocheck_sim.Config.t
(** The exact simulator configuration of one (cell, strategy, replication)
    point. *)

(** {2 Serialization} *)

val schema : string
val version : int

val to_json : t -> Cocheck_obs.Json.t

val of_json : Cocheck_obs.Json.t -> (t, string) result
(** Exact inverse of {!to_json}: [of_json (to_json s) = Ok s],
    field-for-field and bit-for-bit on floats. Strategies are accepted
    either in the structural encoding {!to_json} emits (lossless for
    arbitrary [Fixed] periods) or as paper-style name strings
    (["ordered-nb-daly"]) for hand-written specs. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

(** {2 Digests} *)

val digest : t -> string
(** Hex digest of the canonical (compact JSON) form of the whole spec:
    any field change, including [name] or [reps], gives a new digest. *)

val cell_key :
  t -> cell:cell -> strategy:Cocheck_core.Strategy.t -> rep:int -> string
(** Hex digest keying one (cell, strategy, replication) {e result}. It is
    computed from the exact serialized {!Cocheck_sim.Config.t} of the
    point (plus the lossless structural strategy encoding), so it depends
    on precisely the fields that determine the simulation outcome —
    changing any of them gives a new key, while result-neutral spec edits
    (renaming the campaign, growing [reps] or the axis, adding strategies)
    leave existing keys valid. That is what makes the results store
    shareable between campaigns and extendable in place. *)
