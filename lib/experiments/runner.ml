open Cocheck_util
module Pool = Cocheck_parallel.Pool
module Strategy = Cocheck_core.Strategy
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Platform = Cocheck_model.Platform
module Apex = Cocheck_model.Apex
module Simulator = Cocheck_sim.Simulator
module Json = Cocheck_obs.Json
module Manifest = Cocheck_obs.Manifest
module Tracing = Cocheck_obs.Tracing
module Span = Cocheck_obs.Span

type cell_result = {
  x : float option;
  platform : Platform.t;
  strategy : Strategy.t;
  ratios : float array;
  stats : Stats.candlestick;
}

type outcome = {
  spec : Spec.t;
  results : cell_result list;
  simulated : int;
  baselines : int;
  loaded : int;
}

type progress = { total : int; cached : int; missing : int }

(* ------------------------------------------------------------------ *)
(* Live progress events                                                 *)
(* ------------------------------------------------------------------ *)

type progress_event =
  | Point of {
      seq : int;
      elapsed_s : float;
      cell : int;
      x : float option;
      rep : int;
      strategy : string;
      source : [ `Cached | `Simulated ];
      done_points : int;
      total_points : int;
    }
  | Finished of {
      elapsed_s : float;
      simulated : int;
      baselines : int;
      loaded : int;
      total_points : int;
    }

let progress_to_json = function
  | Point p ->
      Json.Obj
        [
          ("event", Json.String "point");
          ("seq", Json.Int p.seq);
          ("elapsed_s", Json.Float p.elapsed_s);
          ("cell", Json.Int p.cell);
          ("x", (match p.x with None -> Json.Null | Some x -> Json.Float x));
          ("rep", Json.Int p.rep);
          ("strategy", Json.String p.strategy);
          ( "source",
            Json.String (match p.source with `Cached -> "cached" | `Simulated -> "simulated")
          );
          ("done", Json.Int p.done_points);
          ("total", Json.Int p.total_points);
        ]
  | Finished f ->
      Json.Obj
        [
          ("event", Json.String "end");
          ("elapsed_s", Json.Float f.elapsed_s);
          ("simulated", Json.Int f.simulated);
          ("baselines", Json.Int f.baselines);
          ("loaded", Json.Int f.loaded);
          ("total", Json.Int f.total_points);
        ]

let progress_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  match str "event" with
  | Some "point" -> (
      match (int "seq", flt "elapsed_s", int "cell", int "rep", str "strategy",
             str "source", int "done", int "total")
      with
      | ( Some seq, Some elapsed_s, Some cell, Some rep, Some strategy,
          Some source, Some done_points, Some total_points ) -> (
          match source with
          | "cached" | "simulated" ->
              Some
                (Point
                   {
                     seq;
                     elapsed_s;
                     cell;
                     x = Option.bind (Json.member "x" j) Json.to_float_opt;
                     rep;
                     strategy;
                     source = (if source = "cached" then `Cached else `Simulated);
                     done_points;
                     total_points;
                   })
          | _ -> None)
      | _ -> None)
  | Some "end" -> (
      match (flt "elapsed_s", int "simulated", int "baselines", int "loaded", int "total") with
      | Some elapsed_s, Some simulated, Some baselines, Some loaded, Some total_points ->
          Some (Finished { elapsed_s; simulated; baselines; loaded; total_points })
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Record construction                                                  *)
(* ------------------------------------------------------------------ *)

(* A record is self-describing (campaign name, point coordinates, exact
   seed) but only the ratio is read back; the key in the filename is the
   lookup. Every field is a pure function of (spec, cell, strategy, rep),
   so records are deterministic: racing writers of one key produce
   byte-identical files (the property {!Store.add} relies on). *)
let write_record ~store ~spec ~cell ~strategy ~rep ~key ratio =
  let json =
    Json.Obj
      [
        ("schema", Json.String "cocheck.cell-result");
        ("version", Json.Int 1);
        ("key", Json.String key);
        ("campaign", Json.String spec.Spec.name);
        ("spec_digest", Json.String (Spec.digest spec));
        ( "x",
          match cell.Spec.x with None -> Json.Null | Some x -> Json.Float x );
        ("strategy", Json.String (Strategy.name strategy));
        ("rep", Json.Int rep);
        ("seed", Json.Int (Spec.rep_seed ~seed:spec.Spec.seed ~rep));
        ("waste_ratio", Json.Float ratio);
      ]
  in
  Store.add store ~key ~ratio json

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let run ~pool ?store ?tenant ?(tracer = Tracing.disabled) ?on_progress spec =
  Spec.validate spec;
  let cells = Array.of_list (Spec.cells spec) in
  let strategies = Array.of_list spec.Spec.strategies in
  let n_s = Array.length strategies in
  let reps = spec.Spec.reps in
  let total_points = Array.length cells * n_s * reps in
  let simulated = Atomic.make 0 in
  let baselines = Atomic.make 0 in
  let loaded = Atomic.make 0 in
  (* Progress emission is serialized under one mutex so JSONL consumers
     see monotone [seq] / [done] counters even with many workers. *)
  let started = Unix.gettimeofday () in
  let progress_mutex = Mutex.create () in
  let seq = ref 0 in
  let done_points = ref 0 in
  let emit_point ~ci ~x ~rep ~strategy ~source =
    match on_progress with
    | None -> ()
    | Some f ->
        Mutex.lock progress_mutex;
        incr seq;
        incr done_points;
        let ev =
          Point
            {
              seq = !seq;
              elapsed_s = Unix.gettimeofday () -. started;
              cell = ci;
              x;
              rep;
              strategy = Strategy.name strategy;
              source;
              done_points = !done_points;
              total_points;
            }
        in
        Fun.protect ~finally:(fun () -> Mutex.unlock progress_mutex) (fun () -> f ev)
  in
  (* One task per (cell, replication): the baseline run and the job specs
     are shared by every strategy of the replication, exactly as in the
     paper's protocol. *)
  let task idx =
    let ci = idx / reps in
    let cell = cells.(ci) and rep = idx mod reps in
    let keys =
      Array.map (fun strategy -> Spec.cell_key spec ~cell ~strategy ~rep) strategies
    in
    let cached =
      match store with
      | None -> Array.make n_s None
      | Some store -> Array.map (Store.find store) keys
    in
    let hits = Array.fold_left (fun n c -> if c = None then n else n + 1) 0 cached in
    if hits > 0 then ignore (Atomic.fetch_and_add loaded hits);
    let track = Pool.current_worker () in
    let span_args =
      [
        ("cell", Span.Num (float_of_int ci));
        ("rep", Span.Num (float_of_int rep));
        ( "source",
          Span.Str (if hits = n_s then "cached" else "simulated") );
      ]
    in
    Tracing.span tracer ~cat:"campaign" ~track ~args:span_args
      (Printf.sprintf "cell %d rep %d" ci rep)
      (fun () ->
        if hits = n_s then begin
          Array.iter
            (fun strategy -> emit_point ~ci ~x:cell.Spec.x ~rep ~strategy ~source:`Cached)
            strategies;
          Array.map Option.get cached
        end
        else begin
          let cfg strategy = Spec.config spec ~cell ~strategy ~rep in
          let baseline_cfg = cfg Strategy.Baseline in
          let job_specs =
            Tracing.span tracer ~cat:"campaign" ~track "generate" (fun () ->
                Simulator.generate_specs baseline_cfg)
          in
          let baseline =
            Tracing.span tracer ~cat:"campaign" ~track "baseline" (fun () ->
                Simulator.run ~specs:job_specs baseline_cfg)
          in
          Atomic.incr baselines;
          Array.mapi
            (fun i strategy ->
              match cached.(i) with
              | Some ratio ->
                  emit_point ~ci ~x:cell.Spec.x ~rep ~strategy ~source:`Cached;
                  ratio
              | None ->
                  let r =
                    Tracing.span tracer ~cat:"campaign" ~track
                      ("sim:" ^ Strategy.name strategy)
                      (fun () -> Simulator.run ~specs:job_specs (cfg strategy))
                  in
                  let ratio = Simulator.waste_ratio ~strategy:r ~baseline in
                  Atomic.incr simulated;
                  Option.iter
                    (fun store ->
                      write_record ~store ~spec ~cell ~strategy ~rep ~key:keys.(i) ratio)
                    store;
                  emit_point ~ci ~x:cell.Spec.x ~rep ~strategy ~source:`Simulated;
                  ratio)
            strategies
        end)
  in
  let rows = Pool.init_array ?tenant pool (Array.length cells * reps) task in
  (match on_progress with
  | None -> ()
  | Some f ->
      f
        (Finished
           {
             elapsed_s = Unix.gettimeofday () -. started;
             simulated = Atomic.get simulated;
             baselines = Atomic.get baselines;
             loaded = Atomic.get loaded;
             total_points;
           }));
  let results =
    List.concat_map
      (fun ci ->
        List.map
          (fun si ->
            let cell = cells.(ci) in
            let ratios = Array.init reps (fun rep -> rows.((ci * reps) + rep).(si)) in
            {
              x = cell.Spec.x;
              platform = cell.Spec.platform;
              strategy = strategies.(si);
              ratios;
              stats = Stats.candlestick ratios;
            })
          (List.init n_s Fun.id))
      (List.init (Array.length cells) Fun.id)
  in
  {
    spec;
    results;
    simulated = Atomic.get simulated;
    baselines = Atomic.get baselines;
    loaded = Atomic.get loaded;
  }

let status ?store spec =
  Spec.validate spec;
  let cells = Spec.cells spec in
  let total = List.length cells * List.length spec.Spec.strategies * spec.Spec.reps in
  let cached =
    match store with
    | None -> 0
    | Some store ->
        List.fold_left
          (fun acc cell ->
            List.fold_left
              (fun acc strategy ->
                let hits = ref 0 in
                for rep = 0 to spec.Spec.reps - 1 do
                  let key = Spec.cell_key spec ~cell ~strategy ~rep in
                  if Store.contains store key then incr hits
                done;
                acc + !hits)
              acc spec.Spec.strategies)
          0 cells
  in
  { total; cached; missing = total - cached }

(* ------------------------------------------------------------------ *)
(* Figure assembly                                                      *)
(* ------------------------------------------------------------------ *)

let strategy_series o =
  let results = Array.of_list o.results in
  let n_s = List.length o.spec.Spec.strategies in
  let n_c = Array.length results / n_s in
  List.mapi
    (fun si strategy ->
      {
        Figures.label = Strategy.name strategy;
        points =
          List.init n_c (fun ci ->
              let r = results.((ci * n_s) + si) in
              Figures.sim_point ~x:(Option.value r.x ~default:0.0) r.stats);
      })
    o.spec.Spec.strategies

let default_classes platform =
  if platform.Platform.name = "Cielo" then Apex.lanl_workload
  else Apex.scaled_workload ~target:platform

let theoretical_waste ~platform ?classes () =
  let classes = match classes with Some cs -> cs | None -> default_classes platform in
  let counts = Waste.steady_state_counts ~classes ~platform in
  (Lower_bound.solve_model ~classes:counts ~platform ()).Lower_bound.waste

let theory_series spec =
  {
    Figures.label = "Theoretical Model";
    points =
      List.map
        (fun (cell : Spec.cell) ->
          Figures.analytic_point
            ~x:(Option.value cell.Spec.x ~default:0.0)
            (theoretical_waste ~platform:cell.Spec.platform ?classes:spec.Spec.classes ()))
        (Spec.cells spec);
  }

let to_figure ?id ?title ?(y_label = "Waste Ratio") o =
  {
    Figures.id = Option.value id ~default:o.spec.Spec.name;
    title =
      Option.value title
        ~default:
          (Printf.sprintf "%s (%d reps, %gd segment)" o.spec.Spec.name o.spec.Spec.reps
             o.spec.Spec.days);
    x_label = Spec.axis_label o.spec;
    y_label;
    log_x = Spec.log_x o.spec;
    series = strategy_series o @ [ theory_series o.spec ];
  }
