module Pool = Cocheck_parallel.Pool
module Wire = Cocheck_obs.Wire
module Strategy = Cocheck_core.Strategy
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Platform = Cocheck_model.Platform
module Apex = Cocheck_model.Apex
module Stats = Cocheck_util.Stats

type t = {
  pool : Pool.t;
  store : Store.t;
  listener : Unix.file_descr;
  max_inflight : int;
  inflight : int Atomic.t;  (* points admitted and not yet completed *)
  served : int Atomic.t;
  stopping : bool Atomic.t;
  cmutex : Mutex.t;  (* guards [conns] and [threads] *)
  mutable conns : Wire.t list;
  mutable threads : Thread.t list;
}

let listen_unix path =
  (* A stale socket file from a dead daemon would make bind fail. *)
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1024;
  fd

let listen_tcp ?(host = "127.0.0.1") port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 1024;
  fd

let create ?(max_inflight = 4096) ~pool ~store listener =
  {
    pool;
    store;
    listener;
    max_inflight;
    inflight = Atomic.make 0;
    served = Atomic.make 0;
    stopping = Atomic.make false;
    cmutex = Mutex.create ();
    conns = [];
    threads = [];
  }

let stop t = Atomic.set t.stopping true

let points spec =
  List.length (Spec.cells spec) * List.length spec.Spec.strategies * spec.Spec.reps

(* Admission: admit while the admitted-point backlog stays under the bound,
   but never refuse an idle server — a campaign larger than the whole bound
   must still be runnable, the bound is about queueing behind others. *)
let rec admit t pts =
  let cur = Atomic.get t.inflight in
  if cur > 0 && cur + pts > t.max_inflight then false
  else if Atomic.compare_and_set t.inflight cur (cur + pts) then true
  else admit t pts

let default_classes platform =
  if platform.Platform.name = "Cielo" then Apex.lanl_workload
  else Apex.scaled_workload ~target:platform

let solve_bound platform =
  let classes = default_classes platform in
  let counts = Waste.steady_state_counts ~classes ~platform in
  Lower_bound.solve_model ~classes:counts ~platform ()

let stats_response t =
  Protocol.Stats_result
    {
      store = Store.stats t.store;
      indexed = Store.indexed t.store;
      inflight = Atomic.get t.inflight;
      served = Atomic.get t.served;
    }

let run_campaign t conn ~tenant ~id ~progress spec =
  Spec.validate spec;
  let pts = points spec in
  if not (admit t pts) then
    Protocol.Overload { inflight = Atomic.get t.inflight; limit = t.max_inflight }
  else
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add t.inflight (-pts)))
      (fun () ->
        let on_progress =
          if progress then
            Some (fun ev -> Wire.send conn (Protocol.response_to_json ~id (Protocol.Progress ev)))
          else None
        in
        let started = Unix.gettimeofday () in
        let o = Runner.run ~pool:t.pool ~store:t.store ~tenant ?on_progress spec in
        Atomic.incr t.served;
        let cells =
          List.map
            (fun (r : Runner.cell_result) ->
              {
                Protocol.x = r.Runner.x;
                strategy = Strategy.name r.Runner.strategy;
                mean = r.Runner.stats.Stats.mean;
                median = r.Runner.stats.Stats.median;
                q1 = r.Runner.stats.Stats.q1;
                q3 = r.Runner.stats.Stats.q3;
              })
            o.Runner.results
        in
        Protocol.Campaign_result
          {
            elapsed_s = Unix.gettimeofday () -. started;
            simulated = o.Runner.simulated;
            baselines = o.Runner.baselines;
            loaded = o.Runner.loaded;
            total_points = points spec;
            cells;
          })

(* One request → one final reply (plus streamed progress). Every
   exception — spec validation, a simulation failure, a dead peer mid
   progress stream — reports as an ["error"] reply instead of killing the
   connection. *)
let dispatch t conn ~tenant ~id req =
  let resp =
    match req with
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Stats -> stats_response t
    | Protocol.Shutdown ->
        stop t;
        Protocol.Bye
    | Protocol.Status { spec } ->
        Spec.validate spec;
        let p = Runner.status ~store:t.store spec in
        Protocol.Status_result
          { total = p.Runner.total; cached = p.Runner.cached; missing = p.Runner.missing }
    | Protocol.Bound { platform } ->
        let r = solve_bound platform in
        Protocol.Bound_result
          {
            waste = r.Lower_bound.waste;
            lambda = r.Lower_bound.lambda;
            io_fraction = r.Lower_bound.io_fraction;
          }
    | Protocol.Waste { platform } ->
        Protocol.Waste_result { waste = (solve_bound platform).Lower_bound.waste }
    | Protocol.Campaign { spec; progress } -> run_campaign t conn ~tenant ~id ~progress spec
  in
  Wire.send conn (Protocol.response_to_json ~id resp);
  match resp with Protocol.Bye -> `Close | _ -> `Continue

let register t conn =
  Mutex.lock t.cmutex;
  t.conns <- conn :: t.conns;
  Mutex.unlock t.cmutex

(* Unregister before closing: the shutdown sweep only ever shuts down
   descriptors still registered, so it cannot touch a closed (possibly
   reused) fd. *)
let unregister t conn =
  Mutex.lock t.cmutex;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.cmutex

let handle_conn t fd =
  let conn = Wire.of_fd fd in
  register t conn;
  (* Each connection is one fair-queueing tenant: its campaigns round-robin
     the pool with every other live client's. *)
  let tenant = Pool.tenant t.pool in
  let send_error ~id msg =
    try Wire.send conn (Protocol.response_to_json ~id (Protocol.Error msg))
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  let rec loop () =
    match Wire.recv conn with
    | None -> ()
    | Some (Result.Error e) ->
        send_error ~id:0 e;
        loop ()
    | Some (Ok j) -> (
        match Protocol.request_of_json j with
        | Result.Error e ->
            send_error ~id:0 e;
            loop ()
        | Ok (id, req) -> (
            match dispatch t conn ~tenant ~id req with
            | verdict -> ( match verdict with `Close -> () | `Continue -> loop ())
            | exception exn ->
                send_error ~id (Printexc.to_string exn);
                loop ()))
  in
  Fun.protect
    ~finally:(fun () ->
      unregister t conn;
      Wire.close conn)
    (fun () -> try loop () with Sys_error _ | Unix.Unix_error _ -> ())

let run t =
  (* A client vanishing mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (* Poll with a short select timeout so a stop — from a shutdown
         request or a signal handler — is noticed even while no client
         connects; closing the listener under a blocked [accept] is not
         reliably a wakeup. *)
      (match Unix.select [ t.listener ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listener with
          | fd, _ ->
              let th = Thread.create (fun fd -> handle_conn t fd) fd in
              Mutex.lock t.cmutex;
              t.threads <- th :: t.threads;
              Mutex.unlock t.cmutex
          | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (* Wake idle connections (blocked in recv) with EOF, then drain: threads
     running a campaign finish it — and its reply — before exiting. *)
  Mutex.lock t.cmutex;
  List.iter Wire.shutdown t.conns;
  let threads = t.threads in
  Mutex.unlock t.cmutex;
  List.iter Thread.join threads

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = { wire : Wire.t; mutable next_id : int }

  let of_fd fd = { wire = Wire.of_fd fd; next_id = 1 }

  let connect_unix path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    of_fd fd

  let connect_tcp ?(host = "127.0.0.1") port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    of_fd fd

  let request ?on_progress conn req =
    let id = conn.next_id in
    conn.next_id <- id + 1;
    try
      Wire.send conn.wire (Protocol.request_to_json ~id req);
      let rec wait () =
        match Wire.recv conn.wire with
        | None -> Protocol.Error "server closed the connection"
        | Some (Result.Error e) -> Protocol.Error ("malformed frame: " ^ e)
        | Some (Ok j) -> (
            match Protocol.response_of_json j with
            | Result.Error e -> Protocol.Error ("malformed frame: " ^ e)
            | Ok (_, Protocol.Progress ev) ->
                (match on_progress with Some f -> f ev | None -> ());
                wait ()
            | Ok (rid, resp) when rid = id -> resp
            | Ok _ -> wait ())
      in
      wait ()
    with
    | Sys_error e -> Protocol.Error ("transport: " ^ e)
    | Unix.Unix_error (e, fn, _) ->
        Protocol.Error (Printf.sprintf "transport: %s: %s" fn (Unix.error_message e))

  let close conn = Wire.close conn.wire
end
