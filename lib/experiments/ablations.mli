(** Ablation studies for the design choices DESIGN.md calls out — each
    isolates one modelling knob on the flagship Cielo scenario and reports
    how the strategy comparison moves.

    All return a rendered {!Cocheck_util.Table.t} (plus the raw numbers for
    tests). *)

type row = { label : string; values : (string * float) list }

type study = { title : string; rows : row list; table : Cocheck_util.Table.t }

val failure_distribution :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?strategies:Cocheck_core.Strategy.t list ->
  unit ->
  study
(** Exponential (the paper) vs clustered Weibull (shape 0.7, the field-data
    regime of Tiwari et al.) vs spaced Weibull (shape 1.5) failure timing,
    at equal failure rates. Mean waste ratio per strategy per law. *)

val interference_model :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?alphas:float list ->
  unit ->
  study
(** The footnote-2 adversarial model: sweep the contention-degradation
    factor α and watch Oblivious collapse while the token strategies (which
    never run concurrent transfers) hold. *)

val burst_buffer :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?capacities_gb:float list ->
  ?bb_bandwidth_gbs:float ->
  unit ->
  study
(** The Section 8 extension: sweep burst-buffer capacity (0 = none) under a
    scarce 40 GB/s PFS and report waste, absorption and spill counts for a
    blocking and a cooperative strategy. *)

val period_scaling :
  ?gammas:float list ->
  unit ->
  study
(** Analytic Arunagiri study on the four APEX classes at Cielo/40 GB/s:
    relative waste and relative I/O pressure at γ·P_Daly. *)

val value : study -> row:string -> col:string -> float option
(** Lookup for tests. *)

val optimal_periods :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?bandwidths_gbs:float list ->
  unit ->
  study
(** Daly vs Theorem-1-optimal periods under the non-blocking scheduler,
    across the bandwidth range where the I/O constraint activates. Tests
    the paper's remark that the optimal periods "may not be achievable":
    how much of the Daly-vs-bound gap do the KKT periods close in an
    actual schedule? *)

val two_level :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?soft_fractions:float list ->
  unit ->
  study
(** SCR-style two-level checkpointing (references [9][15]): sweep the
    soft-failure fraction and compare single-level against two-level waste
    under the cooperative scheduler, next to the {!Cocheck_core.Two_level}
    analytic prediction for the EAP class. *)

val flush_bandwidth :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?flush_gbs:float list ->
  ?capacity_gb:float ->
  ?buffer_gbs:float ->
  unit ->
  study
(** The hierarchy extension: a buffer tier absorbs checkpoints at
    [buffer_gbs] and flushes to the PFS over a dedicated edge whose
    bandwidth is swept. Mean waste per strategy per flush bandwidth, with
    the {!Cocheck_core.Lower_bound.solve_model_hierarchical} bound in the
    last column — waste should fall monotonically toward it as the edge
    widens. *)

val fixed_period :
  pool:Cocheck_parallel.Pool.t ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?periods_s:float list ->
  unit ->
  study
(** Sensitivity of the Fixed strategies to the chosen period (the paper's
    heuristic is "one or a few hours"): sweep the application-defined
    period and compare the blocking and non-blocking Fixed strategies
    against the Daly-period reference. *)
