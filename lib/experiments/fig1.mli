(** Figure 1: waste ratio as a function of aggregate filesystem bandwidth
    (40 → 160 GB/s) for the seven strategies and the theoretical model —
    LANL APEX workload on Cielo, node MTBF 2 years. *)

val default_bandwidths_gbs : float list
(** 40, 60, 80, 100, 120, 140, 160 — the paper's x axis. *)

val run :
  pool:Cocheck_parallel.Pool.t ->
  ?bandwidths_gbs:float list ->
  ?node_mtbf_years:float ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?manifest_dir:string ->
  unit ->
  Figures.t
(** Defaults: the paper's bandwidths, 2-year node MTBF, 100 replications,
    seed 42, 60-day segment. Builds a single {!Spec.t} over the bandwidth
    axis and delegates to {!Runner.run}; [manifest_dir] is a {!Runner}
    results store, so interrupted figure campaigns resume and warm re-runs
    simulate nothing. *)
