module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy

let default_bandwidths_gbs = [ 40.0; 60.0; 80.0; 100.0; 120.0; 140.0; 160.0 ]

let run ~pool ?(bandwidths_gbs = default_bandwidths_gbs) ?(node_mtbf_years = 2.0)
    ?(reps = 100) ?(seed = 42) ?(days = 60.0) ?manifest_dir () =
  let spec =
    Spec.make ~name:"fig1"
      ~platform:(Platform.cielo ~node_mtbf_years ())
      ~strategies:Strategy.paper_seven
      ~axis:(Spec.Bandwidth_gbs bandwidths_gbs) ~reps ~seed ~days ()
  in
  Runner.to_figure ~id:"fig1"
    ~title:
      (Printf.sprintf
         "Waste ratio vs system bandwidth (Cielo, node MTBF %gy, %d reps, %gd segment)"
         node_mtbf_years reps days)
    (Runner.run ~pool ?store:(Option.map Store.open_ manifest_dir) spec)
