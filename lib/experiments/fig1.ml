module Platform = Cocheck_model.Platform

let default_bandwidths_gbs = [ 40.0; 60.0; 80.0; 100.0; 120.0; 140.0; 160.0 ]

let run ~pool ?(bandwidths_gbs = default_bandwidths_gbs) ?(node_mtbf_years = 2.0)
    ?(reps = 100) ?(seed = 42) ?(days = 60.0) ?manifest_dir () =
  let points =
    List.map
      (fun b -> (b, Platform.cielo ~bandwidth_gbs:b ~node_mtbf_years ()))
      bandwidths_gbs
  in
  {
    Figures.id = "fig1";
    title =
      Printf.sprintf
        "Waste ratio vs system bandwidth (Cielo, node MTBF %gy, %d reps, %gd segment)"
        node_mtbf_years reps days;
    x_label = "System Aggregated Bandwidth (GB/s)";
    y_label = "Waste Ratio";
    log_x = false;
    series = Sweep.waste_vs ~pool ~points ~reps ~seed ~days ?manifest_dir ();
  }
