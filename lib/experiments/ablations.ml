open Cocheck_util
module Pool = Cocheck_parallel.Pool
module Strategy = Cocheck_core.Strategy
module Period_tradeoff = Cocheck_core.Period_tradeoff
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Platform = Cocheck_model.Platform
module Failure_trace = Cocheck_sim.Failure_trace
module Burst_buffer = Cocheck_sim.Burst_buffer

type row = { label : string; values : (string * float) list }
type study = { title : string; rows : row list; table : Table.t }

let build_study ~title ~columns ~rows =
  let table = Table.create ~headers:("" :: columns) in
  List.iter
    (fun r ->
      Table.add_row table
        (r.label
        :: List.map
             (fun col ->
               match List.assoc_opt col r.values with
               | Some v -> Printf.sprintf "%.3f" v
               | None -> "-")
             columns))
    rows;
  { title; rows; table }

let value study ~row ~col =
  List.find_opt (fun r -> r.label = row) study.rows
  |> Fun.flip Option.bind (fun r -> List.assoc_opt col r.values)

let default_strategies =
  [
    Strategy.Oblivious (Strategy.Fixed Strategy.default_fixed_period_s);
    Strategy.Oblivious Strategy.Daly;
    Strategy.Ordered_nb Strategy.Daly;
    Strategy.Least_waste;
  ]

let strategy_columns strategies = List.map Strategy.name strategies

(* One unswept campaign: mean waste per strategy as (column, value) pairs
   in strategy order — the declarative core every Monte Carlo study maps
   its rows through. *)
let mc ~pool ~platform ~strategies ~reps ~seed ~days ?failure_dist
    ?interference_alpha ?burst_buffer ?multilevel () =
  let spec =
    Spec.make ~name:"ablation" ~platform ~strategies ~reps ~seed ~days ?failure_dist
      ?interference_alpha ?burst_buffer ?multilevel ()
  in
  List.map
    (fun (r : Runner.cell_result) ->
      (Strategy.name r.Runner.strategy, r.Runner.stats.Stats.mean))
    (Runner.run ~pool spec).Runner.results

let failure_distribution ~pool ?(reps = 10) ?(seed = 42) ?(days = 20.0)
    ?(strategies = default_strategies) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  let rows =
    List.map
      (fun law ->
        {
          label = Failure_trace.distribution_name law;
          values = mc ~pool ~platform ~strategies ~reps ~seed ~days ~failure_dist:law ();
        })
      [
        Failure_trace.Exponential;
        Failure_trace.Weibull { shape = 0.7 };
        Failure_trace.Weibull { shape = 1.5 };
      ]
  in
  build_study
    ~title:
      "Ablation: failure inter-arrival law (Cielo, 40 GB/s, 2y node MTBF; mean waste ratio)"
    ~columns:(strategy_columns strategies) ~rows

let interference_model ~pool ?(reps = 10) ?(seed = 42) ?(days = 20.0)
    ?(alphas = [ 0.0; 0.25; 0.5; 1.0 ]) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:10.0 () in
  let strategies = default_strategies in
  let rows =
    List.map
      (fun alpha ->
        {
          label = Printf.sprintf "alpha=%g" alpha;
          values =
            mc ~pool ~platform ~strategies ~reps ~seed ~days ~interference_alpha:alpha ();
        })
      alphas
  in
  build_study
    ~title:
      "Ablation: adversarial interference (footnote 2); aggregate degrades as 1/(1+alpha(k-1))"
    ~columns:(strategy_columns strategies) ~rows

let burst_buffer ~pool ?(reps = 8) ?(seed = 42) ?(days = 20.0)
    ?(capacities_gb = [ 0.0; 100_000.0; 400_000.0; 1_600_000.0 ])
    ?(bb_bandwidth_gbs = 1_000.0) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:5.0 () in
  let strategies =
    [ Strategy.Oblivious (Strategy.Fixed Strategy.default_fixed_period_s); Strategy.Least_waste ]
  in
  let rows =
    List.map
      (fun cap ->
        let burst_buffer =
          if cap <= 0.0 then None
          else Some { Burst_buffer.capacity_gb = cap; bandwidth_gbs = bb_bandwidth_gbs }
        in
        {
          label =
            (if cap <= 0.0 then "no buffer"
             else Format.asprintf "%a buffer" Units.pp_bytes cap);
          values = mc ~pool ~platform ~strategies ~reps ~seed ~days ?burst_buffer ();
        })
      capacities_gb
  in
  build_study
    ~title:
      (Printf.sprintf
         "Ablation: burst-buffer capacity at %.0f GB/s buffer bandwidth (Cielo, 40 GB/s PFS)"
         bb_bandwidth_gbs)
    ~columns:(strategy_columns strategies) ~rows

let period_scaling ?(gammas = [ 0.5; 0.8; 1.0; 1.5; 2.0; 3.0 ]) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  let columns =
    List.concat_map
      (fun (c : App_class.t) -> [ c.App_class.name ^ " waste"; c.App_class.name ^ " F" ])
      Apex.lanl_workload
  in
  let rows =
    List.map
      (fun gamma ->
        let values =
          List.concat_map
            (fun (c : App_class.t) ->
              let p =
                Period_tradeoff.evaluate
                  ~ckpt_s:(App_class.ckpt_time c ~platform)
                  ~mtbf_s:(App_class.mtbf c ~platform)
                  ~recovery_s:(App_class.recovery_time c ~platform)
                  ~gamma
              in
              [
                (c.App_class.name ^ " waste", p.Period_tradeoff.waste);
                (c.App_class.name ^ " F", p.io_pressure);
              ])
            Apex.lanl_workload
        in
        { label = Printf.sprintf "gamma=%g" gamma; values })
      gammas
  in
  build_study
    ~title:
      "Ablation: period scaling gamma x P_Daly (analytic Eq. 3 waste and per-job I/O fraction)"
    ~columns ~rows

let optimal_periods ~pool ?(reps = 10) ?(seed = 42) ?(days = 20.0)
    ?(bandwidths_gbs = [ 30.0; 40.0; 60.0; 100.0 ]) () =
  let strategies =
    [
      Strategy.Ordered_nb Strategy.Daly;
      Strategy.Ordered_nb Strategy.Optimal;
      Strategy.Least_waste;
    ]
  in
  let rows =
    List.map
      (fun b ->
        let platform = Platform.cielo ~bandwidth_gbs:b ~node_mtbf_years:2.0 () in
        let counts =
          Cocheck_core.Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform
        in
        let bound =
          (Cocheck_core.Lower_bound.solve_model ~classes:counts ~platform ())
            .Cocheck_core.Lower_bound.waste
        in
        {
          label = Printf.sprintf "%g GB/s" b;
          values =
            mc ~pool ~platform ~strategies ~reps ~seed ~days ()
            @ [ ("Theoretical Model", bound) ];
        })
      bandwidths_gbs
  in
  build_study
    ~title:
      "Ablation: Daly vs Theorem-1 (Optimal) checkpoint periods under the non-blocking \
       scheduler (Cielo, 2y node MTBF)"
    ~columns:(strategy_columns strategies @ [ "Theoretical Model" ])
    ~rows

let two_level ~pool ?(reps = 8) ?(seed = 42) ?(days = 20.0)
    ?(soft_fractions = [ 0.0; 0.3; 0.6; 0.9 ]) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  let strategy = Strategy.Least_waste in
  (* Local snapshots priced like an SCR XOR level: ~3% of a global commit. *)
  let ml soft_fraction =
    Cocheck_sim.Config.local_level ~period_s:600.0 ~cost_s:10.0 ~recovery_s:30.0
      ~soft_fraction
  in
  let eap = List.hd Apex.lanl_workload in
  let analytic soft_fraction =
    Cocheck_core.Two_level.optimal_waste
      {
        Cocheck_core.Two_level.local_cost_s = 10.0;
        local_recovery_s = 30.0;
        global_cost_s = App_class.ckpt_time eap ~platform;
        global_recovery_s = App_class.recovery_time eap ~platform;
        mtbf_s = App_class.mtbf eap ~platform;
        soft_fraction;
      }
  in
  let single_level =
    Montecarlo.mean_waste ~pool ~platform ~strategy ~reps ~seed ~days ()
  in
  let rows =
    List.map
      (fun soft ->
        let w =
          Montecarlo.mean_waste ~pool ~platform ~strategy ~reps ~seed ~days
            ~multilevel:(ml soft) ()
        in
        {
          label = Printf.sprintf "soft=%g" soft;
          values =
            [
              ("single-level", single_level);
              ("two-level", w);
              ("analytic EAP two-level", analytic soft);
            ];
        })
      soft_fractions
  in
  build_study
    ~title:
      "Ablation: two-level checkpointing under Least-Waste (Cielo, 40 GB/s, 2y node MTBF)"
    ~columns:[ "single-level"; "two-level"; "analytic EAP two-level" ]
    ~rows

let flush_bandwidth ~pool ?(reps = 8) ?(seed = 42) ?(days = 20.0)
    ?(flush_gbs = [ 2.0; 5.0; 10.0; 20.0; 40.0 ]) ?(capacity_gb = 400_000.0)
    ?(buffer_gbs = 1_000.0) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  let strategies =
    [
      Strategy.Oblivious Strategy.Daly;
      Strategy.Ordered_nb Strategy.Daly;
      Strategy.Least_waste;
    ]
  in
  (* One buffer level in front of the PFS whose background flush edge is
     the swept parameter; survival 1.0 keeps failures from erasing it so
     the sweep isolates the drain-bandwidth effect. *)
  let ml f =
    {
      Cocheck_sim.Config.levels =
        [
          Cocheck_sim.Config.Buffer
            {
              Cocheck_sim.Config.bl_capacity_gb = capacity_gb;
              bl_bandwidth_gbs = buffer_gbs;
              bl_flush_gbs = Some f;
              bl_survival = 1.0;
            };
        ];
    }
  in
  let counts =
    Cocheck_core.Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform
  in
  let rows =
    List.map
      (fun f ->
        let bound =
          (Cocheck_core.Lower_bound.solve_model_hierarchical ~classes:counts ~platform
             ~absorb_bandwidth_gbs:buffer_gbs ~edge_bandwidths_gbs:[ f ] ())
            .Cocheck_core.Lower_bound.waste
        in
        {
          label = Printf.sprintf "%g GB/s" f;
          values =
            mc ~pool ~platform ~strategies ~reps ~seed ~days ~multilevel:(ml f) ()
            @ [ ("Hierarchical Bound", bound) ];
        })
      flush_gbs
  in
  build_study
    ~title:
      (Printf.sprintf
         "Ablation: background-flush bandwidth of a %.0f GB/s buffer tier (Cielo, 40 \
          GB/s PFS, 2y node MTBF; hierarchical lower bound in the right column)"
         buffer_gbs)
    ~columns:(strategy_columns strategies @ [ "Hierarchical Bound" ])
    ~rows

let fixed_period ~pool ?(reps = 8) ?(seed = 42) ?(days = 20.0)
    ?(periods_s = [ 1800.0; 3600.0; 7200.0; 14400.0 ]) () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:5.0 () in
  let obl_daly_ref, onb_daly_ref =
    match
      mc ~pool ~platform
        ~strategies:[ Strategy.Oblivious Strategy.Daly; Strategy.Ordered_nb Strategy.Daly ]
        ~reps ~seed ~days ()
    with
    | [ (_, obl); (_, onb) ] -> (obl, onb)
    | _ -> assert false
  in
  let rows =
    List.map
      (fun p ->
        let obl_fixed, onb_fixed =
          match
            mc ~pool ~platform
              ~strategies:
                [ Strategy.Oblivious (Strategy.Fixed p);
                  Strategy.Ordered_nb (Strategy.Fixed p) ]
              ~reps ~seed ~days ()
          with
          | [ (_, obl); (_, onb) ] -> (obl, onb)
          | _ -> assert false
        in
        {
          label = Format.asprintf "%a" Units.pp_duration p;
          values =
            [
              ("Oblivious-Fixed", obl_fixed);
              ("Ordered-NB-Fixed", onb_fixed);
              ("Oblivious-Daly (ref)", obl_daly_ref);
              ("Ordered-NB-Daly (ref)", onb_daly_ref);
            ];
        })
      periods_s
  in
  build_study
    ~title:
      "Ablation: fixed-period sensitivity (Cielo, 40 GB/s, 5y node MTBF; Daly references \
       in the right columns)"
    ~columns:
      [ "Oblivious-Fixed"; "Ordered-NB-Fixed"; "Oblivious-Daly (ref)";
        "Ordered-NB-Daly (ref)" ]
    ~rows
