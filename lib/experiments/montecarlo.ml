open Cocheck_util
module Pool = Cocheck_parallel.Pool
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator

type measurement = {
  strategy : Strategy.t;
  ratios : float array;
  stats : Stats.candlestick;
}

(* A large odd multiplier spreads replication seeds far apart in the
   SplitMix expansion space. *)
let rep_seed ~seed ~rep = seed + (1_000_003 * rep)

let slug name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '-')
    name

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_manifest ~dir ~rep ~cfg ~result ~ratio =
  let path =
    Filename.concat dir
      (Printf.sprintf "rep%03d-%s.json" rep
         (slug (Strategy.name cfg.Config.strategy)))
  in
  Cocheck_obs.Manifest.write ~path
    (Cocheck_obs.Manifest.make ~cfg ~result
       ~extra:
         [
           ("rep", Cocheck_obs.Json.Int rep);
           ("waste_ratio", Cocheck_obs.Json.Float ratio);
         ]
       ())

let one_rep ~platform ~classes ~strategies ~days ~seed ~failure_dist
    ~interference_alpha ~burst_buffer ~multilevel ~manifest_dir rep =
  let cfg strategy =
    Config.make ~platform ?classes ~strategy ~seed:(rep_seed ~seed ~rep) ~days
      ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ()
  in
  let baseline_cfg = cfg Strategy.Baseline in
  let specs = Simulator.generate_specs baseline_cfg in
  let baseline = Simulator.run ~specs baseline_cfg in
  Array.map
    (fun strategy ->
      let r = Simulator.run ~specs (cfg strategy) in
      let ratio = Simulator.waste_ratio ~strategy:r ~baseline in
      Option.iter
        (fun dir -> write_manifest ~dir ~rep ~cfg:(cfg strategy) ~result:r ~ratio)
        manifest_dir;
      ratio)
    (Array.of_list strategies)

let measure ~pool ~platform ?classes ~strategies ~reps ~seed ?(days = 60.0)
    ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ?manifest_dir () =
  if reps <= 0 then invalid_arg "Montecarlo.measure: reps must be positive";
  Option.iter ensure_dir manifest_dir;
  (* rows is reps x strategies; the per-strategy columns come out with an
     O(reps) array stride each, not a List.nth scan. *)
  let rows =
    Pool.init_array pool reps
      (one_rep ~platform ~classes ~strategies ~days ~seed ~failure_dist
         ~interference_alpha ~burst_buffer ~multilevel ~manifest_dir)
  in
  List.mapi
    (fun i strategy ->
      let ratios = Array.map (fun row -> row.(i)) rows in
      { strategy; ratios; stats = Stats.candlestick ratios })
    strategies

let mean_waste ~pool ~platform ?classes ~strategy ~reps ~seed ?(days = 60.0)
    ?failure_dist ?interference_alpha ?burst_buffer ?multilevel () =
  match
    measure ~pool ~platform ?classes ~strategies:[ strategy ] ~reps ~seed ~days
      ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ()
  with
  | [ m ] -> m.stats.Stats.mean
  | _ -> assert false
