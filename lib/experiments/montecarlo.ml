open Cocheck_util
module Strategy = Cocheck_core.Strategy

type measurement = {
  strategy : Strategy.t;
  ratios : float array;
  stats : Stats.candlestick;
}

let rep_seed = Spec.rep_seed

let measure ~pool ~platform ?classes ~strategies ~reps ~seed ?(days = 60.0)
    ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ?manifest_dir () =
  if reps <= 0 then invalid_arg "Montecarlo.measure: reps must be positive";
  let spec =
    Spec.make ~name:"montecarlo" ~platform ?classes ~strategies ~reps ~seed ~days
      ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ()
  in
  let outcome = Runner.run ~pool ?store:(Option.map Store.open_ manifest_dir) spec in
  List.map
    (fun (r : Runner.cell_result) ->
      { strategy = r.Runner.strategy; ratios = r.ratios; stats = r.stats })
    outcome.Runner.results

let mean_waste ~pool ~platform ?classes ~strategy ~reps ~seed ?(days = 60.0)
    ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ?manifest_dir () =
  match
    measure ~pool ~platform ?classes ~strategies:[ strategy ] ~reps ~seed ~days
      ?failure_dist ?interference_alpha ?burst_buffer ?multilevel ?manifest_dir ()
  with
  | [ m ] -> m.stats.Stats.mean
  | _ -> assert false
