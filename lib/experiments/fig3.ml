module Strategy = Cocheck_core.Strategy
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Platform = Cocheck_model.Platform
module Apex = Cocheck_model.Apex

let default_mtbf_years = [ 5.0; 10.0; 15.0; 20.0; 25.0 ]

(* Smallest bandwidth with f(β) <= 0, for f decreasing in β, by growing a
   geometric bracket and bisecting in log space. *)
let log_bisect ~f ~lo0 ~hi0 ~iters =
  let lo = ref lo0 and hi = ref hi0 in
  while f !hi > 0.0 && !hi < 1e7 do
    lo := !hi;
    hi := !hi *. 2.0
  done;
  if f !hi > 0.0 then !hi
  else begin
    (* Make sure lo is genuinely infeasible to bracket the crossing. *)
    if f !lo <= 0.0 then !lo
    else begin
      for _ = 1 to iters do
        let mid = sqrt (!lo *. !hi) in
        if f mid <= 0.0 then hi := mid else lo := mid
      done;
      !hi
    end
  end

let prospective_classes ?classes () =
  match classes with
  | Some cs -> cs
  | None -> Apex.scaled_workload ~target:(Platform.prospective ())

let min_bandwidth_theoretical ?classes ~node_mtbf_years ~target_efficiency () =
  let classes = prospective_classes ?classes () in
  let target_waste = 1.0 -. target_efficiency in
  let waste_at beta =
    let platform = Platform.prospective ~bandwidth_gbs:beta ~node_mtbf_years () in
    let counts = Waste.steady_state_counts ~classes ~platform in
    match Lower_bound.solve_model ~classes:counts ~platform () with
    | r -> r.Lower_bound.waste
    | exception Invalid_argument _ -> infinity (* regular I/O saturates β *)
  in
  log_bisect ~f:(fun beta -> waste_at beta -. target_waste) ~lo0:10.0 ~hi0:100.0 ~iters:40

let min_bandwidth ~pool ~strategy ~node_mtbf_years ~target_efficiency ~reps ~seed ~days
    ?(iters = 9) ?manifest_dir () =
  let classes = prospective_classes () in
  let target_waste = 1.0 -. target_efficiency in
  let waste_at beta =
    let platform = Platform.prospective ~bandwidth_gbs:beta ~node_mtbf_years () in
    Montecarlo.mean_waste ~pool ~platform ~classes ~strategy ~reps ~seed ~days
      ?manifest_dir ()
  in
  log_bisect ~f:(fun beta -> waste_at beta -. target_waste) ~lo0:50.0 ~hi0:400.0 ~iters

let run ~pool ?(mtbf_years = default_mtbf_years) ?(target_efficiency = 0.8) ?(reps = 5)
    ?(seed = 42) ?(days = 20.0) ?(iters = 9) ?(strategies = Strategy.paper_seven)
    ?manifest_dir () =
  let strategy_series strategy =
    {
      Figures.label = Strategy.name strategy;
      points =
        List.map
          (fun y ->
            let b =
              min_bandwidth ~pool ~strategy ~node_mtbf_years:y ~target_efficiency ~reps
                ~seed ~days ~iters ?manifest_dir ()
            in
            (* Synthesise a degenerate candlestick so the table shows the
               search result without a fake spread. *)
            Figures.analytic_point ~x:y (b /. 1000.0))
          mtbf_years;
    }
  in
  let theoretical =
    {
      Figures.label = "Theoretical Model";
      points =
        List.map
          (fun y ->
            Figures.analytic_point ~x:y
              (min_bandwidth_theoretical ~node_mtbf_years:y ~target_efficiency ()
              /. 1000.0))
          mtbf_years;
    }
  in
  {
    Figures.id = "fig3";
    title =
      Printf.sprintf
        "Min bandwidth for %.0f%% efficiency (prospective system, %d reps/probe, %gd segments)"
        (100.0 *. target_efficiency)
        reps days;
    x_label = "Node MTBF (years)";
    y_label = "Min. bandwidth (TB/s)";
    log_x = false;
    series = List.map strategy_series strategies @ [ theoretical ];
  }
