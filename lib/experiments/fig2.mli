(** Figure 2: waste ratio as a function of node MTBF (2 → 50 years) for the
    seven strategies and the theoretical model — LANL APEX workload on
    Cielo with a 40 GB/s filesystem. *)

val default_mtbf_years : float list
(** 2, 3, 5, 10, 20, 35, 50 years — spanning the paper's log-scale axis. *)

val run :
  pool:Cocheck_parallel.Pool.t ->
  ?mtbf_years:float list ->
  ?bandwidth_gbs:float ->
  ?strategies:Cocheck_core.Strategy.t list ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?manifest_dir:string ->
  unit ->
  Figures.t
(** [strategies] overrides the swept set (default: the paper's seven) — the
    hook for comparing an added arbitration policy such as
    [Greedy_exposure] against the paper's curves. Builds a single {!Spec.t}
    over the MTBF axis and delegates to {!Runner.run}; [manifest_dir] is a
    {!Runner} results store, so interrupted figure campaigns resume and
    warm re-runs simulate nothing. *)
