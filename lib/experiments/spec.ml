module Json = Cocheck_obs.Json
module Manifest = Cocheck_obs.Manifest
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Failure_trace = Cocheck_sim.Failure_trace
module Burst_buffer = Cocheck_sim.Burst_buffer
module Units = Cocheck_util.Units

type axis =
  | No_sweep
  | Mtbf_years of float list
  | Bandwidth_gbs of float list
  | Flush_gbs of float list
      (* sweeps the dedicated flush bandwidth of every buffer level *)

type t = {
  name : string;
  platform : Platform.t;
  classes : App_class.t list option;
  strategies : Strategy.t list;
  axis : axis;
  reps : int;
  seed : int;
  days : float;
  failure_dist : Failure_trace.distribution option;
  interference_alpha : float option;
  burst_buffer : Burst_buffer.spec option;
  multilevel : Config.multilevel option;
}

let validate t =
  if t.strategies = [] then invalid_arg "Spec: empty strategy set";
  if t.reps <= 0 then invalid_arg "Spec: reps must be positive";
  if t.days <= 0.0 then invalid_arg "Spec: days must be positive";
  let check_axis what = function
    | [] -> invalid_arg (Printf.sprintf "Spec: empty %s axis" what)
    | vs ->
        if List.exists (fun v -> v <= 0.0 || not (Float.is_finite v)) vs then
          invalid_arg (Printf.sprintf "Spec: %s values must be positive" what)
  in
  match t.axis with
  | No_sweep -> ()
  | Mtbf_years ys -> check_axis "MTBF" ys
  | Bandwidth_gbs bs -> check_axis "bandwidth" bs
  | Flush_gbs fs ->
      check_axis "flush bandwidth" fs;
      let has_buffer =
        match t.multilevel with
        | Some m ->
            List.exists
              (function Config.Buffer _ -> true | Config.Snapshot _ -> false)
              m.Config.levels
        | None -> false
      in
      if not has_buffer then
        invalid_arg "Spec: flush-bandwidth axis needs a multilevel buffer level"

let make ?(name = "campaign") ~platform ?classes ~strategies ?(axis = No_sweep)
    ?(reps = 100) ?(seed = 42) ?(days = 60.0) ?failure_dist ?interference_alpha
    ?burst_buffer ?multilevel () =
  let t =
    {
      name;
      platform;
      classes;
      strategies;
      axis;
      reps;
      seed;
      days;
      failure_dist;
      interference_alpha;
      burst_buffer;
      multilevel;
    }
  in
  validate t;
  t

(* ------------------------------------------------------------------ *)
(* Cell expansion                                                       *)
(* ------------------------------------------------------------------ *)

type cell = { x : float option; platform : Platform.t }

let cells t =
  match t.axis with
  | No_sweep -> [ { x = None; platform = t.platform } ]
  | Mtbf_years ys ->
      List.map
        (fun y -> { x = Some y; platform = Platform.with_node_mtbf t.platform (Units.years y) })
        ys
  | Bandwidth_gbs bs ->
      List.map (fun b -> { x = Some b; platform = Platform.with_bandwidth t.platform b }) bs
  | Flush_gbs fs -> List.map (fun f -> { x = Some f; platform = t.platform }) fs

let axis_label t =
  match t.axis with
  | No_sweep -> ""
  | Mtbf_years _ -> "Node MTBF (years)"
  | Bandwidth_gbs _ -> "System Aggregated Bandwidth (GB/s)"
  | Flush_gbs _ -> "Flush Bandwidth (GB/s)"

let log_x t = match t.axis with Mtbf_years _ -> true | _ -> false

let rep_seed ~seed ~rep = seed + (1_000_003 * rep)

(* Give every buffer level of [m] a dedicated flush edge of [f] GB/s. *)
let with_flush_gbs m f =
  {
    Config.levels =
      List.map
        (function
          | Config.Buffer b -> Config.Buffer { b with Config.bl_flush_gbs = Some f }
          | l -> l)
        m.Config.levels;
  }

let config t ~cell ~strategy ~rep =
  let multilevel =
    match (t.axis, cell.x) with
    | Flush_gbs _, Some f -> Option.map (fun m -> with_flush_gbs m f) t.multilevel
    | _ -> t.multilevel
  in
  Config.make ~platform:cell.platform ?classes:t.classes ~strategy
    ~seed:(rep_seed ~seed:t.seed ~rep) ~days:t.days ?failure_dist:t.failure_dist
    ?interference_alpha:t.interference_alpha ?burst_buffer:t.burst_buffer
    ?multilevel ()

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let schema = "cocheck.campaign"
let version = 1

(* Strategies are encoded structurally, not by display name: Strategy.name
   prints Fixed periods through %g, which is lossy for arbitrary floats,
   and the spec must round-trip exactly. *)
let rule_to_json = function
  | Strategy.Daly -> Json.String "daly"
  | Strategy.Optimal -> Json.String "optimal"
  | Strategy.Fixed period_s -> Json.Obj [ ("fixed_s", Json.Float period_s) ]

let strategy_to_json = function
  | Strategy.Oblivious r -> Json.Obj [ ("oblivious", rule_to_json r) ]
  | Strategy.Ordered r -> Json.Obj [ ("ordered", rule_to_json r) ]
  | Strategy.Ordered_nb r -> Json.Obj [ ("ordered_nb", rule_to_json r) ]
  | Strategy.Least_waste -> Json.String "least-waste"
  | Strategy.Greedy_exposure -> Json.String "greedy-exposure"
  | Strategy.Baseline -> Json.String "baseline"

let ( let* ) r f = Result.bind r f

let rule_of_json = function
  | Json.String "daly" -> Ok Strategy.Daly
  | Json.String "optimal" -> Ok Strategy.Optimal
  | Json.Obj _ as j -> (
      match Option.bind (Json.member "fixed_s" j) Json.to_float_opt with
      | Some p -> Ok (Strategy.Fixed p)
      | None -> Error "spec: bad period rule object")
  | _ -> Error "spec: bad period rule"

let strategy_of_json = function
  | Json.String s -> Strategy.of_string s
  | Json.Obj [ (kind, rule) ] -> (
      let* r = rule_of_json rule in
      match kind with
      | "oblivious" -> Ok (Strategy.Oblivious r)
      | "ordered" -> Ok (Strategy.Ordered r)
      | "ordered_nb" -> Ok (Strategy.Ordered_nb r)
      | other -> Error (Printf.sprintf "spec: unknown strategy kind %S" other))
  | _ -> Error "spec: bad strategy encoding"

let axis_to_json = function
  | No_sweep -> Json.Obj [ ("sweep", Json.String "none") ]
  | Mtbf_years ys ->
      Json.Obj
        [
          ("sweep", Json.String "mtbf_years");
          ("values", Json.List (List.map (fun v -> Json.Float v) ys));
        ]
  | Bandwidth_gbs bs ->
      Json.Obj
        [
          ("sweep", Json.String "bandwidth_gbs");
          ("values", Json.List (List.map (fun v -> Json.Float v) bs));
        ]
  | Flush_gbs fs ->
      Json.Obj
        [
          ("sweep", Json.String "flush_gbs");
          ("values", Json.List (List.map (fun v -> Json.Float v) fs));
        ]

let axis_of_json j =
  let values () =
    match Option.bind (Json.member "values" j) Json.to_list_opt with
    | None -> Error "spec: axis has no values"
    | Some vs ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | v :: rest -> (
              match Json.to_float_opt v with
              | Some f -> go (f :: acc) rest
              | None -> Error "spec: non-numeric axis value")
        in
        go [] vs
  in
  match Option.bind (Json.member "sweep" j) Json.to_string_opt with
  | Some "none" -> Ok No_sweep
  | Some "mtbf_years" ->
      let* vs = values () in
      Ok (Mtbf_years vs)
  | Some "bandwidth_gbs" ->
      let* vs = values () in
      Ok (Bandwidth_gbs vs)
  | Some "flush_gbs" ->
      let* vs = values () in
      Ok (Flush_gbs vs)
  | Some other -> Error (Printf.sprintf "spec: unknown sweep kind %S" other)
  | None -> Error "spec: axis has no sweep kind"

let to_json t =
  let optional name = function None -> [] | Some j -> [ (name, j) ] in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("version", Json.Int version);
       ("name", Json.String t.name);
       ("platform", Manifest.platform_to_json t.platform);
     ]
    @ optional "classes"
        (Option.map
           (fun cs -> Json.List (List.map Manifest.app_class_to_json cs))
           t.classes)
    @ [
        ("strategies", Json.List (List.map strategy_to_json t.strategies));
        ("axis", axis_to_json t.axis);
        ("reps", Json.Int t.reps);
        ("seed", Json.Int t.seed);
        ("days", Json.Float t.days);
      ]
    @ optional "failure_dist" (Option.map Manifest.failure_dist_to_json t.failure_dist)
    @ optional "interference_alpha"
        (Option.map (fun a -> Json.Float a) t.interference_alpha)
    @ optional "burst_buffer" (Option.map Manifest.burst_buffer_to_json t.burst_buffer)
    @ optional "multilevel" (Option.map Manifest.multilevel_to_json t.multilevel))

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "spec: missing or invalid field %S" name)

let optional_member name conv j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some sub ->
      let* v = conv sub in
      Ok (Some v)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* v = f x in
      let* vs = collect f rest in
      Ok (v :: vs)

let of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some other -> Error (Printf.sprintf "spec: unexpected schema %S" other)
    | None -> Error "spec: no schema field"
  in
  let* name = field "name" Json.to_string_opt j in
  let* platform = field "platform" (fun p -> Some p) j in
  let* platform = Manifest.platform_of_json platform in
  let* classes =
    optional_member "classes"
      (fun cj ->
        match Json.to_list_opt cj with
        | Some l -> collect Manifest.app_class_of_json l
        | None -> Error "spec: classes is not a list")
      j
  in
  let* strategy_list = field "strategies" Json.to_list_opt j in
  let* strategies = collect strategy_of_json strategy_list in
  let* axis = field "axis" (fun a -> Some a) j in
  let* axis = axis_of_json axis in
  let* reps = field "reps" Json.to_int_opt j in
  let* seed = field "seed" Json.to_int_opt j in
  let* days = field "days" Json.to_float_opt j in
  let* failure_dist = optional_member "failure_dist" Manifest.failure_dist_of_json j in
  let* interference_alpha =
    optional_member "interference_alpha"
      (fun a ->
        match Json.to_float_opt a with
        | Some f -> Ok f
        | None -> Error "spec: bad interference_alpha")
      j
  in
  let* burst_buffer = optional_member "burst_buffer" Manifest.burst_buffer_of_json j in
  let* multilevel = optional_member "multilevel" Manifest.multilevel_of_json j in
  let t =
    {
      name;
      platform;
      classes;
      strategies;
      axis;
      reps;
      seed;
      days;
      failure_dist;
      interference_alpha;
      burst_buffer;
      multilevel;
    }
  in
  match validate t with () -> Ok t | exception Invalid_argument e -> Error e

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty (to_json t)))

let load ~path =
  match Manifest.load ~path with Ok j -> of_json j | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Digests                                                              *)
(* ------------------------------------------------------------------ *)

let hex_digest json = Digest.to_hex (Digest.string (Json.to_string json))

let digest t = hex_digest (to_json t)

(* The key is derived from the exact Config.t of the point — the complete
   set of result-determining fields — plus the structural strategy
   encoding (Config serializes the strategy by display name, which
   collapses nearby Fixed periods). *)
let cell_key t ~cell ~strategy ~rep =
  hex_digest
    (Json.Obj
       [
         ("schema", Json.String "cocheck.cell/1");
         ("config", Manifest.config_to_json (config t ~cell ~strategy ~rep));
         ("strategy", strategy_to_json strategy);
       ])
