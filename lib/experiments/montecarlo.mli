(** Replicated simulation: the paper's Monte Carlo protocol.

    This is now a compatibility shim over the campaign engine: [measure]
    builds an unswept {!Spec.t} and delegates to {!Runner.run}, so callers
    get the same results (same per-replication seeds, same aggregation
    order) plus, through [manifest_dir], the runner's resumable results
    store.

    Each replication draws fresh initial conditions (job list and failure
    trace) from [seed + replication]; all strategies within a replication
    share the same job list and are normalised by the same failure-free
    baseline run, and the waste ratios are aggregated across replications
    into candlestick statistics. *)

type measurement = {
  strategy : Cocheck_core.Strategy.t;
  ratios : float array;  (** one waste ratio per replication *)
  stats : Cocheck_util.Stats.candlestick;
}

val measure :
  pool:Cocheck_parallel.Pool.t ->
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  strategies:Cocheck_core.Strategy.t list ->
  reps:int ->
  seed:int ->
  ?days:float ->
  ?failure_dist:Cocheck_sim.Failure_trace.distribution ->
  ?interference_alpha:float ->
  ?burst_buffer:Cocheck_sim.Burst_buffer.spec ->
  ?multilevel:Cocheck_sim.Config.multilevel ->
  ?manifest_dir:string ->
  unit ->
  measurement list
(** Run [reps] replications of every strategy (plus the shared baselines)
    on the pool. [days] is the measurement-segment length (default 60, the
    paper's; experiments routinely shrink it to trade fidelity for time).
    [manifest_dir] (created if missing) is a {!Runner} results store: every
    completed (replication, strategy) data point persists one
    digest-keyed JSON record capturing its exact coordinates and waste
    ratio, cached points are loaded instead of re-simulated, and an
    interrupted campaign resumes where it stopped. *)

val mean_waste :
  pool:Cocheck_parallel.Pool.t ->
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  strategy:Cocheck_core.Strategy.t ->
  reps:int ->
  seed:int ->
  ?days:float ->
  ?failure_dist:Cocheck_sim.Failure_trace.distribution ->
  ?interference_alpha:float ->
  ?burst_buffer:Cocheck_sim.Burst_buffer.spec ->
  ?multilevel:Cocheck_sim.Config.multilevel ->
  ?manifest_dir:string ->
  unit ->
  float
(** Mean waste ratio of a single strategy — the Figure 3 search probe.
    [manifest_dir] threads through to the same results store as
    {!measure}, so repeated probes (e.g. bisection re-runs) are cached. *)

val rep_seed : seed:int -> rep:int -> int
(** The derived per-replication seed (defined once, in {!Spec.rep_seed};
    exposed here for reproducibility tests). *)
