(** The campaign service's typed wire protocol: one JSON object per line
    ({!Cocheck_obs.Wire}), each frame carrying a client-chosen [id] that
    the reply — and every streamed progress frame — echoes, so a client
    can correlate frames however it pipelines requests.

    Requests: [{"id":N,"op":"campaign","spec":{...},"progress":true}] and
    friends. Replies: [{"id":N,"reply":"campaign",...}], with zero or
    more [{"id":N,"reply":"progress","event":{...}}] frames (the
    {!Runner.progress_event} JSON, verbatim) streamed before the final
    reply when the request asked for progress. Unknown ops and malformed
    frames produce an ["error"] reply, never a closed connection. *)

type request =
  | Ping
  | Stats  (** store + admission counters *)
  | Shutdown  (** stop accepting, drain, exit the serve loop *)
  | Campaign of { spec : Spec.t; progress : bool }
      (** run (or warm-load) a campaign; [progress] streams per-point frames *)
  | Status of { spec : Spec.t }  (** store coverage without running *)
  | Bound of { platform : Cocheck_model.Platform.t }
      (** Theorem 1 lower bound for a platform (steady-state APEX mix) *)
  | Waste of { platform : Cocheck_model.Platform.t }
      (** the analytic waste model: the bound's waste value alone *)

type cell_summary = {
  x : float option;
  strategy : string;
  mean : float;
  median : float;
  q1 : float;
  q3 : float;
}
(** One (cell, strategy) aggregate of a campaign reply — the candlestick
    core, enough to draw the paper's figures client-side. *)

type response =
  | Pong
  | Bye
  | Overload of { inflight : int; limit : int }
      (** admission refused: [inflight] points already queued against a
          bound of [limit]; retry later (explicit backpressure instead of
          unbounded buffering) *)
  | Error of string
  | Progress of Runner.progress_event
  | Campaign_result of {
      elapsed_s : float;
      simulated : int;
      baselines : int;
      loaded : int;
      total_points : int;
      cells : cell_summary list;
    }
  | Status_result of { total : int; cached : int; missing : int }
  | Bound_result of { waste : float; lambda : float; io_fraction : float }
  | Waste_result of { waste : float }
  | Stats_result of {
      store : Store.stats;
      indexed : int;
      inflight : int;
      served : int;
    }

val request_to_json : id:int -> request -> Cocheck_obs.Json.t
val request_of_json : Cocheck_obs.Json.t -> (int * request, string) result
val response_to_json : id:int -> response -> Cocheck_obs.Json.t
val response_of_json : Cocheck_obs.Json.t -> (int * response, string) result
