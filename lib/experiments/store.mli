(** The campaign results store as a subsystem: a sharded on-disk record
    directory behind a bounded in-memory index, safe for concurrent
    readers and writers in one process and across processes.

    {b Layout.} One JSON record per {!Spec.cell_key} digest, sharded by
    the first two hex characters of the key:
    [store/<2-hex>/<key>.json]. 256 shards bound the per-directory
    fan-out at any store size, and a lookup is one path probe — no
    directory listing. Stores written by the flat pre-shard layout
    ([store/<key>.json]) are migrated on open (rename into shards;
    records a racing opener already moved are skipped), and unmigrated
    flat records still hit via a fallback probe, so an old store is
    usable mid-migration.

    {b Index.} Loaded ratios are cached in a bounded in-memory index with
    FIFO eviction (insertion-order ring). Campaign queries read each key
    once, so recency tracking buys nothing over insertion order; repeated
    warm queries stay fully indexed up to [capacity]. The index is an
    optimisation only — an evicted or never-loaded key falls back to its
    record file.

    {b Writes.} Atomic temp + rename, with process-unique temp names
    (pid + counter): concurrent clients querying the same spec race on
    the same key, and records are deterministic, so racing writers
    produce byte-identical files and the last rename wins harmlessly.
    A corrupt or truncated record always demotes to a miss. *)

type t

val open_ : ?capacity:int -> string -> t
(** Open (creating if missing) the store rooted at a directory, migrating
    any flat-layout records into shards. [capacity] bounds the in-memory
    index (default 65536 entries). *)

val dir : t -> string

val find : t -> string -> float option
(** The cached waste ratio under a key: from the index, else from the
    record file (indexing it), else [None]. Malformed records are
    misses. Thread-safe; file reads happen outside the store lock. *)

val contains : t -> string -> bool
(** Whether a record exists (index or disk), without reading it. *)

val add : t -> key:string -> ratio:float -> Cocheck_obs.Json.t -> unit
(** Persist a record atomically under its shard and index its ratio. *)

val path_of_key : t -> string -> string
(** The sharded record path of a key (exists or not). *)

val flat_path : t -> string -> string
(** The record path under the legacy flat layout (test/migration aid). *)

val record_count : t -> int
(** Records on disk, across all shards (scans the directory tree). *)

val iter_keys : t -> (string -> unit) -> unit
(** Every record key on disk, any order. *)

val compact : t -> int
(** Remove orphaned [*.tmp] files left by crashed writers; returns the
    number removed. Call on a quiescent store (live writers' temps are
    process-unique and short-lived, but compacting mid-write can still
    race a rename). *)

type stats = {
  hits : int;  (** index hits *)
  misses : int;  (** keys found neither in index nor on disk *)
  loads : int;  (** records read from disk into the index *)
  writes : int;  (** records persisted *)
  evictions : int;  (** index entries dropped by the FIFO ring *)
  migrated : int;  (** flat-layout records moved into shards at open *)
}

val stats : t -> stats

val indexed : t -> int
(** Live index entries (≤ capacity). *)
