(** The campaign engine: expands a {!Spec.t} into (cell, strategy,
    replication) points, executes them over a worker pool, and — when given
    a results store — persists every completed point incrementally and
    loads cache hits instead of re-simulating.

    The store ({!Store}) keeps one small JSON record per {!Spec.cell_key}
    digest, sharded by key prefix. Records are written atomically (temp
    file + rename), so a campaign killed mid-flight leaves only complete
    records behind and a re-run resumes exactly where it stopped:
    cooperative checkpointing for the checkpointing experiments. Because
    keys are derived from the exact per-point configuration, a store is
    shared across campaigns — growing [reps], extending the axis or
    adding strategies only simulates the new points.

    Determinism: replication [rep] of any cell always runs at
    [Spec.rep_seed ~seed ~rep], and per-(cell, strategy) ratio arrays are
    indexed by replication, so results — including float summation order in
    the candlestick aggregation — are identical whatever the pool size,
    scheduling, or cache-hit pattern. *)

type cell_result = {
  x : float option;  (** the swept value; [None] for unswept campaigns *)
  platform : Cocheck_model.Platform.t;
  strategy : Cocheck_core.Strategy.t;
  ratios : float array;  (** one waste ratio per replication, in rep order *)
  stats : Cocheck_util.Stats.candlestick;
}

type outcome = {
  spec : Spec.t;
  results : cell_result list;
      (** cell-major, strategy-minor: the result of cell [c] and strategy
          index [s] is element [c * num_strategies + s] *)
  simulated : int;  (** strategy simulations executed by this run *)
  baselines : int;  (** baseline (normalisation) simulations executed *)
  loaded : int;  (** results loaded from the store instead of simulated *)
}

type progress_event =
  | Point of {
      seq : int;  (** 1-based emission order, monotone across workers *)
      elapsed_s : float;  (** wall seconds since [run] started *)
      cell : int;  (** cell index in axis order *)
      x : float option;
      rep : int;
      strategy : string;
      source : [ `Cached | `Simulated ];
      done_points : int;  (** points completed so far, including this one *)
      total_points : int;
    }
  | Finished of {
      elapsed_s : float;
      simulated : int;
      baselines : int;
      loaded : int;
      total_points : int;
    }
(** One line of live campaign progress: a [Point] per completed
    (cell, strategy, replication) and a terminal [Finished]. Events are
    emitted under a mutex, so [seq] and [done_points] are monotone even
    with many pool workers. *)

val progress_to_json : progress_event -> Cocheck_obs.Json.t
(** One JSONL-ready object ([{"event":"point",...}] / [{"event":"end",...}]). *)

val progress_of_json : Cocheck_obs.Json.t -> progress_event option
(** Inverse of {!progress_to_json}; [None] on unknown or malformed
    events (forward compatibility for [status --follow]). *)

val run :
  pool:Cocheck_parallel.Pool.t ->
  ?store:Store.t ->
  ?tenant:Cocheck_parallel.Pool.tenant ->
  ?tracer:Cocheck_obs.Tracing.t ->
  ?on_progress:(progress_event -> unit) ->
  Spec.t ->
  outcome
(** Execute the campaign. Without [store], everything is simulated in
    memory. With [store], each completed (cell, strategy, replication)
    immediately persists one record, cached records are loaded instead of
    re-simulated, and a replication whose strategies are all cached skips
    its baseline run too — a fully warm store performs {e zero} simulator
    calls.

    [tenant] is the fair-queueing principal the cell tasks are submitted
    under: the campaign service gives each client connection its own, so
    concurrent campaigns round-robin the pool instead of queueing behind
    one another. Without it, tasks share the pool's default tenant.

    [tracer] (default {!Cocheck_obs.Tracing.disabled}) records one span
    per (cell, replication) task on the executing worker's track — tagged
    with a [source] arg of ["cached"] or ["simulated"] — with nested
    [generate] / [baseline] / [sim:<strategy>] child spans when the point
    actually simulates. [on_progress] receives every {!progress_event},
    serialized; it runs on worker domains, so keep it cheap (e.g. write
    one JSONL line). *)

type progress = { total : int; cached : int; missing : int }

val status : ?store:Store.t -> Spec.t -> progress
(** How much of the campaign the store already covers, without running
    anything. *)

val strategy_series : outcome -> Figures.series list
(** One {!Figures.series} per strategy (spec order), points over the cells
    in axis order. Pairing is index-based — no name matching. Unswept
    cells plot at [x = 0]. *)

val theoretical_waste :
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  unit ->
  float
(** The Theorem 1 bound for one cell's platform under its steady-state
    APEX (or given) class mix — the analytic companion of every simulated
    point. *)

val theory_series : Spec.t -> Figures.series
(** The "Theoretical Model" series over the spec's cells. *)

val to_figure : ?id:string -> ?title:string -> ?y_label:string -> outcome -> Figures.t
(** Generic figure assembly for swept campaigns: strategy series plus the
    theoretical-model series, labelled from the spec's axis. *)
