(** Figure 3: minimum aggregate filesystem bandwidth needed to sustain 80 %
    platform efficiency on the prospective system (50 000 nodes, 7 PB
    memory), as a function of node MTBF, for the seven strategies and the
    theoretical model.

    Each point is a log-space bisection over bandwidth; every Monte Carlo
    probe replicates [reps] simulations, so this is by far the most
    expensive experiment — the defaults are deliberately modest. *)

val default_mtbf_years : float list
(** 5, 10, 15, 20, 25 years — the paper's x axis. *)

val min_bandwidth_theoretical :
  ?classes:Cocheck_model.App_class.t list ->
  node_mtbf_years:float ->
  target_efficiency:float ->
  unit ->
  float
(** Smallest bandwidth (GB/s) at which the Theorem 1 bound allows the
    target efficiency on the prospective system. *)

val min_bandwidth :
  pool:Cocheck_parallel.Pool.t ->
  strategy:Cocheck_core.Strategy.t ->
  node_mtbf_years:float ->
  target_efficiency:float ->
  reps:int ->
  seed:int ->
  days:float ->
  ?iters:int ->
  ?manifest_dir:string ->
  unit ->
  float
(** Simulated search probe for one strategy/MTBF point (GB/s). With
    [manifest_dir], every Monte Carlo probe persists to (and reloads
    from) the digest-keyed {!Runner} results store. *)

val run :
  pool:Cocheck_parallel.Pool.t ->
  ?mtbf_years:float list ->
  ?target_efficiency:float ->
  ?reps:int ->
  ?seed:int ->
  ?days:float ->
  ?iters:int ->
  ?strategies:Cocheck_core.Strategy.t list ->
  ?manifest_dir:string ->
  unit ->
  Figures.t
(** Defaults: the paper's MTBF axis, 80 % target, 5 replications per probe,
    20-day segments, 9 bisection iterations. The y values are reported in
    TB/s like the paper's axis. [manifest_dir] is threaded to every
    bisection probe, so an interrupted search resumes from cache. *)
