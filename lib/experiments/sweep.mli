(** Shared machinery for waste-ratio sweeps over arbitrary
    [(x, platform)] point lists — a compatibility shim over the campaign
    engine ({!Spec}/{!Runner}): for each swept platform configuration,
    Monte Carlo the given strategies and evaluate the theoretical lower
    bound. Figures 1 and 2 now build their axis as a single {!Spec.t}
    directly; this entry point remains for irregular sweeps. *)

val theoretical_waste :
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  unit ->
  float
(** The Theorem 1 bound for a platform under its steady-state APEX (or
    given) class mix, with the bandwidth available for CR reduced by the
    regular-I/O demand. Alias of {!Runner.theoretical_waste}. *)

val waste_vs :
  pool:Cocheck_parallel.Pool.t ->
  points:(float * Cocheck_model.Platform.t) list ->
  ?classes:Cocheck_model.App_class.t list ->
  ?strategies:Cocheck_core.Strategy.t list ->
  reps:int ->
  seed:int ->
  ?days:float ->
  ?manifest_dir:string ->
  unit ->
  Figures.series list
(** One series per strategy (defaulting to the paper's seven) plus the
    "Theoretical Model" series, over the [(x, platform)] sweep. With
    [manifest_dir], every data point lands as one digest-keyed record in
    a shared {!Runner} results store (flat, no per-[x] subdirectories),
    and re-runs load cached points instead of re-simulating. *)
