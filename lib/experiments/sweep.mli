(** Shared machinery for the waste-ratio sweeps of Figures 1 and 2: for
    each swept platform configuration, Monte Carlo the seven strategies and
    evaluate the theoretical lower bound. *)

val theoretical_waste :
  platform:Cocheck_model.Platform.t ->
  ?classes:Cocheck_model.App_class.t list ->
  unit ->
  float
(** The Theorem 1 bound for a platform under its steady-state APEX (or
    given) class mix, with the bandwidth available for CR reduced by the
    regular-I/O demand. *)

val waste_vs :
  pool:Cocheck_parallel.Pool.t ->
  points:(float * Cocheck_model.Platform.t) list ->
  ?classes:Cocheck_model.App_class.t list ->
  ?strategies:Cocheck_core.Strategy.t list ->
  reps:int ->
  seed:int ->
  ?days:float ->
  ?manifest_dir:string ->
  unit ->
  Figures.series list
(** One series per strategy (defaulting to the paper's seven) plus the
    "Theoretical Model" series, over the [(x, platform)] sweep. With
    [manifest_dir], per-replication run manifests land in one [x<value>]
    subdirectory per sweep point (see {!Montecarlo.measure}). *)
