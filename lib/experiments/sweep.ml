module Strategy = Cocheck_core.Strategy

let theoretical_waste = Runner.theoretical_waste

let waste_vs ~pool ~points ?classes ?(strategies = Strategy.paper_seven) ~reps ~seed
    ?(days = 60.0) ?manifest_dir () =
  (* Arbitrary (x, platform) points cannot be expressed as one spec axis,
     so each point is its own unswept campaign; all share the digest-keyed
     results store, which replaces the old per-x manifest subdirectories. *)
  let outcomes =
    List.map
      (fun (x, platform) ->
        let spec =
          Spec.make ~name:(Printf.sprintf "sweep-x%g" x) ~platform ?classes ~strategies
            ~reps ~seed ~days ()
        in
        (x, Array.of_list (Runner.run ~pool ?store:(Option.map Store.open_ manifest_dir) spec).Runner.results))
      points
  in
  (* Index-based pairing: results are in strategy order within each
     outcome, so strategy i is element i — no per-point name search. *)
  let strategy_series =
    List.mapi
      (fun i strategy ->
        {
          Figures.label = Strategy.name strategy;
          points =
            List.map
              (fun (x, results) -> Figures.sim_point ~x results.(i).Runner.stats)
              outcomes;
        })
      strategies
  in
  let theory =
    {
      Figures.label = "Theoretical Model";
      points =
        List.map
          (fun (x, platform) ->
            Figures.analytic_point ~x (theoretical_waste ~platform ?classes ()))
          points;
    }
  in
  strategy_series @ [ theory ]
