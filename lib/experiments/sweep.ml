module Strategy = Cocheck_core.Strategy
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Platform = Cocheck_model.Platform
module Apex = Cocheck_model.Apex

let classes_for platform = function
  | Some cs -> cs
  | None ->
      if platform.Platform.name = "Cielo" then Apex.lanl_workload
      else Apex.scaled_workload ~target:platform

let theoretical_waste ~platform ?classes () =
  let classes = classes_for platform classes in
  let counts = Waste.steady_state_counts ~classes ~platform in
  (Lower_bound.solve_model ~classes:counts ~platform ()).Lower_bound.waste

let waste_vs ~pool ~points ?classes ?(strategies = Strategy.paper_seven) ~reps ~seed
    ?(days = 60.0) ?manifest_dir () =
  let measured =
    List.map
      (fun (x, platform) ->
        let manifest_dir =
          Option.map
            (fun dir -> Filename.concat dir (Printf.sprintf "x%g" x))
            manifest_dir
        in
        ( x,
          Montecarlo.measure ~pool ~platform
            ?classes:(Option.map (fun c -> c) classes)
            ~strategies ~reps ~seed ~days ?manifest_dir () ))
      points
  in
  let strategy_series strategy =
    {
      Figures.label = Strategy.name strategy;
      points =
        List.map
          (fun (x, ms) ->
            let m =
              List.find (fun m -> m.Montecarlo.strategy = strategy) ms
            in
            Figures.sim_point ~x m.Montecarlo.stats)
          measured;
    }
  in
  let theoretical =
    {
      Figures.label = "Theoretical Model";
      points =
        List.map
          (fun (x, platform) ->
            Figures.analytic_point ~x (theoretical_waste ~platform ?classes ()))
          points;
    }
  in
  List.map strategy_series strategies @ [ theoretical ]
