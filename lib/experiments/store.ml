module Json = Cocheck_obs.Json
module Manifest = Cocheck_obs.Manifest

type stats = {
  hits : int;
  misses : int;
  loads : int;
  writes : int;
  evictions : int;
  migrated : int;
}

type t = {
  dir : string;
  mutex : Mutex.t;
  index : (string, float) Hashtbl.t;
  (* FIFO eviction ring over the index keys: slot [ring_pos] is the next
     insertion point; evicting means dropping whatever key that slot still
     holds. O(1) per insert, bounded memory, no recency bookkeeping — a
     campaign reads each key once per query, so recency buys nothing over
     insertion order, and repeated warm queries stay fully indexed up to
     [capacity]. *)
  ring : string array;
  mutable ring_pos : int;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable loads : int;
  mutable writes : int;
  mutable evictions : int;
  mutable migrated : int;
}

let default_capacity = 65_536

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Keys are 32-hex-char {!Spec.cell_key} digests; the first two characters
   give 256 uniformly-filled shards. Anything shorter (never produced by
   Spec, but the store stays total) lands in a catch-all shard. *)
let shard_of_key key = if String.length key >= 2 then String.sub key 0 2 else "_"

let path_of_key t key = Filename.concat (Filename.concat t.dir (shard_of_key key)) (key ^ ".json")

(* The pre-shard (PR 4) layout kept every record at the store root. *)
let flat_path t key = Filename.concat t.dir (key ^ ".json")

let dir t = t.dir

let is_record name = Filename.check_suffix name ".json"
let key_of_name name = Filename.chop_suffix name ".json"

(* Move one flat-layout record into its shard. Racing openers both try the
   rename; the loser's [Sys_error] (source already gone) is benign. *)
let migrate_record t name =
  let key = key_of_name name in
  let dst = path_of_key t key in
  ensure_dir (Filename.dirname dst);
  match Sys.rename (Filename.concat t.dir name) dst with
  | () -> t.migrated <- t.migrated + 1
  | exception Sys_error _ -> ()

let migrate_flat t =
  match Sys.readdir t.dir with
  | entries -> Array.iter (fun name -> if is_record name then migrate_record t name) entries
  | exception Sys_error _ -> ()

let open_ ?(capacity = default_capacity) dir =
  if capacity <= 0 then invalid_arg "Store.open_: capacity must be positive";
  ensure_dir dir;
  let t =
    {
      dir;
      mutex = Mutex.create ();
      index = Hashtbl.create (min capacity 4096);
      ring = Array.make capacity "";
      ring_pos = 0;
      capacity;
      hits = 0;
      misses = 0;
      loads = 0;
      writes = 0;
      evictions = 0;
      migrated = 0;
    }
  in
  migrate_flat t;
  t

(* Index insertion under [t.mutex]: overwrite in place when the key is
   already indexed (no ring slot consumed), otherwise claim the next ring
   slot, evicting its previous occupant once the ring has wrapped. *)
let remember_locked t key ratio =
  if not (Hashtbl.mem t.index key) then begin
    let old = t.ring.(t.ring_pos) in
    if String.length old > 0 && Hashtbl.mem t.index old then begin
      Hashtbl.remove t.index old;
      t.evictions <- t.evictions + 1
    end;
    t.ring.(t.ring_pos) <- key;
    t.ring_pos <- (t.ring_pos + 1) mod t.capacity
  end;
  Hashtbl.replace t.index key ratio

(* A record is self-describing but only the ratio is read back; a missing,
   truncated or malformed file reads as a miss and the point re-simulates
   (the demotion contract inherited from the flat store). *)
let load_ratio path =
  if not (Sys.file_exists path) then None
  else
    match Manifest.load ~path with
    | Ok j -> Option.bind (Json.member "waste_ratio" j) Json.to_float_opt
    | Error _ -> None

let find t key =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.index key with
  | Some ratio ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      Some ratio
  | None -> (
      Mutex.unlock t.mutex;
      (* Disk I/O outside the lock; concurrent loads of the same key both
         read the file and converge on the same index entry. *)
      let ratio =
        match load_ratio (path_of_key t key) with
        | Some _ as r -> r
        | None -> load_ratio (flat_path t key)
      in
      Mutex.lock t.mutex;
      (match ratio with
      | Some r ->
          t.loads <- t.loads + 1;
          remember_locked t key r
      | None -> t.misses <- t.misses + 1);
      Mutex.unlock t.mutex;
      ratio)

let contains t key =
  Mutex.lock t.mutex;
  let indexed = Hashtbl.mem t.index key in
  Mutex.unlock t.mutex;
  indexed || Sys.file_exists (path_of_key t key) || Sys.file_exists (flat_path t key)

(* Unique temp names: concurrent clients querying the same spec race on the
   same key, so [path ^ ".tmp"] (safe when one process owned a key) would
   let one writer rename the other's half-written file. pid + counter makes
   every in-flight temp distinct; the final rename is atomic and the racing
   contents are byte-identical anyway (records are deterministic). *)
let tmp_counter = Atomic.make 0

let add t ~key ~ratio json =
  let path = path_of_key t key in
  ensure_dir (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.%d-%d.tmp" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty json));
  Sys.rename tmp path;
  Mutex.lock t.mutex;
  t.writes <- t.writes + 1;
  remember_locked t key ratio;
  Mutex.unlock t.mutex

let iter_shard t sub f =
  let dir = Filename.concat t.dir sub in
  match Sys.readdir dir with
  | entries -> Array.iter (fun name -> f dir name) entries
  | exception Sys_error _ -> ()

let iter_files t f =
  (match Sys.readdir t.dir with
  | entries ->
      Array.iter
        (fun name ->
          let sub = Filename.concat t.dir name in
          if Sys.is_directory sub then iter_shard t name f else f t.dir name)
        entries
  | exception Sys_error _ -> ())

let record_count t =
  let n = ref 0 in
  iter_files t (fun _ name -> if is_record name then incr n);
  !n

let iter_keys t f = iter_files t (fun _ name -> if is_record name then f (key_of_name name))

(* Crashed writers leave [*.tmp] litter behind (the rename never ran);
   compaction sweeps it. Live writers are safe: their temp names are
   process-unique and the window between create and rename is one record
   write, so anything still named [.tmp] at compaction time in a quiescent
   store is an orphan. *)
let compact t =
  let removed = ref 0 in
  iter_files t (fun dir name ->
      if Filename.check_suffix name ".tmp" then begin
        (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
        incr removed
      end);
  !removed

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      loads = t.loads;
      writes = t.writes;
      evictions = t.evictions;
      migrated = t.migrated;
    }
  in
  Mutex.unlock t.mutex;
  s

let indexed t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.index in
  Mutex.unlock t.mutex;
  n
