module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy

let default_mtbf_years = [ 2.0; 3.0; 5.0; 10.0; 20.0; 35.0; 50.0 ]

let run ~pool ?(mtbf_years = default_mtbf_years) ?(bandwidth_gbs = 40.0)
    ?(strategies = Strategy.paper_seven) ?(reps = 100) ?(seed = 42) ?(days = 60.0)
    ?manifest_dir () =
  let spec =
    Spec.make ~name:"fig2"
      ~platform:(Platform.cielo ~bandwidth_gbs ())
      ~strategies ~axis:(Spec.Mtbf_years mtbf_years) ~reps ~seed ~days ()
  in
  Runner.to_figure ~id:"fig2"
    ~title:
      (Printf.sprintf "Waste ratio vs node MTBF (Cielo, %g GB/s, %d reps, %gd segment)"
         bandwidth_gbs reps days)
    (Runner.run ~pool ?store:(Option.map Store.open_ manifest_dir) spec)
