module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy

let default_mtbf_years = [ 2.0; 3.0; 5.0; 10.0; 20.0; 35.0; 50.0 ]

let run ~pool ?(mtbf_years = default_mtbf_years) ?(bandwidth_gbs = 40.0)
    ?(strategies = Strategy.paper_seven) ?(reps = 100) ?(seed = 42) ?(days = 60.0)
    ?manifest_dir () =
  let points =
    List.map
      (fun y -> (y, Platform.cielo ~bandwidth_gbs ~node_mtbf_years:y ()))
      mtbf_years
  in
  {
    Figures.id = "fig2";
    title =
      Printf.sprintf
        "Waste ratio vs node MTBF (Cielo, %g GB/s, %d reps, %gd segment)" bandwidth_gbs
        reps days;
    x_label = "Node MTBF (years)";
    y_label = "Waste Ratio";
    log_x = true;
    series = Sweep.waste_vs ~pool ~points ~strategies ~reps ~seed ~days ?manifest_dir ();
  }
