module Json = Cocheck_obs.Json
module Manifest = Cocheck_obs.Manifest
module Platform = Cocheck_model.Platform

type request =
  | Ping
  | Stats
  | Shutdown
  | Campaign of { spec : Spec.t; progress : bool }
  | Status of { spec : Spec.t }
  | Bound of { platform : Platform.t }
  | Waste of { platform : Platform.t }

type cell_summary = {
  x : float option;
  strategy : string;
  mean : float;
  median : float;
  q1 : float;
  q3 : float;
}

type response =
  | Pong
  | Bye
  | Overload of { inflight : int; limit : int }
  | Error of string
  | Progress of Runner.progress_event
  | Campaign_result of {
      elapsed_s : float;
      simulated : int;
      baselines : int;
      loaded : int;
      total_points : int;
      cells : cell_summary list;
    }
  | Status_result of { total : int; cached : int; missing : int }
  | Bound_result of { waste : float; lambda : float; io_fraction : float }
  | Waste_result of { waste : float }
  | Stats_result of {
      store : Store.stats;
      indexed : int;
      inflight : int;
      served : int;
    }

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

let request_to_json ~id req =
  let frame op fields = Json.Obj (("id", Json.Int id) :: ("op", Json.String op) :: fields) in
  match req with
  | Ping -> frame "ping" []
  | Stats -> frame "stats" []
  | Shutdown -> frame "shutdown" []
  | Campaign { spec; progress } ->
      frame "campaign" [ ("spec", Spec.to_json spec); ("progress", Json.Bool progress) ]
  | Status { spec } -> frame "status" [ ("spec", Spec.to_json spec) ]
  | Bound { platform } -> frame "bound" [ ("platform", Manifest.platform_to_json platform) ]
  | Waste { platform } -> frame "waste" [ ("platform", Manifest.platform_to_json platform) ]

let ( let* ) = Result.bind

let member_result k j = Option.to_result ~none:("missing field: " ^ k) (Json.member k j)

let spec_of j =
  let* s = member_result "spec" j in
  Spec.of_json s

let platform_of j =
  let* p = member_result "platform" j in
  Manifest.platform_of_json p

let request_of_json j =
  let* id = Option.to_result ~none:"missing request id" (Option.bind (Json.member "id" j) Json.to_int_opt) in
  let* op = Option.to_result ~none:"missing op" (Option.bind (Json.member "op" j) Json.to_string_opt) in
  let* req =
    match op with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | "campaign" ->
        let* spec = spec_of j in
        let progress =
          Option.value ~default:false (Option.bind (Json.member "progress" j) Json.to_bool_opt)
        in
        Ok (Campaign { spec; progress })
    | "status" ->
        let* spec = spec_of j in
        Ok (Status { spec })
    | "bound" ->
        let* platform = platform_of j in
        Ok (Bound { platform })
    | "waste" ->
        let* platform = platform_of j in
        Ok (Waste { platform })
    | op -> Result.Error ("unknown op: " ^ op)
  in
  Ok (id, req)

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

let cell_to_json c =
  Json.Obj
    [
      ("x", (match c.x with None -> Json.Null | Some x -> Json.Float x));
      ("strategy", Json.String c.strategy);
      ("mean", Json.Float c.mean);
      ("median", Json.Float c.median);
      ("q1", Json.Float c.q1);
      ("q3", Json.Float c.q3);
    ]

let cell_of_json j =
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  match (Option.bind (Json.member "strategy" j) Json.to_string_opt, flt "mean", flt "median", flt "q1", flt "q3") with
  | Some strategy, Some mean, Some median, Some q1, Some q3 ->
      Ok { x = flt "x"; strategy; mean; median; q1; q3 }
  | _ -> Result.Error "malformed cell summary"

let response_to_json ~id resp =
  let frame reply fields =
    Json.Obj (("id", Json.Int id) :: ("reply", Json.String reply) :: fields)
  in
  match resp with
  | Pong -> frame "pong" []
  | Bye -> frame "bye" []
  | Overload { inflight; limit } ->
      frame "overload" [ ("inflight_points", Json.Int inflight); ("limit", Json.Int limit) ]
  | Error msg -> frame "error" [ ("message", Json.String msg) ]
  | Progress ev -> frame "progress" [ ("event", Runner.progress_to_json ev) ]
  | Campaign_result r ->
      frame "campaign"
        [
          ("elapsed_s", Json.Float r.elapsed_s);
          ("simulated", Json.Int r.simulated);
          ("baselines", Json.Int r.baselines);
          ("loaded", Json.Int r.loaded);
          ("total", Json.Int r.total_points);
          ("cells", Json.List (List.map cell_to_json r.cells));
        ]
  | Status_result r ->
      frame "status"
        [
          ("total", Json.Int r.total);
          ("cached", Json.Int r.cached);
          ("missing", Json.Int r.missing);
        ]
  | Bound_result r ->
      frame "bound"
        [
          ("waste", Json.Float r.waste);
          ("lambda", Json.Float r.lambda);
          ("io_fraction", Json.Float r.io_fraction);
        ]
  | Waste_result r -> frame "waste" [ ("waste", Json.Float r.waste) ]
  | Stats_result r ->
      frame "stats"
        [
          ( "store",
            Json.Obj
              [
                ("hits", Json.Int r.store.Store.hits);
                ("misses", Json.Int r.store.Store.misses);
                ("loads", Json.Int r.store.Store.loads);
                ("writes", Json.Int r.store.Store.writes);
                ("evictions", Json.Int r.store.Store.evictions);
                ("migrated", Json.Int r.store.Store.migrated);
              ] );
          ("indexed", Json.Int r.indexed);
          ("inflight_points", Json.Int r.inflight);
          ("served", Json.Int r.served);
        ]

let response_of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let need msg = Option.to_result ~none:msg in
  let* id = need "missing response id" (int "id") in
  let* reply = need "missing reply kind" (str "reply") in
  let* resp =
    match reply with
    | "pong" -> Ok Pong
    | "bye" -> Ok Bye
    | "overload" -> (
        match (int "inflight_points", int "limit") with
        | Some inflight, Some limit -> Ok (Overload { inflight; limit })
        | _ -> Result.Error "malformed overload reply")
    | "error" -> (
        match str "message" with
        | Some msg -> Ok (Error msg)
        | None -> Result.Error "malformed error reply")
    | "progress" -> (
        match Option.bind (Json.member "event" j) Runner.progress_of_json with
        | Some ev -> Ok (Progress ev)
        | None -> Result.Error "malformed progress frame")
    | "campaign" -> (
        match
          (flt "elapsed_s", int "simulated", int "baselines", int "loaded", int "total",
           Json.member "cells" j)
        with
        | ( Some elapsed_s, Some simulated, Some baselines, Some loaded, Some total_points,
            Some (Json.List cells) ) ->
            let* cells =
              List.fold_right
                (fun c acc ->
                  let* acc = acc in
                  let* c = cell_of_json c in
                  Ok (c :: acc))
                cells (Ok [])
            in
            Ok (Campaign_result { elapsed_s; simulated; baselines; loaded; total_points; cells })
        | _ -> Result.Error "malformed campaign reply")
    | "status" -> (
        match (int "total", int "cached", int "missing") with
        | Some total, Some cached, Some missing -> Ok (Status_result { total; cached; missing })
        | _ -> Result.Error "malformed status reply")
    | "bound" -> (
        match (flt "waste", flt "lambda", flt "io_fraction") with
        | Some waste, Some lambda, Some io_fraction ->
            Ok (Bound_result { waste; lambda; io_fraction })
        | _ -> Result.Error "malformed bound reply")
    | "waste" -> (
        match flt "waste" with
        | Some waste -> Ok (Waste_result { waste })
        | None -> Result.Error "malformed waste reply")
    | "stats" -> (
        match (Json.member "store" j, int "indexed", int "inflight_points", int "served") with
        | Some store, Some indexed, Some inflight, Some served ->
            let sint k = Option.value ~default:0 (Option.bind (Json.member k store) Json.to_int_opt) in
            Ok
              (Stats_result
                 {
                   store =
                     {
                       Store.hits = sint "hits";
                       misses = sint "misses";
                       loads = sint "loads";
                       writes = sint "writes";
                       evictions = sint "evictions";
                       migrated = sint "migrated";
                     };
                   indexed;
                   inflight;
                   served;
                 })
        | _ -> Result.Error "malformed stats reply")
    | reply -> Result.Error ("unknown reply kind: " ^ reply)
  in
  Ok (id, resp)
