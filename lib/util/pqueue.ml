(* Struct-of-arrays binary min-heap with recycled integer handles.

   The predecessor stored one record per entry ({priority; seq; tag; value;
   handle}) plus a mutable handle record and a boxed float priority — three
   minor-heap allocations per [add], and [update_priority] copied the whole
   entry. At exascale event rates (year-scale, 50k-node calendars) that
   churn dominates the simulator's hot path, so this version keeps the heap
   as parallel arrays and allocates nothing per operation:

   - [prio] (a flat, unboxed [float array]), [seq] and [hslot] are indexed
     by heap position and move during sifts;
   - [pos], [gen], [tag] and [value] are indexed by *slot* — a small
     integer naming the entry for its whole stay — and never move;
   - a handle is one tagged integer, [(generation lsl 30) lor slot].

   Slots are drawn from a freelist stack and recycled. Each recycling bumps
   the slot's generation, so a stale handle (popped, removed or cleared)
   can never alias the slot's next tenant: [mem] checks the generation
   embedded in the handle against the slot's current one. Generations are
   33-bit and monotone per slot; wrap-around would need ~8e9 reuses of a
   single slot.

   Dead slots must not pin their last value against the GC, but a generic
   ['a array] has no fabricated null to store. The queue instead keeps the
   first value it ever sees as a permanent filler ([filler], an array of
   length 0 or 1 so reads stay match-free) and overwrites dead slots with
   it on every free — exactly one caller value is pinned for the queue's
   lifetime, and everything else is collectable as soon as it leaves.

   Sifts are hole-based: the moving element rides in registers/arguments
   and each step shifts one element into the hole (4 array stores) instead
   of swapping (8), writing the mover once at its final position. *)

type 'a handle = int

let slot_bits = 30
let slot_mask = (1 lsl slot_bits) - 1
let null_handle : 'a handle = -1
let is_null h = h < 0

type 'a t = {
  (* heap-position-indexed *)
  mutable prio : float array;
  mutable seq : int array;
  mutable hslot : int array;  (* heap position -> slot *)
  (* slot-indexed *)
  mutable pos : int array;  (* slot -> heap position; -1 when free *)
  mutable gen : int array;  (* slot -> generation of the current tenancy *)
  mutable tag : int array;
  mutable value : 'a array;  (* free slots hold the filler *)
  mutable filler : 'a array;  (* [||] until the first add, then [| dummy |] *)
  mutable free : int array;  (* freelist stack of recycled slots *)
  mutable free_top : int;
  mutable slots_used : int;  (* slot high-water mark *)
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    prio = [||];
    seq = [||];
    hslot = [||];
    pos = [||];
    gen = [||];
    tag = [||];
    value = [||];
    filler = [||];
    free = [||];
    free_top = 0;
    slots_used = 0;
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

(* Every live entry owns exactly one slot, so one capacity serves both the
   position arrays and the slot arrays. The incoming value seeds the
   filler, so the queue never fabricates an ['a]. *)
let ensure_capacity t v =
  let cap = Array.length t.prio in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let fill = if Array.length t.filler = 0 then v else t.filler.(0) in
    let grow_int a = let n = Array.make ncap 0 in Array.blit a 0 n 0 cap; n in
    let nprio = Array.make ncap 0.0 in
    Array.blit t.prio 0 nprio 0 cap;
    t.prio <- nprio;
    t.seq <- grow_int t.seq;
    t.hslot <- grow_int t.hslot;
    let npos = Array.make ncap (-1) in
    Array.blit t.pos 0 npos 0 cap;
    t.pos <- npos;
    t.gen <- grow_int t.gen;
    t.tag <- grow_int t.tag;
    let nvalue = Array.make ncap fill in
    Array.blit t.value 0 nvalue 0 t.slots_used;
    t.value <- nvalue;
    t.free <- grow_int t.free;
    if Array.length t.filler = 0 then t.filler <- [| fill |]
  end

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    let s = t.slots_used in
    if s = slot_mask then invalid_arg "Pqueue: slot capacity exceeded";
    t.slots_used <- s + 1;
    s
  end

(* Bumping the generation here (not at alloc) invalidates every handle of
   the finished tenancy at once; the next tenant's handles carry the bumped
   value. *)
let free_slot t slot =
  t.pos.(slot) <- -1;
  t.gen.(slot) <- t.gen.(slot) + 1;
  t.value.(slot) <- t.filler.(0);
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

(* Hole-based sifts: (p, s, slot) is the element in flight; [i] is the hole. *)
let[@inline] place t i p s slot =
  t.prio.(i) <- p;
  t.seq.(i) <- s;
  t.hslot.(i) <- slot;
  t.pos.(slot) <- i

let rec sift_up t i p s slot =
  if i = 0 then place t i p s slot
  else begin
    let parent = (i - 1) / 2 in
    let pp = t.prio.(parent) in
    if p < pp || (p = pp && s < t.seq.(parent)) then begin
      t.prio.(i) <- pp;
      t.seq.(i) <- t.seq.(parent);
      let ps = t.hslot.(parent) in
      t.hslot.(i) <- ps;
      t.pos.(ps) <- i;
      sift_up t parent p s slot
    end
    else place t i p s slot
  end

let rec sift_down t i p s slot =
  let l = (2 * i) + 1 in
  if l >= t.size then place t i p s slot
  else begin
    let r = l + 1 in
    let c =
      if r < t.size
         && (t.prio.(r) < t.prio.(l)
            || (t.prio.(r) = t.prio.(l) && t.seq.(r) < t.seq.(l)))
      then r
      else l
    in
    let pc = t.prio.(c) in
    if pc < p || (pc = p && t.seq.(c) < s) then begin
      t.prio.(i) <- pc;
      t.seq.(i) <- t.seq.(c);
      let cs = t.hslot.(c) in
      t.hslot.(i) <- cs;
      t.pos.(cs) <- i;
      sift_down t c p s slot
    end
    else place t i p s slot
  end

let add_tagged t ~priority ~tag v =
  ensure_capacity t v;
  let slot = alloc_slot t in
  t.value.(slot) <- v;
  t.tag.(slot) <- tag;
  let s = t.next_seq in
  t.next_seq <- s + 1;
  let i = t.size in
  t.size <- i + 1;
  sift_up t i priority s slot;
  (t.gen.(slot) lsl slot_bits) lor slot

let add t ~priority v = add_tagged t ~priority ~tag:0 v

let remove_at t i =
  free_slot t t.hslot.(i);
  t.size <- t.size - 1;
  if i < t.size then begin
    (* Reinsert the detached last element at the hole; it may need to move
       either direction. *)
    let p = t.prio.(t.size) and s = t.seq.(t.size) and ls = t.hslot.(t.size) in
    if
      i > 0
      &&
      let parent = (i - 1) / 2 in
      let pp = t.prio.(parent) in
      p < pp || (p = pp && s < t.seq.(parent))
    then sift_up t i p s ls
    else sift_down t i p s ls
  end

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and v = t.value.(t.hslot.(0)) in
    remove_at t 0;
    Some (p, v)
  end

let pop_tagged t =
  if t.size = 0 then None
  else begin
    let slot = t.hslot.(0) in
    let p = t.prio.(0) and tag = t.tag.(slot) and v = t.value.(slot) in
    remove_at t 0;
    Some (p, tag, v)
  end

(* Allocation-free root accessors for the event loop: [pop]/[peek] box a
   tuple and an option per call, which at calendar rates is real churn. *)
let[@inline] min_priority t =
  if t.size = 0 then invalid_arg "Pqueue.min_priority: empty queue";
  t.prio.(0)

let[@inline] min_tag t =
  if t.size = 0 then invalid_arg "Pqueue.min_tag: empty queue";
  t.tag.(t.hslot.(0))

let[@inline] min_value t =
  if t.size = 0 then invalid_arg "Pqueue.min_value: empty queue";
  t.value.(t.hslot.(0))

let drop_min t =
  if t.size = 0 then invalid_arg "Pqueue.drop_min: empty queue";
  remove_at t 0

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.value.(t.hslot.(0)))

let[@inline] mem t h =
  h >= 0
  &&
  let slot = h land slot_mask in
  slot < t.slots_used && t.gen.(slot) = h asr slot_bits && t.pos.(slot) >= 0

let remove t h =
  if mem t h then begin
    remove_at t t.pos.(h land slot_mask);
    true
  end
  else false

let priority_of t h = if mem t h then Some t.prio.(t.pos.(h land slot_mask)) else None
let priority_is t h p = mem t h && t.prio.(t.pos.(h land slot_mask)) = p
let tag_of t h = if mem t h then Some t.tag.(h land slot_mask) else None

let update_priority t h ~priority =
  if mem t h then begin
    let slot = h land slot_mask in
    let i = t.pos.(slot) in
    let old = t.prio.(i) in
    (* An equal-priority retime is a no-op: the seq (FIFO rank) is pinned
       at add time, so the heap invariant still holds untouched. *)
    if priority <> old then begin
      let s = t.seq.(i) in
      if priority < old then sift_up t i priority s slot
      else sift_down t i priority s slot
    end;
    true
  end
  else false

let clear t =
  for i = 0 to t.size - 1 do
    free_slot t t.hslot.(i)
  done;
  t.size <- 0

let to_sorted_list t =
  let entries =
    Array.init t.size (fun i -> (t.prio.(i), t.seq.(i), t.value.(t.hslot.(i))))
  in
  Array.sort
    (fun (pa, sa, _) (pb, sb, _) -> if pa <> pb then compare pa pb else compare sa sb)
    entries;
  Array.to_list (Array.map (fun (p, _, v) -> (p, v)) entries)
