(* xoshiro256++ with SplitMix64 seeding (Blackman & Vigna). Chosen over
   [Stdlib.Random] for explicit state, stable cross-version streams, and
   cheap deterministic substream derivation.

   The state and the generator core work on 32-bit halves held in native
   ints: without flambda every [Int64] operation allocates a 3-word custom
   block, which put the generator among the largest per-event allocators in
   the simulator (a failure draw cost ~190 minor words). The half-word
   arithmetic below reproduces the 64-bit stream bit-for-bit — golden
   traces prove it — while touching only immediates. [Int64] survives in
   the cold seeding path and the public {!bits64}. *)

type t = {
  mutable s0h : int;  (* state words, split hi/lo 32 bits, each in [0, 2^32) *)
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  mutable rh : int;  (* last output's halves, written by [next] *)
  mutable rl : int;
  seed : int;
}

let mask32 = 0xFFFFFFFF

(* SplitMix64 step: used only to expand seeds into full 256-bit states. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline] hi_of x = Int64.to_int (Int64.shift_right_logical x 32)
let[@inline] lo_of x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)

let state_of_seed64 ~seed x =
  let sm = ref x in
  let s0 = splitmix_next sm in
  let s1 = splitmix_next sm in
  let s2 = splitmix_next sm in
  let s3 = splitmix_next sm in
  (* An all-zero state is a fixed point of xoshiro; SplitMix64 cannot emit
     four zeros in a row, but guard anyway. *)
  let s0, s1, s2, s3 =
    if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then (1L, 2L, 3L, 4L) else (s0, s1, s2, s3)
  in
  {
    s0h = hi_of s0;
    s0l = lo_of s0;
    s1h = hi_of s1;
    s1l = lo_of s1;
    s2h = hi_of s2;
    s2l = lo_of s2;
    s3h = hi_of s3;
    s3l = lo_of s3;
    rh = 0;
    rl = 0;
    seed;
  }

let create ~seed = state_of_seed64 ~seed (Int64.of_int seed)

(* One xoshiro256++ step on the halves:
     result = rotl(s0 + s3, 23) + s0
     t = s1 << 17; s2 ^= s0; s3 ^= s1; s1 ^= s2; s0 ^= s3; s2 ^= t;
     s3 = rotl(s3, 45)
   Adds carry across the halves; shifts and rotates stitch them with the
   complementary shift. The output's halves land in [rh]/[rl]. *)
let[@inline] next t =
  let s0h = t.s0h and s0l = t.s0l and s1h = t.s1h and s1l = t.s1l in
  let s2h = t.s2h and s2l = t.s2l and s3h = t.s3h and s3l = t.s3l in
  (* a = s0 + s3 *)
  let al = s0l + s3l in
  let ah = (s0h + s3h + (al lsr 32)) land mask32 in
  let al = al land mask32 in
  (* r = rotl(a, 23) = (a lsl 23) lor (a lsr 41) *)
  let rh = ((ah lsl 23) lor (al lsr 9)) land mask32 in
  let rl = ((al lsl 23) land mask32) lor (ah lsr 9) in
  (* result = r + s0 *)
  let resl = rl + s0l in
  let resh = (rh + s0h + (resl lsr 32)) land mask32 in
  t.rh <- resh;
  t.rl <- resl land mask32;
  (* tm = s1 << 17 *)
  let tmh = ((s1h lsl 17) lor (s1l lsr 15)) land mask32 in
  let tml = (s1l lsl 17) land mask32 in
  let s2h = s2h lxor s0h and s2l = s2l lxor s0l in
  let s3h = s3h lxor s1h and s3l = s3l lxor s1l in
  let s1h = s1h lxor s2h and s1l = s1l lxor s2l in
  let s0h = s0h lxor s3h and s0l = s0l lxor s3l in
  let s2h = s2h lxor tmh and s2l = s2l lxor tml in
  (* s3 = rotl(s3, 45) = (s3 lsl 45) lor (s3 lsr 19) *)
  let nh = ((s3l lsl 13) land mask32) lor (s3h lsr 19) in
  let nl = ((s3h lsl 13) land mask32) lor (s3l lsr 19) in
  t.s0h <- s0h;
  t.s0l <- s0l;
  t.s1h <- s1h;
  t.s1l <- s1l;
  t.s2h <- s2h;
  t.s2l <- s2l;
  t.s3h <- nh;
  t.s3l <- nl

let bits64 t =
  next t;
  Int64.logor (Int64.shift_left (Int64.of_int t.rh) 32) (Int64.of_int t.rl)

let split t = state_of_seed64 ~seed:t.seed (bits64 t)

(* FNV-1a, good enough to map names to well-spread 64-bit values. *)
let hash_name name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  !h

let substream t name =
  let mix = Int64.logxor (Int64.of_int t.seed) (hash_name name) in
  state_of_seed64 ~seed:t.seed mix

let copy t = { t with s0h = t.s0h }

let unit_float t =
  (* 53 high bits -> [0,1). *)
  next t;
  float_of_int ((t.rh lsl 21) lor (t.rl lsr 11)) *. 0x1.0p-53

let float t x = unit_float t *. x

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let mask =
    let rec grow m = if m >= n - 1 && m > 0 then m else grow ((m lsl 1) lor 1) in
    grow 1
  in
  let rec draw () =
    next t;
    (* (output >>> 1) land mask on the halves; [lsl 31] wraps mod 2^63 but
       the mask (≤ 2^62 − 1) only reads bits the wrap preserves. *)
    let v = ((t.rh lsl 31) lor (t.rl lsr 1)) land mask in
    if v < n then v else draw ()
  in
  draw ()

let bool t =
  next t;
  t.rl land 1 <> 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let seed_of t = t.seed
