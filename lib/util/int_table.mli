(** Open-addressing int → int hash table, allocation-free in steady state.

    Backs the simulator's hot-path indices (request id → pool slot, key →
    aggregate slot) where [Hashtbl]'s bucket conses and [find_opt]'s [Some]
    would land on the per-event allocation budget. Keys must be ≥ 0. *)

type t

val create : ?initial:int -> unit -> t
(** [initial] (default 16) is rounded up to a power of two. *)

val length : t -> int
(** Number of live bindings. *)

val not_found : int
(** Sentinel returned by {!find} on a miss (-1). Values stored may be any
    int, but callers using {!find} conventionally store values ≥ 0. *)

val find : t -> int -> int
(** Value bound to the key, or {!not_found}. Never allocates. *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** Bind key → value, replacing any previous binding. Amortized O(1);
    rehashes in place once occupancy (live + tombstones) passes 1/2. *)

val remove : t -> int -> bool
(** Unbind the key; returns whether it was bound. Never allocates. *)

val clear : t -> unit
val iter : t -> (int -> int -> unit) -> unit
