(* Unboxed stack of [lo, hi] work intervals. The simulator's per-instance
   "uncommitted work" ledger used to be a [(float * float) list]: every
   compute pause consed a tuple (plus two float boxes), every commit walked
   and dropped the list, and every failure partitioned it — steady-state
   allocation proportional to event count. Two parallel float arrays hold
   the same data flat: a push writes two unboxed slots, a flush reads them
   back, and the threshold partition is a predicate on [hi] evaluated in
   place, allocating nothing.

   Order contract: [push] appends, so index [length - 1] is the newest
   interval. Consumers that must replicate the list representation's
   traversal order (head = newest) iterate [length - 1] downto 0. *)

type t = {
  mutable lo : float array;
  mutable hi : float array;
  mutable len : int;
}

let create ?(capacity = 8) () =
  let capacity = max capacity 1 in
  { lo = Array.make capacity 0.0; hi = Array.make capacity 0.0; len = 0 }

let[@inline] length t = t.len
let[@inline] is_empty t = t.len = 0

let[@inline] lo_at t i = Array.unsafe_get t.lo i
let[@inline] hi_at t i = Array.unsafe_get t.hi i

let grow t =
  let cap = Array.length t.lo in
  let lo = Array.make (2 * cap) 0.0 and hi = Array.make (2 * cap) 0.0 in
  Array.blit t.lo 0 lo 0 t.len;
  Array.blit t.hi 0 hi 0 t.len;
  t.lo <- lo;
  t.hi <- hi

let[@inline] push t ~lo ~hi =
  if t.len = Array.length t.lo then grow t;
  Array.unsafe_set t.lo t.len lo;
  Array.unsafe_set t.hi t.len hi;
  t.len <- t.len + 1

let[@inline] clear t = t.len <- 0

(* Σ (hi − lo) over intervals with [hi > safe], newest first with seed 0.0 —
   the exact fold the failure path ran over the partitioned list, so the
   lost-work float is bit-identical. *)
let lost_above t ~safe =
  let acc = ref 0.0 in
  for i = t.len - 1 downto 0 do
    let hi = Array.unsafe_get t.hi i in
    if hi > safe then acc := !acc +. (hi -. Array.unsafe_get t.lo i)
  done;
  !acc

(* Newest-first materialization, matching the retired list representation
   (head = newest). Test/debug only: allocates. *)
let to_list t =
  let rec build i acc = if i >= t.len then acc else build (i + 1) ((t.lo.(i), t.hi.(i)) :: acc) in
  build 0 []
