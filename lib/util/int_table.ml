(* Open-addressing int → int hash table for hot-path indices (request id →
   pool slot, key → aggregate slot). [Hashtbl] allocates a bucket cons per
   [replace] and a [Some] per [find_opt]; this table stores keys and values
   flat in two int arrays and returns a sentinel on miss, so steady-state
   lookups and updates allocate nothing.

   Keys must be ≥ 0 (the simulator's ids are). Linear probing over a
   power-of-two capacity; deletions leave tombstones, and the table rehashes
   once live + tombstone occupancy passes half the capacity. *)

type t = {
  mutable keys : int array;  (* empty = -1, tombstone = -2 *)
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1 *)
  mutable live : int;
  mutable fill : int;  (* live + tombstones *)
}

let empty_key = -1
let tomb_key = -2
let not_found = -1

let rec pow2 n c = if c >= n then c else pow2 n (2 * c)

let create ?(initial = 16) () =
  let cap = pow2 (max initial 4) 4 in
  { keys = Array.make cap empty_key; vals = Array.make cap 0; mask = cap - 1; live = 0; fill = 0 }

let length t = t.live

(* Fibonacci hashing spreads the sequential ids the simulator hands out. *)
let[@inline] slot_of t key = key * 0x2545F491 land max_int land t.mask

let rec probe_find keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key then i
  else if k = empty_key then -1
  else probe_find keys mask key ((i + 1) land mask)

let[@inline] find t key =
  let i = probe_find t.keys t.mask key (slot_of t key) in
  if i < 0 then not_found else Array.unsafe_get t.vals i

let[@inline] mem t key = probe_find t.keys t.mask key (slot_of t key) >= 0

let rec probe_insert keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = empty_key || k = tomb_key then i
  else probe_insert keys mask key ((i + 1) land mask)

let rehash t cap =
  let keys = Array.make cap empty_key and vals = Array.make cap 0 in
  let mask = cap - 1 in
  let old_keys = t.keys and old_vals = t.vals in
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.fill <- t.live;
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then begin
      let j =
        let rec free j = if Array.unsafe_get keys j = empty_key then j else free ((j + 1) land mask) in
        free (slot_of t k)
      in
      Array.unsafe_set keys j k;
      Array.unsafe_set vals j (Array.unsafe_get old_vals i)
    end
  done

let set t key v =
  if key < 0 then invalid_arg "Int_table.set: negative key";
  let i = probe_insert t.keys t.mask key (slot_of t key) in
  let k = Array.unsafe_get t.keys i in
  (* A tombstone hit may shadow a live entry for the same key further down
     the probe chain; only reuse it when the key is genuinely absent. *)
  if k = key then Array.unsafe_set t.vals i v
  else if k = tomb_key && mem t key then begin
    let j = probe_find t.keys t.mask key (slot_of t key) in
    Array.unsafe_set t.vals j v
  end
  else begin
    if k = empty_key then t.fill <- t.fill + 1;
    Array.unsafe_set t.keys i key;
    Array.unsafe_set t.vals i v;
    t.live <- t.live + 1;
    if 2 * t.fill > t.mask + 1 then
      rehash t (if 4 * t.live > t.mask + 1 then 2 * (t.mask + 1) else t.mask + 1)
  end

let remove t key =
  let i = probe_find t.keys t.mask key (slot_of t key) in
  if i < 0 then false
  else begin
    Array.unsafe_set t.keys i tomb_key;
    t.live <- t.live - 1;
    true
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.live <- 0;
  t.fill <- 0

let iter t f =
  for i = 0 to Array.length t.keys - 1 do
    let k = Array.unsafe_get t.keys i in
    if k >= 0 then f k (Array.unsafe_get t.vals i)
  done
