(** Unboxed stack of [lo, hi] work intervals.

    Replaces the simulator's per-instance [(float * float) list]
    uncommitted-work ledgers with two parallel float arrays: pushes,
    threshold partitions and folds run in place without allocating. See
    DESIGN §4k for the ownership rules.

    Order contract: {!push} appends, so index [length t - 1] holds the
    {e newest} interval. Code replicating the retired list representation's
    traversal order (head = newest) iterates [length t - 1] downto [0]. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty ledger. [capacity] (default 8) pre-sizes the backing
    arrays; the ledger grows by doubling as needed. *)

val length : t -> int
val is_empty : t -> bool

val lo_at : t -> int -> float
(** Start of the [i]-th interval, oldest at index 0. Unchecked. *)

val hi_at : t -> int -> float
(** End of the [i]-th interval, oldest at index 0. Unchecked. *)

val push : t -> lo:float -> hi:float -> unit
(** Append an interval (it becomes the newest). *)

val clear : t -> unit
(** Drop every interval. The backing arrays are retained for reuse. *)

val lost_above : t -> safe:float -> float
(** Σ (hi − lo) over intervals with [hi > safe], folded newest-first with
    seed 0.0 — bit-identical to the list-based
    [List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 lost] over the
    partitioned newest-first list. [safe = neg_infinity] sums everything. *)

val to_list : t -> (float * float) list
(** Newest-first [(lo, hi)] materialization (the retired representation's
    order). Allocates; for tests and debugging. *)
