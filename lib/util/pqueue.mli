(** Growable binary min-heap with stable handles.

    The discrete-event calendar needs three operations fast: insert, extract
    the minimum, and cancel an arbitrary pending entry (a checkpoint
    completion superseded by a failure, an I/O completion superseded by a
    bandwidth change). Handles give O(log n) removal without scanning.

    Ordering is by [priority] (a float, e.g. simulation time) with an integer
    sequence number breaking ties FIFO, so equal-time events pop in insertion
    order — a requirement for deterministic simulation.

    The layout is struct-of-arrays: priorities live in a flat [float array],
    bookkeeping in [int array]s, and a handle is a single tagged integer
    (generation + recycled slot), so [add]/[pop]/[update_priority] allocate
    nothing. One caveat follows from the representation: the first value
    ever added is retained as the internal null filler for the queue's
    lifetime (every other value is released as soon as it leaves). *)

type 'a t

type 'a handle
(** A recycled integer slot tagged with a generation: immediate (no heap
    block), and stale handles never alias a slot's next tenant. *)

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val null_handle : 'a handle
(** A handle that is never live ({!mem} is [false], {!remove} is a no-op);
    the idiomatic "no event" sentinel where an [option] wrapper would cost
    an allocation per store. *)

val is_null : 'a handle -> bool
(** Whether the handle is {!null_handle}. A non-null handle may still be
    dead (popped or removed); {!mem} is the liveness test. *)

val add : 'a t -> priority:float -> 'a -> 'a handle
(** Insert; the handle stays valid until the element is popped or removed.
    Equivalent to {!add_tagged} with [tag = 0]. *)

val add_tagged : 'a t -> priority:float -> tag:int -> 'a -> 'a handle
(** Insert with a small integer tag carried alongside the value. The tag
    costs no extra allocation (it is a field of the entry the heap stores
    anyway) and is read back by {!pop_tagged} and {!tag_of} — the
    discrete-event engine uses it to attribute fired and cancelled events
    to a kind without wrapping payload closures. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority element (FIFO among ties). *)

val pop_tagged : 'a t -> (float * int * 'a) option
(** {!pop}, also returning the entry's tag. *)

val peek : 'a t -> (float * 'a) option

(** {2 Allocation-free root access}

    [pop]/[peek] box an option and a tuple per call; the discrete-event
    loop instead reads the root piecewise and then drops it, allocating
    nothing. All four raise [Invalid_argument] on an empty queue — guard
    with {!is_empty}. *)

val min_priority : 'a t -> float
val min_tag : 'a t -> int
val min_value : 'a t -> 'a

val drop_min : 'a t -> unit
(** Remove the root ({!min_priority}'s entry) without returning it. *)

val remove : 'a t -> 'a handle -> bool
(** [remove t h] cancels the entry behind [h]. Returns [false] when the
    entry already left the heap (popped or removed); idempotent. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle still designates a live entry. *)

val priority_of : 'a t -> 'a handle -> float option
(** The current priority behind a live handle. *)

val priority_is : 'a t -> 'a handle -> float -> bool
(** [priority_is t h p] is [priority_of t h = Some p] without the option
    and boxed-float allocation; [false] for dead handles. *)

val tag_of : 'a t -> 'a handle -> int option
(** The tag behind a live handle ([0] unless inserted by {!add_tagged}). *)

val update_priority : 'a t -> 'a handle -> priority:float -> bool
(** [update_priority t h ~priority] moves the entry behind [h] to a new
    priority in O(log n), keeping the handle valid and preserving the
    entry's sequence number (its FIFO rank among equal priorities).
    Returns [false] when the entry already left the heap; idempotent.
    The single-completion-event I/O calendar reschedules through this
    instead of a cancel + re-insert pair. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in pop order; O(n log n), for tests. *)
