(** Growable binary min-heap with stable handles.

    The discrete-event calendar needs three operations fast: insert, extract
    the minimum, and cancel an arbitrary pending entry (a checkpoint
    completion superseded by a failure, an I/O completion superseded by a
    bandwidth change). Handles give O(log n) removal without scanning.

    Ordering is by [priority] (a float, e.g. simulation time) with an integer
    sequence number breaking ties FIFO, so equal-time events pop in insertion
    order — a requirement for deterministic simulation. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> 'a handle
(** Insert; the handle stays valid until the element is popped or removed.
    Equivalent to {!add_tagged} with [tag = 0]. *)

val add_tagged : 'a t -> priority:float -> tag:int -> 'a -> 'a handle
(** Insert with a small integer tag carried alongside the value. The tag
    costs no extra allocation (it is a field of the entry the heap stores
    anyway) and is read back by {!pop_tagged} and {!tag_of} — the
    discrete-event engine uses it to attribute fired and cancelled events
    to a kind without wrapping payload closures. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority element (FIFO among ties). *)

val pop_tagged : 'a t -> (float * int * 'a) option
(** {!pop}, also returning the entry's tag. *)

val peek : 'a t -> (float * 'a) option

val remove : 'a t -> 'a handle -> bool
(** [remove t h] cancels the entry behind [h]. Returns [false] when the
    entry already left the heap (popped or removed); idempotent. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle still designates a live entry. *)

val priority_of : 'a t -> 'a handle -> float option
(** The current priority behind a live handle. *)

val tag_of : 'a t -> 'a handle -> int option
(** The tag behind a live handle ([0] unless inserted by {!add_tagged}). *)

val update_priority : 'a t -> 'a handle -> priority:float -> bool
(** [update_priority t h ~priority] moves the entry behind [h] to a new
    priority in O(log n), keeping the handle valid and preserving the
    entry's sequence number (its FIFO rank among equal priorities).
    Returns [false] when the entry already left the heap; idempotent.
    The single-completion-event I/O calendar reschedules through this
    instead of a cancel + re-insert pair. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in pop order; O(n log n), for tests. *)
