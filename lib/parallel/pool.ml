type task = unit -> unit

type telemetry = {
  on_task : worker:int -> queued_s:float -> ran_s:float -> unit;
  on_idle : worker:int -> idle_s:float -> unit;
}

let no_telemetry =
  {
    on_task = (fun ~worker:_ ~queued_s:_ ~ran_s:_ -> ());
    on_idle = (fun ~worker:_ ~idle_s:_ -> ());
  }

(* A tenant is one fair-queueing principal: its tasks keep FIFO order among
   themselves, while dispatch round-robins across the tenants that have
   work. [enlisted] tracks ring membership so a tenant is never queued
   twice; both fields are guarded by the pool mutex. *)
type tenant = { tq : task Queue.t; mutable enlisted : bool }

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  default : tenant;  (* tasks submitted without an explicit tenant *)
  ring : tenant Queue.t;  (* tenants with queued tasks, round-robin order *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  telemetry : telemetry;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

(* Worker indices start at 0; a sequential pool's inline execution reports
   as worker 0 too, so traces of [num_domains = 0] runs land on one
   deterministic lane. *)
let worker_key = Domain.DLS.new_key (fun () -> 0)
let current_worker () = Domain.DLS.get worker_key

let worker_loop pool worker () =
  Domain.DLS.set worker_key worker;
  let observed = pool.telemetry != no_telemetry in
  let rec next () =
    Mutex.lock pool.mutex;
    let wait_t0 = if observed then Unix.gettimeofday () else 0.0 in
    let rec wait () =
      match Queue.take_opt pool.ring with
      | Some ten ->
          (* One task per ring turn, then the tenant goes to the back of
             the ring: a client behind a 256-cell sweep is served after at
             most one task per competing tenant, not after the sweep. *)
          let job = Queue.pop ten.tq in
          if Queue.is_empty ten.tq then ten.enlisted <- false
          else Queue.push ten pool.ring;
          Some job
      | None ->
          if pool.shutting_down then None
          else begin
            Condition.wait pool.has_work pool.mutex;
            wait ()
          end
    in
    let job = wait () in
    Mutex.unlock pool.mutex;
    if observed then
      pool.telemetry.on_idle ~worker ~idle_s:(Unix.gettimeofday () -. wait_t0);
    match job with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ?num_domains ?(telemetry = no_telemetry) () =
  let n =
    match num_domains with
    | Some n ->
        if n < 0 then invalid_arg "Pool.create: negative domain count";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      default = { tq = Queue.create (); enlisted = false };
      ring = Queue.create ();
      shutting_down = false;
      workers = [];
      telemetry;
    }
  in
  pool.workers <- List.init n (fun i -> Domain.spawn (worker_loop pool i));
  pool

let num_workers t = List.length t.workers

let tenant _t = { tq = Queue.create (); enlisted = false }

let resolve fut result =
  Mutex.lock fut.fmutex;
  fut.state <- result;
  Condition.broadcast fut.fdone;
  Mutex.unlock fut.fmutex

let async ?tenant:ten t f =
  let ten = match ten with Some ten -> ten | None -> t.default in
  let fut = { fmutex = Mutex.create (); fdone = Condition.create (); state = Pending } in
  let run () =
    match f () with
    | v -> resolve fut (Done v)
    | exception exn -> resolve fut (Failed exn)
  in
  (* Only an observed pool pays for the timestamp and the wrapping
     closure; the default path enqueues the bare runner as before. *)
  let run =
    if t.telemetry == no_telemetry then run
    else begin
      let enqueued = Unix.gettimeofday () in
      fun () ->
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            t.telemetry.on_task ~worker:(current_worker ())
              ~queued_s:(t0 -. enqueued)
              ~ran_s:(Unix.gettimeofday () -. t0))
          run
    end
  in
  Mutex.lock t.mutex;
  if t.shutting_down then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.async: pool is shut down"
  end;
  if t.workers = [] then begin
    (* Sequential pool: run inline, outside the lock. *)
    Mutex.unlock t.mutex;
    run ()
  end
  else begin
    Queue.push run ten.tq;
    if not ten.enlisted then begin
      ten.enlisted <- true;
      Queue.push ten t.ring
    end;
    Condition.signal t.has_work;
    Mutex.unlock t.mutex
  end;
  fut

let await fut =
  Mutex.lock fut.fmutex;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fdone fut.fmutex;
        wait ()
    | Done v ->
        Mutex.unlock fut.fmutex;
        v
    | Failed exn ->
        Mutex.unlock fut.fmutex;
        raise exn
  in
  wait ()

let init_array ?tenant t n f =
  if n < 0 then invalid_arg "Pool.init_array: negative length";
  if n = 0 then [||]
  else if t.workers = [] && t.telemetry == no_telemetry then Array.init n f
  else begin
    (* One future per element: simulation tasks are coarse enough that
       per-task queue overhead is negligible, and uneven task costs then
       balance naturally. *)
    let futures = Array.init n (fun i -> async ?tenant t (fun () -> f i)) in
    Array.map await futures
  end

let map_array ?tenant t f xs = init_array ?tenant t (Array.length xs) (fun i -> f xs.(i))

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?num_domains ?telemetry f =
  let pool = create ?num_domains ?telemetry () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
