(** A fixed-size pool of worker domains with a shared FIFO task queue.

    Monte Carlo replication is embarrassingly parallel: thousands of
    independent simulations per configuration. The sealed container has no
    domainslib, so this is a small hand-rolled pool over [Domain.t] with a
    [Mutex]/[Condition]-protected queue.

    Determinism note: tasks must not share mutable state; each simulation
    derives its randomness from [(seed, replication index)], so results are
    identical whatever the domain interleaving. *)

type t

type telemetry = {
  on_task : worker:int -> queued_s:float -> ran_s:float -> unit;
      (** After every completed task (exceptional or not): which worker ran
          it, how long it sat in the queue, how long it ran. *)
  on_idle : worker:int -> idle_s:float -> unit;
      (** After every dequeue attempt: how long the worker spent holding no
          task (blocked on the condition variable or winning it
          immediately). Includes the final wait that observes shutdown. *)
}
(** Observation hooks, called on the {e worker's} domain — implementations
    must be thread-safe. The tracing layer turns them into per-domain
    busy/idle lanes and a queue-wait histogram
    ([Cocheck_obs.Tracing.pool_telemetry]). *)

val no_telemetry : telemetry
(** The sentinel default. When a pool is created with it (physical
    equality), submission and the worker loop take exactly the
    pre-telemetry code path: no timestamps, no wrapping closure. *)

val create : ?num_domains:int -> ?telemetry:telemetry -> unit -> t
(** [create ~num_domains ()] spawns that many worker domains (default
    [Domain.recommended_domain_count () - 1], at least 1).
    [num_domains = 0] builds a {e sequential} pool: every submission runs
    inline on the caller, which is useful for reproducible unit tests and
    for nesting (pools must not be used from inside their own tasks).
    An observed sequential pool reports every task on worker 0, in
    submission order — deterministic lanes for tests. *)

val num_workers : t -> int
(** Worker domain count; [0] for a sequential pool. *)

val current_worker : unit -> int
(** The index of the pool worker running the calling task, [0] outside any
    worker (and for a sequential pool's inline tasks) — the lane id a task
    should tag its own trace spans with. *)

type tenant
(** A fair-queueing principal. Tasks of one tenant run in FIFO order among
    themselves; dispatch round-robins one task at a time across the
    tenants that currently have queued work, so no tenant waits behind
    another's whole backlog — a client submitting one cell is served after
    at most one task per competing tenant, not after a 256-cell sweep.
    Tasks submitted without a tenant share the pool's default tenant,
    which preserves the pre-tenant global FIFO behaviour. *)

val tenant : t -> tenant
(** A fresh tenant for [t]. Cheap; one per service client connection.
    Tenants need no unregistration — an empty tenant holds no pool
    resources and is garbage once dropped. *)

type 'a future

val async : ?tenant:tenant -> t -> (unit -> 'a) -> 'a future
(** Submit a task; returns immediately (sequential pools run it inline).
    [tenant] selects the fair-queueing principal (default: the pool's
    shared default tenant). *)

val await : 'a future -> 'a
(** Block until the task finishes. Re-raises the task's exception, if any.
    May be called at most once per future from one caller. *)

val map_array : ?tenant:tenant -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], preserving order. Exceptions from tasks are
    re-raised after all tasks complete. *)

val init_array : ?tenant:tenant -> t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val shutdown : t -> unit
(** Join all workers. Outstanding tasks are completed first. Idempotent.
    Submitting after shutdown raises [Invalid_argument]. *)

val with_pool : ?num_domains:int -> ?telemetry:telemetry -> (t -> 'a) -> 'a
(** Create, run, and always shut the pool down. *)
