(* Differential test: the incremental virtual-time flow scheduler
   (Io_subsystem) against the naive full-rescan reference (Io_reference) on
   randomized schedules of starts, aborts and zero-volume flows across all
   three sharing disciplines. Both engines replay the identical schedule on
   their own DES calendar; per-flow completion times, the full metrics
   ledger and the transferred-volume total must agree within float
   tolerance. A third replay adds mid-run [sync] calls to the new engine
   and demands bitwise-stable final ledgers, proving settlement points are
   semantically transparent. *)

module Engine = Cocheck_des.Engine
module Metrics = Cocheck_sim.Metrics
module Rng = Cocheck_util.Rng

(* ------------------------------------------------------------------ *)
(* Randomized schedules                                                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Start of { ix : int; at : float; nodes : int; kind_ix : int; volume : float }
  | Abort of { at : float; target : int }

type schedule = {
  sharing : [ `Linear | `Degraded of float | `Unshared ];
  seg : float * float;
  nflows : int;
  ops : op list;  (* sorted by time; identical replay order on both sides *)
  syncs : float list;  (* extra settlement probes for the sync replay *)
}

let gen_schedule ~sharing ~seed =
  let rng = Rng.create ~seed in
  let u lo hi = lo +. (Rng.unit_float rng *. (hi -. lo)) in
  let nflows = 1 + Rng.int rng 25 in
  let starts =
    List.init nflows (fun ix ->
        let volume = if Rng.unit_float rng < 0.12 then 0.0 else u 0.5 200.0 in
        Start
          {
            ix;
            at = u 0.0 60.0;
            nodes = 1 + Rng.int rng 8;
            kind_ix = Rng.int rng 5;
            volume;
          })
  in
  let aborts =
    List.filter_map
      (function
        | Start { ix; at; _ } when Rng.unit_float rng < 0.3 ->
            (* May land after natural completion: abort is then a no-op. *)
            Some (Abort { at = at +. u 0.0 120.0; target = ix })
        | _ -> None)
      starts
  in
  let time_of = function Start { at; _ } | Abort { at; _ } -> at in
  let ops =
    List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) (starts @ aborts)
  in
  let seg_lo = u 0.0 40.0 in
  let syncs = List.init 4 (fun _ -> u 0.0 300.0) in
  { sharing; seg = (seg_lo, seg_lo +. u 40.0 400.0); nflows; ops; syncs }

(* ------------------------------------------------------------------ *)
(* Replay driver, shared by both implementations                        *)
(* ------------------------------------------------------------------ *)

module type IO = sig
  type t
  type flow
  type io_kind

  val kinds : io_kind array

  val create :
    engine:Engine.t ->
    metrics:Metrics.t ->
    bandwidth_gbs:float ->
    sharing:[ `Linear | `Degraded of float | `Unshared ] ->
    t

  val start_flow :
    t ->
    job:int ->
    nodes:int ->
    kind:io_kind ->
    volume_gb:float ->
    on_complete:(unit -> unit) ->
    flow

  val abort_flow : t -> flow -> unit
  val transferred_gb : t -> float
  val sync : t -> unit option
  (* [None] marks an implementation without settlement probes. *)
end

module New_io : IO = struct
  include Cocheck_sim.Io_subsystem

  let kinds = [| Input; Output; Ckpt; Recovery; Drain |]
  let sync t = Some (sync t)
end

module Ref_io : IO = struct
  include Cocheck_sim.Io_reference

  let kinds = [| Input; Output; Ckpt; Recovery; Drain |]
  let sync _ = None
end

type outcome = {
  completions : float array;  (* nan: aborted or never finished *)
  ledger : (Metrics.kind * float) list;
  transferred : float;
}

module Replay (M : IO) = struct
  let run ?(with_syncs = false) (s : schedule) =
    let engine = Engine.create () in
    let seg_start, seg_end = s.seg in
    let metrics = Metrics.create ~seg_start ~seg_end in
    let io = M.create ~engine ~metrics ~bandwidth_gbs:10.0 ~sharing:s.sharing in
    let flows = Array.make s.nflows None in
    let completions = Array.make s.nflows nan in
    List.iter
      (function
        | Start { ix; at; nodes; kind_ix; volume } ->
            ignore
              (Engine.schedule_at engine ~time:at (fun _ ->
                   let f =
                     M.start_flow io ~job:ix ~nodes ~kind:M.kinds.(kind_ix)
                       ~volume_gb:volume ~on_complete:(fun () ->
                         completions.(ix) <- Engine.now engine)
                   in
                   flows.(ix) <- Some f))
        | Abort { at; target } ->
            ignore
              (Engine.schedule_at engine ~time:at (fun _ ->
                   match flows.(target) with
                   | Some f -> M.abort_flow io f
                   | None -> ())))
      s.ops;
    if with_syncs then
      List.iter
        (fun at -> ignore (Engine.schedule_at engine ~time:at (fun _ -> ignore (M.sync io))))
        s.syncs;
    Engine.run engine;
    ignore (M.sync io);
    { completions; ledger = Metrics.by_kind metrics; transferred = M.transferred_gb io }
end

module Run_new = Replay (New_io)
module Run_ref = Replay (Ref_io)

(* ------------------------------------------------------------------ *)
(* Comparison                                                           *)
(* ------------------------------------------------------------------ *)

let rel_close ?(tol = 1e-6) a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_same ~ctx (a : outcome) (b : outcome) =
  Array.iteri
    (fun i ta ->
      let tb = b.completions.(i) in
      if not (rel_close ta tb) then
        Alcotest.failf "%s: flow %d completion %.9g vs %.9g" ctx i ta tb)
    a.completions;
  List.iter2
    (fun (k, va) (k', vb) ->
      assert (k = k');
      if not (rel_close va vb) then
        Alcotest.failf "%s: ledger %s %.9g vs %.9g" ctx (Metrics.kind_name k) va vb)
    a.ledger b.ledger;
  if not (rel_close a.transferred b.transferred) then
    Alcotest.failf "%s: transferred %.9g vs %.9g" ctx a.transferred b.transferred

let sharing_name = function
  | `Linear -> "linear"
  | `Degraded _ -> "degraded"
  | `Unshared -> "unshared"

let run_mode sharing () =
  for seed = 0 to 99 do
    let s = gen_schedule ~sharing ~seed in
    let ctx = Printf.sprintf "%s seed %d" (sharing_name sharing) seed in
    let n = Run_new.run s in
    check_same ~ctx n (Run_ref.run s);
    (* Mid-run settlement probes must not move final numbers. *)
    check_same ~ctx:(ctx ^ " +sync") n (Run_new.run ~with_syncs:true s)
  done

(* ------------------------------------------------------------------ *)
(* Targeted sync semantics                                              *)
(* ------------------------------------------------------------------ *)

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

let test_sync_settles_partial_ledger () =
  (* Two equal regular flows at half rate each; at t=4 each has earned
     4 s x 2 nodes = 8 node-seconds, half progress, half dilation. *)
  let engine = Engine.create () in
  let metrics = Metrics.create ~seg_start:0.0 ~seg_end:1e9 in
  let io =
    Cocheck_sim.Io_subsystem.create ~engine ~metrics ~bandwidth_gbs:10.0 ~sharing:`Linear
  in
  let start () =
    ignore
      (Cocheck_sim.Io_subsystem.start_flow io ~job:0 ~nodes:2
         ~kind:Cocheck_sim.Io_subsystem.Input ~volume_gb:100.0 ~on_complete:(fun () -> ()))
  in
  start ();
  start ();
  ignore
    (Engine.schedule_at engine ~time:4.0 (fun _ ->
         checkf "nothing settled yet" 0.0 (Metrics.total metrics Metrics.Regular_io);
         Cocheck_sim.Io_subsystem.sync io;
         checkf "progress share settled" ~eps:1e-9 8.0
           (Metrics.total metrics Metrics.Regular_io);
         checkf "dilation share settled" ~eps:1e-9 8.0
           (Metrics.total metrics Metrics.Io_dilation);
         checkf "transferred so far" ~eps:1e-9 40.0
           (Cocheck_sim.Io_subsystem.transferred_gb io)));
  Engine.run engine;
  checkf "final progress" ~eps:1e-6 40.0 (Metrics.total metrics Metrics.Regular_io);
  checkf "final transferred" ~eps:1e-6 200.0 (Cocheck_sim.Io_subsystem.transferred_gb io)

let () =
  Alcotest.run "cocheck.io-differential"
    [
      ( "differential",
        [
          Alcotest.test_case "linear: 100 randomized schedules" `Quick (run_mode `Linear);
          Alcotest.test_case "degraded: 100 randomized schedules" `Quick
            (run_mode (`Degraded 0.35));
          Alcotest.test_case "unshared: 100 randomized schedules" `Quick
            (run_mode `Unshared);
        ] );
      ("sync", [ Alcotest.test_case "partial settlement" `Quick test_sync_settles_partial_ledger ]);
    ]
