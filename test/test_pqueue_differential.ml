(* Differential oracle for the struct-of-arrays Pqueue: drive the new
   implementation and the frozen record-per-entry reference
   (pqueue_reference.ml, the pre-rewrite code verbatim) through identical
   randomized histories of add/pop/remove/update/clear/peek and check every
   observable answer — including handle liveness after free and slot reuse —
   is bit-identical. Priorities are quantized to quarters so ties are
   frequent and the seq FIFO tie-break is exercised throughout. *)

module P = Cocheck_util.Pqueue
module R = Pqueue_reference

type op =
  | Add of float * int
  | Pop
  | Drop  (* min_* accessors + drop_min vs reference peek/pop *)
  | Remove of int
  | Update of int * float
  | Mem of int
  | Priority_of of int
  | Tag_of of int
  | Peek
  | Clear
  | Sorted

let show_op = function
  | Add (p, t) -> Printf.sprintf "Add(%g,%d)" p t
  | Pop -> "Pop"
  | Drop -> "Drop"
  | Remove i -> Printf.sprintf "Remove(%d)" i
  | Update (i, p) -> Printf.sprintf "Update(%d,%g)" i p
  | Mem i -> Printf.sprintf "Mem(%d)" i
  | Priority_of i -> Printf.sprintf "Priority_of(%d)" i
  | Tag_of i -> Printf.sprintf "Tag_of(%d)" i
  | Peek -> "Peek"
  | Clear -> "Clear"
  | Sorted -> "Sorted"

let op_gen =
  QCheck.Gen.(
    let quarter = map (fun p -> float_of_int p /. 4.0) (int_range 0 32) in
    frequency
      [
        (6, map2 (fun p t -> Add (p, t)) quarter (int_range (-2) 5));
        (3, return Pop);
        (2, return Drop);
        (2, map (fun i -> Remove i) (int_range 0 999));
        (3, map2 (fun i p -> Update (i, p)) (int_range 0 999) quarter);
        (1, map (fun i -> Mem i) (int_range 0 999));
        (1, map (fun i -> Priority_of i) (int_range 0 999));
        (1, map (fun i -> Tag_of i) (int_range 0 999));
        (2, return Peek);
        (1, return Clear);
        (1, return Sorted);
      ])

let history_gen = QCheck.Gen.(list_size (int_range 1 250) op_gen)

let arb_history =
  QCheck.make ~print:(fun ops -> String.concat "; " (List.map show_op ops)) history_gen

(* Values are distinct ints so every equality below is structural and total. *)
let run_history ops =
  let p = P.create () and r = R.create () in
  (* All handles ever issued, dead ones included: ops index into this list so
     stale handles (freed, and freed-then-slot-reused) are probed too. *)
  let handles = ref [||] in
  let nhandles = ref 0 in
  let push ph rh =
    if !nhandles = Array.length !handles then begin
      let grown = Array.make (max 8 (2 * !nhandles)) (P.null_handle, { R.pos = -1 }) in
      Array.blit !handles 0 grown 0 !nhandles;
      handles := grown
    end;
    !handles.(!nhandles) <- (ph, rh);
    incr nhandles
  in
  let nth i = if !nhandles = 0 then None else Some !handles.(i mod !nhandles) in
  let next_v = ref 0 in
  let fail op fmt =
    Printf.ksprintf (fun msg -> QCheck.Test.fail_reportf "%s: %s" (show_op op) msg) fmt
  in
  let check op what eq = if not eq then fail op "%s diverged" what in
  List.iter
    (fun op ->
      (match op with
      | Add (priority, tag) ->
          incr next_v;
          let v = !next_v in
          push (P.add_tagged p ~priority ~tag v) (R.add_tagged r ~priority ~tag v)
      | Pop -> check op "pop_tagged" (P.pop_tagged p = R.pop_tagged r)
      | Drop -> (
          match R.peek r with
          | None -> check op "emptiness" (P.is_empty p)
          | Some (prio, v) ->
              check op "emptiness" (not (P.is_empty p));
              check op "min_priority" (P.min_priority p = prio);
              check op "min_value" (P.min_value p = v);
              (match R.pop_tagged r with
              | Some (_, tg, _) -> check op "min_tag" (P.min_tag p = tg)
              | None -> assert false);
              P.drop_min p)
      | Remove i -> (
          match nth i with
          | None -> ()
          | Some (ph, rh) -> check op "remove" (P.remove p ph = R.remove r rh))
      | Update (i, priority) -> (
          match nth i with
          | None -> ()
          | Some (ph, rh) ->
              check op "update_priority"
                (P.update_priority p ph ~priority = R.update_priority r rh ~priority))
      | Mem i -> (
          match nth i with
          | None -> ()
          | Some (ph, rh) -> check op "mem" (P.mem p ph = R.mem r rh))
      | Priority_of i -> (
          match nth i with
          | None -> ()
          | Some (ph, rh) -> check op "priority_of" (P.priority_of p ph = R.priority_of r rh))
      | Tag_of i -> (
          match nth i with
          | None -> ()
          | Some (ph, rh) -> check op "tag_of" (P.tag_of p ph = R.tag_of r rh))
      | Peek -> check op "peek" (P.peek p = R.peek r)
      | Clear ->
          P.clear p;
          R.clear r
      | Sorted -> check op "to_sorted_list" (P.to_sorted_list p = R.to_sorted_list r));
      check op "length" (P.length p = R.length r);
      check op "is_empty" (P.is_empty p = R.is_empty r))
    ops;
  (* Final drain compares the full FIFO-tie-broken order. *)
  if P.to_sorted_list p <> R.to_sorted_list r then
    QCheck.Test.fail_report "final to_sorted_list diverged";
  let rec drain () =
    let a = P.pop_tagged p and b = R.pop_tagged r in
    if a <> b then QCheck.Test.fail_report "drain pop_tagged diverged";
    if a <> None then drain ()
  in
  drain ();
  true

let test_differential =
  QCheck.Test.make ~name:"soa_pqueue_equals_reference" ~count:400 arb_history run_history

(* Long tied-run history: every priority equal, so correctness rests wholly
   on the seq tie-break surviving adds, removes and equal-priority updates. *)
let test_all_ties () =
  let p = P.create () and r = R.create () in
  let ph = Array.init 200 (fun i -> P.add_tagged p ~priority:1.0 ~tag:(i mod 7) i) in
  let rh = Array.init 200 (fun i -> R.add_tagged r ~priority:1.0 ~tag:(i mod 7) i) in
  for i = 0 to 199 do
    if i mod 3 = 0 then begin
      (* Equal-priority update: both sides report success, order unchanged. *)
      Alcotest.(check bool)
        "update=true" true
        (P.update_priority p ph.(i) ~priority:1.0 = R.update_priority r rh.(i) ~priority:1.0)
    end;
    if i mod 5 = 0 then
      Alcotest.(check bool) "remove agrees" true (P.remove p ph.(i) = R.remove r rh.(i))
  done;
  let rec drain acc_p acc_r =
    match (P.pop_tagged p, R.pop_tagged r) with
    | None, None -> (List.rev acc_p, List.rev acc_r)
    | Some a, Some b -> drain (a :: acc_p) (b :: acc_r)
    | _ -> Alcotest.fail "length diverged"
  in
  let xs, ys = drain [] [] in
  Alcotest.(check bool) "tied drain identical" true (xs = ys);
  (* FIFO within the tie: surviving values pop in insertion order. *)
  let vals = List.map (fun (_, _, v) -> v) xs in
  Alcotest.(check bool) "FIFO order" true (List.sort compare vals = vals)

let () =
  Alcotest.run "cocheck.pqueue-differential"
    [
      ( "differential",
        QCheck_alcotest.to_alcotest ~long:false test_differential
        :: [ Alcotest.test_case "all-ties FIFO history" `Quick test_all_ties ] );
    ]
