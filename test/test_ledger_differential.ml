(* Differential oracle for the unboxed interval ledger: drive
   Cocheck_util.Interval_ledger and the retired [(lo, hi) list]
   representation (head newest) through identical randomized histories of
   commit / lose / snapshot-partition / flush — including the multilevel
   soft-restart partition, where [safe] is the max over the surviving
   snapshot levels' safe times — and check every observable agrees: the
   materialized interval sequence exactly, every total to 1e-12 (the fold
   orders are identical, so the sums are in fact bit-equal).

   Times live on a quarter-second grid so that level safe times frequently
   coincide exactly with interval endpoints, exercising the strict
   [hi > safe] boundary (an interval ending exactly at [safe] survives). *)

module L = Cocheck_util.Interval_ledger

type op =
  | Commit of int * int  (* gap, duration — quarter-seconds, both can be 0 *)
  | Lost of int list  (* query lost_above at max surviving level safe time *)
  | Partition of int list  (* failure: partition at multilevel safe, then clear *)
  | Flush  (* commit everything, then clear *)
  | Clear

let show_op =
  let levels ls = String.concat "," (List.map string_of_int ls) in
  function
  | Commit (g, d) -> Printf.sprintf "Commit(%d,%d)" g d
  | Lost ls -> Printf.sprintf "Lost[%s]" (levels ls)
  | Partition ls -> Printf.sprintf "Partition[%s]" (levels ls)
  | Flush -> "Flush"
  | Clear -> "Clear"

let op_gen =
  QCheck.Gen.(
    let quarters = int_range 0 400 in
    let survivors = list_size (int_range 0 3) quarters in
    frequency
      [
        (6, map2 (fun g d -> Commit (g, d)) (int_range 0 8) (int_range 0 12));
        (3, map (fun ls -> Lost ls) survivors);
        (3, map (fun ls -> Partition ls) survivors);
        (1, return Flush);
        (1, return Clear);
      ])

let history_gen = QCheck.Gen.(list_size (int_range 1 200) op_gen)

let arb_history =
  QCheck.make ~print:(fun ops -> String.concat "; " (List.map show_op ops)) history_gen

(* The multilevel safe threshold, exactly as the failure path computes it: a
   hard failure (no survivor) keeps [safe] at -inf and loses everything. *)
let safe_of levels =
  List.fold_left (fun acc q -> Float.max acc (float_of_int q /. 4.0)) neg_infinity levels

(* Reference semantics on the retired head-newest list. *)
let ref_lost_above list ~safe =
  let lost = List.filter (fun (_, b) -> b > safe) list in
  List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 lost

let ref_partition list ~safe =
  let lost, kept = List.partition (fun (_, b) -> b > safe) list in
  let total = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 in
  (total lost, total kept)

(* Ledger-side partition totals in the flush_partition replay order:
   lost newest-first, then kept newest-first. *)
let led_partition led ~safe =
  let n = L.length led in
  let lost = ref 0.0 and kept = ref 0.0 in
  for i = n - 1 downto 0 do
    if L.hi_at led i > safe then lost := !lost +. (L.hi_at led i -. L.lo_at led i)
  done;
  for i = n - 1 downto 0 do
    if not (L.hi_at led i > safe) then kept := !kept +. (L.hi_at led i -. L.lo_at led i)
  done;
  (!lost, !kept)

let led_total led =
  let t = ref 0.0 in
  for i = L.length led - 1 downto 0 do
    t := !t +. (L.hi_at led i -. L.lo_at led i)
  done;
  !t

let run_history ops =
  let led = L.create () in
  let reference = ref [] in
  let clock = ref 0.0 in
  let fail op fmt =
    Printf.ksprintf (fun msg -> QCheck.Test.fail_reportf "%s: %s" (show_op op) msg) fmt
  in
  let check_total op what a b =
    if Float.abs (a -. b) > 1e-12 then fail op "%s diverged: %.17g vs %.17g" what a b
  in
  List.iter
    (fun op ->
      (match op with
      | Commit (gap, dur) ->
          let lo = !clock +. (float_of_int gap /. 4.0) in
          let hi = lo +. (float_of_int dur /. 4.0) in
          clock := hi;
          L.push led ~lo ~hi;
          reference := (lo, hi) :: !reference
      | Lost levels ->
          let safe = safe_of levels in
          check_total op "lost_above" (L.lost_above led ~safe)
            (ref_lost_above !reference ~safe)
      | Partition levels ->
          let safe = safe_of levels in
          let ll, lk = led_partition led ~safe in
          let rl, rk = ref_partition !reference ~safe in
          check_total op "partition lost" ll rl;
          check_total op "partition kept" lk rk;
          L.clear led;
          reference := []
      | Flush ->
          check_total op "flush total" (led_total led)
            (List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 !reference);
          L.clear led;
          reference := []
      | Clear ->
          L.clear led;
          reference := []);
      if L.length led <> List.length !reference then fail op "length diverged";
      if L.is_empty led <> (!reference = []) then fail op "is_empty diverged";
      if L.to_list led <> !reference then fail op "to_list diverged")
    ops;
  (* Final sweep: a hard-failure query must account for every interval. *)
  if
    Float.abs
      (L.lost_above led ~safe:neg_infinity -. ref_lost_above !reference ~safe:neg_infinity)
    > 1e-12
  then QCheck.Test.fail_report "final hard-failure lost_above diverged";
  true

let test_differential =
  QCheck.Test.make ~name:"interval_ledger_equals_list_reference" ~count:300 arb_history
    run_history

(* Deterministic boundary check: an interval ending exactly at [safe]
   survives the partition; one ending any amount later is lost. *)
let test_safe_boundary () =
  let led = L.create () in
  L.push led ~lo:0.0 ~hi:2.0;
  L.push led ~lo:3.0 ~hi:4.0;
  let lost, kept = led_partition led ~safe:2.0 in
  Alcotest.(check (float 0.0)) "boundary interval kept" 2.0 kept;
  Alcotest.(check (float 0.0)) "later interval lost" 1.0 lost;
  Alcotest.(check (float 0.0)) "lost_above matches" 1.0 (L.lost_above led ~safe:2.0)

let () =
  Alcotest.run "cocheck.ledger-differential"
    [
      ( "differential",
        QCheck_alcotest.to_alcotest ~long:false test_differential
        :: [ Alcotest.test_case "safe boundary" `Quick test_safe_boundary ] );
    ]
