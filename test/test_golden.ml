(* Golden-trace regression: every paper strategy on three fixed seeds must
   reproduce the stored [Simulator.result] fixtures field-by-field (floats
   compared as hexadecimal literals, i.e. bit-exactly). The fixture was
   generated from the pre-decomposition monolithic simulator, so a green
   run proves the arbiter/lifecycle/checkpoint/failure split is
   behavior-preserving. Regenerate (only on an intentional behavior
   change) with:

     dune exec test/golden/gen_golden.exe > test/golden_results.txt *)

(* dune runtest runs with cwd = the test build dir; `dune exec
   test/test_golden.exe` (the CI step) runs from the project root. *)
let fixture_path () =
  if Sys.file_exists "golden_results.txt" then "golden_results.txt"
  else "test/golden_results.txt"

let read_fixture path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_diff expected actual =
  let e = String.split_on_char '\n' expected
  and a = String.split_on_char '\n' actual in
  let rec go i = function
    | [], [] -> None
    | eh :: _, [] -> Some (i, eh, "<missing>")
    | [], ah :: _ -> Some (i, "<missing>", ah)
    | eh :: et, ah :: at -> if String.equal eh ah then go (i + 1) (et, at) else Some (i, eh, ah)
  in
  go 1 (e, a)

let test_golden () =
  let expected = read_fixture (fixture_path ()) in
  let actual = Golden_format.all_runs () in
  match first_diff expected actual with
  | None -> ()
  | Some (line, e, a) ->
      Alcotest.failf
        "golden trace diverged at line %d:@\n  expected: %s@\n  actual:   %s" line e a

let () =
  Alcotest.run "golden"
    [
      ( "paper-seven",
        [ Alcotest.test_case "bit-identical on 3 seeds" `Quick test_golden ] );
    ]
