(* Tests for the sharded results store: concurrent writers racing on the
   same keys, corrupt/truncated records demoting to a miss under a live
   reader, migration from the flat pre-shard layout, index eviction
   bounds, and orphan-tmp compaction. *)

module Json = Cocheck_obs.Json
module E = Cocheck_experiments

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "cocheck-store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* 32-hex keys shaped like Spec.cell_key digests. *)
let key_of i = Printf.sprintf "%032x" (i * 0x9e3779b9)
let ratio_of i = 0.01 *. float_of_int (i mod 97)

let record ~key ratio =
  Json.Obj
    [
      ("schema", Json.String "cocheck.cell-result");
      ("key", Json.String key);
      ("waste_ratio", Json.Float ratio);
    ]

let add store i =
  let key = key_of i in
  E.Store.add store ~key ~ratio:(ratio_of i) (record ~key (ratio_of i))

(* ------------------------------------------------------------------ *)

let test_sharded_layout () =
  with_temp_dir (fun dir ->
      let store = E.Store.open_ dir in
      add store 1;
      let key = key_of 1 in
      let path = E.Store.path_of_key store key in
      Alcotest.(check string) "record lands in its 2-hex shard"
        (Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".json"))
        path;
      Alcotest.(check bool) "record file exists" true (Sys.file_exists path);
      Alcotest.(check (option (float 0.0))) "find returns the ratio" (Some (ratio_of 1))
        (E.Store.find store key);
      Alcotest.(check int) "one record on disk" 1 (E.Store.record_count store);
      (* A fresh open (cold index) reads the same record from disk. *)
      let reopened = E.Store.open_ dir in
      Alcotest.(check (option (float 0.0))) "fresh open reads it back" (Some (ratio_of 1))
        (E.Store.find reopened key);
      Alcotest.(check int) "disk read counted as a load" 1 (E.Store.stats reopened).E.Store.loads)

let test_racing_writers () =
  with_temp_dir (fun dir ->
      let store = E.Store.open_ dir in
      let n_keys = 25 and n_threads = 8 in
      (* Every thread writes every key: maximal same-key contention. The
         records are deterministic, so whichever rename lands last must
         leave the canonical bytes. *)
      let worker _ = for i = 0 to n_keys - 1 do add store i done in
      let threads = List.init n_threads (fun t -> Thread.create worker t) in
      List.iter Thread.join threads;
      Alcotest.(check int) "one record per key survives the race" n_keys
        (E.Store.record_count store);
      Alcotest.(check int) "no orphan temps after clean writers" 0 (E.Store.compact store);
      (* Read everything back through a cold index: every surviving file
         must be intact JSON with the deterministic ratio. *)
      let cold = E.Store.open_ dir in
      for i = 0 to n_keys - 1 do
        Alcotest.(check (option (float 0.0)))
          (Printf.sprintf "key %d intact after racing writers" i)
          (Some (ratio_of i))
          (E.Store.find cold (key_of i))
      done)

let test_corrupt_record_demotes_live_reader () =
  with_temp_dir (fun dir ->
      let store = E.Store.open_ dir in
      add store 1;
      add store 2;
      (* A separate reading process: fresh store, cold index. *)
      let reader = E.Store.open_ dir in
      (* A live reader hammers a healthy key while we corrupt another. *)
      let stop = Atomic.make false in
      let healthy_ok = Atomic.make true in
      let th =
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              if E.Store.find reader (key_of 1) <> Some (ratio_of 1) then
                Atomic.set healthy_ok false;
              Thread.yield ()
            done)
          ()
      in
      let corrupt path bytes =
        let oc = open_out path in
        output_string oc bytes;
        close_out oc
      in
      (* Truncated JSON. *)
      corrupt (E.Store.path_of_key reader (key_of 2)) "{\"waste_ratio\": 0.1";
      Alcotest.(check (option (float 0.0))) "truncated record is a miss" None
        (E.Store.find reader (key_of 2));
      (* Valid JSON, wrong shape. *)
      corrupt (E.Store.path_of_key reader (key_of 2)) "{\"schema\": \"nope\"}";
      Alcotest.(check (option (float 0.0))) "shape-less record is a miss" None
        (E.Store.find reader (key_of 2));
      Alcotest.(check bool) "misses counted" true
        ((E.Store.stats reader).E.Store.misses >= 2);
      (* Re-simulation overwrites the corpse and the key heals. *)
      add reader 2;
      Alcotest.(check (option (float 0.0))) "rewrite heals the key" (Some (ratio_of 2))
        (E.Store.find reader (key_of 2));
      Atomic.set stop true;
      Thread.join th;
      Alcotest.(check bool) "live reader never saw the healthy key corrupted" true
        (Atomic.get healthy_ok))

let test_flat_migration () =
  with_temp_dir (fun dir ->
      (* A PR 4-style flat store: every record at the root. *)
      let n = 10 in
      for i = 0 to n - 1 do
        let key = key_of i in
        let oc = open_out (Filename.concat dir (key ^ ".json")) in
        output_string oc (Json.to_string_pretty (record ~key (ratio_of i)));
        close_out oc
      done;
      let store = E.Store.open_ dir in
      Alcotest.(check int) "every flat record migrated" n
        (E.Store.stats store).E.Store.migrated;
      Alcotest.(check int) "record count unchanged" n (E.Store.record_count store);
      for i = 0 to n - 1 do
        let key = key_of i in
        Alcotest.(check bool) "flat path gone" false
          (Sys.file_exists (E.Store.flat_path store key));
        Alcotest.(check bool) "sharded path exists" true
          (Sys.file_exists (E.Store.path_of_key store key));
        Alcotest.(check (option (float 0.0))) "migrated record readable"
          (Some (ratio_of i)) (E.Store.find store key)
      done;
      (* Mid-migration straggler: a flat record appearing after open (e.g.
         written by an old process) still hits via the fallback probe. *)
      let straggler = key_of 99 in
      let oc = open_out (E.Store.flat_path store straggler) in
      output_string oc (Json.to_string_pretty (record ~key:straggler (ratio_of 99)));
      close_out oc;
      Alcotest.(check (option (float 0.0))) "unmigrated flat record still hits"
        (Some (ratio_of 99)) (E.Store.find store straggler);
      Alcotest.(check bool) "contains sees flat records too" true
        (E.Store.contains store straggler))

let test_eviction_bounds () =
  with_temp_dir (fun dir ->
      let store = E.Store.open_ ~capacity:4 dir in
      for i = 0 to 9 do add store i done;
      Alcotest.(check bool) "index stays within capacity" true (E.Store.indexed store <= 4);
      Alcotest.(check int) "overflow evicted FIFO" 6 (E.Store.stats store).E.Store.evictions;
      (* Evicted keys are still served — from disk, re-entering the index. *)
      for i = 0 to 9 do
        Alcotest.(check (option (float 0.0)))
          (Printf.sprintf "evicted key %d falls back to disk" i)
          (Some (ratio_of i)) (E.Store.find store (key_of i))
      done;
      Alcotest.(check bool) "index still bounded after re-loads" true
        (E.Store.indexed store <= 4))

let test_compact_removes_orphans () =
  with_temp_dir (fun dir ->
      let store = E.Store.open_ dir in
      add store 1;
      add store 2;
      (* Litter from crashed writers: at the root and inside a shard. *)
      let orphan path =
        let oc = open_out path in
        output_string oc "{\"half\": ";
        close_out oc
      in
      orphan (E.Store.path_of_key store (key_of 1) ^ ".4242-0.tmp");
      orphan (Filename.concat dir "stale.tmp");
      Alcotest.(check int) "both orphans swept" 2 (E.Store.compact store);
      Alcotest.(check int) "records survive compaction" 2 (E.Store.record_count store);
      Alcotest.(check int) "second sweep finds nothing" 0 (E.Store.compact store))

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "sharded layout and reopen" `Quick test_sharded_layout;
          Alcotest.test_case "racing writers stay atomic" `Quick test_racing_writers;
          Alcotest.test_case "corrupt record demotes under a live reader" `Quick
            test_corrupt_record_demotes_live_reader;
          Alcotest.test_case "flat-layout migration" `Quick test_flat_migration;
          Alcotest.test_case "index eviction bounds" `Quick test_eviction_bounds;
          Alcotest.test_case "compact removes orphan temps" `Quick
            test_compact_removes_orphans;
        ] );
    ]
