(* Regenerate the golden-trace fixture:

     dune exec test/golden/gen_golden.exe > test/golden_results.txt

   Only do this deliberately — the whole point of the fixture is to pin the
   simulator's behavior across refactors of its internals. *)

let () = print_string (Golden_format.all_runs ())
