(* Canonical, bit-exact textual form of a [Simulator.result], shared by the
   golden-trace generator (test/golden/gen_golden.ml) and the regression
   test (test/test_golden.ml). Floats are printed as hexadecimal literals
   ([%h]) so two results compare equal exactly when every field is
   bit-identical — the contract the arbiter decomposition must preserve. *)

module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics

let seeds = [ 11; 42; 1337 ]
let days = 2.0
let bandwidth_gbs = 40.0

let config ~strategy ~seed =
  Config.make ~platform:(Platform.cielo ~bandwidth_gbs ()) ~strategy ~seed ~days ()

let f v = Printf.sprintf "%h" v

let named_floats pairs =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s:%s" k (f v)) pairs)

let named_ints pairs =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) pairs)

let result_block ~strategy ~seed (r : Simulator.result) =
  String.concat "\n"
    [
      Printf.sprintf "run %s seed=%d" (Strategy.name strategy) seed;
      "progress_ns=" ^ f r.progress_ns;
      "waste_ns=" ^ f r.waste_ns;
      "enrolled_ns=" ^ f r.enrolled_ns;
      "by_kind="
      ^ named_floats (List.map (fun (k, v) -> (Metrics.kind_name k, v)) r.by_kind);
      Printf.sprintf "failures_seen=%d" r.failures_seen;
      Printf.sprintf "failures_hitting_jobs=%d" r.failures_hitting_jobs;
      Printf.sprintf "ckpts_committed=%d" r.ckpts_committed;
      Printf.sprintf "ckpts_aborted=%d" r.ckpts_aborted;
      Printf.sprintf "restarts=%d" r.restarts;
      Printf.sprintf "jobs_started=%d" r.jobs_started;
      Printf.sprintf "jobs_completed=%d" r.jobs_completed;
      Printf.sprintf "events=%d" r.events;
      "mean_ckpt_interval=" ^ named_floats r.mean_ckpt_interval;
      Printf.sprintf "specs_total=%d" r.specs_total;
      Printf.sprintf "bb_absorbed=%d" r.bb_absorbed;
      Printf.sprintf "bb_spilled=%d" r.bb_spilled;
      "mean_ckpt_wait=" ^ named_floats r.mean_ckpt_wait;
      "utilization=" ^ f r.utilization;
      "io_busy_fraction=" ^ f r.io_busy_fraction;
      "restarts_by_class=" ^ named_ints r.restarts_by_class;
      "lost_work_by_class=" ^ named_floats r.lost_work_by_class;
    ]

let all_runs () =
  let blocks =
    List.concat_map
      (fun strategy ->
        List.map
          (fun seed ->
            result_block ~strategy ~seed (Simulator.run (config ~strategy ~seed)))
          seeds)
      Strategy.paper_seven
  in
  String.concat "\n\n" blocks ^ "\n"
