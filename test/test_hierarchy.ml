(* The multilevel checkpoint hierarchy, across its layers: the analytic
   L-level waste model (against the Two_level oracle and against perturbed
   periods), the level-aware Least-Waste aggregates, the hierarchical lower
   bound, the Ckpt_hierarchy storage engine (capacity accounting, flush
   cascades, failure survival), and the end-to-end differential oracle —
   a single-buffer serialized hierarchy must reproduce the legacy
   burst-buffer simulation event for event. *)

module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Waste = Cocheck_core.Waste
module Strategy = Cocheck_core.Strategy
module Two_level = Cocheck_core.Two_level
module Multilevel = Cocheck_core.Multilevel
module Lower_bound = Cocheck_core.Lower_bound
module Least_waste = Cocheck_core.Least_waste
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Burst_buffer = Cocheck_sim.Burst_buffer
module Ckpt_hierarchy = Cocheck_sim.Ckpt_hierarchy
module Metrics = Cocheck_sim.Metrics
module Io = Cocheck_sim.Io_subsystem
module Engine = Cocheck_des.Engine
module Units = Cocheck_util.Units
module Numerics = Cocheck_util.Numerics
module Rng = Cocheck_util.Rng

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b
let checki msg a b = Alcotest.(check int) msg a b
let checkb msg a b = Alcotest.(check bool) msg a b

(* ------------------------------------------------------------------ *)
(* Multilevel waste model                                               *)
(* ------------------------------------------------------------------ *)

(* The L = 2 instance must be bit-identical to Two_level on its whole
   surface — periods, optimal waste, arbitrary-period waste, worthwhile.
   (Local cost stays positive: Two_level's p > 0 / C_l = 0 corner drops
   the soft recovery term and legitimately diverges.) *)
let test_l2_bitmatches_two_level =
  QCheck.Test.make ~name:"multilevel_l2_bitmatches_two_level" ~count:300
    QCheck.(
      pair
        (quad (float_range 0.1 50.0) (float_range 0.0 100.0) (float_range 1.0 500.0)
           (float_range 0.0 2000.0))
        (pair (float_range 1e4 1e9) (float_range 0.01 0.99)))
    (fun ((lc, lr, gc, gr), (mu, p)) ->
      let tl =
        {
          Two_level.local_cost_s = lc;
          local_recovery_s = lr;
          global_cost_s = gc;
          global_recovery_s = gr;
          mtbf_s = mu;
          soft_fraction = p;
        }
      in
      let ml = Two_level.to_multilevel tl in
      let pl, pg = Two_level.optimal_periods tl in
      Multilevel.optimal_periods ml = [ pl; pg ]
      && Two_level.optimal_waste tl = Multilevel.optimal_waste ml
      && Two_level.worthwhile tl = Multilevel.worthwhile ml
      &&
      let wl = 0.5 *. pl and wg = 1.7 *. pg in
      Two_level.waste tl ~local_period_s:wl ~global_period_s:wg
      = Multilevel.waste ml ~periods:[ wl; wg ])

(* The per-level optima beat perturbed periods. The waste expression
   couples levels through min_{j>=k} P_j, so a shallow period pushed past
   a deeper one free-rides on the deep checkpoints and can beat the
   separable optimum; restoring depth-ordering (running max) makes the
   coupled and separable objectives coincide at the perturbed point, where
   the separable optimum is a true lower bound. *)
let test_optimum_beats_perturbed =
  QCheck.Test.make ~name:"multilevel_optimum_beats_perturbed_periods" ~count:300
    QCheck.(pair (int_range 1 4) (pair small_int (float_range 1e4 1e8)))
    (fun (nl, (seed, mu)) ->
      let rng = Rng.create ~seed:(seed + (nl * 7919)) in
      let u lo hi = lo +. (Rng.unit_float rng *. (hi -. lo)) in
      let levels =
        List.init nl (fun k ->
            {
              Multilevel.cost_s = u 1.0 2.0 *. (8.0 ** float_of_int k);
              recovery_s = u 0.0 50.0;
              fraction = u 0.2 1.0;
            })
      in
      let fsum = List.fold_left (fun a l -> a +. l.Multilevel.fraction) 0.0 levels in
      let levels =
        List.map (fun l -> { l with Multilevel.fraction = l.Multilevel.fraction /. fsum }) levels
      in
      let p = { Multilevel.levels; mtbf_s = mu } in
      Multilevel.validate p;
      let perturbed = List.map (fun pk -> pk *. u 0.5 2.0) (Multilevel.optimal_periods p) in
      let ordered =
        List.rev
          (fst
             (List.fold_left
                (fun (acc, hi) pk ->
                  let q = Float.max hi pk in
                  (q :: acc, q))
                ([], 0.0) perturbed))
      in
      Multilevel.optimal_waste p <= Multilevel.waste p ~periods:ordered +. 1e-9)

let rejects what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test_multilevel_validate () =
  let lvl c f = { Multilevel.cost_s = c; recovery_s = 1.0; fraction = f } in
  Multilevel.validate { Multilevel.levels = [ lvl 1.0 0.5; lvl 10.0 0.5 ]; mtbf_s = 1e6 };
  rejects "no levels" (fun () -> Multilevel.validate { Multilevel.levels = []; mtbf_s = 1e6 });
  rejects "fractions must sum to 1" (fun () ->
      Multilevel.validate { Multilevel.levels = [ lvl 1.0 0.3; lvl 10.0 0.3 ]; mtbf_s = 1e6 });
  rejects "negative cost" (fun () ->
      Multilevel.validate { Multilevel.levels = [ lvl (-1.0) 0.5; lvl 10.0 0.5 ]; mtbf_s = 1e6 });
  rejects "zero mtbf" (fun () ->
      Multilevel.validate { Multilevel.levels = [ lvl 1.0 0.5; lvl 10.0 0.5 ]; mtbf_s = 0.0 });
  rejects "zero deepest cost" (fun () ->
      Multilevel.validate { Multilevel.levels = [ lvl 1.0 0.5; lvl 0.0 0.5 ]; mtbf_s = 1e6 })

(* ------------------------------------------------------------------ *)
(* Level-aware Least-Waste aggregates                                   *)
(* ------------------------------------------------------------------ *)

let gen_entry rng =
  let u lo hi = lo +. (Rng.unit_float rng *. (hi -. lo)) in
  if Rng.unit_float rng < 0.5 then
    Least_waste.Aggregate.Io_entry
      { nodes = 1 + Rng.int rng 4000; service_s = u 0.1 500.0; enqueued_at = u 0.0 5000.0 }
  else
    Least_waste.Aggregate.Ckpt_entry
      {
        nodes = 1 + Rng.int rng 4000;
        ckpt_s = u 0.1 500.0;
        recovery_s = u 0.0 500.0;
        last_commit_end = u 0.0 5000.0;
      }

(* A single-level Levels pool is float-for-float the flat Aggregate —
   the property that keeps single-level golden traces bit-identical. *)
let test_levels_single_pool_bitwise =
  QCheck.Test.make ~name:"levels_single_pool_equals_aggregate" ~count:200
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let mu = Units.years 2.0 in
      let agg = Least_waste.Aggregate.create ~node_mtbf_s:mu in
      let lv = Least_waste.Levels.create ~node_mtbf_s:mu ~levels:1 in
      let entries = List.init n (fun k -> (k, gen_entry rng)) in
      List.iter
        (fun (k, e) ->
          Least_waste.Aggregate.add agg ~key:k e;
          Least_waste.Levels.add lv ~key:k ~level:0 e)
        entries;
      (* drop a few members so removal paths stay in lockstep too *)
      let entries =
        List.filter
          (fun (k, _) ->
            if Rng.unit_float rng < 0.3 then begin
              Least_waste.Aggregate.remove agg ~key:k;
              Least_waste.Levels.remove lv ~key:k;
              false
            end
            else true)
          entries
      in
      let now = 6000.0 +. (Rng.unit_float rng *. 1000.0) in
      List.for_all
        (fun (k, _) ->
          Least_waste.Aggregate.waste agg ~now ~key:k
          = Least_waste.Levels.waste lv ~now ~key:k)
        entries)

let test_levels_sum_across_pools () =
  (* Two levels: a member's waste is its service time against the summed
     totals of every level, minus its own term — mirrored by hand with two
     flat Aggregates. *)
  let mu = Units.years 1.0 in
  let lv = Least_waste.Levels.create ~node_mtbf_s:mu ~levels:2 in
  let a0 = Least_waste.Aggregate.create ~node_mtbf_s:mu in
  let a1 = Least_waste.Aggregate.create ~node_mtbf_s:mu in
  let e0 =
    Least_waste.Aggregate.Io_entry { nodes = 512; service_s = 40.0; enqueued_at = 100.0 }
  in
  let e1 =
    Least_waste.Aggregate.Ckpt_entry
      { nodes = 1024; ckpt_s = 25.0; recovery_s = 60.0; last_commit_end = 2000.0 }
  in
  let e2 =
    Least_waste.Aggregate.Io_entry { nodes = 256; service_s = 90.0; enqueued_at = 1500.0 }
  in
  Least_waste.Levels.add lv ~key:0 ~level:0 e0;
  Least_waste.Levels.add lv ~key:1 ~level:1 e1;
  Least_waste.Levels.add lv ~key:2 ~level:1 e2;
  Least_waste.Aggregate.add a0 ~key:0 e0;
  Least_waste.Aggregate.add a1 ~key:1 e1;
  Least_waste.Aggregate.add a1 ~key:2 e2;
  let now = 9000.0 in
  let expect_for a e =
    let v = Least_waste.Aggregate.service_time e in
    v
    *. (Least_waste.Aggregate.total_term a0 ~now ~service_s:v
       +. Least_waste.Aggregate.total_term a1 ~now ~service_s:v
       -. Least_waste.Aggregate.term a ~now ~service_s:v e)
  in
  checkb "key 0 sums both pools" true
    (Numerics.fequal ~eps:1e-9 (expect_for a0 e0) (Least_waste.Levels.waste lv ~now ~key:0));
  checkb "key 1 sums both pools" true
    (Numerics.fequal ~eps:1e-9 (expect_for a1 e1) (Least_waste.Levels.waste lv ~now ~key:1));
  checkb "key 2 sums both pools" true
    (Numerics.fequal ~eps:1e-9 (expect_for a1 e2) (Least_waste.Levels.waste lv ~now ~key:2))

(* ------------------------------------------------------------------ *)
(* Hierarchical lower bound                                             *)
(* ------------------------------------------------------------------ *)

let cielo_counts () =
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  (platform, Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform)

let test_hier_bound_reduces_to_flat () =
  (* Blocking and edge costs both at the flat solver's available bandwidth
     (PFS minus steady-state regular I/O): Theorem 1 unchanged (the
     bisection tolerances differ, so up-to-rounding, not bitwise). *)
  let platform, counts = cielo_counts () in
  let flat = Lower_bound.solve_model ~classes:counts ~platform () in
  let avail =
    40.0 -. Lower_bound.steady_state_regular_io_gbs ~classes:counts ~platform
  in
  let hier =
    Lower_bound.solve_model_hierarchical ~classes:counts ~platform
      ~absorb_bandwidth_gbs:avail ~edge_bandwidths_gbs:[ 40.0 ] ()
  in
  checkb
    (Printf.sprintf "flat %.6f ~ hierarchical %.6f" flat.Lower_bound.waste
       hier.Lower_bound.waste)
    true
    (Numerics.fequal ~eps:1e-6 flat.Lower_bound.waste hier.Lower_bound.waste)

let test_hier_bound_monotone_in_edge () =
  (* A fast absorb tier: the bound falls monotonically as the flush edge
     widens, and a wide edge beats the flat (blocking-PFS) bound. *)
  let platform, counts = cielo_counts () in
  let bound edge =
    (Lower_bound.solve_model_hierarchical ~classes:counts ~platform
       ~absorb_bandwidth_gbs:1000.0 ~edge_bandwidths_gbs:[ edge ] ())
      .Lower_bound.waste
  in
  let prev = ref infinity in
  List.iter
    (fun e ->
      let w = bound e in
      checkb (Printf.sprintf "bound(%g GB/s) = %.4f non-increasing" e w) true
        (w > 0.0 && w <= !prev +. 1e-9);
      prev := w)
    [ 2.0; 5.0; 10.0; 20.0; 40.0 ];
  let flat = (Lower_bound.solve_model ~classes:counts ~platform ()).Lower_bound.waste in
  checkb "fast absorb + wide edge beats the flat bound" true (bound 40.0 <= flat +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ckpt_hierarchy storage engine                                        *)
(* ------------------------------------------------------------------ *)

let lvl ?flush ?(surv = 1.0) cap bw =
  {
    Config.bl_capacity_gb = cap;
    bl_bandwidth_gbs = bw;
    bl_flush_gbs = flush;
    bl_survival = surv;
  }

let mk_hier ?(pfs_bw = 10.0) levels =
  let engine = Engine.create () in
  let metrics = Metrics.create ~seg_start:0.0 ~seg_end:1e9 in
  let pfs = Io.create ~engine ~metrics ~bandwidth_gbs:pfs_bw ~sharing:`Linear in
  (engine, Ckpt_hierarchy.create ~engine ~metrics ~pfs levels)

let write_exn h ~owner ~job ~volume_gb ~content ~at ~on_complete =
  match Ckpt_hierarchy.write h ~owner ~job ~nodes:4 ~volume_gb ~content ~at ~on_complete with
  | Some pf -> pf
  | None -> Alcotest.fail "write should have been absorbed"

let test_hier_absorb_and_flush_through () =
  let engine, h = mk_hier ~pfs_bw:10.0 [ lvl 100.0 100.0 ] in
  let t = ref nan in
  ignore
    (write_exn h ~owner:7 ~job:0 ~volume_gb:50.0 ~content:12.0 ~at:0.0
       ~on_complete:(fun () -> t := Engine.now engine));
  Engine.run engine;
  checkf "commit at absorb speed" ~eps:1e-6 0.5 !t;
  checki "absorbed" 1 (Ckpt_hierarchy.writes_absorbed h);
  checki "no spill" 0 (Ckpt_hierarchy.writes_spilled h);
  checkf "capacity released once flushed" 0.0 (Ckpt_hierarchy.used_gb h ~level:0);
  checki "no drain left" 0 (Ckpt_hierarchy.drains_pending h);
  checkb "the PFS holds the flushed copy" true (Ckpt_hierarchy.has_any_copy h ~owner:7);
  Alcotest.(check (option int))
    "recovery goes through the PFS path" None
    (Ckpt_hierarchy.recovery_source h ~owner:7);
  checkf "flushed content survives for the instance" 12.0
    (Ckpt_hierarchy.surviving_content h ~owner:7 ~inst:0)

let test_hier_oversized_write_spills () =
  let engine, h = mk_hier [ lvl 10.0 100.0 ] in
  (match
     Ckpt_hierarchy.write h ~owner:1 ~job:0 ~nodes:4 ~volume_gb:20.0 ~content:1.0 ~at:0.0
       ~on_complete:ignore
   with
  | None -> ()
  | Some _ -> Alcotest.fail "an oversized write must spill");
  checki "spill counted internally" 1 (Ckpt_hierarchy.writes_spilled h);
  checki "nothing absorbed" 0 (Ckpt_hierarchy.writes_absorbed h);
  checkf "nothing reserved" 0.0 (Ckpt_hierarchy.used_gb h ~level:0);
  checkb "fits refuses too" false (Ckpt_hierarchy.fits h ~volume_gb:20.0);
  Engine.run engine;
  checkb "no copy appears" false (Ckpt_hierarchy.has_any_copy h ~owner:1)

let test_hier_abort_write_releases () =
  let engine, h = mk_hier [ lvl 100.0 100.0 ] in
  let completed = ref false in
  let pool, flow =
    write_exn h ~owner:2 ~job:0 ~volume_gb:50.0 ~content:1.0 ~at:0.0
      ~on_complete:(fun () -> completed := true)
  in
  checkf "reserved at write start" 50.0 (Ckpt_hierarchy.used_gb h ~level:0);
  Ckpt_hierarchy.abort_write h ~pool flow;
  checkf "released on abort" 0.0 (Ckpt_hierarchy.used_gb h ~level:0);
  Engine.run engine;
  checkb "aborted write never completes" false !completed;
  checkb "nothing becomes resident" false (Ckpt_hierarchy.has_any_copy h ~owner:2)

let test_hier_recovery_source_vs_pfs_note () =
  (* A near-stalled PFS keeps the copy resident; PFS notes only preempt it
     when they are strictly newer. *)
  let engine, h = mk_hier ~pfs_bw:0.001 [ lvl 100.0 100.0 ] in
  ignore (write_exn h ~owner:3 ~job:1 ~volume_gb:40.0 ~content:8.0 ~at:10.0 ~on_complete:ignore);
  Engine.run ~until:1.0 engine;
  Alcotest.(check (option int))
    "resident copy recovers at level 0" (Some 0)
    (Ckpt_hierarchy.recovery_source h ~owner:3);
  checkf "reserved while draining" 40.0 (Ckpt_hierarchy.used_gb h ~level:0);
  checki "one drain under way" 1 (Ckpt_hierarchy.drains_pending h);
  Ckpt_hierarchy.note_pfs_commit h ~owner:3 ~inst:1 ~content:5.0 ~at:4.0;
  Alcotest.(check (option int))
    "an older PFS copy does not preempt" (Some 0)
    (Ckpt_hierarchy.recovery_source h ~owner:3);
  Ckpt_hierarchy.note_pfs_commit h ~owner:3 ~inst:1 ~content:9.0 ~at:20.0;
  Alcotest.(check (option int))
    "a newer PFS copy wins" None
    (Ckpt_hierarchy.recovery_source h ~owner:3);
  checkf "surviving content is the best of both" 9.0
    (Ckpt_hierarchy.surviving_content h ~owner:3 ~inst:1)

let test_hier_two_level_cascade () =
  (* Serialized flushes hop tier by tier: L0 -> L1 inside L1's pool, then
     L1 -> PFS; capacity moves with the copy. *)
  let engine, h = mk_hier ~pfs_bw:0.5 [ lvl 30.0 100.0; lvl 100.0 20.0 ] in
  ignore (write_exn h ~owner:1 ~job:0 ~volume_gb:25.0 ~content:5.0 ~at:0.0 ~on_complete:ignore);
  (* commit at 0.25 s; L0->L1 drain (25 GB at 20 GB/s) done at 1.5 s; the
     50 s drain to the PFS is still running at t = 3 *)
  Engine.run ~until:3.0 engine;
  checkf "L0 released" 0.0 (Ckpt_hierarchy.used_gb h ~level:0);
  checkf "L1 holds the copy" 25.0 (Ckpt_hierarchy.used_gb h ~level:1);
  Alcotest.(check (option int))
    "recovery from the deeper tier" (Some 1)
    (Ckpt_hierarchy.recovery_source h ~owner:1);
  checki "one drain pending" 1 (Ckpt_hierarchy.drains_pending h);
  Engine.run engine;
  checkf "L1 released" 0.0 (Ckpt_hierarchy.used_gb h ~level:1);
  checki "all drains done" 0 (Ckpt_hierarchy.drains_pending h);
  checkb "the PFS holds it now" true (Ckpt_hierarchy.has_any_copy h ~owner:1);
  Alcotest.(check (option int))
    "PFS recovery path" None
    (Ckpt_hierarchy.recovery_source h ~owner:1)

let test_hier_dedicated_edge_concurrent_flushes () =
  let engine, h = mk_hier ~pfs_bw:0.001 [ lvl ~flush:5.0 100.0 100.0 ] in
  ignore (write_exn h ~owner:1 ~job:0 ~volume_gb:30.0 ~content:1.0 ~at:0.0 ~on_complete:ignore);
  ignore (write_exn h ~owner:2 ~job:1 ~volume_gb:30.0 ~content:1.0 ~at:0.0 ~on_complete:ignore);
  (* both commit at 0.6 s (shared absorb) and flush concurrently on the
     dedicated edge instead of serializing *)
  Engine.run ~until:1.0 engine;
  checki "two concurrent flushes" 2 (Ckpt_hierarchy.drains_pending h);
  Engine.run engine;
  checki "edge drains both" 0 (Ckpt_hierarchy.drains_pending h);
  checkf "capacity all released" 0.0 (Ckpt_hierarchy.used_gb h ~level:0);
  checkb "owner 1 reached the PFS" true (Ckpt_hierarchy.has_any_copy h ~owner:1);
  checkb "owner 2 reached the PFS" true (Ckpt_hierarchy.has_any_copy h ~owner:2)

let test_hier_failure_survival_threshold () =
  let run u =
    let engine, h = mk_hier ~pfs_bw:0.001 [ lvl ~surv:0.4 100.0 100.0 ] in
    ignore
      (write_exn h ~owner:9 ~job:2 ~volume_gb:50.0 ~content:3.0 ~at:0.0 ~on_complete:ignore);
    Engine.run ~until:1.0 engine;
    Ckpt_hierarchy.apply_failure h ~owner:9 ~u;
    ( Ckpt_hierarchy.recovery_source h ~owner:9,
      Ckpt_hierarchy.used_gb h ~level:0,
      Ckpt_hierarchy.has_any_copy h ~owner:9 )
  in
  (match run 0.6 with
  | None, used, false -> checkf "destroyed copy frees its reservation" 0.0 used
  | _ -> Alcotest.fail "u >= survival must destroy the buffered copy");
  match run 0.2 with
  | Some 0, used, true -> checkf "survivor stays resident" 50.0 used
  | _ -> Alcotest.fail "u < survival must leave the copy intact"

(* Capacity safety under arbitrary interleavings of writes, aborts and
   failures: 0 <= used <= capacity at every step, and a quiesced hierarchy
   always drains back to empty. *)
let test_hier_capacity_invariant =
  QCheck.Test.make ~name:"hierarchy_capacity_invariant" ~count:60
    QCheck.(pair small_int (pair (int_range 5 40) bool))
    (fun (seed, (nops, dedicated)) ->
      let rng = Rng.create ~seed in
      let u lo hi = lo +. (Rng.unit_float rng *. (hi -. lo)) in
      let flush = if dedicated then Some (u 1.0 10.0) else None in
      let engine, h =
        mk_hier ~pfs_bw:(u 0.5 5.0)
          [ lvl ~surv:0.5 60.0 (u 20.0 80.0); lvl ?flush ~surv:0.9 120.0 (u 10.0 40.0) ]
      in
      let ok = ref true in
      let live = ref [] in
      let t = ref 0.0 in
      let check_inv () =
        for k = 0 to 1 do
          let used = Ckpt_hierarchy.used_gb h ~level:k in
          if used < -1e-9 || used > Ckpt_hierarchy.capacity_gb h ~level:k +. 1e-9 then
            ok := false
        done
      in
      for i = 1 to nops do
        t := !t +. u 0.1 10.0;
        Engine.run ~until:!t engine;
        (match Rng.int rng 4 with
        | 0 | 1 -> (
            match
              Ckpt_hierarchy.write h ~owner:(Rng.int rng 4) ~job:i ~nodes:2
                ~volume_gb:(u 1.0 70.0) ~content:(float_of_int i) ~at:!t
                ~on_complete:ignore
            with
            | None -> ()
            | Some pf -> live := pf :: !live)
        | 2 -> (
            match !live with
            | (pool, flow) :: rest ->
                Ckpt_hierarchy.abort_write h ~pool flow;
                live := rest
            | [] -> ())
        | _ -> Ckpt_hierarchy.apply_failure h ~owner:(Rng.int rng 4) ~u:(Rng.unit_float rng));
        check_inv ()
      done;
      Engine.run engine;
      check_inv ();
      !ok
      && Float.abs (Ckpt_hierarchy.used_gb h ~level:0) < 1e-9
      && Float.abs (Ckpt_hierarchy.used_gb h ~level:1) < 1e-9)

(* ------------------------------------------------------------------ *)
(* End-to-end: burst-buffer differential oracle                         *)
(* ------------------------------------------------------------------ *)

let tiny_platform ?(bandwidth = 1.0) ?(mtbf_years = 0.05) () =
  Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:bandwidth
    ~node_mtbf_s:(Units.years mtbf_years)

let tiny_class =
  App_class.make ~name:"toy" ~workload_pct:100.0 ~walltime_s:(Units.hours 2.0) ~nodes:16
    ~input_pct:10.0 ~output_pct:10.0 ~ckpt_pct:50.0 ()

let check_same_run ctx (a : Simulator.result) (b : Simulator.result) =
  let ci what x y = checki (ctx ^ ": " ^ what) x y in
  ci "events" a.Simulator.events b.Simulator.events;
  ci "ckpts committed" a.ckpts_committed b.Simulator.ckpts_committed;
  ci "ckpts aborted" a.ckpts_aborted b.Simulator.ckpts_aborted;
  ci "restarts" a.restarts b.Simulator.restarts;
  ci "absorbed" a.bb_absorbed b.Simulator.bb_absorbed;
  ci "spilled" a.bb_spilled b.Simulator.bb_spilled;
  ci "jobs completed" a.jobs_completed b.Simulator.jobs_completed;
  ci "failures hitting jobs" a.failures_hitting_jobs b.Simulator.failures_hitting_jobs;
  let cf what x y =
    checkb
      (Printf.sprintf "%s: %s (%.17g vs %.17g)" ctx what x y)
      true
      (Numerics.fequal ~eps:1e-9 x y)
  in
  cf "progress" a.progress_ns b.Simulator.progress_ns;
  cf "waste" a.waste_ns b.Simulator.waste_ns;
  cf "enrolled" a.enrolled_ns b.Simulator.enrolled_ns;
  List.iter2
    (fun (k1, v1) (k2, v2) ->
      if k1 <> k2 then Alcotest.failf "%s: waste kind order differs" ctx;
      cf (Metrics.kind_name k1) v1 v2)
    a.by_kind b.Simulator.by_kind

(* A single buffer level with serialized flushes IS the legacy burst
   buffer: both configs must produce the same event stream and metrics
   (the PR's acceptance oracle). *)
let test_single_buffer_matches_burst_buffer () =
  let capacity = 30.0 and bw = 10.0 in
  let bb_equiv =
    {
      Config.levels =
        [
          Config.Buffer
            {
              Config.bl_capacity_gb = capacity;
              bl_bandwidth_gbs = bw;
              bl_flush_gbs = None;
              bl_survival = 1.0;
            };
        ];
    }
  in
  List.iter
    (fun (name, strategy, seed) ->
      let mk ?burst_buffer ?multilevel () =
        Config.make ~platform:(tiny_platform ()) ~classes:[ tiny_class ] ~strategy ~seed
          ~days:1.0 ~with_failures:true ?burst_buffer ?multilevel ()
      in
      let a =
        Simulator.run
          (mk ~burst_buffer:{ Burst_buffer.capacity_gb = capacity; bandwidth_gbs = bw } ())
      in
      let b = Simulator.run (mk ~multilevel:bb_equiv ()) in
      checkb (name ^ ": buffer actually used") true (a.Simulator.bb_absorbed > 0);
      check_same_run name a b)
    [
      ("oblivious/1", Strategy.Oblivious (Strategy.Fixed 600.0), 1);
      ("oblivious/2", Strategy.Oblivious (Strategy.Fixed 600.0), 2);
      ("ordered_nb/3", Strategy.Ordered_nb (Strategy.Fixed 600.0), 3);
      ("least_waste/4", Strategy.Least_waste, 4);
    ]

(* ------------------------------------------------------------------ *)
(* End-to-end: flush bandwidth sweep                                    *)
(* ------------------------------------------------------------------ *)

let test_flush_bandwidth_relieves_pressure () =
  (* A scarce PFS and a small buffer: a starved flush edge clogs the
     buffer (spills), a fast one keeps it absorbing, and waste falls. *)
  let platform = tiny_platform ~bandwidth:0.5 () in
  let run flush =
    let multilevel =
      {
        Config.levels =
          [
            Config.Buffer
              {
                Config.bl_capacity_gb = 20.0;
                bl_bandwidth_gbs = 8.0;
                bl_flush_gbs = Some flush;
                bl_survival = 1.0;
              };
          ];
      }
    in
    Simulator.run
      (Config.make ~platform ~classes:[ tiny_class ]
         ~strategy:(Strategy.Oblivious (Strategy.Fixed 600.0))
         ~seed:2 ~days:1.0 ~with_failures:true ~multilevel ())
  in
  let slow = run 0.02 and fast = run 8.0 in
  checkb "a starved flush edge spills" true (slow.Simulator.bb_spilled > 0);
  checkb "a fast flush edge spills less" true
    (fast.Simulator.bb_spilled < slow.Simulator.bb_spilled);
  checkb "a fast flush edge absorbs more" true
    (fast.Simulator.bb_absorbed > slow.Simulator.bb_absorbed);
  checkb
    (Printf.sprintf "waste does not grow with flush bandwidth (%.4g vs %.4g)"
       fast.Simulator.waste_ns slow.Simulator.waste_ns)
    true
    (fast.Simulator.waste_ns <= slow.Simulator.waste_ns *. 1.02)

let () =
  Alcotest.run "cocheck.hierarchy"
    [
      ( "multilevel-model",
        [
          QCheck_alcotest.to_alcotest test_l2_bitmatches_two_level;
          QCheck_alcotest.to_alcotest test_optimum_beats_perturbed;
          Alcotest.test_case "validation" `Quick test_multilevel_validate;
        ] );
      ( "least-waste-levels",
        [
          QCheck_alcotest.to_alcotest test_levels_single_pool_bitwise;
          Alcotest.test_case "cross-level sums" `Quick test_levels_sum_across_pools;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "reduces to Theorem 1" `Quick test_hier_bound_reduces_to_flat;
          Alcotest.test_case "monotone in the edge" `Quick test_hier_bound_monotone_in_edge;
        ] );
      ( "storage-engine",
        [
          Alcotest.test_case "absorb and flush through" `Quick test_hier_absorb_and_flush_through;
          Alcotest.test_case "oversized write spills" `Quick test_hier_oversized_write_spills;
          Alcotest.test_case "abort releases" `Quick test_hier_abort_write_releases;
          Alcotest.test_case "recovery source vs PFS note" `Quick
            test_hier_recovery_source_vs_pfs_note;
          Alcotest.test_case "two-level cascade" `Quick test_hier_two_level_cascade;
          Alcotest.test_case "dedicated edge concurrency" `Quick
            test_hier_dedicated_edge_concurrent_flushes;
          Alcotest.test_case "failure survival threshold" `Quick
            test_hier_failure_survival_threshold;
          QCheck_alcotest.to_alcotest test_hier_capacity_invariant;
        ] );
      ( "differential",
        [
          Alcotest.test_case "single buffer = burst buffer" `Quick
            test_single_buffer_matches_burst_buffer;
        ] );
      ( "flush-sweep",
        [
          Alcotest.test_case "bandwidth relieves pressure" `Quick
            test_flush_bandwidth_relieves_pressure;
        ] );
    ]
