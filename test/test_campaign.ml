(* Tests for the declarative campaign engine: exact spec JSON round-trips,
   digest stability of the results-store keys, cache-aware resumable
   execution, and bit-identity with the pre-engine Monte Carlo loop. *)

module Pool = Cocheck_parallel.Pool
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Failure_trace = Cocheck_sim.Failure_trace
module Burst_buffer = Cocheck_sim.Burst_buffer
module Units = Cocheck_util.Units
module Json = Cocheck_obs.Json
module E = Cocheck_experiments

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

let tiny_platform ?(bandwidth = 1.0) ?(mtbf_years = 0.1) () =
  Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:bandwidth
    ~node_mtbf_s:(Units.years mtbf_years)

let tiny_class =
  App_class.make ~name:"toy" ~workload_pct:100.0 ~walltime_s:(Units.hours 2.0) ~nodes:16
    ~input_pct:10.0 ~output_pct:10.0 ~ckpt_pct:50.0 ()

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_store f =
  let dir = Filename.temp_file "cocheck-test-store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Spec JSON round-trip (property)                                      *)
(* ------------------------------------------------------------------ *)

(* Fixed periods draw arbitrary floats on purpose: the structural strategy
   encoding must round-trip them exactly even where the display name's %g
   would collapse them. *)
let spec_gen =
  QCheck.Gen.(
    let rule =
      oneof
        [
          return Strategy.Daly;
          return Strategy.Optimal;
          map (fun p -> Strategy.Fixed p) (float_range 30.0 100_000.0);
        ]
    in
    let strategy =
      oneof
        [
          map (fun r -> Strategy.Oblivious r) rule;
          map (fun r -> Strategy.Ordered r) rule;
          map (fun r -> Strategy.Ordered_nb r) rule;
          return Strategy.Least_waste;
          return Strategy.Greedy_exposure;
        ]
    in
    let platform =
      map
        (fun ((nodes, mem), (bw, mtbf)) ->
          Platform.make ~name:"qc" ~nodes ~mem_per_node_gb:mem ~bandwidth_gbs:bw
            ~node_mtbf_s:mtbf)
        (pair (pair (int_range 16 4096) (float_range 0.5 16.0))
           (pair (float_range 0.5 500.0) (float_range 1e4 1e9)))
    in
    let app_class =
      map
        (fun ((wall, nodes), (io, ckpt)) ->
          App_class.make ~name:"qc-class" ~workload_pct:100.0 ~walltime_s:wall ~nodes
            ~input_pct:io ~output_pct:io ~ckpt_pct:ckpt ())
        (pair (pair (float_range 600.0 1e5) (int_range 1 64))
           (pair (float_range 0.0 30.0) (float_range 1.0 80.0)))
    in
    let axis =
      oneof
        [
          return E.Spec.No_sweep;
          map (fun vs -> E.Spec.Mtbf_years vs)
            (list_size (int_range 1 4) (float_range 0.05 50.0));
          map (fun vs -> E.Spec.Bandwidth_gbs vs)
            (list_size (int_range 1 4) (float_range 0.5 500.0));
        ]
    in
    let failure_dist =
      oneof
        [
          return None;
          return (Some Failure_trace.Exponential);
          map (fun shape -> Some (Failure_trace.Weibull { shape })) (float_range 0.4 3.0);
          map (fun sigma -> Some (Failure_trace.Lognormal { sigma })) (float_range 0.0 2.0);
        ]
    in
    let burst_buffer =
      opt
        (map
           (fun (capacity_gb, bandwidth_gbs) -> { Burst_buffer.capacity_gb; bandwidth_gbs })
           (pair (float_range 10.0 1e6) (float_range 10.0 5000.0)))
    in
    let snapshot_level =
      map
        (fun ((sl_period_s, sl_cost_s), (sl_recovery_s, sl_survival)) ->
          Config.Snapshot { Config.sl_period_s; sl_cost_s; sl_recovery_s; sl_survival })
        (pair (pair (float_range 60.0 3600.0) (float_range 1.0 60.0))
           (pair (float_range 1.0 120.0) (float_range 0.0 1.0)))
    in
    let buffer_level =
      map
        (fun ((bl_capacity_gb, bl_bandwidth_gbs), (bl_flush_gbs, bl_survival)) ->
          Config.Buffer
            { Config.bl_capacity_gb; bl_bandwidth_gbs; bl_flush_gbs; bl_survival })
        (pair (pair (float_range 10.0 1e6) (float_range 10.0 5000.0))
           (pair (opt (float_range 1.0 100.0)) (float_range 0.0 1.0)))
    in
    (* Snapshot tiers before buffer tiers, as Config.validate requires; the
       singleton-snapshot case exercises the legacy JSON encoding. *)
    let multilevel =
      opt
        (map
           (fun (snaps, bufs) -> { Config.levels = snaps @ bufs })
           (pair
              (list_size (int_range 0 2) snapshot_level)
              (list_size (int_range 0 2) buffer_level)))
    in
    map
      (fun (((platform, classes), (strategies, axis)),
            (((reps, seed), days), ((failure_dist, alpha), (burst_buffer, multilevel)))) ->
        {
          E.Spec.name = "qc-campaign";
          platform;
          classes;
          strategies;
          axis;
          reps;
          seed;
          days;
          failure_dist;
          interference_alpha = alpha;
          burst_buffer;
          multilevel;
        })
      (pair
         (pair
            (pair platform (opt (list_size (int_range 1 2) app_class)))
            (pair (list_size (int_range 1 3) strategy) axis))
         (pair
            (pair (pair (int_range 1 500) (int_range 0 1_000_000)) (float_range 0.1 100.0))
            (pair
               (pair failure_dist (opt (float_range 0.0 2.0)))
               (pair burst_buffer multilevel)))))

let arb_spec =
  QCheck.make ~print:(fun s -> Json.to_string_pretty (E.Spec.to_json s)) spec_gen

let test_spec_roundtrip_prop =
  QCheck.Test.make ~name:"of_json (to_json s) = Ok s" ~count:200 arb_spec (fun s ->
      E.Spec.of_json (E.Spec.to_json s) = Ok s)

let test_spec_file_roundtrip_prop =
  (* Through the actual printer and parser, not just the JSON tree. *)
  QCheck.Test.make ~name:"load (save s) = Ok s" ~count:50 arb_spec (fun s ->
      let path = Filename.temp_file "cocheck-test-spec" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          E.Spec.save ~path s;
          E.Spec.load ~path = Ok s))

let test_spec_name_strings_accepted () =
  (* Hand-written specs may give strategies by paper name. *)
  let spec =
    E.Spec.make ~platform:(tiny_platform ())
      ~strategies:[ Strategy.Least_waste; Strategy.Ordered_nb Strategy.Daly ]
      ~reps:1 ()
  in
  let rewrite = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "strategies", _ ->
                   ( "strategies",
                     Json.List
                       [ Json.String "least-waste"; Json.String "ordered-nb-daly" ] )
               | f -> f)
             fields)
    | j -> j
  in
  match E.Spec.of_json (rewrite (E.Spec.to_json spec)) with
  | Ok s -> Alcotest.(check bool) "same spec" true (s = spec)
  | Error e -> Alcotest.fail e

let test_spec_validate () =
  let make ?(strategies = [ Strategy.Least_waste ]) ?axis ?(reps = 1) ?(days = 1.0) () =
    E.Spec.make ~platform:(tiny_platform ()) ~strategies ?axis ~reps ~days ()
  in
  let rejects msg f = Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ())) in
  rejects "Spec: empty strategy set" (fun () -> make ~strategies:[] ());
  rejects "Spec: reps must be positive" (fun () -> make ~reps:0 ());
  rejects "Spec: days must be positive" (fun () -> make ~days:0.0 ());
  rejects "Spec: empty MTBF axis" (fun () -> make ~axis:(E.Spec.Mtbf_years []) ());
  rejects "Spec: bandwidth values must be positive" (fun () ->
      make ~axis:(E.Spec.Bandwidth_gbs [ 40.0; -1.0 ]) ())

(* ------------------------------------------------------------------ *)
(* Digests                                                              *)
(* ------------------------------------------------------------------ *)

let digest_spec ?(name = "digest") ?(reps = 3) ?(seed = 5) ?(days = 1.0)
    ?(platform = tiny_platform ()) () =
  E.Spec.make ~name ~platform ~classes:[ tiny_class ]
    ~strategies:[ Strategy.Least_waste; Strategy.Ordered Strategy.Daly ]
    ~reps ~seed ~days ()

let key_of spec ?(strategy = Strategy.Least_waste) ?(rep = 1) () =
  E.Spec.cell_key spec ~cell:(List.hd (E.Spec.cells spec)) ~strategy ~rep

let test_digest_deterministic () =
  Alcotest.(check string) "same spec, same digest"
    (E.Spec.digest (digest_spec ()))
    (E.Spec.digest (digest_spec ()));
  Alcotest.(check string) "same point, same key"
    (key_of (digest_spec ()) ())
    (key_of (digest_spec ()) ())

let test_key_changes_with_result_fields () =
  let base = key_of (digest_spec ()) () in
  let differs what key = Alcotest.(check bool) what true (key <> base) in
  differs "seed" (key_of (digest_spec ~seed:6 ()) ());
  differs "days" (key_of (digest_spec ~days:2.0 ()) ());
  differs "platform"
    (key_of (digest_spec ~platform:(tiny_platform ~bandwidth:2.0 ()) ()) ());
  differs "strategy" (key_of (digest_spec ()) ~strategy:(Strategy.Ordered Strategy.Daly) ());
  differs "rep" (key_of (digest_spec ()) ~rep:2 ())

let test_key_survives_neutral_edits () =
  let base_spec = digest_spec () in
  let base = key_of base_spec () in
  (* Renaming the campaign or growing the replication count must keep
     existing records valid — that is what makes the store resumable and
     shareable — while the whole-spec digest does change. *)
  let renamed = digest_spec ~name:"renamed" () in
  let grown = digest_spec ~reps:10 () in
  Alcotest.(check string) "rename keeps keys" base (key_of renamed ());
  Alcotest.(check string) "more reps keeps keys" base (key_of grown ());
  Alcotest.(check bool) "rename changes spec digest" true
    (E.Spec.digest renamed <> E.Spec.digest base_spec);
  Alcotest.(check bool) "more reps changes spec digest" true
    (E.Spec.digest grown <> E.Spec.digest base_spec)

(* ------------------------------------------------------------------ *)
(* Level-list knobs: legacy decode, encoding shape, digest sensitivity  *)
(* ------------------------------------------------------------------ *)

module Manifest = Cocheck_obs.Manifest

let buffer_level ?flush ?(survival = 1.0) ?(cap = 100.0) ?(bw = 10.0) () =
  Config.Buffer
    {
      Config.bl_capacity_gb = cap;
      bl_bandwidth_gbs = bw;
      bl_flush_gbs = flush;
      bl_survival = survival;
    }

let ml_digest_spec ?name ?multilevel () =
  E.Spec.make ?name ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
    ~strategies:[ Strategy.Least_waste ] ~reps:3 ~seed:5 ~days:1.0 ?multilevel ()

let test_legacy_multilevel_json_decodes () =
  (* A hand-written two-level spec in the pre-hierarchy format must keep
     decoding — to the singleton-snapshot level list. *)
  let legacy =
    "{\"local_period_s\":600.0,\"local_cost_s\":5.0,\"local_recovery_s\":30.0,\
     \"soft_fraction\":0.6}"
  in
  match Json.of_string legacy with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Manifest.multilevel_of_json j with
      | Error e -> Alcotest.fail e
      | Ok m ->
          Alcotest.(check bool) "decodes to the singleton snapshot level" true
            (m
            = Config.local_level ~period_s:600.0 ~cost_s:5.0 ~recovery_s:30.0
                ~soft_fraction:0.6))

let test_singleton_snapshot_encodes_legacy_shape () =
  (* The singleton-snapshot list serializes in the legacy four-field shape
     (same members, no "levels" wrapper), so pre-hierarchy cell keys stay
     valid byte-for-byte; anything else gets the "levels" wrapper. *)
  let legacy =
    Manifest.multilevel_to_json
      (Config.local_level ~period_s:600.0 ~cost_s:5.0 ~recovery_s:30.0
         ~soft_fraction:0.6)
  in
  Alcotest.(check bool) "no levels wrapper" true (Json.member "levels" legacy = None);
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Json.member k legacy <> None))
    [ "local_period_s"; "local_cost_s"; "local_recovery_s"; "soft_fraction" ];
  let hier =
    Manifest.multilevel_to_json { Config.levels = [ buffer_level ~flush:5.0 () ] }
  in
  Alcotest.(check bool) "buffer levels get the wrapper" true
    (Json.member "levels" hier <> None);
  (* And both shapes round-trip exactly. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "round-trip" true
        (Manifest.multilevel_of_json (Manifest.multilevel_to_json m) = Ok m))
    [
      Config.local_level ~period_s:600.0 ~cost_s:5.0 ~recovery_s:30.0 ~soft_fraction:0.6;
      { Config.levels = [ buffer_level ~flush:5.0 () ] };
      {
        Config.levels =
          [
            Config.Snapshot
              {
                Config.sl_period_s = 120.0;
                sl_cost_s = 1.0;
                sl_recovery_s = 5.0;
                sl_survival = 0.5;
              };
            buffer_level ();
          ];
      };
    ]

let test_level_knobs_change_key () =
  let key multilevel = key_of (ml_digest_spec ~multilevel ()) () in
  let base = key { Config.levels = [ buffer_level () ] } in
  let differs what k = Alcotest.(check bool) what true (k <> base) in
  differs "flush bandwidth" (key { Config.levels = [ buffer_level ~flush:5.0 () ] });
  differs "survival" (key { Config.levels = [ buffer_level ~survival:0.5 () ] });
  differs "capacity" (key { Config.levels = [ buffer_level ~cap:200.0 () ] });
  differs "added snapshot tier"
    (key
       {
         Config.levels =
           [
             Config.Snapshot
               {
                 Config.sl_period_s = 120.0;
                 sl_cost_s = 1.0;
                 sl_recovery_s = 5.0;
                 sl_survival = 0.5;
               };
             buffer_level ();
           ];
       });
  (* Renaming the campaign is still a neutral edit with level knobs set. *)
  Alcotest.(check string) "rename keeps keys" base
    (key_of
       (ml_digest_spec ~name:"renamed"
          ~multilevel:{ Config.levels = [ buffer_level () ] } ())
       ())

let test_flush_axis () =
  (match
     E.Spec.make ~platform:(tiny_platform ()) ~strategies:[ Strategy.Least_waste ]
       ~axis:(E.Spec.Flush_gbs [ 5.0 ]) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flush axis without a buffer level accepted");
  let spec =
    E.Spec.make ~name:"flush-axis" ~platform:(tiny_platform ())
      ~classes:[ tiny_class ] ~strategies:[ Strategy.Least_waste ]
      ~axis:(E.Spec.Flush_gbs [ 2.0; 8.0 ])
      ~multilevel:{ Config.levels = [ buffer_level () ] }
      ~reps:1 ~days:0.5 ()
  in
  Alcotest.(check int) "one cell per flush value" 2 (List.length (E.Spec.cells spec));
  Alcotest.(check string) "axis label" "Flush Bandwidth (GB/s)" (E.Spec.axis_label spec);
  Alcotest.(check bool) "axis round-trips" true
    (E.Spec.of_json (E.Spec.to_json spec) = Ok spec);
  let cfg =
    E.Spec.config spec ~cell:(List.hd (E.Spec.cells spec))
      ~strategy:Strategy.Least_waste ~rep:0
  in
  match cfg.Config.multilevel with
  | Some { Config.levels = [ Config.Buffer b ] } ->
      Alcotest.(check (option (float 0.0))) "cell overrides the flush bandwidth"
        (Some 2.0) b.Config.bl_flush_gbs
  | _ -> Alcotest.fail "expected one buffer level in the cell config"

(* ------------------------------------------------------------------ *)
(* Runner: cache, resume, status                                        *)
(* ------------------------------------------------------------------ *)

let cache_spec () =
  E.Spec.make ~name:"cache" ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
    ~strategies:[ Strategy.Least_waste; Strategy.Ordered_nb Strategy.Daly ]
    ~axis:(E.Spec.Bandwidth_gbs [ 1.0; 2.0 ]) ~reps:2 ~seed:3 ~days:0.5 ()

let ratios o = List.map (fun (r : E.Runner.cell_result) -> r.E.Runner.ratios) o.E.Runner.results

let check_same_ratios msg a b =
  List.iter2 (fun ra rb -> Array.iteri (fun i r -> checkf msg ~eps:0.0 r rb.(i)) ra)
    (ratios a) (ratios b)

let test_cold_then_warm () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      with_temp_store (fun dir ->
          let spec = cache_spec () in
          let in_memory = E.Runner.run ~pool spec in
          let store = E.Store.open_ dir in
          let cold = E.Runner.run ~pool ~store spec in
          Alcotest.(check int) "cold simulates everything" 8 cold.E.Runner.simulated;
          Alcotest.(check int) "cold loads nothing" 0 cold.E.Runner.loaded;
          Alcotest.(check int) "one baseline per (cell, rep)" 4 cold.E.Runner.baselines;
          Alcotest.(check int) "8 records on disk" 8 (E.Store.record_count store);
          let warm = E.Runner.run ~pool ~store spec in
          Alcotest.(check int) "warm simulates nothing" 0 warm.E.Runner.simulated;
          Alcotest.(check int) "warm runs no baselines" 0 warm.E.Runner.baselines;
          Alcotest.(check int) "warm loads everything" 8 warm.E.Runner.loaded;
          check_same_ratios "store-independent ratios" in_memory cold;
          check_same_ratios "cache round-trips ratios bit-for-bit" cold warm;
          (* The whole figure — candlesticks included — must be
             bit-identical whether the points were simulated or loaded. *)
          Alcotest.(check bool) "warm figure = cold figure, bit for bit" true
            (E.Runner.to_figure warm = E.Runner.to_figure cold)))

let test_interrupted_resume () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      with_temp_store (fun dir ->
          let spec = cache_spec () in
          let cold = E.Runner.run ~pool ~store:(E.Store.open_ dir) spec in
          (* Deleting one record is equivalent to a campaign killed before
             writing it; rename-based writes mean no other partial state.
             The fresh open below models the separate process that resumes
             the campaign — the killed run's in-memory index died with it. *)
          let store = E.Store.open_ dir in
          let victim = ref "" in
          E.Store.iter_keys store (fun k -> victim := k);
          Sys.remove (E.Store.path_of_key store !victim);
          let p = E.Runner.status ~store spec in
          Alcotest.(check int) "one missing" 1 p.E.Runner.missing;
          Alcotest.(check int) "seven cached" 7 p.E.Runner.cached;
          let resumed = E.Runner.run ~pool ~store spec in
          Alcotest.(check int) "resume simulates the hole only" 1
            resumed.E.Runner.simulated;
          Alcotest.(check int) "resume reruns one baseline" 1 resumed.E.Runner.baselines;
          Alcotest.(check int) "resume loads the rest" 7 resumed.E.Runner.loaded;
          check_same_ratios "resumed campaign identical" cold resumed;
          let healed = E.Runner.status ~store spec in
          Alcotest.(check int) "store healed" 0 healed.E.Runner.missing))

let test_status_counts () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      with_temp_store (fun dir ->
          let spec = cache_spec () in
          let p = E.Runner.status spec in
          Alcotest.(check int) "no store: total" 8 p.E.Runner.total;
          Alcotest.(check int) "no store: all missing" 8 p.E.Runner.missing;
          let store = E.Store.open_ dir in
          let p = E.Runner.status ~store spec in
          Alcotest.(check int) "empty store: all missing" 8 p.E.Runner.missing;
          ignore (E.Runner.run ~pool ~store spec);
          let p = E.Runner.status ~store spec in
          Alcotest.(check int) "full store: all cached" 8 p.E.Runner.cached;
          Alcotest.(check int) "full store: none missing" 0 p.E.Runner.missing))

let test_corrupt_record_is_a_miss () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      with_temp_store (fun dir ->
          let spec = cache_spec () in
          let store = E.Store.open_ dir in
          let cold = E.Runner.run ~pool ~store spec in
          let victim = ref "" in
          E.Store.iter_keys store (fun k -> victim := k);
          let oc = open_out (E.Store.path_of_key store !victim) in
          output_string oc "{ truncated";
          close_out oc;
          (* A fresh open models the process that re-runs the campaign:
             its index is cold, so the corrupt record must demote to a
             miss and re-simulate. *)
          let store = E.Store.open_ dir in
          let rerun = E.Runner.run ~pool ~store spec in
          Alcotest.(check int) "corrupt record re-simulated" 1 rerun.E.Runner.simulated;
          check_same_ratios "repaired run identical" cold rerun))

(* ------------------------------------------------------------------ *)
(* Live progress stream and campaign tracing                            *)
(* ------------------------------------------------------------------ *)

let collect_progress () =
  let events = ref [] in
  ((fun ev -> events := ev :: !events), fun () -> List.rev !events)

let test_progress_stream () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      with_temp_store (fun dir ->
          let spec = cache_spec () in
          let store = E.Store.open_ dir in
          let on_progress, events = collect_progress () in
          let o = E.Runner.run ~pool ~store ~on_progress spec in
          let evs = events () in
          let seqs =
            List.filter_map
              (function E.Runner.Point { seq; _ } -> Some seq | _ -> None)
              evs
          in
          Alcotest.(check (list int)) "seq is 1..n in emission order"
            (List.init 8 (fun i -> i + 1)) seqs;
          let dones =
            List.filter_map
              (function E.Runner.Point { done_points; _ } -> Some done_points | _ -> None)
              evs
          in
          Alcotest.(check (list int)) "done_points counts up"
            (List.init 8 (fun i -> i + 1)) dones;
          List.iter
            (function
              | E.Runner.Point { total_points; source; _ } ->
                  Alcotest.(check int) "total is 8" 8 total_points;
                  Alcotest.(check bool) "cold run simulates" true (source = `Simulated)
              | E.Runner.Finished _ -> ())
            evs;
          (match List.rev evs with
          | E.Runner.Finished { simulated; loaded; total_points; baselines; _ } :: _ ->
              Alcotest.(check int) "finished: simulated" o.E.Runner.simulated simulated;
              Alcotest.(check int) "finished: loaded" 0 loaded;
              Alcotest.(check int) "finished: baselines" o.E.Runner.baselines baselines;
              Alcotest.(check int) "finished: total" 8 total_points
          | _ -> Alcotest.fail "last event must be Finished");
          (* Warm re-run: every point must stream as a cache hit. *)
          let on_progress, events = collect_progress () in
          ignore (E.Runner.run ~pool ~store ~on_progress spec);
          List.iter
            (function
              | E.Runner.Point { source; _ } ->
                  Alcotest.(check bool) "warm run streams cached" true (source = `Cached)
              | E.Runner.Finished { simulated; loaded; _ } ->
                  Alcotest.(check int) "warm finished: simulated" 0 simulated;
                  Alcotest.(check int) "warm finished: loaded" 8 loaded)
            (events ())))

let test_progress_json_roundtrip () =
  let events =
    [
      E.Runner.Point
        {
          seq = 3;
          elapsed_s = 1.25;
          cell = 2;
          x = Some 0.5;
          rep = 1;
          strategy = "Least-Waste";
          source = `Cached;
          done_points = 3;
          total_points = 28;
        };
      E.Runner.Point
        {
          seq = 4;
          elapsed_s = 2.0;
          cell = 0;
          x = None;
          rep = 0;
          strategy = "Ordered[Daly]";
          source = `Simulated;
          done_points = 4;
          total_points = 28;
        };
      E.Runner.Finished
        { elapsed_s = 9.5; simulated = 20; baselines = 4; loaded = 8; total_points = 28 };
    ]
  in
  List.iter
    (fun ev ->
      let j = E.Runner.progress_to_json ev in
      (* Through text, as `campaign status --follow` consumes it. *)
      match Json.of_string (Json.to_string j) with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok j' -> (
          match E.Runner.progress_of_json j' with
          | Some ev' -> Alcotest.(check bool) "round-trips" true (ev = ev')
          | None -> Alcotest.fail "decoder rejected its own encoding"))
    events;
  Alcotest.(check bool) "unknown event is None" true
    (E.Runner.progress_of_json (Json.Obj [ ("event", Json.String "nope") ]) = None);
  Alcotest.(check bool) "non-object is None" true
    (E.Runner.progress_of_json (Json.String "x") = None)

let test_runner_tracer_records_cells () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let spec = cache_spec () in
      let tracer = Cocheck_obs.Tracing.create () in
      ignore (E.Runner.run ~pool ~tracer spec);
      let cells, nested =
        List.fold_left
          (fun (cells, nested) ev ->
            match ev with
            | Cocheck_obs.Span.Slice { name; _ }
              when name = "generate" || name = "baseline"
                   || (String.length name > 4 && String.sub name 0 4 = "sim:") ->
                (cells, nested + 1)
            | Cocheck_obs.Span.Slice { name; cat = "campaign"; args; _ } ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s carries a source arg" name)
                  true
                  (List.mem_assoc "source" args);
                (cells + 1, nested)
            | _ -> (cells, nested))
          (0, 0)
          (Cocheck_obs.Tracing.events tracer)
      in
      (* 2 axis points x 2 reps: one task slice per (cell, rep), each
         containing generate + baseline + one sim per strategy. *)
      Alcotest.(check int) "one campaign slice per (cell, rep)" 4 cells;
      Alcotest.(check int) "phase slices nest inside" 16 nested)

(* ------------------------------------------------------------------ *)
(* Bit-identity with the pre-engine Monte Carlo loop                    *)
(* ------------------------------------------------------------------ *)

(* The exact replication protocol the campaign engine replaced: derived
   seed, shared job specs, shared baseline, waste ratio against it. Any
   drift between this and Runner breaks reproducibility of published
   numbers, so equality is exact. *)
let legacy_ratio ~platform ~classes ~strategy ~seed ~days ~rep =
  let s = E.Spec.rep_seed ~seed ~rep in
  let cfg st = Config.make ~platform ~classes ~strategy:st ~seed:s ~days () in
  let baseline_cfg = cfg Strategy.Baseline in
  let specs = Simulator.generate_specs baseline_cfg in
  let baseline = Simulator.run ~specs baseline_cfg in
  let r = Simulator.run ~specs (cfg strategy) in
  Simulator.waste_ratio ~strategy:r ~baseline

let test_matches_legacy_loop () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let base = tiny_platform () in
      let strategies = [ Strategy.Least_waste; Strategy.Ordered Strategy.Daly ] in
      let mtbf_years = [ 0.1; 0.5 ] in
      let seed = 9 and days = 0.5 and reps = 2 in
      let spec =
        E.Spec.make ~name:"legacy" ~platform:base ~classes:[ tiny_class ] ~strategies
          ~axis:(E.Spec.Mtbf_years mtbf_years) ~reps ~seed ~days ()
      in
      let o = E.Runner.run ~pool spec in
      let results = Array.of_list o.E.Runner.results in
      List.iteri
        (fun ci y ->
          let platform = Platform.with_node_mtbf base (Units.years y) in
          List.iteri
            (fun si strategy ->
              let r = results.((ci * List.length strategies) + si) in
              for rep = 0 to reps - 1 do
                checkf "campaign = legacy loop, bit for bit" ~eps:0.0
                  (legacy_ratio ~platform ~classes:[ tiny_class ] ~strategy ~seed ~days
                     ~rep)
                  r.E.Runner.ratios.(rep)
              done)
            strategies)
        mtbf_years)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.campaign"
    [
      ( "spec",
        qsuite [ test_spec_roundtrip_prop; test_spec_file_roundtrip_prop ]
        @ [
            Alcotest.test_case "name strings accepted" `Quick
              test_spec_name_strings_accepted;
            Alcotest.test_case "validation" `Quick test_spec_validate;
          ] );
      ( "digest",
        [
          Alcotest.test_case "deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "sensitive to result fields" `Quick
            test_key_changes_with_result_fields;
          Alcotest.test_case "stable under neutral edits" `Quick
            test_key_survives_neutral_edits;
          Alcotest.test_case "legacy two-level JSON decodes" `Quick
            test_legacy_multilevel_json_decodes;
          Alcotest.test_case "singleton snapshot keeps legacy shape" `Quick
            test_singleton_snapshot_encodes_legacy_shape;
          Alcotest.test_case "level knobs change keys" `Quick
            test_level_knobs_change_key;
          Alcotest.test_case "flush axis" `Quick test_flush_axis;
        ] );
      ( "runner",
        [
          Alcotest.test_case "cold then warm" `Slow test_cold_then_warm;
          Alcotest.test_case "interrupted resume" `Slow test_interrupted_resume;
          Alcotest.test_case "status counts" `Slow test_status_counts;
          Alcotest.test_case "corrupt record is a miss" `Slow
            test_corrupt_record_is_a_miss;
          Alcotest.test_case "bit-identical to legacy loop" `Slow
            test_matches_legacy_loop;
        ] );
      ( "progress",
        [
          Alcotest.test_case "stream shape and ordering" `Slow test_progress_stream;
          Alcotest.test_case "json round-trip" `Quick test_progress_json_roundtrip;
          Alcotest.test_case "tracer records cells" `Slow test_runner_tracer_records_cells;
        ] );
    ]
