(* Tests for the simulation substrates: metrics ledger, the shared-bandwidth
   I/O subsystem (the linear interference model), failure traces, the node
   pool and scenario configuration. *)

module Engine = Cocheck_des.Engine
module Metrics = Cocheck_sim.Metrics
module Io = Cocheck_sim.Io_subsystem
module Failure_trace = Cocheck_sim.Failure_trace
module Node_pool = Cocheck_sim.Node_pool
module Config = Cocheck_sim.Config
module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy
module Rng = Cocheck_util.Rng
module Units = Cocheck_util.Units

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_clipping () =
  let m = Metrics.create ~seg_start:10.0 ~seg_end:20.0 in
  Metrics.record m ~t0:0.0 ~t1:15.0 ~nodes:2 Metrics.Work;
  checkf "clipped to [10,15]" 10.0 (Metrics.total m Metrics.Work);
  Metrics.record m ~t0:18.0 ~t1:30.0 ~nodes:1 Metrics.Work;
  checkf "second clip adds [18,20]" 12.0 (Metrics.total m Metrics.Work);
  Metrics.record m ~t0:25.0 ~t1:30.0 ~nodes:5 Metrics.Work;
  checkf "outside segment ignored" 12.0 (Metrics.total m Metrics.Work)

let test_metrics_progress_vs_waste () =
  let m = Metrics.create ~seg_start:0.0 ~seg_end:100.0 in
  Metrics.record m ~t0:0.0 ~t1:10.0 ~nodes:1 Metrics.Work;
  Metrics.record m ~t0:10.0 ~t1:20.0 ~nodes:1 Metrics.Regular_io;
  Metrics.record m ~t0:20.0 ~t1:30.0 ~nodes:1 Metrics.Ckpt_io;
  Metrics.record m ~t0:30.0 ~t1:40.0 ~nodes:1 Metrics.Lost_work;
  checkf "progress" 20.0 (Metrics.progress_ns m);
  checkf "waste" 20.0 (Metrics.waste_ns m)

let test_metrics_weighted_split () =
  let m = Metrics.create ~seg_start:0.0 ~seg_end:100.0 in
  Metrics.record_weighted m ~t0:0.0 ~t1:10.0 ~nodes:4 ~fraction:0.25
    ~progress:Metrics.Regular_io ~waste:Metrics.Io_dilation;
  checkf "progress share" 10.0 (Metrics.total m Metrics.Regular_io);
  checkf "waste share" 30.0 (Metrics.total m Metrics.Io_dilation)

let test_metrics_weighted_conserves =
  QCheck.Test.make ~name:"weighted_split_conserves_node_seconds" ~count:300
    QCheck.(triple (float_range 0.0 50.0) (float_range 0.0 50.0) (float_range 0.0 1.0))
    (fun (a, b, frac) ->
      let t0 = Float.min a b and t1 = Float.max a b in
      let m = Metrics.create ~seg_start:0.0 ~seg_end:100.0 in
      Metrics.record_weighted m ~t0 ~t1 ~nodes:3 ~fraction:frac
        ~progress:Metrics.Regular_io ~waste:Metrics.Io_dilation;
      let total =
        Metrics.total m Metrics.Regular_io +. Metrics.total m Metrics.Io_dilation
      in
      Cocheck_util.Numerics.fequal ~eps:1e-9 total ((t1 -. t0) *. 3.0))

let test_metrics_reversed_interval_rejected () =
  let m = Metrics.create ~seg_start:0.0 ~seg_end:1.0 in
  Alcotest.check_raises "reversed rejected"
    (Invalid_argument "Metrics.record: reversed interval") (fun () ->
      Metrics.record m ~t0:2.0 ~t1:1.0 ~nodes:1 Metrics.Work)

let test_metrics_kind_partition () =
  (* Every kind is exactly one of progress/waste. *)
  List.iter
    (fun k ->
      Alcotest.(check bool) (Metrics.kind_name k ^ " classified") true
        (Metrics.is_progress k || not (Metrics.is_progress k)))
    Metrics.all_kinds;
  Alcotest.(check int) "eight kinds" 8 (List.length Metrics.all_kinds)

let test_metrics_enrolled () =
  let m = Metrics.create ~seg_start:0.0 ~seg_end:10.0 in
  Metrics.record_enrolled m ~t0:5.0 ~t1:25.0 ~nodes:2;
  checkf "enrolled clipped" 10.0 (Metrics.enrolled_ns m)

(* ------------------------------------------------------------------ *)
(* Io_subsystem                                                         *)
(* ------------------------------------------------------------------ *)

let mk_io ?(bandwidth = 10.0) ?(sharing = `Linear) () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~seg_start:0.0 ~seg_end:1e9 in
  let io = Io.create ~engine ~metrics ~bandwidth_gbs:bandwidth ~sharing in
  (engine, metrics, io)

let test_io_single_flow_full_bandwidth () =
  let engine, _, io = mk_io () in
  let done_at = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:4 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> done_at := Engine.now engine));
  Engine.run engine;
  checkf "100 GB at 10 GB/s" ~eps:1e-6 10.0 !done_at

let test_io_linear_sharing_two_equal_flows () =
  (* Section 3.2's example: two equal concurrent transfers each take twice
     as long under the linear model. *)
  let engine, _, io = mk_io () in
  let t1 = ref nan and t2 = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t1 := Engine.now engine));
  ignore
    (Io.start_flow io ~job:1 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t2 := Engine.now engine));
  Engine.run engine;
  checkf "both finish at 20" ~eps:1e-6 20.0 !t1;
  checkf "both finish at 20" ~eps:1e-6 20.0 !t2

let test_io_sequential_beats_concurrent_average () =
  (* Ordered vs Oblivious on the same two transfers: sequential service
     completes the first in 10 and the second in 20 — lower average. *)
  let engine, _, io = mk_io () in
  let t1 = ref nan and t2 = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () ->
         t1 := Engine.now engine;
         ignore
           (Io.start_flow io ~job:1 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
              ~on_complete:(fun () -> t2 := Engine.now engine))));
  Engine.run engine;
  checkf "first at 10" ~eps:1e-6 10.0 !t1;
  checkf "second at 20" ~eps:1e-6 20.0 !t2

let test_io_weighted_sharing () =
  (* Weights 3:1 -> rates 7.5 and 2.5 GB/s. Small flow (25 GB at 2.5) and
     large flow (75 GB at 7.5) both would finish at t=10. *)
  let engine, _, io = mk_io () in
  let t_small = ref nan and t_big = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:3 ~kind:Io.Input ~volume_gb:75.0
       ~on_complete:(fun () -> t_big := Engine.now engine));
  ignore
    (Io.start_flow io ~job:1 ~nodes:1 ~kind:Io.Input ~volume_gb:25.0
       ~on_complete:(fun () -> t_small := Engine.now engine));
  Engine.run engine;
  checkf "big at 10" ~eps:1e-6 10.0 !t_big;
  checkf "small at 10" ~eps:1e-6 10.0 !t_small

let test_io_rate_rebalances_on_completion () =
  (* Flow A: 100 GB, flow B: 50 GB, equal weights. B finishes at t=10
     (50 GB at 5 GB/s), then A runs at full 10 GB/s: remaining 50 GB in 5 s
     -> A completes at 15. *)
  let engine, _, io = mk_io () in
  let ta = ref nan and tb = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> ta := Engine.now engine));
  ignore
    (Io.start_flow io ~job:1 ~nodes:1 ~kind:Io.Input ~volume_gb:50.0
       ~on_complete:(fun () -> tb := Engine.now engine));
  Engine.run engine;
  checkf "B at 10" ~eps:1e-6 10.0 !tb;
  checkf "A at 15" ~eps:1e-6 15.0 !ta

let test_io_unshared_no_interference () =
  let engine, _, io = mk_io ~sharing:`Unshared () in
  let t1 = ref nan and t2 = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t1 := Engine.now engine));
  ignore
    (Io.start_flow io ~job:1 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t2 := Engine.now engine));
  Engine.run engine;
  checkf "no slowdown" ~eps:1e-6 10.0 !t1;
  checkf "no slowdown" ~eps:1e-6 10.0 !t2

let test_io_zero_volume_completes_async () =
  let engine, _, io = mk_io () in
  let fired = ref false in
  ignore
    (Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Output ~volume_gb:0.0
       ~on_complete:(fun () -> fired := true));
  Alcotest.(check bool) "not synchronous" false !fired;
  Engine.run engine;
  Alcotest.(check bool) "fires via calendar" true !fired

let test_io_abort_mid_transfer () =
  let engine, _, io = mk_io () in
  let completed = ref false in
  let flow =
    Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Input ~volume_gb:100.0
      ~on_complete:(fun () -> completed := true)
  in
  ignore
    (Engine.schedule_at engine ~time:5.0 (fun _ -> Io.abort_flow io flow));
  Engine.run engine;
  Alcotest.(check bool) "no completion after abort" false !completed;
  Alcotest.(check int) "no active flows" 0 (Io.active_count io)

let test_io_abort_idempotent () =
  let engine, _, io = mk_io () in
  let flow =
    Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Input ~volume_gb:10.0
      ~on_complete:(fun () -> ())
  in
  Io.abort_flow io flow;
  Io.abort_flow io flow;
  Engine.run engine;
  Alcotest.(check pass) "double abort ok" () ()

let test_io_metrics_regular_split () =
  (* Two equal regular flows at half rate: progress fraction 0.5 each. *)
  let engine, metrics, io = mk_io () in
  ignore
    (Io.start_flow io ~job:0 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> ()));
  ignore
    (Io.start_flow io ~job:1 ~nodes:2 ~kind:Io.Output ~volume_gb:100.0
       ~on_complete:(fun () -> ()));
  Engine.run engine;
  (* Each: 2 nodes x 20 s = 40 node-seconds, half progress, half dilation. *)
  checkf "regular-io" ~eps:1e-6 40.0 (Metrics.total metrics Metrics.Regular_io);
  checkf "dilation" ~eps:1e-6 40.0 (Metrics.total metrics Metrics.Io_dilation)

let test_io_metrics_ckpt_is_waste () =
  let engine, metrics, io = mk_io () in
  ignore
    (Io.start_flow io ~job:0 ~nodes:3 ~kind:Io.Ckpt ~volume_gb:50.0
       ~on_complete:(fun () -> ()));
  Engine.run engine;
  checkf "ckpt-io node-seconds" ~eps:1e-6 15.0 (Metrics.total metrics Metrics.Ckpt_io);
  checkf "no progress from ckpt" 0.0 (Metrics.progress_ns metrics)

let test_io_metrics_recovery_is_waste () =
  let engine, metrics, io = mk_io () in
  ignore
    (Io.start_flow io ~job:0 ~nodes:2 ~kind:Io.Recovery ~volume_gb:20.0
       ~on_complete:(fun () -> ()));
  Engine.run engine;
  checkf "recovery node-seconds" ~eps:1e-6 4.0 (Metrics.total metrics Metrics.Recovery_io)

let test_io_volume_conservation =
  (* Whatever the arrival pattern, total transferred volume equals the sum
     of flow volumes once everything completes. *)
  QCheck.Test.make ~name:"io_conserves_volume" ~count:100
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 10) (pair (int_range 1 8) (float_range 1.0 200.0)))
    (fun flows ->
      let engine, _, io = mk_io () in
      List.iteri
        (fun i (nodes, vol) ->
          ignore
            (Io.start_flow io ~job:i ~nodes ~kind:Io.Input ~volume_gb:vol
               ~on_complete:(fun () -> ())))
        flows;
      Engine.run engine;
      let expected = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 flows in
      Cocheck_util.Numerics.fequal ~eps:1e-6 (Io.transferred_gb io) expected)

let test_io_aggregate_rate_never_exceeds_bandwidth () =
  (* With linear sharing, the sum of rates equals the bandwidth whenever
     flows are active. *)
  let engine, _, io = mk_io () in
  let f1 =
    Io.start_flow io ~job:0 ~nodes:5 ~kind:Io.Input ~volume_gb:100.0
      ~on_complete:(fun () -> ())
  in
  let f2 =
    Io.start_flow io ~job:1 ~nodes:3 ~kind:Io.Ckpt ~volume_gb:100.0
      ~on_complete:(fun () -> ())
  in
  ignore
    (Engine.schedule_at engine ~time:1.0 (fun _ ->
         let r1 = Option.value ~default:0.0 (Io.active_rate io f1) in
         let r2 = Option.value ~default:0.0 (Io.active_rate io f2) in
         checkf "rates sum to bandwidth" ~eps:1e-9 10.0 (r1 +. r2);
         checkf "weighted 5:3" ~eps:1e-9 6.25 r1));
  Engine.run engine

let test_io_degraded_single_flow_property =
  QCheck.Test.make ~name:"degraded_lone_flow_full_rate" ~count:100
    QCheck.(pair (float_range 0.0 5.0) (float_range 1.0 500.0))
    (fun (alpha, vol) ->
      let engine = Engine.create () in
      let metrics = Metrics.create ~seg_start:0.0 ~seg_end:1e9 in
      let io = Io.create ~engine ~metrics ~bandwidth_gbs:10.0 ~sharing:(`Degraded alpha) in
      let t = ref nan in
      ignore
        (Io.start_flow io ~job:0 ~nodes:3 ~kind:Io.Input ~volume_gb:vol
           ~on_complete:(fun () -> t := Engine.now engine));
      Engine.run engine;
      Cocheck_util.Numerics.fequal ~eps:1e-6 !t (vol /. 10.0))

let test_io_drain_records_no_node_seconds () =
  let engine, metrics, io = mk_io () in
  ignore
    (Io.start_flow io ~job:0 ~nodes:4 ~kind:Io.Drain ~volume_gb:50.0
       ~on_complete:(fun () -> ()));
  Engine.run engine;
  checkf "drain holds no nodes" 0.0
    (Metrics.progress_ns metrics +. Metrics.waste_ns metrics)

let test_io_drain_interferes_with_foreground () =
  (* A drain halves a concurrent equal-weight foreground transfer's rate. *)
  let engine, _, io = mk_io () in
  let t = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:2 ~kind:Io.Drain ~volume_gb:100.0
       ~on_complete:(fun () -> ()));
  ignore
    (Io.start_flow io ~job:1 ~nodes:2 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t := Engine.now engine));
  Engine.run engine;
  checkf "foreground slowed by drain" ~eps:1e-6 20.0 !t

(* ------------------------------------------------------------------ *)
(* Failure_trace                                                        *)
(* ------------------------------------------------------------------ *)

let test_failures_increasing_times () =
  (* Non-decreasing, not strictly increasing: gaps are clamped at 0.0 (not
     some epsilon), so coincident events are legal at extreme rates. *)
  let t =
    Failure_trace.create ~rng:(Rng.create ~seed:1) ~nodes:100 ~node_mtbf_s:1e5 ()
  in
  let prev = ref 0.0 in
  for _ = 1 to 1000 do
    let e = Failure_trace.next t in
    Alcotest.(check bool) "non-decreasing" true (e.Failure_trace.time >= !prev);
    prev := e.time
  done

let test_failures_tiny_gaps_unbiased () =
  (* Regression: the gap clamp used to be [Float.max dt 1e-9]. At 50k nodes
     with node_mtbf_s = 2.5e-5 the true mean gap is 5e-10 — below the old
     floor — so every draw was inflated to ≥1e-9 and the realized mean came
     out ≥2× the nominal rate. With the 0.0 clamp the sample mean must sit
     within sampling noise of the truth. *)
  let nodes = 50_000 and node_mtbf_s = 2.5e-5 in
  let t = Failure_trace.create ~rng:(Rng.create ~seed:11) ~nodes ~node_mtbf_s () in
  let n = 50_000 in
  let last = ref 0.0 in
  for _ = 1 to n do
    last := (Failure_trace.next t).Failure_trace.time
  done;
  let mean = !last /. float_of_int n in
  let expect = node_mtbf_s /. float_of_int nodes in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.3e within 5%% of %.3e (old clamp gave >= 2x)" mean expect)
    true
    (mean > 0.95 *. expect && mean < 1.05 *. expect)

let test_failures_node_range =
  QCheck.Test.make ~name:"failure_nodes_in_range" ~count:50
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, nodes) ->
      let t = Failure_trace.create ~rng:(Rng.create ~seed) ~nodes ~node_mtbf_s:1e6 () in
      List.for_all
        (fun _ ->
          let e = Failure_trace.next t in
          e.Failure_trace.node >= 0 && e.node < nodes)
        (List.init 20 Fun.id))

let test_failures_rate () =
  (* 1000 nodes with 1e6 s MTBF -> system MTBF 1000 s. Mean of 20k
     inter-arrivals should be within a few percent. *)
  let t =
    Failure_trace.create ~rng:(Rng.create ~seed:5) ~nodes:1000 ~node_mtbf_s:1e6 ()
  in
  let n = 20_000 in
  let last = ref 0.0 in
  for _ = 1 to n do
    last := (Failure_trace.next t).Failure_trace.time
  done;
  let mean = !last /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean inter-arrival %.1f near 1000" mean)
    true
    (mean > 950.0 && mean < 1050.0);
  checkf "system mtbf accessor" 1000.0 (Failure_trace.system_mtbf t)

let test_failures_peek_consistent () =
  let t = Failure_trace.create ~rng:(Rng.create ~seed:9) ~nodes:10 ~node_mtbf_s:1e4 () in
  let p = Failure_trace.peek_time t in
  let e = Failure_trace.next t in
  checkf "peek = next" ~eps:0.0 p e.Failure_trace.time;
  Alcotest.(check int) "count after one" 1 (Failure_trace.generated t)

let test_failures_deterministic () =
  let mk () = Failure_trace.create ~rng:(Rng.create ~seed:77) ~nodes:50 ~node_mtbf_s:1e5 () in
  let a = mk () and b = mk () in
  for _ = 1 to 100 do
    let ea = Failure_trace.next a and eb = Failure_trace.next b in
    checkf "same time" ~eps:0.0 ea.Failure_trace.time eb.Failure_trace.time;
    Alcotest.(check int) "same node" ea.node eb.node
  done

(* ------------------------------------------------------------------ *)
(* Node_pool                                                            *)
(* ------------------------------------------------------------------ *)

let test_pool_alloc_release () =
  let p = Node_pool.create ~nodes:10 in
  Alcotest.(check int) "all free" 10 (Node_pool.free_count p);
  match Node_pool.alloc p ~job:3 ~count:4 with
  | None -> Alcotest.fail "alloc should succeed"
  | Some grant ->
      Alcotest.(check int) "4 allocated" 4 (Node_pool.size grant);
      Alcotest.(check int) "6 free" 6 (Node_pool.free_count p);
      List.iter
        (fun n -> Alcotest.(check (option int)) "owner recorded" (Some 3) (Node_pool.owner p n))
        (Node_pool.to_list grant);
      Node_pool.release p grant;
      Alcotest.(check int) "all free again" 10 (Node_pool.free_count p)

let test_pool_exhaustion () =
  let p = Node_pool.create ~nodes:5 in
  Alcotest.(check bool) "too big fails" true (Node_pool.alloc p ~job:0 ~count:6 = None);
  ignore (Node_pool.alloc p ~job:0 ~count:5);
  Alcotest.(check bool) "full pool fails" true (Node_pool.alloc p ~job:1 ~count:1 = None)

let test_pool_double_release () =
  let p = Node_pool.create ~nodes:3 in
  let ids = Option.get (Node_pool.alloc p ~job:0 ~count:2) in
  Node_pool.release p ids;
  Alcotest.check_raises "double release"
    (Invalid_argument "Node_pool.release: node already free") (fun () ->
      Node_pool.release p ids)

let test_pool_distinct_nodes =
  QCheck.Test.make ~name:"pool_allocations_disjoint" ~count:100
    QCheck.(pair (int_range 1 50) (int_range 1 50))
    (fun (a, b) ->
      let p = Node_pool.create ~nodes:100 in
      let ia = Option.get (Node_pool.alloc p ~job:0 ~count:a) in
      let ib = Option.get (Node_pool.alloc p ~job:1 ~count:b) in
      let module S = Set.Make (Int) in
      let sa = S.of_list (Node_pool.to_list ia) and sb = S.of_list (Node_pool.to_list ib) in
      S.cardinal sa = a && S.cardinal sb = b && S.is_empty (S.inter sa sb))

let test_pool_free_node_has_no_owner () =
  let p = Node_pool.create ~nodes:2 in
  Alcotest.(check (option int)) "free node" None (Node_pool.owner p 0)

let test_pool_churn =
  (* Random alloc/release interleavings fragment the range lists; the pool
     must conserve node counts, keep ownership exact, and coalesce well
     enough that a full-machine allocation succeeds once all is free. *)
  QCheck.Test.make ~name:"pool_random_churn_consistent" ~count:100
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 40) (int_range 1 20)))
    (fun (seed, sizes) ->
      let rng = Cocheck_util.Rng.create ~seed in
      let n = 100 in
      let p = Node_pool.create ~nodes:n in
      let live = ref [] in
      let ok = ref true in
      List.iteri
        (fun job count ->
          (match Node_pool.alloc p ~job ~count with
          | Some g ->
              ok := !ok && Node_pool.size g = count;
              live := (job, g) :: !live
          | None -> ok := !ok && Node_pool.free_count p < count);
          (* Randomly retire one live grant. *)
          match !live with
          | (j, g) :: rest when Cocheck_util.Rng.bool rng ->
              ok :=
                !ok
                && List.for_all (fun nd -> Node_pool.owner p nd = Some j) (Node_pool.to_list g);
              Node_pool.release p g;
              live := rest
          | _ -> ())
        sizes;
      List.iter (fun (_, g) -> Node_pool.release p g) !live;
      !ok && Node_pool.free_count p = n && Node_pool.alloc p ~job:999 ~count:n <> None)

(* ------------------------------------------------------------------ *)
(* Config                                                               *)
(* ------------------------------------------------------------------ *)

let test_config_defaults () =
  let platform = Platform.cielo () in
  let cfg = Config.make ~platform ~strategy:Strategy.Least_waste () in
  checkf "segment starts after one day" (Units.days 1.0) cfg.Config.seg_start;
  checkf "segment covers 60 days" (Units.days 61.0) cfg.Config.seg_end;
  checkf "horizon one day later" (Units.days 62.0) cfg.Config.horizon;
  Alcotest.(check bool) "failures on" true cfg.Config.with_failures;
  Alcotest.(check int) "APEX classes by default" 4 (List.length cfg.Config.classes)

let test_config_baseline_forces_no_failures () =
  let platform = Platform.cielo () in
  let cfg = Config.make ~platform ~strategy:Strategy.Baseline () in
  Alcotest.(check bool) "baseline has no failures" false cfg.Config.with_failures

let test_config_baseline_of () =
  let platform = Platform.cielo () in
  let cfg = Config.make ~platform ~strategy:Strategy.Least_waste ~seed:9 () in
  let b = Config.baseline_of cfg in
  Alcotest.(check bool) "strategy is baseline" true (b.Config.strategy = Strategy.Baseline);
  Alcotest.(check bool) "failures off" false b.Config.with_failures;
  Alcotest.(check int) "seed preserved" 9 b.Config.seed

let test_config_prospective_scales_classes () =
  let platform = Platform.prospective () in
  let cfg = Config.make ~platform ~strategy:Strategy.Least_waste () in
  let eap = List.hd cfg.Config.classes in
  Alcotest.(check bool) "EAP scaled up" true (eap.Cocheck_model.App_class.nodes > 2048)

let test_config_validation () =
  let platform = Platform.cielo () in
  Alcotest.(check bool) "empty classes rejected" true
    (match Config.make ~platform ~classes:[] ~strategy:Strategy.Least_waste () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace ring buffer                                                    *)
(* ------------------------------------------------------------------ *)

module Trace = Cocheck_sim.Trace

let trace_event i =
  { Trace.time = float_of_int i; job = i; inst = i; kind = Trace.Ckpt_requested }

let test_trace_no_wrap () =
  let t = Trace.create ~capacity:8 () in
  for i = 0 to 4 do
    Trace.record t (trace_event i)
  done;
  Alcotest.(check int) "length" 5 (Trace.length t);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t);
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Trace.job) (Trace.events t))

let test_trace_wraparound () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record t (trace_event i)
  done;
  Alcotest.(check int) "capacity retained" 4 (Trace.length t);
  Alcotest.(check int) "dropped = total - capacity" 6 (Trace.dropped t);
  Alcotest.(check (list int)) "most recent, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Trace.job) (Trace.events t));
  let times = List.map (fun e -> e.Trace.time) (Trace.events t) in
  Alcotest.(check bool) "chronological" true (List.sort compare times = times)

let test_trace_dump_header () =
  let t = Trace.create ~capacity:3 () in
  for i = 0 to 6 do
    Trace.record t (trace_event i)
  done;
  let dump = Trace.dump t in
  let header = "(4 earlier events dropped)" in
  Alcotest.(check bool) "dump announces drops" true
    (String.length dump >= String.length header
    && String.sub dump 0 (String.length header) = header);
  let undropped = Trace.dump (Trace.create ~capacity:3 ()) in
  Alcotest.(check string) "empty trace dumps nothing" "" undropped

let test_trace_wrap_exactly_at_capacity () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 3 do
    Trace.record t (trace_event i)
  done;
  Alcotest.(check int) "full but nothing dropped" 0 (Trace.dropped t);
  Trace.record t (trace_event 4);
  Alcotest.(check int) "one past capacity drops one" 1 (Trace.dropped t);
  Alcotest.(check (list int)) "oldest evicted" [ 1; 2; 3; 4 ]
    (List.map (fun e -> e.Trace.job) (Trace.events t))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.sim-substrates"
    [
      ( "metrics",
        [
          Alcotest.test_case "segment clipping" `Quick test_metrics_clipping;
          Alcotest.test_case "progress vs waste" `Quick test_metrics_progress_vs_waste;
          Alcotest.test_case "weighted split" `Quick test_metrics_weighted_split;
          Alcotest.test_case "reversed interval" `Quick test_metrics_reversed_interval_rejected;
          Alcotest.test_case "kind partition" `Quick test_metrics_kind_partition;
          Alcotest.test_case "enrolled clipping" `Quick test_metrics_enrolled;
        ]
        @ qsuite [ test_metrics_weighted_conserves ] );
      ( "io_subsystem",
        [
          Alcotest.test_case "single flow full bandwidth" `Quick test_io_single_flow_full_bandwidth;
          Alcotest.test_case "linear sharing (paper 3.2)" `Quick test_io_linear_sharing_two_equal_flows;
          Alcotest.test_case "sequential service (paper 3.2)" `Quick test_io_sequential_beats_concurrent_average;
          Alcotest.test_case "weighted shares" `Quick test_io_weighted_sharing;
          Alcotest.test_case "rebalance on completion" `Quick test_io_rate_rebalances_on_completion;
          Alcotest.test_case "unshared baseline" `Quick test_io_unshared_no_interference;
          Alcotest.test_case "zero volume async" `Quick test_io_zero_volume_completes_async;
          Alcotest.test_case "abort mid-transfer" `Quick test_io_abort_mid_transfer;
          Alcotest.test_case "abort idempotent" `Quick test_io_abort_idempotent;
          Alcotest.test_case "regular split metrics" `Quick test_io_metrics_regular_split;
          Alcotest.test_case "ckpt is waste" `Quick test_io_metrics_ckpt_is_waste;
          Alcotest.test_case "recovery is waste" `Quick test_io_metrics_recovery_is_waste;
          Alcotest.test_case "rates sum to bandwidth" `Quick test_io_aggregate_rate_never_exceeds_bandwidth;
          Alcotest.test_case "drain holds no nodes" `Quick test_io_drain_records_no_node_seconds;
          Alcotest.test_case "drain interferes" `Quick test_io_drain_interferes_with_foreground;
        ]
        @ qsuite [ test_io_volume_conservation; test_io_degraded_single_flow_property ] );
      ( "failure_trace",
        [
          Alcotest.test_case "increasing times" `Quick test_failures_increasing_times;
          Alcotest.test_case "tiny gaps unbiased" `Quick test_failures_tiny_gaps_unbiased;
          Alcotest.test_case "rate matches MTBF" `Quick test_failures_rate;
          Alcotest.test_case "peek consistent" `Quick test_failures_peek_consistent;
          Alcotest.test_case "deterministic" `Quick test_failures_deterministic;
        ]
        @ qsuite [ test_failures_node_range ] );
      ( "node_pool",
        [
          Alcotest.test_case "alloc/release" `Quick test_pool_alloc_release;
          Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "double release" `Quick test_pool_double_release;
          Alcotest.test_case "free node ownerless" `Quick test_pool_free_node_has_no_owner;
        ]
        @ qsuite [ test_pool_distinct_nodes; test_pool_churn ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "baseline forces no failures" `Quick test_config_baseline_forces_no_failures;
          Alcotest.test_case "baseline_of" `Quick test_config_baseline_of;
          Alcotest.test_case "prospective classes scaled" `Quick test_config_prospective_scales_classes;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "no wraparound" `Quick test_trace_no_wrap;
          Alcotest.test_case "wraparound keeps newest" `Quick test_trace_wraparound;
          Alcotest.test_case "dump drop header" `Quick test_trace_dump_header;
          Alcotest.test_case "boundary at capacity" `Quick test_trace_wrap_exactly_at_capacity;
        ] );
    ]
