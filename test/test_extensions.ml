(* Tests for the extensions beyond the paper's core evaluation: the gamma
   function, non-exponential failure distributions, the adversarial
   (degraded) interference model, the burst-buffer tier, event tracing, the
   period trade-off analysis and confidence intervals. *)

module Engine = Cocheck_des.Engine
module Metrics = Cocheck_sim.Metrics
module Io = Cocheck_sim.Io_subsystem
module Burst_buffer = Cocheck_sim.Burst_buffer
module Failure_trace = Cocheck_sim.Failure_trace
module Trace = Cocheck_sim.Trace
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Strategy = Cocheck_core.Strategy
module Period_tradeoff = Cocheck_core.Period_tradeoff
module Rng = Cocheck_util.Rng
module Stats = Cocheck_util.Stats
module Units = Cocheck_util.Units
module Numerics = Cocheck_util.Numerics

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Gamma function                                                       *)
(* ------------------------------------------------------------------ *)

let test_gamma_known_values () =
  checkf "gamma(1)" ~eps:1e-12 1.0 (Numerics.gamma 1.0);
  checkf "gamma(5) = 4!" ~eps:1e-9 24.0 (Numerics.gamma 5.0);
  checkf "gamma(0.5) = sqrt pi" ~eps:1e-10 (sqrt Float.pi) (Numerics.gamma 0.5);
  checkf "gamma(1.5)" ~eps:1e-10 (sqrt Float.pi /. 2.0) (Numerics.gamma 1.5)

let test_gamma_recurrence =
  QCheck.Test.make ~name:"gamma_recurrence" ~count:200
    QCheck.(float_range 0.1 30.0)
    (fun x -> Numerics.fequal ~eps:1e-9 (Numerics.gamma (x +. 1.0)) (x *. Numerics.gamma x))

let test_gamma_invalid () =
  Alcotest.(check bool) "non-positive rejected" true
    (match Numerics.log_gamma 0.0 with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Failure distributions                                                *)
(* ------------------------------------------------------------------ *)

let mean_interarrival distribution =
  let t =
    Failure_trace.create ~rng:(Rng.create ~seed:31) ~nodes:100 ~node_mtbf_s:1e6
      ~distribution ()
  in
  let n = 30_000 in
  let last = ref 0.0 in
  for _ = 1 to n do
    last := (Failure_trace.next t).Failure_trace.time
  done;
  !last /. float_of_int n

let test_weibull_mean_matched () =
  let m = mean_interarrival (Failure_trace.Weibull { shape = 0.7 }) in
  Alcotest.(check bool)
    (Printf.sprintf "weibull(0.7) mean %.0f near 10000" m)
    true
    (Float.abs (m -. 10_000.0) < 700.0)

let test_lognormal_mean_matched () =
  let m = mean_interarrival (Failure_trace.Lognormal { sigma = 1.0 }) in
  Alcotest.(check bool)
    (Printf.sprintf "lognormal mean %.0f near 10000" m)
    true
    (Float.abs (m -. 10_000.0) < 900.0)

let test_weibull_clusters () =
  (* Shape < 1 gives higher inter-arrival variance than exponential at the
     same mean: more clustered failures. *)
  let cv distribution =
    let t =
      Failure_trace.create ~rng:(Rng.create ~seed:5) ~nodes:10 ~node_mtbf_s:1e5
        ~distribution ()
    in
    let r = Stats.running_create () in
    let prev = ref 0.0 in
    for _ = 1 to 20_000 do
      let e = Failure_trace.next t in
      Stats.running_add r (e.Failure_trace.time -. !prev);
      prev := e.time
    done;
    Stats.running_stddev r /. Stats.running_mean r
  in
  Alcotest.(check bool) "weibull(0.6) burstier than exponential" true
    (cv (Failure_trace.Weibull { shape = 0.6 }) > cv Failure_trace.Exponential +. 0.2)

let test_weibull_invalid_shape () =
  Alcotest.(check bool) "shape 0 rejected" true
    (match
       Failure_trace.create ~rng:(Rng.create ~seed:1) ~nodes:1 ~node_mtbf_s:1.0
         ~distribution:(Failure_trace.Weibull { shape = 0.0 }) ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_distribution_names () =
  Alcotest.(check string) "exp" "exponential"
    (Failure_trace.distribution_name Failure_trace.Exponential);
  Alcotest.(check string) "weibull" "weibull(0.7)"
    (Failure_trace.distribution_name (Failure_trace.Weibull { shape = 0.7 }))

(* ------------------------------------------------------------------ *)
(* Degraded interference                                                *)
(* ------------------------------------------------------------------ *)

let mk_io ?(bandwidth = 10.0) ~sharing () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~seg_start:0.0 ~seg_end:1e9 in
  (engine, Io.create ~engine ~metrics ~bandwidth_gbs:bandwidth ~sharing)

let test_degraded_two_flows () =
  (* alpha = 0.5, two equal flows: aggregate 10/(1.5) = 6.67, each gets
     3.33 GB/s -> 100 GB takes 30 s. *)
  let engine, io = mk_io ~sharing:(`Degraded 0.5) () in
  let t1 = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t1 := Engine.now engine));
  ignore
    (Io.start_flow io ~job:1 ~nodes:1 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> ()));
  Engine.run engine;
  checkf "degraded completion" ~eps:1e-6 30.0 !t1

let test_degraded_single_flow_full_speed () =
  let engine, io = mk_io ~sharing:(`Degraded 0.5) () in
  let t1 = ref nan in
  ignore
    (Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Input ~volume_gb:100.0
       ~on_complete:(fun () -> t1 := Engine.now engine));
  Engine.run engine;
  checkf "lone flow undegraded" ~eps:1e-6 10.0 !t1

let test_degraded_zero_alpha_is_linear () =
  let run sharing =
    let engine, io = mk_io ~sharing () in
    let t1 = ref nan in
    ignore
      (Io.start_flow io ~job:0 ~nodes:1 ~kind:Io.Input ~volume_gb:60.0
         ~on_complete:(fun () -> t1 := Engine.now engine));
    ignore
      (Io.start_flow io ~job:1 ~nodes:2 ~kind:Io.Input ~volume_gb:60.0
         ~on_complete:(fun () -> ()));
    Engine.run engine;
    !t1
  in
  checkf "alpha 0 = linear" ~eps:1e-9 (run `Linear) (run (`Degraded 0.0))

let test_degraded_simulation_worse () =
  (* The adversarial model can only hurt Oblivious at equal parameters. *)
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:50.0 () in
  let run alpha =
    let cfg s =
      Config.make ~platform ~strategy:s ~seed:2 ~days:5.0 ~interference_alpha:alpha ()
    in
    let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
    let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
    let r = Simulator.run ~specs (cfg (Strategy.Oblivious Strategy.Daly)) in
    Simulator.waste_ratio ~strategy:r ~baseline
  in
  Alcotest.(check bool) "adversarial interference hurts" true (run 1.0 > run 0.0)

(* ------------------------------------------------------------------ *)
(* Burst buffer                                                         *)
(* ------------------------------------------------------------------ *)

let mk_bb ?(capacity = 100.0) ?(bb_bw = 100.0) ?(pfs_bw = 10.0) () =
  let engine = Engine.create () in
  let metrics = Metrics.create ~seg_start:0.0 ~seg_end:1e9 in
  let pfs = Io.create ~engine ~metrics ~bandwidth_gbs:pfs_bw ~sharing:`Linear in
  let bb =
    Burst_buffer.create ~engine ~metrics ~pfs
      { Burst_buffer.capacity_gb = capacity; bandwidth_gbs = bb_bw }
  in
  (engine, metrics, pfs, bb)

let test_bb_write_fast_commit () =
  let engine, _, _, bb = mk_bb () in
  let t = ref nan in
  ignore
    (Burst_buffer.write bb ~owner:7 ~job:0 ~nodes:4 ~volume_gb:50.0 ~on_complete:(fun () ->
         t := Engine.now engine));
  Engine.run engine;
  (* 50 GB at 100 GB/s: committed in 0.5 s, far faster than the 5 s the
     PFS would need. *)
  checkf "commit at BB speed" ~eps:1e-6 0.5 !t

let test_bb_capacity_reserved_and_drained () =
  let engine, _, _, bb = mk_bb ~capacity:60.0 () in
  ignore
    (Burst_buffer.write bb ~owner:1 ~job:0 ~nodes:1 ~volume_gb:50.0
       ~on_complete:(fun () -> ()));
  checkf "reserved at write start" 50.0 (Burst_buffer.used_gb bb);
  Alcotest.(check bool) "second write does not fit" false
    (Burst_buffer.fits bb ~volume_gb:20.0);
  Engine.run engine;
  (* After write (0.5 s) + drain (50 GB at 10 GB/s = 5 s) space frees. *)
  checkf "drained" 0.0 (Burst_buffer.used_gb bb);
  Alcotest.(check int) "no drains pending" 0 (Burst_buffer.drains_pending bb)

let test_bb_write_does_not_fit_spills () =
  let _, _, _, bb = mk_bb ~capacity:10.0 () in
  Alcotest.(check bool) "oversized write returns None" true
    (Burst_buffer.write bb ~owner:1 ~job:0 ~nodes:1 ~volume_gb:20.0
       ~on_complete:(fun () -> ())
    = None);
  Alcotest.(check int) "spill counted by the buffer" 1 (Burst_buffer.writes_spilled bb);
  checkf "no capacity reserved" 0.0 (Burst_buffer.used_gb bb)

let test_bb_residency_lifecycle () =
  let engine, _, _, bb = mk_bb () in
  Alcotest.(check bool) "nothing resident initially" false
    (Burst_buffer.resident_for bb ~owner:3);
  let committed = ref false in
  ignore
    (Burst_buffer.write bb ~owner:3 ~job:0 ~nodes:1 ~volume_gb:40.0
       ~on_complete:(fun () -> committed := true));
  Alcotest.(check bool) "not resident while writing" false
    (Burst_buffer.resident_for bb ~owner:3);
  Engine.run engine;
  Alcotest.(check bool) "write completed" true !committed;
  (* Everything drained by now: residency gone. *)
  Alcotest.(check bool) "drained copies are not resident" false
    (Burst_buffer.resident_for bb ~owner:3)

let test_bb_resident_while_draining () =
  (* Slow PFS: the drain is still running right after the write commits. *)
  let engine, _, _, bb = mk_bb ~pfs_bw:0.001 () in
  let committed_at = ref nan in
  ignore
    (Burst_buffer.write bb ~owner:3 ~job:0 ~nodes:1 ~volume_gb:40.0
       ~on_complete:(fun () -> committed_at := Engine.now engine));
  Engine.run ~until:1.0 engine;
  Alcotest.(check bool) "committed" true (Float.is_finite !committed_at);
  Alcotest.(check bool) "resident while draining" true
    (Burst_buffer.resident_for bb ~owner:3);
  Alcotest.(check int) "one drain in flight" 1 (Burst_buffer.drains_pending bb)

let test_bb_abort_releases_reservation () =
  let engine, _, _, bb = mk_bb ~bb_bw:1.0 () in
  let flow =
    Option.get
      (Burst_buffer.write bb ~owner:1 ~job:0 ~nodes:1 ~volume_gb:50.0
         ~on_complete:(fun () -> Alcotest.fail "aborted write must not complete"))
  in
  ignore
    (Engine.schedule_at engine ~time:1.0 (fun _ -> Burst_buffer.abort_write bb flow));
  Engine.run engine;
  checkf "reservation released" 0.0 (Burst_buffer.used_gb bb);
  Alcotest.(check bool) "nothing resident" false (Burst_buffer.resident_for bb ~owner:1)

let test_bb_read_requires_residency () =
  let _, _, _, bb = mk_bb () in
  Alcotest.(check bool) "read without residency rejected" true
    (match
       Burst_buffer.read bb ~owner:9 ~job:0 ~nodes:1 ~volume_gb:1.0
         ~on_complete:(fun () -> ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bb_drains_serialize () =
  let engine, _, _, bb = mk_bb ~capacity:1000.0 () in
  for owner = 0 to 3 do
    ignore
      (Burst_buffer.write bb ~owner ~job:owner ~nodes:1 ~volume_gb:50.0
         ~on_complete:(fun () -> ()))
  done;
  (* Writes complete at 2 s (shared 100 GB/s over 4 x 50 GB). Drains then run
     one at a time at 10 GB/s: 4 x 5 s. *)
  Engine.run ~until:3.0 engine;
  Alcotest.(check int) "drains queue up" 4 (Burst_buffer.drains_pending bb);
  Engine.run engine;
  Alcotest.(check int) "all drained" 0 (Burst_buffer.drains_pending bb);
  checkf "space reclaimed" 0.0 (Burst_buffer.used_gb bb)

(* Burst buffer end-to-end: a contended scenario where the buffer absorbs
   the checkpoint traffic. *)
let tiny_class =
  App_class.make ~name:"toy" ~workload_pct:100.0 ~walltime_s:(Units.hours 2.0) ~nodes:16
    ~input_pct:10.0 ~output_pct:10.0 ~ckpt_pct:50.0 ()

let tiny_platform =
  Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:0.2
    ~node_mtbf_s:(Units.years 2.0)

let bb_spec = { Burst_buffer.capacity_gb = 64.0; bandwidth_gbs = 8.0 }

let run_tiny ?burst_buffer strategy =
  let cfg s =
    Config.make ~platform:tiny_platform ~classes:[ tiny_class ] ~strategy:s ~seed:4
      ~days:1.0 ~with_failures:false ?burst_buffer ()
  in
  let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
  let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
  let r = Simulator.run ~specs (cfg strategy) in
  (r, Simulator.waste_ratio ~strategy:r ~baseline)

let test_bb_simulation_reduces_waste () =
  let strategy = Strategy.Oblivious (Strategy.Fixed 600.0) in
  let r_without, w_without = run_tiny strategy in
  let r_with, w_with = run_tiny ~burst_buffer:bb_spec strategy in
  Alcotest.(check int) "no absorption without buffer" 0 r_without.Simulator.bb_absorbed;
  Alcotest.(check bool)
    (Printf.sprintf "buffer absorbs commits (%d)" r_with.Simulator.bb_absorbed)
    true
    (r_with.bb_absorbed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "waste drops: %.3f -> %.3f" w_without w_with)
    true (w_with < w_without)

let test_bb_simulation_spills_when_small () =
  (* An 8 GB job checkpoint against a 9 GB buffer: at most one resident
     copy; concurrent committers spill. *)
  let small = { Burst_buffer.capacity_gb = 9.0; bandwidth_gbs = 8.0 } in
  let r, _ = run_tiny ~burst_buffer:small (Strategy.Oblivious (Strategy.Fixed 600.0)) in
  Alcotest.(check bool) "some spills" true (r.Simulator.bb_spilled > 0);
  Alcotest.(check bool) "some absorbed" true (r.bb_absorbed > 0)

let test_bb_conservation_still_holds () =
  let r, _ = run_tiny ~burst_buffer:bb_spec Strategy.Least_waste in
  Alcotest.(check bool) "progress+waste=enrolled with BB" true
    (Numerics.fequal ~eps:1e-6 (r.Simulator.progress_ns +. r.waste_ns) r.enrolled_ns)

(* ------------------------------------------------------------------ *)
(* Two-level checkpointing                                              *)
(* ------------------------------------------------------------------ *)

module Two_level = Cocheck_core.Two_level

let tl_params ?(p = 0.5) () =
  {
    Two_level.local_cost_s = 2.0;
    local_recovery_s = 5.0;
    global_cost_s = 100.0;
    global_recovery_s = 100.0;
    mtbf_s = 1e6;
    soft_fraction = p;
  }

let test_two_level_p0_is_daly () =
  let params = tl_params ~p:0.0 () in
  let _, pg = Two_level.optimal_periods params in
  checkf "global period is Daly" ~eps:1e-9
    (Cocheck_core.Daly.period ~ckpt_s:100.0 ~mtbf_s:1e6)
    pg;
  checkf "optimal = single level" ~eps:1e-9
    (Two_level.single_level_waste params)
    (Two_level.optimal_waste params);
  Alcotest.(check bool) "local level pointless" false (Two_level.worthwhile params)

let test_two_level_periods_formula () =
  let params = tl_params ~p:0.5 () in
  let pl, pg = Two_level.optimal_periods params in
  checkf "local" ~eps:1e-9 (sqrt (2.0 *. 1e6 *. 2.0 /. 0.5)) pl;
  checkf "global" ~eps:1e-9 (sqrt (2.0 *. 1e6 *. 100.0 /. 0.5)) pg

let test_two_level_worthwhile () =
  Alcotest.(check bool) "cheap local + soft failures helps" true
    (Two_level.worthwhile (tl_params ~p:0.5 ()));
  (* Expensive local snapshots are not worth it even with soft failures. *)
  let expensive = { (tl_params ~p:0.1 ()) with Two_level.local_cost_s = 5000.0 } in
  Alcotest.(check bool) "expensive local does not help" false
    (Two_level.worthwhile expensive)

let test_two_level_optimum_is_min =
  QCheck.Test.make ~name:"two_level_optimum_beats_perturbations" ~count:200
    QCheck.(pair (float_range 0.05 0.95) (pair (float_range 0.5 2.0) (float_range 0.5 2.0)))
    (fun (p, (sl, sg)) ->
      let params = tl_params ~p () in
      let pl, pg = Two_level.optimal_periods params in
      let w_opt = Two_level.waste params ~local_period_s:pl ~global_period_s:pg in
      let w_pert =
        Two_level.waste params ~local_period_s:(pl *. sl) ~global_period_s:(pg *. sg)
      in
      w_opt <= w_pert +. 1e-9)

let test_two_level_validation () =
  Alcotest.(check bool) "bad fraction rejected" true
    (match Two_level.validate (tl_params ~p:1.5 ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Simulation side. A failure-heavy toy platform where local snapshots are
   nearly free: two-level CR must cut the waste when failures are soft. *)
let ml_spec ?(soft = 1.0) () =
  Config.local_level ~period_s:120.0 ~cost_s:1.0 ~recovery_s:5.0 ~soft_fraction:soft

let run_ml ?multilevel () =
  let platform =
    Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
      ~node_mtbf_s:(Units.years 0.0075)
  in
  let cfg s =
    Config.make ~platform ~classes:[ tiny_class ] ~strategy:s ~seed:5 ~days:1.5
      ?multilevel ()
  in
  let strategy = Strategy.Ordered_nb (Strategy.Fixed 600.0) in
  let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
  let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
  let r = Simulator.run ~specs (cfg strategy) in
  (r, Simulator.waste_ratio ~strategy:r ~baseline)

let test_multilevel_reduces_waste_under_soft_failures () =
  let r0, w0 = run_ml () in
  let r1, w1 = run_ml ~multilevel:(ml_spec ~soft:1.0 ()) () in
  Alcotest.(check (float 0.0)) "no local ckpt time without the level" 0.0
    (List.assoc Cocheck_sim.Metrics.Local_ckpt r0.Simulator.by_kind);
  Alcotest.(check bool) "local snapshots recorded" true
    (List.assoc Cocheck_sim.Metrics.Local_ckpt r1.Simulator.by_kind > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "two-level cuts waste: %.3f -> %.3f" w0 w1)
    true (w1 < w0);
  Alcotest.(check bool) "lost work shrinks" true
    (List.assoc Cocheck_sim.Metrics.Lost_work r1.Simulator.by_kind
    < List.assoc Cocheck_sim.Metrics.Lost_work r0.Simulator.by_kind)

let test_multilevel_hard_failures_unhelped () =
  (* soft_fraction = 0: the local level is pure overhead. *)
  let _, w0 = run_ml () in
  let r1, w1 = run_ml ~multilevel:(ml_spec ~soft:0.0 ()) () in
  Alcotest.(check bool) "snapshots still taken" true
    (List.assoc Cocheck_sim.Metrics.Local_ckpt r1.Simulator.by_kind > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "no benefit, some overhead: %.3f vs %.3f" w1 w0)
    true
    (w1 >= w0 -. 0.02)

let test_multilevel_conservation () =
  let r, _ = run_ml ~multilevel:(ml_spec ~soft:0.5 ()) () in
  Alcotest.(check bool) "progress+waste=enrolled under two-level" true
    (Numerics.fequal ~eps:1e-6 (r.Simulator.progress_ns +. r.waste_ns) r.enrolled_ns)

let test_multilevel_deterministic () =
  let ra, wa = run_ml ~multilevel:(ml_spec ~soft:0.5 ()) () in
  let rb, wb = run_ml ~multilevel:(ml_spec ~soft:0.5 ()) () in
  checkf "waste identical" ~eps:0.0 wa wb;
  Alcotest.(check int) "events identical" ra.Simulator.events rb.Simulator.events

let test_multilevel_validation () =
  let platform =
    Platform.make ~name:"tiny" ~nodes:8 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
      ~node_mtbf_s:(Units.years 1.0)
  in
  let rejected multilevel =
    match
      Config.make ~platform ~classes:[ tiny_class ] ~strategy:Strategy.Least_waste
        ~multilevel ()
    with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero period rejected" true
    (rejected
       (Config.local_level ~period_s:0.0 ~cost_s:1.0 ~recovery_s:5.0 ~soft_fraction:0.5));
  Alcotest.(check bool) "bad survival rejected" true
    (rejected
       (Config.local_level ~period_s:120.0 ~cost_s:1.0 ~recovery_s:5.0 ~soft_fraction:1.5));
  Alcotest.(check bool) "buffer before snapshot rejected" true
    (rejected
       {
         Config.levels =
           [
             Config.Buffer
               {
                 Config.bl_capacity_gb = 100.0;
                 bl_bandwidth_gbs = 10.0;
                 bl_flush_gbs = None;
                 bl_survival = 1.0;
               };
             Config.Snapshot
               {
                 Config.sl_period_s = 120.0;
                 sl_cost_s = 1.0;
                 sl_recovery_s = 5.0;
                 sl_survival = 0.5;
               };
           ];
       });
  Alcotest.(check bool) "buffer level exclusive with burst_buffer" true
    (match
       Config.make ~platform ~classes:[ tiny_class ] ~strategy:Strategy.Least_waste
         ~burst_buffer:{ Burst_buffer.capacity_gb = 64.0; bandwidth_gbs = 8.0 }
         ~multilevel:
           {
             Config.levels =
               [
                 Config.Buffer
                   {
                     Config.bl_capacity_gb = 100.0;
                     bl_bandwidth_gbs = 10.0;
                     bl_flush_gbs = None;
                     bl_survival = 1.0;
                   };
               ];
           }
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_ring_buffer () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t { Trace.time = float_of_int i; job = i; inst = i; kind = Trace.Input_done }
  done;
  Alcotest.(check int) "keeps capacity" 3 (Trace.length t);
  Alcotest.(check int) "dropped two" 2 (Trace.dropped t);
  Alcotest.(check (list int)) "keeps most recent" [ 3; 4; 5 ]
    (List.map (fun e -> e.Trace.job) (Trace.events t))

let trace_of_run ?(strategy = Strategy.Ordered_nb (Strategy.Fixed 600.0))
    ?(with_failures = false) () =
  let platform =
    Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
      ~node_mtbf_s:(Units.years (if with_failures then 0.01 else 2.0))
  in
  let cfg =
    Config.make ~platform ~classes:[ tiny_class ] ~strategy ~seed:6 ~days:1.0
      ~with_failures ()
  in
  let trace = Trace.create () in
  let r = Simulator.run ~trace cfg in
  (r, trace)

let test_trace_counts_match_result () =
  let r, trace = trace_of_run () in
  let count f = List.length (Trace.of_kind trace ~f) in
  Alcotest.(check int) "commits traced" r.Simulator.ckpts_committed
    (count (function Trace.Ckpt_committed _ -> true | _ -> false));
  Alcotest.(check int) "starts traced" r.jobs_started
    (count (function Trace.Job_started _ -> true | _ -> false));
  Alcotest.(check int) "completions traced" r.jobs_completed
    (count (function Trace.Job_completed -> true | _ -> false))

let test_trace_commit_follows_start () =
  (* Protocol invariant per job: every Ckpt_committed is preceded by a
     Ckpt_started with no other commit in between. *)
  let _, trace = trace_of_run () in
  let jobs =
    List.sort_uniq compare (List.map (fun e -> e.Trace.job) (Trace.events trace))
  in
  List.iter
    (fun job ->
      if job >= 0 then begin
        let open_commit = ref false in
        List.iter
          (fun e ->
            match e.Trace.kind with
            | Trace.Ckpt_started -> open_commit := true
            | Trace.Ckpt_committed _ ->
                Alcotest.(check bool) "commit has matching start" true !open_commit;
                open_commit := false
            | _ -> ())
          (Trace.for_job trace ~job)
      end)
    jobs

let test_trace_times_monotone () =
  let _, trace = trace_of_run ~with_failures:true () in
  let prev = ref neg_infinity in
  List.iter
    (fun e ->
      Alcotest.(check bool) "non-decreasing times" true (e.Trace.time >= !prev);
      prev := e.Trace.time)
    (Trace.events trace)

let test_trace_failures_traced () =
  let r, trace = trace_of_run ~with_failures:true () in
  let failures =
    Trace.of_kind trace ~f:(function Trace.Node_failure _ -> true | _ -> false)
  in
  Alcotest.(check int) "every failure traced" r.Simulator.failures_seen
    (List.length failures);
  let kills = Trace.of_kind trace ~f:(function Trace.Job_killed _ -> true | _ -> false) in
  Alcotest.(check int) "every kill traced" r.restarts (List.length kills)

let test_trace_dump_renders () =
  let _, trace = trace_of_run () in
  let s = Trace.dump ~limit:50 trace in
  Alcotest.(check bool) "dump nonempty" true (String.length s > 100)

(* ------------------------------------------------------------------ *)
(* Period tradeoff                                                      *)
(* ------------------------------------------------------------------ *)

let test_tradeoff_gamma1_is_daly () =
  let p = Period_tradeoff.evaluate ~ckpt_s:100.0 ~mtbf_s:1e6 ~recovery_s:100.0 ~gamma:1.0 in
  checkf "relative waste 1" ~eps:1e-12 1.0 p.Period_tradeoff.relative_waste;
  checkf "relative pressure 1" ~eps:1e-12 1.0 p.relative_pressure;
  checkf "period is Daly" ~eps:1e-9
    (Cocheck_core.Daly.period ~ckpt_s:100.0 ~mtbf_s:1e6)
    p.period_s

let test_tradeoff_halving_is_cheap () =
  (* The Arunagiri observation, quantified: at the Daly optimum the two
     waste terms are equal (a/gamma + a.gamma with a = C/Pdaly), so halving the
     pressure (gamma = 2) costs exactly (0.5 + 2)/2 - 1 = 25 % relative
     waste when R/mu is negligible — a 2x I/O relief for a quarter more
     (already small) waste. *)
  let cost = Period_tradeoff.pressure_halving_cost ~ckpt_s:100.0 ~mtbf_s:1e8 ~recovery_s:100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "halving cost %.3f ~ 0.25" cost)
    true
    (cost > 0.2 && cost < 0.26)

let test_tradeoff_waste_increases_past_one =
  QCheck.Test.make ~name:"waste_increases_for_gamma>1" ~count:200
    QCheck.(pair (float_range 1.0 50.0) (float_range 1.0 50.0))
    (fun (g1, g2) ->
      let lo = Float.min g1 g2 and hi = Float.max g1 g2 in
      let w g =
        (Period_tradeoff.evaluate ~ckpt_s:50.0 ~mtbf_s:1e7 ~recovery_s:50.0 ~gamma:g)
          .Period_tradeoff.waste
      in
      w lo <= w hi +. 1e-12)

let test_tradeoff_max_gamma () =
  let g =
    Period_tradeoff.max_gamma_within ~ckpt_s:100.0 ~mtbf_s:1e7 ~recovery_s:100.0
      ~budget:0.125
  in
  Alcotest.(check bool) (Printf.sprintf "gamma %.2f in (1.5, 3)" g) true (g > 1.5 && g < 3.0);
  (* And the waste at that gamma indeed sits at the budget ceiling. *)
  let p = Period_tradeoff.evaluate ~ckpt_s:100.0 ~mtbf_s:1e7 ~recovery_s:100.0 ~gamma:g in
  checkf "budget binding" ~eps:1e-6 1.125 p.Period_tradeoff.relative_waste

let test_tradeoff_zero_budget () =
  checkf "budget 0 pins gamma 1" 1.0
    (Period_tradeoff.max_gamma_within ~ckpt_s:10.0 ~mtbf_s:1e6 ~recovery_s:10.0 ~budget:0.0)

(* ------------------------------------------------------------------ *)
(* Confidence intervals                                                 *)
(* ------------------------------------------------------------------ *)

let test_ci_contains_true_mean () =
  (* 95% CI over exponential samples: check the half-width formula and
     coverage loosely with a fixed seed. *)
  let rng = Rng.create ~seed:8 in
  let xs = Array.init 400 (fun _ -> Cocheck_util.Dist.exponential rng ~mean:5.0) in
  let mean, half = Stats.mean_ci xs in
  Alcotest.(check bool)
    (Printf.sprintf "CI [%.2f +/- %.2f] contains 5" mean half)
    true
    (mean -. half <= 5.0 && 5.0 <= mean +. half)

let test_ci_width_shrinks () =
  let rng = Rng.create ~seed:9 in
  let xs n = Array.init n (fun _ -> Cocheck_util.Dist.normal rng ~mean:0.0 ~stddev:1.0) in
  let _, h_small = Stats.mean_ci (xs 50) in
  let _, h_big = Stats.mean_ci (xs 5000) in
  Alcotest.(check bool) "more samples, tighter CI" true (h_big < h_small)

let test_ci_confidence_ordering () =
  let xs = Array.init 100 float_of_int in
  let _, h90 = Stats.mean_ci ~confidence:0.90 xs in
  let _, h99 = Stats.mean_ci ~confidence:0.99 xs in
  Alcotest.(check bool) "99% wider than 90%" true (h99 > h90)

let test_ci_validation () =
  Alcotest.(check bool) "singleton rejected" true
    (match Stats.mean_ci [| 1.0 |] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "weird confidence rejected" true
    (match Stats.mean_ci ~confidence:0.5 [| 1.0; 2.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.extensions"
    [
      ( "gamma",
        [
          Alcotest.test_case "known values" `Quick test_gamma_known_values;
          Alcotest.test_case "invalid" `Quick test_gamma_invalid;
        ]
        @ qsuite [ test_gamma_recurrence ] );
      ( "failure-distributions",
        [
          Alcotest.test_case "weibull mean-matched" `Quick test_weibull_mean_matched;
          Alcotest.test_case "lognormal mean-matched" `Quick test_lognormal_mean_matched;
          Alcotest.test_case "weibull clusters" `Quick test_weibull_clusters;
          Alcotest.test_case "invalid shape" `Quick test_weibull_invalid_shape;
          Alcotest.test_case "names" `Quick test_distribution_names;
        ] );
      ( "degraded-interference",
        [
          Alcotest.test_case "two flows degraded" `Quick test_degraded_two_flows;
          Alcotest.test_case "lone flow full speed" `Quick test_degraded_single_flow_full_speed;
          Alcotest.test_case "alpha 0 = linear" `Quick test_degraded_zero_alpha_is_linear;
          Alcotest.test_case "hurts oblivious end-to-end" `Quick test_degraded_simulation_worse;
        ] );
      ( "burst-buffer",
        [
          Alcotest.test_case "fast commit" `Quick test_bb_write_fast_commit;
          Alcotest.test_case "capacity lifecycle" `Quick test_bb_capacity_reserved_and_drained;
          Alcotest.test_case "oversized write spills" `Quick test_bb_write_does_not_fit_spills;
          Alcotest.test_case "residency lifecycle" `Quick test_bb_residency_lifecycle;
          Alcotest.test_case "resident while draining" `Quick test_bb_resident_while_draining;
          Alcotest.test_case "abort releases space" `Quick test_bb_abort_releases_reservation;
          Alcotest.test_case "read requires residency" `Quick test_bb_read_requires_residency;
          Alcotest.test_case "drains serialize" `Quick test_bb_drains_serialize;
          Alcotest.test_case "reduces waste end-to-end" `Quick test_bb_simulation_reduces_waste;
          Alcotest.test_case "spills when small" `Quick test_bb_simulation_spills_when_small;
          Alcotest.test_case "conservation with BB" `Quick test_bb_conservation_still_holds;
        ] );
      ( "two-level",
        [
          Alcotest.test_case "p=0 is Daly" `Quick test_two_level_p0_is_daly;
          Alcotest.test_case "period formulas" `Quick test_two_level_periods_formula;
          Alcotest.test_case "worthwhile" `Quick test_two_level_worthwhile;
          Alcotest.test_case "validation" `Quick test_two_level_validation;
          Alcotest.test_case "sim: soft failures helped" `Quick
            test_multilevel_reduces_waste_under_soft_failures;
          Alcotest.test_case "sim: hard failures unhelped" `Quick
            test_multilevel_hard_failures_unhelped;
          Alcotest.test_case "sim: conservation" `Quick test_multilevel_conservation;
          Alcotest.test_case "sim: deterministic" `Quick test_multilevel_deterministic;
          Alcotest.test_case "config validation" `Quick test_multilevel_validation;
        ]
        @ qsuite [ test_two_level_optimum_is_min ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer;
          Alcotest.test_case "counts match result" `Quick test_trace_counts_match_result;
          Alcotest.test_case "commit follows start" `Quick test_trace_commit_follows_start;
          Alcotest.test_case "times monotone" `Quick test_trace_times_monotone;
          Alcotest.test_case "failures traced" `Quick test_trace_failures_traced;
          Alcotest.test_case "dump renders" `Quick test_trace_dump_renders;
        ] );
      ( "period-tradeoff",
        [
          Alcotest.test_case "gamma 1 is Daly" `Quick test_tradeoff_gamma1_is_daly;
          Alcotest.test_case "halving pressure is cheap" `Quick test_tradeoff_halving_is_cheap;
          Alcotest.test_case "max gamma within budget" `Quick test_tradeoff_max_gamma;
          Alcotest.test_case "zero budget" `Quick test_tradeoff_zero_budget;
        ]
        @ qsuite [ test_tradeoff_waste_increases_past_one ] );
      ( "confidence-intervals",
        [
          Alcotest.test_case "contains true mean" `Quick test_ci_contains_true_mean;
          Alcotest.test_case "width shrinks with n" `Quick test_ci_width_shrinks;
          Alcotest.test_case "confidence ordering" `Quick test_ci_confidence_ordering;
          Alcotest.test_case "validation" `Quick test_ci_validation;
        ] );
    ]
