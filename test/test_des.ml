(* Tests for the discrete-event engine: clock semantics, ordering,
   cancellation, and run-until behaviour. *)

module Engine = Cocheck_des.Engine

let checkf msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_clock_starts_at_start () =
  let e = Engine.create ~start:5.0 () in
  checkf "initial clock" 5.0 (Engine.now e)

let test_events_fire_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag = fun eng -> log := (tag, Engine.now eng) :: !log in
  ignore (Engine.schedule_at e ~time:3.0 (note "c"));
  ignore (Engine.schedule_at e ~time:1.0 (note "a"));
  ignore (Engine.schedule_at e ~time:2.0 (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev_map fst !log)

let test_ties_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Engine.schedule_at e ~time:1.0 (fun _ -> log := tag :: !log)))
    [ "first"; "second"; "third" ];
  Engine.run e;
  Alcotest.(check (list string)) "FIFO among equal times" [ "first"; "second"; "third" ]
    (List.rev !log)

let test_clock_advances_with_events () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule_at e ~time:1.5 (fun eng -> seen := Engine.now eng :: !seen));
  ignore (Engine.schedule_at e ~time:4.5 (fun eng -> seen := Engine.now eng :: !seen));
  Engine.run e;
  Alcotest.(check (list (float 0.0))) "handler sees event time" [ 1.5; 4.5 ] (List.rev !seen)

let test_schedule_from_handler () =
  let e = Engine.create () in
  let fired = ref 0.0 in
  ignore
    (Engine.schedule_at e ~time:1.0 (fun eng ->
         ignore (Engine.schedule_after eng ~delay:2.0 (fun eng' -> fired := Engine.now eng'))));
  Engine.run e;
  checkf "chained event at 3" 3.0 !fired

let test_schedule_in_past_rejected () =
  let e = Engine.create ~start:10.0 () in
  Alcotest.(check bool) "past rejected" true
    (match Engine.schedule_at e ~time:5.0 (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Engine.schedule_after e ~delay:(-1.0) (fun _ -> ())))

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e ~time:1.0 (fun _ -> fired := true) in
  Alcotest.(check bool) "pending before" true (Engine.pending e h);
  Alcotest.(check bool) "cancel succeeds" true (Engine.cancel e h);
  Alcotest.(check bool) "cancel idempotent" false (Engine.cancel e h);
  Engine.run e;
  Alcotest.(check bool) "cancelled event never fires" false !fired

let test_cancel_after_fire () =
  let e = Engine.create () in
  let h = Engine.schedule_at e ~time:1.0 (fun _ -> ()) in
  Engine.run e;
  Alcotest.(check bool) "cancel after fire is false" false (Engine.cancel e h)

let test_time_of () =
  let e = Engine.create () in
  let h = Engine.schedule_at e ~time:7.25 (fun _ -> ()) in
  Alcotest.(check (option (float 0.0))) "time of pending" (Some 7.25) (Engine.time_of e h);
  Engine.run e;
  Alcotest.(check (option (float 0.0))) "time of fired" None (Engine.time_of e h)

let test_run_until_stops_and_advances_clock () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_at e ~time:1.0 (fun _ -> fired := 1.0 :: !fired));
  ignore (Engine.schedule_at e ~time:5.0 (fun _ -> fired := 5.0 :: !fired));
  Engine.run ~until:3.0 e;
  Alcotest.(check (list (float 0.0))) "only early event" [ 1.0 ] !fired;
  checkf "clock moved to horizon" 3.0 (Engine.now e);
  Alcotest.(check int) "late event still queued" 1 (Engine.queue_length e);
  Engine.run e;
  Alcotest.(check (list (float 0.0))) "late event after resume" [ 5.0; 1.0 ] !fired

let test_run_until_inclusive () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule_at e ~time:3.0 (fun _ -> fired := true));
  Engine.run ~until:3.0 e;
  Alcotest.(check bool) "event at horizon fires" true !fired

let test_step () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:1.0 (fun _ -> ()));
  Alcotest.(check bool) "step processes" true (Engine.step e);
  Alcotest.(check bool) "step on empty" false (Engine.step e)

let test_events_processed_counter () =
  let e = Engine.create () in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e ~time:(float_of_int i) (fun _ -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "10 events" 10 (Engine.events_processed e)

let test_cancellation_inside_handler () =
  (* A handler cancelling a later event must prevent it from firing. *)
  let e = Engine.create () in
  let fired = ref false in
  let victim = Engine.schedule_at e ~time:2.0 (fun _ -> fired := true) in
  ignore (Engine.schedule_at e ~time:1.0 (fun eng -> ignore (Engine.cancel eng victim)));
  Engine.run e;
  Alcotest.(check bool) "victim cancelled" false !fired

let test_reschedule_reorders_firing () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag = fun _ -> log := tag :: !log in
  let h = Engine.schedule_at e ~time:5.0 (note "moved") in
  ignore (Engine.schedule_at e ~time:2.0 (note "fixed"));
  Alcotest.(check bool) "retime pending" true (Engine.reschedule e h ~time:1.0);
  Alcotest.(check (option (float 0.0))) "time_of reflects retime" (Some 1.0)
    (Engine.time_of e h);
  Engine.run e;
  Alcotest.(check (list string)) "moved event now fires first" [ "moved"; "fixed" ]
    (List.rev !log)

let test_reschedule_dead_handles () =
  let e = Engine.create () in
  let fired = Engine.schedule_at e ~time:1.0 (fun _ -> ()) in
  let cancelled = Engine.schedule_at e ~time:2.0 (fun _ -> ()) in
  ignore (Engine.cancel e cancelled);
  Engine.run e;
  Alcotest.(check bool) "fired handle is false" false (Engine.reschedule e fired ~time:9.0);
  Alcotest.(check bool) "cancelled handle is false" false
    (Engine.reschedule e cancelled ~time:9.0)

let test_cancel_during_own_fire () =
  (* The firing event has already left the calendar: a self-cancel from
     inside its handler must report false and leave later events intact. *)
  let e = Engine.create () in
  let h = ref Engine.none in
  let self_cancel = ref true and later = ref false in
  h :=
    Engine.schedule_at e ~time:1.0 (fun eng -> self_cancel := Engine.cancel eng !h);
  ignore (Engine.schedule_at e ~time:2.0 (fun _ -> later := true));
  Engine.run e;
  Alcotest.(check bool) "self-cancel during fire is false" false !self_cancel;
  Alcotest.(check bool) "later event unharmed" true !later

let test_stale_handle_does_not_alias_reused_slot () =
  (* After an event fires its calendar slot is recycled; the generation tag
     must keep the stale handle from cancelling the slot's next tenant. *)
  let e = Engine.create () in
  let stale = Engine.schedule_at e ~time:1.0 (fun _ -> ()) in
  Engine.run e;
  let fired = ref false in
  ignore (Engine.schedule_at e ~time:2.0 (fun _ -> fired := true));
  Alcotest.(check bool) "stale pending is false" false (Engine.pending e stale);
  Alcotest.(check bool) "stale cancel is false" false (Engine.cancel e stale);
  Engine.run e;
  Alcotest.(check bool) "new tenant still fires" true !fired

let test_reschedule_equal_time_keeps_fifo () =
  (* Retiming onto the current time reports success without re-sifting, so
     the add-time seq — and with it the FIFO tie-break — must survive. *)
  let e = Engine.create () in
  let log = ref [] in
  let note tag = fun _ -> log := tag :: !log in
  let h = Engine.schedule_at e ~time:1.0 (note "first") in
  ignore (Engine.schedule_at e ~time:1.0 (note "second"));
  Alcotest.(check bool) "equal-time retime succeeds" true (Engine.reschedule e h ~time:1.0);
  Alcotest.(check (option (float 0.0))) "time unchanged" (Some 1.0) (Engine.time_of e h);
  Engine.run e;
  Alcotest.(check (list string)) "seq tie-break survives" [ "first"; "second" ]
    (List.rev !log)

let test_reschedule_past_rejected () =
  let e = Engine.create ~start:10.0 () in
  let h = Engine.schedule_at e ~time:12.0 (fun _ -> ()) in
  Alcotest.(check bool) "past retime raises" true
    (match Engine.reschedule e h ~time:5.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_stats_counts_by_kind () =
  let e = Engine.create () in
  let st = Engine.attach_stats e ~kinds:[| "other"; "alpha"; "beta" |] () in
  ignore (Engine.schedule_at e ~kind:1 ~time:1.0 (fun _ -> ()));
  ignore (Engine.schedule_at e ~kind:1 ~time:2.0 (fun _ -> ()));
  ignore (Engine.schedule_at e ~kind:2 ~time:3.0 (fun _ -> ()));
  let victim = Engine.schedule_at e ~kind:2 ~time:4.0 (fun _ -> ()) in
  ignore (Engine.cancel e victim);
  Engine.run e;
  Alcotest.(check int) "scheduled" 4 (Engine.stats_scheduled st);
  Alcotest.(check int) "fired" 3 (Engine.stats_fired st);
  Alcotest.(check int) "cancelled" 1 (Engine.stats_cancelled st);
  Alcotest.(check (list (triple string int int)))
    "per kind (scheduled, fired)"
    [ ("other", 0, 0); ("alpha", 2, 2); ("beta", 2, 1) ]
    (List.map
       (fun (k, s, f, _) -> (k, s, f))
       (Engine.stats_by_kind st))

let test_stats_unknown_kind_folds_to_other () =
  let e = Engine.create () in
  let st = Engine.attach_stats e ~kinds:[| "other"; "known" |] () in
  ignore (Engine.schedule_at e ~kind:99 ~time:1.0 (fun _ -> ()));
  Engine.run e;
  match Engine.stats_by_kind st with
  | (k0, s0, f0, _) :: _ ->
      Alcotest.(check string) "slot 0" "other" k0;
      Alcotest.(check int) "scheduled folded" 1 s0;
      Alcotest.(check int) "fired folded" 1 f0
  | [] -> Alcotest.fail "no kinds"

let test_stats_negative_kind_folds_to_other () =
  (* Negative kinds are as out-of-range as large ones: all three counters
     (scheduled, fired, cancelled) must fold into slot 0. *)
  let e = Engine.create () in
  let st = Engine.attach_stats e ~kinds:[| "other"; "known" |] () in
  ignore (Engine.schedule_at e ~kind:(-5) ~time:1.0 (fun _ -> ()));
  let victim = Engine.schedule_at e ~kind:(-1) ~time:2.0 (fun _ -> ()) in
  ignore (Engine.cancel e victim);
  Engine.run e;
  match Engine.stats_by_kind st with
  | (k0, s0, f0, c0) :: rest ->
      Alcotest.(check string) "slot 0" "other" k0;
      Alcotest.(check int) "scheduled folded" 2 s0;
      Alcotest.(check int) "fired folded" 1 f0;
      Alcotest.(check int) "cancelled folded" 1 c0;
      List.iter
        (fun (_, s, f, c) -> Alcotest.(check int) "no spill" 0 (s + f + c))
        rest
  | [] -> Alcotest.fail "no kinds"

let test_stats_reschedule_counted () =
  let e = Engine.create () in
  let st = Engine.attach_stats e ~kinds:[| "other" |] () in
  let h = Engine.schedule_at e ~time:5.0 (fun _ -> ()) in
  ignore (Engine.reschedule e h ~time:1.0);
  Engine.run e;
  Alcotest.(check int) "rescheduled" 1 (Engine.stats_rescheduled st);
  Alcotest.(check int) "fired once" 1 (Engine.stats_fired st)

let test_stats_tick_hook_cadence () =
  let e = Engine.create () in
  let ticks = ref 0 in
  let _st =
    Engine.attach_stats e ~kinds:[| "other" |] ~tick_every:3
      ~on_tick:(fun _ -> incr ticks)
      ()
  in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e ~time:(float_of_int i) (fun _ -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "tick every 3 of 10 fires" 3 !ticks

let test_stats_absent_by_default () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~kind:3 ~time:1.0 (fun _ -> ()));
  Engine.run e;
  Alcotest.(check bool) "no stats unless attached" true (Engine.stats e = None)

let test_stress_many_events =
  QCheck.Test.make ~name:"engine_processes_all_events_in_order" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 500) (float_range 0.0 1e6))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter
        (fun t -> ignore (Engine.schedule_at e ~time:t (fun eng -> seen := Engine.now eng :: !seen)))
        times;
      Engine.run e;
      List.rev !seen = List.sort compare times)

let () =
  Alcotest.run "cocheck.des"
    [
      ( "engine",
        [
          Alcotest.test_case "initial clock" `Quick test_clock_starts_at_start;
          Alcotest.test_case "time order" `Quick test_events_fire_in_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_ties_fifo;
          Alcotest.test_case "clock tracks events" `Quick test_clock_advances_with_events;
          Alcotest.test_case "schedule from handler" `Quick test_schedule_from_handler;
          Alcotest.test_case "past rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire;
          Alcotest.test_case "time_of" `Quick test_time_of;
          Alcotest.test_case "run until" `Quick test_run_until_stops_and_advances_clock;
          Alcotest.test_case "run until inclusive" `Quick test_run_until_inclusive;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "events counter" `Quick test_events_processed_counter;
          Alcotest.test_case "cancel from handler" `Quick test_cancellation_inside_handler;
          Alcotest.test_case "reschedule reorders" `Quick test_reschedule_reorders_firing;
          Alcotest.test_case "reschedule dead handles" `Quick test_reschedule_dead_handles;
          Alcotest.test_case "reschedule past rejected" `Quick test_reschedule_past_rejected;
          Alcotest.test_case "cancel during own fire" `Quick test_cancel_during_own_fire;
          Alcotest.test_case "stale handle vs reused slot" `Quick
            test_stale_handle_does_not_alias_reused_slot;
          Alcotest.test_case "reschedule equal time keeps FIFO" `Quick
            test_reschedule_equal_time_keeps_fifo;
        ]
        @ [ QCheck_alcotest.to_alcotest ~long:false test_stress_many_events ] );
      ( "stats",
        [
          Alcotest.test_case "counts by kind" `Quick test_stats_counts_by_kind;
          Alcotest.test_case "unknown kind folds" `Quick test_stats_unknown_kind_folds_to_other;
          Alcotest.test_case "negative kind folds" `Quick test_stats_negative_kind_folds_to_other;
          Alcotest.test_case "reschedule counted" `Quick test_stats_reschedule_counted;
          Alcotest.test_case "tick cadence" `Quick test_stats_tick_hook_cadence;
          Alcotest.test_case "absent by default" `Quick test_stats_absent_by_default;
        ] );
    ]
