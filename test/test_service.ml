(* Tests for the campaign service: protocol round-trips, concurrent
   clients against a cold store producing bit-identical records to a
   sequential run, a fully warm pass with zero simulations, admission
   backpressure (overload reply), pool tenant fairness, and clean
   shutdown. *)

module Pool = Cocheck_parallel.Pool
module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Strategy = Cocheck_core.Strategy
module Units = Cocheck_util.Units
module Json = Cocheck_obs.Json
module Wire = Cocheck_obs.Wire
module E = Cocheck_experiments

let tiny_platform ?(bandwidth = 1.0) ?(mtbf_years = 0.1) () =
  Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:bandwidth
    ~node_mtbf_s:(Units.years mtbf_years)

let tiny_class =
  App_class.make ~name:"toy" ~workload_pct:100.0 ~walltime_s:(Units.hours 2.0) ~nodes:16
    ~input_pct:10.0 ~output_pct:10.0 ~ckpt_pct:50.0 ()

let tiny_spec ?(name = "serve") ?(reps = 2) ?(days = 0.5) () =
  E.Spec.make ~name ~platform:(tiny_platform ()) ~classes:[ tiny_class ]
    ~strategies:[ Strategy.Least_waste; Strategy.Ordered_nb Strategy.Daly ]
    ~axis:(E.Spec.Bandwidth_gbs [ 1.0; 2.0 ]) ~reps ~seed:3 ~days ()

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "cocheck-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* An in-process daemon on a temp Unix socket (short path: the OS caps
   socket paths at ~107 bytes). Yields the socket path plus the pool and
   store so tests can wedge the former and inspect the latter. *)
let with_service ?max_inflight ?(num_domains = 2) f =
  Pool.with_pool ~num_domains (fun pool ->
      with_temp_dir (fun dir ->
          let store = E.Store.open_ dir in
          let sock = Filename.temp_file "cocheck" ".sock" in
          Sys.remove sock;
          let listener = E.Service.listen_unix sock in
          let srv = E.Service.create ?max_inflight ~pool ~store listener in
          let th = Thread.create E.Service.run srv in
          Fun.protect
            ~finally:(fun () ->
              E.Service.stop srv;
              Thread.join th;
              if Sys.file_exists sock then Sys.remove sock)
            (fun () -> f ~sock ~pool ~store)))

let request ?on_progress sock req =
  let conn = E.Service.Client.connect_unix sock in
  Fun.protect
    ~finally:(fun () -> E.Service.Client.close conn)
    (fun () -> E.Service.Client.request ?on_progress conn req)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                 *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let spec = tiny_spec () in
  let platform = tiny_platform () in
  let requests =
    [
      E.Protocol.Ping;
      E.Protocol.Stats;
      E.Protocol.Shutdown;
      E.Protocol.Campaign { spec; progress = true };
      E.Protocol.Status { spec };
      E.Protocol.Bound { platform };
      E.Protocol.Waste { platform };
    ]
  in
  List.iteri
    (fun i req ->
      match E.Protocol.request_of_json (E.Protocol.request_to_json ~id:(i + 1) req) with
      | Ok (id, req') ->
          Alcotest.(check int) "request id round-trips" (i + 1) id;
          Alcotest.(check bool) "request round-trips" true (req = req')
      | Result.Error e -> Alcotest.failf "request %d failed to round-trip: %s" i e)
    requests;
  let responses =
    [
      E.Protocol.Pong;
      E.Protocol.Bye;
      E.Protocol.Overload { inflight = 512; limit = 256 };
      E.Protocol.Error "boom";
      E.Protocol.Progress
        (E.Runner.Point
           {
             seq = 3;
             elapsed_s = 0.5;
             cell = 1;
             x = Some 2.0;
             rep = 0;
             strategy = "Least-Waste";
             source = `Cached;
             done_points = 3;
             total_points = 8;
           });
      E.Protocol.Campaign_result
        {
          elapsed_s = 1.5;
          simulated = 4;
          baselines = 2;
          loaded = 4;
          total_points = 8;
          cells =
            [
              {
                E.Protocol.x = Some 1.0;
                strategy = "Least-Waste";
                mean = 0.2;
                median = 0.19;
                q1 = 0.18;
                q3 = 0.21;
              };
            ];
        };
      E.Protocol.Status_result { total = 8; cached = 3; missing = 5 };
      E.Protocol.Bound_result { waste = 0.2; lambda = 1e-6; io_fraction = 0.6 };
      E.Protocol.Waste_result { waste = 0.2 };
      E.Protocol.Stats_result
        {
          store =
            { E.Store.hits = 1; misses = 2; loads = 3; writes = 4; evictions = 5; migrated = 6 };
          indexed = 7;
          inflight = 8;
          served = 9;
        };
    ]
  in
  List.iteri
    (fun i resp ->
      (* Through the string form too: exactly what crosses the socket. *)
      let j =
        match Json.of_string (Json.to_string (E.Protocol.response_to_json ~id:(i + 1) resp)) with
        | Ok j -> j
        | Result.Error e -> Alcotest.failf "response %d does not re-parse: %s" i e
      in
      match E.Protocol.response_of_json j with
      | Ok (id, resp') ->
          Alcotest.(check int) "response id round-trips" (i + 1) id;
          Alcotest.(check bool) "response round-trips" true (resp = resp')
      | Result.Error e -> Alcotest.failf "response %d failed to round-trip: %s" i e)
    responses

(* ------------------------------------------------------------------ *)
(* Serving                                                              *)
(* ------------------------------------------------------------------ *)

let test_ping_stats_error () =
  with_service (fun ~sock ~pool:_ ~store:_ ->
      (match request sock E.Protocol.Ping with
      | E.Protocol.Pong -> ()
      | _ -> Alcotest.fail "ping did not pong");
      (match request sock E.Protocol.Stats with
      | E.Protocol.Stats_result { inflight = 0; _ } -> ()
      | _ -> Alcotest.fail "stats did not report an idle server");
      (* A malformed frame gets an error reply, not a closed connection. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let w = Wire.of_fd fd in
      Fun.protect
        ~finally:(fun () -> Wire.close w)
        (fun () ->
          Wire.send w (Json.Obj [ ("id", Json.Int 5); ("op", Json.String "nope") ]);
          (match Wire.recv w with
          | Some (Ok j) -> (
              match E.Protocol.response_of_json j with
              | Ok (_, E.Protocol.Error _) -> ()
              | _ -> Alcotest.fail "unknown op should get an error reply")
          | _ -> Alcotest.fail "no reply to a malformed frame");
          (* The connection survives: a good request still works. *)
          Wire.send w (E.Protocol.request_to_json ~id:6 E.Protocol.Ping);
          match Wire.recv w with
          | Some (Ok j) -> (
              match E.Protocol.response_of_json j with
              | Ok (6, E.Protocol.Pong) -> ()
              | _ -> Alcotest.fail "connection unusable after an error reply")
          | _ -> Alcotest.fail "connection closed after an error reply"))

let test_concurrent_cold_then_warm_bit_identical () =
  let spec = tiny_spec () in
  (* The reference: the same campaign run sequentially into its own store. *)
  with_temp_dir (fun seq_dir ->
      let seq_store = E.Store.open_ seq_dir in
      Pool.with_pool ~num_domains:0 (fun pool ->
          ignore (E.Runner.run ~pool ~store:seq_store spec));
      with_service (fun ~sock ~pool:_ ~store ->
          (* Four clients race the same campaign on a cold store. *)
          let results = Array.make 4 None in
          let threads =
            Array.init 4 (fun i ->
                Thread.create
                  (fun i ->
                    results.(i) <- Some (request sock (E.Protocol.Campaign { spec; progress = false })))
                  i)
          in
          Array.iter Thread.join threads;
          let total_simulated = ref 0 in
          Array.iter
            (fun r ->
              match r with
              | Some (E.Protocol.Campaign_result { simulated; total_points; _ }) ->
                  total_simulated := !total_simulated + simulated;
                  Alcotest.(check int) "every client sees the full grid" 8 total_points
              | Some (E.Protocol.Error e) -> Alcotest.failf "client failed: %s" e
              | _ -> Alcotest.fail "client got no campaign result")
            results;
          Alcotest.(check bool) "the grid was simulated at least once" true
            (!total_simulated >= 8);
          Alcotest.(check int) "one record per point survives the race" 8
            (E.Store.record_count store);
          (* Bit-identity: concurrent clients must leave byte-for-byte the
             records a sequential run produces. *)
          E.Store.iter_keys seq_store (fun key ->
              Alcotest.(check string)
                (Printf.sprintf "record %s is bit-identical" key)
                (read_file (E.Store.path_of_key seq_store key))
                (read_file (E.Store.path_of_key store key)));
          (* Fully warm pass: answered from the store, zero simulations,
             with progress frames streamed per point. *)
          let points = ref 0 in
          let on_progress = function E.Runner.Point _ -> incr points | E.Runner.Finished _ -> () in
          match request ~on_progress sock (E.Protocol.Campaign { spec; progress = true }) with
          | E.Protocol.Campaign_result { simulated; baselines; loaded; _ } ->
              Alcotest.(check int) "warm pass simulates nothing" 0 simulated;
              Alcotest.(check int) "warm pass runs no baselines" 0 baselines;
              Alcotest.(check int) "warm pass loads every point" 8 loaded;
              Alcotest.(check int) "one progress frame per point" 8 !points
          | _ -> Alcotest.fail "warm pass got no campaign result"))

let test_overload_backpressure () =
  (* One worker domain, wedged: an admitted campaign cannot finish, so a
     second client must hit the admission bound deterministically. *)
  with_service ~max_inflight:1 ~num_domains:1 (fun ~sock ~pool ~store:_ ->
      let gate = Mutex.create () in
      Mutex.lock gate;
      let wedge = Pool.async pool (fun () -> Mutex.lock gate; Mutex.unlock gate) in
      let spec = tiny_spec () in
      let first = ref E.Protocol.Pong in
      let th =
        Thread.create
          (fun () -> first := request sock (E.Protocol.Campaign { spec; progress = false }))
          ()
      in
      (* Give the first client time to be admitted (admission happens
         before any simulation; the wedge only blocks completion). *)
      let rec await_admission tries =
        match request sock E.Protocol.Stats with
        | E.Protocol.Stats_result { inflight; _ } when inflight > 0 -> ()
        | _ when tries > 0 ->
            Thread.delay 0.02;
            await_admission (tries - 1)
        | _ -> Alcotest.fail "first campaign never admitted"
      in
      await_admission 250;
      (match request sock (E.Protocol.Campaign { spec; progress = false }) with
      | E.Protocol.Overload { inflight; limit } ->
          Alcotest.(check int) "overload reports the admission bound" 1 limit;
          Alcotest.(check bool) "overload reports the backlog" true (inflight >= 8)
      | _ -> Alcotest.fail "second campaign should be refused while wedged");
      Mutex.unlock gate;
      Pool.await wedge;
      Thread.join th;
      (match !first with
      | E.Protocol.Campaign_result { total_points; _ } ->
          Alcotest.(check int) "wedged campaign still completes" 8 total_points
      | _ -> Alcotest.fail "first campaign did not complete");
      (* Backlog drained: an idle server always admits, even a campaign
         larger than the whole bound. *)
      match request sock (E.Protocol.Campaign { spec; progress = false }) with
      | E.Protocol.Campaign_result { simulated; _ } ->
          Alcotest.(check int) "idle server admits past the bound" 0 simulated
      | _ -> Alcotest.fail "idle server refused a warm campaign")

let test_status_bound_shutdown () =
  let spec = tiny_spec () in
  with_service (fun ~sock ~pool:_ ~store:_ ->
      (match request sock (E.Protocol.Status { spec }) with
      | E.Protocol.Status_result { total = 8; cached = 0; missing = 8 } -> ()
      | _ -> Alcotest.fail "cold status should report everything missing");
      ignore (request sock (E.Protocol.Campaign { spec; progress = false }));
      (match request sock (E.Protocol.Status { spec }) with
      | E.Protocol.Status_result { total = 8; cached = 8; missing = 0 } -> ()
      | _ -> Alcotest.fail "status should see the filled store");
      (match request sock (E.Protocol.Bound { platform = tiny_platform () }) with
      | E.Protocol.Bound_result { waste; _ } ->
          Alcotest.(check bool) "bound waste in (0, 1)" true (waste > 0.0 && waste < 1.0)
      | _ -> Alcotest.fail "bound query failed");
      (match request sock E.Protocol.Shutdown with
      | E.Protocol.Bye -> ()
      | _ -> Alcotest.fail "shutdown should reply bye");
      (* The daemon drains: within a tick, new connections are refused. *)
      let rec await_down tries =
        match E.Service.Client.connect_unix sock with
        | conn ->
            E.Service.Client.close conn;
            if tries = 0 then Alcotest.fail "daemon still accepting after shutdown";
            Thread.delay 0.05;
            await_down (tries - 1)
        | exception Unix.Unix_error _ -> ()
      in
      await_down 100)

(* ------------------------------------------------------------------ *)
(* Pool tenant fairness                                                 *)
(* ------------------------------------------------------------------ *)

let test_tenant_fairness () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      let gate = Mutex.create () in
      Mutex.lock gate;
      (* Wedge the single worker so both tenants' backlogs queue up before
         anything runs — the dispatch order is then deterministic. *)
      let wedge = Pool.async pool (fun () -> Mutex.lock gate; Mutex.unlock gate) in
      let order = ref [] in
      let omutex = Mutex.create () in
      let mark label () =
        Mutex.lock omutex;
        order := label :: !order;
        Mutex.unlock omutex
      in
      let sweep = Pool.tenant pool and interactive = Pool.tenant pool in
      let big = List.init 10 (fun i -> Pool.async ~tenant:sweep pool (mark (Printf.sprintf "sweep%d" i))) in
      let small = Pool.async ~tenant:interactive pool (mark "interactive") in
      Mutex.unlock gate;
      Pool.await wedge;
      List.iter Pool.await big;
      Pool.await small;
      let order = List.rev !order in
      let pos label = Option.get (List.find_index (String.equal label) order) in
      (* Round-robin: the one-task tenant runs after at most one task of
         the competing sweep, never behind its whole backlog. *)
      Alcotest.(check bool) "interactive task is not behind the sweep backlog" true
        (pos "interactive" <= 1);
      Alcotest.(check int) "sweep tasks stay FIFO among themselves" 0 (pos "sweep0"))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [ Alcotest.test_case "request/response round-trips" `Quick test_protocol_roundtrip ] );
      ( "service",
        [
          Alcotest.test_case "ping, stats, malformed frames" `Quick test_ping_stats_error;
          Alcotest.test_case "concurrent cold clients, bit-identical, warm zero-sim" `Quick
            test_concurrent_cold_then_warm_bit_identical;
          Alcotest.test_case "admission backpressure" `Quick test_overload_backpressure;
          Alcotest.test_case "status, bound, clean shutdown" `Quick test_status_bound_shutdown;
        ] );
      ( "pool",
        [ Alcotest.test_case "tenant fairness round-robin" `Quick test_tenant_fairness ] );
    ]
