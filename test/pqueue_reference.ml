(* Frozen pre-SoA Pqueue, kept verbatim as the differential oracle for
   the struct-of-arrays rewrite (test_pqueue_differential). Record-per-entry
   binary heap: each slot stores its handle; the handle stores the slot
   index back, updated on every swap, so removal by handle is a sift from a
   known position. A dead handle holds [-1]. Do not "improve" this file —
   its value is being the old implementation, byte for byte. *)

type 'a handle = { mutable pos : int }

type 'a entry = {
  priority : float;
  seq : int;
  tag : int;
  value : 'a;
  handle : 'a handle;
}

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let set t i e =
  t.data.(i) <- e;
  e.handle.pos <- i

let swap t i j =
  let ei = t.data.(i) and ej = t.data.(j) in
  set t i ej;
  set t j ei

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* The incoming entry doubles as filler for the unused tail slots, so the
   array never holds a fabricated value. *)
let ensure_capacity t filler =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make new_cap filler in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let add_tagged t ~priority ~tag value =
  let handle = { pos = -1 } in
  let e = { priority; seq = t.next_seq; tag; value; handle } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t e;
  set t t.size e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  handle

let add t ~priority value = add_tagged t ~priority ~tag:0 value

let remove_at t i =
  let e = t.data.(i) in
  e.handle.pos <- -1;
  t.size <- t.size - 1;
  if i < t.size then begin
    set t i t.data.(t.size);
    (* The moved element may need to go either direction. *)
    sift_down t i;
    sift_up t i
  end

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    remove_at t 0;
    Some (e.priority, e.value)
  end

let pop_tagged t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    remove_at t 0;
    Some (e.priority, e.tag, e.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).priority, t.data.(0).value)

let mem t h = h.pos >= 0 && h.pos < t.size && t.data.(h.pos).handle == h

let remove t h =
  if mem t h then begin
    remove_at t h.pos;
    true
  end
  else false

let priority_of t h = if mem t h then Some t.data.(h.pos).priority else None
let tag_of t h = if mem t h then Some t.data.(h.pos).tag else None

let update_priority t h ~priority =
  if mem t h then begin
    let i = h.pos in
    let e = t.data.(i) in
    if priority <> e.priority then begin
      set t i { e with priority };
      if priority < e.priority then sift_up t i else sift_down t i
    end;
    true
  end
  else false

let clear t =
  for i = 0 to t.size - 1 do
    t.data.(i).handle.pos <- -1
  done;
  t.size <- 0

let to_sorted_list t =
  let entries = Array.sub t.data 0 t.size in
  Array.sort (fun a b -> if less a b then -1 else if less b a then 1 else 0) entries;
  Array.to_list (Array.map (fun e -> (e.priority, e.value)) entries)
