(* The arbiter layer in isolation: every policy honors the shared contract
   (arrival order visible, cancelled requests never granted, live counts
   right), and the pool-scanning policies agree with list-based oracles. *)

module T = Cocheck_sim.Sim_types
module Arbiter = Cocheck_sim.Arbiter
module Node_pool = Cocheck_sim.Node_pool
module Io = Cocheck_sim.Io_subsystem
module Jobgen = Cocheck_model.Jobgen
module Candidate = Cocheck_core.Candidate
module Least_waste = Cocheck_core.Least_waste

let mtbf_s = 2.0 *. 365.0 *. 86400.0
let bandwidth_gbs = 40.0
let node_pool = Node_pool.create ~nodes:1_000_000

let mk_inst ~idx ~nodes ~last_commit_end =
  let spec =
    {
      Jobgen.id = idx;
      class_index = 0;
      class_name = "test";
      nodes;
      work_s = 1e6;
      input_gb = 0.0;
      output_gb = 0.0;
      ckpt_gb = 100.0;
      steady_io_gb = 0.0;
    }
  in
  {
    T.idx;
    spec;
    total_work = 1e6;
    entry_has_ckpt = false;
    restarts = 0;
    nodes = Option.get (Node_pool.alloc node_pool ~job:idx ~count:nodes);
    start_time = 0.0;
    period = 3600.0;
    ckpt_nominal = spec.Jobgen.ckpt_gb /. bandwidth_gbs;
    activity = T.Computing_pending;
    work_done = 0.0;
    committed = 0.0;
    has_ckpt = false;
    compute_start = 0.0;
    uncommitted = Cocheck_util.Interval_ledger.create ();
    last_commit_end;
    ckpt_request_ev = T.Engine.none;
    work_done_ev = T.Engine.none;
    wait_start = 0.0;
    ckpt_content = 0.0;
    holds_token = false;
    committed_local = [||];
    local_safe_time = [||];
    local_level = 0;
    local_pause_start = 0.0;
    local_tick_ev = [||];
    local_done_ev = T.Engine.none;
    delay_ev = T.Engine.none;
    cb_work_done = ignore;
    cb_ckpt_request = ignore;
    cb_local_tick = [||];
    cb_local_done = ignore;
    live_slot = -1;
  }

let next_id = ref 0

let mk_request ?(kind = T.Req_ckpt) ?(volume = 100.0) ?(at = 0.0) inst =
  let r_id = !next_id in
  incr next_id;
  {
    T.r_id;
    r_inst = inst;
    r_kind = kind;
    r_volume = volume;
    r_at = at;
    r_cancelled = false;
    r_slot = -1;
  }

let drain ~now (module A : Arbiter.S) =
  let rec go acc =
    match A.select ~now with None -> List.rev acc | Some r -> go (r :: acc)
  in
  go []

let policies ~label =
  [
    (label ^ "/fifo", fun () -> Arbiter.fifo ());
    ( label ^ "/least-waste",
      fun () -> Arbiter.least_waste ~node_mtbf_s:mtbf_s ~bandwidth_gbs () );
    (label ^ "/greedy-exposure", fun () -> Arbiter.greedy_exposure ());
    ( label ^ "/least-waste-reference",
      fun () -> Cocheck_sim.Lw_reference.arbiter ~node_mtbf_s:mtbf_s ~bandwidth_gbs () );
  ]

(* The unified-cancellation contract: whatever the internal representation
   (FIFO marks lazily, the indexed pool removes eagerly), a killed
   instance's stale request must never surface from [select]. *)
let test_cancelled_never_granted () =
  List.iter
    (fun (name, mk) ->
      let (module A : Arbiter.S) = mk () in
      let victim = mk_inst ~idx:1 ~nodes:512 ~last_commit_end:0.0 in
      let survivor = mk_inst ~idx:2 ~nodes:256 ~last_commit_end:0.0 in
      let reqs =
        [
          mk_request ~at:0.0 victim;
          mk_request ~at:1.0 survivor;
          mk_request ~at:2.0 ~kind:(T.Req_io Io.Input) victim;
          mk_request ~at:3.0 survivor;
          mk_request ~at:4.0 victim;
        ]
      in
      List.iter A.enqueue reqs;
      A.cancel_of_inst victim;
      Alcotest.(check int) (name ^ ": live backlog") 2 (A.pending ());
      let granted = drain ~now:5000.0 (module A) in
      Alcotest.(check int) (name ^ ": grants") 2 (List.length granted);
      List.iter
        (fun (r : T.request) ->
          Alcotest.(check bool) (name ^ ": granted request not cancelled") false r.r_cancelled;
          Alcotest.(check int) (name ^ ": granted inst") survivor.T.idx r.r_inst.T.idx)
        granted;
      Alcotest.(check int) (name ^ ": empty after drain") 0 (A.pending ());
      let s = A.stats () in
      Alcotest.(check int) (name ^ ": stats enqueued") 5 s.T.arb_enqueued;
      Alcotest.(check int) (name ^ ": stats granted") 2 s.T.arb_granted;
      Alcotest.(check int) (name ^ ": stats cancelled") 3 s.T.arb_cancelled)
    (policies ~label:"cancel")

let test_fifo_arrival_order () =
  let (module A : Arbiter.S) = Arbiter.fifo () in
  let insts = List.init 5 (fun i -> mk_inst ~idx:(10 + i) ~nodes:8 ~last_commit_end:0.0) in
  let reqs = List.map (fun inst -> mk_request inst) insts in
  List.iter A.enqueue reqs;
  let ids (rs : T.request list) = List.map (fun r -> r.T.r_id) rs in
  Alcotest.(check (list int)) "FCFS grant order" (ids reqs) (ids (drain ~now:10.0 (module A)))

(* The indexed pool must agree with the straightforward list treatment:
   same candidates, same arrival order, same Least_waste.select choice. *)
let test_least_waste_matches_oracle () =
  let now = 7000.0 in
  let insts =
    List.init 9 (fun i ->
        mk_inst ~idx:(20 + i) ~nodes:(64 + (i * 131 mod 700))
          ~last_commit_end:(float_of_int (i * 53 mod 400)))
  in
  let reqs =
    List.mapi
      (fun i inst ->
        if i mod 3 = 2 then
          mk_request ~kind:(T.Req_io Io.Input) ~volume:(50.0 +. float_of_int i)
            ~at:(float_of_int (i * 17)) inst
        else mk_request ~at:(float_of_int (i * 17)) inst)
      insts
  in
  let oracle pool =
    let to_candidate (r : T.request) =
      match r.T.r_kind with
      | T.Req_io _ ->
          Candidate.Io
            {
              Candidate.key = r.T.r_id;
              nodes = r.T.r_inst.T.spec.Jobgen.nodes;
              service_s = r.T.r_volume /. bandwidth_gbs;
              waited_s = now -. r.T.r_at;
            }
      | T.Req_ckpt ->
          Candidate.Ckpt
            {
              Candidate.key = r.T.r_id;
              nodes = r.T.r_inst.T.spec.Jobgen.nodes;
              ckpt_s = r.T.r_inst.T.ckpt_nominal;
              exposed_s = now -. r.T.r_inst.T.last_commit_end;
              recovery_s = r.T.r_inst.T.ckpt_nominal;
            }
    in
    Option.map Candidate.key (Least_waste.select ~node_mtbf_s:mtbf_s (List.map to_candidate pool))
  in
  let (module A : Arbiter.S) = Arbiter.least_waste ~node_mtbf_s:mtbf_s ~bandwidth_gbs () in
  List.iter A.enqueue reqs;
  (* Drain fully: after each grant the oracle recomputes on the remainder,
     so the whole grant sequence must match, not just the first pick. *)
  let rec go pool =
    match (oracle pool, A.select ~now) with
    | None, None -> ()
    | Some key, Some r ->
        Alcotest.(check int) "indexed pool matches list oracle" key r.T.r_id;
        go (List.filter (fun (q : T.request) -> q.T.r_id <> key) pool)
    | Some _, None -> Alcotest.fail "arbiter dried up before oracle"
    | None, Some _ -> Alcotest.fail "oracle dried up before arbiter"
  in
  go reqs

let test_greedy_exposure_ranking () =
  let (module A : Arbiter.S) = Arbiter.greedy_exposure () in
  let now = 1000.0 in
  (* exposure × nodes: 1000×100 = 1e5, 900×200 = 1.8e5, 500×256 = 1.28e5 *)
  let a = mk_inst ~idx:40 ~nodes:100 ~last_commit_end:0.0 in
  let b = mk_inst ~idx:41 ~nodes:200 ~last_commit_end:100.0 in
  let c = mk_inst ~idx:42 ~nodes:256 ~last_commit_end:500.0 in
  List.iter A.enqueue [ mk_request a; mk_request b; mk_request c ];
  let order = List.map (fun (r : T.request) -> r.T.r_inst.T.idx) (drain ~now (module A)) in
  Alcotest.(check (list int)) "largest node-seconds at risk first" [ 41; 42; 40 ] order;
  (* Blocking I/O requests compete on waiting time instead of exposure:
     1000 s waited × 100 nodes beats a 100 s-fresh ckpt × 200 nodes. *)
  let d = mk_inst ~idx:43 ~nodes:100 ~last_commit_end:now in
  let io = mk_request ~kind:(T.Req_io Io.Output) ~at:0.0 d in
  let fresh = mk_inst ~idx:46 ~nodes:200 ~last_commit_end:(now -. 100.0) in
  let ck = mk_request fresh in
  List.iter A.enqueue [ ck; io ];
  (match A.select ~now with
  | Some r -> Alcotest.(check int) "waited I/O outranks fresher ckpt" 43 r.T.r_inst.T.idx
  | None -> Alcotest.fail "nothing selected");
  (* Ties (equal scores) go to arrival order. *)
  let (module B : Arbiter.S) = Arbiter.greedy_exposure () in
  let e = mk_inst ~idx:44 ~nodes:128 ~last_commit_end:0.0 in
  let f = mk_inst ~idx:45 ~nodes:128 ~last_commit_end:0.0 in
  let r1 = mk_request e and r2 = mk_request f in
  B.enqueue r1;
  B.enqueue r2;
  match B.select ~now with
  | Some r -> Alcotest.(check int) "tie breaks to arrival order" r1.T.r_id r.T.r_id
  | None -> Alcotest.fail "nothing selected"

(* Churn heavily across compactions and growth: the indexed pool must keep
   arrival order and never resurrect a removed or cancelled request. *)
let test_pool_churn () =
  let (module A : Arbiter.S) = Arbiter.greedy_exposure () in
  let inst = mk_inst ~idx:50 ~nodes:16 ~last_commit_end:0.0 in
  let stale = mk_inst ~idx:51 ~nodes:16 ~last_commit_end:0.0 in
  for round = 1 to 50 do
    let keep = List.init 3 (fun i -> mk_request ~at:(float_of_int i) inst) in
    let dead = List.init 4 (fun i -> mk_request ~at:(float_of_int i) stale) in
    List.iter A.enqueue (keep @ dead);
    A.cancel_of_inst stale;
    let granted = drain ~now:1e4 (module A) in
    Alcotest.(check int)
      (Printf.sprintf "round %d grants" round)
      3 (List.length granted);
    List.iter
      (fun (r : T.request) ->
        Alcotest.(check int) "never a stale grant" inst.T.idx r.T.r_inst.T.idx)
      granted
  done

let () =
  Alcotest.run "arbiter"
    [
      ( "contract",
        [
          Alcotest.test_case "cancelled never granted (all policies)" `Quick
            test_cancelled_never_granted;
          Alcotest.test_case "fifo arrival order" `Quick test_fifo_arrival_order;
          Alcotest.test_case "pool churn stays consistent" `Quick test_pool_churn;
        ] );
      ( "policies",
        [
          Alcotest.test_case "least-waste matches list oracle" `Quick
            test_least_waste_matches_oracle;
          Alcotest.test_case "greedy-exposure ranking" `Quick
            test_greedy_exposure_ranking;
        ] );
    ]
