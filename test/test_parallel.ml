(* Tests for the domain pool: correctness of results, ordering, exception
   propagation, sequential mode, and shutdown semantics. *)

module Pool = Cocheck_parallel.Pool

exception Boom

let test_sequential_map () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      let r = Pool.map_array pool (fun x -> x * x) [| 1; 2; 3; 4 |] in
      Alcotest.(check (array int)) "squares" [| 1; 4; 9; 16 |] r)

let test_parallel_map_order () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let r = Pool.init_array pool 50 (fun i -> i * 3) in
      Alcotest.(check (array int)) "order preserved" (Array.init 50 (fun i -> i * 3)) r)

let test_parallel_matches_sequential () =
  let f i = (i * 7919) mod 101 in
  let seq = Array.init 200 f in
  Pool.with_pool ~num_domains:3 (fun pool ->
      let par = Pool.init_array pool 200 f in
      Alcotest.(check (array int)) "parallel = sequential" seq par)

let test_empty_init () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.init_array pool 0 (fun i -> i)))

let test_exception_propagates_parallel () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      Alcotest.check_raises "task exception re-raised" Boom (fun () ->
          ignore (Pool.init_array pool 4 (fun i -> if i = 2 then raise Boom else i))))

let test_exception_propagates_sequential () =
  Pool.with_pool ~num_domains:0 (fun pool ->
      Alcotest.check_raises "inline exception re-raised" Boom (fun () ->
          ignore (Pool.init_array pool 4 (fun i -> if i = 1 then raise Boom else i))))

let test_async_await () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      let fut = Pool.async pool (fun () -> 40 + 2) in
      Alcotest.(check int) "future value" 42 (Pool.await fut))

let test_async_await_exception () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      let fut = Pool.async pool (fun () -> raise Boom) in
      Alcotest.check_raises "await re-raises" Boom (fun () -> ignore (Pool.await fut)))

let test_many_tasks_few_workers () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      let r = Pool.init_array pool 500 (fun i -> i + 1) in
      Alcotest.(check int) "all tasks ran" 500 (Array.length r);
      Alcotest.(check int) "last value" 500 r.(499))

let test_num_workers () =
  Pool.with_pool ~num_domains:3 (fun pool ->
      Alcotest.(check int) "3 workers" 3 (Pool.num_workers pool));
  Pool.with_pool ~num_domains:0 (fun pool ->
      Alcotest.(check int) "sequential pool" 0 (Pool.num_workers pool))

let test_shutdown_idempotent () =
  let pool = Pool.create ~num_domains:1 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check pass) "double shutdown ok" () ()

let test_submit_after_shutdown () =
  let pool = Pool.create ~num_domains:1 () in
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.async: pool is shut down") (fun () ->
      ignore (Pool.async pool (fun () -> ())))

let test_outstanding_tasks_complete_before_shutdown () =
  let counter = Atomic.make 0 in
  let pool = Pool.create ~num_domains:2 () in
  let futs = List.init 20 (fun _ -> Pool.async pool (fun () -> Atomic.incr counter)) in
  List.iter Pool.await futs;
  Pool.shutdown pool;
  Alcotest.(check int) "all tasks ran" 20 (Atomic.get counter)

let test_negative_domains_rejected () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.create: negative domain count") (fun () ->
      ignore (Pool.create ~num_domains:(-1) ()))

let test_with_pool_cleans_up_on_exception () =
  (match Pool.with_pool ~num_domains:1 (fun _ -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "expected Boom");
  Alcotest.(check pass) "pool cleaned up" () ()

let recording_telemetry () =
  let mutex = Mutex.create () in
  let tasks = ref [] in
  let telemetry =
    {
      Pool.on_task =
        (fun ~worker ~queued_s ~ran_s ->
          Mutex.lock mutex;
          tasks := (worker, queued_s, ran_s) :: !tasks;
          Mutex.unlock mutex);
      on_idle = (fun ~worker:_ ~idle_s:_ -> ());
    }
  in
  (telemetry, fun () -> List.rev !tasks)

let test_sequential_telemetry_deterministic () =
  (* An observed num_domains=0 pool reports every task on worker 0, in
     submission order — the deterministic-lanes contract tests rely on. *)
  let telemetry, tasks = recording_telemetry () in
  Pool.with_pool ~num_domains:0 ~telemetry (fun pool ->
      let r = Pool.init_array pool 5 (fun i -> i * 2) in
      Alcotest.(check (array int)) "results" [| 0; 2; 4; 6; 8 |] r);
  let ts = tasks () in
  Alcotest.(check int) "one report per task" 5 (List.length ts);
  List.iter
    (fun (worker, queued_s, ran_s) ->
      Alcotest.(check int) "worker 0" 0 worker;
      Alcotest.(check bool) "non-negative queue wait" true (queued_s >= 0.0);
      Alcotest.(check bool) "non-negative run time" true (ran_s >= 0.0))
    ts

let test_parallel_telemetry_reports_every_task () =
  let telemetry, tasks = recording_telemetry () in
  Pool.with_pool ~num_domains:2 ~telemetry (fun pool ->
      ignore (Pool.init_array pool 20 (fun i -> i)));
  let ts = tasks () in
  Alcotest.(check int) "20 reports" 20 (List.length ts);
  List.iter
    (fun (worker, _, _) ->
      Alcotest.(check bool) "worker index in range" true (worker >= 0 && worker < 2))
    ts

let test_telemetry_reports_failed_tasks () =
  let telemetry, tasks = recording_telemetry () in
  Pool.with_pool ~num_domains:0 ~telemetry (fun pool ->
      (match Pool.await (Pool.async pool (fun () -> raise Boom)) with
      | exception Boom -> ()
      | _ -> Alcotest.fail "expected Boom"));
  Alcotest.(check int) "exceptional task still reported" 1 (List.length (tasks ()))

let test_current_worker_outside_pool () =
  Alcotest.(check int) "outside any pool" 0 (Pool.current_worker ())

let test_parallel_rng_determinism () =
  (* The determinism contract Monte Carlo relies on: per-task seeds make
     results independent of scheduling. *)
  let task i =
    let rng = Cocheck_util.Rng.create ~seed:(1000 + i) in
    Cocheck_util.Rng.bits64 rng
  in
  let a = Pool.with_pool ~num_domains:3 (fun pool -> Pool.init_array pool 64 task) in
  let b = Pool.with_pool ~num_domains:1 (fun pool -> Pool.init_array pool 64 task) in
  Alcotest.(check bool) "independent of worker count" true (a = b)

let () =
  Alcotest.run "cocheck.parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "sequential map" `Quick test_sequential_map;
          Alcotest.test_case "parallel order" `Quick test_parallel_map_order;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "empty init" `Quick test_empty_init;
          Alcotest.test_case "exception (parallel)" `Quick test_exception_propagates_parallel;
          Alcotest.test_case "exception (sequential)" `Quick test_exception_propagates_sequential;
          Alcotest.test_case "async/await" `Quick test_async_await;
          Alcotest.test_case "await exception" `Quick test_async_await_exception;
          Alcotest.test_case "500 tasks, 1 worker" `Quick test_many_tasks_few_workers;
          Alcotest.test_case "num_workers" `Quick test_num_workers;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "submit after shutdown" `Quick test_submit_after_shutdown;
          Alcotest.test_case "drain before shutdown" `Quick test_outstanding_tasks_complete_before_shutdown;
          Alcotest.test_case "negative domains" `Quick test_negative_domains_rejected;
          Alcotest.test_case "with_pool cleanup" `Quick test_with_pool_cleans_up_on_exception;
          Alcotest.test_case "scheduling-independent results" `Quick test_parallel_rng_determinism;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "sequential lanes deterministic" `Quick
            test_sequential_telemetry_deterministic;
          Alcotest.test_case "parallel reports every task" `Quick
            test_parallel_telemetry_reports_every_task;
          Alcotest.test_case "failed tasks reported" `Quick test_telemetry_reports_failed_tasks;
          Alcotest.test_case "current_worker outside pool" `Quick
            test_current_worker_outside_pool;
        ] );
    ]
