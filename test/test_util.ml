(* Unit and property tests for the cocheck.util substrate: RNG,
   distributions, statistics, numerics, priority queue, units, tables and
   ASCII plots. *)

open Cocheck_util

let check_float = Alcotest.(check (float 1e-9))
let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

let contains s sub =
  let n = String.length sub in
  if n = 0 then true
  else begin
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_rng_substream_stable () =
  let root = Rng.create ~seed:7 in
  let s1 = Rng.substream root "failures" in
  (* Drawing from the root must not change what a substream re-derivation
     yields. *)
  ignore (Rng.bits64 root);
  let s2 = Rng.substream root "failures" in
  for _ = 1 to 50 do
    Alcotest.(check int64) "substream re-derivable" (Rng.bits64 s1) (Rng.bits64 s2)
  done

let test_rng_substream_distinct () =
  let root = Rng.create ~seed:7 in
  let a = Rng.substream root "jobs" and b = Rng.substream root "failures" in
  Alcotest.(check bool) "named substreams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_advances () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  let c = Rng.split a in
  Alcotest.(check bool) "successive splits differ" true (Rng.bits64 b <> Rng.bits64 c)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy starts from same state" va vb

let test_rng_int_bounds =
  QCheck.Test.make ~name:"rng_int_in_bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let test_rng_unit_float_bounds =
  QCheck.Test.make ~name:"rng_unit_float_in_[0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.unit_float rng in
      v >= 0.0 && v < 1.0)

let test_rng_int_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 20k draws, expect ~2000 each. *)
  let rng = Rng.create ~seed:2024 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d roughly uniform (%d)" i c)
        true
        (c > 1700 && c < 2300))
    counts

let test_rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle_is_permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create ~seed in
      let shuffled = Rng.shuffle_list rng l in
      List.sort compare shuffled = List.sort compare l)

let test_rng_int_invalid () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* ------------------------------------------------------------------ *)
(* Dist                                                                 *)
(* ------------------------------------------------------------------ *)

let test_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.exponential rng ~mean:42.0
  done;
  let m = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sample mean %.2f near 42" m)
    true
    (Float.abs (m -. 42.0) < 1.0)

let test_exponential_positive =
  QCheck.Test.make ~name:"exponential_positive" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, mean) ->
      let rng = Rng.create ~seed in
      Dist.exponential rng ~mean >= 0.0)

let test_exponential_memoryless_quantiles () =
  (* Median of Exp(mean) is mean·ln 2. *)
  let rng = Rng.create ~seed:13 in
  let xs = Array.init 50_000 (fun _ -> Dist.exponential rng ~mean:100.0) in
  let median = Stats.quantile xs 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median %.2f near 69.3" median)
    true
    (Float.abs (median -. (100.0 *. log 2.0)) < 2.5)

let test_normal_moments () =
  let rng = Rng.create ~seed:17 in
  let n = 50_000 in
  let r = Stats.running_create () in
  for _ = 1 to n do
    Stats.running_add r (Dist.normal rng ~mean:10.0 ~stddev:3.0)
  done;
  Alcotest.(check bool) "mean near 10" true (Float.abs (Stats.running_mean r -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev near 3" true (Float.abs (Stats.running_stddev r -. 3.0) < 0.1)

let test_truncated_normal_bounds =
  QCheck.Test.make ~name:"truncated_normal_within_bounds" ~count:300
    QCheck.(pair small_int (float_range 1.0 100.0))
    (fun (seed, w) ->
      let rng = Rng.create ~seed in
      let v = Dist.truncated_normal rng ~mean:w ~stddev:(w /. 5.0) ~lo:(0.8 *. w) ~hi:(1.2 *. w) in
      v >= 0.8 *. w && v <= 1.2 *. w)

let test_uniform_bounds =
  QCheck.Test.make ~name:"uniform_within_bounds" ~count:300
    QCheck.(triple small_int (float_range 0.0 10.0) (float_range 0.0 10.0))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let rng = Rng.create ~seed in
      let v = Dist.uniform rng ~lo ~hi in
      v >= lo && (v < hi || (v = lo && lo = hi)))

let test_weibull_shape1_is_exponential () =
  (* Weibull(scale, 1) = Exp(scale): compare empirical CDF at scale. *)
  let rng = Rng.create ~seed:19 in
  let n = 40_000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Dist.weibull rng ~scale:10.0 ~shape:1.0 <= 10.0 then incr below
  done;
  let expected = Dist.exponential_cdf ~x:10.0 ~mean:10.0 in
  let got = float_of_int !below /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "P(X<=scale) %.3f near %.3f" got expected)
    true
    (Float.abs (got -. expected) < 0.01)

let test_exponential_invalid () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "mean <= 0 rejected"
    (Invalid_argument "Dist.exponential: mean must be positive") (fun () ->
      ignore (Dist.exponential rng ~mean:0.0))

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_running_matches_batch =
  QCheck.Test.make ~name:"welford_matches_batch" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 50) (float_range (-1e3) 1e3))
    (fun l ->
      let xs = Array.of_list l in
      let r = Stats.running_create () in
      Array.iter (Stats.running_add r) xs;
      Numerics.fequal ~eps:1e-6 (Stats.running_mean r) (Stats.mean xs)
      && Numerics.fequal ~eps:1e-6 (Stats.running_variance r) (Stats.variance xs))

let test_quantile_extremes () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "q0 is min" 1.0 (Stats.quantile xs 0.0);
  check_float "q1 is max" 5.0 (Stats.quantile xs 1.0);
  check_float "median" 3.0 (Stats.quantile xs 0.5)

let test_quantile_interpolation () =
  let xs = [| 0.0; 10.0 |] in
  check_float "q25 interpolates" 2.5 (Stats.quantile xs 0.25)

let test_quantile_monotone =
  QCheck.Test.make ~name:"quantile_monotone_in_q" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 40) (float_range (-100.) 100.))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (l, (q1, q2)) ->
      let xs = Array.of_list l in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-12)

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.quantile xs 0.5);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] xs

let test_candlestick_order =
  QCheck.Test.make ~name:"candlestick_ordered" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (float_range (-50.) 50.))
    (fun l ->
      let c = Stats.candlestick (Array.of_list l) in
      c.Stats.d1 <= c.q1 && c.q1 <= c.median && c.median <= c.q3 && c.q3 <= c.d9)

let test_candlestick_singleton () =
  let c = Stats.candlestick [| 7.0 |] in
  check_float "mean" 7.0 c.Stats.mean;
  check_float "d1" 7.0 c.Stats.d1;
  check_float "d9" 7.0 c.Stats.d9;
  Alcotest.(check int) "n" 1 c.Stats.n

let test_candlestick_empty () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.candlestick: empty array") (fun () ->
      ignore (Stats.candlestick [||]))

let test_histogram_counts =
  QCheck.Test.make ~name:"histogram_conserves_count" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (float_range (-10.) 10.))
    (fun l ->
      let h = Stats.histogram ~bins:7 (Array.of_list l) in
      Array.fold_left ( + ) 0 h.Stats.counts = List.length l)

(* ------------------------------------------------------------------ *)
(* Numerics                                                             *)
(* ------------------------------------------------------------------ *)

let test_kahan_catastrophic () =
  (* 1e16 + 1 + ... + 1 - 1e16 loses the ones under naive summation. *)
  let xs = Array.concat [ [| 1e16 |]; Array.make 1000 1.0; [| -1e16 |] ] in
  check_float "kahan keeps the ones" 1000.0 (Numerics.kahan_sum xs)

let test_bisect_sqrt2 () =
  let r = Numerics.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  checkf "sqrt 2" ~eps:1e-9 (sqrt 2.0) r

let test_brent_sqrt2 () =
  let r = Numerics.brent ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  checkf "sqrt 2" ~eps:1e-9 (sqrt 2.0) r

let test_brent_transcendental () =
  let r = Numerics.brent ~f:(fun x -> cos x -. x) ~lo:0.0 ~hi:1.0 () in
  checkf "dottie number" ~eps:1e-9 0.7390851332151607 r

let test_bisect_no_bracket () =
  Alcotest.check_raises "no sign change rejected"
    (Invalid_argument "Numerics.bisect: no sign change in bracket") (fun () ->
      ignore (Numerics.bisect ~f:(fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:1.0 ()))

let test_roots_agree =
  QCheck.Test.make ~name:"bisect_agrees_with_brent" ~count:100
    QCheck.(float_range 0.5 50.0)
    (fun target ->
      let f x = (x *. x *. x) -. target in
      let b = Numerics.bisect ~f ~lo:0.0 ~hi:4.0 () in
      let br = Numerics.brent ~f ~lo:0.0 ~hi:4.0 () in
      Numerics.fequal ~eps:1e-6 b br)

let test_find_min_positive_zero () =
  check_float "already feasible -> 0" 0.0
    (Numerics.find_min_positive ~f:(fun x -> -.x -. 1.0) ~hi0:1.0 ())

let test_find_min_positive_root () =
  let r = Numerics.find_min_positive ~f:(fun x -> 3.0 -. x) ~hi0:1.0 () in
  checkf "crossing at 3" ~eps:1e-6 3.0 r

let test_golden_section () =
  let r = Numerics.golden_section_min ~f:(fun x -> (x -. 2.5) ** 2.0) ~lo:0.0 ~hi:10.0 () in
  checkf "parabola min" ~eps:1e-6 2.5 r

let test_simpson_poly () =
  (* Simpson is exact on cubics. *)
  let r = Numerics.integrate_simpson ~f:(fun x -> x ** 3.0) ~lo:0.0 ~hi:2.0 ~n:4 in
  checkf "int x^3 over [0,2]" ~eps:1e-9 4.0 r

let test_simpson_sin () =
  let r = Numerics.integrate_simpson ~f:sin ~lo:0.0 ~hi:Float.pi ~n:128 in
  checkf "int sin over [0,pi]" ~eps:1e-6 2.0 r

(* ------------------------------------------------------------------ *)
(* Pqueue                                                               *)
(* ------------------------------------------------------------------ *)

let test_pqueue_ordering =
  QCheck.Test.make ~name:"pqueue_pops_sorted" ~count:300
    QCheck.(list (float_range (-1e6) 1e6))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> ignore (Pqueue.add q ~priority:p i)) priorities;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare priorities)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> ignore (Pqueue.add q ~priority:1.0 v)) [ "a"; "b"; "c" ];
  let vals =
    List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "ties pop FIFO" [ "a"; "b"; "c" ] vals

let test_pqueue_remove () =
  let q = Pqueue.create () in
  let _h1 = Pqueue.add q ~priority:1.0 "first" in
  let h2 = Pqueue.add q ~priority:2.0 "second" in
  let _h3 = Pqueue.add q ~priority:3.0 "third" in
  Alcotest.(check bool) "remove live" true (Pqueue.remove q h2);
  Alcotest.(check bool) "remove again is false" false (Pqueue.remove q h2);
  let vals =
    List.init 2 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "removed entry skipped" [ "first"; "third" ] vals

let test_pqueue_handle_after_pop () =
  let q = Pqueue.create () in
  let h = Pqueue.add q ~priority:1.0 () in
  ignore (Pqueue.pop q);
  Alcotest.(check bool) "popped handle is dead" false (Pqueue.mem q h);
  Alcotest.(check bool) "remove popped is false" false (Pqueue.remove q h)

let test_pqueue_random_removals =
  QCheck.Test.make ~name:"pqueue_random_removals_consistent" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 0 64) (float_range 0.0 100.0)))
    (fun (seed, priorities) ->
      let rng = Rng.create ~seed in
      let q = Pqueue.create () in
      let handles = List.map (fun p -> (p, Pqueue.add q ~priority:p p)) priorities in
      (* Remove a random subset. *)
      let removed, kept =
        List.partition (fun _ -> Rng.bool rng) handles
      in
      List.iter (fun (_, h) -> ignore (Pqueue.remove q h)) removed;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare (List.map fst kept))

let test_pqueue_update_priority () =
  let q = Pqueue.create () in
  let ha = Pqueue.add q ~priority:1.0 "a" in
  let _hb = Pqueue.add q ~priority:2.0 "b" in
  let hc = Pqueue.add q ~priority:3.0 "c" in
  (* Raise the min past everything, drop the max below everything. *)
  Alcotest.(check bool) "raise live" true (Pqueue.update_priority q ha ~priority:10.0);
  Alcotest.(check bool) "lower live" true (Pqueue.update_priority q hc ~priority:0.5);
  Alcotest.(check (option (float 0.0))) "new priority visible" (Some 10.0)
    (Pqueue.priority_of q ha);
  let vals =
    List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "pop order reflects updates" [ "c"; "b"; "a" ] vals;
  Alcotest.(check bool) "dead handle is false" false
    (Pqueue.update_priority q ha ~priority:1.0)

let test_pqueue_update_priority_fifo_ties () =
  (* An update to an equal priority must not jump the FIFO queue: seq is
     assigned at add time and preserved across updates. *)
  let q = Pqueue.create () in
  let _ha = Pqueue.add q ~priority:1.0 "a" in
  let hb = Pqueue.add q ~priority:5.0 "b" in
  Alcotest.(check bool) "retime b onto a's priority" true
    (Pqueue.update_priority q hb ~priority:1.0);
  let vals =
    List.init 2 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "arrival order wins the tie" [ "a"; "b" ] vals

let test_pqueue_random_updates =
  QCheck.Test.make ~name:"pqueue_random_updates_pop_sorted" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 0 64) (float_range 0.0 100.0)))
    (fun (seed, priorities) ->
      let rng = Rng.create ~seed in
      let q = Pqueue.create () in
      let handles = List.map (fun p -> Pqueue.add q ~priority:p p) priorities in
      (* Re-key a random subset to fresh priorities; the heap must still pop
         in sorted order of the final keys. *)
      let finals =
        List.map2
          (fun p h ->
            if Rng.bool rng then begin
              let p' = Rng.unit_float rng *. 100.0 in
              ignore (Pqueue.update_priority q h ~priority:p');
              p'
            end
            else p)
          priorities handles
      in
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare finals)

let test_pqueue_priority_of () =
  let q = Pqueue.create () in
  let h = Pqueue.add q ~priority:17.5 "x" in
  Alcotest.(check (option (float 0.0))) "live priority" (Some 17.5) (Pqueue.priority_of q h);
  ignore (Pqueue.pop q);
  Alcotest.(check (option (float 0.0))) "dead priority" None (Pqueue.priority_of q h)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  let h = Pqueue.add q ~priority:1.0 () in
  Pqueue.clear q;
  Alcotest.(check int) "empty after clear" 0 (Pqueue.length q);
  Alcotest.(check bool) "handles dead after clear" false (Pqueue.mem q h)

(* Space-leak regression: the old heap left the popped entry's record in
   data.(size), keeping the value alive until the slot was overwritten (and
   clear never nulled the tail at all). The SoA queue overwrites dead value
   slots with a pinned filler, so a finalized witness must be collectable
   the moment it leaves the queue. The first value ever added is that
   filler (pinned by design), hence the throwaway sentinel added first.
   [@inline never] keeps the witness out of the caller's stack roots. *)
let[@inline never] leak_witness enqueue_and_release =
  let q = Pqueue.create () in
  ignore (Pqueue.add q ~priority:(-1.0) (ref (-1)));
  (* sentinel = pinned filler *)
  let w = Weak.create 1 in
  let () =
    let witness = ref 42 in
    Weak.set w 0 (Some witness);
    enqueue_and_release q witness
  in
  Gc.full_major ();
  Gc.full_major ();
  (q, Weak.check w 0)

let test_pqueue_pop_releases_value () =
  let q, alive =
    leak_witness (fun q witness ->
        ignore (Pqueue.add q ~priority:1.0 witness);
        ignore (Pqueue.pop q);
        (* sentinel out *)
        ignore (Pqueue.pop q) (* witness out *))
  in
  Alcotest.(check int) "queue drained" 0 (Pqueue.length q);
  Alcotest.(check bool) "witness collected after pop" false alive

let test_pqueue_remove_releases_value () =
  let q, alive =
    leak_witness (fun q witness ->
        let h = Pqueue.add q ~priority:1.0 witness in
        ignore (Pqueue.add q ~priority:2.0 (ref 0));
        ignore (Pqueue.remove q h))
  in
  Alcotest.(check int) "two survivors" 2 (Pqueue.length q);
  Alcotest.(check bool) "witness collected after remove" false alive

let test_pqueue_clear_releases_value () =
  let q, alive =
    leak_witness (fun q witness ->
        ignore (Pqueue.add q ~priority:1.0 witness);
        Pqueue.clear q)
  in
  Alcotest.(check int) "cleared" 0 (Pqueue.length q);
  Alcotest.(check bool) "witness collected after clear" false alive

let test_pqueue_to_sorted_list () =
  let q = Pqueue.create () in
  List.iter (fun p -> ignore (Pqueue.add q ~priority:p p)) [ 3.0; 1.0; 2.0 ];
  let snapshot = Pqueue.to_sorted_list q in
  Alcotest.(check int) "snapshot non-destructive" 3 (Pqueue.length q);
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0 ] (List.map fst snapshot)

(* ------------------------------------------------------------------ *)
(* Units / Table / Ascii_plot                                           *)
(* ------------------------------------------------------------------ *)

let test_units_roundtrip () =
  check_float "hours" 7200.0 (Units.hours 2.0);
  check_float "days" 86_400.0 (Units.days 1.0);
  check_float "years" (365.0 *. 86_400.0) (Units.years 1.0);
  check_float "to_hours inverse" 2.0 (Units.to_hours (Units.hours 2.0));
  check_float "tb" 1000.0 (Units.tb 1.0);
  check_float "pb" 1e6 (Units.pb 1.0)

let test_units_pp () =
  Alcotest.(check string) "duration h" "2.00h" (Format.asprintf "%a" Units.pp_duration 7200.0);
  Alcotest.(check string) "bytes TB" "1.40TB" (Format.asprintf "%a" Units.pp_bytes 1400.0)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "v" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "rows in order" true
    (String.length (List.nth lines 2) > 0 && (List.nth lines 2).[0] = 'a')

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "short row rejected" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv_escaping () =
  let t = Table.create ~headers:[ "k"; "v" ] in
  Table.add_row t [ "with,comma"; "with\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma field quoted" true
    (contains csv "\"with,comma\"");
  Alcotest.(check bool) "quote doubled" true
    (contains csv "\"with\"\"quote\"")


let test_ascii_plot_smoke () =
  let s =
    Ascii_plot.render
      [
        { Ascii_plot.label = "one"; points = [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] };
        { Ascii_plot.label = "two"; points = [ (1.0, 2.0); (2.0, 3.0) ] };
      ]
  in
  Alcotest.(check bool) "has legend" true (contains s "one");
  Alcotest.(check bool) "nonempty grid" true (String.length s > 100)

let test_ascii_plot_empty () =
  let s = Ascii_plot.render [] in
  Alcotest.(check bool) "renders stub" true (contains s "no data")

let test_ascii_plot_log_x () =
  let s =
    Ascii_plot.render
      ~config:{ Ascii_plot.default_config with log_x = true }
      [ { Ascii_plot.label = "s"; points = [ (1.0, 1.0); (10.0, 2.0); (100.0, 3.0) ] } ]
  in
  Alcotest.(check bool) "log axis labelled" true (contains s "(log)")

let test_ascii_plot_non_finite () =
  let s =
    Ascii_plot.render
      [ { Ascii_plot.label = "s"; points = [ (1.0, 1.0); (nan, 2.0); (3.0, infinity) ] } ]
  in
  Alcotest.(check bool) "nan/inf skipped without crash" true (String.length s > 0)

let test_table_center_alignment () =
  let t = Table.create ~headers:[ "wide-column"; "x" ] in
  Table.set_aligns t [ Table.Center; Table.Right ];
  Table.add_row t [ "ab"; "1" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  let row = List.nth lines 2 in
  Alcotest.(check bool) "centered cell padded on both sides" true
    (String.length row >= 11 && row.[0] = ' ' && contains row "ab")

let test_table_float_row () =
  let t = Table.create ~headers:[ "k"; "a"; "b" ] in
  Table.add_float_row t ~label:"row" [ 1.23456; 1e-7 ];
  let s = Table.render t in
  Alcotest.(check bool) "formatted with %.4g" true (contains s "1.235")

let test_table_set_aligns_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "bad arity" (Invalid_argument "Table.set_aligns: arity mismatch")
    (fun () -> Table.set_aligns t [ Table.Left ])

let test_ascii_plot_single_point () =
  let s =
    Ascii_plot.render [ { Ascii_plot.label = "p"; points = [ (1.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "degenerate ranges handled" true (String.length s > 0)

let test_mean_ci_symmetric_data () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 2)) in
  let mean, half = Stats.mean_ci xs in
  Alcotest.(check (float 1e-9)) "mean is half" 0.5 mean;
  Alcotest.(check bool) "width positive" true (half > 0.0)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic streams" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "substream stable" `Quick test_rng_substream_stable;
          Alcotest.test_case "substream distinct" `Quick test_rng_substream_distinct;
          Alcotest.test_case "split advances" `Quick test_rng_split_advances;
          Alcotest.test_case "copy preserves state" `Quick test_rng_copy_independent;
          Alcotest.test_case "uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "int bound validation" `Quick test_rng_int_invalid;
        ]
        @ qsuite [ test_rng_int_bounds; test_rng_unit_float_bounds; test_rng_shuffle_permutation ]
      );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential median" `Quick test_exponential_memoryless_quantiles;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "weibull shape 1 = exponential" `Quick test_weibull_shape1_is_exponential;
          Alcotest.test_case "exponential validation" `Quick test_exponential_invalid;
        ]
        @ qsuite [ test_exponential_positive; test_truncated_normal_bounds; test_uniform_bounds ]
      );
      ( "stats",
        [
          Alcotest.test_case "quantile extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
          Alcotest.test_case "candlestick singleton" `Quick test_candlestick_singleton;
          Alcotest.test_case "candlestick empty" `Quick test_candlestick_empty;
        ]
        @ qsuite
            [
              test_running_matches_batch;
              test_quantile_monotone;
              test_candlestick_order;
              test_histogram_counts;
            ] );
      ( "numerics",
        [
          Alcotest.test_case "kahan catastrophic cancellation" `Quick test_kahan_catastrophic;
          Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
          Alcotest.test_case "brent sqrt2" `Quick test_brent_sqrt2;
          Alcotest.test_case "brent cos x = x" `Quick test_brent_transcendental;
          Alcotest.test_case "bisect requires bracket" `Quick test_bisect_no_bracket;
          Alcotest.test_case "find_min_positive at zero" `Quick test_find_min_positive_zero;
          Alcotest.test_case "find_min_positive root" `Quick test_find_min_positive_root;
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "simpson exact on cubic" `Quick test_simpson_poly;
          Alcotest.test_case "simpson sin" `Quick test_simpson_sin;
        ]
        @ qsuite [ test_roots_agree ] );
      ( "pqueue",
        [
          Alcotest.test_case "FIFO among ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "remove by handle" `Quick test_pqueue_remove;
          Alcotest.test_case "handle dead after pop" `Quick test_pqueue_handle_after_pop;
          Alcotest.test_case "update_priority" `Quick test_pqueue_update_priority;
          Alcotest.test_case "update_priority keeps FIFO seq" `Quick
            test_pqueue_update_priority_fifo_ties;
          Alcotest.test_case "priority_of" `Quick test_pqueue_priority_of;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "sorted snapshot" `Quick test_pqueue_to_sorted_list;
          Alcotest.test_case "pop releases value" `Quick test_pqueue_pop_releases_value;
          Alcotest.test_case "remove releases value" `Quick test_pqueue_remove_releases_value;
          Alcotest.test_case "clear releases value" `Quick test_pqueue_clear_releases_value;
        ]
        @ qsuite
            [ test_pqueue_ordering; test_pqueue_random_removals; test_pqueue_random_updates ] );
      ( "units-table-plot",
        [
          Alcotest.test_case "unit conversions" `Quick test_units_roundtrip;
          Alcotest.test_case "unit pretty-printing" `Quick test_units_pp;
          Alcotest.test_case "table rendering" `Quick test_table_render;
          Alcotest.test_case "table arity" `Quick test_table_arity;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "plot smoke" `Quick test_ascii_plot_smoke;
          Alcotest.test_case "plot empty" `Quick test_ascii_plot_empty;
          Alcotest.test_case "plot log x" `Quick test_ascii_plot_log_x;
          Alcotest.test_case "plot non-finite" `Quick test_ascii_plot_non_finite;
          Alcotest.test_case "table center alignment" `Quick test_table_center_alignment;
          Alcotest.test_case "table float rows" `Quick test_table_float_row;
          Alcotest.test_case "set_aligns arity" `Quick test_table_set_aligns_arity;
          Alcotest.test_case "plot single point" `Quick test_ascii_plot_single_point;
          Alcotest.test_case "mean CI symmetric" `Quick test_mean_ci_symmetric_data;
        ] );
    ]
