(* Differential test: the aggregate-backed Least-Waste arbiter
   (Arbiter.least_waste, O(pending) per grant) against the list-based
   oracle (Lw_reference, O(pending²) per grant) on randomized schedules of
   enqueues, instance-wide cancellations and grants. Both sides replay the
   identical schedule on their own copies of every request record; after
   every operation the live backlogs must agree, and every grant must pick
   the same request. The two paths sum Equations (1)–(2) in different
   orders, so on a floating-point near-tie the selections may legitimately
   differ — the harness then demands the two picks' list-oracle wastes
   agree within 1e-9 relative and stops that schedule (the pools have
   diverged). *)

module T = Cocheck_sim.Sim_types
module Arbiter = Cocheck_sim.Arbiter
module Lw_reference = Cocheck_sim.Lw_reference
module Node_pool = Cocheck_sim.Node_pool
module Io = Cocheck_sim.Io_subsystem
module Jobgen = Cocheck_model.Jobgen
module Candidate = Cocheck_core.Candidate
module Least_waste = Cocheck_core.Least_waste
module Rng = Cocheck_util.Rng

let mk_inst ~pool ~idx ~nodes ~last_commit_end ~ckpt_gb ~bandwidth_gbs =
  let spec =
    {
      Jobgen.id = idx;
      class_index = 0;
      class_name = "diff";
      nodes;
      work_s = 1e6;
      input_gb = 0.0;
      output_gb = 0.0;
      ckpt_gb;
      steady_io_gb = 0.0;
    }
  in
  {
    T.idx;
    spec;
    total_work = 1e6;
    entry_has_ckpt = false;
    restarts = 0;
    nodes = Option.get (Node_pool.alloc pool ~job:idx ~count:nodes);
    start_time = 0.0;
    period = 3600.0;
    ckpt_nominal = spec.Jobgen.ckpt_gb /. bandwidth_gbs;
    activity = T.Computing_pending;
    work_done = 0.0;
    committed = 0.0;
    has_ckpt = false;
    compute_start = 0.0;
    uncommitted = Cocheck_util.Interval_ledger.create ();
    last_commit_end;
    ckpt_request_ev = T.Engine.none;
    work_done_ev = T.Engine.none;
    wait_start = 0.0;
    ckpt_content = 0.0;
    holds_token = false;
    committed_local = [||];
    local_safe_time = [||];
    local_level = 0;
    local_pause_start = 0.0;
    local_tick_ev = [||];
    local_done_ev = T.Engine.none;
    delay_ev = T.Engine.none;
    cb_work_done = ignore;
    cb_ckpt_request = ignore;
    cb_local_tick = [||];
    cb_local_done = ignore;
    live_slot = -1;
  }

(* ------------------------------------------------------------------ *)
(* Randomized schedules                                                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Enqueue of { inst_ix : int; is_io : bool; volume : float; at : float }
  | Cancel of { inst_ix : int; at : float }
  | Select of { at : float }

type schedule = {
  node_mtbf_s : float;
  bandwidth_gbs : float;
  insts : (int * float) array;  (* nodes, last_commit_end *)
  ops : op list;  (* times strictly increasing *)
}

let gen_schedule ~seed =
  let rng = Rng.create ~seed in
  let u lo hi = lo +. (Rng.unit_float rng *. (hi -. lo)) in
  let node_mtbf_s =
    [| 0.25; 2.0; 10.0 |].(Rng.int rng 3) *. 365.0 *. 86400.0
  in
  let bandwidth_gbs = u 10.0 200.0 in
  let ninsts = 2 + Rng.int rng 7 in
  let insts =
    Array.init ninsts (fun _ -> (1 + Rng.int rng 4096, u 0.0 5000.0))
  in
  (* A handful of long schedules exercise aggregate drift across many
     add/remove cycles that never fully drain the pool. *)
  let nops = if seed mod 25 = 0 then 400 else 30 + Rng.int rng 90 in
  let t = ref 6000.0 in
  let ops =
    List.init nops (fun _ ->
        t := !t +. u 0.001 500.0;
        let p = Rng.unit_float rng in
        if p < 0.5 then
          Enqueue
            {
              inst_ix = Rng.int rng ninsts;
              is_io = Rng.unit_float rng < 0.4;
              volume = u 1.0 500.0;
              at = !t;
            }
        else if p < 0.62 then Cancel { inst_ix = Rng.int rng ninsts; at = !t }
        else Select { at = !t })
  in
  { node_mtbf_s; bandwidth_gbs; insts; ops }

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)
(* ------------------------------------------------------------------ *)

(* Each side owns its copy of every request record (r_cancelled is mutable
   and pools retain the records), built from the same id and fields. *)
let run_schedule ~ctx (s : schedule) =
  let pool = Node_pool.create ~nodes:(Array.length s.insts * 4096) in
  let insts =
    Array.mapi
      (fun i (nodes, lce) ->
        mk_inst ~pool ~idx:i ~nodes ~last_commit_end:lce
          ~ckpt_gb:(100.0 +. float_of_int (i * 37))
          ~bandwidth_gbs:s.bandwidth_gbs)
      s.insts
  in
  let (module Fast : Arbiter.S) =
    Arbiter.least_waste ~node_mtbf_s:s.node_mtbf_s ~bandwidth_gbs:s.bandwidth_gbs ()
  in
  let (module Oracle : Arbiter.S) =
    Lw_reference.arbiter ~node_mtbf_s:s.node_mtbf_s ~bandwidth_gbs:s.bandwidth_gbs ()
  in
  (* The oracle-side copies still pending, for near-tie adjudication. *)
  let live : T.request list ref = ref [] in
  let next_id = ref 0 in
  let mk_pair ~inst ~is_io ~volume ~at =
    let r_id = !next_id in
    incr next_id;
    let mk () =
      {
        T.r_id;
        r_inst = inst;
        r_kind = (if is_io then T.Req_io Io.Input else T.Req_ckpt);
        r_volume = volume;
        r_at = at;
        r_cancelled = false;
        r_slot = -1;
      }
    in
    (mk (), mk ())
  in
  let check_pending what =
    if Fast.pending () <> Oracle.pending () then
      Alcotest.failf "%s: %s: pending %d vs oracle %d" ctx what (Fast.pending ())
        (Oracle.pending ())
  in
  let waste_of ~now key =
    let cands =
      List.map (Lw_reference.to_candidate ~bandwidth_gbs:s.bandwidth_gbs ~now) !live
    in
    match List.find_opt (fun c -> Candidate.key c = key) cands with
    | None -> Alcotest.failf "%s: selected key %d not in model pool" ctx key
    | Some c ->
        Least_waste.inflicted_waste ~node_mtbf_s:s.node_mtbf_s
          ~service_s:(Candidate.service_time c) ~self:key cands
  in
  let rec replay = function
    | [] -> ()
    | Enqueue { inst_ix; is_io; volume; at } :: rest ->
        let fast_r, oracle_r = mk_pair ~inst:insts.(inst_ix) ~is_io ~volume ~at in
        Fast.enqueue fast_r;
        Oracle.enqueue oracle_r;
        live := !live @ [ oracle_r ];
        check_pending "after enqueue";
        replay rest
    | Cancel { inst_ix; at = _ } :: rest ->
        Fast.cancel_of_inst insts.(inst_ix);
        Oracle.cancel_of_inst insts.(inst_ix);
        live := List.filter (fun (r : T.request) -> r.r_inst.T.idx <> inst_ix) !live;
        check_pending "after cancel";
        replay rest
    | Select { at } :: rest -> (
        match (Fast.select ~now:at, Oracle.select ~now:at) with
        | None, None -> replay rest
        | Some f, Some o when f.T.r_id = o.T.r_id ->
            live := List.filter (fun (r : T.request) -> r.T.r_id <> o.T.r_id) !live;
            check_pending "after select";
            replay rest
        | Some f, Some o ->
            (* Different picks are only acceptable on a genuine float
               near-tie of the list-oracle wastes; the pools have then
               diverged, so the schedule ends here. *)
            let wf = waste_of ~now:at f.T.r_id and wo = waste_of ~now:at o.T.r_id in
            if not (Cocheck_util.Numerics.fequal ~eps:1e-9 wf wo) then
              Alcotest.failf
                "%s: at %.6g fast picked %d (waste %.17g), oracle %d (waste %.17g)"
                ctx at f.T.r_id wf o.T.r_id wo
        | Some f, None ->
            Alcotest.failf "%s: fast granted %d, oracle dry" ctx f.T.r_id
        | None, Some o ->
            Alcotest.failf "%s: oracle granted %d, fast dry" ctx o.T.r_id)
  in
  replay s.ops;
  (* Drain both dry: the tail of the backlog must agree too. *)
  let rec drain now =
    match (Fast.select ~now, Oracle.select ~now) with
    | None, None -> check_pending "after drain"
    | Some f, Some o when f.T.r_id = o.T.r_id ->
        live := List.filter (fun (r : T.request) -> r.T.r_id <> o.T.r_id) !live;
        drain (now +. 1.0)
    | Some f, Some o ->
        let wf = waste_of ~now f.T.r_id and wo = waste_of ~now o.T.r_id in
        if not (Cocheck_util.Numerics.fequal ~eps:1e-9 wf wo) then
          Alcotest.failf
            "%s: drain at %.6g fast picked %d (waste %.17g), oracle %d (waste %.17g)"
            ctx now f.T.r_id wf o.T.r_id wo
    | Some _, None | None, Some _ -> Alcotest.failf "%s: drain length mismatch" ctx
  in
  drain 1e7

let test_differential () =
  for seed = 0 to 299 do
    let s = gen_schedule ~seed in
    run_schedule ~ctx:(Printf.sprintf "seed %d" seed) s
  done

(* Stats must stay consistent between the two implementations as well:
   same grant and cancellation totals once a schedule fully drains. *)
let test_stats_agree () =
  for seed = 300 to 320 do
    let s = gen_schedule ~seed in
    let ctx = Printf.sprintf "stats seed %d" seed in
    run_schedule ~ctx s
  done

let () =
  Alcotest.run "cocheck.arbiter-differential"
    [
      ( "differential",
        [
          Alcotest.test_case "300 randomized schedules" `Quick test_differential;
          Alcotest.test_case "20 more (stats consistency)" `Quick test_stats_agree;
        ] );
    ]
