(* Tests for cocheck.core: the Young/Daly period, the waste model, the
   Theorem 1 lower bound and the Least-Waste selection heuristic — checked
   against hand-computed oracles and brute-force equivalents. *)

open Cocheck_core
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Platform = Cocheck_model.Platform
module Units = Cocheck_util.Units
module Numerics = Cocheck_util.Numerics

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Daly                                                                 *)
(* ------------------------------------------------------------------ *)

let test_daly_formula () =
  (* sqrt(2 * 3600 * 50) = 600. *)
  checkf "hand value" 600.0 (Daly.period ~ckpt_s:50.0 ~mtbf_s:3600.0)

let test_daly_validation () =
  Alcotest.check_raises "zero C" (Invalid_argument "Daly.period: checkpoint time must be positive")
    (fun () -> ignore (Daly.period ~ckpt_s:0.0 ~mtbf_s:1.0))

let test_daly_monotone =
  QCheck.Test.make ~name:"daly_monotone_in_C_and_mu" ~count:300
    QCheck.(quad (float_range 1.0 1e4) (float_range 1.0 1e4) (float_range 1e3 1e8) (float_range 1e3 1e8))
    (fun (c1, c2, m1, m2) ->
      let clo = Float.min c1 c2 and chi = Float.max c1 c2 in
      let mlo = Float.min m1 m2 and mhi = Float.max m1 m2 in
      Daly.period ~ckpt_s:clo ~mtbf_s:mlo <= Daly.period ~ckpt_s:chi ~mtbf_s:mlo +. 1e-9
      && Daly.period ~ckpt_s:clo ~mtbf_s:mlo <= Daly.period ~ckpt_s:clo ~mtbf_s:mhi +. 1e-9)

let test_daly_minimizes_waste =
  (* The Daly period is the argmin of Waste.job_waste: perturbing it in
     either direction must not decrease the waste. *)
  QCheck.Test.make ~name:"daly_is_waste_argmin" ~count:300
    QCheck.(pair (float_range 10.0 5000.0) (float_range 1e4 1e8))
    (fun (ckpt_s, mtbf_s) ->
      let p = Daly.period ~ckpt_s ~mtbf_s in
      let w x = Waste.job_waste ~ckpt_s ~period_s:x ~recovery_s:ckpt_s ~mtbf_s in
      w p <= w (p *. 1.1) +. 1e-12 && w p <= w (p *. 0.9) +. 1e-12)

let test_daly_period_for_eap () =
  (* EAP on Cielo at 160 GB/s: C = 52429/160 ~ 327.7 s, mu = 2y/2048. *)
  let platform = Platform.cielo () in
  let expected =
    sqrt (2.0 *. (Units.years 2.0 /. 2048.0) *. (App_class.ckpt_gb Apex.eap ~platform /. 160.0))
  in
  checkf "EAP Daly period" ~eps:1e-6 expected (Daly.period_for Apex.eap ~platform)

let test_daly_valid_regime () =
  Alcotest.(check bool) "C << mu valid" true (Daly.valid_regime ~ckpt_s:10.0 ~mtbf_s:1e6);
  Alcotest.(check bool) "C ~ mu invalid" false (Daly.valid_regime ~ckpt_s:10.0 ~mtbf_s:15.0)

(* ------------------------------------------------------------------ *)
(* Waste                                                                *)
(* ------------------------------------------------------------------ *)

let test_job_waste_hand_value () =
  (* C/P + (P/2 + R)/mu = 100/1000 + (500+200)/10000 = 0.17 *)
  checkf "hand value" 0.17
    (Waste.job_waste ~ckpt_s:100.0 ~period_s:1000.0 ~recovery_s:200.0 ~mtbf_s:10_000.0)

let test_job_waste_no_failures_limit () =
  (* mu -> infinity leaves only the checkpointing term. *)
  checkf "C/P only" ~eps:1e-6 0.1
    (Waste.job_waste ~ckpt_s:100.0 ~period_s:1000.0 ~recovery_s:200.0 ~mtbf_s:1e15)

let load ~n ~q ~c = { Waste.n; q; ckpt_s = c; recovery_s = c }

let test_platform_waste_single_class () =
  (* One class occupying the whole platform reduces to the job waste. *)
  let classes = [ load ~n:4.0 ~q:25 ~c:50.0 ] in
  let mtbf_i = 1e6 /. 25.0 in
  checkf "weighted mean with full occupancy" ~eps:1e-9
    (Waste.job_waste ~ckpt_s:50.0 ~period_s:2000.0 ~recovery_s:50.0 ~mtbf_s:mtbf_i)
    (Waste.platform_waste ~classes ~periods:[ 2000.0 ] ~total_nodes:100 ~node_mtbf_s:1e6)

let test_platform_waste_weighting () =
  (* Two classes with equal job waste but unequal node share: mean must be
     the node-weighted combination. *)
  let c1 = load ~n:1.0 ~q:80 ~c:10.0 and c2 = load ~n:1.0 ~q:20 ~c:10.0 in
  let p1 = 1000.0 and p2 = 1000.0 in
  let w1 =
    Waste.job_waste ~ckpt_s:10.0 ~period_s:p1 ~recovery_s:10.0 ~mtbf_s:(1e7 /. 80.0)
  in
  let w2 =
    Waste.job_waste ~ckpt_s:10.0 ~period_s:p2 ~recovery_s:10.0 ~mtbf_s:(1e7 /. 20.0)
  in
  checkf "weighted" ~eps:1e-9
    ((0.8 *. w1) +. (0.2 *. w2))
    (Waste.platform_waste ~classes:[ c1; c2 ] ~periods:[ p1; p2 ] ~total_nodes:100
       ~node_mtbf_s:1e7)

let test_io_fraction_example () =
  (* Section 3.2's two-job example: both want C=100 each period 400 -> F=0.5. *)
  let classes = [ load ~n:1.0 ~q:1 ~c:100.0; load ~n:1.0 ~q:1 ~c:100.0 ] in
  checkf "F" 0.5 (Waste.io_fraction ~classes ~periods:[ 400.0; 400.0 ])

let test_waste_arity_mismatch () =
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Waste.io_fraction: classes/periods arity mismatch") (fun () ->
      ignore (Waste.io_fraction ~classes:[ load ~n:1.0 ~q:1 ~c:1.0 ] ~periods:[]))

let test_steady_state_counts () =
  let platform = Platform.cielo () in
  let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform in
  let n_eap = fst (List.hd counts) in
  checkf "EAP n_i = 0.66*17888/2048" ~eps:1e-6 (0.66 *. 17888.0 /. 2048.0) n_eap;
  (* Total nodes covered = sum n_i q_i = N (shares sum to 100%). *)
  let covered =
    List.fold_left (fun acc (n, c) -> acc +. (n *. float_of_int c.App_class.nodes)) 0.0 counts
  in
  checkf "full platform covered" ~eps:1e-6 17888.0 covered

(* ------------------------------------------------------------------ *)
(* Lower bound                                                          *)
(* ------------------------------------------------------------------ *)

let test_lower_bound_unconstrained_is_daly () =
  (* Plenty of I/O headroom: lambda = 0 and periods equal Daly's. *)
  let input =
    {
      Lower_bound.classes = [ load ~n:2.0 ~q:100 ~c:10.0 ];
      total_nodes = 10_000;
      node_mtbf_s = Units.years 10.0;
    }
  in
  let r = Lower_bound.solve input in
  checkf "lambda 0" 0.0 r.Lower_bound.lambda;
  let daly = Daly.period ~ckpt_s:10.0 ~mtbf_s:(Units.years 10.0 /. 100.0) in
  checkf "period = Daly" ~eps:1e-6 daly (List.hd r.periods);
  Alcotest.(check bool) "F < 1" true (r.io_fraction < 1.0)

let test_lower_bound_constrained_saturates () =
  (* Scarce bandwidth: lambda > 0 and F = 1 exactly. *)
  let input =
    {
      Lower_bound.classes =
        [ load ~n:5.0 ~q:1000 ~c:3000.0; load ~n:3.0 ~q:500 ~c:2000.0 ];
      total_nodes = 6_500;
      node_mtbf_s = Units.years 1.0;
    }
  in
  let r = Lower_bound.solve input in
  Alcotest.(check bool) "lambda > 0" true (r.Lower_bound.lambda > 0.0);
  checkf "F saturates at 1" ~eps:1e-6 1.0 r.io_fraction;
  List.iter2
    (fun p pd ->
      Alcotest.(check bool) "constrained period >= Daly" true (p >= pd -. 1e-9))
    r.periods r.daly_periods

let test_lower_bound_periods_formula =
  QCheck.Test.make ~name:"eq8_reduces_to_daly_at_lambda0" ~count:200
    QCheck.(triple (float_range 1.0 1e4) (int_range 1 10_000) (float_range 1e5 1e10))
    (fun (c, q, mu) ->
      let cl = load ~n:1.0 ~q ~c in
      let p =
        Lower_bound.period_at ~lambda:0.0 ~total_nodes:100_000 ~node_mtbf_s:mu cl
      in
      Numerics.fequal ~eps:1e-9 p (Daly.period ~ckpt_s:c ~mtbf_s:(mu /. float_of_int q)))

let test_lower_bound_waste_monotone_bandwidth () =
  (* More bandwidth (smaller C) can only lower the bound. *)
  let platform b = Platform.cielo ~bandwidth_gbs:b () in
  let waste b =
    let p = platform b in
    let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform:p in
    (Lower_bound.solve_model ~classes:counts ~platform:p ()).Lower_bound.waste
  in
  let prev = ref (waste 40.0) in
  List.iter
    (fun b ->
      let w = waste b in
      Alcotest.(check bool) (Printf.sprintf "waste(%g) <= waste(prev)" b) true (w <= !prev +. 1e-9);
      prev := w)
    [ 60.0; 80.0; 120.0; 160.0; 320.0 ]

let test_lower_bound_waste_monotone_mtbf () =
  let waste years =
    let p = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:years () in
    let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform:p in
    (Lower_bound.solve_model ~classes:counts ~platform:p ()).Lower_bound.waste
  in
  let prev = ref (waste 2.0) in
  List.iter
    (fun y ->
      let w = waste y in
      Alcotest.(check bool) (Printf.sprintf "waste(%gy) decreases" y) true (w <= !prev +. 1e-9);
      prev := w)
    [ 5.0; 10.0; 25.0; 50.0 ]

let test_lower_bound_cielo_40_flagship () =
  (* Regression: the paper's flagship configuration. The bound computed at
     Cielo/40GB/s/2y has lambda > 0 (constrained) and sits near 0.50. *)
  let p = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform:p in
  let r = Lower_bound.solve_model ~classes:counts ~platform:p () in
  Alcotest.(check bool) "constrained" true (r.Lower_bound.lambda > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "bound %.3f in [0.45, 0.56]" r.waste)
    true
    (r.waste > 0.45 && r.waste < 0.56)

let test_lower_bound_optimal_among_feasible =
  (* The KKT periods minimise the platform waste among random feasible
     period vectors (F <= 1). *)
  QCheck.Test.make ~name:"kkt_beats_random_feasible_periods" ~count:150
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 2) (float_range 0.5 4.0)))
    (fun (_, scales) ->
      let classes = [ load ~n:4.0 ~q:800 ~c:300.0; load ~n:2.0 ~q:400 ~c:200.0 ] in
      let input =
        { Lower_bound.classes; total_nodes = 4_000; node_mtbf_s = Units.years 1.0 }
      in
      let r = Lower_bound.solve input in
      let candidate = List.map2 (fun p s -> p *. s) r.Lower_bound.periods scales in
      let feasible = Waste.io_fraction ~classes ~periods:candidate <= 1.0 in
      (not feasible)
      || Waste.platform_waste ~classes ~periods:candidate ~total_nodes:4_000
           ~node_mtbf_s:(Units.years 1.0)
         >= r.waste -. 1e-9)

let test_regular_io_demand () =
  let platform = Platform.cielo () in
  let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform in
  let demand = Lower_bound.steady_state_regular_io_gbs ~classes:counts ~platform in
  (* Hand-estimate: each class contributes n*(in+out)/walltime; expect a
     small single-digit GB/s total. *)
  Alcotest.(check bool) (Printf.sprintf "demand %.2f GB/s sane" demand) true
    (demand > 0.5 && demand < 20.0)

let test_solve_model_rejects_saturated () =
  let p = Platform.cielo ~bandwidth_gbs:0.001 () in
  let counts = Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform:p in
  Alcotest.(check bool) "saturated bandwidth rejected" true
    (match Lower_bound.solve_model ~classes:counts ~platform:p () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Candidate / Least_waste                                              *)
(* ------------------------------------------------------------------ *)

let io ~key ~nodes ~v ~d = Candidate.Io { key; nodes; service_s = v; waited_s = d }

let ck ~key ~nodes ~c ~d ~r =
  Candidate.Ckpt { key; nodes; ckpt_s = c; exposed_s = d; recovery_s = r }

let test_eq1_hand_value () =
  (* Serving candidate 0 (v=100s) next to one IO candidate (q=10, d=50)
     and one ckpt candidate (q=20, R=30, d=200), mu_ind=1e6:
     W = 100 * (10*(50+100) + 20^2/1e6*(30+200+50)) = 100*(1500+0.112) *)
  let cands =
    [ io ~key:0 ~nodes:5 ~v:100.0 ~d:0.0; io ~key:1 ~nodes:10 ~v:80.0 ~d:50.0;
      ck ~key:2 ~nodes:20 ~c:60.0 ~d:200.0 ~r:30.0 ]
  in
  let w = Least_waste.inflicted_waste ~node_mtbf_s:1e6 ~service_s:100.0 ~self:0 cands in
  checkf "hand value" ~eps:1e-6 (100.0 *. ((10.0 *. 150.0) +. (400.0 /. 1e6 *. 280.0))) w

let test_eq2_excludes_self () =
  (* A lone checkpoint candidate inflicts zero waste on others. *)
  let cands = [ ck ~key:0 ~nodes:100 ~c:60.0 ~d:500.0 ~r:60.0 ] in
  checkf "no others, no waste" 0.0
    (Least_waste.inflicted_waste ~node_mtbf_s:1e6 ~service_s:60.0 ~self:0 cands)

let test_select_empty () =
  Alcotest.(check bool) "empty -> None" true
    (Least_waste.select ~node_mtbf_s:1e6 [] = None)

let test_select_single () =
  let c = io ~key:7 ~nodes:2 ~v:10.0 ~d:0.0 in
  match Least_waste.select ~node_mtbf_s:1e6 [ c ] with
  | Some chosen -> Alcotest.(check int) "sole candidate wins" 7 (Candidate.key chosen)
  | None -> Alcotest.fail "expected a winner"

let test_select_prefers_short_service () =
  (* Two identical IO candidates except service time: the shorter one
     inflicts less waste on the other. *)
  let cands = [ io ~key:0 ~nodes:10 ~v:1000.0 ~d:0.0; io ~key:1 ~nodes:10 ~v:10.0 ~d:0.0 ] in
  match Least_waste.select ~node_mtbf_s:1e6 cands with
  | Some chosen -> Alcotest.(check int) "short job first" 1 (Candidate.key chosen)
  | None -> Alcotest.fail "expected a winner"

let test_select_matches_bruteforce =
  (* The fast selection must agree with an explicit argmin over the same
     waste function. *)
  let cand_gen =
    QCheck.Gen.(
      let* key = int_range 0 1000 in
      let* nodes = int_range 1 5000 in
      let* a = float_range 1.0 5000.0 in
      let* b = float_range 0.0 20_000.0 in
      let* is_io = bool in
      if is_io then return (io ~key ~nodes ~v:a ~d:b)
      else
        let* r = float_range 1.0 2000.0 in
        return (ck ~key ~nodes ~c:a ~d:b ~r))
  in
  QCheck.Test.make ~name:"select_is_argmin" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 12) cand_gen))
    (fun cands ->
      (* Distinct keys required for self-exclusion to be meaningful. *)
      let cands = List.mapi (fun i c ->
          match c with
          | Candidate.Io x -> Candidate.Io { x with key = i }
          | Candidate.Ckpt x -> Candidate.Ckpt { x with key = i }) cands in
      let mu = Units.years 2.0 in
      match Least_waste.select ~node_mtbf_s:mu cands with
      | None -> false
      | Some chosen ->
          let w c =
            Least_waste.inflicted_waste ~node_mtbf_s:mu
              ~service_s:(Candidate.service_time c) ~self:(Candidate.key c) cands
          in
          let min_w =
            List.fold_left (fun acc c -> Float.min acc (w c)) infinity cands
          in
          Numerics.fequal ~eps:1e-9 (w chosen) min_w)

let test_select_tie_breaks_fcfs () =
  let cands = [ io ~key:0 ~nodes:10 ~v:100.0 ~d:5.0; io ~key:1 ~nodes:10 ~v:100.0 ~d:5.0 ] in
  match Least_waste.select ~node_mtbf_s:1e6 cands with
  | Some chosen -> Alcotest.(check int) "first of equals" 0 (Candidate.key chosen)
  | None -> Alcotest.fail "expected a winner"

let test_candidate_validation () =
  let bad = [ io ~key:0 ~nodes:1 ~v:1.0 ~d:(-1.0) ] in
  (* Release path: validation is skipped (grants are hot), garbage in
     garbage out. *)
  Alcotest.(check bool) "release path skips validation" true
    (match Least_waste.select ~node_mtbf_s:1e6 bad with
    | Some _ -> true
    | None | (exception Invalid_argument _) -> false);
  Least_waste.debug_validate := true;
  Fun.protect
    ~finally:(fun () -> Least_waste.debug_validate := false)
    (fun () ->
      Alcotest.(check bool) "negative wait rejected under debug_validate" true
        (match Least_waste.select ~node_mtbf_s:1e6 bad with
        | exception Invalid_argument _ -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Least_waste.Aggregate                                                *)
(* ------------------------------------------------------------------ *)

(* The closed-form W_i = v·(A·now + B + S1·v − term_i) must match the
   direct Σ_{j≠i} evaluation of {!Least_waste.inflicted_waste} for every
   member, within float tolerance — including on pools mutated by long
   interleaved add/remove histories, where the running sums accumulate
   drift the direct sum never sees. Candidates are materialized from the
   same absolute clocks the aggregate stores (waited = now − at,
   exposed = now − lce), exactly as the arbiter's oracle does. *)
let test_aggregate_matches_oracle =
  let module Agg = Least_waste.Aggregate in
  let op_gen =
    QCheck.Gen.(
      let entry =
        let* nodes = int_range 1 5000 in
        let* is_io = bool in
        if is_io then
          let* service_s = float_range 1.0 5000.0 in
          let* enqueued_at = float_range 0.0 1e6 in
          return (Agg.Io_entry { nodes; service_s; enqueued_at })
        else
          let* ckpt_s = float_range 1.0 2000.0 in
          let* recovery_s = float_range 1.0 2000.0 in
          let* last_commit_end = float_range 0.0 1e6 in
          return (Agg.Ckpt_entry { nodes; ckpt_s; recovery_s; last_commit_end })
      in
      list_size (int_range 1 200)
        (oneof [ map (fun e -> `Add e) entry; return `Remove_oldest ]))
  in
  QCheck.Test.make ~name:"aggregate_waste_matches_direct_sum" ~count:300
    (QCheck.make op_gen)
    (fun ops ->
      let mu = Units.years 2.0 in
      let agg = Agg.create ~node_mtbf_s:mu in
      let live = ref [] (* (key, entry), newest first *)
      and next = ref 0 in
      List.iter
        (function
          | `Add e ->
              Agg.add agg ~key:!next e;
              live := (!next, e) :: !live;
              incr next
          | `Remove_oldest -> (
              match List.rev !live with
              | [] -> ()
              | (k, _) :: _ ->
                  Agg.remove agg ~key:k;
                  live := List.filter (fun (k', _) -> k' <> k) !live))
        ops;
      let now = 1e6 +. 12_345.678 in
      let to_candidate (key, e) =
        match e with
        | Agg.Io_entry { nodes; service_s; enqueued_at } ->
            Candidate.Io
              { Candidate.key; nodes; service_s; waited_s = now -. enqueued_at }
        | Agg.Ckpt_entry { nodes; ckpt_s; recovery_s; last_commit_end } ->
            Candidate.Ckpt
              {
                Candidate.key;
                nodes;
                ckpt_s;
                exposed_s = now -. last_commit_end;
                recovery_s;
              }
      in
      let cands = List.map to_candidate (List.rev !live) in
      Agg.size agg = List.length !live
      && List.for_all
           (fun (key, e) ->
             let v = Agg.service_time e in
             let direct =
               Least_waste.inflicted_waste ~node_mtbf_s:mu ~service_s:v ~self:key
                 cands
             in
             let incr_w = Agg.waste agg ~now ~key in
             (* A·now + B cancels catastrophically when waits are short
                next to the clock, so the tolerance is scaled by the
                intermediate magnitude v·A·now as well as the true value. *)
             let da = function
               | Agg.Io_entry { nodes; _ } -> float_of_int nodes
               | Agg.Ckpt_entry { nodes; _ } ->
                   let q = float_of_int nodes in
                   q *. q /. mu
             in
             let a_sum =
               List.fold_left (fun acc (_, e') -> acc +. da e') 0.0 !live
             in
             let scale = v *. a_sum *. now in
             Float.abs (incr_w -. direct)
             <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs direct) scale))
           !live)

let test_aggregate_duplicate_key () =
  let module Agg = Least_waste.Aggregate in
  let agg = Agg.create ~node_mtbf_s:1e6 in
  let e = Agg.Io_entry { nodes = 4; service_s = 10.0; enqueued_at = 0.0 } in
  Agg.add agg ~key:7 e;
  Alcotest.(check bool) "mem" true (Agg.mem agg ~key:7);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Least_waste.Aggregate.add: duplicate key") (fun () ->
      Agg.add agg ~key:7 e);
  Agg.remove agg ~key:7;
  Agg.remove agg ~key:7;
  (* idempotent *)
  Alcotest.(check int) "empty" 0 (Agg.size agg)

(* ------------------------------------------------------------------ *)
(* Strategy                                                             *)
(* ------------------------------------------------------------------ *)

let test_paper_seven () =
  Alcotest.(check int) "seven strategies" 7 (List.length Strategy.paper_seven);
  let names = List.map Strategy.name Strategy.paper_seven in
  Alcotest.(check (list string)) "paper legend order"
    [
      "Oblivious-Fixed"; "Oblivious-Daly"; "Ordered-Fixed"; "Ordered-Daly";
      "Ordered-NB-Fixed"; "Ordered-NB-Daly"; "Least-Waste";
    ]
    names

let test_strategy_roundtrip () =
  List.iter
    (fun s ->
      match Strategy.of_string (Strategy.name s) with
      | Ok s' -> Alcotest.(check bool) (Strategy.name s ^ " roundtrips") true (s = s')
      | Error e -> Alcotest.fail e)
    (Strategy.Baseline :: Strategy.Greedy_exposure :: Strategy.paper_seven)

(* Every constructible strategy — including Fixed periods with whole
   second/minute/hour values, which [name] renders with unit suffixes —
   must survive name → of_string. Whole values keep %g exact, so the
   property is equality, not approximation. *)
let strategy_gen =
  QCheck.Gen.(
    let rule =
      oneof
        [
          return Strategy.Daly;
          return Strategy.Optimal;
          return (Strategy.Fixed Strategy.default_fixed_period_s);
          map (fun h -> Strategy.Fixed (float_of_int h *. 3600.0)) (int_range 1 48);
          map (fun m -> Strategy.Fixed (float_of_int m *. 60.0)) (int_range 1 299);
          map (fun s -> Strategy.Fixed (float_of_int s)) (int_range 1 3599);
        ]
    in
    oneof
      [
        map (fun r -> Strategy.Oblivious r) rule;
        map (fun r -> Strategy.Ordered r) rule;
        map (fun r -> Strategy.Ordered_nb r) rule;
        return Strategy.Least_waste;
        return Strategy.Greedy_exposure;
        return Strategy.Baseline;
      ])

let test_strategy_roundtrip_prop =
  QCheck.Test.make ~name:"of_string (name s) = Ok s" ~count:500
    (QCheck.make ~print:Strategy.name strategy_gen)
    (fun s -> Strategy.of_string (Strategy.name s) = Ok s)

let test_optimal_rule_roundtrip () =
  List.iter
    (fun s ->
      match Strategy.of_string (Strategy.name s) with
      | Ok s' -> Alcotest.(check bool) (Strategy.name s ^ " roundtrips") true (s = s')
      | Error e -> Alcotest.fail e)
    [ Strategy.Ordered_nb Strategy.Optimal; Strategy.Ordered Strategy.Optimal;
      Strategy.Oblivious Strategy.Optimal ];
  Alcotest.(check bool) "opt alias" true
    (Strategy.of_string "ordered-nb-opt" = Ok (Strategy.Ordered_nb Strategy.Optimal))

let test_strategy_parse_variants () =
  Alcotest.(check bool) "lw alias" true (Strategy.of_string "lw" = Ok Strategy.Least_waste);
  Alcotest.(check bool) "ge alias" true
    (Strategy.of_string "ge" = Ok Strategy.Greedy_exposure);
  Alcotest.(check bool) "greedy_exposure underscore" true
    (Strategy.of_string "greedy_exposure" = Ok Strategy.Greedy_exposure);
  Alcotest.(check bool) "case-insensitive" true
    (Strategy.of_string "ORDERED-NB-DALY" = Ok (Strategy.Ordered_nb Strategy.Daly));
  Alcotest.(check bool) "custom fixed period" true
    (Strategy.of_string "oblivious-fixed(2h)" = Ok (Strategy.Oblivious (Strategy.Fixed 7200.0)));
  Alcotest.(check bool) "garbage rejected" true
    (match Strategy.of_string "bogus" with Error _ -> true | Ok _ -> false)

let test_strategy_flags () =
  Alcotest.(check bool) "oblivious blocking" true (Strategy.is_blocking (Strategy.Oblivious Strategy.Daly));
  Alcotest.(check bool) "ordered-nb non-blocking" false (Strategy.is_blocking (Strategy.Ordered_nb Strategy.Daly));
  Alcotest.(check bool) "least-waste non-blocking" false (Strategy.is_blocking Strategy.Least_waste);
  Alcotest.(check bool) "oblivious no token" false (Strategy.uses_token (Strategy.Oblivious Strategy.Daly));
  Alcotest.(check bool) "ordered token" true (Strategy.uses_token (Strategy.Ordered Strategy.Daly));
  Alcotest.(check bool) "lw token" true (Strategy.uses_token Strategy.Least_waste);
  Alcotest.(check bool) "greedy-exposure non-blocking" false
    (Strategy.is_blocking Strategy.Greedy_exposure);
  Alcotest.(check bool) "greedy-exposure token" true
    (Strategy.uses_token Strategy.Greedy_exposure)

let test_fixed_name_with_period () =
  Alcotest.(check string) "non-default period spelled out" "Ordered-Fixed(30m)"
    (Strategy.name (Strategy.Ordered (Strategy.Fixed 1800.0)))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.core"
    [
      ( "daly",
        [
          Alcotest.test_case "formula" `Quick test_daly_formula;
          Alcotest.test_case "validation" `Quick test_daly_validation;
          Alcotest.test_case "EAP on Cielo" `Quick test_daly_period_for_eap;
          Alcotest.test_case "valid regime" `Quick test_daly_valid_regime;
        ]
        @ qsuite [ test_daly_monotone; test_daly_minimizes_waste ] );
      ( "waste",
        [
          Alcotest.test_case "job waste hand value" `Quick test_job_waste_hand_value;
          Alcotest.test_case "no-failure limit" `Quick test_job_waste_no_failures_limit;
          Alcotest.test_case "single class platform" `Quick test_platform_waste_single_class;
          Alcotest.test_case "node weighting" `Quick test_platform_waste_weighting;
          Alcotest.test_case "io fraction example" `Quick test_io_fraction_example;
          Alcotest.test_case "arity checked" `Quick test_waste_arity_mismatch;
          Alcotest.test_case "steady-state counts" `Quick test_steady_state_counts;
        ] );
      ( "lower_bound",
        [
          Alcotest.test_case "unconstrained = Daly" `Quick test_lower_bound_unconstrained_is_daly;
          Alcotest.test_case "constrained saturates F" `Quick test_lower_bound_constrained_saturates;
          Alcotest.test_case "monotone in bandwidth" `Quick test_lower_bound_waste_monotone_bandwidth;
          Alcotest.test_case "monotone in MTBF" `Quick test_lower_bound_waste_monotone_mtbf;
          Alcotest.test_case "flagship regression" `Quick test_lower_bound_cielo_40_flagship;
          Alcotest.test_case "regular I/O demand" `Quick test_regular_io_demand;
          Alcotest.test_case "saturated rejected" `Quick test_solve_model_rejects_saturated;
        ]
        @ qsuite [ test_lower_bound_periods_formula; test_lower_bound_optimal_among_feasible ]
      );
      ( "least_waste",
        [
          Alcotest.test_case "Eq 1 hand value" `Quick test_eq1_hand_value;
          Alcotest.test_case "Eq 2 self-exclusion" `Quick test_eq2_excludes_self;
          Alcotest.test_case "empty pool" `Quick test_select_empty;
          Alcotest.test_case "single candidate" `Quick test_select_single;
          Alcotest.test_case "prefers short service" `Quick test_select_prefers_short_service;
          Alcotest.test_case "FCFS tie-break" `Quick test_select_tie_breaks_fcfs;
          Alcotest.test_case "candidate validation" `Quick test_candidate_validation;
          Alcotest.test_case "aggregate key discipline" `Quick
            test_aggregate_duplicate_key;
        ]
        @ qsuite [ test_select_matches_bruteforce; test_aggregate_matches_oracle ] );
      ( "strategy",
        [
          Alcotest.test_case "paper seven" `Quick test_paper_seven;
          Alcotest.test_case "name roundtrip" `Quick test_strategy_roundtrip;
          Alcotest.test_case "optimal rule roundtrip" `Quick test_optimal_rule_roundtrip;
          Alcotest.test_case "parse variants" `Quick test_strategy_parse_variants;
          Alcotest.test_case "blocking/token flags" `Quick test_strategy_flags;
          Alcotest.test_case "fixed period naming" `Quick test_fixed_name_with_period;
        ]
        @ qsuite [ test_strategy_roundtrip_prop ] );
    ]
