(* Tests for the observability layer: JSON serialization and parsing,
   log-bucketed histograms, time-series clipping, trace export and the
   manifest config round-trip. *)

module Json = Cocheck_obs.Json
module Timer = Cocheck_obs.Timer
module Histogram = Cocheck_obs.Histogram
module Series = Cocheck_obs.Series
module Export = Cocheck_obs.Export
module Manifest = Cocheck_obs.Manifest
module Sampler = Cocheck_obs.Sampler
module Trace = Cocheck_sim.Trace
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  Alcotest.(check string) "plain" {|"abc"|} (Json.escape_string "abc");
  Alcotest.(check string) "quote and backslash" {|"a\"b\\c"|}
    (Json.escape_string "a\"b\\c");
  Alcotest.(check string) "newline tab" {|"a\nb\tc"|} (Json.escape_string "a\nb\tc");
  Alcotest.(check string) "control byte" {|"\u0001"|} (Json.escape_string "\x01");
  Alcotest.(check string) "utf8 passes through" "\"\xc3\xa9\""
    (Json.escape_string "\xc3\xa9")

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 0.5 ]);
        ("c", Json.String "x\"y");
      ]
  in
  Alcotest.(check string) "compact" {|{"a":3,"b":[true,null,0.5],"c":"x\"y"}|}
    (Json.to_string v)

let test_json_parse_roundtrip () =
  let vals =
    [
      Json.Null;
      Json.Bool false;
      Json.Int (-42);
      Json.Float 3.141592653589793;
      Json.Float 1e-300;
      Json.String "he said \"no\"\n\ttab \x7f";
      Json.List [ Json.Int 1; Json.String "two"; Json.List [] ];
      Json.Obj [ ("nested", Json.Obj [ ("k", Json.Float 0.1) ]); ("l", Json.List [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Error e -> Alcotest.failf "parse error: %s" e
      | Ok v' ->
          Alcotest.(check string) "reparse is identity" (Json.to_string v)
            (Json.to_string v'))
    vals

let test_json_nonfinite () =
  let s = Json.to_string (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]) in
  Alcotest.(check string) "encoded as strings" {|["nan","inf","-inf"]|} s;
  match Json.of_string s with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v -> (
      match Json.to_list_opt v with
      | Some [ a; b; c ] ->
          Alcotest.(check bool) "nan back" true
            (match Json.to_float_opt a with Some f -> Float.is_nan f | None -> false);
          Alcotest.(check (option (float 0.0))) "inf back" (Some infinity)
            (Json.to_float_opt b);
          Alcotest.(check (option (float 0.0))) "-inf back" (Some neg_infinity)
            (Json.to_float_opt c)
      | _ -> Alcotest.fail "expected three elements")

let test_json_float_precision =
  QCheck.Test.make ~name:"json_float_roundtrip_is_exact" ~count:500
    QCheck.(float)
    (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok v -> Json.to_float_opt v = Some f
      | Error _ -> false)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure on %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Timer                                                                *)
(* ------------------------------------------------------------------ *)

let test_timer_accumulates () =
  let t = Timer.create () in
  Timer.record t ~name:"a" ~seconds:1.5;
  Timer.record t ~name:"b" ~seconds:0.5;
  Timer.record t ~name:"a" ~seconds:2.5;
  (match Timer.phases t with
  | [ ("a", sa, 2); ("b", sb, 1) ] ->
      checkf "a sums" 4.0 sa;
      checkf "b" 0.5 sb
  | _ -> Alcotest.fail "expected phases a (2 calls) then b (1 call) in order");
  checkf "total" 4.5 (Timer.total_s t);
  let x = Timer.time t ~name:"c" (fun () -> 17) in
  Alcotest.(check int) "thunk result" 17 x;
  Alcotest.(check int) "three phases" 3 (List.length (Timer.phases t))

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucket_edges () =
  let h = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:4 ~name:"h" ~unit_label:"s" () in
  (* top boundary = 1·2^4 = 16 *)
  Histogram.add h 0.0;    (* zero → underflow *)
  Histogram.add h 0.5;    (* sub-bucket → underflow *)
  Histogram.add h (-3.0); (* negative → underflow *)
  Histogram.add h 1.0;    (* first bucket, left edge *)
  Histogram.add h 1.999;  (* first bucket, right edge *)
  Histogram.add h 2.0;    (* second bucket, left edge *)
  Histogram.add h 15.9;   (* last bucket *)
  Histogram.add h 16.0;   (* above top boundary → overflow *)
  Histogram.add h 1e12;   (* far overflow *)
  Histogram.add h nan;    (* dropped *)
  Histogram.add h infinity;
  Alcotest.(check int) "count excludes dropped" 9 (Histogram.count h);
  Alcotest.(check int) "dropped" 2 (Histogram.dropped h);
  Alcotest.(check int) "underflow" 3 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 0; 1 |] (Histogram.counts h);
  checkf "min" (-3.0) (Histogram.min_value h);
  checkf "max" 1e12 (Histogram.max_value h);
  let lo, hi = Histogram.bucket_bounds h ~i:2 in
  checkf "bounds lo" 4.0 lo;
  checkf "bounds hi" 8.0 hi

let test_histogram_quantiles () =
  let h = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:10 ~name:"q" ~unit_label:"s" () in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Histogram.quantile h 0.5));
  for _ = 1 to 100 do
    Histogram.add h 3.0
  done;
  let p50 = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "p50 inside [2,4) bucket" true (p50 >= 2.0 && p50 < 4.0);
  checkf "mean exact" 3.0 (Histogram.mean h);
  checkf "sum exact" 300.0 (Histogram.sum h)

let test_histogram_registry () =
  let reg = Histogram.registry () in
  let a = Histogram.hist reg ~name:"alpha" ~unit_label:"s" () in
  let a' = Histogram.hist reg ~name:"alpha" ~unit_label:"ignored" () in
  Alcotest.(check bool) "find-or-create returns same handle" true (a == a');
  Histogram.add a 2.0;
  Histogram.incr reg "hits" ();
  Histogram.incr reg "hits" ~by:2.0 ();
  Alcotest.(check int) "one histogram" 1 (List.length (Histogram.hists reg));
  (match Histogram.counters reg with
  | [ ("hits", v) ] -> checkf "counter sums" 3.0 v
  | _ -> Alcotest.fail "expected one counter");
  match Json.member "histograms" (Histogram.registry_to_json reg) with
  | Some (Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "registry json lists the histogram"

(* ------------------------------------------------------------------ *)
(* Series                                                               *)
(* ------------------------------------------------------------------ *)

let test_series_window_clipping () =
  (* Samples at the segment boundaries stay; outside is clipped. *)
  let s = Series.create ~t_min:10.0 ~t_max:20.0 ~fields:[ "v" ] () in
  List.iter
    (fun t -> Series.push s ~time:t [| t |])
    [ 0.0; 9.999; 10.0; 15.0; 20.0; 20.001; 30.0 ];
  Alcotest.(check int) "inside retained" 3 (Series.length s);
  Alcotest.(check int) "outside clipped" 4 (Series.clipped s);
  Alcotest.(check int) "nothing evicted" 0 (Series.dropped s);
  Alcotest.(check (list (float 1e-9))) "boundary samples inclusive"
    [ 10.0; 15.0; 20.0 ]
    (List.map fst (Series.column s ~field:"v"))

let test_series_ring_eviction () =
  let s = Series.create ~capacity:3 ~fields:[ "a"; "b" ] () in
  for i = 0 to 9 do
    Series.push s ~time:(float_of_int i) [| float_of_int i; 0.0 |]
  done;
  Alcotest.(check int) "capacity retained" 3 (Series.length s);
  Alcotest.(check int) "evictions counted" 7 (Series.dropped s);
  Alcotest.(check (list (float 1e-9))) "newest kept in order" [ 7.0; 8.0; 9.0 ]
    (List.map fst (Series.rows s))

let test_series_csv_and_arity () =
  let s = Series.create ~fields:[ "x"; "y" ] () in
  Series.push s ~time:1.0 [| 0.25; 4.0 |];
  Alcotest.(check string) "csv" "time,x,y\n1,0.25,4\n" (Series.to_csv s);
  Alcotest.(check bool) "arity mismatch rejected" true
    (match Series.push s ~time:2.0 [| 1.0 |] with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_series_sparkline () =
  let s = Series.create ~fields:[ "v" ] () in
  for i = 0 to 63 do
    Series.push s ~time:(float_of_int i) [| float_of_int i |]
  done;
  let line = Series.sparkline s ~field:"v" ~width:8 in
  (* 8 cells of 3-byte UTF-8 glyphs, monotone non-decreasing levels. *)
  Alcotest.(check int) "8 glyphs" 24 (String.length line);
  let empty = Series.create ~fields:[ "v" ] () in
  Alcotest.(check string) "empty series blank" (String.make 8 ' ')
    (Series.sparkline empty ~field:"v" ~width:8)

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let test_export_jsonl () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t
    { Trace.time = 0.0; job = 1; inst = 2;
      kind = Trace.Job_started { restarts = 0; nodes = 512 } };
  Trace.record t
    { Trace.time = 5.0; job = 1; inst = 2; kind = Trace.Ckpt_committed { work = 60.0 } };
  Trace.record t
    { Trace.time = 9.0; job = -1; inst = -1; kind = Trace.Node_failure { node = 7 } };
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl_of_trace t)) in
  Alcotest.(check int) "header + one line per event" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e
      | Ok _ -> ())
    lines;
  let header = Result.get_ok (Json.of_string (List.hd lines)) in
  Alcotest.(check (option string)) "schema" (Some Export.schema)
    (Option.bind (Json.member "schema" header) Json.to_string_opt);
  Alcotest.(check (option (float 0.0))) "events" (Some 3.0)
    (Option.bind (Json.member "events" header) Json.to_float_opt);
  let failure = Result.get_ok (Json.of_string (List.nth lines 3)) in
  Alcotest.(check (option (float 0.0))) "idle-node failure job -1" (Some (-1.0))
    (Option.bind (Json.member "job" failure) Json.to_float_opt);
  Alcotest.(check (option (float 0.0))) "node payload" (Some 7.0)
    (Option.bind (Json.member "node" failure) Json.to_float_opt)

let test_export_csv () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t
    { Trace.time = 1.0; job = 3; inst = 4; kind = Trace.Job_killed { lost_work = 42.0 } };
  let csv = Export.csv_of_trace t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "time,job,inst,kind,nodes,restarts,work,lost_work,node"
    (List.hd lines);
  Alcotest.(check bool) "lost_work column populated" true
    (match lines with [ _; row ] -> String.length row > 0 &&
        List.nth (String.split_on_char ',' row) 7 = "42" | _ -> false)

(* ------------------------------------------------------------------ *)
(* Sampler on a real simulation                                         *)
(* ------------------------------------------------------------------ *)

let small_cfg strategy =
  Config.make
    ~platform:(Platform.cielo ~bandwidth_gbs:80.0 ())
    ~strategy ~seed:3 ~days:1.0 ()

let test_sampler_collects () =
  let cfg = small_cfg Strategy.Least_waste in
  let series, observe = Sampler.create () in
  let dt = cfg.Config.horizon /. 50.0 in
  let (_ : Simulator.result) = Simulator.run ~sample:(dt, observe) cfg in
  Alcotest.(check bool) "samples collected" true (Series.length series >= 40);
  Alcotest.(check bool) "at least 4 series beyond time" true
    (List.length (Series.fields series) >= 4);
  let used = List.map snd (Series.column series ~field:"used_nodes") in
  Alcotest.(check bool) "platform is in use" true (List.exists (fun v -> v > 0.0) used);
  (* Cumulative waste never decreases. *)
  let waste = List.map snd (Series.column series ~field:"waste_ns") in
  Alcotest.(check bool) "waste monotone" true
    (fst
       (List.fold_left
          (fun (ok, prev) v -> (ok && v >= prev, v))
          (true, neg_infinity) waste))

let test_sampler_segment_clipping () =
  let cfg = small_cfg Strategy.Least_waste in
  let series, observe =
    Sampler.create ~t_min:cfg.Config.seg_start ~t_max:cfg.Config.seg_end ()
  in
  let dt = cfg.Config.horizon /. 100.0 in
  let (_ : Simulator.result) = Simulator.run ~sample:(dt, observe) cfg in
  Alcotest.(check bool) "clipped some boundary samples" true (Series.clipped series > 0);
  List.iter
    (fun (t, _) ->
      if t < cfg.Config.seg_start || t > cfg.Config.seg_end then
        Alcotest.failf "sample at %g escaped the segment window" t)
    (Series.rows series)

let test_sampler_does_not_perturb () =
  let cfg = small_cfg Strategy.Least_waste in
  let plain = Simulator.run cfg in
  let _, observe = Sampler.create () in
  let sampled = Simulator.run ~sample:(cfg.Config.horizon /. 37.0, observe) cfg in
  checkf "progress unchanged" plain.Simulator.progress_ns sampled.Simulator.progress_ns;
  checkf "waste unchanged" plain.Simulator.waste_ns sampled.Simulator.waste_ns;
  Alcotest.(check int) "ckpts unchanged" plain.Simulator.ckpts_committed
    sampled.Simulator.ckpts_committed

(* ------------------------------------------------------------------ *)
(* Manifest                                                             *)
(* ------------------------------------------------------------------ *)

let exotic_cfg () =
  Config.make
    ~platform:(Platform.prospective ~bandwidth_gbs:750.0 ~node_mtbf_years:7.5 ())
    ~strategy:(Strategy.Ordered_nb Strategy.Daly) ~seed:97 ~days:11.0
    ~fill_factor:1.25
    ~failure_dist:(Cocheck_sim.Failure_trace.Weibull { shape = 0.7 })
    ~interference_alpha:0.3
    ~burst_buffer:{ Cocheck_sim.Burst_buffer.capacity_gb = 1000.0; bandwidth_gbs = 2000.0 }
    ~multilevel:
      { Config.local_period_s = 600.0; local_cost_s = 5.0; local_recovery_s = 30.0;
        soft_fraction = 0.6 }
    ()

let test_manifest_config_roundtrip () =
  List.iter
    (fun cfg ->
      match Manifest.config_of_json (Manifest.config_to_json cfg) with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok cfg' ->
          Alcotest.(check bool) "exact Config.t round-trip" true (cfg = cfg'))
    [ small_cfg Strategy.Least_waste; small_cfg Strategy.Baseline; exotic_cfg () ]

let test_manifest_roundtrip_through_text () =
  let cfg = exotic_cfg () in
  let r = Simulator.run (small_cfg Strategy.Least_waste) in
  let timer = Timer.create () in
  Timer.record timer ~name:"simulate" ~seconds:1.25;
  let reg = Histogram.registry () in
  Histogram.add (Histogram.hist reg ~name:"h" ~unit_label:"s" ()) 2.0;
  let m = Manifest.make ~cfg ~timer ~result:r ~registry:reg () in
  (* Through the pretty printer and the parser, as `write`/`load` would. *)
  match Json.of_string (Json.to_string_pretty m) with
  | Error e -> Alcotest.failf "manifest reparse failed: %s" e
  | Ok m' -> (
      match Manifest.config_of_manifest m' with
      | Error e -> Alcotest.failf "config_of_manifest failed: %s" e
      | Ok cfg' ->
          Alcotest.(check bool) "config survives text round-trip" true (cfg = cfg');
          Alcotest.(check (option string)) "schema" (Some Manifest.schema)
            (Option.bind (Json.member "schema" m') Json.to_string_opt);
          Alcotest.(check bool) "result section present" true
            (Json.member "result" m' <> None);
          Alcotest.(check bool) "timings section present" true
            (Json.member "timings" m' <> None);
          Alcotest.(check bool) "instrumentation section present" true
            (Json.member "instrumentation" m' <> None))

let test_manifest_strategy_names_parse_back () =
  List.iter
    (fun s ->
      match Strategy.of_string (Manifest.strategy_to_string s) with
      | Ok s' -> Alcotest.(check bool) "name parses back" true (s = s')
      | Error e -> Alcotest.failf "%s: %s" (Strategy.name s) e)
    (Strategy.Baseline :: Strategy.paper_seven)

let test_manifest_write_load () =
  let path = Filename.temp_file "cocheck-manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cfg = small_cfg Strategy.Least_waste in
      Manifest.write ~path (Manifest.make ~cfg ());
      match Manifest.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok m -> (
          match Manifest.config_of_manifest m with
          | Error e -> Alcotest.failf "decode failed: %s" e
          | Ok cfg' ->
              Alcotest.(check bool) "disk round-trip exact" true (cfg = cfg')))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "compact render" `Quick test_json_render;
          Alcotest.test_case "parse round-trip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ]
        @ qsuite [ test_json_float_precision ] );
      ( "timer",
        [ Alcotest.test_case "accumulates phases" `Quick test_timer_accumulates ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "registry" `Quick test_histogram_registry;
        ] );
      ( "series",
        [
          Alcotest.test_case "window clipping" `Quick test_series_window_clipping;
          Alcotest.test_case "ring eviction" `Quick test_series_ring_eviction;
          Alcotest.test_case "csv and arity" `Quick test_series_csv_and_arity;
          Alcotest.test_case "sparkline" `Quick test_series_sparkline;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick test_export_jsonl;
          Alcotest.test_case "csv" `Quick test_export_csv;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "collects platform series" `Quick test_sampler_collects;
          Alcotest.test_case "segment clipping" `Quick test_sampler_segment_clipping;
          Alcotest.test_case "read-only probes" `Quick test_sampler_does_not_perturb;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "config round-trip" `Quick test_manifest_config_roundtrip;
          Alcotest.test_case "text round-trip" `Quick test_manifest_roundtrip_through_text;
          Alcotest.test_case "strategy names" `Quick test_manifest_strategy_names_parse_back;
          Alcotest.test_case "write/load" `Quick test_manifest_write_load;
        ] );
    ]
