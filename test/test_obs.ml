(* Tests for the observability layer: JSON serialization and parsing,
   log-bucketed histograms, time-series clipping, trace export and the
   manifest config round-trip. *)

module Json = Cocheck_obs.Json
module Timer = Cocheck_obs.Timer
module Histogram = Cocheck_obs.Histogram
module Series = Cocheck_obs.Series
module Export = Cocheck_obs.Export
module Manifest = Cocheck_obs.Manifest
module Sampler = Cocheck_obs.Sampler
module Trace = Cocheck_sim.Trace
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Platform = Cocheck_model.Platform
module Strategy = Cocheck_core.Strategy

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  Alcotest.(check string) "plain" {|"abc"|} (Json.escape_string "abc");
  Alcotest.(check string) "quote and backslash" {|"a\"b\\c"|}
    (Json.escape_string "a\"b\\c");
  Alcotest.(check string) "newline tab" {|"a\nb\tc"|} (Json.escape_string "a\nb\tc");
  Alcotest.(check string) "control byte" {|"\u0001"|} (Json.escape_string "\x01");
  Alcotest.(check string) "utf8 passes through" "\"\xc3\xa9\""
    (Json.escape_string "\xc3\xa9")

let test_json_render () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 0.5 ]);
        ("c", Json.String "x\"y");
      ]
  in
  Alcotest.(check string) "compact" {|{"a":3,"b":[true,null,0.5],"c":"x\"y"}|}
    (Json.to_string v)

let test_json_parse_roundtrip () =
  let vals =
    [
      Json.Null;
      Json.Bool false;
      Json.Int (-42);
      Json.Float 3.141592653589793;
      Json.Float 1e-300;
      Json.String "he said \"no\"\n\ttab \x7f";
      Json.List [ Json.Int 1; Json.String "two"; Json.List [] ];
      Json.Obj [ ("nested", Json.Obj [ ("k", Json.Float 0.1) ]); ("l", Json.List [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Error e -> Alcotest.failf "parse error: %s" e
      | Ok v' ->
          Alcotest.(check string) "reparse is identity" (Json.to_string v)
            (Json.to_string v'))
    vals

let test_json_nonfinite () =
  let s = Json.to_string (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]) in
  Alcotest.(check string) "encoded as strings" {|["nan","inf","-inf"]|} s;
  match Json.of_string s with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v -> (
      match Json.to_list_opt v with
      | Some [ a; b; c ] ->
          Alcotest.(check bool) "nan back" true
            (match Json.to_float_opt a with Some f -> Float.is_nan f | None -> false);
          Alcotest.(check (option (float 0.0))) "inf back" (Some infinity)
            (Json.to_float_opt b);
          Alcotest.(check (option (float 0.0))) "-inf back" (Some neg_infinity)
            (Json.to_float_opt c)
      | _ -> Alcotest.fail "expected three elements")

let test_json_float_precision =
  QCheck.Test.make ~name:"json_float_roundtrip_is_exact" ~count:500
    QCheck.(float)
    (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok v -> Json.to_float_opt v = Some f
      | Error _ -> false)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure on %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Timer                                                                *)
(* ------------------------------------------------------------------ *)

let test_timer_accumulates () =
  let t = Timer.create () in
  Timer.record t ~name:"a" ~seconds:1.5;
  Timer.record t ~name:"b" ~seconds:0.5;
  Timer.record t ~name:"a" ~seconds:2.5;
  (match Timer.phases t with
  | [ ("a", sa, 2); ("b", sb, 1) ] ->
      checkf "a sums" 4.0 sa;
      checkf "b" 0.5 sb
  | _ -> Alcotest.fail "expected phases a (2 calls) then b (1 call) in order");
  checkf "total" 4.5 (Timer.total_s t);
  let x = Timer.time t ~name:"c" (fun () -> 17) in
  Alcotest.(check int) "thunk result" 17 x;
  Alcotest.(check int) "three phases" 3 (List.length (Timer.phases t))

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucket_edges () =
  let h = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:4 ~name:"h" ~unit_label:"s" () in
  (* top boundary = 1·2^4 = 16 *)
  Histogram.add h 0.0;    (* zero → underflow *)
  Histogram.add h 0.5;    (* sub-bucket → underflow *)
  Histogram.add h (-3.0); (* negative → underflow *)
  Histogram.add h 1.0;    (* first bucket, left edge *)
  Histogram.add h 1.999;  (* first bucket, right edge *)
  Histogram.add h 2.0;    (* second bucket, left edge *)
  Histogram.add h 15.9;   (* last bucket *)
  Histogram.add h 16.0;   (* above top boundary → overflow *)
  Histogram.add h 1e12;   (* far overflow *)
  Histogram.add h nan;    (* dropped *)
  Histogram.add h infinity;
  Alcotest.(check int) "count excludes dropped" 9 (Histogram.count h);
  Alcotest.(check int) "dropped" 2 (Histogram.dropped h);
  Alcotest.(check int) "underflow" 3 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 0; 1 |] (Histogram.counts h);
  checkf "min" (-3.0) (Histogram.min_value h);
  checkf "max" 1e12 (Histogram.max_value h);
  let lo, hi = Histogram.bucket_bounds h ~i:2 in
  checkf "bounds lo" 4.0 lo;
  checkf "bounds hi" 8.0 hi

let test_histogram_quantiles () =
  let h = Histogram.create ~lo:1.0 ~ratio:2.0 ~buckets:10 ~name:"q" ~unit_label:"s" () in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Histogram.quantile h 0.5));
  for _ = 1 to 100 do
    Histogram.add h 3.0
  done;
  let p50 = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "p50 inside [2,4) bucket" true (p50 >= 2.0 && p50 < 4.0);
  checkf "mean exact" 3.0 (Histogram.mean h);
  checkf "sum exact" 300.0 (Histogram.sum h)

let test_histogram_registry () =
  let reg = Histogram.registry () in
  let a = Histogram.hist reg ~name:"alpha" ~unit_label:"s" () in
  let a' = Histogram.hist reg ~name:"alpha" ~unit_label:"ignored" () in
  Alcotest.(check bool) "find-or-create returns same handle" true (a == a');
  Histogram.add a 2.0;
  Histogram.incr reg "hits" ();
  Histogram.incr reg "hits" ~by:2.0 ();
  Alcotest.(check int) "one histogram" 1 (List.length (Histogram.hists reg));
  (match Histogram.counters reg with
  | [ ("hits", v) ] -> checkf "counter sums" 3.0 v
  | _ -> Alcotest.fail "expected one counter");
  match Json.member "histograms" (Histogram.registry_to_json reg) with
  | Some (Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "registry json lists the histogram"

(* ------------------------------------------------------------------ *)
(* Series                                                               *)
(* ------------------------------------------------------------------ *)

let test_series_window_clipping () =
  (* Samples at the segment boundaries stay; outside is clipped. *)
  let s = Series.create ~t_min:10.0 ~t_max:20.0 ~fields:[ "v" ] () in
  List.iter
    (fun t -> Series.push s ~time:t [| t |])
    [ 0.0; 9.999; 10.0; 15.0; 20.0; 20.001; 30.0 ];
  Alcotest.(check int) "inside retained" 3 (Series.length s);
  Alcotest.(check int) "outside clipped" 4 (Series.clipped s);
  Alcotest.(check int) "nothing evicted" 0 (Series.dropped s);
  Alcotest.(check (list (float 1e-9))) "boundary samples inclusive"
    [ 10.0; 15.0; 20.0 ]
    (List.map fst (Series.column s ~field:"v"))

let test_series_ring_eviction () =
  let s = Series.create ~capacity:3 ~fields:[ "a"; "b" ] () in
  for i = 0 to 9 do
    Series.push s ~time:(float_of_int i) [| float_of_int i; 0.0 |]
  done;
  Alcotest.(check int) "capacity retained" 3 (Series.length s);
  Alcotest.(check int) "evictions counted" 7 (Series.dropped s);
  Alcotest.(check (list (float 1e-9))) "newest kept in order" [ 7.0; 8.0; 9.0 ]
    (List.map fst (Series.rows s))

let test_series_csv_and_arity () =
  let s = Series.create ~fields:[ "x"; "y" ] () in
  Series.push s ~time:1.0 [| 0.25; 4.0 |];
  Alcotest.(check string) "csv" "time,x,y\n1,0.25,4\n" (Series.to_csv s);
  Alcotest.(check bool) "arity mismatch rejected" true
    (match Series.push s ~time:2.0 [| 1.0 |] with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_series_sparkline () =
  let s = Series.create ~fields:[ "v" ] () in
  for i = 0 to 63 do
    Series.push s ~time:(float_of_int i) [| float_of_int i |]
  done;
  let line = Series.sparkline s ~field:"v" ~width:8 in
  (* 8 cells of 3-byte UTF-8 glyphs, monotone non-decreasing levels. *)
  Alcotest.(check int) "8 glyphs" 24 (String.length line);
  let empty = Series.create ~fields:[ "v" ] () in
  Alcotest.(check string) "empty series blank" (String.make 8 ' ')
    (Series.sparkline empty ~field:"v" ~width:8)

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let test_export_jsonl () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t
    { Trace.time = 0.0; job = 1; inst = 2;
      kind = Trace.Job_started { restarts = 0; nodes = 512 } };
  Trace.record t
    { Trace.time = 5.0; job = 1; inst = 2; kind = Trace.Ckpt_committed { work = 60.0 } };
  Trace.record t
    { Trace.time = 9.0; job = -1; inst = -1; kind = Trace.Node_failure { node = 7 } };
  let lines = String.split_on_char '\n' (String.trim (Export.jsonl_of_trace t)) in
  Alcotest.(check int) "header + one line per event" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e
      | Ok _ -> ())
    lines;
  let header = Result.get_ok (Json.of_string (List.hd lines)) in
  Alcotest.(check (option string)) "schema" (Some Export.schema)
    (Option.bind (Json.member "schema" header) Json.to_string_opt);
  Alcotest.(check (option (float 0.0))) "events" (Some 3.0)
    (Option.bind (Json.member "events" header) Json.to_float_opt);
  let failure = Result.get_ok (Json.of_string (List.nth lines 3)) in
  Alcotest.(check (option (float 0.0))) "idle-node failure job -1" (Some (-1.0))
    (Option.bind (Json.member "job" failure) Json.to_float_opt);
  Alcotest.(check (option (float 0.0))) "node payload" (Some 7.0)
    (Option.bind (Json.member "node" failure) Json.to_float_opt)

let test_export_csv () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t
    { Trace.time = 1.0; job = 3; inst = 4; kind = Trace.Job_killed { lost_work = 42.0 } };
  let csv = Export.csv_of_trace t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "time,job,inst,kind,nodes,restarts,work,lost_work,node"
    (List.hd lines);
  Alcotest.(check bool) "lost_work column populated" true
    (match lines with [ _; row ] -> String.length row > 0 &&
        List.nth (String.split_on_char ',' row) 7 = "42" | _ -> false)

(* ------------------------------------------------------------------ *)
(* Sampler on a real simulation                                         *)
(* ------------------------------------------------------------------ *)

let small_cfg strategy =
  Config.make
    ~platform:(Platform.cielo ~bandwidth_gbs:80.0 ())
    ~strategy ~seed:3 ~days:1.0 ()

let test_sampler_collects () =
  let cfg = small_cfg Strategy.Least_waste in
  let series, observe = Sampler.create () in
  let dt = cfg.Config.horizon /. 50.0 in
  let (_ : Simulator.result) = Simulator.run ~sample:(dt, observe) cfg in
  Alcotest.(check bool) "samples collected" true (Series.length series >= 40);
  Alcotest.(check bool) "at least 4 series beyond time" true
    (List.length (Series.fields series) >= 4);
  let used = List.map snd (Series.column series ~field:"used_nodes") in
  Alcotest.(check bool) "platform is in use" true (List.exists (fun v -> v > 0.0) used);
  (* Cumulative waste never decreases. *)
  let waste = List.map snd (Series.column series ~field:"waste_ns") in
  Alcotest.(check bool) "waste monotone" true
    (fst
       (List.fold_left
          (fun (ok, prev) v -> (ok && v >= prev, v))
          (true, neg_infinity) waste))

let test_sampler_segment_clipping () =
  let cfg = small_cfg Strategy.Least_waste in
  let series, observe =
    Sampler.create ~t_min:cfg.Config.seg_start ~t_max:cfg.Config.seg_end ()
  in
  let dt = cfg.Config.horizon /. 100.0 in
  let (_ : Simulator.result) = Simulator.run ~sample:(dt, observe) cfg in
  Alcotest.(check bool) "clipped some boundary samples" true (Series.clipped series > 0);
  List.iter
    (fun (t, _) ->
      if t < cfg.Config.seg_start || t > cfg.Config.seg_end then
        Alcotest.failf "sample at %g escaped the segment window" t)
    (Series.rows series)

let test_sampler_does_not_perturb () =
  let cfg = small_cfg Strategy.Least_waste in
  let plain = Simulator.run cfg in
  let _, observe = Sampler.create () in
  let sampled = Simulator.run ~sample:(cfg.Config.horizon /. 37.0, observe) cfg in
  checkf "progress unchanged" plain.Simulator.progress_ns sampled.Simulator.progress_ns;
  checkf "waste unchanged" plain.Simulator.waste_ns sampled.Simulator.waste_ns;
  Alcotest.(check int) "ckpts unchanged" plain.Simulator.ckpts_committed
    sampled.Simulator.ckpts_committed

(* ------------------------------------------------------------------ *)
(* Manifest                                                             *)
(* ------------------------------------------------------------------ *)

let exotic_cfg () =
  Config.make
    ~platform:(Platform.prospective ~bandwidth_gbs:750.0 ~node_mtbf_years:7.5 ())
    ~strategy:(Strategy.Ordered_nb Strategy.Daly) ~seed:97 ~days:11.0
    ~fill_factor:1.25
    ~failure_dist:(Cocheck_sim.Failure_trace.Weibull { shape = 0.7 })
    ~interference_alpha:0.3
    ~burst_buffer:{ Cocheck_sim.Burst_buffer.capacity_gb = 1000.0; bandwidth_gbs = 2000.0 }
    ~multilevel:
      (Config.local_level ~period_s:600.0 ~cost_s:5.0 ~recovery_s:30.0
         ~soft_fraction:0.6)
    ()

let test_manifest_config_roundtrip () =
  List.iter
    (fun cfg ->
      match Manifest.config_of_json (Manifest.config_to_json cfg) with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok cfg' ->
          Alcotest.(check bool) "exact Config.t round-trip" true (cfg = cfg'))
    [ small_cfg Strategy.Least_waste; small_cfg Strategy.Baseline; exotic_cfg () ]

let test_manifest_roundtrip_through_text () =
  let cfg = exotic_cfg () in
  let r = Simulator.run (small_cfg Strategy.Least_waste) in
  let timer = Timer.create () in
  Timer.record timer ~name:"simulate" ~seconds:1.25;
  let reg = Histogram.registry () in
  Histogram.add (Histogram.hist reg ~name:"h" ~unit_label:"s" ()) 2.0;
  let m = Manifest.make ~cfg ~timer ~result:r ~registry:reg () in
  (* Through the pretty printer and the parser, as `write`/`load` would. *)
  match Json.of_string (Json.to_string_pretty m) with
  | Error e -> Alcotest.failf "manifest reparse failed: %s" e
  | Ok m' -> (
      match Manifest.config_of_manifest m' with
      | Error e -> Alcotest.failf "config_of_manifest failed: %s" e
      | Ok cfg' ->
          Alcotest.(check bool) "config survives text round-trip" true (cfg = cfg');
          Alcotest.(check (option string)) "schema" (Some Manifest.schema)
            (Option.bind (Json.member "schema" m') Json.to_string_opt);
          Alcotest.(check bool) "result section present" true
            (Json.member "result" m' <> None);
          Alcotest.(check bool) "timings section present" true
            (Json.member "timings" m' <> None);
          Alcotest.(check bool) "instrumentation section present" true
            (Json.member "instrumentation" m' <> None))

let test_manifest_strategy_names_parse_back () =
  List.iter
    (fun s ->
      match Strategy.of_string (Manifest.strategy_to_string s) with
      | Ok s' -> Alcotest.(check bool) "name parses back" true (s = s')
      | Error e -> Alcotest.failf "%s: %s" (Strategy.name s) e)
    (Strategy.Baseline :: Strategy.paper_seven)

let test_manifest_write_load () =
  let path = Filename.temp_file "cocheck-manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cfg = small_cfg Strategy.Least_waste in
      Manifest.write ~path (Manifest.make ~cfg ());
      match Manifest.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok m -> (
          match Manifest.config_of_manifest m with
          | Error e -> Alcotest.failf "decode failed: %s" e
          | Ok cfg' ->
              Alcotest.(check bool) "disk round-trip exact" true (cfg = cfg')))

(* ------------------------------------------------------------------ *)
(* Span / Tracing / Runtime                                             *)
(* ------------------------------------------------------------------ *)

module Span = Cocheck_obs.Span
module Tracing = Cocheck_obs.Tracing
module Runtime = Cocheck_obs.Runtime
module Pool = Cocheck_parallel.Pool

let sample_events =
  [
    Span.Track_name { track = 0; name = "worker-0" };
    Span.Slice
      {
        name = "cell 0 rep 1";
        cat = "campaign";
        track = 0;
        ts_us = 10.0;
        dur_us = 250.5;
        args = [ ("source", Span.Str "simulated"); ("rep", Span.Num 1.0) ];
      };
    Span.Instant
      { name = "failure"; cat = "sim"; track = 3; ts_us = 42.25; args = [] };
    Span.Counter
      { name = "engine/gc"; ts_us = 99.0; values = [ ("minor_words", 1234.0) ] };
  ]

let test_span_export_roundtrip () =
  List.iter
    (fun ev ->
      match Span.of_trace_event (Span.to_trace_event ~pid:1 ev) with
      | Some ev' -> Alcotest.(check bool) "event round-trips" true (ev = ev')
      | None -> Alcotest.fail "decoder rejected its own encoding")
    sample_events;
  match Span.of_export (Span.export ~process_name:"test" sample_events) with
  | Ok evs -> Alcotest.(check bool) "document round-trips" true (evs = sample_events)
  | Error e -> Alcotest.failf "of_export: %s" e

let test_span_export_through_text () =
  let doc = Span.export sample_events in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok doc' -> (
      Alcotest.(check bool) "traceEvents array present" true
        (Json.member "traceEvents" doc' <> None);
      match Span.of_export doc' with
      | Ok evs -> Alcotest.(check bool) "text round-trip" true (evs = sample_events)
      | Error e -> Alcotest.failf "of_export: %s" e)

let test_tracing_records_and_sorts () =
  let t = Tracing.create () in
  Tracing.span t ~track:7 "outer" (fun () ->
      Tracing.span t ~track:7 "inner" (fun () -> ignore (Sys.opaque_identity 1)));
  Tracing.instant t ~track:7 "mark";
  Alcotest.(check int) "three events" 3 (Tracing.length t);
  let slices =
    List.filter_map
      (function Span.Slice { name; ts_us; dur_us; _ } -> Some (name, ts_us, dur_us) | _ -> None)
      (Tracing.events t)
  in
  match slices with
  | [ ("outer", ts_o, dur_o); ("inner", ts_i, dur_i) ]
  | [ ("inner", ts_i, dur_i); ("outer", ts_o, dur_o) ] ->
      Alcotest.(check bool) "child starts within parent" true (ts_i >= ts_o);
      Alcotest.(check bool) "child ends within parent" true
        (ts_i +. dur_i <= ts_o +. dur_o +. 1.0)
  | other -> Alcotest.failf "expected outer+inner slices, got %d" (List.length other)

let test_span_records_on_exception () =
  let t = Tracing.create () in
  (match Tracing.span t "boom" (fun () -> failwith "kaboom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Tracing.events t with
  | [ Span.Slice { name = "boom"; args; _ } ] ->
      Alcotest.(check bool) "exception arg recorded" true
        (List.mem_assoc "exception" args)
  | _ -> Alcotest.fail "expected a single slice"

let test_tracing_disabled_is_free () =
  let t = Tracing.disabled in
  Alcotest.(check bool) "not enabled" false (Tracing.is_enabled t);
  Alcotest.(check int) "span runs thunk" 41 (Tracing.span t "x" (fun () -> 41));
  Tracing.instant t "i";
  Tracing.counter t "c" [ ("v", 1.0) ];
  Tracing.name_track t ~track:0 "lane";
  Tracing.end_span t (Tracing.begin_span t "y");
  Alcotest.(check int) "nothing recorded" 0 (Tracing.length t);
  Alcotest.(check bool) "pool telemetry is the sentinel" true
    (Tracing.pool_telemetry t () == Pool.no_telemetry);
  let engine = Cocheck_des.Engine.create () in
  let flush = Tracing.instrument_engine t ~kinds:[| "other" |] engine in
  flush ();
  Alcotest.(check bool) "no stats attached when disabled" true
    (Cocheck_des.Engine.stats engine = None)

let test_tracing_capacity_drops () =
  let t = Tracing.create ~capacity:2 () in
  Tracing.instant t "a";
  Tracing.instant t "b";
  Tracing.instant t "c";
  Alcotest.(check int) "kept" 2 (Tracing.length t);
  Alcotest.(check int) "dropped" 1 (Tracing.dropped t)

let test_tracing_write_perfetto_file () =
  let t = Tracing.create () in
  Tracing.span t "phase" (fun () -> ());
  Tracing.counter t "engine/gc" [ ("minor_words", 7.0) ];
  let path = Filename.temp_file "cocheck-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tracing.write ~path ~process_name:"test" t;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string s with
      | Error e -> Alcotest.failf "unparseable trace file: %s" e
      | Ok doc -> (
          match Span.of_export doc with
          | Ok evs -> Alcotest.(check int) "both events survive" 2 (List.length evs)
          | Error e -> Alcotest.failf "of_export: %s" e))

let test_pool_spans_sequential_deterministic () =
  (* The satellite determinism contract: an observed sequential pool puts
     every task slice on track 0, one slice per task. *)
  let t = Tracing.create () in
  let reg = Histogram.registry () in
  Pool.with_pool ~num_domains:0 ~telemetry:(Tracing.pool_telemetry t ~registry:reg ())
    (fun pool -> ignore (Pool.init_array pool 4 (fun i -> i)));
  let task_slices =
    List.filter_map
      (function
        | Span.Slice { name = "task"; track; _ } -> Some track
        | _ -> None)
      (Tracing.events t)
  in
  Alcotest.(check (list int)) "one slice per task, all on track 0" [ 0; 0; 0; 0 ]
    task_slices;
  let wait_hist = List.find (fun h -> Histogram.name h = "pool_queue_wait_s") (Histogram.hists reg) in
  Alcotest.(check int) "queue-wait histogram fed" 4 (Histogram.count wait_hist);
  Alcotest.(check bool) "worker lane named" true
    (List.exists
       (function Span.Track_name { track = 0; name = "worker-0" } -> true | _ -> false)
       (Tracing.events t))

let test_instrument_engine_emits_counters () =
  let t = Tracing.create () in
  let engine = Cocheck_des.Engine.create () in
  let flush =
    Tracing.instrument_engine t ~prefix:"eng" ~every:2 ~kinds:[| "other"; "job" |] engine
  in
  for i = 1 to 5 do
    ignore (Cocheck_des.Engine.schedule_at engine ~kind:1 ~time:(float_of_int i) (fun _ -> ()))
  done;
  Cocheck_des.Engine.run engine;
  flush ();
  let counters =
    List.filter_map
      (function Span.Counter { name; values; _ } -> Some (name, values) | _ -> None)
      (Tracing.events t)
  in
  let fired = List.filter (fun (n, _) -> n = "eng/fired") counters in
  (* every=2 over 5 fired events -> 2 ticks, plus the final flush. *)
  Alcotest.(check int) "fired samples" 3 (List.length fired);
  (match List.rev fired with
  | (_, values) :: _ ->
      Alcotest.(check (float 0.0)) "final per-kind count" 5.0 (List.assoc "job" values)
  | [] -> Alcotest.fail "no fired samples");
  Alcotest.(check bool) "gc track present" true
    (List.exists (fun (n, _) -> n = "eng/gc") counters)

let test_runtime_registry () =
  let reg = Runtime.registry () in
  let c = Runtime.counter reg "sims" in
  let g = Runtime.gauge reg "queue_depth" in
  Runtime.incr reg c ();
  Runtime.incr reg c ~by:2.5 ();
  Runtime.set reg g 7.0;
  checkf "counter accumulates" 3.5 (Runtime.value c);
  checkf "gauge holds last" 7.0 (Runtime.gauge_value g);
  Alcotest.(check bool) "kind clash rejected" true
    (match Runtime.gauge reg "sims" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "snapshot in creation order" true
    (Runtime.snapshot reg = [ ("sims", 3.5); ("queue_depth", 7.0) ])

let test_runtime_gc_probe () =
  let p = Runtime.gc_probe () in
  let junk = ref [] in
  for i = 1 to 10_000 do
    junk := i :: !junk
  done;
  ignore (Sys.opaque_identity !junk);
  let d = Runtime.gc_sample p in
  Alcotest.(check bool) "allocation observed" true (d.Runtime.minor_words > 0.0);
  Alcotest.(check bool) "values list covers the fields" true
    (List.length (Runtime.gc_delta_values d) = 5)

let test_span_nesting_qcheck =
  (* Random span trees: every recorded slice must contain its children's
     intervals, and slice count must equal node count. *)
  let gen = QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 2)) in
  QCheck.Test.make ~name:"span_nesting_invariants" ~count:30 gen (fun shape ->
      let t = Tracing.create () in
      let nodes = ref 0 in
      (* Interpret the int list as a preorder walk: value = how many
         children the next node has (capped by remaining budget). *)
      let rec build depth budget shape =
        match shape with
        | [] -> []
        | n :: rest when !nodes < 60 && depth < 8 ->
            incr nodes;
            Tracing.span t ~track:1
              (Printf.sprintf "n%d" !nodes)
              (fun () ->
                let rest = ref rest in
                for _ = 1 to min n budget do
                  rest := build (depth + 1) (budget - 1) !rest
                done;
                !rest)
        | _ :: rest -> rest
      in
      ignore (build 0 3 shape);
      let slices =
        List.filter_map
          (function
            | Span.Slice { ts_us; dur_us; _ } -> Some (ts_us, ts_us +. dur_us)
            | _ -> None)
          (Tracing.events t)
      in
      if List.length slices <> !nodes then false
      else
        (* Recording order is close order (post-order); an earlier-closing
           span on one track either nests inside or precedes a
           later-closing one — intervals never partially overlap. *)
        let rec ok = function
          | [] -> true
          | (s1, e1) :: rest ->
              List.for_all
                (fun (s2, e2) -> (s2 <= s1 +. 1.0 && e1 <= e2 +. 1.0) || s1 >= e2 -. 1.0 || s2 >= e1 -. 1.0)
                rest
              && ok rest
        in
        ok slices)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "cocheck.obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "compact render" `Quick test_json_render;
          Alcotest.test_case "parse round-trip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ]
        @ qsuite [ test_json_float_precision ] );
      ( "timer",
        [ Alcotest.test_case "accumulates phases" `Quick test_timer_accumulates ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "registry" `Quick test_histogram_registry;
        ] );
      ( "series",
        [
          Alcotest.test_case "window clipping" `Quick test_series_window_clipping;
          Alcotest.test_case "ring eviction" `Quick test_series_ring_eviction;
          Alcotest.test_case "csv and arity" `Quick test_series_csv_and_arity;
          Alcotest.test_case "sparkline" `Quick test_series_sparkline;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl" `Quick test_export_jsonl;
          Alcotest.test_case "csv" `Quick test_export_csv;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "collects platform series" `Quick test_sampler_collects;
          Alcotest.test_case "segment clipping" `Quick test_sampler_segment_clipping;
          Alcotest.test_case "read-only probes" `Quick test_sampler_does_not_perturb;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "config round-trip" `Quick test_manifest_config_roundtrip;
          Alcotest.test_case "text round-trip" `Quick test_manifest_roundtrip_through_text;
          Alcotest.test_case "strategy names" `Quick test_manifest_strategy_names_parse_back;
          Alcotest.test_case "write/load" `Quick test_manifest_write_load;
        ] );
      ( "span",
        [
          Alcotest.test_case "export round-trip" `Quick test_span_export_roundtrip;
          Alcotest.test_case "export through text" `Quick test_span_export_through_text;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "records nested spans" `Quick test_tracing_records_and_sorts;
          Alcotest.test_case "span on exception" `Quick test_span_records_on_exception;
          Alcotest.test_case "disabled is free" `Quick test_tracing_disabled_is_free;
          Alcotest.test_case "capacity drops" `Quick test_tracing_capacity_drops;
          Alcotest.test_case "perfetto file" `Quick test_tracing_write_perfetto_file;
          Alcotest.test_case "pool lanes (sequential)" `Quick
            test_pool_spans_sequential_deterministic;
          Alcotest.test_case "engine counters" `Quick test_instrument_engine_emits_counters;
        ]
        @ qsuite [ test_span_nesting_qcheck ] );
      ( "runtime",
        [
          Alcotest.test_case "metrics registry" `Quick test_runtime_registry;
          Alcotest.test_case "gc probe" `Quick test_runtime_gc_probe;
        ] );
    ]
