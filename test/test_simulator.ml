(* Integration tests for the full simulator: end-to-end runs on a small
   synthetic platform (fast, precisely checkable) and on Cielo (the paper's
   scenario, checked for ordering and invariants). *)

module Platform = Cocheck_model.Platform
module App_class = Cocheck_model.App_class
module Apex = Cocheck_model.Apex
module Strategy = Cocheck_core.Strategy
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Units = Cocheck_util.Units

let checkf msg ?(eps = 1e-9) a b = Alcotest.(check (float eps)) msg a b

(* A 64-node toy platform: 1 GB/node, 1 GB/s PFS. One 16-node class with
   10-minute fixed checkpoints of 8 GB (8 s commits), so four jobs run
   side by side with mild I/O load (F ~ 0.05). *)
let tiny_platform ?(bandwidth = 1.0) ?(mtbf_years = 2.0) () =
  Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:bandwidth
    ~node_mtbf_s:(Units.years mtbf_years)

let tiny_class =
  App_class.make ~name:"toy" ~workload_pct:100.0 ~walltime_s:(Units.hours 2.0) ~nodes:16
    ~input_pct:10.0 ~output_pct:10.0 ~ckpt_pct:50.0 ()

let tiny_cfg ?(strategy = Strategy.Ordered_nb (Strategy.Fixed 600.0)) ?(days = 1.0)
    ?(with_failures = false) ?(seed = 1) () =
  Config.make ~platform:(tiny_platform ()) ~classes:[ tiny_class ] ~strategy ~seed ~days
    ~with_failures ()

let total_of r k = List.assoc k r.Simulator.by_kind

(* ------------------------------------------------------------------ *)
(* Failure-free invariants                                              *)
(* ------------------------------------------------------------------ *)

let test_baseline_no_waste () =
  let r = Simulator.run (tiny_cfg ~strategy:Strategy.Baseline ()) in
  checkf "baseline wastes nothing" 0.0 r.Simulator.waste_ns;
  Alcotest.(check bool) "baseline makes progress" true (r.progress_ns > 0.0);
  Alcotest.(check int) "no checkpoints" 0 r.ckpts_committed;
  Alcotest.(check int) "no failures" 0 r.failures_seen;
  Alcotest.(check int) "no restarts" 0 r.restarts

let test_no_failures_means_no_loss () =
  List.iter
    (fun strategy ->
      let r = Simulator.run (tiny_cfg ~strategy ()) in
      checkf (Strategy.name strategy ^ ": no lost work") 0.0 (total_of r Metrics.Lost_work);
      checkf (Strategy.name strategy ^ ": no recovery") 0.0 (total_of r Metrics.Recovery_io);
      Alcotest.(check int) (Strategy.name strategy ^ ": no restarts") 0 r.Simulator.restarts;
      Alcotest.(check bool)
        (Strategy.name strategy ^ ": checkpoints happen")
        true (r.ckpts_committed > 0))
    Strategy.paper_seven

let test_conservation_progress_plus_waste_is_enrolled () =
  List.iter
    (fun strategy ->
      let r = Simulator.run (tiny_cfg ~strategy ~with_failures:true ()) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: progress+waste=enrolled (%.6g vs %.6g)"
           (Strategy.name strategy)
           (r.Simulator.progress_ns +. r.waste_ns)
           r.enrolled_ns)
        true
        (Cocheck_util.Numerics.fequal ~eps:1e-6
           (r.Simulator.progress_ns +. r.waste_ns)
           r.enrolled_ns))
    (Strategy.Baseline :: Strategy.paper_seven)

let test_deterministic_replay () =
  let cfg = tiny_cfg ~strategy:Strategy.Least_waste ~with_failures:true () in
  let a = Simulator.run cfg and b = Simulator.run cfg in
  checkf "progress identical" ~eps:0.0 a.Simulator.progress_ns b.Simulator.progress_ns;
  checkf "waste identical" ~eps:0.0 a.waste_ns b.waste_ns;
  Alcotest.(check int) "ckpts identical" a.ckpts_committed b.ckpts_committed;
  Alcotest.(check int) "restarts identical" a.restarts b.restarts;
  Alcotest.(check int) "events identical" a.events b.events

let test_fixed_period_respected_uncontended () =
  (* Fixed 600 s period, 8 s commits, mild load: the commit-to-commit
     interval must sit near the period. *)
  let r = Simulator.run (tiny_cfg ()) in
  let mean = List.assoc "toy" r.Simulator.mean_ckpt_interval in
  Alcotest.(check bool)
    (Printf.sprintf "interval %.0f near 600" mean)
    true
    (mean >= 595.0 && mean < 700.0)

let test_daly_period_respected_uncontended () =
  (* A class whose Daly period is short relative to its walltime. With
     nodes=16 and mtbf_years=0.05 -> mu_i ~ 98612 s; C = 8 s -> P ~ 1256 s. *)
  let platform = tiny_platform ~mtbf_years:0.05 () in
  let cfg =
    Config.make ~platform ~classes:[ tiny_class ]
      ~strategy:(Strategy.Ordered_nb Strategy.Daly) ~seed:1 ~days:1.0
      ~with_failures:false ()
  in
  let expected =
    Cocheck_core.Daly.period_for tiny_class ~platform
  in
  let r = Simulator.run cfg in
  let mean = List.assoc "toy" r.Simulator.mean_ckpt_interval in
  Alcotest.(check bool)
    (Printf.sprintf "interval %.0f near Daly %.0f" mean expected)
    true
    (Float.abs (mean -. expected) < 0.15 *. expected)

let test_ckpt_count_matches_period () =
  (* One job at a time per 16-node slot, 2 h of work, P = 600 s: each job
     commits roughly work/P ~ 12 checkpoints. *)
  let r = Simulator.run (tiny_cfg ~days:1.0 ()) in
  let per_job = float_of_int r.Simulator.ckpts_committed /. float_of_int r.jobs_started in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f ckpts/job in [8, 13]" per_job)
    true
    (per_job >= 8.0 && per_job <= 13.0)

let test_ordered_regular_io_undilated () =
  (* Exclusive-token strategies transfer at full bandwidth: regular I/O
     must show zero dilation (waiting shows up as Wait instead). *)
  List.iter
    (fun strategy ->
      let r = Simulator.run (tiny_cfg ~strategy ()) in
      checkf (Strategy.name strategy ^ ": no dilation") 0.0 (total_of r Metrics.Io_dilation))
    [ Strategy.Ordered (Strategy.Fixed 600.0); Strategy.Ordered_nb (Strategy.Fixed 600.0);
      Strategy.Least_waste ]

let test_oblivious_never_waits () =
  let r = Simulator.run (tiny_cfg ~strategy:(Strategy.Oblivious (Strategy.Fixed 600.0)) ()) in
  checkf "oblivious has no token waits" 0.0 (total_of r Metrics.Wait)

let test_low_overhead_when_uncontended () =
  (* F ~ 0.05 and no failures: every strategy should keep waste under a
     few percent of baseline progress. *)
  let baseline = Simulator.run (tiny_cfg ~strategy:Strategy.Baseline ()) in
  List.iter
    (fun strategy ->
      let r = Simulator.run (tiny_cfg ~strategy ()) in
      let ratio = Simulator.waste_ratio ~strategy:r ~baseline in
      Alcotest.(check bool)
        (Printf.sprintf "%s waste %.4f < 0.06" (Strategy.name strategy) ratio)
        true
        (ratio < 0.06))
    Strategy.paper_seven

(* ------------------------------------------------------------------ *)
(* Failures                                                             *)
(* ------------------------------------------------------------------ *)

let failure_cfg ?(strategy = Strategy.Ordered_nb (Strategy.Fixed 600.0)) () =
  (* 64 nodes with ~2.7-day node MTBF -> ~1 h system MTBF: failure-heavy. *)
  Config.make
    ~platform:(tiny_platform ~mtbf_years:0.0075 ())
    ~classes:[ tiny_class ] ~strategy ~seed:3 ~days:1.0 ()

let test_failures_cause_restarts_and_recovery () =
  let r = Simulator.run (failure_cfg ()) in
  Alcotest.(check bool) "failures occurred" true (r.Simulator.failures_seen > 0);
  Alcotest.(check bool) "some hit jobs" true (r.failures_hitting_jobs > 0);
  Alcotest.(check int) "every hit restarts" r.failures_hitting_jobs r.restarts;
  Alcotest.(check bool) "recovery I/O recorded" true (total_of r Metrics.Recovery_io > 0.0);
  Alcotest.(check bool) "lost work recorded" true (total_of r Metrics.Lost_work > 0.0)

let test_failures_still_complete_jobs () =
  let r = Simulator.run (failure_cfg ()) in
  Alcotest.(check bool) "jobs complete despite failures" true (r.Simulator.jobs_completed > 0)

let test_more_failures_more_waste () =
  let waste mtbf_years =
    let cfg =
      Config.make
        ~platform:(tiny_platform ~mtbf_years ())
        ~classes:[ tiny_class ]
        ~strategy:(Strategy.Ordered_nb (Strategy.Fixed 600.0))
        ~seed:5 ~days:2.0 ()
    in
    let r = Simulator.run cfg in
    r.Simulator.waste_ns /. r.enrolled_ns
  in
  Alcotest.(check bool) "waste grows as MTBF shrinks" true (waste 0.01 > waste 10.0)

let test_lost_work_bounded_by_period_exposure () =
  (* With a fixed 600 s period and ~6 failures hitting jobs, lost work per
     failure is bounded by the exposure (period + commit + queueing); use a
     generous factor to keep the test robust but meaningful. *)
  let r = Simulator.run (failure_cfg ()) in
  let lost = total_of r Metrics.Lost_work in
  let per_failure = lost /. float_of_int (max 1 r.Simulator.failures_hitting_jobs) in
  (* 16 nodes x (600 s period + slack x4). *)
  Alcotest.(check bool)
    (Printf.sprintf "lost %.0f node-s/failure bounded" per_failure)
    true
    (per_failure < 16.0 *. 2400.0)

let test_aborted_ckpts_only_with_failures () =
  let no_fail = Simulator.run (tiny_cfg ()) in
  Alcotest.(check int) "no aborted commits without failures" 0 no_fail.Simulator.ckpts_aborted

(* ------------------------------------------------------------------ *)
(* Cielo scenario (paper shape checks, single seeds)                    *)
(* ------------------------------------------------------------------ *)

let cielo_run ?(bandwidth = 40.0) ?(mtbf_years = 2.0) ?(days = 10.0) ?(seed = 1) strategy =
  let platform = Platform.cielo ~bandwidth_gbs:bandwidth ~node_mtbf_years:mtbf_years () in
  let cfg s = Config.make ~platform ~strategy:s ~seed ~days () in
  let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
  let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
  let r = Simulator.run ~specs (cfg strategy) in
  (r, baseline)

let test_cielo_high_utilization () =
  let baseline =
    Simulator.run
      (Config.make ~platform:(Platform.cielo ()) ~strategy:Strategy.Baseline ~seed:2
         ~days:10.0 ())
  in
  let seg_ns = Units.days 10.0 *. 17_888.0 in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f >= 0.85"
       (baseline.Simulator.enrolled_ns /. seg_ns))
    true
    (baseline.enrolled_ns >= 0.85 *. seg_ns)

let test_cielo_least_waste_beats_oblivious_fixed () =
  let lw, base = cielo_run Strategy.Least_waste in
  let ob, _ = cielo_run (Strategy.Oblivious (Strategy.Fixed 3600.0)) in
  let r_lw = Simulator.waste_ratio ~strategy:lw ~baseline:base in
  let r_ob = Simulator.waste_ratio ~strategy:ob ~baseline:base in
  Alcotest.(check bool)
    (Printf.sprintf "LW %.3f < Oblivious-Fixed %.3f" r_lw r_ob)
    true (r_lw < r_ob)

let test_cielo_nonblocking_beats_blocking_daly () =
  let nb, base = cielo_run (Strategy.Ordered_nb Strategy.Daly) in
  let bl, _ = cielo_run (Strategy.Ordered Strategy.Daly) in
  Alcotest.(check bool) "NB-Daly <= Ordered-Daly" true
    (Simulator.waste_ratio ~strategy:nb ~baseline:base
    <= Simulator.waste_ratio ~strategy:bl ~baseline:base +. 0.02)

let test_cielo_waste_above_lower_bound () =
  (* No simulated strategy may beat Theorem 1 by a margin (small Monte
     Carlo fluctuations around the bound are expected and the paper sees
     them too). *)
  let platform = Platform.cielo ~bandwidth_gbs:40.0 ~node_mtbf_years:2.0 () in
  let counts =
    Cocheck_core.Waste.steady_state_counts ~classes:Apex.lanl_workload ~platform
  in
  let bound =
    (Cocheck_core.Lower_bound.solve_model ~classes:counts ~platform ()).Cocheck_core
    .Lower_bound
    .waste
  in
  List.iter
    (fun strategy ->
      let r, base = cielo_run strategy in
      let ratio = Simulator.waste_ratio ~strategy:r ~baseline:base in
      Alcotest.(check bool)
        (Printf.sprintf "%s ratio %.3f >= bound %.3f - 0.1" (Strategy.name strategy) ratio
           bound)
        true
        (ratio >= bound -. 0.1))
    Strategy.paper_seven

let test_cielo_bandwidth_helps_daly_strategies () =
  let at bandwidth =
    let r, base = cielo_run ~bandwidth (Strategy.Oblivious Strategy.Daly) in
    Simulator.waste_ratio ~strategy:r ~baseline:base
  in
  Alcotest.(check bool) "waste(160) < waste(40)" true (at 160.0 < at 40.0)

let test_specs_shared_between_runs () =
  let platform = Platform.cielo () in
  let cfg = Config.make ~platform ~strategy:Strategy.Least_waste ~seed:4 ~days:5.0 () in
  let specs = Simulator.generate_specs cfg in
  let r = Simulator.run ~specs cfg in
  Alcotest.(check int) "spec count propagated" (Array.length specs) r.Simulator.specs_total

let test_generate_specs_deterministic () =
  let platform = Platform.cielo () in
  let cfg = Config.make ~platform ~strategy:Strategy.Least_waste ~seed:4 ~days:5.0 () in
  let a = Simulator.generate_specs cfg and b = Simulator.generate_specs cfg in
  Alcotest.(check int) "same count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i s ->
      checkf "same work" ~eps:0.0 s.Cocheck_model.Jobgen.work_s
        b.(i).Cocheck_model.Jobgen.work_s)
    a

let test_ckpt_wait_metrics () =
  (* Oblivious checkpoints start instantly; Ordered's wait under a loaded
     queue is positive. Use a contended tiny scenario: shrink bandwidth so
     the four jobs' commits overlap. *)
  let platform =
    Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:0.05
      ~node_mtbf_s:(Units.years 2.0)
  in
  let cfg strategy =
    Config.make ~platform ~classes:[ tiny_class ] ~strategy ~seed:1 ~days:1.0
      ~with_failures:false ()
  in
  let oblivious = Simulator.run (cfg (Strategy.Oblivious (Strategy.Fixed 600.0))) in
  Alcotest.(check (float 0.0)) "oblivious zero wait" 0.0
    (List.assoc "toy" oblivious.Simulator.mean_ckpt_wait);
  let ordered = Simulator.run (cfg (Strategy.Ordered (Strategy.Fixed 600.0))) in
  Alcotest.(check bool) "ordered waits under contention" true
    (List.assoc "toy" ordered.Simulator.mean_ckpt_wait > 0.0)

let test_utilization_reported () =
  let r = Simulator.run (tiny_cfg ~strategy:Strategy.Baseline ()) in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f in (0.5, 1.0]" r.Simulator.utilization)
    true
    (r.utilization > 0.5 && r.utilization <= 1.0 +. 1e-9)

let test_optimal_periods_stretch_when_constrained () =
  (* At 40 GB/s the Theorem 1 constraint is active: the Optimal rule must
     checkpoint less often than Daly (longer commit-to-commit intervals). *)
  let interval rule =
    let r, _ = cielo_run ~bandwidth:40.0 (Strategy.Ordered_nb rule) in
    List.assoc "EAP" r.Simulator.mean_ckpt_interval
  in
  let daly = interval Strategy.Daly and opt = interval Strategy.Optimal in
  Alcotest.(check bool)
    (Printf.sprintf "optimal interval %.0f > daly %.0f" opt daly)
    true (opt > daly)

let test_optimal_equals_daly_when_slack () =
  (* With abundant bandwidth lambda = 0 and the rules nearly coincide (the
     Optimal rule prices C at the CR-available bandwidth, i.e. total minus
     the regular-I/O demand, so its periods are marginally longer). *)
  let r_daly, _ = cielo_run ~bandwidth:400.0 ~days:5.0 (Strategy.Ordered_nb Strategy.Daly) in
  let r_opt, _ = cielo_run ~bandwidth:400.0 ~days:5.0 (Strategy.Ordered_nb Strategy.Optimal) in
  Alcotest.(check bool)
    (Printf.sprintf "near-identical waste when unconstrained (%.4g vs %.4g)"
       r_daly.Simulator.waste_ns r_opt.Simulator.waste_ns)
    true
    (Float.abs (r_daly.Simulator.waste_ns -. r_opt.Simulator.waste_ns)
    < 0.03 *. r_daly.Simulator.waste_ns)

let test_io_busy_fraction_matches_demand () =
  (* Uncontended toy: four 16-node jobs, each moving input+output+periodic
     checkpoints. The measured device-busy fraction must sit close to the
     nominal demand and strictly inside [0, 1] for token strategies. *)
  let r = Simulator.run (tiny_cfg ()) in
  Alcotest.(check bool)
    (Printf.sprintf "busy fraction %.3f in (0, 1)" r.Simulator.io_busy_fraction)
    true
    (r.io_busy_fraction > 0.0 && r.io_busy_fraction < 1.0);
  (* Nominal checkpoint demand alone: 4 jobs x 8 GB per 600 s on a 1 GB/s
     device -> F ~ 0.053; inputs/outputs add a little. *)
  Alcotest.(check bool)
    (Printf.sprintf "busy fraction %.3f near nominal demand" r.io_busy_fraction)
    true
    (r.io_busy_fraction > 0.03 && r.io_busy_fraction < 0.12)

let test_io_busy_fraction_saturates_when_starved () =
  (* Shrink the bandwidth 50x: the token strategies should now keep the
     device busy most of the time. *)
  let platform = tiny_platform ~bandwidth:0.02 () in
  let cfg =
    Config.make ~platform ~classes:[ tiny_class ]
      ~strategy:(Strategy.Ordered (Strategy.Fixed 600.0)) ~seed:1 ~days:1.0
      ~with_failures:false ()
  in
  let r = Simulator.run cfg in
  Alcotest.(check bool)
    (Printf.sprintf "starved device busy %.3f > 0.7" r.Simulator.io_busy_fraction)
    true
    (r.io_busy_fraction > 0.7 && r.io_busy_fraction <= 1.0 +. 1e-9)

let test_simulation_matches_analytic_eq3 () =
  (* Quantitative pipeline check: a single class with ample bandwidth and
     moderate failures should land near the Equation (3) prediction at the
     Daly period. EAP-like class alone on Cielo at 160 GB/s, 5y MTBF. *)
  let platform = Platform.cielo ~bandwidth_gbs:160.0 ~node_mtbf_years:5.0 () in
  let eap_only = { Apex.eap with App_class.workload_pct = 100.0 } in
  let cfg s =
    Config.make ~platform ~classes:[ eap_only ] ~strategy:s ~seed:3 ~days:20.0 ()
  in
  let specs = Simulator.generate_specs (cfg Strategy.Baseline) in
  let baseline = Simulator.run ~specs (cfg Strategy.Baseline) in
  let r = Simulator.run ~specs (cfg (Strategy.Ordered_nb Strategy.Daly)) in
  let simulated = Simulator.waste_ratio ~strategy:r ~baseline in
  let ckpt_s = App_class.ckpt_time eap_only ~platform in
  let mtbf_s = App_class.mtbf eap_only ~platform in
  let analytic =
    Cocheck_core.Waste.job_waste ~ckpt_s
      ~period_s:(Cocheck_core.Daly.period ~ckpt_s ~mtbf_s)
      ~recovery_s:ckpt_s ~mtbf_s
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f within 35%% of analytic %.4f" simulated analytic)
    true
    (Float.abs (simulated -. analytic) < 0.35 *. analytic)

let test_per_class_attribution () =
  let r, _ = cielo_run ~days:6.0 Strategy.Least_waste in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Simulator.restarts_by_class in
  Alcotest.(check int) "per-class restarts sum to total" r.restarts total;
  Alcotest.(check int) "four classes reported" 4 (List.length r.restarts_by_class);
  List.iter
    (fun (name, lost) ->
      Alcotest.(check bool) (name ^ " lost work non-negative") true (lost >= 0.0))
    r.lost_work_by_class;
  (* Every class occupies nodes throughout, so with ~1 h system MTBF over
     6 days each must record some restarts; the 66%-share EAP must record a
     healthy number (it absorbs most failures on average, though short
     segments let other classes occasionally edge ahead). *)
  List.iter
    (fun (name, n) ->
      Alcotest.(check bool) (name ^ " saw restarts") true (n > 0))
    r.restarts_by_class;
  Alcotest.(check bool) "EAP absorbs a large share" true
    (List.assoc "EAP" r.restarts_by_class > r.restarts / 8)

let test_waste_ratio_nan_on_empty_baseline () =
  let fake =
    let r = Simulator.run (tiny_cfg ~strategy:Strategy.Baseline ()) in
    { r with Simulator.progress_ns = 0.0 }
  in
  let r = Simulator.run (tiny_cfg ()) in
  Alcotest.(check bool) "nan flagged" true
    (Float.is_nan (Simulator.waste_ratio ~strategy:r ~baseline:fake))

(* ------------------------------------------------------------------ *)
(* Randomized whole-simulator properties                                *)
(* ------------------------------------------------------------------ *)

let strategy_of_index i =
  List.nth (Strategy.Baseline :: Strategy.paper_seven) (i mod 8)

let test_random_scenario_invariants =
  (* Random toy scenarios across all strategies, with and without burst
     buffers and two-level checkpointing: every run must conserve
     node-seconds, report non-negative buckets, and replay identically. *)
  QCheck.Test.make ~name:"random_scenarios_conserve_and_replay" ~count:40
    QCheck.(
      quad small_int (int_range 0 7) (pair (float_range 0.2 3.0) (float_range 0.002 0.2))
        (pair bool bool))
    (fun (seed, strat_idx, (bandwidth, mtbf_years), (with_bb, with_ml)) ->
      let strategy = strategy_of_index strat_idx in
      let platform =
        Platform.make ~name:"fuzz" ~nodes:48 ~mem_per_node_gb:1.0
          ~bandwidth_gbs:bandwidth ~node_mtbf_s:(Units.years mtbf_years)
      in
      let klass =
        App_class.make ~name:"fuzz" ~workload_pct:100.0 ~walltime_s:(Units.hours 1.5)
          ~nodes:12 ~input_pct:5.0 ~output_pct:15.0 ~ckpt_pct:40.0 ()
      in
      let burst_buffer =
        if with_bb then
          Some { Cocheck_sim.Burst_buffer.capacity_gb = 30.0; bandwidth_gbs = 10.0 }
        else None
      in
      let multilevel =
        if with_ml then
          Some
            (Config.local_level ~period_s:300.0 ~cost_s:2.0 ~recovery_s:4.0
               ~soft_fraction:0.5)
        else None
      in
      let cfg =
        Config.make ~platform ~classes:[ klass ] ~strategy ~seed ~days:0.5
          ?burst_buffer ?multilevel ()
      in
      let a = Simulator.run cfg in
      let b = Simulator.run cfg in
      let conserved =
        Cocheck_util.Numerics.fequal ~eps:1e-6 (a.Simulator.progress_ns +. a.waste_ns)
          a.enrolled_ns
      in
      let non_negative =
        List.for_all (fun (_, v) -> v >= 0.0) a.by_kind
        && a.progress_ns >= 0.0 && a.waste_ns >= 0.0
      in
      let replays =
        a.events = b.Simulator.events
        && a.waste_ns = b.waste_ns
        && a.ckpts_committed = b.ckpts_committed
        && a.restarts = b.restarts
      in
      conserved && non_negative && replays)

let () =
  Alcotest.run "cocheck.simulator"
    [
      ( "failure-free",
        [
          Alcotest.test_case "baseline has zero waste" `Quick test_baseline_no_waste;
          Alcotest.test_case "no failures, no loss" `Quick test_no_failures_means_no_loss;
          Alcotest.test_case "node-second conservation" `Quick
            test_conservation_progress_plus_waste_is_enrolled;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "fixed period respected" `Quick test_fixed_period_respected_uncontended;
          Alcotest.test_case "daly period respected" `Quick test_daly_period_respected_uncontended;
          Alcotest.test_case "ckpt count matches period" `Quick test_ckpt_count_matches_period;
          Alcotest.test_case "token I/O undilated" `Quick test_ordered_regular_io_undilated;
          Alcotest.test_case "oblivious never waits" `Quick test_oblivious_never_waits;
          Alcotest.test_case "low overhead uncontended" `Quick test_low_overhead_when_uncontended;
        ] );
      ( "failures",
        [
          Alcotest.test_case "restarts and recovery" `Quick test_failures_cause_restarts_and_recovery;
          Alcotest.test_case "jobs complete despite failures" `Quick test_failures_still_complete_jobs;
          Alcotest.test_case "waste grows with failure rate" `Quick test_more_failures_more_waste;
          Alcotest.test_case "lost work bounded" `Quick test_lost_work_bounded_by_period_exposure;
          Alcotest.test_case "no aborts without failures" `Quick test_aborted_ckpts_only_with_failures;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest ~long:false test_random_scenario_invariants ] );
      ( "cielo",
        [
          Alcotest.test_case "high utilization" `Quick test_cielo_high_utilization;
          Alcotest.test_case "LW beats Oblivious-Fixed" `Quick test_cielo_least_waste_beats_oblivious_fixed;
          Alcotest.test_case "NB beats blocking (Daly)" `Quick test_cielo_nonblocking_beats_blocking_daly;
          Alcotest.test_case "nothing far below the bound" `Quick test_cielo_waste_above_lower_bound;
          Alcotest.test_case "bandwidth helps Daly" `Quick test_cielo_bandwidth_helps_daly_strategies;
          Alcotest.test_case "specs shared" `Quick test_specs_shared_between_runs;
          Alcotest.test_case "specs deterministic" `Quick test_generate_specs_deterministic;
          Alcotest.test_case "waste ratio nan guard" `Quick test_waste_ratio_nan_on_empty_baseline;
          Alcotest.test_case "ckpt wait metrics" `Quick test_ckpt_wait_metrics;
          Alcotest.test_case "utilization reported" `Quick test_utilization_reported;
          Alcotest.test_case "optimal periods stretch" `Quick test_optimal_periods_stretch_when_constrained;
          Alcotest.test_case "optimal = daly when slack" `Quick test_optimal_equals_daly_when_slack;
          Alcotest.test_case "io busy fraction nominal" `Quick test_io_busy_fraction_matches_demand;
          Alcotest.test_case "io busy fraction saturated" `Quick test_io_busy_fraction_saturates_when_starved;
          Alcotest.test_case "per-class attribution" `Quick test_per_class_attribution;
          Alcotest.test_case "matches analytic Eq 3" `Quick test_simulation_matches_analytic_eq3;
        ] );
    ]
