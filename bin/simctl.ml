(* simctl — command-line front end for the cooperative-checkpointing
   simulator and the paper's experiments.

     simctl run --strategy least-waste --bandwidth 40 --mtbf-years 2
     simctl fig1 --reps 100 --out fig1.csv
     simctl fig2 --reps 100
     simctl fig3 --reps 5
     simctl table1
     simctl bound --bandwidth 40 --mtbf-years 2 *)

open Cmdliner
module Platform = Cocheck_model.Platform
module Apex = Cocheck_model.Apex
module Strategy = Cocheck_core.Strategy
module Waste = Cocheck_core.Waste
module Lower_bound = Cocheck_core.Lower_bound
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module Metrics = Cocheck_sim.Metrics
module Pool = Cocheck_parallel.Pool
module E = Cocheck_experiments
module Obs = Cocheck_obs

(* ------------------------------------------------------------------ *)
(* Shared options                                                       *)
(* ------------------------------------------------------------------ *)

let bandwidth_t =
  Arg.(value & opt float 160.0 & info [ "bandwidth"; "b" ] ~docv:"GB_S"
         ~doc:"Aggregate filesystem bandwidth in GB/s.")

let mtbf_years_t =
  Arg.(value & opt float 2.0 & info [ "mtbf-years"; "m" ] ~docv:"YEARS"
         ~doc:"Individual node MTBF in years.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let days_t =
  Arg.(value & opt float 60.0 & info [ "days" ] ~docv:"DAYS"
         ~doc:"Measurement segment length in days (one excluded day is added on each side).")

let reps_t default =
  Arg.(value & opt int default & info [ "reps" ] ~docv:"N"
         ~doc:"Monte Carlo replications.")

let out_t =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Also write results as CSV to $(docv).")

let prospective_t =
  Arg.(value & flag & info [ "prospective" ]
         ~doc:"Use the prospective 50 000-node, 7 PB system instead of Cielo.")

let domains_t =
  Arg.(value & opt (some int) None & info [ "domains"; "j" ] ~docv:"N"
         ~doc:"Worker domains for Monte Carlo (default: cores - 1).")

let platform_of ~prospective ~bandwidth ~mtbf_years =
  if prospective then Platform.prospective ~bandwidth_gbs:bandwidth ~node_mtbf_years:mtbf_years ()
  else Platform.cielo ~bandwidth_gbs:bandwidth ~node_mtbf_years:mtbf_years ()

let strategy_conv =
  let parse s = match Strategy.of_string s with Ok v -> Ok v | Error e -> Error (`Msg e) in
  Arg.conv (parse, Strategy.pp)

let failure_dist_conv =
  let parse s =
    let module F = Cocheck_sim.Failure_trace in
    match String.lowercase_ascii (String.trim s) with
    | "exp" | "exponential" -> Ok F.Exponential
    | s when String.length s > 8 && String.sub s 0 8 = "weibull:" -> (
        match float_of_string_opt (String.sub s 8 (String.length s - 8)) with
        | Some shape when shape > 0.0 -> Ok (F.Weibull { shape })
        | _ -> Error (`Msg "weibull shape must be a positive number"))
    | s when String.length s > 10 && String.sub s 0 10 = "lognormal:" -> (
        match float_of_string_opt (String.sub s 10 (String.length s - 10)) with
        | Some sigma when sigma >= 0.0 -> Ok (F.Lognormal { sigma })
        | _ -> Error (`Msg "lognormal sigma must be non-negative"))
    | other -> Error (`Msg (Printf.sprintf "unknown failure distribution %S" other))
  in
  let pp ppf d =
    Format.pp_print_string ppf (Cocheck_sim.Failure_trace.distribution_name d)
  in
  Arg.conv (parse, pp)

let failure_dist_t =
  Arg.(value
       & opt failure_dist_conv Cocheck_sim.Failure_trace.Exponential
       & info [ "failure-dist" ] ~docv:"DIST"
           ~doc:"Failure inter-arrival law: exponential (default), weibull:<shape>, \
                 lognormal:<sigma>. Mean-matched to the node MTBF.")

let alpha_t =
  Arg.(value & opt float 0.0 & info [ "alpha" ] ~docv:"ALPHA"
         ~doc:"Adversarial interference factor: aggregate bandwidth degrades to \
               beta/(1+alpha(k-1)) under k concurrent transfers. 0 = the paper's \
               linear model.")

let bb_t =
  let pair_conv = Arg.(pair ~sep:',' float float) in
  Arg.(value
       & opt (some pair_conv) None
       & info [ "burst-buffer" ] ~docv:"CAP_GB,BW_GBS"
           ~doc:"Add a burst buffer: capacity (GB) and write bandwidth (GB/s), e.g. \
                 250000,1000.")

let bb_spec_of = function
  | None -> None
  | Some (capacity_gb, bandwidth_gbs) ->
      Some { Cocheck_sim.Burst_buffer.capacity_gb; bandwidth_gbs }

let multilevel_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ p; c; r; f ] -> (
        match
          (float_of_string_opt p, float_of_string_opt c, float_of_string_opt r,
           float_of_string_opt f)
        with
        | Some period_s, Some cost_s, Some recovery_s, Some soft_fraction ->
            Ok
              (Cocheck_sim.Config.local_level ~period_s ~cost_s ~recovery_s
                 ~soft_fraction)
        | _ -> Error (`Msg "expected four numbers: period,cost,recovery,soft_fraction"))
    | _ -> Error (`Msg "expected PERIOD,COST,RECOVERY,SOFT (seconds,seconds,seconds,[0-1])")
  in
  let pp_level ppf = function
    | Cocheck_sim.Config.Snapshot s ->
        Format.fprintf ppf "snapshot:%g,%g,%g,%g" s.Cocheck_sim.Config.sl_period_s
          s.sl_cost_s s.sl_recovery_s s.sl_survival
    | Cocheck_sim.Config.Buffer b ->
        Format.fprintf ppf "buffer:%g,%g%s,%g" b.Cocheck_sim.Config.bl_capacity_gb
          b.bl_bandwidth_gbs
          (match b.bl_flush_gbs with None -> "" | Some f -> Printf.sprintf ",%g" f)
          b.bl_survival
  in
  let pp ppf (m : Cocheck_sim.Config.multilevel) =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ';')
      pp_level ppf m.Cocheck_sim.Config.levels
  in
  Arg.conv (parse, pp)

let multilevel_t =
  Arg.(value
       & opt (some multilevel_conv) None
       & info [ "multilevel" ] ~docv:"P,C,R,SOFT"
           ~doc:"Two-level checkpointing: local period (s), local snapshot cost (s),                  local recovery (s), soft-failure fraction. E.g. 600,5,10,0.6.")

(* Buffer tiers of the checkpoint hierarchy: semicolon-separated levels,
   shallow to deep, each CAP,BW[,FLUSH[,SURV]]. A FLUSH gives the level a
   dedicated background-drain edge; omitting it serializes the drain into
   the next level's pool (the classic burst-buffer behavior). *)
let hierarchy_conv =
  let parse_level s =
    let parts = List.map float_of_string_opt (String.split_on_char ',' (String.trim s)) in
    let buf cap bw flush surv =
      Ok
        (Cocheck_sim.Config.Buffer
           {
             Cocheck_sim.Config.bl_capacity_gb = cap;
             bl_bandwidth_gbs = bw;
             bl_flush_gbs = flush;
             bl_survival = surv;
           })
    in
    match parts with
    | [ Some cap; Some bw ] -> buf cap bw None 1.0
    | [ Some cap; Some bw; Some fl ] -> buf cap bw (Some fl) 1.0
    | [ Some cap; Some bw; Some fl; Some sv ] -> buf cap bw (Some fl) sv
    | _ -> Error (`Msg "each level is CAP_GB,BW_GBS[,FLUSH_GBS[,SURVIVAL]]")
  in
  let parse s =
    let rec collect = function
      | [] -> Ok []
      | l :: rest -> (
          match parse_level l with
          | Error _ as e -> e
          | Ok level -> (
              match collect rest with
              | Error _ as e -> e
              | Ok levels -> Ok (level :: levels)))
    in
    match collect (String.split_on_char ';' s) with
    | Error e -> Error e
    | Ok [] -> Error (`Msg "expected at least one level")
    | Ok levels -> Ok levels
  in
  let pp ppf levels =
    Format.fprintf ppf "%d buffer level(s)" (List.length levels)
  in
  Arg.conv (parse, pp)

let hierarchy_t =
  Arg.(value
       & opt (some hierarchy_conv) None
       & info [ "hierarchy" ] ~docv:"CAP,BW[,FLUSH[,SURV]];..."
           ~doc:"Checkpoint-hierarchy buffer tiers, shallow to deep: capacity (GB), \
                 absorb bandwidth (GB/s), optional dedicated flush bandwidth (GB/s) \
                 and survival fraction. E.g. 250000,1000,20 for a burst buffer that \
                 drains to the PFS over a 20 GB/s edge. Composes with --multilevel \
                 (snapshot tiers come first).")

(* Snapshot tiers (--multilevel) and buffer tiers (--hierarchy) compose
   into one level list, shallow to deep. *)
let ml_of multilevel hierarchy =
  match (multilevel, hierarchy) with
  | None, None -> None
  | Some m, None -> Some m
  | None, Some bufs -> Some { Cocheck_sim.Config.levels = bufs }
  | Some m, Some bufs ->
      Some { Cocheck_sim.Config.levels = m.Cocheck_sim.Config.levels @ bufs }

(* Observability outputs, shared by `run` and `observe`. *)

let trace_out_t =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the structured event log as JSONL to $(docv).")

let series_out_t =
  Arg.(value & opt (some string) None & info [ "series-out" ] ~docv:"FILE"
         ~doc:"Sample the platform periodically and write the time series as CSV to \
               $(docv).")

let manifest_out_t =
  Arg.(value & opt (some string) None & info [ "manifest-out" ] ~docv:"FILE"
         ~doc:"Write a reproducible run manifest (config, phase timings, \
               instrumentation, final metrics) as JSON to $(docv).")

let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0.0 && Float.is_finite v -> Ok v
    | _ -> Error (`Msg "expected a positive number")
  in
  Arg.conv (parse, Format.pp_print_float)

let sample_dt_t =
  Arg.(value & opt (some pos_float_conv) None & info [ "sample-dt" ] ~docv:"SECONDS"
         ~doc:"Probe interval for the time series (default: horizon / 400).")

let perfetto_out_t =
  Arg.(value & opt (some string) None & info [ "perfetto-out" ] ~docv:"FILE"
         ~doc:"Profile the run itself — engine phase spans, per-worker lanes, \
               event-churn and GC counter tracks — and write Chrome trace_event \
               JSON to $(docv); load it in ui.perfetto.dev or chrome://tracing.")

(* The orchestrating (main-domain) lane. Pool workers occupy tracks
   0..n-1, so the orchestrator sits on a high track id. *)
let main_track = 1000

let write_out path contents =
  match path with
  | None -> ()
  | Some p ->
      let oc = open_out p in
      output_string oc contents;
      close_out oc;
      Format.printf "wrote %s@." p

let finish_figure out fig =
  print_string (E.Figures.render fig);
  write_out out (E.Figures.to_csv fig)

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let strategy_t =
    Arg.(value & opt strategy_conv Strategy.Least_waste
         & info [ "strategy"; "s" ] ~docv:"STRATEGY"
             ~doc:"One of oblivious-fixed, oblivious-daly, ordered-fixed, ordered-daly, \
                   ordered-nb-fixed, ordered-nb-daly, least-waste, greedy-exposure, \
                   baseline.")
  in
  let action strategy bandwidth mtbf_years seed days prospective failure_dist alpha bb
      multilevel hierarchy trace_out series_out manifest_out sample_dt perfetto_out =
    let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
    Format.printf "%a@." Platform.pp platform;
    let cfg s =
      Config.make ~platform ~strategy:s ~seed ~days ~failure_dist
        ~interference_alpha:alpha ?burst_buffer:(bb_spec_of bb)
        ?multilevel:(ml_of multilevel hierarchy) ()
    in
    let timer = Obs.Timer.create () in
    let trace =
      Option.map (fun _ -> Cocheck_sim.Trace.create ~capacity:2_000_000 ()) trace_out
    in
    let registry =
      if manifest_out <> None then Some (Obs.Histogram.registry ()) else None
    in
    let hooks = Option.map Obs.Instrument.standard registry in
    let cfg_s = cfg strategy in
    let series, sample =
      match series_out with
      | None -> (None, None)
      | Some _ ->
          let dt =
            match sample_dt with Some d -> d | None -> Obs.Sampler.default_dt cfg_s
          in
          let s, observe = Obs.Sampler.create () in
          (Some s, Some (dt, observe))
    in
    let tracer =
      match perfetto_out with
      | None -> Obs.Tracing.disabled
      | Some _ -> Obs.Tracing.create ()
    in
    let specs =
      Obs.Timer.time timer ~name:"generate" (fun () ->
          Obs.Tracing.span tracer ~cat:"phase" ~track:main_track "generate" (fun () ->
              Simulator.generate_specs (cfg Strategy.Baseline)))
    in
    let baseline, r =
      if not (Obs.Tracing.is_enabled tracer) then
        (* The untraced path is byte-for-byte the pre-tracing sequence. *)
        let baseline =
          Obs.Timer.time timer ~name:"baseline" (fun () ->
              Simulator.run ~specs (cfg Strategy.Baseline))
        in
        let r =
          Obs.Timer.time timer ~name:"simulate" (fun () ->
              Simulator.run ~specs ?trace ?hooks ?sample cfg_s)
        in
        (baseline, r)
      else begin
        (* Traced: baseline and strategy run as two tasks of an observed
           pool, so the trace shows genuine per-worker lanes, each
           simulation with its own engine/GC counter tracks. The Timer is
           not thread-safe, so tasks measure themselves and record after
           the join. *)
        Obs.Tracing.name_track tracer ~track:main_track "main";
        let timed name f =
          let t0 = Unix.gettimeofday () in
          let v =
            Obs.Tracing.span tracer ~cat:"phase" ~track:(Pool.current_worker ()) name f
          in
          (v, Unix.gettimeofday () -. t0)
        in
        let instrumented prefix runit =
          (* The flush emits one final counter sample once the engine
             drains, so short runs still get counter points. *)
          let flush = ref (fun () -> ()) in
          let on_engine engine =
            flush :=
              Obs.Tracing.instrument_engine tracer ~prefix
                ~kinds:Cocheck_sim.Ev_kind.names engine
          in
          let r = runit ~on_engine in
          !flush ();
          r
        in
        let (baseline, baseline_s), (r, simulate_s) =
          Pool.with_pool ~num_domains:2
            ~telemetry:(Obs.Tracing.pool_telemetry tracer ?registry ())
            (fun pool ->
              let fb =
                Pool.async pool (fun () ->
                    timed "baseline" (fun () ->
                        instrumented "baseline" (fun ~on_engine ->
                            Simulator.run ~specs ~on_engine (cfg Strategy.Baseline))))
              in
              let fr =
                Pool.async pool (fun () ->
                    timed "simulate" (fun () ->
                        instrumented (Strategy.name strategy) (fun ~on_engine ->
                            Simulator.run ~specs ?trace ?hooks ?sample ~on_engine cfg_s)))
              in
              let b = Pool.await fb in
              let r = Pool.await fr in
              (b, r))
        in
        Obs.Timer.record timer ~name:"baseline" ~seconds:baseline_s;
        Obs.Timer.record timer ~name:"simulate" ~seconds:simulate_s;
        (baseline, r)
      end
    in
    Format.printf "strategy: %s@." (Strategy.name strategy);
    Format.printf "waste ratio: %.4f (efficiency %.4f)@."
      (Simulator.waste_ratio ~strategy:r ~baseline)
      (Simulator.efficiency ~strategy:r ~baseline);
    Format.printf
      "jobs: %d generated, %d started, %d completed; failures hitting jobs: %d; restarts: %d@."
      r.specs_total r.jobs_started r.jobs_completed r.failures_hitting_jobs r.restarts;
    Format.printf "checkpoints: %d committed, %d aborted@."
      r.ckpts_committed r.ckpts_aborted;
    if r.bb_absorbed > 0 || r.bb_spilled > 0 then
      Format.printf "burst buffer: %d commits absorbed, %d spilled@." r.bb_absorbed
        r.bb_spilled;
    Format.printf "node-seconds in segment: progress %.4e, waste %.4e, enrolled %.4e@."
      r.progress_ns r.waste_ns r.enrolled_ns;
    Format.printf "utilization %.3f, I/O device busy fraction %.3f@." r.utilization
      r.io_busy_fraction;
    List.iter
      (fun (k, v) ->
        if v > 0.0 then Format.printf "  %-12s %.4e@." (Metrics.kind_name k) v)
      r.by_kind;
    List.iter
      (fun (name, mean) ->
        if Float.is_finite mean then
          Format.printf "mean commit-to-commit interval %s: %.0f s@." name mean)
      r.mean_ckpt_interval;
    List.iter2
      (fun (name, restarts) (_, lost) ->
        if restarts > 0 then
          Format.printf "%s: %d restarts, %.3g node-seconds rolled back@." name restarts
            lost)
      r.restarts_by_class r.lost_work_by_class;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Obs.Export.write_jsonl oc (Option.get trace);
        close_out oc;
        Format.printf "wrote %s@." path)
      trace_out;
    Option.iter
      (fun path ->
        write_out (Some path) (Obs.Series.to_csv (Option.get series)))
      series_out;
    Option.iter
      (fun path ->
        let extra =
          [
            ( "waste_ratio",
              Obs.Json.Float (Simulator.waste_ratio ~strategy:r ~baseline) );
          ]
        in
        Obs.Manifest.write ~path
          (Obs.Manifest.make ~cfg:cfg_s ~timer ~result:r
             ?registry ~extra ());
        Format.printf "wrote %s@." path)
      manifest_out;
    Option.iter
      (fun path ->
        Obs.Tracing.write ~path ~process_name:"simctl run" tracer;
        let dropped = Obs.Tracing.dropped tracer in
        Format.printf "wrote %s (%d events%s)@." path (Obs.Tracing.length tracer)
          (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else ""))
      perfetto_out
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a single simulation and print its waste breakdown.")
    Term.(const action $ strategy_t $ bandwidth_t $ mtbf_years_t $ seed_t $ days_t
          $ prospective_t $ failure_dist_t $ alpha_t $ bb_t $ multilevel_t $ hierarchy_t
          $ trace_out_t $ series_out_t $ manifest_out_t $ sample_dt_t $ perfetto_out_t)

(* ------------------------------------------------------------------ *)
(* figures                                                              *)
(* ------------------------------------------------------------------ *)

let with_pool ?telemetry domains f = Pool.with_pool ?num_domains:domains ?telemetry f

let manifest_dir_t =
  Arg.(value & opt (some string) None & info [ "manifest-dir" ] ~docv:"DIR"
         ~doc:"Write one run manifest JSON per (sweep point, replication, strategy) \
               under $(docv) — every campaign data point becomes individually \
               reproducible.")

let fig1_cmd =
  let action reps seed days mtbf_years out domains manifest_dir =
    with_pool domains (fun pool ->
        finish_figure out
          (E.Fig1.run ~pool ~node_mtbf_years:mtbf_years ~reps ~seed ~days
             ?manifest_dir ()))
  in
  Cmd.v (Cmd.info "fig1" ~doc:"Waste ratio vs bandwidth (paper Figure 1).")
    Term.(const action $ reps_t 100 $ seed_t $ days_t $ mtbf_years_t $ out_t $ domains_t
          $ manifest_dir_t)

let strategies_t =
  Arg.(value
       & opt (some (list ~sep:',' strategy_conv)) None
       & info [ "strategies" ] ~docv:"S1,S2,..."
           ~doc:"Sweep these strategies instead of the paper's seven — e.g. \
                 least-waste,greedy-exposure,ordered-nb-daly to pit an added \
                 arbitration policy against the paper's curves.")

let fig2_cmd =
  let action reps seed days bandwidth out domains manifest_dir strategies =
    with_pool domains (fun pool ->
        finish_figure out
          (E.Fig2.run ~pool ~bandwidth_gbs:bandwidth ?strategies ~reps ~seed ~days
             ?manifest_dir ()))
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Waste ratio vs node MTBF (paper Figure 2).")
    Term.(const action $ reps_t 100 $ seed_t $ days_t $ bandwidth_t $ out_t $ domains_t
          $ manifest_dir_t $ strategies_t)

let fig3_cmd =
  let action reps seed days out domains =
    with_pool domains (fun pool ->
        finish_figure out (E.Fig3.run ~pool ~reps ~seed ~days ()))
  in
  Cmd.v (Cmd.info "fig3" ~doc:"Min bandwidth for 80% efficiency (paper Figure 3).")
    Term.(const action $ reps_t 5 $ seed_t
          $ Arg.(value & opt float 20.0 & info [ "days" ] ~docv:"DAYS"
                   ~doc:"Segment length per probe.")
          $ out_t $ domains_t)

let table1_cmd =
  let action () = print_string (E.Table1.render ()) in
  Cmd.v (Cmd.info "table1" ~doc:"LANL APEX workload table (paper Table 1).")
    Term.(const action $ const ())

let bound_cmd =
  let action bandwidth mtbf_years prospective =
    let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
    let classes =
      if prospective then Apex.scaled_workload ~target:platform else Apex.lanl_workload
    in
    let counts = Waste.steady_state_counts ~classes ~platform in
    let r = Lower_bound.solve_model ~classes:counts ~platform () in
    Format.printf "%a@." Platform.pp platform;
    Format.printf "lambda: %.6g@." r.Lower_bound.lambda;
    Format.printf "I/O fraction F: %.4f@." r.io_fraction;
    Format.printf "waste lower bound: %.4f (efficiency %.4f)@." r.waste (1.0 -. r.waste);
    List.iteri
      (fun i ((_, c), (p, pd)) ->
        ignore i;
        Format.printf "  %-10s P_opt = %8.0f s   P_Daly = %8.0f s@."
          c.Cocheck_model.App_class.name p pd)
      (List.combine counts (List.combine r.periods r.daly_periods))
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Theorem 1 lower bound and optimal periods for a platform.")
    Term.(const action $ bandwidth_t $ mtbf_years_t $ prospective_t)

let trace_cmd =
  let action strategy bandwidth mtbf_years seed days prospective limit job =
    let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
    let cfg = Config.make ~platform ~strategy ~seed ~days () in
    let trace = Cocheck_sim.Trace.create () in
    let r = Simulator.run ~trace cfg in
    Format.printf
      "%d events traced (%d retained); jobs started %d, completed %d, restarts %d@.@."
      (Cocheck_sim.Trace.length trace + Cocheck_sim.Trace.dropped trace)
      (Cocheck_sim.Trace.length trace)
      r.Simulator.jobs_started r.jobs_completed r.restarts;
    match job with
    | Some job ->
        List.iter
          (fun e -> Format.printf "%a@." Cocheck_sim.Trace.pp_event e)
          (Cocheck_sim.Trace.for_job trace ~job)
    | None -> print_string (Cocheck_sim.Trace.dump ~limit trace)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a short simulation and dump its structured event log.")
    Term.(const action
          $ Arg.(value & opt strategy_conv Strategy.Least_waste
                 & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc:"Strategy to trace.")
          $ bandwidth_t $ mtbf_years_t $ seed_t
          $ Arg.(value & opt float 3.0 & info [ "days" ] ~docv:"DAYS"
                   ~doc:"Segment length (keep small: traces are verbose).")
          $ prospective_t
          $ Arg.(value & opt int 200 & info [ "limit" ] ~docv:"N"
                   ~doc:"Maximum events to print.")
          $ Arg.(value & opt (some int) None & info [ "job" ] ~docv:"JOB"
                   ~doc:"Only print events of this job id."))

let ablation_cmd =
  let which_t =
    Arg.(value
         & pos 0 (enum
                    [ ("failures", `Failures); ("interference", `Interference);
                      ("burst-buffer", `Bb); ("period", `Period);
                      ("optimal-periods", `Optimal); ("two-level", `Two_level);
                      ("flush", `Flush); ("fixed-period", `Fixed_period);
                      ("all", `All) ])
             `All
         & info [] ~docv:"STUDY"
             ~doc:"One of failures, interference, burst-buffer, period, \
                   optimal-periods, two-level, flush, fixed-period, all.")
  in
  let action which reps seed days domains =
    with_pool domains (fun pool ->
        let show (s : E.Ablations.study) =
          Format.printf "@.%s@.%s" s.E.Ablations.title
            (Cocheck_util.Table.render s.table)
        in
        let run_failures () = show (E.Ablations.failure_distribution ~pool ~reps ~seed ~days ()) in
        let run_interference () = show (E.Ablations.interference_model ~pool ~reps ~seed ~days ()) in
        let run_bb () = show (E.Ablations.burst_buffer ~pool ~reps ~seed ~days ()) in
        let run_period () = show (E.Ablations.period_scaling ()) in
        let run_optimal () = show (E.Ablations.optimal_periods ~pool ~reps ~seed ~days ()) in
        let run_two_level () = show (E.Ablations.two_level ~pool ~reps ~seed ~days ()) in
        let run_flush () = show (E.Ablations.flush_bandwidth ~pool ~reps ~seed ~days ()) in
        let run_fixed () = show (E.Ablations.fixed_period ~pool ~reps ~seed ~days ()) in
        match which with
        | `Failures -> run_failures ()
        | `Interference -> run_interference ()
        | `Bb -> run_bb ()
        | `Period -> run_period ()
        | `Optimal -> run_optimal ()
        | `Two_level -> run_two_level ()
        | `Flush -> run_flush ()
        | `Fixed_period -> run_fixed ()
        | `All ->
            run_failures ();
            run_interference ();
            run_bb ();
            run_period ();
            run_optimal ();
            run_two_level ();
            run_flush ();
            run_fixed ())
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Ablation studies: failure law, interference model, \
                               burst buffer, period scaling.")
    Term.(const action $ which_t $ reps_t 8 $ seed_t
          $ Arg.(value & opt float 20.0 & info [ "days" ] ~docv:"DAYS"
                   ~doc:"Segment length per run.")
          $ domains_t)

let timeline_cmd =
  let action strategy bandwidth mtbf_years seed days prospective buckets =
    let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
    let cfg = Config.make ~platform ~strategy ~seed ~days () in
    let trace = Cocheck_sim.Trace.create ~capacity:2_000_000 () in
    let r = Simulator.run ~trace cfg in
    let tl =
      E.Timeline.build ~trace ~total_nodes:platform.Platform.nodes ~horizon:cfg.horizon
        ~buckets ()
    in
    Format.printf "%a — %s, %d jobs started, %d restarts@.@." Platform.pp platform
      (Strategy.name strategy) r.Simulator.jobs_started r.restarts;
    print_string (E.Timeline.render tl)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Run a simulation and render the node-utilization timeline (dips = failure \
             kills and drain effects).")
    Term.(const action
          $ Arg.(value & opt strategy_conv Strategy.Least_waste
                 & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc:"Strategy to run.")
          $ bandwidth_t $ mtbf_years_t $ seed_t
          $ Arg.(value & opt float 10.0 & info [ "days" ] ~docv:"DAYS"
                   ~doc:"Segment length.")
          $ prospective_t
          $ Arg.(value & opt int 48 & info [ "buckets" ] ~docv:"N"
                   ~doc:"Time buckets to render."))

let check_cmd =
  let action reps seed days domains =
    with_pool domains (fun pool ->
        let checks = E.Shape_checks.run ~pool ~reps ~seed ~days () in
        print_string (E.Shape_checks.render checks);
        if not (E.Shape_checks.all_passed checks) then exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify the paper's qualitative claims (strategy orderings, crossovers, \
             bound tracking) against a reduced Monte Carlo. Exits non-zero on failure.")
    Term.(const action $ reps_t 8 $ seed_t
          $ Arg.(value & opt float 15.0 & info [ "days" ] ~docv:"DAYS"
                   ~doc:"Segment length per run.")
          $ domains_t)

let report_cmd =
  let action full seed out domains =
    with_pool domains (fun pool ->
        let depth = if full then E.Report.full else E.Report.quick in
        let md = E.Report.generate ~pool ~depth ~seed () in
        match out with
        | Some path ->
            let oc = open_out path in
            output_string oc md;
            close_out oc;
            Format.printf "wrote %s@." path
        | None -> print_string md)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run every experiment and emit a self-contained markdown reproduction              report (quick depth by default; --full for the EXPERIMENTS.md protocol).")
    Term.(const action
          $ Arg.(value & flag & info [ "full" ] ~doc:"Full-depth protocol (slow).")
          $ seed_t $ out_t $ domains_t)

let observe_cmd =
  let action strategy bandwidth mtbf_years seed days prospective failure_dist alpha bb
      multilevel hierarchy sample_dt trace_out series_out manifest_out =
    let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
    let cfg =
      Config.make ~platform ~strategy ~seed ~days ~failure_dist
        ~interference_alpha:alpha ?burst_buffer:(bb_spec_of bb)
        ?multilevel:(ml_of multilevel hierarchy) ()
    in
    let timer = Obs.Timer.create () in
    let registry = Obs.Histogram.registry () in
    let hooks = Obs.Instrument.standard registry in
    let dt =
      match sample_dt with Some d -> d | None -> Obs.Sampler.default_dt cfg
    in
    let series, observe = Obs.Sampler.create () in
    let trace =
      Option.map (fun _ -> Cocheck_sim.Trace.create ~capacity:2_000_000 ()) trace_out
    in
    let r =
      Obs.Timer.time timer ~name:"simulate" (fun () ->
          Simulator.run ?trace ~hooks ~sample:(dt, observe) cfg)
    in
    print_string (Obs.Dashboard.render ~cfg ~result:r ~series ~registry ());
    print_newline ();
    print_string (Obs.Timer.render timer);
    Option.iter
      (fun path ->
        let oc = open_out path in
        Obs.Export.write_jsonl oc (Option.get trace);
        close_out oc;
        Format.printf "wrote %s@." path)
      trace_out;
    Option.iter (fun path -> write_out (Some path) (Obs.Series.to_csv series)) series_out;
    Option.iter
      (fun path ->
        Obs.Manifest.write ~path
          (Obs.Manifest.make ~cfg ~timer ~result:r ~registry ());
        Format.printf "wrote %s@." path)
      manifest_out
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Run one instrumented simulation and render an ASCII dashboard: headline \
             metrics, waste breakdown, platform sparklines, latency histograms.")
    Term.(const action
          $ Arg.(value & opt strategy_conv Strategy.Least_waste
                 & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc:"Strategy to observe.")
          $ bandwidth_t $ mtbf_years_t $ seed_t
          $ Arg.(value & opt float 10.0 & info [ "days" ] ~docv:"DAYS"
                   ~doc:"Segment length.")
          $ prospective_t $ failure_dist_t $ alpha_t $ bb_t $ multilevel_t $ hierarchy_t
          $ sample_dt_t $ trace_out_t $ series_out_t $ manifest_out_t)

(* ------------------------------------------------------------------ *)
(* bench-diff                                                           *)
(* ------------------------------------------------------------------ *)

(* Compare two BENCH_*.json trajectory files (written by bench/main.exe)
   per benchmark, so perf moves between commits are one command away —
   CI runs this informationally against the committed baseline. *)
let bench_diff_cmd =
  let module J = Obs.Json in
  let old_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json"
           ~doc:"Baseline BENCH file.")
  in
  let new_t =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json"
           ~doc:"Candidate BENCH file.")
  in
  let threshold_t =
    Arg.(value & opt float 0.0 & info [ "threshold" ] ~docv:"PCT"
           ~doc:"Only report benchmarks whose delta exceeds $(docv) percent in \
                 either direction (default 0: report everything).")
  in
  let fail_above_t =
    Arg.(value & opt (some float) None & info [ "fail-above" ] ~docv:"PCT"
           ~doc:"Regression gate: exit 1 if any benchmark slowed down by more than \
                 $(docv) percent vs the baseline. Without it the diff is purely \
                 informational (always exits 0).")
  in
  let allow_t =
    Arg.(value & opt (list ~sep:',' string) [] & info [ "allow" ] ~docv:"NAME1,NAME2"
           ~doc:"Benchmarks exempt from --fail-above (known-noisy or intentionally \
                 slowed; still reported in the diff).")
  in
  let load path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match J.of_string s with
    | Ok j -> j
    | Error e ->
        Format.eprintf "error: %s: %s@." path e;
        exit 1
  in
  let micro_rows j =
    match Option.bind (J.member "micro" j) J.to_list_opt with
    | None -> []
    | Some rows ->
        List.filter_map
          (fun row ->
            match
              ( Option.bind (J.member "name" row) J.to_string_opt,
                Option.bind (J.member "ns_per_run" row) J.to_float_opt )
            with
            | Some name, Some ns -> Some (name, ns)
            | _ -> None)
          rows
  in
  let e2e_rows j =
    match J.member "end_to_end" j with
    | Some (J.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (J.to_float_opt v)) kvs
    | _ -> []
  in
  let diff_section ~title ~unit ~threshold old_rows new_rows =
    let names =
      List.sort_uniq String.compare (List.map fst old_rows @ List.map fst new_rows)
    in
    if names <> [] then begin
      Format.printf "@.%s@." title;
      Format.printf "  %-42s %14s %14s %9s %9s@." "benchmark" ("old " ^ unit)
        ("new " ^ unit) "delta" "speedup";
      List.iter
        (fun name ->
          match (List.assoc_opt name old_rows, List.assoc_opt name new_rows) with
          | Some o, Some n ->
              let delta = if o = 0.0 then Float.nan else (n -. o) /. o *. 100.0 in
              if Float.is_nan delta || Float.abs delta >= threshold then
                Format.printf "  %-42s %14.1f %14.1f %8.1f%% %8.2fx@." name o n delta
                  (if n = 0.0 then Float.nan else o /. n)
          | None, Some n -> Format.printf "  %-42s %14s %14.1f      (new)@." name "-" n
          | Some o, None -> Format.printf "  %-42s %14.1f %14s     (gone)@." name o "-"
          | None, None -> ())
        names
    end
  in
  (* Benchmarks present in both files, slowed by more than [pct] percent
     and not allowlisted. New/vanished benchmarks never gate: adding a
     bench must not break CI. *)
  let regressions ~pct ~allow old_rows new_rows =
    List.filter_map
      (fun (name, o) ->
        if List.mem name allow then None
        else
          match List.assoc_opt name new_rows with
          | Some n when o > 0.0 ->
              let delta = (n -. o) /. o *. 100.0 in
              if delta > pct then Some (name, delta) else None
          | _ -> None)
      old_rows
  in
  let action old_path new_path threshold fail_above allow =
    let jo = load old_path and jn = load new_path in
    Format.printf "bench-diff: %s -> %s@." old_path new_path;
    diff_section ~title:"micro (Bechamel OLS estimate)" ~unit:"ns/run" ~threshold
      (micro_rows jo) (micro_rows jn);
    diff_section ~title:"end-to-end (one shot)" ~unit:"s" ~threshold (e2e_rows jo)
      (e2e_rows jn);
    match fail_above with
    | None -> ()
    | Some pct ->
        let bad =
          regressions ~pct ~allow (micro_rows jo) (micro_rows jn)
          @ regressions ~pct ~allow (e2e_rows jo) (e2e_rows jn)
        in
        if bad = [] then Format.printf "@.gate: no benchmark slowed by more than %g%%@." pct
        else begin
          Format.printf "@.gate: FAIL — slower than baseline by more than %g%%:@." pct;
          List.iter
            (fun (name, delta) -> Format.printf "  %-42s +%.1f%%@." name delta)
            bad;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Report per-benchmark deltas between two BENCH_*.json files written by \
             bench/main.exe. Informational by default; with --fail-above it becomes \
             a CI regression gate (exit 1 on any benchmark slower than the baseline \
             by more than the given percentage, minus the --allow list).")
    Term.(const action $ old_t $ new_t $ threshold_t $ fail_above_t $ allow_t)

(* ------------------------------------------------------------------ *)
(* campaign                                                             *)
(* ------------------------------------------------------------------ *)

let store_t =
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
         ~doc:"Results store: one digest-keyed JSON record per (cell, strategy, \
               replication). A re-run loads cached records instead of re-simulating, \
               so an interrupted campaign resumes where it stopped.")

let spec_file_t =
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE"
         ~doc:"Load the campaign spec from a JSON file (written by --save-spec or by \
               hand); the platform/axis/strategy flags are then ignored.")

let load_spec path =
  match E.Spec.load ~path with
  | Ok spec -> spec
  | Error e ->
      Format.eprintf "error: cannot load spec %s: %s@." path e;
      exit 1

let campaign_counts spec =
  let cells = List.length (E.Spec.cells spec) in
  let strategies = List.length spec.E.Spec.strategies in
  (cells, strategies, spec.E.Spec.reps)

let campaign_run_cmd =
  let name_t =
    Arg.(value & opt string "campaign" & info [ "name" ] ~docv:"NAME"
           ~doc:"Campaign name (figure id / spec label).")
  in
  let axis_t =
    Arg.(value
         & opt (enum
                  [ ("none", `None); ("mtbf", `Mtbf); ("bandwidth", `Bandwidth);
                    ("flush", `Flush) ])
             `None
         & info [ "axis" ] ~docv:"AXIS"
             ~doc:"Swept parameter: none (default, a single cell), mtbf, bandwidth, \
                   or flush (background-flush bandwidth of the --hierarchy buffer \
                   levels, GB/s).")
  in
  let values_t =
    Arg.(value & opt (list ~sep:',' float) [] & info [ "values" ] ~docv:"V1,V2,..."
           ~doc:"Axis values (years for --axis mtbf, GB/s for --axis bandwidth).")
  in
  let failure_dist_opt_t =
    Arg.(value & opt (some failure_dist_conv) None & info [ "failure-dist" ] ~docv:"DIST"
           ~doc:"Failure inter-arrival law: exponential, weibull:<shape>, \
                 lognormal:<sigma>.")
  in
  let alpha_opt_t =
    Arg.(value & opt (some float) None & info [ "alpha" ] ~docv:"ALPHA"
           ~doc:"Adversarial interference factor.")
  in
  let save_spec_t =
    Arg.(value & opt (some string) None & info [ "save-spec" ] ~docv:"FILE"
           ~doc:"Write the resolved campaign spec as JSON to $(docv) — the file \
                 round-trips exactly and can seed later runs via --spec.")
  in
  let progress_out_t =
    Arg.(value & opt (some string) None & info [ "progress" ] ~docv:"FILE"
           ~doc:"Stream live progress to $(docv) as JSONL: one line per completed \
                 (cell, strategy, replication) point — tagged cached or simulated — \
                 and a final end line. Tail it with `simctl campaign status \
                 --progress $(docv) --follow`.")
  in
  let campaign_trace_out_t =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Profile the campaign execution — per-worker task/idle lanes, one \
                 span per (cell, replication) with nested baseline/simulate child \
                 spans — and write Chrome trace_event JSON to $(docv) for \
                 ui.perfetto.dev.")
  in
  let action spec_file name axis values bandwidth mtbf_years prospective strategies reps
      seed days failure_dist alpha bb multilevel hierarchy store save_spec out domains
      progress trace_out =
    let spec =
      match spec_file with
      | Some path -> load_spec path
      | None -> (
          let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
          let axis =
            match axis with
            | `None -> E.Spec.No_sweep
            | `Mtbf -> E.Spec.Mtbf_years values
            | `Bandwidth -> E.Spec.Bandwidth_gbs values
            | `Flush -> E.Spec.Flush_gbs values
          in
          let strategies = Option.value strategies ~default:Strategy.paper_seven in
          try
            E.Spec.make ~name ~platform ~strategies ~axis ~reps ~seed ~days ?failure_dist
              ?interference_alpha:alpha ?burst_buffer:(bb_spec_of bb)
              ?multilevel:(ml_of multilevel hierarchy) ()
          with Invalid_argument m ->
            Format.eprintf "error: invalid campaign: %s@." m;
            exit 1)
    in
    Option.iter
      (fun path ->
        E.Spec.save ~path spec;
        Format.printf "wrote %s@." path)
      save_spec;
    let tracer =
      match trace_out with
      | None -> Obs.Tracing.disabled
      | Some _ -> Obs.Tracing.create ()
    in
    let telemetry =
      if Obs.Tracing.is_enabled tracer then Some (Obs.Tracing.pool_telemetry tracer ())
      else None
    in
    let progress_oc = Option.map open_out progress in
    let on_progress =
      Option.map
        (fun oc ev ->
          output_string oc (Obs.Json.to_string (E.Runner.progress_to_json ev));
          output_char oc '\n';
          (* One flush per line keeps the stream consumable by
             `campaign status --follow` while the campaign runs. *)
          flush oc)
        progress_oc
    in
    with_pool ?telemetry domains (fun pool ->
        let store = Option.map E.Store.open_ store in
        let o = E.Runner.run ~pool ?store ~tracer ?on_progress spec in
        let cells, strategies, reps = campaign_counts spec in
        Format.printf "campaign %s (digest %s): %d cells x %d strategies x %d reps@."
          spec.E.Spec.name (E.Spec.digest spec) cells strategies reps;
        Format.printf "records: total=%d cached=%d simulated=%d baselines=%d@."
          (cells * strategies * reps)
          o.E.Runner.loaded o.E.Runner.simulated o.E.Runner.baselines;
        match spec.E.Spec.axis with
        | E.Spec.No_sweep ->
            List.iter
              (fun (r : E.Runner.cell_result) ->
                Format.printf "%-24s mean waste %.4f@."
                  (Strategy.name r.E.Runner.strategy)
                  r.E.Runner.stats.Cocheck_util.Stats.mean)
              o.E.Runner.results
        | _ -> finish_figure out (E.Runner.to_figure ~id:spec.E.Spec.name o));
    Option.iter close_out progress_oc;
    Option.iter (fun path -> Format.printf "wrote %s@." path) progress;
    Option.iter
      (fun path ->
        Obs.Tracing.write ~path ~process_name:"simctl campaign" tracer;
        Format.printf "wrote %s (%d events)@." path (Obs.Tracing.length tracer))
      trace_out
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a declarative campaign (from --spec or from flags), resuming from \
             the results store when one is given.")
    Term.(const action $ spec_file_t $ name_t $ axis_t $ values_t $ bandwidth_t
          $ mtbf_years_t $ prospective_t $ strategies_t $ reps_t 100 $ seed_t $ days_t
          $ failure_dist_opt_t $ alpha_opt_t $ bb_t $ multilevel_t $ hierarchy_t
          $ store_t $ save_spec_t $ out_t $ domains_t $ progress_out_t
          $ campaign_trace_out_t)

let campaign_status_cmd =
  let spec_opt_t =
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE"
           ~doc:"Campaign spec JSON file (with --store: inspect the results store).")
  in
  let store_opt_t =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Results store directory to inspect (with --spec).")
  in
  let progress_t =
    Arg.(value & opt (some string) None & info [ "progress" ] ~docv:"FILE"
           ~doc:"Render the live JSONL progress stream written by `campaign run \
                 --progress $(docv)` instead of inspecting a store.")
  in
  let follow_t =
    Arg.(value & flag & info [ "follow"; "f" ]
           ~doc:"With --progress: keep tailing (waiting for the file to appear if \
                 necessary) until the campaign's end event arrives.")
  in
  let render_event = function
    | E.Runner.Point p ->
        Format.printf "[%4d/%d] %8.1fs  cell %-3d rep %-3d %-20s %s@." p.done_points
          p.total_points p.elapsed_s p.cell p.rep p.strategy
          (match p.source with `Cached -> "cached" | `Simulated -> "simulated")
    | E.Runner.Finished f ->
        Format.printf "done: %d points in %.1fs (%d simulated, %d baselines, %d cached)@."
          f.total_points f.elapsed_s f.simulated f.baselines f.loaded
  in
  (* Tail the JSONL stream byte-wise: [input_line] would swallow a
     half-written final line, losing bytes on the next poll. A channel at
     EOF on a regular file retries the read on the next call, so polling
     [input_char] after [End_of_file] picks up appended data. *)
  let follow_progress ~follow path =
    let rec wait_for_file () =
      if Sys.file_exists path then true
      else if follow then begin
        Unix.sleepf 0.2;
        wait_for_file ()
      end
      else false
    in
    if not (wait_for_file ()) then begin
      Format.eprintf "error: no progress file %s (is the campaign running with --progress?)@."
        path;
      exit 1
    end;
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let buf = Buffer.create 256 in
        let finished = ref false in
        let handle line =
          match Obs.Json.of_string line with
          | Error _ -> ()
          | Ok j -> (
              match E.Runner.progress_of_json j with
              | None -> ()
              | Some ev ->
                  render_event ev;
                  (match ev with
                  | E.Runner.Finished _ -> finished := true
                  | E.Runner.Point _ -> ()))
        in
        let rec loop () =
          match input_char ic with
          | '\n' ->
              handle (Buffer.contents buf);
              Buffer.clear buf;
              if not !finished then loop ()
          | c ->
              Buffer.add_char buf c;
              loop ()
          | exception End_of_file ->
              if follow && not !finished then begin
                Unix.sleepf 0.2;
                loop ()
              end
        in
        loop ())
  in
  let action spec_file store progress follow =
    match progress with
    | Some path -> follow_progress ~follow path
    | None -> (
        match (spec_file, store) with
        | Some spec_file, Some store ->
            let spec = load_spec spec_file in
            let p = E.Runner.status ~store:(E.Store.open_ store) spec in
            let cells, strategies, reps = campaign_counts spec in
            Format.printf "campaign %s (digest %s): %d cells x %d strategies x %d reps@."
              spec.E.Spec.name (E.Spec.digest spec) cells strategies reps;
            Format.printf "records: total=%d cached=%d missing=%d@." p.E.Runner.total
              p.E.Runner.cached p.E.Runner.missing
        | _ ->
            Format.eprintf
              "error: pass either --progress FILE, or both --spec and --store@.";
            exit 2)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Report how much of a campaign the results store already covers (--spec + \
             --store), or render/tail the live progress stream of a running campaign \
             (--progress [--follow]).")
    Term.(const action $ spec_opt_t $ store_opt_t $ progress_t $ follow_t)

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Declarative experiment campaigns: typed JSON specs, digest-keyed result \
             caching, resumable execution.")
    [ campaign_run_cmd; campaign_status_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / query                                                        *)
(* ------------------------------------------------------------------ *)

let socket_t =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Serve on (connect to) a Unix-domain socket at $(docv).")

let port_t =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Serve on (connect to) TCP 127.0.0.1:$(docv).")

let endpoint_error () =
  Format.eprintf "error: pass exactly one of --socket PATH or --port PORT@.";
  exit 2

let serve_cmd =
  let store_req_t =
    Arg.(required & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Results store directory the service answers from (created and \
                 shard-migrated if needed).")
  in
  let max_inflight_t =
    Arg.(value & opt int 4096 & info [ "max-inflight" ] ~docv:"POINTS"
           ~doc:"Admission bound: campaign requests get an immediate overload reply \
                 while this many points are already queued or running (an idle server \
                 always admits).")
  in
  let action socket port store domains max_inflight =
    let listener =
      match (socket, port) with
      | Some path, None -> E.Service.listen_unix path
      | None, Some port -> E.Service.listen_tcp port
      | _ -> endpoint_error ()
    in
    with_pool domains (fun pool ->
        let store = E.Store.open_ store in
        let srv = E.Service.create ~max_inflight ~pool ~store listener in
        let stop _ = E.Service.stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Format.printf "simctl serve: listening on %s (store %s, %d records, %d domains)@."
          (match (socket, port) with
          | Some path, _ -> path
          | _, Some port -> Printf.sprintf "127.0.0.1:%d" port
          | _ -> assert false)
          (E.Store.dir store) (E.Store.record_count store) (Pool.num_workers pool);
        Format.print_flush ();
        E.Service.run srv;
        Format.printf "simctl serve: drained, shutting down@.");
    match socket with
    | Some path when Sys.file_exists path -> Sys.remove path
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running campaign service: concurrent campaign/bound/waste queries as \
             JSONL over a socket, fair-queued across clients, warm queries answered \
             from the store with zero simulations.")
    Term.(const action $ socket_t $ port_t $ store_req_t $ domains_t $ max_inflight_t)

let query_connect ~socket ~port =
  match (socket, port) with
  | Some path, None -> E.Service.Client.connect_unix path
  | None, Some port -> E.Service.Client.connect_tcp port
  | _ -> endpoint_error ()

let render_progress = function
  | E.Runner.Point { done_points; total_points; elapsed_s; cell; rep; strategy; source; _ } ->
      Format.printf "[%4d/%d] %8.1fs  cell %-3d rep %-3d %-20s %s@." done_points total_points
        elapsed_s cell rep strategy
        (match source with `Cached -> "cached" | `Simulated -> "simulated")
  | E.Runner.Finished _ -> ()

let print_response = function
  | E.Protocol.Pong -> Format.printf "pong@."
  | E.Protocol.Bye -> Format.printf "server shutting down@."
  | E.Protocol.Overload { inflight; limit } ->
      Format.eprintf "overloaded: %d points in flight (limit %d); retry later@." inflight
        limit;
      exit 3
  | E.Protocol.Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1
  | E.Protocol.Progress _ -> ()
  | E.Protocol.Campaign_result r ->
      Format.printf "campaign: %d points in %.2fs (%d simulated, %d baselines, %d cached)@."
        r.total_points r.elapsed_s r.simulated r.baselines r.loaded;
      List.iter
        (fun (c : E.Protocol.cell_summary) ->
          Format.printf "  %s%-24s mean waste %.4f  (q1 %.4f  median %.4f  q3 %.4f)@."
            (match c.x with None -> "" | Some x -> Printf.sprintf "x=%-8g " x)
            c.strategy c.mean c.q1 c.median c.q3)
        r.cells
  | E.Protocol.Status_result r ->
      Format.printf "records: total=%d cached=%d missing=%d@." r.total r.cached r.missing
  | E.Protocol.Bound_result r ->
      Format.printf "lambda: %.6g@." r.lambda;
      Format.printf "I/O fraction F: %.4f@." r.io_fraction;
      Format.printf "waste lower bound: %.4f (efficiency %.4f)@." r.waste (1.0 -. r.waste)
  | E.Protocol.Waste_result r -> Format.printf "analytic waste: %.4f@." r.waste
  | E.Protocol.Stats_result r ->
      Format.printf
        "store: hits=%d misses=%d loads=%d writes=%d evictions=%d migrated=%d indexed=%d@."
        r.store.E.Store.hits r.store.E.Store.misses r.store.E.Store.loads
        r.store.E.Store.writes r.store.E.Store.evictions r.store.E.Store.migrated r.indexed;
      Format.printf "service: inflight_points=%d served=%d@." r.inflight r.served

let query_one ~socket ~port ?on_progress req =
  let conn = query_connect ~socket ~port in
  Fun.protect
    ~finally:(fun () -> E.Service.Client.close conn)
    (fun () -> print_response (E.Service.Client.request ?on_progress conn req))

let query_spec_req_t =
  Arg.(required & opt (some string) None & info [ "spec" ] ~docv:"FILE"
         ~doc:"Campaign spec JSON file to send.")

let query_cmd =
  let simple name ~doc req =
    let action socket port = query_one ~socket ~port req in
    Cmd.v (Cmd.info name ~doc) Term.(const action $ socket_t $ port_t)
  in
  let campaign_q =
    let progress_t =
      Arg.(value & flag & info [ "progress" ]
             ~doc:"Stream and render per-point progress frames while the campaign runs.")
    in
    let action socket port spec_file progress =
      let spec = load_spec spec_file in
      let on_progress = if progress then Some render_progress else None in
      query_one ~socket ~port ?on_progress (E.Protocol.Campaign { spec; progress })
    in
    Cmd.v
      (Cmd.info "campaign"
         ~doc:"Run (or warm-load) a campaign on the service; cold cells are simulated \
               server-side, warm ones answered from the store.")
      Term.(const action $ socket_t $ port_t $ query_spec_req_t $ progress_t)
  in
  let status_q =
    let action socket port spec_file =
      query_one ~socket ~port (E.Protocol.Status { spec = load_spec spec_file })
    in
    Cmd.v (Cmd.info "status" ~doc:"Ask the service how much of a campaign its store covers.")
      Term.(const action $ socket_t $ port_t $ query_spec_req_t)
  in
  let platform_q name ~doc mk =
    let action socket port bandwidth mtbf_years prospective =
      let platform = platform_of ~prospective ~bandwidth ~mtbf_years in
      query_one ~socket ~port (mk platform)
    in
    Cmd.v (Cmd.info name ~doc)
      Term.(const action $ socket_t $ port_t $ bandwidth_t $ mtbf_years_t $ prospective_t)
  in
  Cmd.group
    (Cmd.info "query"
       ~doc:"Client for a running `simctl serve` daemon: campaign, status, bound, \
             waste, ping, stats, shutdown.")
    [
      campaign_q;
      status_q;
      platform_q "bound" ~doc:"Theorem 1 lower bound, served." (fun platform ->
          E.Protocol.Bound { platform });
      platform_q "waste" ~doc:"Analytic waste model, served." (fun platform ->
          E.Protocol.Waste { platform });
      simple "ping" ~doc:"Liveness check." E.Protocol.Ping;
      simple "stats" ~doc:"Store and admission counters." E.Protocol.Stats;
      simple "shutdown" ~doc:"Stop the daemon cleanly (drains in-flight campaigns)."
        E.Protocol.Shutdown;
    ]

let main =
  Cmd.group
    (Cmd.info "simctl" ~version:"1.0.0"
       ~doc:"Cooperative checkpointing for shared HPC platforms — simulator and experiments.")
    [
      run_cmd; observe_cmd; campaign_cmd; serve_cmd; query_cmd; fig1_cmd; fig2_cmd;
      fig3_cmd; table1_cmd; bound_cmd; trace_cmd; ablation_cmd; check_cmd; timeline_cmd;
      report_cmd; bench_diff_cmd;
    ]

let () = exit (Cmd.eval main)
