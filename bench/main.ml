(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel microbenchmarks of the hot paths.

     dune exec bench/main.exe                 # everything, modest replication
     dune exec bench/main.exe -- fig1 --reps 100 --days 60
     dune exec bench/main.exe -- micro

   The defaults trade Monte Carlo depth for wall time; raise --reps/--days
   to approach the paper's 1000-replication protocol. *)

module Pool = Cocheck_parallel.Pool
module Strategy = Cocheck_core.Strategy
module Platform = Cocheck_model.Platform
module Config = Cocheck_sim.Config
module Simulator = Cocheck_sim.Simulator
module E = Cocheck_experiments

let reps = ref 10
let days = ref 30.0
let fig3_reps = ref 3
let fig3_days = ref 20.0
let fig3_iters = ref 8
let seed = ref 42
let modes = ref []
let bench_out = ref ""
let quota_s = ref 1.0

let usage = "bench [table1|fig1|fig2|fig3|ablations|micro|serve|tracing|all]* [options]"

let spec =
  [
    ("--reps", Arg.Set_int reps, "Monte Carlo replications for fig1/fig2 (default 10)");
    ("--days", Arg.Set_float days, "segment length in days for fig1/fig2 (default 30)");
    ("--fig3-reps", Arg.Set_int fig3_reps, "replications per fig3 probe (default 3)");
    ("--fig3-days", Arg.Set_float fig3_days, "segment days per fig3 probe (default 20)");
    ("--fig3-iters", Arg.Set_int fig3_iters, "fig3 bisection iterations (default 8)");
    ("--seed", Arg.Set_int seed, "root seed (default 42)");
    ( "--quota",
      Arg.Set_float quota_s,
      "Bechamel time quota per microbenchmark, seconds (default 1.0)" );
    ( "--bench-out",
      Arg.Set_string bench_out,
      "machine-readable results file (default BENCH_<timestamp>.json)" );
  ]

let section title = Printf.printf "\n============ %s ============\n%!" title

(* One timer accumulates every phase; the table at the end of the run
   breaks the campaign's wall time down. *)
let timer = Cocheck_obs.Timer.create ()

let timed name f =
  let before = Cocheck_obs.Timer.total_s timer in
  let r = Cocheck_obs.Timer.time timer ~name f in
  Printf.printf "[%s took %.1fs]\n%!" name (Cocheck_obs.Timer.total_s timer -. before);
  r

(* Every measurement lands here and, at exit, in the BENCH_*.json trajectory
   file, so perf regressions can be diffed run over run by machines. *)
let micro_estimates : (string * float option * float option) list ref = ref []
let e2e_wall : (string * float) list ref = ref []

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                      *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "Table 1 — LANL APEX workload";
  print_string (E.Table1.render ())

let run_fig1 pool =
  section "Figure 1 — waste ratio vs system bandwidth (Cielo, node MTBF 2y)";
  let fig =
    timed "fig1" (fun () -> E.Fig1.run ~pool ~reps:!reps ~seed:!seed ~days:!days ())
  in
  print_string (E.Figures.render fig)

let run_fig2 pool =
  section "Figure 2 — waste ratio vs node MTBF (Cielo, 40 GB/s)";
  let fig =
    timed "fig2" (fun () -> E.Fig2.run ~pool ~reps:!reps ~seed:!seed ~days:!days ())
  in
  print_string (E.Figures.render fig)

let run_fig3 pool =
  section "Figure 3 — min bandwidth for 80% efficiency (prospective system)";
  let fig =
    timed "fig3" (fun () ->
        E.Fig3.run ~pool ~reps:!fig3_reps ~seed:!seed ~days:!fig3_days
          ~iters:!fig3_iters ())
  in
  print_string (E.Figures.render fig)

let run_ablations pool =
  section "Ablation: failure inter-arrival law";
  let a =
    timed "ablation-failures" (fun () ->
        E.Ablations.failure_distribution ~pool ~reps:(max 2 (!reps / 2)) ~seed:!seed
          ~days:(Float.min !days 20.0) ())
  in
  print_string (Cocheck_util.Table.render a.E.Ablations.table);
  section "Ablation: adversarial interference model";
  let a =
    timed "ablation-interference" (fun () ->
        E.Ablations.interference_model ~pool ~reps:(max 2 (!reps / 2)) ~seed:!seed
          ~days:(Float.min !days 20.0) ())
  in
  print_string (Cocheck_util.Table.render a.E.Ablations.table);
  section "Ablation: burst-buffer capacity (Section 8 extension)";
  let a =
    timed "ablation-bb" (fun () ->
        E.Ablations.burst_buffer ~pool ~reps:(max 2 (!reps / 2)) ~seed:!seed
          ~days:(Float.min !days 20.0) ())
  in
  print_string (Cocheck_util.Table.render a.E.Ablations.table);
  section "Ablation: period scaling (Arunagiri et al., ref. [12])";
  let a = timed "ablation-period" (fun () -> E.Ablations.period_scaling ()) in
  print_string (Cocheck_util.Table.render a.E.Ablations.table);
  section "Ablation: Daly vs Theorem-1 optimal periods";
  let a =
    timed "ablation-optimal" (fun () ->
        E.Ablations.optimal_periods ~pool ~reps:(max 2 (!reps / 2)) ~seed:!seed
          ~days:(Float.min !days 20.0) ())
  in
  print_string (Cocheck_util.Table.render a.E.Ablations.table);
  section "Ablation: two-level (SCR-style) checkpointing";
  let a =
    timed "ablation-two-level" (fun () ->
        E.Ablations.two_level ~pool ~reps:(max 2 (!reps / 2)) ~seed:!seed
          ~days:(Float.min !days 20.0) ())
  in
  print_string (Cocheck_util.Table.render a.E.Ablations.table);
  section "Ablation: fixed-period sensitivity";
  let a =
    timed "ablation-fixed-period" (fun () ->
        E.Ablations.fixed_period ~pool ~reps:(max 2 (!reps / 2)) ~seed:!seed
          ~days:(Float.min !days 20.0) ())
  in
  print_string (Cocheck_util.Table.render a.E.Ablations.table)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                      *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let pqueue_churn =
    Test.make ~name:"pqueue-add-pop-256"
      (Staged.stage (fun () ->
           let q = Cocheck_util.Pqueue.create () in
           for i = 0 to 255 do
             ignore (Cocheck_util.Pqueue.add q ~priority:(float_of_int (i * 37 mod 97)) i)
           done;
           while Cocheck_util.Pqueue.pop q <> None do
             ()
           done))
  in
  (* Same churn through the allocation-free root API the engine loop uses
     (min_value + drop_min instead of the option/tuple-boxing pop). *)
  let pqueue_drop_churn =
    Test.make ~name:"pqueue-add-drop-256"
      (Staged.stage (fun () ->
           let q = Cocheck_util.Pqueue.create () in
           for i = 0 to 255 do
             ignore (Cocheck_util.Pqueue.add q ~priority:(float_of_int (i * 37 mod 97)) i)
           done;
           while not (Cocheck_util.Pqueue.is_empty q) do
             ignore (Cocheck_util.Pqueue.min_value q);
             Cocheck_util.Pqueue.drop_min q
           done))
  in
  let candidates =
    List.init 32 (fun i ->
        if i mod 2 = 0 then
          Cocheck_core.Candidate.Io
            { key = i; nodes = 512 + i; service_s = 100.0 +. float_of_int i; waited_s = 50.0 }
        else
          Cocheck_core.Candidate.Ckpt
            {
              key = i;
              nodes = 2048;
              ckpt_s = 300.0;
              exposed_s = 1000.0 +. float_of_int i;
              recovery_s = 300.0;
            })
  in
  let least_waste_select =
    Test.make ~name:"least-waste-select-32"
      (Staged.stage (fun () ->
           ignore
             (Cocheck_core.Least_waste.select ~node_mtbf_s:(2.0 *. 365.0 *. 86400.0)
                candidates)))
  in
  let platform = Platform.cielo ~bandwidth_gbs:40.0 () in
  let counts =
    Cocheck_core.Waste.steady_state_counts ~classes:Cocheck_model.Apex.lanl_workload
      ~platform
  in
  let lower_bound =
    Test.make ~name:"lower-bound-solve"
      (Staged.stage (fun () ->
           ignore (Cocheck_core.Lower_bound.solve_model ~classes:counts ~platform ())))
  in
  let daly_day =
    (* One simulated day of the full Cielo workload under Least-Waste:
       the end-to-end hot path. *)
    Test.make ~name:"simulate-1day-least-waste"
      (Staged.stage (fun () ->
           let cfg =
             Config.make ~platform ~strategy:Strategy.Least_waste ~seed:7 ~days:1.0 ()
           in
           ignore (Simulator.run cfg)))
  in
  let jobgen =
    Test.make ~name:"jobgen-62days"
      (Staged.stage (fun () ->
           let cfg =
             Config.make ~platform ~strategy:Strategy.Baseline ~seed:11 ~days:60.0 ()
           in
           ignore (Simulator.generate_specs cfg)))
  in
  (* n concurrent flows, then n completions: n+1 membership changes on the
     shared PFS. The incremental scheduler should grow ~n log n here; the
     retired full-rescan implementation grew ~n^3. *)
  let io_rebalance n =
    Test.make ~name:(Printf.sprintf "io-rebalance-%d-flows" n)
      (Staged.stage (fun () ->
           let engine = Cocheck_des.Engine.create () in
           let metrics = Cocheck_sim.Metrics.create ~seg_start:0.0 ~seg_end:1e12 in
           let io =
             Cocheck_sim.Io_subsystem.create ~engine ~metrics ~bandwidth_gbs:100.0
               ~sharing:`Linear
           in
           for i = 0 to n - 1 do
             ignore
               (Cocheck_sim.Io_subsystem.start_flow io ~job:i ~nodes:(1 + (i mod 7))
                  ~kind:Cocheck_sim.Io_subsystem.Ckpt
                  ~volume_gb:(1.0 +. float_of_int (i * 17 mod 29))
                  ~on_complete:(fun () -> ()))
           done;
           Cocheck_des.Engine.run engine))
  in
  (* A full arbitration cycle at n pending requests: enqueue all, then
     grant until dry. The id-indexed pool makes enqueue/removal O(1);
     before it, the list-based pool ([pool @ [req]] + List.find/filter)
     made every cycle O(n²) on top of the waste evaluation. *)
  let arbiter_lw n =
    let module T = Cocheck_sim.Sim_types in
    let module Jobgen = Cocheck_model.Jobgen in
    let node_pool = Cocheck_sim.Node_pool.create ~nodes:(1024 * n) in
    let mk_request i =
      let nodes = 128 + (64 * (i mod 11)) in
      let spec =
        {
          Jobgen.id = i;
          class_index = 0;
          class_name = "bench";
          nodes;
          work_s = 1e6;
          input_gb = 0.0;
          output_gb = 0.0;
          ckpt_gb = 50.0 +. float_of_int (i mod 7);
          steady_io_gb = 0.0;
        }
      in
      let inst =
        {
          T.idx = i;
          spec;
          total_work = 1e6;
          entry_has_ckpt = false;
          restarts = 0;
          nodes = Option.get (Cocheck_sim.Node_pool.alloc node_pool ~job:i ~count:nodes);
          start_time = 0.0;
          period = 3600.0;
          ckpt_nominal = spec.Jobgen.ckpt_gb /. 40.0;
          activity = T.Computing_pending;
          work_done = 0.0;
          committed = 0.0;
          has_ckpt = false;
          compute_start = 0.0;
          uncommitted = Cocheck_util.Interval_ledger.create ();
          last_commit_end = float_of_int (i * 37 mod 997);
          ckpt_request_ev = T.Engine.none;
          work_done_ev = T.Engine.none;
          wait_start = 0.0;
          ckpt_content = 0.0;
          holds_token = false;
          committed_local = [||];
          local_safe_time = [||];
          local_level = 0;
          local_pause_start = 0.0;
          local_tick_ev = [||];
          local_done_ev = T.Engine.none;
          delay_ev = T.Engine.none;
          cb_work_done = ignore;
          cb_ckpt_request = ignore;
          cb_local_tick = [||];
          cb_local_done = ignore;
          live_slot = -1;
        }
      in
      {
        T.r_id = i;
        r_inst = inst;
        r_kind =
          (if i mod 3 = 0 then T.Req_io Cocheck_sim.Io_subsystem.Input else T.Req_ckpt);
        r_volume = spec.Jobgen.ckpt_gb;
        r_at = float_of_int (i * 13 mod 731);
        r_cancelled = false;
        r_slot = -1;
      }
    in
    let requests = List.init n mk_request in
    Test.make ~name:(Printf.sprintf "io-arbiter-lw-%d" n)
      (Staged.stage (fun () ->
           let (module A) =
             Cocheck_sim.Arbiter.least_waste ~node_mtbf_s:(2.0 *. 365.0 *. 86400.0)
               ~bandwidth_gbs:40.0 ()
           in
           List.iter A.enqueue requests;
           while A.select ~now:10_000.0 <> None do
             ()
           done))
  in
  (* Second list: benches that need the 3× quota and raised sample limit to
     produce a trustworthy OLS fit — either because a single iteration is so
     long the default quota yields a handful of samples (jobgen-62days has
     shipped with r² ≈ −0.03, io-rebalance-1024-flows with r² ≈ 0.58), or
     because the iteration is so short that setup noise dominates the default
     window (io-rebalance-16-flows and io-arbiter-lw-16 post-pooling). *)
  ( [
      pqueue_churn;
      pqueue_drop_churn;
      least_waste_select;
      lower_bound;
      daly_day;
      io_rebalance 128;
      arbiter_lw 128;
      arbiter_lw 1024;
    ],
    [ jobgen; io_rebalance 1024; io_rebalance 16; arbiter_lw 16 ] )

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Cold vs fully-cached execution of the same 64-record campaign: the
   second number is the fixed cost of a resume (key derivation + record
   loads), which should sit orders of magnitude under the first. *)
let run_campaign_resume pool e2e =
  let platform =
    Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
      ~node_mtbf_s:(Cocheck_util.Units.years 0.1)
  in
  let tiny_class =
    Cocheck_model.App_class.make ~name:"toy" ~workload_pct:100.0
      ~walltime_s:(Cocheck_util.Units.hours 2.0) ~nodes:16 ~input_pct:10.0
      ~output_pct:10.0 ~ckpt_pct:50.0 ()
  in
  let spec =
    E.Spec.make ~name:"bench-campaign" ~platform ~classes:[ tiny_class ]
      ~strategies:[ Strategy.Least_waste; Strategy.Ordered_nb Strategy.Daly ]
      ~axis:
        (E.Spec.Bandwidth_gbs (List.init 16 (fun i -> 1.0 +. (0.25 *. float_of_int i))))
      ~reps:2 ~seed:!seed ~days:0.5 ()
  in
  let store = Filename.temp_file "cocheck-bench-store" "" in
  Sys.remove store;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store then rm_rf store)
    (fun () ->
      let store = E.Store.open_ store in
      e2e "campaign-resume-cold-64" (fun () ->
          ignore (E.Runner.run ~pool ~store spec));
      e2e "campaign-resume-warm-64" (fun () ->
          let o = E.Runner.run ~pool ~store spec in
          assert (o.E.Runner.simulated = 0 && o.E.Runner.baselines = 0)))

(* The campaign service under concurrent clients: N simultaneous
   connections each running its own single-cell campaign, cold first
   (simulated server-side, fair-queued across per-connection tenants),
   then fully warm (answered from the sharded store — the warm pass
   asserts the server performed zero simulations). Reported: per-request
   p50/p95 latency for both passes plus warm throughput. *)
let run_campaign_serve pool =
  section "Campaign service (concurrent clients, cold vs warm)";
  let platform =
    Platform.make ~name:"tiny" ~nodes:64 ~mem_per_node_gb:1.0 ~bandwidth_gbs:1.0
      ~node_mtbf_s:(Cocheck_util.Units.years 0.1)
  in
  let tiny_class =
    Cocheck_model.App_class.make ~name:"toy" ~workload_pct:100.0
      ~walltime_s:(Cocheck_util.Units.hours 2.0) ~nodes:16 ~input_pct:10.0
      ~output_pct:10.0 ~ckpt_pct:50.0 ()
  in
  (* One distinct single-cell campaign per client: every cold request
     simulates its own two points, so the cold pass exercises admission,
     fair queueing and concurrent store writes, not same-key dedup. *)
  let spec_of i =
    E.Spec.make ~name:(Printf.sprintf "bench-serve-%d" i) ~platform
      ~classes:[ tiny_class ] ~strategies:[ Strategy.Least_waste ] ~reps:2
      ~seed:(!seed + i) ~days:0.25 ()
  in
  let quantile lat q =
    let a = Array.copy lat in
    Array.sort compare a;
    a.(min (Array.length a - 1) (int_of_float (q *. float_of_int (Array.length a))))
  in
  let serve n =
    let dir = Filename.temp_file "cocheck-bench-serve" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let sock = Filename.temp_file "cocheck" ".sock" in
    Sys.remove sock;
    let store = E.Store.open_ dir in
    let srv = E.Service.create ~pool ~store (E.Service.listen_unix sock) in
    let th = Thread.create E.Service.run srv in
    Fun.protect
      ~finally:(fun () ->
        E.Service.stop srv;
        Thread.join th;
        if Sys.file_exists sock then Sys.remove sock;
        rm_rf dir)
      (fun () ->
        let pass ~warm =
          let lat = Array.make n 0.0 in
          let t0 = Unix.gettimeofday () in
          let client i =
            let conn = E.Service.Client.connect_unix sock in
            let t = Unix.gettimeofday () in
            let resp =
              E.Service.Client.request conn
                (E.Protocol.Campaign { spec = spec_of i; progress = false })
            in
            lat.(i) <- Unix.gettimeofday () -. t;
            E.Service.Client.close conn;
            match resp with
            | E.Protocol.Campaign_result { simulated; baselines; _ } ->
                (* the acceptance bar: a fully warm pass never simulates *)
                if warm then assert (simulated = 0 && baselines = 0)
            | _ -> assert false
          in
          let threads = Array.init n (fun i -> Thread.create client i) in
          Array.iter Thread.join threads;
          (lat, Unix.gettimeofday () -. t0)
        in
        let cold, _ = pass ~warm:false in
        let warm, warm_wall = pass ~warm:true in
        let entry suffix v =
          let name = Printf.sprintf "campaign-serve-%d-clients-%s" n suffix in
          e2e_wall := (name, v) :: !e2e_wall;
          Printf.printf "  %-40s %12.5f\n%!" name v
        in
        entry "cold-p50" (quantile cold 0.5);
        entry "cold-p95" (quantile cold 0.95);
        entry "warm-p50" (quantile warm 0.5);
        entry "warm-p95" (quantile warm 0.95);
        entry "warm-rps" (float_of_int n /. warm_wall))
  in
  serve 16;
  serve 256

let run_micro pool =
  section "Microbenchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let instance = Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let measure ~limit ~quota tests =
    let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"cocheck" tests) in
    let results = Analyze.all ols instance raw in
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
  in
  let stable, noisy = micro_tests () in
  let rows =
    measure ~limit:2000 ~quota:!quota_s stable
    @ measure ~limit:20000 ~quota:(5.0 *. !quota_s) noisy
  in
  List.iter
    (fun (name, r) ->
      let ns = match Analyze.OLS.estimates r with Some [ e ] -> Some e | _ -> None in
      let r2 = Analyze.OLS.r_square r in
      micro_estimates := (name, ns, r2) :: !micro_estimates;
      let est =
        match ns with
        | Some e -> Printf.sprintf "%12.1f ns/run" e
        | None -> "(no estimate)"
      in
      let r2s = match r2 with Some v -> Printf.sprintf "r²=%.4f" v | None -> "" in
      Printf.printf "  %-40s %s  %s\n" name est r2s)
    (List.sort compare rows);
  (* A 60-day Cielo campaign under Least-Waste is too slow to iterate under
     Bechamel; one wall-clock shot gives the end-to-end trajectory number. *)
  let e2e name f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    e2e_wall := (name, dt) :: !e2e_wall;
    Printf.printf "  %-40s %12.3f s (one shot)\n" name dt
  in
  let platform = Platform.cielo ~bandwidth_gbs:40.0 () in
  e2e "simulate-60day-least-waste" (fun () ->
      let cfg = Config.make ~platform ~strategy:Strategy.Least_waste ~seed:7 ~days:60.0 () in
      ignore (Simulator.run cfg));
  (* Year-scale shots the allocation-free calendar makes affordable: a full
     year of the Section 6.2 prospective machine (50 000 nodes) and a
     quarter of a mid-size 4k-node system. *)
  e2e "simulate-1year-lw-50k" (fun () ->
      let platform = Platform.prospective () in
      let cfg =
        Config.make ~platform ~strategy:Strategy.Least_waste ~seed:7 ~days:365.0 ()
      in
      ignore (Simulator.run cfg));
  e2e "simulate-90day-lw-4k" (fun () ->
      let platform =
        Platform.make ~name:"mid-4k" ~nodes:4096 ~mem_per_node_gb:64.0
          ~bandwidth_gbs:400.0 ~node_mtbf_s:(Cocheck_util.Units.years 5.0)
      in
      let cfg =
        Config.make ~platform ~strategy:Strategy.Least_waste ~seed:7 ~days:90.0 ()
      in
      ignore (Simulator.run cfg));
  (* Three-level hierarchy — node-local snapshots, a burst buffer with a
     dedicated flush edge, the PFS — under Least-Waste: the Ckpt_hierarchy
     end-to-end trajectory number. *)
  e2e "simulate-60day-lw-ml3" (fun () ->
      let multilevel =
        {
          Config.levels =
            [
              Config.Snapshot
                {
                  Config.sl_period_s = 600.0;
                  sl_cost_s = 5.0;
                  sl_recovery_s = 30.0;
                  sl_survival = 0.5;
                };
              Config.Buffer
                {
                  Config.bl_capacity_gb = 250_000.0;
                  bl_bandwidth_gbs = 1_000.0;
                  bl_flush_gbs = Some 20.0;
                  bl_survival = 1.0;
                };
            ];
        }
      in
      let cfg =
        Config.make ~platform ~strategy:Strategy.Least_waste ~seed:7 ~days:60.0
          ~multilevel ()
      in
      ignore (Simulator.run cfg));
  run_campaign_resume pool e2e

(* Zero-cost-when-off contract of the tracing layer: driving the simulator
   through the fully instrumented path with the disabled tracer must give a
   bit-identical result, attach nothing to the engine, and cost within noise
   of the bare run. The identity checks are hard assertions; the timing is
   reported (and lands in the BENCH json) rather than asserted, because
   one-shot wall clock is too noisy to gate on here — `simctl bench-diff
   --fail-above` is the gate. *)
let run_tracing_overhead () =
  section "Tracing overhead (disabled tracer)";
  let module Tracing = Cocheck_obs.Tracing in
  let tracer = Tracing.disabled in
  let platform = Platform.cielo ~bandwidth_gbs:40.0 () in
  let cfg =
    Config.make ~platform ~strategy:Strategy.Least_waste ~seed:!seed ~days:60.0 ()
  in
  let iters = 30 in
  let run_plain () = Simulator.run cfg in
  let run_instrumented () =
    let flush = ref (fun () -> ()) in
    let on_engine engine =
      flush :=
        Tracing.instrument_engine tracer ~prefix:"bench"
          ~kinds:Cocheck_sim.Ev_kind.names engine
    in
    let r =
      Tracing.span tracer ~cat:"bench" "simulate" (fun () ->
          Simulator.run ~on_engine cfg)
    in
    !flush ();
    r
  in
  ignore (run_plain ());
  (* warm caches *)
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = ref (f ()) in
    for _ = 2 to iters do
      r := f ()
    done;
    (!r, (Unix.gettimeofday () -. t0) /. float_of_int iters)
  in
  let plain, t_plain = time run_plain in
  let instrumented, t_instr = time run_instrumented in
  if plain <> instrumented then
    failwith "tracing-overhead: disabled tracer changed simulation results";
  if Tracing.is_enabled tracer || Tracing.length tracer <> 0 then
    failwith "tracing-overhead: disabled tracer recorded events";
  e2e_wall := ("tracing-off-instrumented-60day", t_instr) :: !e2e_wall;
  e2e_wall := ("tracing-off-bare-60day", t_plain) :: !e2e_wall;
  Printf.printf
    "  bare %.4f s, instrumented-but-off %.4f s per run over %d runs (delta %+.1f%%)\n\
    \  results bit-identical, 0 events recorded\n"
    t_plain t_instr iters
    (if t_plain > 0.0 then 100.0 *. (t_instr -. t_plain) /. t_plain else 0.0);
  (* Allocation budget of the event loop: minor words per processed event
     over the same 60-day run, measured with a Runtime GC probe armed when
     the engine is handed out (so config/jobgen setup is excluded). The sim
     is deterministic, so the measurement is exactly reproducible: pooled
     flows/requests/instances plus the unboxed ledgers and incremental
     metrics land at ~87 words/event here; the SoA calendar alone sat near
     289, the record-per-entry calendar ~36 higher still. Blowing the
     ceiling means someone put an allocation back into the per-event path. *)
  let minor_words_budget = 100.0 in
  let engine = ref None in
  let probe = ref None in
  ignore
    (Simulator.run
       ~on_engine:(fun e ->
         engine := Some e;
         probe := Some (Cocheck_obs.Runtime.gc_probe ()))
       cfg);
  let words_per_event =
    match (!engine, !probe) with
    | Some e, Some p ->
        let delta = Cocheck_obs.Runtime.gc_sample p in
        let events = Cocheck_des.Engine.events_processed e in
        if events = 0 then 0.0
        else delta.Cocheck_obs.Runtime.minor_words /. float_of_int events
    | _ -> failwith "tracing-overhead: on_engine never ran"
  in
  e2e_wall := ("minor-words-per-event-60day", words_per_event) :: !e2e_wall;
  Printf.printf "  %.1f minor words per event (budget %.0f)\n" words_per_event
    minor_words_budget;
  if words_per_event > minor_words_budget then
    failwith
      (Printf.sprintf
         "tracing-overhead: %.1f minor words/event exceeds the %.0f budget"
         words_per_event minor_words_budget)

(* ------------------------------------------------------------------ *)

let write_bench_json ~modes =
  let module J = Cocheck_obs.Json in
  let path =
    if !bench_out <> "" then !bench_out
    else Printf.sprintf "BENCH_%d.json" (int_of_float (Unix.time ()))
  in
  let opt_float = function Some v -> J.Float v | None -> J.Null in
  let json =
    J.Obj
      [
        ("schema", J.String "cocheck-bench/1");
        ("unix_time", J.Float (Unix.time ()));
        ("modes", J.List (List.map (fun m -> J.String m) modes));
        ("seed", J.Int !seed);
        ( "micro",
          J.List
            (List.rev_map
               (fun (name, ns, r2) ->
                 J.Obj
                   [
                     ("name", J.String name);
                     ("ns_per_run", opt_float ns);
                     ("r_square", opt_float r2);
                   ])
               !micro_estimates) );
        ( "end_to_end",
          J.Obj (List.rev_map (fun (name, s) -> (name, J.Float s)) !e2e_wall) );
        ("phases", Cocheck_obs.Timer.to_json timer);
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench: results written to %s\n" path

let () =
  Arg.parse spec (fun m -> modes := m :: !modes) usage;
  let modes = if !modes = [] then [ "all" ] else List.rev !modes in
  let has m = List.mem m modes || List.mem "all" modes in
  Pool.with_pool (fun pool ->
      if has "table1" then timed "table1" run_table1;
      if has "fig1" then run_fig1 pool;
      if has "fig2" then run_fig2 pool;
      if has "fig3" then run_fig3 pool;
      if has "ablations" then run_ablations pool;
      if has "micro" then timed "micro" (fun () -> run_micro pool);
      if has "serve" then timed "serve" (fun () -> run_campaign_serve pool);
      if has "tracing" then timed "tracing" run_tracing_overhead);
  (match Cocheck_obs.Timer.phases timer with
  | [] -> ()
  | _ ->
      section "Phase timings";
      print_string (Cocheck_obs.Timer.render timer));
  write_bench_json ~modes;
  Printf.printf "\nbench: done\n"
