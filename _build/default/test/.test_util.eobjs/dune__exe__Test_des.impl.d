test/test_des.ml: Alcotest Cocheck_des List QCheck QCheck_alcotest
