test/test_simulator.ml: Alcotest Array Cocheck_core Cocheck_model Cocheck_sim Cocheck_util Float List Printf QCheck QCheck_alcotest
