test/test_core.ml: Alcotest Candidate Cocheck_core Cocheck_model Cocheck_util Daly Float Least_waste List Lower_bound Printf QCheck QCheck_alcotest Strategy Waste
