test/test_experiments.ml: Alcotest Array Cocheck_core Cocheck_experiments Cocheck_model Cocheck_parallel Cocheck_sim Cocheck_util Float List Option Printf String
