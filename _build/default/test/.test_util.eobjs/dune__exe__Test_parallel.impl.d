test/test_parallel.ml: Alcotest Array Atomic Cocheck_parallel Cocheck_util List
