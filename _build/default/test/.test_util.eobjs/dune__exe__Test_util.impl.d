test/test_util.ml: Alcotest Array Ascii_plot Cocheck_util Dist Float Format List Numerics Pqueue Printf QCheck QCheck_alcotest Rng Stats String Table Units
