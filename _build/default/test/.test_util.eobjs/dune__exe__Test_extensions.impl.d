test/test_extensions.ml: Alcotest Array Cocheck_core Cocheck_des Cocheck_model Cocheck_sim Cocheck_util Float List Printf QCheck QCheck_alcotest String
