test/test_model.ml: Alcotest Apex App_class Array Cocheck_model Cocheck_util Float Jobgen List Platform Printf QCheck QCheck_alcotest String
