test/test_sim.ml: Alcotest Array Cocheck_core Cocheck_des Cocheck_model Cocheck_sim Cocheck_util Float Fun Int List Option Printf QCheck QCheck_alcotest Set
